#include "snapshot/page_rewinder.h"

#include <cstring>

#include "engine/redo_undo.h"

namespace rewinddb {

Status PageRewinder::PreparePageAsOf(char* page, Lsn as_of_lsn,
                                     Lsn* valid_until) {
  Lsn curr = PageLsn(page);
  if (curr > as_of_lsn) pages_rewound_++;
  // The LSN of the earliest chain element processed so far: once the
  // walk stops, it is the next modification after the final image.
  Lsn boundary = kInvalidLsn;
  wal::Cursor cur = wal_->OpenCursor();
  // A generous bound: a page cannot have more live chain entries than
  // bytes of log; this guards against chain corruption loops.
  for (uint64_t steps = 0; curr > as_of_lsn; steps++) {
    if (steps > (1ULL << 32)) {
      return Status::Corruption("page chain walk did not terminate");
    }
    REWIND_RETURN_IF_ERROR(cur.SeekToChain(curr));
    const LogRecord& rec = cur.record();
    if (rec.page_id != Header(page)->page_id &&
        Header(page)->page_id != kInvalidPageId) {
      return Status::Corruption("page chain crossed pages: expected " +
                                std::to_string(Header(page)->page_id) +
                                " found " + std::to_string(rec.page_id));
    }
    // Skip optimization (section 6.1): if this record knows of a full
    // page image at or after the target, apply the image directly and
    // continue from before it -- every modification between the image
    // and `curr` is skipped in one step.
    if (rec.prev_fpi_lsn != kInvalidLsn && rec.prev_fpi_lsn >= as_of_lsn &&
        rec.prev_fpi_lsn < curr) {
      REWIND_RETURN_IF_ERROR(cur.FollowPrevFpi());
      const LogRecord& fpi = cur.record();
      if (fpi.type != LogType::kPreformat &&
          fpi.type != LogType::kFpiDelta) {
        return Status::Corruption("fpi chain does not point at an image");
      }
      // A kFpiDelta stands for the same full image, delta-encoded
      // against older FPIs; MaterializeFpiImage composes the chain.
      std::string img;
      REWIND_RETURN_IF_ERROR(wal::MaterializeFpiImage(cur, &img));
      memcpy(page, img.data(), kPageSize);
      SetPageLsn(page, fpi.prev_page_lsn);
      Header(page)->last_fpi_lsn = fpi.prev_fpi_lsn;
      // The preformat record is the page's next modification after the
      // image it carries.
      boundary = cur.lsn();
      curr = fpi.prev_page_lsn;
      fpi_jumps_++;
      continue;
    }
    REWIND_RETURN_IF_ERROR(ApplyUndo(page, rec));
    boundary = curr;
    curr = rec.prev_page_lsn;
    records_undone_++;
  }
  if (valid_until != nullptr) *valid_until = boundary;
  return Status::OK();
}

}  // namespace rewinddb
