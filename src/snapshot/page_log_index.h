// Per-page log index for lazy AS OF mounts (ROADMAP item 3, following
// the REDO-only / single-page-repair line of Sauer & Haerder).
//
// A lazy mount recovers each page on first access by rewinding it from
// a current image back to the SplitLSN. Without help, that walk starts
// at the page's NEWEST modification and undoes every record between
// "now" and the split -- work proportional to post-split churn, none of
// which the snapshot cares about. This index gives the rewind a direct
// entry point into the page's chain AT the split:
//
//   * for every page touched after the split, the oldest post-split
//     record (its prev_page_lsn is the page's exact LSN at the split);
//   * the oldest post-split full page image (kPreformat). Its payload
//     is the page content just BEFORE that record, i.e. the state at
//     its prev_page_lsn. When prev_page_lsn <= SplitLSN that image IS
//     the split-time page, with zero chain steps; otherwise the rewind
//     enters the chain there and undoes only (split, prev_page_lsn] --
//     it never scans the unrelated post-split log.
//
// The index is built by the mount's background sweeper from one
// forward scan of (SplitLSN, mount LSN], chunked along the metadata the
// bounded-log steady state (PR 5) already maintains: the checkpoint
// directory supplies the scan bounds and the archive tier's sealed
// segment boundaries [first_lsn, last_lsn) chunk the scan when the
// split lives in archived history. Lookups are sound BEFORE the build
// completes: the scan runs forward, so an entry, once written, already
// holds the oldest qualifying record/image for its page. Absence of an
// entry proves nothing (the build may not have reached the page, and
// the primary keeps writing past the mount LSN), so readers only ever
// act on positive hits and otherwise fall back to the full rewind.
#ifndef REWINDDB_SNAPSHOT_PAGE_LOG_INDEX_H_
#define REWINDDB_SNAPSHOT_PAGE_LOG_INDEX_H_

#include <atomic>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "common/clock.h"
#include "common/result.h"
#include "common/types.h"
#include "wal/wal.h"

namespace rewinddb {

class PageLogIndex {
 public:
  struct Entry {
    /// Oldest record with LSN > split that modified the page; its
    /// prev_page_lsn is the page's exact LSN at the split point.
    Lsn first_post_split_lsn = kInvalidLsn;
    Lsn page_lsn_at_split = kInvalidLsn;
    /// Oldest post-split full page image (kPreformat) for the page,
    /// plus the chain pointers a rewind entering there needs.
    Lsn fpi_lsn = kInvalidLsn;
    Lsn fpi_prev_page_lsn = kInvalidLsn;
    Lsn fpi_prev_fpi_lsn = kInvalidLsn;
  };

  struct Stats {
    uint64_t pages_indexed = 0;
    uint64_t fpi_entries = 0;
    uint64_t records_scanned = 0;
    /// Archive segments the build scan crossed (the split lived in
    /// archived history); 0 when the whole window was active log.
    uint64_t archive_segments_crossed = 0;
    uint64_t build_micros = 0;
  };

  explicit PageLogIndex(Lsn split_lsn) : split_lsn_(split_lsn) {}

  /// One forward scan of (split, upto]; safe to run while Lookup is
  /// being called from query threads. `clock` charges build_micros.
  Status Build(wal::Wal* log, Lsn upto, Clock* clock);

  /// Positive knowledge only: nullopt means "not (yet) known", never
  /// "untouched since the split".
  std::optional<Entry> Lookup(PageId id) const;

  bool complete() const { return complete_.load(std::memory_order_acquire); }
  Lsn split_lsn() const { return split_lsn_; }
  Stats stats() const;

 private:
  const Lsn split_lsn_;
  std::atomic<bool> complete_{false};

  mutable std::shared_mutex mu_;  // guards entries_ + stats_
  std::unordered_map<PageId, Entry> entries_;
  Stats stats_;
};

}  // namespace rewinddb

#endif  // REWINDDB_SNAPSHOT_PAGE_LOG_INDEX_H_
