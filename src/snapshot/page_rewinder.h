// PreparePageAsOf: the paper's core primitive (section 4, figure 3).
//
// Given the current image of a page, walk its backward prevPageLSN
// chain, undoing one modification per step, until the page LSN is at or
// before the requested point in time. Every step is one log-record
// fetch -- a potential IO stall (section 6.2) -- unless the optional
// full-page-image chain lets the walk jump over a region of the log
// (section 6.1): if a record points at an FPI at-or-after the target
// LSN, applying that image replaces every individual undo between the
// FPI and the current position.
#ifndef REWINDDB_SNAPSHOT_PAGE_REWINDER_H_
#define REWINDDB_SNAPSHOT_PAGE_REWINDER_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "page/page.h"
#include "wal/wal.h"

namespace rewinddb {

/// Rewinds page images using the transaction log. Stateless apart from
/// counters; safe for concurrent use.
class PageRewinder {
 public:
  explicit PageRewinder(wal::Wal* wal) : wal_(wal) {}

  /// Undo modifications to `page` (a kPageSize buffer) until its page
  /// LSN is <= `as_of_lsn`. Returns OutOfRange if the chain walks past
  /// the retention window (truncated log).
  ///
  /// If `valid_until` is non-null it receives the LSN of the page's
  /// next modification after the final image -- i.e. the last chain
  /// element processed, making the result the image of record for every
  /// target in [PageLsn(page), *valid_until). kInvalidLsn when the walk
  /// performed no steps (the boundary is unknown, not infinite). This
  /// is what VersionStore::Publish consumes.
  Status PreparePageAsOf(char* page, Lsn as_of_lsn,
                         Lsn* valid_until = nullptr);

  /// Records undone one-by-one across all calls.
  uint64_t records_undone() const { return records_undone_.load(); }
  /// Chain-walk steps replaced by applying a full page image.
  uint64_t fpi_jumps() const { return fpi_jumps_.load(); }
  /// Pages that needed at least one undo step.
  uint64_t pages_rewound() const { return pages_rewound_.load(); }

  /// Benches read the counters from other threads while a rewind is in
  /// flight; explicit atomic stores keep the reset race-free (plain
  /// assignment on std::atomic is seq_cst too, but spelling it out
  /// keeps the intent auditable alongside the relaxed increments).
  void ResetCounters() {
    records_undone_.store(0, std::memory_order_relaxed);
    fpi_jumps_.store(0, std::memory_order_relaxed);
    pages_rewound_.store(0, std::memory_order_relaxed);
  }

 private:
  wal::Wal* wal_;
  std::atomic<uint64_t> records_undone_{0};
  std::atomic<uint64_t> fpi_jumps_{0};
  std::atomic<uint64_t> pages_rewound_{0};
};

}  // namespace rewinddb

#endif  // REWINDDB_SNAPSHOT_PAGE_REWINDER_H_
