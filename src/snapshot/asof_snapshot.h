// As-of database snapshots (paper section 5).
//
// An AsOfSnapshot presents a transactionally consistent, read-only view
// of the primary database as of an arbitrary wall-clock time within the
// retention period. It is built from three pieces:
//
//  * SnapshotStore -- a PageStore whose read path implements the
//    section 5.3 protocol: side file hit -> return; miss -> read the
//    page from the PRIMARY's data file, PreparePageAsOf(page, SplitLSN),
//    cache the rewound page in the sparse side file. Keeping this below
//    the snapshot's buffer pool leaves the B-tree, catalog and queries
//    entirely oblivious to time travel.
//
//  * Snapshot recovery (section 5.2) -- analysis scans the log between
//    the checkpoint preceding the SplitLSN and the SplitLSN to find
//    transactions in flight at that point; their row locks are
//    re-acquired (redo itself needs no page reads because snapshot
//    creation checkpoints the primary first); then a BACKGROUND thread
//    undoes the in-flight transactions' effects on snapshot pages while
//    queries are already allowed.
//
//  * SnapshotTable -- read-only typed access mirroring Table, with the
//    lock coordination that makes pre-undo-completion queries correct:
//    a row held by an in-flight transaction blocks readers until the
//    background undo has erased it.
//
// DEPRECATED as an application surface: applications should reach the
// past through Connection::AsOf / Connection::Snapshot, which return
// the unified ReadView handle (same TableView query interface as live
// reads, plus a deterministic drop story). This header remains the
// engine-level snapshot machinery underneath api/; SnapshotTable's read
// methods delegate to engine/read_core.h.
#ifndef REWINDDB_SNAPSHOT_ASOF_SNAPSHOT_H_
#define REWINDDB_SNAPSHOT_ASOF_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "catalog/catalog.h"
#include "engine/database.h"
#include "io/sparse_file.h"
#include "snapshot/page_log_index.h"
#include "snapshot/page_rewinder.h"
#include "snapshot/split_lsn.h"
#include "snapshot/version_store.h"

namespace rewinddb {

class AsOfSnapshot;

/// How a snapshot is brought up (DatabaseOptions::lazy_mount picks the
/// default; SET MOUNT_MODE overrides per session).
///
///  * kEager -- the section 5.1/5.2 pipeline: creation checkpoint,
///    inline analysis + loser-lock reacquisition, background undo of
///    every loser. Create cost grows with log-since-checkpoint.
///  * kLazy -- create records only the SplitLSN (waypoint-narrowed
///    search) and returns; a background sweeper runs analysis, builds
///    the per-page log index and completes loser undo, while queries
///    recover exactly what they touch: each page is rewound on first
///    access and each TREE's loser records are undone before its first
///    query (by key, below -- per-page loser undo would be unsound
///    because committed structure modifications move in-flight rows
///    between pages). Both modes produce byte-identical pages.
enum class MountMode { kEager, kLazy };

/// Test-only fault injection into the lazy page-recovery path. The
/// argument is the page id (kIndexLookup / kRewindRead) or the tree id
/// (kUndoApply). Returning !ok() makes the recovery step fail exactly
/// as a real IO error there would.
enum class RecoveryFaultPoint { kIndexLookup, kRewindRead, kUndoApply };
using RecoveryFaultHook = std::function<Status(RecoveryFaultPoint, uint64_t)>;

/// PageStore implementing the as-of read protocol of section 5.3,
/// extended with the shared version store: side-file hit -> version
/// store (exact hit returns immediately; a newer-than-target version
/// becomes the rewind starting point) -> primary read + full rewind.
/// Every completed rewind publishes its pristine result back to the
/// store, so concurrent snapshots at nearby times share undo work.
class SnapshotStore : public PageStore {
 public:
  /// `versions` may be null (engine without a version store). `owner`
  /// may be null (tests building a bare store); without it the store
  /// always takes the eager path: primary FILE read + full rewind. With
  /// a lazily mounted owner, a miss instead reads the CURRENT page
  /// image through the primary's buffer pool (sound: page LSNs are
  /// stamped only after the record is published, and the WAL tail is
  /// cursor-readable, so the rewinder can always walk back from the
  /// live image) -- or enters the chain directly at an indexed
  /// post-split page image, skipping the post-split churn entirely.
  SnapshotStore(PagedFile* primary, SparseFile* side, PageRewinder* rewinder,
                VersionStore* versions, Lsn split_lsn,
                AsOfSnapshot* owner = nullptr)
      : primary_(primary), side_(side), rewinder_(rewinder),
        versions_(versions), split_lsn_(split_lsn), owner_(owner) {}

  Status ReadPage(PageId id, char* buf) override;
  /// Writes (from the snapshot's buffer pool: background-undo results,
  /// eviction of rewound pages) always land in the side file -- never
  /// in the version store, which holds only physical rewind results
  /// valid for any snapshot, not this snapshot's private loser-undo.
  Status WritePage(PageId id, const char* buf) override;

 private:
  /// Produce the split-time image of `id` into `buf` on a side-file
  /// miss (everything between the version-store probe and the side-file
  /// fill). Split out so the fault-injection tests can fail it without
  /// the side file ever seeing a partial page.
  Status RecoverPage(PageId id, char* buf);

  PagedFile* primary_;
  SparseFile* side_;
  PageRewinder* rewinder_;
  VersionStore* versions_;
  Lsn split_lsn_;
  AsOfSnapshot* owner_;
};

/// Read-only table handle over a snapshot.
class SnapshotTable {
 public:
  SnapshotTable(AsOfSnapshot* snap, TableInfo info,
                std::vector<IndexInfo> indexes);

  const Schema& schema() const { return info_.schema; }
  const TableInfo& info() const { return info_; }
  const std::vector<IndexInfo>& indexes() const { return indexes_; }

  /// Point lookup as of the snapshot time.
  Result<Row> Get(const Row& key_values);
  /// Range scan; nullopt bounds are open.
  Status Scan(const std::optional<Row>& lower, const std::optional<Row>& upper,
              const std::function<bool(const Row&)>& cb);
  /// Secondary-index equality scan.
  Status IndexScan(const std::string& index_name, const Row& prefix_values,
                   const std::function<bool(const Row&)>& cb);
  Result<uint64_t> Count();

 private:
  AsOfSnapshot* snap_;
  TableInfo info_;
  std::vector<IndexInfo> indexes_;
  std::vector<ColumnType> types_;
};

/// A queryable as-of replica of a primary database.
class AsOfSnapshot {
 public:
  struct CreationStats {
    Lsn split_lsn = kInvalidLsn;
    WallClock boundary_time = 0;
    Lsn checkpoint_lsn = kInvalidLsn;
    /// In-flight transactions at the SplitLSN (undone in background).
    size_t loser_transactions = 0;
    /// Row locks re-acquired during the redo pass.
    size_t locks_reacquired = 0;
    /// Simulated+real microseconds spent creating the snapshot
    /// (checkpoint + SplitLSN search + analysis).
    uint64_t create_micros = 0;
    // Mount-phase breakdown (all charged to the primary's clock, so
    // simulated micros under a SimClock):
    /// Analysis scan (checkpoint before the split -> SplitLSN).
    uint64_t analysis_micros = 0;
    /// The redo-stage work: loser lock re-acquisition (page redo needs
    /// no IO -- the creation checkpoint already flushed everything).
    uint64_t redo_micros = 0;
    /// Background undo of in-flight transactions. Written by the undo
    /// thread; read it only after WaitForUndo().
    uint64_t undo_micros = 0;
    /// Worker count the background undo ran with.
    int replay_threads = 1;
    /// Mount mode this snapshot was created with. Under kLazy,
    /// analysis_micros and undo_micros are the SWEEPER's background
    /// cost (read after WaitForUndo); create_micros covers only the
    /// split search + store setup -- the O(1) mount claim fig9
    /// measures.
    bool lazy = false;
    /// Per-page log index build time (lazy only; background).
    uint64_t index_build_micros = 0;
  };

  ~AsOfSnapshot();
  AsOfSnapshot(const AsOfSnapshot&) = delete;
  AsOfSnapshot& operator=(const AsOfSnapshot&) = delete;

  /// CREATE DATABASE <name> AS SNAPSHOT OF <primary> AS OF <as_of>.
  /// Eager: opens for queries as soon as analysis/redo complete; the
  /// undo of in-flight transactions proceeds in the background. Lazy:
  /// opens immediately after the split search; analysis, the page log
  /// index and loser undo proceed in the background, and queries
  /// recover what they touch. Mode defaults to the primary's
  /// DatabaseOptions::lazy_mount.
  static Result<std::unique_ptr<AsOfSnapshot>> Create(Database* primary,
                                                      const std::string& name,
                                                      WallClock as_of);
  static Result<std::unique_ptr<AsOfSnapshot>> Create(Database* primary,
                                                      const std::string& name,
                                                      WallClock as_of,
                                                      MountMode mode);

  /// Query-surface: tables and metadata resolve through the snapshot's
  /// own (rewound) catalog pages.
  Result<SnapshotTable> OpenTable(const std::string& name);
  Result<std::vector<TableInfo>> ListTables();

  /// Block until the background undo pass finishes. Safe to call from
  /// several ReadView handles concurrently.
  Status WaitForUndo();
  bool undo_complete() const { return undo_complete_.load(); }

  /// Per-tree reader/writer latch (mirrors Database::TreeLatch).
  std::shared_mutex* TreeLatch(TreeId tree);
  /// Wait until the row is free of in-flight-transaction locks (no-op
  /// once undo completed).
  Status WaitRowVisible(TreeId tree, const std::string& key);
  bool RowBusy(TreeId tree, const std::string& key);

  /// Returns a consistent copy. Timing/loser fields filled by the
  /// background undo thread (eager) or sweeper (lazy) settle only
  /// after WaitForUndo(); reading earlier is safe but may see zeros.
  CreationStats creation_stats() const {
    std::lock_guard<std::mutex> g(stats_mu_);
    return stats_;
  }
  const std::string& name() const { return name_; }
  Lsn split_lsn() const { return split_.split_lsn; }
  BufferManager* buffers() { return buffers_.get(); }
  PageRewinder* rewinder() { return &rewinder_; }
  SparseFile* side_file() { return side_.get(); }
  Database* primary() { return primary_; }

  // ------------------------- lazy-mount surface ----------------------
  bool lazy() const { return mode_ == MountMode::kLazy; }
  /// The mount's per-page chain index (lazy only; null under kEager).
  PageLogIndex* page_log_index() { return page_index_.get(); }
  /// Block until this tree's loser records are undone on the
  /// snapshot's pages (no-op under kEager, and for trees no loser
  /// touched). Called by the query surface before it reads a tree;
  /// also driven tree-by-tree by the background sweeper. Idempotent,
  /// safe from many threads; on failure the tree stays pending and a
  /// later call RESUMES where the failed one stopped, so an injected
  /// fault never poisons the tree.
  Status EnsureTreeRecovered(TreeId tree);
  /// Pages this snapshot recovered on first access (lazy).
  uint64_t pages_recovered_on_demand() const {
    return pages_recovered_.load(std::memory_order_relaxed);
  }
  /// Test-only: install (or clear, with nullptr) the recovery fault
  /// hook. Takes effect for subsequent page recoveries / undo steps.
  void SetRecoveryFaultHook(RecoveryFaultHook hook);
  /// Internal: consult the fault hook at `point` (OK when unset).
  Status CheckRecoveryFault(RecoveryFaultPoint point, uint64_t id);
  /// Internal (store callback): one page was recovered on demand.
  void NotePageRecovered(bool via_fpi_index);

  /// Delete the side file (done automatically on destruction).
  Status Drop();

 private:
  AsOfSnapshot(Database* primary, std::string name, SplitPoint split,
               MountMode mode);

  /// Side file + store + buffer pool + catalog (both modes).
  Status SetupStorage();
  /// Analysis: scan [checkpoint before the ckpt preceding the split ->
  /// split] and return the in-flight transactions (ATT) at the split.
  Status ScanAnalysis(std::unordered_map<TxnId, Lsn>* att);
  Status Recover();
  void BackgroundUndo();
  /// Lazy-mount background thread: analysis -> per-tree loser
  /// worklists -> page log index build -> per-tree undo completion.
  void SweeperMain();
  /// Analysis + loser chain walks building tree_work_ (lazy; no lock
  /// reacquisition -- a tree's first query waits on EnsureTreeRecovered
  /// instead of on row locks).
  Status SweeperAnalysis();
  struct TreeRecovery;
  /// Apply tree-restricted loser undo in descending-LSN order,
  /// resuming at tr->applied. Caller holds the kRunning claim.
  Status ApplyTreeWork(TreeId tree, TreeRecovery* tr);
  /// Shared claim/wait state machine behind EnsureTreeRecovered;
  /// `on_demand` marks query-triggered (vs sweeper-driven) completion
  /// for the stats counters.
  Status EnsureTreeRecoveredImpl(TreeId tree, bool on_demand);
  /// The serial (replay_threads == 1) undo walk: all losers
  /// interleaved, globally largest next-LSN first (the pre-parallel
  /// path, kept as the degenerate case).
  Status BackgroundUndoSerial();
  /// Undo one loser transaction's whole chain on the snapshot's pages,
  /// then release its re-acquired row locks. Thread-safe: row undo and
  /// physical undo both latch the record's tree.
  Status UndoLoserChain(const AttEntry& loser);
  /// Unlogged logical undo of a user row record on the snapshot's
  /// pages: locate the row by key (it may have moved under committed
  /// structure modifications before the split) and apply the inverse
  /// directly. May split snapshot leaves into snapshot-private virtual
  /// pages when a re-inserted row no longer fits.
  Status UndoUserRowUnlogged(const LogRecord& rec);
  Status UnloggedSplit(TreeId tree, const std::vector<PageId>& path);

  Database* primary_;
  std::string name_;
  SplitPoint split_;
  const MountMode mode_;
  /// Log end at mount time: upper bound of the page log index's build
  /// scan (records past it belong to the primary's future, which the
  /// per-page rewind handles without the index).
  Lsn mount_end_lsn_ = kInvalidLsn;
  PageRewinder rewinder_;
  std::unique_ptr<PageLogIndex> page_index_;

  std::unique_ptr<SparseFile> side_;
  std::unique_ptr<SnapshotStore> store_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<Catalog> catalog_;
  LockManager locks_;  // loser locks + query coordination

  /// Losers: txn id -> last LSN at the split point.
  std::vector<AttEntry> losers_;

  std::thread undo_thread_;
  std::mutex undo_join_mu_;
  std::atomic<bool> undo_complete_{false};
  Status undo_status_;
  std::atomic<uint64_t> query_ids_{1ULL << 62};
  /// Page ids for snapshot-private pages created by unlogged splits;
  /// they live only in the side file, far above any primary page id.
  std::atomic<PageId> virtual_next_page_{3'000'000'000u};

  std::mutex tree_latches_mu_;
  std::map<TreeId, std::unique_ptr<std::shared_mutex>> tree_latches_;

  // Lazy per-tree recovery state. trees_mu_ guards the map shape and
  // every TreeRecovery's state field; a tree's worklist and progress
  // cursor are touched only by the thread holding its kRunning claim
  // (publication happens-before via trees_mu_).
  struct TreeRecovery {
    enum class State { kPending, kRunning, kDone };
    State state = State::kPending;
    /// This tree's loser page-record LSNs, descending (the serial
    /// eager undo order restricted to the tree -- what makes lazy
    /// pages byte-identical to eager ones).
    std::vector<Lsn> work;
    /// Progress cursor: records [0, applied) are already undone, so a
    /// retry after a failure resumes instead of double-applying.
    size_t applied = 0;
  };
  std::mutex trees_mu_;
  std::condition_variable trees_cv_;
  bool analysis_ready_ = false;  // also true under kEager (vacuously)
  Status analysis_status_;
  std::map<TreeId, TreeRecovery> tree_work_;

  std::mutex fault_mu_;
  RecoveryFaultHook fault_hook_;
  std::atomic<uint64_t> pages_recovered_{0};

  /// Leaf mutex: the sweeper / background undo thread updates stats_
  /// while the mount is already visible to readers, so every write
  /// from those threads and every read through creation_stats() takes
  /// it. Never held across any other lock.
  mutable std::mutex stats_mu_;
  CreationStats stats_;
};

}  // namespace rewinddb

#endif  // REWINDDB_SNAPSHOT_ASOF_SNAPSHOT_H_
