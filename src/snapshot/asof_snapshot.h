// As-of database snapshots (paper section 5).
//
// An AsOfSnapshot presents a transactionally consistent, read-only view
// of the primary database as of an arbitrary wall-clock time within the
// retention period. It is built from three pieces:
//
//  * SnapshotStore -- a PageStore whose read path implements the
//    section 5.3 protocol: side file hit -> return; miss -> read the
//    page from the PRIMARY's data file, PreparePageAsOf(page, SplitLSN),
//    cache the rewound page in the sparse side file. Keeping this below
//    the snapshot's buffer pool leaves the B-tree, catalog and queries
//    entirely oblivious to time travel.
//
//  * Snapshot recovery (section 5.2) -- analysis scans the log between
//    the checkpoint preceding the SplitLSN and the SplitLSN to find
//    transactions in flight at that point; their row locks are
//    re-acquired (redo itself needs no page reads because snapshot
//    creation checkpoints the primary first); then a BACKGROUND thread
//    undoes the in-flight transactions' effects on snapshot pages while
//    queries are already allowed.
//
//  * SnapshotTable -- read-only typed access mirroring Table, with the
//    lock coordination that makes pre-undo-completion queries correct:
//    a row held by an in-flight transaction blocks readers until the
//    background undo has erased it.
//
// DEPRECATED as an application surface: applications should reach the
// past through Connection::AsOf / Connection::Snapshot, which return
// the unified ReadView handle (same TableView query interface as live
// reads, plus a deterministic drop story). This header remains the
// engine-level snapshot machinery underneath api/; SnapshotTable's read
// methods delegate to engine/read_core.h.
#ifndef REWINDDB_SNAPSHOT_ASOF_SNAPSHOT_H_
#define REWINDDB_SNAPSHOT_ASOF_SNAPSHOT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "catalog/catalog.h"
#include "engine/database.h"
#include "io/sparse_file.h"
#include "snapshot/page_rewinder.h"
#include "snapshot/split_lsn.h"
#include "snapshot/version_store.h"

namespace rewinddb {

class AsOfSnapshot;

/// PageStore implementing the as-of read protocol of section 5.3,
/// extended with the shared version store: side-file hit -> version
/// store (exact hit returns immediately; a newer-than-target version
/// becomes the rewind starting point) -> primary read + full rewind.
/// Every completed rewind publishes its pristine result back to the
/// store, so concurrent snapshots at nearby times share undo work.
class SnapshotStore : public PageStore {
 public:
  /// `versions` may be null (engine without a version store).
  SnapshotStore(PagedFile* primary, SparseFile* side, PageRewinder* rewinder,
                VersionStore* versions, Lsn split_lsn)
      : primary_(primary), side_(side), rewinder_(rewinder),
        versions_(versions), split_lsn_(split_lsn) {}

  Status ReadPage(PageId id, char* buf) override;
  /// Writes (from the snapshot's buffer pool: background-undo results,
  /// eviction of rewound pages) always land in the side file -- never
  /// in the version store, which holds only physical rewind results
  /// valid for any snapshot, not this snapshot's private loser-undo.
  Status WritePage(PageId id, const char* buf) override;

 private:
  PagedFile* primary_;
  SparseFile* side_;
  PageRewinder* rewinder_;
  VersionStore* versions_;
  Lsn split_lsn_;
};

/// Read-only table handle over a snapshot.
class SnapshotTable {
 public:
  SnapshotTable(AsOfSnapshot* snap, TableInfo info,
                std::vector<IndexInfo> indexes);

  const Schema& schema() const { return info_.schema; }
  const TableInfo& info() const { return info_; }
  const std::vector<IndexInfo>& indexes() const { return indexes_; }

  /// Point lookup as of the snapshot time.
  Result<Row> Get(const Row& key_values);
  /// Range scan; nullopt bounds are open.
  Status Scan(const std::optional<Row>& lower, const std::optional<Row>& upper,
              const std::function<bool(const Row&)>& cb);
  /// Secondary-index equality scan.
  Status IndexScan(const std::string& index_name, const Row& prefix_values,
                   const std::function<bool(const Row&)>& cb);
  Result<uint64_t> Count();

 private:
  AsOfSnapshot* snap_;
  TableInfo info_;
  std::vector<IndexInfo> indexes_;
  std::vector<ColumnType> types_;
};

/// A queryable as-of replica of a primary database.
class AsOfSnapshot {
 public:
  struct CreationStats {
    Lsn split_lsn = kInvalidLsn;
    WallClock boundary_time = 0;
    Lsn checkpoint_lsn = kInvalidLsn;
    /// In-flight transactions at the SplitLSN (undone in background).
    size_t loser_transactions = 0;
    /// Row locks re-acquired during the redo pass.
    size_t locks_reacquired = 0;
    /// Simulated+real microseconds spent creating the snapshot
    /// (checkpoint + SplitLSN search + analysis).
    uint64_t create_micros = 0;
    // Mount-phase breakdown (all charged to the primary's clock, so
    // simulated micros under a SimClock):
    /// Analysis scan (checkpoint before the split -> SplitLSN).
    uint64_t analysis_micros = 0;
    /// The redo-stage work: loser lock re-acquisition (page redo needs
    /// no IO -- the creation checkpoint already flushed everything).
    uint64_t redo_micros = 0;
    /// Background undo of in-flight transactions. Written by the undo
    /// thread; read it only after WaitForUndo().
    uint64_t undo_micros = 0;
    /// Worker count the background undo ran with.
    int replay_threads = 1;
  };

  ~AsOfSnapshot();
  AsOfSnapshot(const AsOfSnapshot&) = delete;
  AsOfSnapshot& operator=(const AsOfSnapshot&) = delete;

  /// CREATE DATABASE <name> AS SNAPSHOT OF <primary> AS OF <as_of>.
  /// Opens for queries as soon as analysis/redo complete; the undo of
  /// in-flight transactions proceeds in the background.
  static Result<std::unique_ptr<AsOfSnapshot>> Create(Database* primary,
                                                      const std::string& name,
                                                      WallClock as_of);

  /// Query-surface: tables and metadata resolve through the snapshot's
  /// own (rewound) catalog pages.
  Result<SnapshotTable> OpenTable(const std::string& name);
  Result<std::vector<TableInfo>> ListTables();

  /// Block until the background undo pass finishes. Safe to call from
  /// several ReadView handles concurrently.
  Status WaitForUndo();
  bool undo_complete() const { return undo_complete_.load(); }

  /// Per-tree reader/writer latch (mirrors Database::TreeLatch).
  std::shared_mutex* TreeLatch(TreeId tree);
  /// Wait until the row is free of in-flight-transaction locks (no-op
  /// once undo completed).
  Status WaitRowVisible(TreeId tree, const std::string& key);
  bool RowBusy(TreeId tree, const std::string& key);

  const CreationStats& creation_stats() const { return stats_; }
  const std::string& name() const { return name_; }
  Lsn split_lsn() const { return split_.split_lsn; }
  BufferManager* buffers() { return buffers_.get(); }
  PageRewinder* rewinder() { return &rewinder_; }
  SparseFile* side_file() { return side_.get(); }
  Database* primary() { return primary_; }

  /// Delete the side file (done automatically on destruction).
  Status Drop();

 private:
  AsOfSnapshot(Database* primary, std::string name, SplitPoint split);

  Status Recover();
  void BackgroundUndo();
  /// The serial (replay_threads == 1) undo walk: all losers
  /// interleaved, globally largest next-LSN first (the pre-parallel
  /// path, kept as the degenerate case).
  Status BackgroundUndoSerial();
  /// Undo one loser transaction's whole chain on the snapshot's pages,
  /// then release its re-acquired row locks. Thread-safe: row undo and
  /// physical undo both latch the record's tree.
  Status UndoLoserChain(const AttEntry& loser);
  /// Unlogged logical undo of a user row record on the snapshot's
  /// pages: locate the row by key (it may have moved under committed
  /// structure modifications before the split) and apply the inverse
  /// directly. May split snapshot leaves into snapshot-private virtual
  /// pages when a re-inserted row no longer fits.
  Status UndoUserRowUnlogged(const LogRecord& rec);
  Status UnloggedSplit(TreeId tree, const std::vector<PageId>& path);

  Database* primary_;
  std::string name_;
  SplitPoint split_;
  PageRewinder rewinder_;

  std::unique_ptr<SparseFile> side_;
  std::unique_ptr<SnapshotStore> store_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<Catalog> catalog_;
  LockManager locks_;  // loser locks + query coordination

  /// Losers: txn id -> last LSN at the split point.
  std::vector<AttEntry> losers_;

  std::thread undo_thread_;
  std::mutex undo_join_mu_;
  std::atomic<bool> undo_complete_{false};
  Status undo_status_;
  std::atomic<uint64_t> query_ids_{1ULL << 62};
  /// Page ids for snapshot-private pages created by unlogged splits;
  /// they live only in the side file, far above any primary page id.
  std::atomic<PageId> virtual_next_page_{3'000'000'000u};

  std::mutex tree_latches_mu_;
  std::map<TreeId, std::unique_ptr<std::shared_mutex>> tree_latches_;

  CreationStats stats_;
};

}  // namespace rewinddb

#endif  // REWINDDB_SNAPSHOT_ASOF_SNAPSHOT_H_
