#include "snapshot/split_lsn.h"

namespace rewinddb {

Result<SplitPoint> FindSplitPoint(wal::Wal* log, WallClock target,
                                  WallClock now) {
  if (target > now) {
    return Status::InvalidArgument("as-of time lies in the future");
  }

  // Narrow with the checkpoint directory: scan from the newest
  // checkpoint at or before the target time (checkpoints carry
  // wall-clock stamps precisely for this). The directory spans BOTH log
  // tiers -- refs into archived history survive active-log truncation
  // -- so a long-horizon target narrows just like a recent one, and the
  // cursor below reads across the tier boundary transparently.
  const std::vector<CheckpointRef> ckpts = log->checkpoints();
  Lsn scan_start = log->oldest_lsn();
  Lsn ckpt_before = kInvalidLsn;
  bool target_before_all_ckpts = !ckpts.empty();
  for (const CheckpointRef& c : ckpts) {
    if (c.wall_clock <= target) {
      scan_start = c.begin_lsn;
      ckpt_before = c.begin_lsn;
      target_before_all_ckpts = false;
    } else {
      break;
    }
  }
  // Bound the forward scan by the first checkpoint after the target
  // (plus one more region in case a qualifying commit raced the
  // checkpoint) -- here simply scan to the next checkpoint boundary.
  Lsn scan_end = log->next_lsn();
  for (const CheckpointRef& c : ckpts) {
    if (c.wall_clock > target) {
      scan_end = c.begin_lsn;
      break;
    }
  }

  // Second narrowing stage: commit waypoints. Checkpoints bound the
  // scan to one checkpoint interval, which can still be most of the log
  // when checkpoints are rare (a mount soon after a long checkpoint-free
  // run). Waypoints are sampled every few hundred KiB of commits, so
  // jumping to the newest waypoint at or before the target bounds the
  // commit scan by the sampling spacing instead -- what keeps the
  // lazy-mount create O(1) in log-since-backup. A waypoint's record IS
  // a commit with wall_clock <= target, so a waypoint-started scan
  // always finds a split and never weakens the no-commit fallback
  // below.
  bool waypoint_started = false;
  for (const wal::CommitWaypoint& w : log->commit_waypoints()) {
    if (w.wall_clock > target) break;
    if (w.lsn > scan_start && w.lsn < scan_end) {
      scan_start = w.lsn;
      waypoint_started = true;
    }
  }

  Lsn split = kInvalidLsn;
  WallClock boundary = 0;
  wal::Cursor cur = log->OpenCursor();
  REWIND_RETURN_IF_ERROR(cur.SeekTo(scan_start));
  while (cur.Valid() && cur.lsn() < scan_end) {
    const LogRecord& rec = cur.record();
    if (rec.type == LogType::kCommit) {
      if (rec.wall_clock > target) break;  // commits (near-)monotonic: stop
      split = cur.lsn();
      boundary = rec.wall_clock;
    }
    REWIND_RETURN_IF_ERROR(cur.Next());
  }
  // The analysis anchor: newest checkpoint at or before the split. Read
  // it off the directory rather than the (now waypoint-shortened) scan.
  Lsn last_ckpt_seen = ckpt_before;
  if (split != kInvalidLsn) {
    for (const CheckpointRef& c : ckpts) {
      if (c.begin_lsn <= split && c.begin_lsn > (last_ckpt_seen == kInvalidLsn
                                                     ? 0
                                                     : last_ckpt_seen)) {
        last_ckpt_seen = c.begin_lsn;
      }
    }
  }

  if (split == kInvalidLsn && waypoint_started) {
    return Status::Corruption(
        "split search: waypoint-started scan found no commit");
  }
  if (split == kInvalidLsn) {
    if (target_before_all_ckpts || ckpt_before == kInvalidLsn) {
      return Status::OutOfRange(
          "as-of time precedes the retained log (outside the undo "
          "interval)");
    }
    // No commit in (checkpoint, target]: the checkpoint itself is a
    // consistent boundary.
    split = ckpt_before;
    boundary = target;
  }

  SplitPoint out;
  out.split_lsn = split;
  out.boundary_time = boundary;
  out.checkpoint_lsn =
      last_ckpt_seen != kInvalidLsn ? last_ckpt_seen : log->oldest_lsn();
  return out;
}

}  // namespace rewinddb
