#include "snapshot/asof_snapshot.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "btree/btree.h"
#include "engine/read_core.h"
#include "engine/redo_undo.h"
#include "page/slotted_page.h"

namespace rewinddb {

namespace {

/// As-of read gate: a row held by a transaction that was in flight at
/// the SplitLSN is invisible until the background undo erases it.
///
/// Lazy mounts never need the per-row machinery: a tree's whole loser
/// undo is applied by EnsureTreeRecovered BEFORE the query surface
/// reads the tree, so every row the B-tree can deliver is already
/// visible and the gate degenerates to latches + buffers.
class SnapshotRowGate : public RowGate {
 public:
  explicit SnapshotRowGate(AsOfSnapshot* snap) : snap_(snap) {}

  BufferManager* buffers() override { return snap_->buffers(); }
  std::shared_mutex* TreeLatch(TreeId tree) override {
    return snap_->TreeLatch(tree);
  }
  Status BeforePointRead(TreeId tree, const std::string& pk) override {
    if (snap_->lazy()) return Status::OK();
    return snap_->WaitRowVisible(tree, pk);
  }
  bool ScanNeedsRowCheck() override {
    return !snap_->lazy() && !snap_->undo_complete();
  }
  Result<Check> CheckScanRow(TreeId tree, const std::string& key) override {
    if (!snap_->undo_complete() && snap_->RowBusy(tree, key)) {
      return Check::kYield;
    }
    return Check::kVisible;
  }
  Status AwaitRow(TreeId tree, const std::string& key) override {
    return snap_->WaitRowVisible(tree, key);
  }
  bool CountNeedsVisibilityScan() override {
    return !snap_->lazy() && !snap_->undo_complete();
  }

 private:
  AsOfSnapshot* snap_;
};

}  // namespace

// ---------------------------- SnapshotStore ---------------------------

Status SnapshotStore::ReadPage(PageId id, char* buf) {
  // Section 5.3 protocol, with the shared version store between the
  // side file and the primary: (a) side file, (b) version store --
  // exact hit needs no chain walk at all, a newer-than-target version
  // seeds the rewind so the walk covers only the gap, (c) a fresh
  // image + rewind (RecoverPage; the image source and entry point
  // depend on the mount mode). Completed rewinds publish their
  // pristine result for other snapshots; the prepared page is cached
  // in the side file. A recovery failure caches NOTHING -- neither
  // tier sees a partial page, so a later read simply retries.
  Status s = side_->ReadPage(id, buf);
  if (s.ok()) return s;
  if (!s.IsNotFound()) return s;

  REWIND_RETURN_IF_ERROR(RecoverPage(id, buf));
  StampPageChecksum(buf);
  return side_->WritePage(id, buf);
}

Status SnapshotStore::RecoverPage(PageId id, char* buf) {
  VersionStore::Lookup hit;
  if (versions_ != nullptr) hit = versions_->Find(id, split_lsn_, buf);
  if (hit.kind == VersionStore::LookupKind::kExact) return Status::OK();

  const bool lazy = owner_ != nullptr && owner_->lazy();
  bool have_seed = hit.kind == VersionStore::LookupKind::kPartial;
  bool via_fpi = false;
  bool walk_done = false;
  Lsn valid_until = kInvalidLsn;

  if (!have_seed && lazy) {
    REWIND_RETURN_IF_ERROR(
        owner_->CheckRecoveryFault(RecoveryFaultPoint::kIndexLookup, id));
    std::optional<PageLogIndex::Entry> e;
    if (owner_->page_log_index() != nullptr) {
      e = owner_->page_log_index()->Lookup(id);
    }
    if (e.has_value() && e->fpi_lsn != kInvalidLsn) {
      // Enter the chain at the indexed post-split image. Its payload is
      // the page as of fpi.prev_page_lsn, so the walk (if any) covers
      // only (split, fpi.prev_page_lsn] -- the post-split churn between
      // the image and "now" is never scanned.
      wal::Cursor cur = owner_->primary()->log()->OpenCursor();
      REWIND_RETURN_IF_ERROR(cur.SeekTo(e->fpi_lsn));
      const LogRecord& fpi = cur.record();
      if (fpi.type != LogType::kPreformat &&
          fpi.type != LogType::kFpiDelta) {
        return Status::Corruption(
            "page log index does not point at a page image");
      }
      // Delta-encoded FPIs stand for the same full image; compose the
      // chain (lazy/eager parity: both paths go through the same
      // materialization, so the seeded bytes are identical).
      std::string img;
      REWIND_RETURN_IF_ERROR(wal::MaterializeFpiImage(cur, &img));
      memcpy(buf, img.data(), kPageSize);
      SetPageLsn(buf, fpi.prev_page_lsn);
      Header(buf)->last_fpi_lsn = fpi.prev_fpi_lsn;
      via_fpi = true;
      have_seed = true;
      if (PageLsn(buf) <= split_lsn_) {
        // The image IS the split-time page: valid until the preformat
        // record that captured it.
        valid_until = e->fpi_lsn;
        walk_done = true;
      }
    } else {
      // No indexed entry point: rewind from the CURRENT image, read
      // through the primary's buffer pool so unflushed changes (no
      // creation checkpoint under lazy!) are included.
      REWIND_ASSIGN_OR_RETURN(
          PageGuard live,
          owner_->primary()->buffers()->FetchPage(id, AccessMode::kRead));
      memcpy(buf, live.data(), kPageSize);
      have_seed = true;
    }
  } else if (!have_seed) {
    REWIND_RETURN_IF_ERROR(primary_->ReadPage(id, buf));
  }
  if (!walk_done) {
    if (lazy) {
      REWIND_RETURN_IF_ERROR(
          owner_->CheckRecoveryFault(RecoveryFaultPoint::kRewindRead, id));
    }
    REWIND_RETURN_IF_ERROR(
        rewinder_->PreparePageAsOf(buf, split_lsn_, &valid_until));
  }
  if (versions_ != nullptr) versions_->Publish(id, buf, valid_until);
  if (lazy) owner_->NotePageRecovered(via_fpi);
  return Status::OK();
}

Status SnapshotStore::WritePage(PageId id, const char* buf) {
  return side_->WritePage(id, buf);
}

// ---------------------------- SnapshotTable ---------------------------

SnapshotTable::SnapshotTable(AsOfSnapshot* snap, TableInfo info,
                             std::vector<IndexInfo> indexes)
    : snap_(snap),
      info_(std::move(info)),
      indexes_(std::move(indexes)),
      types_(info_.schema.types()) {}

// Every read first makes sure the tree(s) it will traverse are free of
// loser effects (a no-op under eager mounts, where per-row locks gate
// instead). This is the lazy mount's query-side recovery trigger: the
// FIRST touch of a tree pays its loser undo, later touches are free.

Result<Row> SnapshotTable::Get(const Row& key_values) {
  REWIND_RETURN_IF_ERROR(snap_->EnsureTreeRecovered(info_.root));
  SnapshotRowGate gate(snap_);
  return ReadCoreGet(&gate, info_, types_, key_values);
}

Status SnapshotTable::Scan(const std::optional<Row>& lower,
                           const std::optional<Row>& upper,
                           const std::function<bool(const Row&)>& cb) {
  REWIND_RETURN_IF_ERROR(snap_->EnsureTreeRecovered(info_.root));
  SnapshotRowGate gate(snap_);
  return ReadCoreScan(&gate, info_, types_, lower, upper, cb);
}

Status SnapshotTable::IndexScan(const std::string& index_name,
                                const Row& prefix_values,
                                const std::function<bool(const Row&)>& cb) {
  REWIND_RETURN_IF_ERROR(snap_->EnsureTreeRecovered(info_.root));
  for (const IndexInfo& ix : indexes_) {
    if (ix.name == index_name) {
      REWIND_RETURN_IF_ERROR(snap_->EnsureTreeRecovered(ix.root));
    }
  }
  SnapshotRowGate gate(snap_);
  return ReadCoreIndexScan(&gate, info_, indexes_, types_, index_name,
                           prefix_values, cb);
}

Result<uint64_t> SnapshotTable::Count() {
  REWIND_RETURN_IF_ERROR(snap_->EnsureTreeRecovered(info_.root));
  SnapshotRowGate gate(snap_);
  return ReadCoreCount(&gate, info_, types_);
}

// ----------------------------- AsOfSnapshot ---------------------------

AsOfSnapshot::AsOfSnapshot(Database* primary, std::string name,
                           SplitPoint split, MountMode mode)
    : primary_(primary),
      name_(std::move(name)),
      split_(split),
      mode_(mode),
      rewinder_(primary->log()),
      locks_(/*timeout_micros=*/30'000'000) {}

Result<std::unique_ptr<AsOfSnapshot>> AsOfSnapshot::Create(
    Database* primary, const std::string& name, WallClock as_of) {
  return Create(primary, name, as_of,
                primary->options().lazy_mount ? MountMode::kLazy
                                              : MountMode::kEager);
}

Result<std::unique_ptr<AsOfSnapshot>> AsOfSnapshot::Create(
    Database* primary, const std::string& name, WallClock as_of,
    MountMode mode) {
  Clock* clock = primary->clock();
  WallClock t0 = clock->NowMicros();

  if (mode == MountMode::kEager) {
    // Creation checkpoint (section 5.1): every page with LSN <=
    // SplitLSN becomes durable in the primary file, so (a) snapshot
    // reads of the primary never miss pre-split changes and (b) the
    // redo pass needs no page IO at all. A lazy mount skips it: reads
    // go through the primary's buffer pool instead, so the current
    // image is always visible without forcing IO at mount time.
    REWIND_RETURN_IF_ERROR(primary->Checkpoint());
  }

  REWIND_ASSIGN_OR_RETURN(
      SplitPoint split,
      FindSplitPoint(primary->log(), as_of, clock->NowMicros()));

  std::unique_ptr<AsOfSnapshot> snap(
      new AsOfSnapshot(primary, name, split, mode));
  if (mode == MountMode::kEager) {
    REWIND_RETURN_IF_ERROR(snap->Recover());
  } else {
    // The whole lazy mount: split search (above, waypoint-narrowed) +
    // store setup. Analysis, the page log index and loser undo belong
    // to the sweeper; queries recover what they touch meanwhile.
    snap->mount_end_lsn_ = primary->log()->next_lsn();
    snap->page_index_ = std::make_unique<PageLogIndex>(split.split_lsn);
    REWIND_RETURN_IF_ERROR(snap->SetupStorage());
    snap->stats_.split_lsn = split.split_lsn;
    snap->stats_.boundary_time = split.boundary_time;
    snap->stats_.checkpoint_lsn = split.checkpoint_lsn;
    snap->stats_.lazy = true;
  }
  primary->RegisterSnapshotAnchor(snap->split_.checkpoint_lsn);
  primary->BumpLazyMount(mode == MountMode::kLazy);
  snap->stats_.create_micros = clock->NowMicros() - t0;

  // Open for queries now; undo the in-flight transactions' effects in
  // the background (section 5.2) -- eagerly for the whole snapshot, or
  // tree-by-tree behind the sweeper.
  snap->undo_thread_ = std::thread([s = snap.get()] {
    if (s->lazy()) {
      s->SweeperMain();
    } else {
      s->BackgroundUndo();
    }
  });
  return snap;
}

Status AsOfSnapshot::SetupStorage() {
  REWIND_ASSIGN_OR_RETURN(
      side_, SparseFile::Create(primary_->dir() + "/" + name_ + ".side",
                                primary_->data_disk(), primary_->stats()));
  store_ = std::make_unique<SnapshotStore>(primary_->data_file(), side_.get(),
                                           &rewinder_,
                                           primary_->version_store(),
                                           split_.split_lsn, this);
  buffers_ = std::make_unique<BufferManager>(
      store_.get(), /*log=*/nullptr, primary_->stats(),
      primary_->options().buffer_pool_pages, /*verify_checksums=*/false,
      primary_->options().buffer_shards);
  catalog_ = std::make_unique<Catalog>(buffers_.get());
  return Status::OK();
}

Status AsOfSnapshot::ScanAnalysis(std::unordered_map<TxnId, Lsn>* att) {
  wal::Wal* log = primary_->log();

  // Analysis (section 5.2): find transactions in flight at the
  // SplitLSN. Start one checkpoint earlier than the one preceding the
  // split so a split landing inside a checkpoint window still sees the
  // full active-transaction table. The fallback is the oldest byte
  // EITHER log tier retains: a long-horizon mount whose split lives in
  // the archive scans archived history through the same cursor.
  Lsn analysis_start = log->oldest_lsn();
  {
    std::vector<CheckpointRef> ckpts = log->checkpoints();
    int newest = -1;
    for (size_t i = 0; i < ckpts.size(); i++) {
      if (ckpts[i].begin_lsn <= split_.split_lsn) {
        newest = static_cast<int>(i);
      }
    }
    if (newest > 0) analysis_start = ckpts[newest - 1].begin_lsn;
  }

  std::unordered_set<TxnId> ended;
  wal::Cursor cur = log->OpenCursor();
  REWIND_RETURN_IF_ERROR(cur.SeekTo(analysis_start));
  while (cur.Valid() && cur.lsn() <= split_.split_lsn) {
    const LogRecord& rec = cur.record();
    if (rec.type == LogType::kCheckpointEnd) {
      for (const AttEntry& e : rec.att) {
        // Never resurrect a transaction whose COMMIT/ABORT the scan
        // already passed: a commit can land between the checkpoint's
        // begin record and the end record's ATT capture.
        if (ended.count(e.txn_id) != 0) continue;
        if (att->find(e.txn_id) == att->end()) (*att)[e.txn_id] = e.last_lsn;
      }
    } else if (rec.txn_id != kInvalidTxnId) {
      if (rec.type == LogType::kCommit || rec.type == LogType::kAbort) {
        att->erase(rec.txn_id);
        ended.insert(rec.txn_id);
      } else {
        (*att)[rec.txn_id] = cur.lsn();
      }
    }
    REWIND_RETURN_IF_ERROR(cur.Next());
  }
  return Status::OK();
}

Status AsOfSnapshot::Recover() {
  wal::Wal* log = primary_->log();
  REWIND_RETURN_IF_ERROR(SetupStorage());

  Clock* clock = primary_->clock();
  uint64_t t_analysis = clock->NowMicros();
  std::unordered_map<TxnId, Lsn> att;
  REWIND_RETURN_IF_ERROR(ScanAnalysis(&att));
  stats_.analysis_micros = clock->NowMicros() - t_analysis;

  // Lock re-acquisition: walk each loser's chain and take X locks on
  // every row it touched, so queries cannot observe uncommitted
  // effects before the background undo erases them. This is the
  // redo-stage work of snapshot recovery -- page redo itself needs no
  // IO because the creation checkpoint flushed everything (section
  // 5.2), so what remains of "redo" is rebuilding the lock table.
  uint64_t t_redo = clock->NowMicros();
  wal::Cursor chain = log->OpenCursor();
  for (const auto& [txn_id, last_lsn] : att) {
    REWIND_RETURN_IF_ERROR(chain.SeekToChain(last_lsn));
    // A checkpoint ATT written by an older build can list a decided
    // transaction whose completion record predates the analysis window
    // (captured during its durability wait). Its chain head is then the
    // COMMIT/ABORT record itself: not a loser, nothing to undo.
    if (chain.Valid() && (chain.record().type == LogType::kCommit ||
                          chain.record().type == LogType::kAbort)) {
      continue;
    }
    losers_.push_back({txn_id, last_lsn});
    while (chain.Valid()) {
      const LogRecord& rec = chain.record();
      LogType op = rec.type == LogType::kClr ? rec.clr_op : rec.type;
      if ((op == LogType::kInsert || op == LogType::kDelete ||
           op == LogType::kUpdate) &&
          !rec.image.empty()) {
        std::string key = SlottedPage::EntryKey(rec.image).ToString();
        locks_.GrantForRecovery(txn_id, RowLockKey(rec.tree_id, key),
                                LockMode::kExclusive);
        stats_.locks_reacquired++;
      }
      if (rec.type == LogType::kBegin) break;
      if (rec.type == LogType::kClr) {
        REWIND_RETURN_IF_ERROR(chain.FollowUndoNext());
      } else {
        REWIND_RETURN_IF_ERROR(chain.FollowPrev());
      }
    }
  }
  stats_.redo_micros = clock->NowMicros() - t_redo;
  stats_.split_lsn = split_.split_lsn;
  stats_.boundary_time = split_.boundary_time;
  stats_.checkpoint_lsn = split_.checkpoint_lsn;
  stats_.loser_transactions = losers_.size();
  return Status::OK();
}

void AsOfSnapshot::BackgroundUndo() {
  Clock* clock = primary_->clock();
  uint64_t t0 = clock->NowMicros();
  int threads = primary_->options().replay_threads;
  if (threads < 1) threads = 1;
  stats_.replay_threads = threads;

  Status status;
  if (threads == 1) {
    status = BackgroundUndoSerial();
  } else {
    // Partition by loser transaction: a chain walk is sequential, but
    // different losers' effects are disjoint (user rows by two-phase
    // locking, an in-flight SMO's pages by the tree latch it held).
    // System losers go first, serially: their structural changes must
    // be reverted before by-key user undo re-traverses the tree, and
    // every loser user record on that tree predates the SMO.
    std::vector<AttEntry> system_losers;
    std::vector<AttEntry> user_losers;
    wal::Cursor classify = primary_->log()->OpenCursor();
    for (const AttEntry& e : losers_) {
      status = classify.SeekToChain(e.last_lsn);
      if (!status.ok()) break;
      if (classify.record().is_system) {
        system_losers.push_back(e);
      } else {
        user_losers.push_back(e);
      }
    }
    if (status.ok()) {
      for (const AttEntry& e : system_losers) {
        status = UndoLoserChain(e);
        if (!status.ok()) break;
      }
    }
    if (status.ok()) {
      status = replay::ParallelFor(
          threads, user_losers.size(),
          [&](size_t i) { return UndoLoserChain(user_losers[i]); });
    }
  }
  // Persist undone pages so later side-file reads see them even after
  // buffer-pool eviction.
  if (status.ok()) status = buffers_->FlushAll();
  {
    std::lock_guard<std::mutex> sg(stats_mu_);
    stats_.undo_micros = clock->NowMicros() - t0;
  }
  undo_status_ = status;
  // Release any remaining locks (error path) so queries do not hang.
  for (const AttEntry& e : losers_) locks_.ReleaseAll(e.txn_id);
  undo_complete_.store(true);
}

Status AsOfSnapshot::BackgroundUndoSerial() {
  wal::Cursor reader = primary_->log()->OpenCursor();
  std::unordered_map<TxnId, Lsn> cursor;
  for (const AttEntry& e : losers_) cursor[e.txn_id] = e.last_lsn;

  Status status;
  while (!cursor.empty() && status.ok()) {
    TxnId victim = 0;
    Lsn max_lsn = 0;
    for (const auto& [id, lsn] : cursor) {
      if (lsn >= max_lsn) {
        max_lsn = lsn;
        victim = id;
      }
    }
    if (max_lsn == kInvalidLsn) break;
    status = reader.SeekToChain(max_lsn);
    if (!status.ok()) break;
    const LogRecord& rec = reader.record();
    if (rec.type == LogType::kClr) {
      cursor[victim] = rec.undo_next_lsn;
    } else if (rec.type == LogType::kBegin) {
      cursor[victim] = kInvalidLsn;
    } else if (rec.IsPageRecord()) {
      // Undo on the snapshot's copy of the page: fetched through the
      // rewind path, modified in place, persisted to the side file --
      // never logged (the snapshot is not a database of record).
      const bool row_op = rec.type == LogType::kInsert ||
                          rec.type == LogType::kDelete ||
                          rec.type == LogType::kUpdate;
      if (row_op && !rec.is_system) {
        // User rows may have moved under committed SMOs: undo by key.
        status = UndoUserRowUnlogged(rec);
      } else {
        // System-transaction records: nothing else touched their pages
        // between the record and the split, so slot-exact undo is safe.
        std::unique_lock<std::shared_mutex> tl(*TreeLatch(rec.tree_id));
        auto page = buffers_->FetchPage(rec.page_id, AccessMode::kWrite);
        if (!page.ok()) {
          status = page.status();
          break;
        }
        status = ApplyUndo(page->mutable_data(), rec);
        if (status.ok()) page->MarkDirtyUnlogged();
      }
      if (!status.ok()) break;
      cursor[victim] = rec.prev_lsn;
    } else {
      cursor[victim] = rec.prev_lsn;
    }
    if (cursor[victim] == kInvalidLsn) {
      locks_.ReleaseAll(victim);
      cursor.erase(victim);
    }
  }
  return status;
}

// ------------------------- lazy-mount sweeper --------------------------

void AsOfSnapshot::SweeperMain() {
  Clock* clock = primary_->clock();
  uint64_t t0 = clock->NowMicros();

  uint64_t t_analysis = clock->NowMicros();
  Status s = SweeperAnalysis();
  {
    std::lock_guard<std::mutex> sg(stats_mu_);
    stats_.analysis_micros = clock->NowMicros() - t_analysis;
  }
  {
    std::lock_guard<std::mutex> lk(trees_mu_);
    analysis_ready_ = true;
    analysis_status_ = s;
  }
  trees_cv_.notify_all();

  if (s.ok()) {
    // Per-page chain index over (split, mount_end]. A failed build is
    // tolerated: the index only ever serves positive hits, so a partial
    // index is sound and readers fall back to current-image rewinds.
    uint64_t t_index = clock->NowMicros();
    Status bs = page_index_->Build(primary_->log(), mount_end_lsn_, clock);
    (void)bs;
    std::lock_guard<std::mutex> sg(stats_mu_);
    stats_.index_build_micros = clock->NowMicros() - t_index;
  }

  if (s.ok()) {
    // Complete every tree's loser undo so a long-lived mount converges
    // to the eager end state even for trees no query ever touches.
    // A tree that fails stays kPending (progress kept) and does not
    // stop the sweep of the others.
    std::vector<TreeId> trees;
    {
      std::lock_guard<std::mutex> lk(trees_mu_);
      for (const auto& [tree, tr] : tree_work_) trees.push_back(tree);
    }
    for (TreeId tree : trees) {
      Status ts = EnsureTreeRecoveredImpl(tree, /*on_demand=*/false);
      if (!ts.ok() && s.ok()) s = ts;
    }
  }
  // Persist undone pages so later side-file reads see them even after
  // buffer-pool eviction.
  if (s.ok()) s = buffers_->FlushAll();
  {
    std::lock_guard<std::mutex> sg(stats_mu_);
    stats_.undo_micros = clock->NowMicros() - t0;
  }
  undo_status_ = s;
  undo_complete_.store(true);
  if (s.ok()) primary_->BumpSweepsCompleted();
}

Status AsOfSnapshot::SweeperAnalysis() {
  std::unordered_map<TxnId, Lsn> att;
  REWIND_RETURN_IF_ERROR(ScanAnalysis(&att));

  // Per-tree worklists: each loser chain's page records bucketed by
  // tree, applied later in descending-LSN order -- the serial eager
  // undo order restricted to the tree, which is what makes lazy pages
  // byte-identical to eager ones. No lock reacquisition here: a tree's
  // first query waits on EnsureTreeRecovered instead of on row locks.
  // CLRs are followed through undo_next (their compensated region is
  // already undone in the log, exactly as eager undo skips it); decided
  // chain heads from old-build checkpoint ATTs are dropped.
  std::map<TreeId, TreeRecovery> work;
  wal::Cursor chain = primary_->log()->OpenCursor();
  size_t losers = 0;
  for (const auto& [txn_id, last_lsn] : att) {
    (void)txn_id;
    REWIND_RETURN_IF_ERROR(chain.SeekToChain(last_lsn));
    if (chain.Valid() && (chain.record().type == LogType::kCommit ||
                          chain.record().type == LogType::kAbort)) {
      continue;
    }
    losers++;
    Lsn next = last_lsn;
    while (next != kInvalidLsn) {
      REWIND_RETURN_IF_ERROR(chain.SeekToChain(next));
      if (!chain.Valid()) break;
      const LogRecord& rec = chain.record();
      if (rec.type == LogType::kClr) {
        next = rec.undo_next_lsn;
        continue;
      }
      if (rec.type == LogType::kBegin) break;
      if (rec.IsPageRecord()) work[rec.tree_id].work.push_back(next);
      next = rec.prev_lsn;
    }
  }
  for (auto& [tree, tr] : work) {
    (void)tree;
    std::sort(tr.work.begin(), tr.work.end(), std::greater<Lsn>());
  }
  {
    std::lock_guard<std::mutex> sg(stats_mu_);
    stats_.loser_transactions = losers;
  }
  {
    std::lock_guard<std::mutex> lk(trees_mu_);
    tree_work_ = std::move(work);
  }
  return Status::OK();
}

Status AsOfSnapshot::EnsureTreeRecovered(TreeId tree) {
  if (!lazy()) return Status::OK();
  return EnsureTreeRecoveredImpl(tree, /*on_demand=*/true);
}

Status AsOfSnapshot::EnsureTreeRecoveredImpl(TreeId tree, bool on_demand) {
  std::unique_lock<std::mutex> lk(trees_mu_);
  // No latches are held across these waits (the query surface calls in
  // BEFORE taking tree latches), so a waiting reader cannot block the
  // worklist owner.
  trees_cv_.wait(lk, [&] { return analysis_ready_; });
  REWIND_RETURN_IF_ERROR(analysis_status_);
  auto it = tree_work_.find(tree);
  if (it == tree_work_.end()) return Status::OK();  // no loser touched it
  TreeRecovery* tr = &it->second;
  for (;;) {
    if (tr->state == TreeRecovery::State::kDone) return Status::OK();
    if (tr->state == TreeRecovery::State::kPending) break;
    trees_cv_.wait(lk);  // another thread is applying: wait it out
  }
  tr->state = TreeRecovery::State::kRunning;
  lk.unlock();
  Status s = ApplyTreeWork(tree, tr);
  lk.lock();
  if (s.ok()) {
    tr->state = TreeRecovery::State::kDone;
    tr->work.clear();
    tr->work.shrink_to_fit();
    if (on_demand) primary_->BumpTreesRecoveredOnDemand(1);
  } else {
    // Back to kPending with tr->applied preserved: a later call resumes
    // exactly where this one failed, never double-applying a record.
    tr->state = TreeRecovery::State::kPending;
  }
  trees_cv_.notify_all();
  return s;
}

Status AsOfSnapshot::ApplyTreeWork(TreeId tree, TreeRecovery* tr) {
  wal::Cursor reader = primary_->log()->OpenCursor();
  while (tr->applied < tr->work.size()) {
    REWIND_RETURN_IF_ERROR(
        CheckRecoveryFault(RecoveryFaultPoint::kUndoApply, tree));
    REWIND_RETURN_IF_ERROR(reader.SeekToChain(tr->work[tr->applied]));
    const LogRecord& rec = reader.record();
    const bool row_op = rec.type == LogType::kInsert ||
                        rec.type == LogType::kDelete ||
                        rec.type == LogType::kUpdate;
    if (row_op && !rec.is_system) {
      // User rows may have moved under committed SMOs: undo by key.
      REWIND_RETURN_IF_ERROR(UndoUserRowUnlogged(rec));
    } else {
      std::unique_lock<std::shared_mutex> tl(*TreeLatch(rec.tree_id));
      REWIND_ASSIGN_OR_RETURN(
          PageGuard page,
          buffers_->FetchPage(rec.page_id, AccessMode::kWrite));
      REWIND_RETURN_IF_ERROR(ApplyUndo(page.mutable_data(), rec));
      page.MarkDirtyUnlogged();
    }
    tr->applied++;
  }
  return Status::OK();
}

void AsOfSnapshot::SetRecoveryFaultHook(RecoveryFaultHook hook) {
  std::lock_guard<std::mutex> g(fault_mu_);
  fault_hook_ = std::move(hook);
}

Status AsOfSnapshot::CheckRecoveryFault(RecoveryFaultPoint point,
                                        uint64_t id) {
  RecoveryFaultHook hook;
  {
    std::lock_guard<std::mutex> g(fault_mu_);
    hook = fault_hook_;
  }
  if (!hook) return Status::OK();
  return hook(point, id);
}

void AsOfSnapshot::NotePageRecovered(bool via_fpi_index) {
  pages_recovered_.fetch_add(1, std::memory_order_relaxed);
  primary_->BumpPagesRecoveredOnDemand(via_fpi_index);
}

Status AsOfSnapshot::UndoLoserChain(const AttEntry& loser) {
  wal::Cursor reader = primary_->log()->OpenCursor();
  Lsn next = loser.last_lsn;
  while (next != kInvalidLsn) {
    REWIND_RETURN_IF_ERROR(reader.SeekToChain(next));
    if (!reader.Valid()) break;  // empty chain head
    const LogRecord& rec = reader.record();
    if (rec.type == LogType::kClr) {
      next = rec.undo_next_lsn;
      continue;
    }
    if (rec.type == LogType::kBegin) break;
    if (rec.IsPageRecord()) {
      const bool row_op = rec.type == LogType::kInsert ||
                          rec.type == LogType::kDelete ||
                          rec.type == LogType::kUpdate;
      if (row_op && !rec.is_system) {
        REWIND_RETURN_IF_ERROR(UndoUserRowUnlogged(rec));
      } else {
        std::unique_lock<std::shared_mutex> tl(*TreeLatch(rec.tree_id));
        REWIND_ASSIGN_OR_RETURN(
            PageGuard page,
            buffers_->FetchPage(rec.page_id, AccessMode::kWrite));
        REWIND_RETURN_IF_ERROR(ApplyUndo(page.mutable_data(), rec));
        page.MarkDirtyUnlogged();
      }
    }
    next = rec.prev_lsn;
  }
  // This loser's effects are gone: let queries through its rows now.
  locks_.ReleaseAll(loser.txn_id);
  return Status::OK();
}

Status AsOfSnapshot::UndoUserRowUnlogged(const LogRecord& rec) {
  Slice entry = rec.image;  // kUpdate: the OLD entry to restore
  Slice key = SlottedPage::EntryKey(entry);
  BTree tree(rec.tree_id);
  std::unique_lock<std::shared_mutex> tl(*TreeLatch(rec.tree_id));
  for (int attempt = 0; attempt < 64; attempt++) {
    REWIND_ASSIGN_OR_RETURN(std::vector<PageId> path,
                            tree.FindLeafPath(buffers_.get(), key));
    REWIND_ASSIGN_OR_RETURN(
        PageGuard leaf, buffers_->FetchPage(path.back(), AccessMode::kWrite));
    bool found;
    uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
    switch (rec.type) {
      case LogType::kInsert:
        if (!found) {
          return Status::Corruption("snapshot undo: inserted key missing");
        }
        REWIND_RETURN_IF_ERROR(SlottedPage::RemoveAt(leaf.mutable_data(),
                                                     idx));
        leaf.MarkDirtyUnlogged();
        return Status::OK();
      case LogType::kDelete:
        if (found) {
          return Status::Corruption("snapshot undo: deleted key present");
        }
        if (SlottedPage::HasRoomFor(leaf.data(), entry.size())) {
          REWIND_RETURN_IF_ERROR(
              SlottedPage::InsertAt(leaf.mutable_data(), idx, entry));
          leaf.MarkDirtyUnlogged();
          return Status::OK();
        }
        break;  // split below
      case LogType::kUpdate: {
        if (!found) {
          return Status::Corruption("snapshot undo: updated key missing");
        }
        size_t old_len = SlottedPage::Record(leaf.data(), idx).size();
        bool fits = entry.size() <= old_len ||
                    SlottedPage::FreeSpace(leaf.data()) +
                            Header(leaf.data())->frag_bytes + old_len >=
                        entry.size();
        if (fits) {
          REWIND_RETURN_IF_ERROR(
              SlottedPage::ReplaceAt(leaf.mutable_data(), idx, entry));
          leaf.MarkDirtyUnlogged();
          return Status::OK();
        }
        break;  // split below
      }
      default:
        return Status::Corruption("snapshot undo: unexpected row op");
    }
    leaf.Release();
    REWIND_RETURN_IF_ERROR(UnloggedSplit(rec.tree_id, path));
  }
  return Status::Corruption("snapshot undo did not converge");
}

Status AsOfSnapshot::UnloggedSplit(TreeId tree,
                                   const std::vector<PageId>& path) {
  // Splits a snapshot page into a snapshot-private (virtual) sibling.
  // All changes are unlogged: the snapshot is not a database of record
  // and these pages live only in the side file.
  PageId node_id = path.back();
  REWIND_ASSIGN_OR_RETURN(PageGuard node,
                          buffers_->FetchPage(node_id, AccessMode::kWrite));
  PageHeader* nh = Header(node.mutable_data());
  const bool is_leaf = nh->type == PageType::kBtreeLeaf;
  uint16_t n = SlottedPage::SlotCount(node.data());
  if (n < 2) return Status::Corruption("unlogged split of underfull page");
  uint16_t mid = static_cast<uint16_t>(n / 2);
  std::string sep =
      SlottedPage::EntryKey(SlottedPage::Record(node.data(), mid)).ToString();

  if (node_id == tree) {
    // Root: redistribute into two virtual children; root page id stays.
    PageId left_id = virtual_next_page_++;
    PageId right_id = virtual_next_page_++;
    REWIND_ASSIGN_OR_RETURN(PageGuard left, buffers_->NewPage(left_id));
    REWIND_ASSIGN_OR_RETURN(PageGuard right, buffers_->NewPage(right_id));
    SlottedPage::Init(left.mutable_data(), left_id, nh->type, nh->level,
                      tree);
    SlottedPage::Init(right.mutable_data(), right_id, nh->type, nh->level,
                      tree);
    for (uint16_t i = 0; i < mid; i++) {
      REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(
          left.mutable_data(), i, SlottedPage::Record(node.data(), i)));
    }
    for (uint16_t i = mid; i < n; i++) {
      Slice e = SlottedPage::Record(node.data(), i);
      if (!is_leaf && i == mid) {
        std::string e0 =
            SlottedPage::MakeEntry(Slice(), SlottedPage::EntryValue(e));
        REWIND_RETURN_IF_ERROR(
            SlottedPage::InsertAt(right.mutable_data(), 0, e0));
      } else {
        REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(
            right.mutable_data(), static_cast<uint16_t>(i - mid), e));
      }
    }
    if (is_leaf) {
      Header(right.mutable_data())->right_sibling = nh->right_sibling;
      Header(left.mutable_data())->right_sibling = right_id;
    }
    uint8_t child_level = nh->level;
    SlottedPage::Init(node.mutable_data(), node_id, PageType::kBtreeInternal,
                      static_cast<uint8_t>(child_level + 1), tree);
    REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(
        node.mutable_data(), 0,
        SlottedPage::MakeEntry(Slice(), EncodeChild(left_id))));
    REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(
        node.mutable_data(), 1, SlottedPage::MakeEntry(sep,
                                                       EncodeChild(right_id))));
    left.MarkDirtyUnlogged();
    right.MarkDirtyUnlogged();
    node.MarkDirtyUnlogged();
    return Status::OK();
  }

  PageId right_id = virtual_next_page_++;
  REWIND_ASSIGN_OR_RETURN(PageGuard right, buffers_->NewPage(right_id));
  SlottedPage::Init(right.mutable_data(), right_id, nh->type, nh->level,
                    tree);
  for (uint16_t i = mid; i < n; i++) {
    Slice e = SlottedPage::Record(node.data(), i);
    if (!is_leaf && i == mid) {
      std::string e0 =
          SlottedPage::MakeEntry(Slice(), SlottedPage::EntryValue(e));
      REWIND_RETURN_IF_ERROR(
          SlottedPage::InsertAt(right.mutable_data(), 0, e0));
    } else {
      REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(
          right.mutable_data(), static_cast<uint16_t>(i - mid), e));
    }
  }
  for (uint16_t i = n; i-- > mid;) {
    REWIND_RETURN_IF_ERROR(SlottedPage::RemoveAt(node.mutable_data(), i));
  }
  if (is_leaf) {
    Header(right.mutable_data())->right_sibling = nh->right_sibling;
    nh->right_sibling = right_id;
  }
  right.MarkDirtyUnlogged();
  node.MarkDirtyUnlogged();
  right.Release();
  node.Release();

  // Insert the separator into the parent, splitting upward as needed.
  std::string entry = SlottedPage::MakeEntry(sep, EncodeChild(right_id));
  for (int attempt = 0; attempt < 64; attempt++) {
    REWIND_ASSIGN_OR_RETURN(
        std::vector<PageId> fresh,
        BTree(tree).FindLeafPath(buffers_.get(), sep));
    // Parent = the node at one level above this split's node.
    PageId parent_id = kInvalidPageId;
    for (size_t i = 0; i + 1 < fresh.size(); i++) {
      if (fresh[i + 1] == node_id || fresh[i + 1] == right_id) {
        parent_id = fresh[i];
        break;
      }
    }
    if (parent_id == kInvalidPageId) {
      // Not found on the descent (already routed right); use the
      // recorded path's parent.
      parent_id = path[path.size() - 2];
    }
    REWIND_ASSIGN_OR_RETURN(
        PageGuard parent, buffers_->FetchPage(parent_id, AccessMode::kWrite));
    bool found;
    uint16_t idx = SlottedPage::LowerBound(parent.data(), sep, &found);
    if (found) return Status::Corruption("unlogged split: duplicate sep");
    if (SlottedPage::HasRoomFor(parent.data(), entry.size())) {
      REWIND_RETURN_IF_ERROR(
          SlottedPage::InsertAt(parent.mutable_data(), idx, entry));
      parent.MarkDirtyUnlogged();
      return Status::OK();
    }
    parent.Release();
    std::vector<PageId> parent_path(path.begin(), path.end() - 1);
    REWIND_RETURN_IF_ERROR(UnloggedSplit(tree, parent_path));
  }
  return Status::Corruption("unlogged split did not converge");
}

Status AsOfSnapshot::WaitForUndo() {
  std::lock_guard<std::mutex> g(undo_join_mu_);
  if (undo_thread_.joinable()) undo_thread_.join();
  return undo_status_;
}

std::shared_mutex* AsOfSnapshot::TreeLatch(TreeId tree) {
  std::lock_guard<std::mutex> g(tree_latches_mu_);
  auto& slot = tree_latches_[tree];
  if (slot == nullptr) slot = std::make_unique<std::shared_mutex>();
  return slot.get();
}

bool AsOfSnapshot::RowBusy(TreeId tree, const std::string& key) {
  return locks_.IsHeldExclusive(RowLockKey(tree, key));
}

Status AsOfSnapshot::WaitRowVisible(TreeId tree, const std::string& key) {
  if (undo_complete_.load()) return Status::OK();
  TxnId qid = query_ids_++;
  Status s = locks_.Acquire(qid, RowLockKey(tree, key), LockMode::kShared);
  locks_.ReleaseAll(qid);
  if (s.IsAborted()) {
    return Status::Busy("snapshot background undo is still running");
  }
  return s;
}

Result<SnapshotTable> AsOfSnapshot::OpenTable(const std::string& name) {
  // The catalog trees are ordinary B-trees and get loser undo like any
  // other (a mount can straddle an in-flight CREATE TABLE).
  REWIND_RETURN_IF_ERROR(EnsureTreeRecovered(Catalog::kSysTablesRoot));
  REWIND_RETURN_IF_ERROR(EnsureTreeRecovered(Catalog::kSysIndexesRoot));
  REWIND_ASSIGN_OR_RETURN(TableInfo info, catalog_->GetTable(name));
  REWIND_ASSIGN_OR_RETURN(std::vector<IndexInfo> indexes,
                          catalog_->ListIndexesOf(info.table_id));
  return SnapshotTable(this, std::move(info), std::move(indexes));
}

Result<std::vector<TableInfo>> AsOfSnapshot::ListTables() {
  REWIND_RETURN_IF_ERROR(EnsureTreeRecovered(Catalog::kSysTablesRoot));
  return catalog_->ListTables();
}

Status AsOfSnapshot::Drop() {
  if (side_ != nullptr) return side_->Destroy();
  return Status::OK();
}

AsOfSnapshot::~AsOfSnapshot() {
  Status s = WaitForUndo();
  (void)s;
  primary_->UnregisterSnapshotAnchor(split_.checkpoint_lsn);
  s = Drop();
  (void)s;
}

}  // namespace rewinddb
