#include "snapshot/page_log_index.h"

#include <algorithm>
#include <vector>

#include "wal/archive.h"
#include "wal/wal_cursor.h"

namespace rewinddb {

Status PageLogIndex::Build(wal::Wal* log, Lsn upto, Clock* clock) {
  const uint64_t t0 = clock != nullptr ? clock->NowMicros() : 0;

  // Segment boundaries from the archive tier (if the window reaches
  // into sealed history): purely bookkeeping here -- the cursor reads
  // across the tier boundary transparently -- but counting crossings
  // proves long-horizon builds really ran over archive metadata.
  std::vector<Lsn> seg_bounds;
  if (log->archive() != nullptr) {
    for (const wal::ArchiveSegment& s : log->archive()->segments()) {
      if (s.first_lsn > split_lsn_ && s.first_lsn <= upto) {
        seg_bounds.push_back(s.first_lsn);
      }
    }
    std::sort(seg_bounds.begin(), seg_bounds.end());
  }
  size_t next_bound = 0;

  wal::Cursor cur = log->OpenCursor();
  REWIND_RETURN_IF_ERROR(cur.SeekTo(split_lsn_));
  if (cur.Valid() && cur.lsn() <= split_lsn_) {
    REWIND_RETURN_IF_ERROR(cur.Next());
  }
  uint64_t records = 0;
  uint64_t crossed = 0;
  while (cur.Valid() && cur.lsn() <= upto) {
    const Lsn lsn = cur.lsn();
    while (next_bound < seg_bounds.size() && seg_bounds[next_bound] <= lsn) {
      next_bound++;
      crossed++;
    }
    const LogRecord& rec = cur.record();
    records++;
    if (rec.IsPageRecord()) {
      std::unique_lock<std::shared_mutex> lk(mu_);
      Entry& e = entries_[rec.page_id];
      if (e.first_post_split_lsn == kInvalidLsn) {
        e.first_post_split_lsn = lsn;
        e.page_lsn_at_split = rec.prev_page_lsn;
        stats_.pages_indexed++;
      }
      if ((rec.type == LogType::kPreformat ||
           rec.type == LogType::kFpiDelta) &&
          e.fpi_lsn == kInvalidLsn) {
        e.fpi_lsn = lsn;
        e.fpi_prev_page_lsn = rec.prev_page_lsn;
        e.fpi_prev_fpi_lsn = rec.prev_fpi_lsn;
        stats_.fpi_entries++;
      }
    }
    REWIND_RETURN_IF_ERROR(cur.Next());
  }
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    stats_.records_scanned = records;
    stats_.archive_segments_crossed = crossed;
    stats_.build_micros = clock != nullptr ? clock->NowMicros() - t0 : 0;
  }
  complete_.store(true, std::memory_order_release);
  return Status::OK();
}

std::optional<PageLogIndex::Entry> PageLogIndex::Lookup(PageId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

PageLogIndex::Stats PageLogIndex::stats() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return stats_;
}

}  // namespace rewinddb
