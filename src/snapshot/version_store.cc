#include "snapshot/version_store.h"

#include <cstring>

#include "page/page.h"

namespace rewinddb {

VersionStore::Lookup VersionStore::Find(PageId id, Lsn as_of_lsn,
                                        char* buf) {
  if (budget_.load(std::memory_order_relaxed) == 0) {
    return {};  // disabled: not even a miss worth counting
  }
  // Grab a reference under the lock, copy the 8 KiB outside it: the
  // images are refcounted, so a concurrent eviction only drops the
  // index entry.
  std::shared_ptr<char[]> image;
  Lookup out;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto page_it = pages_.find(id);
    if (page_it == pages_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    VersionMap& versions = page_it->second;

    // First version with page_lsn > target; its predecessor (if any)
    // is the newest version at or before the target.
    auto above = versions.upper_bound(as_of_lsn);
    if (above != versions.begin() &&
        as_of_lsn < std::prev(above)->second.valid_until) {
      // Exact: the image of record for this target.
      auto at_or_below = std::prev(above);
      image = at_or_below->second.image;
      lru_.splice(lru_.begin(), lru_, at_or_below->second.lru);
      exact_hits_.fetch_add(1, std::memory_order_relaxed);
      out = {LookupKind::kExact, at_or_below->first};
    } else if (above != versions.end()) {
      // Partial: closest image newer than the target; the rewind
      // starts here and walks only the gap.
      image = above->second.image;
      lru_.splice(lru_.begin(), lru_, above->second.lru);
      partial_hits_.fetch_add(1, std::memory_order_relaxed);
      out = {LookupKind::kPartial, above->first};
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
  }
  memcpy(buf, image.get(), kPageSize);
  return out;
}

void VersionStore::Publish(PageId id, const char* buf, Lsn valid_until) {
  if (budget_.load(std::memory_order_relaxed) < kVersionCost) return;
  // The image's own stamped LSN keys the version; a version must cover
  // a non-empty range to ever satisfy a lookup.
  Lsn page_lsn = PageLsn(buf);
  if (valid_until == kInvalidLsn || valid_until <= page_lsn) return;

  // Copy the image outside the lock: every concurrent snapshot read
  // serializes on mu_, so the critical section should be index/LRU
  // maintenance only.
  std::shared_ptr<char[]> image(new char[kPageSize]);
  memcpy(image.get(), buf, kPageSize);

  std::lock_guard<std::mutex> g(mu_);
  // Re-read under the mutex: a concurrent SetBudget shrink must not be
  // overshot (and never inserted into a just-disabled store).
  size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget < kVersionCost) return;
  // A rewind that raced retention enforcement may deliver a version no
  // in-retention target can use; do not let it occupy budget.
  if (valid_until <= truncated_before_) return;
  VersionMap& versions = pages_[id];
  auto it = versions.find(page_lsn);
  if (it != versions.end()) {
    // Re-derived by a racing rewind; the chain makes valid_until a
    // function of page_lsn, so just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  if (versions.size() >= kMaxVersionsPerPage) {
    // Oldest-in-time versions are the least valuable (targets slide
    // forward with the retention window): an incoming version older
    // than everything cached is not worth a slot, otherwise the
    // page's oldest yields.
    if (page_lsn < versions.begin()->first) return;
    EraseLocked(id, versions.begin());
  }
  while (bytes_used_ + kVersionCost > budget && !lru_.empty()) {
    EvictOneLocked();
  }
  if (bytes_used_ + kVersionCost > budget) return;
  Version v;
  v.image = std::move(image);
  v.valid_until = valid_until;
  lru_.emplace_front(id, page_lsn);
  v.lru = lru_.begin();
  pages_[id].emplace(page_lsn, std::move(v));
  bytes_used_ += kVersionCost;
  published_.fetch_add(1, std::memory_order_relaxed);
}

void VersionStore::TruncateBefore(Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (lsn > truncated_before_) truncated_before_ = lsn;
  for (auto page_it = pages_.begin(); page_it != pages_.end();) {
    VersionMap& versions = page_it->second;
    for (auto it = versions.begin(); it != versions.end();) {
      if (it->second.valid_until <= lsn) {
        lru_.erase(it->second.lru);
        bytes_used_ -= kVersionCost;
        truncation_drops_.fetch_add(1, std::memory_order_relaxed);
        it = versions.erase(it);
      } else {
        ++it;
      }
    }
    if (versions.empty()) {
      page_it = pages_.erase(page_it);
    } else {
      ++page_it;
    }
  }
}

void VersionStore::SetBudget(size_t budget_bytes) {
  std::lock_guard<std::mutex> g(mu_);
  budget_.store(budget_bytes, std::memory_order_relaxed);
  EvictToBudgetLocked(budget_bytes);
}

void VersionStore::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  pages_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

size_t VersionStore::bytes_used() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_used_;
}

size_t VersionStore::version_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return lru_.size();
}

void VersionStore::ResetStats() {
  exact_hits_.store(0, std::memory_order_relaxed);
  partial_hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  published_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  cap_drops_.store(0, std::memory_order_relaxed);
  truncation_drops_.store(0, std::memory_order_relaxed);
}

void VersionStore::EvictOneLocked() {
  if (lru_.empty()) return;
  auto [id, page_lsn] = lru_.back();
  auto page_it = pages_.find(id);
  auto it = page_it->second.find(page_lsn);
  lru_.erase(it->second.lru);
  bytes_used_ -= kVersionCost;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  page_it->second.erase(it);
  if (page_it->second.empty()) pages_.erase(page_it);
}

void VersionStore::EvictToBudgetLocked(size_t budget) {
  while (bytes_used_ > budget && !lru_.empty()) EvictOneLocked();
}

void VersionStore::EraseLocked(PageId id, VersionMap::iterator it) {
  lru_.erase(it->second.lru);
  bytes_used_ -= kVersionCost;
  cap_drops_.fetch_add(1, std::memory_order_relaxed);
  pages_[id].erase(it);
}

}  // namespace rewinddb
