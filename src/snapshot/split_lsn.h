// SplitLSN search: translate a user-supplied wall-clock time into the
// LSN the as-of snapshot is recovered to (paper section 5.1).
//
// The search first narrows the log region using checkpoint records
// (which carry wall-clock stamps), then scans commit records within the
// region to find the last commit at or before the requested time --
// the same technique point-in-time restore uses.
#ifndef REWINDDB_SNAPSHOT_SPLIT_LSN_H_
#define REWINDDB_SNAPSHOT_SPLIT_LSN_H_

#include "common/result.h"
#include "common/types.h"
#include "wal/wal.h"

namespace rewinddb {

struct SplitPoint {
  /// The snapshot boundary: every record with LSN <= split_lsn is part
  /// of the snapshot's history (commits after it are invisible).
  Lsn split_lsn;
  /// Wall-clock of the commit chosen as the boundary.
  WallClock boundary_time;
  /// Begin-LSN of the most recent checkpoint at or before split_lsn;
  /// snapshot recovery's analysis pass starts here.
  Lsn checkpoint_lsn;
};

/// Find the split point for `target` wall-clock time.
/// Errors: OutOfRange if `target` precedes the retained log,
/// InvalidArgument if it lies in the future (`now`).
Result<SplitPoint> FindSplitPoint(wal::Wal* log, WallClock target,
                                  WallClock now);

}  // namespace rewinddb

#endif  // REWINDDB_SNAPSHOT_SPLIT_LSN_H_
