// Shared version store: a cross-snapshot cache of rewound page images.
//
// The paper's §6.2–§6.3 show that as-of query cost is dominated by the
// per-page backward log-chain walk, and that N concurrent as-of queries
// at nearby times each repeat that walk from the *current* page image.
// The version store removes the repetition: every completed rewind
// publishes its result, keyed by (page_id, page_lsn), and later rewinds
// of the same page consult the store first.
//
// A cached version is the exact historical image of the page as it
// stood at `page_lsn`, and it stays the image of record until the next
// modification of that page at `valid_until` (exclusive) -- a fact the
// rewinder knows for free, because the last chain element it processed
// IS that next modification. Lookup therefore distinguishes:
//
//   * exact hit    -- a version with page_lsn <= target < valid_until:
//                     the image is returned as-is, no chain walk at all.
//   * partial hit  -- the closest version with page_lsn > target: the
//                     image becomes the rewind STARTING POINT, so the
//                     chain walk covers only (target, page_lsn] instead
//                     of (target, current].
//   * miss         -- rewind from the current primary image as before.
//
// The store is hung off Database (one per engine; LSNs are engine
// scoped) and shared by every AsOfSnapshot, whatever surface created it
// (Connection::AsOf, Connection::Snapshot, engine-level Create). The
// per-snapshot sparse side files remain: they cache pages *at one
// snapshot's SplitLSN, after that snapshot's private loser-undo*; the
// version store is the layer above, holding only pristine physical
// rewind results that are valid for any snapshot.
//
// Memory is bounded by a byte budget (DatabaseOptions::
// version_store_bytes; 0 disables) with global LRU eviction plus a
// small per-page version cap. Log truncation (retention enforcement)
// drops versions that lie wholly before the truncation point.
#ifndef REWINDDB_SNAPSHOT_VERSION_STORE_H_
#define REWINDDB_SNAPSHOT_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/types.h"

namespace rewinddb {

/// Process-wide (per-Database) cache of rewound page images. Thread
/// safe; all operations are O(log versions-of-page) under one mutex.
class VersionStore {
 public:
  enum class LookupKind { kMiss, kExact, kPartial };

  struct Lookup {
    LookupKind kind = LookupKind::kMiss;
    /// Page LSN of the returned image (kExact / kPartial only).
    Lsn version_lsn = kInvalidLsn;
  };

  /// Counter snapshot, PageRewinder/IoStats-style: relaxed atomics
  /// written under the store mutex, read lock-free by benches.
  struct Stats {
    uint64_t exact_hits = 0;
    uint64_t partial_hits = 0;
    uint64_t misses = 0;
    uint64_t published = 0;
    /// Budget-pressure LRU evictions: the signal for sizing
    /// version_store_bytes.
    uint64_t evictions = 0;
    /// Displacements by the per-page version cap (not budget related).
    uint64_t cap_drops = 0;
    uint64_t truncation_drops = 0;
  };

  /// `budget_bytes` == 0 disables the store: every lookup misses and
  /// nothing is retained.
  explicit VersionStore(size_t budget_bytes) : budget_(budget_bytes) {}
  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Best cached version of `id` for target `as_of_lsn`; on kExact or
  /// kPartial the image is copied into `buf` (kPageSize bytes).
  Lookup Find(PageId id, Lsn as_of_lsn, char* buf);

  /// Publish a rewound image. `buf`'s stamped page LSN keys the
  /// version; `valid_until` is the LSN of the page's next modification
  /// (the last chain element the rewind processed). Ignored when
  /// disabled or when valid_until does not exceed the page LSN.
  void Publish(PageId id, const char* buf, Lsn valid_until);

  /// Retention enforcement truncated the log before `lsn`: drop every
  /// version whose validity range lies wholly before it (no in-
  /// retention target can use it). Versions spanning `lsn` stay -- they
  /// are still the image of record for targets at or after it.
  void TruncateBefore(Lsn lsn);

  /// Resize the budget at runtime (benches toggle cache-on/cache-off
  /// without rebuilding the database). Shrinking evicts immediately;
  /// 0 clears and disables.
  void SetBudget(size_t budget_bytes);

  void Clear();

  size_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }
  size_t bytes_used() const;
  size_t version_count() const;

  Stats stats() const {
    return {exact_hits_.load(std::memory_order_relaxed),
            partial_hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            published_.load(std::memory_order_relaxed),
            evictions_.load(std::memory_order_relaxed),
            cap_drops_.load(std::memory_order_relaxed),
            truncation_drops_.load(std::memory_order_relaxed)};
  }
  void ResetStats();

 private:
  struct Version;
  using LruList = std::list<std::pair<PageId, Lsn>>;
  using VersionMap = std::map<Lsn, Version>;  // page_lsn -> version

  struct Version {
    /// Refcounted so Find can copy the bytes outside the mutex while a
    /// concurrent eviction drops the index entry.
    std::shared_ptr<char[]> image;  // kPageSize bytes
    Lsn valid_until = kInvalidLsn;  // exclusive
    LruList::iterator lru;
  };

  /// Accounting cost of one version (image + index/LRU overhead).
  static constexpr size_t kVersionCost = kPageSize + 96;
  /// Hot pages keep at most this many materialized versions; beyond it
  /// the oldest-in-time version yields (targets slide forward with the
  /// retention window, so the oldest is the least likely to be asked
  /// for again).
  static constexpr size_t kMaxVersionsPerPage = 8;

  void EvictOneLocked();
  void EvictToBudgetLocked(size_t budget);
  void EraseLocked(PageId id, VersionMap::iterator it);

  std::atomic<size_t> budget_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, VersionMap> pages_;
  LruList lru_;  // front = most recent
  size_t bytes_used_ = 0;
  /// Highest TruncateBefore point seen; publishes of versions that lie
  /// wholly before it (a rewind racing retention enforcement) are
  /// rejected rather than cached unreachable.
  Lsn truncated_before_ = kInvalidLsn;

  std::atomic<uint64_t> exact_hits_{0};
  std::atomic<uint64_t> partial_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> cap_drops_{0};
  std::atomic<uint64_t> truncation_drops_{0};
};

}  // namespace rewinddb

#endif  // REWINDDB_SNAPSHOT_VERSION_STORE_H_
