#include "wal/archive.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/coding.h"

namespace rewinddb {
namespace wal {

namespace {

// Segment file layout: 64-byte header, the payload (verbatim PHYSICAL
// log bytes; compression-frame gaps are file holes), then a footer of
// ckpt_count CheckpointRef entries followed by frame_count LogFrame
// entries (16 bytes each, one checksum over the whole footer) -- the
// checkpoint- and frame-directory slices for the segment's range, so
// Open recovers both from one small read per segment instead of
// decoding archived history. frame_count sits in previously-zeroed
// header padding: segments sealed before compression existed read as
// frame_count == 0 and parse unchanged. The LSN range is stored both
// in the file name (operator-visible, sortable) and the header
// (authoritative); Open rejects files where the two disagree.
constexpr uint64_t kSegmentMagic = 0x5257415243763101ULL;  // "RWARCv1"+01
constexpr size_t kSegmentHeaderSize = 64;
constexpr size_t kCheckpointRefSize = 16;
constexpr size_t kFrameRefSize = 16;

struct SegmentHeader {
  uint64_t magic;
  Lsn first_lsn;
  Lsn last_lsn;
  uint32_t payload_checksum;
  uint32_t ckpt_count;
  uint32_t footer_checksum;
  uint32_t frame_count;

  void WriteTo(char* buf) const {
    memset(buf, 0, kSegmentHeaderSize);
    memcpy(buf, &magic, 8);
    memcpy(buf + 8, &first_lsn, 8);
    memcpy(buf + 16, &last_lsn, 8);
    memcpy(buf + 24, &payload_checksum, 4);
    memcpy(buf + 28, &ckpt_count, 4);
    memcpy(buf + 32, &footer_checksum, 4);
    memcpy(buf + 36, &frame_count, 4);
  }
  static SegmentHeader ReadFrom(const char* buf) {
    SegmentHeader h;
    memcpy(&h.magic, buf, 8);
    memcpy(&h.first_lsn, buf + 8, 8);
    memcpy(&h.last_lsn, buf + 16, 8);
    memcpy(&h.payload_checksum, buf + 24, 4);
    memcpy(&h.ckpt_count, buf + 28, 4);
    memcpy(&h.footer_checksum, buf + 32, 4);
    memcpy(&h.frame_count, buf + 36, 4);
    return h;
  }
};

std::string EncodeFooter(const std::vector<CheckpointRef>& refs,
                         const std::vector<LogFrame>& frames) {
  std::string out;
  out.reserve(refs.size() * kCheckpointRefSize + frames.size() * kFrameRefSize);
  for (const CheckpointRef& r : refs) {
    char buf[kCheckpointRefSize];
    memcpy(buf, &r.begin_lsn, 8);
    memcpy(buf + 8, &r.wall_clock, 8);
    out.append(buf, sizeof(buf));
  }
  for (const LogFrame& f : frames) {
    char buf[kFrameRefSize];
    memcpy(buf, &f.lsn, 8);
    memcpy(buf + 8, &f.ulen, 4);
    memcpy(buf + 12, &f.clen, 4);
    out.append(buf, sizeof(buf));
  }
  return out;
}

Status CloseAndReport(int fd, Status s) {
  ::close(fd);
  return s;
}

/// Make the directory entry for a freshly renamed segment durable;
/// without this a post-seal hole punch of the active log could outlive
/// the rename across a power loss.
Status SyncDir(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::IoError("open archive dir for fsync: " +
                           std::string(strerror(errno)));
  }
  if (::fsync(dfd) != 0) {
    return CloseAndReport(dfd, Status::IoError("archive dir fsync: " +
                                               std::string(strerror(errno))));
  }
  ::close(dfd);
  return Status::OK();
}

}  // namespace

std::string ArchiveLayout::SegmentFileName(Lsn first_lsn,
                                           Lsn last_lsn) const {
  char buf[64];
  snprintf(buf, sizeof(buf), "seg-%016" PRIx64 "-%016" PRIx64 ".rwarc",
           first_lsn, last_lsn);
  return buf;
}

bool ArchiveLayout::ParseSegmentFileName(const std::string& name,
                                         Lsn* first_lsn,
                                         Lsn* last_lsn) const {
  uint64_t a = 0;
  uint64_t b = 0;
  if (sscanf(name.c_str(), "seg-%16" SCNx64 "-%16" SCNx64 ".rwarc", &a,
             &b) != 2) {
    return false;
  }
  // Exact round trip only: sscanf tolerates trailing garbage, and a
  // crash can leave "....rwarc.tmp" files that must never be indexed
  // as sealed segments.
  if (SegmentFileName(a, b) != name) return false;
  *first_lsn = a;
  *last_lsn = b;
  return true;
}

ArchiveManager::ArchiveManager(std::string dir, DiskModel* disk,
                               IoStats* stats, ArchiveOptions opts)
    : dir_(std::move(dir)),
      disk_(disk),
      stats_(stats),
      opts_(opts),
      layout_(opts.layout != nullptr ? opts.layout : &default_layout_) {}

Result<std::unique_ptr<ArchiveManager>> ArchiveManager::Open(
    const std::string& dir, DiskModel* disk, IoStats* stats,
    ArchiveOptions opts) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create archive dir " + dir + ": " +
                           ec.message());
  }
  auto am = std::unique_ptr<ArchiveManager>(
      new ArchiveManager(dir, disk, stats, opts));

  struct Found {
    Segment seg;
    std::vector<CheckpointRef> ckpts;
    std::vector<LogFrame> frames;
  };
  std::vector<Found> found;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    Lsn first = kInvalidLsn;
    Lsn last = kInvalidLsn;
    if (!am->layout_->ParseSegmentFileName(name, &first, &last)) continue;
    // Validate the header against the name and the checkpoint footer
    // against its checksum; a mismatch means the file is not a sealed
    // segment of this archive and is skipped (never deleted). Payload
    // verification stays lazy -- the first read pays it.
    int fd = ::open(entry.path().c_str(), O_RDONLY);
    if (fd < 0) continue;
    char hdr[kSegmentHeaderSize];
    ssize_t n = ::pread(fd, hdr, sizeof(hdr), 0);
    SegmentHeader h = SegmentHeader::ReadFrom(hdr);
    bool valid = n == static_cast<ssize_t>(sizeof(hdr)) &&
                 h.magic == kSegmentMagic && h.first_lsn == first &&
                 h.last_lsn == last && last > first;
    std::vector<CheckpointRef> ckpts;
    std::vector<LogFrame> frames;
    if (valid && (h.ckpt_count > 0 || h.frame_count > 0)) {
      const size_t ckpt_bytes = h.ckpt_count * kCheckpointRefSize;
      const size_t footer_bytes = ckpt_bytes + h.frame_count * kFrameRefSize;
      std::string footer;
      footer.resize(footer_bytes);
      off_t at = static_cast<off_t>(kSegmentHeaderSize + (last - first));
      valid = h.ckpt_count <= (last - first) &&  // sanity bounds
              h.frame_count <= (last - first) &&
              ::pread(fd, footer.data(), footer_bytes, at) ==
                  static_cast<ssize_t>(footer_bytes) &&
              Checksum32(footer.data(), footer.size()) == h.footer_checksum;
      for (uint32_t i = 0; valid && i < h.ckpt_count; i++) {
        CheckpointRef r;
        memcpy(&r.begin_lsn, footer.data() + i * kCheckpointRefSize, 8);
        memcpy(&r.wall_clock, footer.data() + i * kCheckpointRefSize + 8, 8);
        ckpts.push_back(r);
      }
      for (uint32_t i = 0; valid && i < h.frame_count; i++) {
        const char* p = footer.data() + ckpt_bytes + i * kFrameRefSize;
        LogFrame f;
        memcpy(&f.lsn, p, 8);
        memcpy(&f.ulen, p + 8, 4);
        memcpy(&f.clen, p + 12, 4);
        frames.push_back(f);
      }
    }
    ::close(fd);
    if (!valid) continue;
    found.push_back({{first, last, entry.path().string(), false},
                     std::move(ckpts),
                     std::move(frames)});
  }
  if (ec) {
    return Status::IoError("scan archive dir " + dir + ": " + ec.message());
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) {
              return a.seg.first_lsn < b.seg.first_lsn;
            });
  // Keep the newest contiguous run: DropBefore only removes prefixes,
  // so gaps can only come from manual tampering or a dropped-then-
  // crashed prefix; serving across a gap would be a silent hole in
  // history.
  size_t run_start = 0;
  for (size_t i = 1; i < found.size(); i++) {
    if (found[i].seg.first_lsn != found[i - 1].seg.last_lsn) run_start = i;
  }
  for (size_t i = run_start; i < found.size(); i++) {
    am->segments_.push_back(found[i].seg);
    am->recovered_checkpoints_.insert(am->recovered_checkpoints_.end(),
                                      found[i].ckpts.begin(),
                                      found[i].ckpts.end());
    am->recovered_frames_.insert(am->recovered_frames_.end(),
                                 found[i].frames.begin(),
                                 found[i].frames.end());
  }
  return am;
}

Status ArchiveManager::Seal(Lsn first_lsn, Slice payload,
                            const std::vector<CheckpointRef>& checkpoints,
                            const std::vector<LogFrame>& frames) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty archive segment");
  }
  const Lsn last_lsn = first_lsn + payload.size();
  for (const LogFrame& f : frames) {
    if (f.lsn < first_lsn || f.lsn + f.ulen > last_lsn ||
        f.clen + LogManager::kFrameHeaderSize >= f.ulen) {
      return Status::InvalidArgument("archive frame outside segment range");
    }
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!segments_.empty() && first_lsn != segments_.back().last_lsn) {
      return Status::InvalidArgument(
          "archive seal must append at the high water mark (" +
          std::to_string(segments_.back().last_lsn) + "), got " +
          std::to_string(first_lsn));
    }
  }

  const std::string footer = EncodeFooter(checkpoints, frames);
  SegmentHeader h;
  h.magic = kSegmentMagic;
  h.first_lsn = first_lsn;
  h.last_lsn = last_lsn;
  h.payload_checksum = Checksum32(payload.data(), payload.size());
  h.ckpt_count = static_cast<uint32_t>(checkpoints.size());
  h.frame_count = static_cast<uint32_t>(frames.size());
  h.footer_checksum = Checksum32(footer.data(), footer.size());
  char hdr[kSegmentHeaderSize];
  h.WriteTo(hdr);

  const std::string name = layout_->SegmentFileName(first_lsn, last_lsn);
  const std::string final_path = dir_ + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create archive segment " + tmp_path + ": " +
                           strerror(errno));
  }
  if (::pwrite(fd, hdr, sizeof(hdr), 0) !=
      static_cast<ssize_t>(sizeof(hdr))) {
    return CloseAndReport(fd, Status::IoError("archive header write: " +
                                              std::string(strerror(errno))));
  }
  // Write the payload sparsely: a compression frame occupies only
  // header + compressed bytes of its logical range, so the remainder
  // [frame + 24 + clen, frame + ulen) is all zeros -- skip it and let
  // the filesystem keep a hole. The payload checksum above was computed
  // over the full zero-filled image, so VerifySegment (which reads the
  // whole logical size; holes read back as zeros) is unaffected.
  {
    uint64_t cursor = 0;  // payload-relative
    auto write_run = [&](uint64_t off, uint64_t n) -> Status {
      if (n == 0) return Status::OK();
      if (::pwrite(fd, payload.data() + off, n,
                   static_cast<off_t>(kSegmentHeaderSize + off)) !=
          static_cast<ssize_t>(n)) {
        return Status::IoError("archive payload write: " +
                               std::string(strerror(errno)));
      }
      return Status::OK();
    };
    for (const LogFrame& f : frames) {
      const uint64_t data_end =
          (f.lsn - first_lsn) + LogManager::kFrameHeaderSize + f.clen;
      const uint64_t hole_end = (f.lsn - first_lsn) + f.ulen;
      Status s = write_run(cursor, data_end - cursor);
      if (!s.ok()) return CloseAndReport(fd, s);
      cursor = hole_end;
    }
    Status s = write_run(cursor, payload.size() - cursor);
    if (!s.ok()) return CloseAndReport(fd, s);
    // Ensure the file extends through any trailing hole so the footer
    // lands at the right offset even if the last frame ends the
    // payload (pwrite of the footer below does this implicitly; this
    // comment records the dependency).
  }
  if (!footer.empty() &&
      ::pwrite(fd, footer.data(), footer.size(),
               static_cast<off_t>(kSegmentHeaderSize + payload.size())) !=
          static_cast<ssize_t>(footer.size())) {
    return CloseAndReport(fd, Status::IoError("archive footer write: " +
                                              std::string(strerror(errno))));
  }
  if (::fdatasync(fd) != 0) {
    return CloseAndReport(
        fd, Status::IoError("archive sync: " + std::string(strerror(errno))));
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("publish archive segment: " + ec.message());
  }
  // The rename must be journalled before callers may hole-punch the
  // active log's copy of these bytes.
  REWIND_RETURN_IF_ERROR(SyncDir(dir_));
  if (disk_ != nullptr) disk_->Access(first_lsn, payload.size());
  if (stats_ != nullptr) stats_->log_bytes_written += payload.size();

  {
    std::lock_guard<std::mutex> g(mu_);
    // Re-check the append invariant: a racing Seal of the same range
    // may have published while the file was being written (callers
    // serialize via Wal's seal mutex, but this class promises safety
    // on its own).
    if (!segments_.empty() && first_lsn != segments_.back().last_lsn) {
      return Status::InvalidArgument(
          "archive seal lost an append race at " +
          std::to_string(first_lsn));
    }
    // Sealed by this process: the checksum was computed from the bytes
    // just written, no need to re-verify on first read.
    segments_.push_back({first_lsn, last_lsn, final_path, true});
  }
  segments_sealed_.fetch_add(1, std::memory_order_relaxed);
  bytes_sealed_.fetch_add(payload.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status ArchiveManager::VerifySegment(const Segment& seg) {
  const uint64_t payload_size = seg.last_lsn - seg.first_lsn;
  int fd = ::open(seg.path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open archive segment " + seg.path + ": " +
                           strerror(errno));
  }
  char hdr[kSegmentHeaderSize];
  if (::pread(fd, hdr, sizeof(hdr), 0) !=
      static_cast<ssize_t>(sizeof(hdr))) {
    return CloseAndReport(fd,
                          Status::Corruption("archive header unreadable: " +
                                             seg.path));
  }
  SegmentHeader h = SegmentHeader::ReadFrom(hdr);
  std::string payload;
  payload.resize(payload_size);
  ssize_t n = ::pread(fd, payload.data(), payload_size, kSegmentHeaderSize);
  ::close(fd);
  if (n != static_cast<ssize_t>(payload_size)) {
    return Status::Corruption("archive segment short: " + seg.path);
  }
  if (Checksum32(payload.data(), payload.size()) != h.payload_checksum) {
    return Status::Corruption("archive segment checksum mismatch: " +
                              seg.path);
  }
  verifications_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ArchiveManager::ReadBytes(Lsn lsn, size_t n, char* dst) {
  size_t done = 0;
  while (done < n) {
    const Lsn at = lsn + done;
    Segment seg;
    bool need_verify = false;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = std::upper_bound(
          segments_.begin(), segments_.end(), at,
          [](Lsn v, const Segment& s) { return v < s.last_lsn; });
      if (it == segments_.end() || at < it->first_lsn) {
        return Status::OutOfRange(
            "archived log byte " + std::to_string(at) +
            " is not retained (segment dropped or never sealed)");
      }
      seg = *it;
      need_verify = !it->verified;
    }
    if (need_verify) {
      REWIND_RETURN_IF_ERROR(VerifySegment(seg));
      std::lock_guard<std::mutex> g(mu_);
      for (Segment& s : segments_) {
        if (s.first_lsn == seg.first_lsn) s.verified = true;
      }
    }
    const size_t off_in_seg = at - seg.first_lsn;
    const size_t avail = (seg.last_lsn - seg.first_lsn) - off_in_seg;
    const size_t want = std::min(n - done, avail);
    int fd = ::open(seg.path.c_str(), O_RDONLY);
    if (fd < 0) {
      // Raced an archive-retention drop between the index lookup and
      // the open; report it like any other fallen-off-the-horizon read.
      return Status::OutOfRange("archived segment dropped: " + seg.path);
    }
    ssize_t r = ::pread(fd, dst + done, want,
                        static_cast<off_t>(kSegmentHeaderSize + off_in_seg));
    ::close(fd);
    if (r != static_cast<ssize_t>(want)) {
      return Status::Corruption("archive segment read short: " + seg.path);
    }
    if (disk_ != nullptr) disk_->Access(at, want);
    done += want;
  }
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  return Status::OK();
}

Status ArchiveManager::DropBefore(Lsn lsn) {
  std::vector<Segment> victims;
  {
    std::lock_guard<std::mutex> g(mu_);
    while (!segments_.empty() && segments_.front().last_lsn <= lsn) {
      victims.push_back(segments_.front());
      segments_.erase(segments_.begin());
    }
  }
  Status first_error;
  for (const Segment& s : victims) {
    std::error_code ec;
    std::filesystem::remove(s.path, ec);
    if (ec && first_error.ok()) {
      first_error = Status::IoError("drop archive segment " + s.path + ": " +
                                    ec.message());
    }
    segments_dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(s.last_lsn - s.first_lsn,
                             std::memory_order_relaxed);
  }
  return first_error;
}

bool ArchiveManager::Covers(Lsn lsn) const {
  std::lock_guard<std::mutex> g(mu_);
  return !segments_.empty() && lsn >= segments_.front().first_lsn &&
         lsn < segments_.back().last_lsn;
}

Lsn ArchiveManager::oldest_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return segments_.empty() ? kInvalidLsn : segments_.front().first_lsn;
}

Lsn ArchiveManager::high_water() const {
  std::lock_guard<std::mutex> g(mu_);
  return segments_.empty() ? kInvalidLsn : segments_.back().last_lsn;
}

uint64_t ArchiveManager::archived_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t total = 0;
  for (const Segment& s : segments_) total += s.last_lsn - s.first_lsn;
  return total;
}

size_t ArchiveManager::segment_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return segments_.size();
}

std::vector<ArchiveSegment> ArchiveManager::segments() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<ArchiveSegment> out;
  out.reserve(segments_.size());
  for (const Segment& s : segments_) {
    out.push_back({s.first_lsn, s.last_lsn, s.path});
  }
  return out;
}

ArchiveStats ArchiveManager::stats() const {
  ArchiveStats out;
  out.segments_sealed = segments_sealed_.load(std::memory_order_relaxed);
  out.segments_dropped = segments_dropped_.load(std::memory_order_relaxed);
  out.bytes_sealed = bytes_sealed_.load(std::memory_order_relaxed);
  out.bytes_dropped = bytes_dropped_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.verifications = verifications_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace wal
}  // namespace rewinddb
