#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>

#include "wal/wal_writer.h"

namespace rewinddb {
namespace wal {

Wal::Wal(std::unique_ptr<LogManager> core, Options opts)
    : core_(std::move(core)), opts_(opts) {}

namespace {
LogManagerOptions CoreOptions(const WalOptions& opts) {
  LogManagerOptions lo;
  lo.cache_blocks = opts.cache_blocks;
  lo.max_tail_bytes = opts.max_tail_bytes;
  lo.compression = opts.compression;
  return lo;
}
}  // namespace

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         DiskModel* disk, IoStats* stats,
                                         Options opts) {
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<LogManager> core,
      LogManager::Create(path, disk, stats, CoreOptions(opts)));
  auto w = std::unique_ptr<Wal>(new Wal(std::move(core), opts));
  REWIND_RETURN_IF_ERROR(w->InitArchive());
  w->StartFlusher();
  return w;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       DiskModel* disk, IoStats* stats,
                                       Options opts) {
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<LogManager> core,
      LogManager::Open(path, disk, stats, CoreOptions(opts)));
  auto w = std::unique_ptr<Wal>(new Wal(std::move(core), opts));
  REWIND_RETURN_IF_ERROR(w->InitArchive());
  w->StartFlusher();
  return w;
}

Status Wal::InitArchive() {
  if (opts_.archive_dir.empty()) return Status::OK();
  ArchiveOptions ao;
  ao.segment_bytes = opts_.archive_segment_bytes;
  // Archive IO is charged to the same disk/stats as the active log:
  // segment reads are log reads from the horizon's point of view.
  REWIND_ASSIGN_OR_RETURN(
      archive_, ArchiveManager::Open(opts_.archive_dir, core_->disk_,
                                     core_->stats_, ao));
  const Lsn hw = archive_->high_water();
  if (hw != kInvalidLsn && hw < core_->start_lsn()) {
    // The active log was truncated while this archive was detached:
    // bytes in (hw, start_lsn) are gone for good, so the retained run
    // can never rejoin the log. Retire it and start fresh.
    REWIND_RETURN_IF_ERROR(archive_->DropBefore(UINT64_MAX));
  }
  core_->set_archive(archive_.get());
  // Rebuild checkpoint refs for archived history (LogManager::Open only
  // scans the active file): SplitLSN search and snapshot analysis rely
  // on them for AS OF targets whose log lives only in the archive. The
  // refs come from the segment footers, so open cost is one small read
  // per segment -- archived payloads are neither read nor decoded here
  // (their checksums are verified lazily, by the first read that
  // touches each segment).
  std::vector<CheckpointRef> refs;
  for (const CheckpointRef& r : archive_->recovered_checkpoints()) {
    if (r.begin_lsn < core_->start_lsn()) refs.push_back(r);
  }
  core_->PrependCheckpoints(refs);
  // Same for compression frames: archived compressed history is only
  // readable if the frame directory covers it, and LogManager::Open
  // scanned the active file alone.
  core_->PrependFrames(archive_->recovered_frames());
  return Status::OK();
}

Status Wal::ArchiveUpTo(Lsn target) {
  if (archive_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> g(archive_seal_mu_);
  Lsn from = archive_->high_water();
  if (from == kInvalidLsn) from = core_->start_lsn();
  const Lsn upto = std::min(target, core_->flushed_lsn());
  if (upto <= from) return Status::OK();

  // Chunk at record boundaries: walk the records once, cutting a
  // segment whenever the next record would push the chunk past the
  // target size (one oversized record becomes its own segment). The
  // payload bytes themselves are copied raw -- they are flushed, so
  // stable -- and the cursor guarantees first_lsn of every segment is a
  // valid scan entry point. Each segment also carries the checkpoint
  // refs of its range, so a later Open recovers the directory without
  // decoding the segment.
  const std::vector<CheckpointRef> all_ckpts = core_->checkpoints();
  std::string buf;
  auto seal = [&](Lsn a, Lsn b) -> Status {
    buf.resize(b - a);
    REWIND_RETURN_IF_ERROR(core_->ReadRaw(a, b - a, buf.data()));
    std::vector<CheckpointRef> in_range;
    for (const CheckpointRef& r : all_ckpts) {
      if (r.begin_lsn >= a && r.begin_lsn < b) in_range.push_back(r);
    }
    // Cut points are never frame-interior (the walk below only
    // advances chunk_end at safe boundaries), so every overlapping
    // frame is wholly inside [a, b).
    return archive_->Seal(a, Slice(buf), in_range,
                          core_->FramesOverlapping(a, b));
  };
  const uint64_t cap = archive_->segment_bytes();
  Cursor cur(core_.get());
  REWIND_RETURN_IF_ERROR(cur.SeekTo(from));
  Lsn chunk_start = from;
  Lsn chunk_end = from;
  while (cur.Valid() && cur.lsn() < upto) {
    const Lsn rec_end = cur.end_lsn();
    if (rec_end > upto) break;  // never split a record across tiers
    if (rec_end - chunk_start > cap && chunk_end > chunk_start) {
      REWIND_RETURN_IF_ERROR(seal(chunk_start, chunk_end));
      chunk_start = chunk_end;
    }
    // The sealing cursor decodes every record anyway: feed the split
    // search's waypoint table, repopulating it for history appended
    // before this process started.
    if (cur.record().type == LogType::kCommit) {
      NoteCommitWaypoint(cur.lsn(), cur.record().wall_clock);
    }
    // A record boundary inside a compression frame is not a valid
    // segment cut: a frame only materializes whole, so it must live in
    // exactly one tier. Only advance the cut point at safe boundaries
    // (the sealer may stop short of `upto`; TruncateBefore clamps to
    // the high water mark, so nothing is lost).
    if (!core_->IsFrameInterior(rec_end)) chunk_end = rec_end;
    REWIND_RETURN_IF_ERROR(cur.Next());
  }
  if (chunk_end > chunk_start) {
    REWIND_RETURN_IF_ERROR(seal(chunk_start, chunk_end));
  }
  return Status::OK();
}

void Wal::NoteCommitWaypoint(Lsn lsn, WallClock wall_clock) {
  // Contention-free early-out for the commit hot path: most commits
  // fall inside the spacing window of the last kept sample.
  if (lsn < waypoint_gate_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> g(waypoints_mu_);
  if (!waypoints_.empty()) {
    const CommitWaypoint& last = waypoints_.back();
    if (lsn < last.lsn + kWaypointSpacingBytes) return;
    if (wall_clock < last.wall_clock) return;  // clock regressed: skip
  }
  // Drop samples no cursor can resolve anymore (keep one below the
  // horizon as the scan's entry point for the oldest reachable time).
  const Lsn floor = core_->oldest_available_lsn();
  size_t keep = 0;
  while (keep + 1 < waypoints_.size() && waypoints_[keep + 1].lsn <= floor) {
    keep++;
  }
  if (keep > 0) waypoints_.erase(waypoints_.begin(), waypoints_.begin() + keep);
  waypoints_.push_back({lsn, wall_clock});
  waypoint_gate_.store(lsn + kWaypointSpacingBytes, std::memory_order_relaxed);
}

std::vector<CommitWaypoint> Wal::commit_waypoints() const {
  std::lock_guard<std::mutex> g(waypoints_mu_);
  return waypoints_;
}

Status Wal::DropArchiveBefore(Lsn lsn) {
  if (archive_ == nullptr) return Status::OK();
  REWIND_RETURN_IF_ERROR(archive_->DropBefore(lsn));
  core_->PruneCheckpointRefs();
  return Status::OK();
}

Status Wal::ExportPrefix(const std::string& dest_path, Lsn cut,
                         uint64_t* bytes_copied) {
  const Lsn oldest = core_->oldest_available_lsn();
  const Lsn flushed_end = core_->flushed_lsn();
  if (cut > flushed_end) {
    return Status::InvalidArgument("export cut beyond the durable log");
  }
  int dst = ::open(dest_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (dst < 0) {
    return Status::IoError("create exported log " + dest_path + ": " +
                           strerror(errno));
  }
  Status s = LogManager::WriteHeaderAt(dst, oldest);
  constexpr size_t kChunk = 1 << 20;
  std::string buf;
  buf.resize(kChunk);
  Lsn pos = oldest;
  while (s.ok() && pos < flushed_end) {
    size_t want = static_cast<size_t>(
        std::min<Lsn>(kChunk, flushed_end - pos));
    // Logical bytes, both tiers: compression frames are expanded, so
    // the exported file is a plain uncompressed record stream that any
    // version of the engine (and the crash-matrix oracle) can Open.
    s = core_->ReadLogical(pos, want, buf.data());
    if (!s.ok()) break;
    if (::pwrite(dst, buf.data(), want, static_cast<off_t>(pos)) !=
        static_cast<ssize_t>(want)) {
      s = Status::IoError("exported log write: " +
                          std::string(strerror(errno)));
      break;
    }
    // The read side was charged by ReadBytes/ReadRaw; charge the write
    // side too (the restore baseline pays for both directions).
    if (core_->disk_ != nullptr) core_->disk_->Access(pos, want);
    if (bytes_copied != nullptr) *bytes_copied += want;
    pos += want;
  }
  if (s.ok() && ::ftruncate(dst, static_cast<off_t>(cut)) != 0) {
    s = Status::IoError("cut exported log: " + std::string(strerror(errno)));
  }
  if (s.ok() && ::fdatasync(dst) != 0) {
    s = Status::IoError("sync exported log: " + std::string(strerror(errno)));
  }
  ::close(dst);
  return s;
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> g(pipe_mu_);
    stop_ = true;
  }
  flush_request_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // A clean shutdown flushed through Database::Close/Checkpoint; after
  // SimulateCrash the tail must be lost, so never flush here.
}

void Wal::StartFlusher() {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> g(pipe_mu_);
  for (;;) {
    if (stop_) return;
    if (!flush_requested_) {
      // Timed polling only while unflushed bytes exist (kAsync/kNone
      // stragglers appended during a flush). A fully-flushed log parks
      // the thread without a timer: every path that wants durability
      // nudges (group/async commits, backpressure, FlushTo), and kNone
      // appends deliberately schedule nothing.
      const bool dirty = core_->flushed_lsn() < core_->next_lsn();
      if (dirty && opts_.flush_interval_micros > 0) {
        flush_request_cv_.wait_for(
            g, std::chrono::microseconds(opts_.flush_interval_micros),
            [&] { return stop_ || flush_requested_; });
      } else {
        flush_request_cv_.wait(g, [&] { return stop_ || flush_requested_; });
      }
    }
    if (stop_) return;
    flush_requested_ = false;
    g.unlock();
    // Flush the whole tail: one pwrite + one fdatasync cover every
    // commit that queued while the previous batch was in flight.
    Status s = Status::OK();
    Lsn target = core_->next_lsn();
    if (core_->flushed_lsn() < target) {
      s = core_->FlushTo(target - 1);
    }
    g.lock();
    // Not sticky: FlushLocked hands a failed batch back to the tail,
    // so a later round can succeed and must clear the error -- one
    // transient ENOSPC must not fail every future kGroup commit.
    flusher_status_ = s;
    durable_cv_.notify_all();
  }
}

void Wal::NudgeFlusher() {
  {
    std::lock_guard<std::mutex> g(pipe_mu_);
    flush_requested_ = true;
  }
  flush_request_cv_.notify_one();
}

Writer Wal::MakeWriter() { return Writer(this); }

Lsn Wal::Append(const LogRecord& rec) {
  bool need_flush = false;
  Lsn lsn = core_->Append(rec, &need_flush);
  appends_.fetch_add(1, std::memory_order_relaxed);
  NoteRecord(rec.type, rec.EncodedSize());
  if (need_flush) NudgeFlusher();
  return lsn;
}

Lsn Wal::PublishEncoded(Slice encoded, size_t records) {
  bool need_flush = false;
  Lsn base = core_->AppendEncoded(encoded, records, &need_flush);
  appends_.fetch_add(records, std::memory_order_relaxed);
  if (need_flush) {
    if (core_->tail_bytes() >= opts_.hard_tail_bytes) {
      // The flusher is not keeping up; apply backpressure in the
      // appending thread to bound memory.
      Status s = core_->FlushTo(base);
      (void)s;  // an IO error here resurfaces on the next commit wait
    } else {
      NudgeFlusher();
    }
  }
  return base;
}

Status Wal::WaitCommit(Lsn lsn, CommitMode mode) {
  switch (mode) {
    case CommitMode::kSync:
      sync_commits_.fetch_add(1, std::memory_order_relaxed);
      return core_->FlushTo(lsn);
    case CommitMode::kAsync:
      async_commits_.fetch_add(1, std::memory_order_relaxed);
      NudgeFlusher();
      return Status::OK();
    case CommitMode::kNone:
      none_commits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    case CommitMode::kGroup:
      break;
  }
  group_commits_.fetch_add(1, std::memory_order_relaxed);
  if (core_->flushed_lsn() > lsn) return Status::OK();  // already durable
  group_commit_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> g(pipe_mu_);
  flush_requested_ = true;
  // A stale error from an earlier round must not be returned to this
  // commit before the retry it is requesting has run: this waiter's
  // outcome is the NEXT round's status.
  flusher_status_ = Status::OK();
  flush_request_cv_.notify_one();
  durable_cv_.wait(g, [&] {
    return stop_ || !flusher_status_.ok() || core_->flushed_lsn() > lsn;
  });
  if (core_->flushed_lsn() > lsn) return Status::OK();
  if (!flusher_status_.ok()) return flusher_status_;
  return Status::Aborted("wal shut down before the commit became durable");
}

Status Wal::FlushTo(Lsn lsn) { return core_->FlushTo(lsn); }

Status Wal::FlushAll() { return core_->FlushAll(); }

WalStats Wal::stats() const {
  LogFlushStats core = core_->flush_stats();
  WalStats out;
  out.fsyncs = core.fsyncs;
  out.flushed_bytes = core.batch_bytes;
  out.max_batch_bytes = core.max_batch_bytes;
  out.appends = appends_.load(std::memory_order_relaxed);
  out.group_commit_waits = group_commit_waits_.load(std::memory_order_relaxed);
  out.sync_commits = sync_commits_.load(std::memory_order_relaxed);
  out.group_commits = group_commits_.load(std::memory_order_relaxed);
  out.async_commits = async_commits_.load(std::memory_order_relaxed);
  out.none_commits = none_commits_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < WalStats::kTypeSlots; i++) {
    out.record_counts[i] = record_counts_[i].load(std::memory_order_relaxed);
    out.record_bytes[i] = record_bytes_[i].load(std::memory_order_relaxed);
  }
  out.fpi_delta_hits = fpi_delta_hits_.load(std::memory_order_relaxed);
  out.fpi_delta_fallbacks =
      fpi_delta_fallbacks_.load(std::memory_order_relaxed);
  out.frames_written = core.frames_written;
  out.frame_logical_bytes = core.frame_logical_bytes;
  out.frame_physical_bytes = core.frame_physical_bytes;
  return out;
}

void Wal::SimulateCrash() {
  {
    std::lock_guard<std::mutex> g(pipe_mu_);
    stop_ = true;
  }
  flush_request_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

}  // namespace wal
}  // namespace rewinddb
