#include "wal/wal.h"

#include <chrono>

#include "wal/wal_writer.h"

namespace rewinddb {
namespace wal {

Wal::Wal(std::unique_ptr<LogManager> core, Options opts)
    : core_(std::move(core)), opts_(opts) {}

namespace {
LogManagerOptions CoreOptions(const WalOptions& opts) {
  LogManagerOptions lo;
  lo.cache_blocks = opts.cache_blocks;
  lo.max_tail_bytes = opts.max_tail_bytes;
  return lo;
}
}  // namespace

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         DiskModel* disk, IoStats* stats,
                                         Options opts) {
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<LogManager> core,
      LogManager::Create(path, disk, stats, CoreOptions(opts)));
  auto w = std::unique_ptr<Wal>(new Wal(std::move(core), opts));
  w->StartFlusher();
  return w;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       DiskModel* disk, IoStats* stats,
                                       Options opts) {
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<LogManager> core,
      LogManager::Open(path, disk, stats, CoreOptions(opts)));
  auto w = std::unique_ptr<Wal>(new Wal(std::move(core), opts));
  w->StartFlusher();
  return w;
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> g(pipe_mu_);
    stop_ = true;
  }
  flush_request_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // A clean shutdown flushed through Database::Close/Checkpoint; after
  // SimulateCrash the tail must be lost, so never flush here.
}

void Wal::StartFlusher() {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> g(pipe_mu_);
  for (;;) {
    if (stop_) return;
    if (!flush_requested_) {
      // Timed polling only while unflushed bytes exist (kAsync/kNone
      // stragglers appended during a flush). A fully-flushed log parks
      // the thread without a timer: every path that wants durability
      // nudges (group/async commits, backpressure, FlushTo), and kNone
      // appends deliberately schedule nothing.
      const bool dirty = core_->flushed_lsn() < core_->next_lsn();
      if (dirty && opts_.flush_interval_micros > 0) {
        flush_request_cv_.wait_for(
            g, std::chrono::microseconds(opts_.flush_interval_micros),
            [&] { return stop_ || flush_requested_; });
      } else {
        flush_request_cv_.wait(g, [&] { return stop_ || flush_requested_; });
      }
    }
    if (stop_) return;
    flush_requested_ = false;
    g.unlock();
    // Flush the whole tail: one pwrite + one fdatasync cover every
    // commit that queued while the previous batch was in flight.
    Status s = Status::OK();
    Lsn target = core_->next_lsn();
    if (core_->flushed_lsn() < target) {
      s = core_->FlushTo(target - 1);
    }
    g.lock();
    // Not sticky: FlushLocked hands a failed batch back to the tail,
    // so a later round can succeed and must clear the error -- one
    // transient ENOSPC must not fail every future kGroup commit.
    flusher_status_ = s;
    durable_cv_.notify_all();
  }
}

void Wal::NudgeFlusher() {
  {
    std::lock_guard<std::mutex> g(pipe_mu_);
    flush_requested_ = true;
  }
  flush_request_cv_.notify_one();
}

Writer Wal::MakeWriter() { return Writer(this); }

Lsn Wal::Append(const LogRecord& rec) {
  bool need_flush = false;
  Lsn lsn = core_->Append(rec, &need_flush);
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (need_flush) NudgeFlusher();
  return lsn;
}

Lsn Wal::PublishEncoded(Slice encoded, size_t records) {
  bool need_flush = false;
  Lsn base = core_->AppendEncoded(encoded, records, &need_flush);
  appends_.fetch_add(records, std::memory_order_relaxed);
  if (need_flush) {
    if (core_->tail_bytes() >= opts_.hard_tail_bytes) {
      // The flusher is not keeping up; apply backpressure in the
      // appending thread to bound memory.
      Status s = core_->FlushTo(base);
      (void)s;  // an IO error here resurfaces on the next commit wait
    } else {
      NudgeFlusher();
    }
  }
  return base;
}

Status Wal::WaitCommit(Lsn lsn, CommitMode mode) {
  switch (mode) {
    case CommitMode::kSync:
      sync_commits_.fetch_add(1, std::memory_order_relaxed);
      return core_->FlushTo(lsn);
    case CommitMode::kAsync:
      async_commits_.fetch_add(1, std::memory_order_relaxed);
      NudgeFlusher();
      return Status::OK();
    case CommitMode::kNone:
      none_commits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    case CommitMode::kGroup:
      break;
  }
  group_commits_.fetch_add(1, std::memory_order_relaxed);
  if (core_->flushed_lsn() > lsn) return Status::OK();  // already durable
  group_commit_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> g(pipe_mu_);
  flush_requested_ = true;
  // A stale error from an earlier round must not be returned to this
  // commit before the retry it is requesting has run: this waiter's
  // outcome is the NEXT round's status.
  flusher_status_ = Status::OK();
  flush_request_cv_.notify_one();
  durable_cv_.wait(g, [&] {
    return stop_ || !flusher_status_.ok() || core_->flushed_lsn() > lsn;
  });
  if (core_->flushed_lsn() > lsn) return Status::OK();
  if (!flusher_status_.ok()) return flusher_status_;
  return Status::Aborted("wal shut down before the commit became durable");
}

Status Wal::FlushTo(Lsn lsn) { return core_->FlushTo(lsn); }

Status Wal::FlushAll() { return core_->FlushAll(); }

WalStats Wal::stats() const {
  LogFlushStats core = core_->flush_stats();
  WalStats out;
  out.fsyncs = core.fsyncs;
  out.flushed_bytes = core.batch_bytes;
  out.max_batch_bytes = core.max_batch_bytes;
  out.appends = appends_.load(std::memory_order_relaxed);
  out.group_commit_waits = group_commit_waits_.load(std::memory_order_relaxed);
  out.sync_commits = sync_commits_.load(std::memory_order_relaxed);
  out.group_commits = group_commits_.load(std::memory_order_relaxed);
  out.async_commits = async_commits_.load(std::memory_order_relaxed);
  out.none_commits = none_commits_.load(std::memory_order_relaxed);
  return out;
}

void Wal::SimulateCrash() {
  {
    std::lock_guard<std::mutex> g(pipe_mu_);
    stop_ = true;
  }
  flush_request_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

}  // namespace wal
}  // namespace rewinddb
