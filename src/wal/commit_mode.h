// Commit durability levels (the write half of the WAL surface).
//
// The mode decides what a successful Txn::Commit() promises about the
// commit record's durability:
//
//   kSync  -- the commit record is fsync'd before Commit returns, by
//             this thread (one fsync per commit; the strongest and the
//             slowest mode; the pre-redesign default behaviour).
//   kGroup -- Commit blocks until the background flusher's next batch
//             covers the commit record (one fsync covers every commit
//             that queued while the previous batch was being written).
//             Same crash guarantee as kSync, amortized fsync cost.
//   kAsync -- Commit nudges the flusher and returns immediately; the
//             record becomes durable within one flush interval. A crash
//             in that window loses the transaction (atomically: ARIES
//             undo rolls back any of its page changes that did reach
//             the disk ahead of the commit record).
//   kNone  -- Commit returns immediately and does not schedule a
//             flush; durability rides on backpressure, checkpoints or
//             a later stronger commit. Crash may lose the transaction
//             (again atomically). For bulk loads and benchmarks.
#ifndef REWINDDB_WAL_COMMIT_MODE_H_
#define REWINDDB_WAL_COMMIT_MODE_H_

namespace rewinddb {

enum class CommitMode : unsigned char {
  kSync = 0,
  kGroup = 1,
  kAsync = 2,
  kNone = 3,
};

/// "SYNC", "GROUP", "ASYNC", "NONE".
const char* CommitModeName(CommitMode mode);

/// Parse a (case-insensitive) mode name; returns false if `text` names
/// no mode.
bool ParseCommitMode(const char* text, CommitMode* out);

}  // namespace rewinddb

#endif  // REWINDDB_WAL_COMMIT_MODE_H_
