#include "wal/wal_cursor.h"

#include <vector>

#include "common/page_delta.h"
#include "log/log_manager.h"

namespace rewinddb {
namespace wal {

Status Cursor::LoadAt(Lsn lsn, bool benign_corruption) {
  valid_ = false;
  if (lsn == kInvalidLsn) return Status::OK();  // chain end
  size_t size = 0;
  auto rec = core_->ReadRecord(lsn, &size);
  if (rec.ok()) {
    rec_ = std::move(*rec);
    lsn_ = lsn;
    size_ = size;
    valid_ = true;
    return Status::OK();
  }
  const Status& s = rec.status();
  if (s.IsInvalidArgument()) {
    // At or past the append frontier: the benign end of a forward scan.
    return Status::OK();
  }
  if (s.IsCorruption() && benign_corruption) {
    // Torn tail: the durable log simply ends here.
    return Status::OK();
  }
  return s;
}

Status Cursor::SeekTo(Lsn lsn) { return LoadAt(lsn, /*benign=*/false); }

Status Cursor::Follow(Lsn lsn) {
  if (lsn == kInvalidLsn) {
    valid_ = false;
    return Status::OK();  // chain end
  }
  REWIND_RETURN_IF_ERROR(LoadAt(lsn, /*benign=*/false));
  if (!valid_) {
    // Unlike a forward scan reaching the frontier, a chain link that
    // does not resolve to a record is a broken chain, never benign:
    // silently stopping here would present a partial rollback or
    // flashback as complete.
    return Status::Corruption("log chain link " + std::to_string(lsn) +
                              " points past the log end");
  }
  return Status::OK();
}

Status Cursor::Next() {
  if (!valid_) {
    return Status::InvalidArgument("Next() on an invalid wal::Cursor");
  }
  Lsn next = lsn_ + size_;
  // One-block readahead: on crossing into a new block, warm the cache
  // with the block AFTER it, so a record straddling out of the new
  // block finds its second half already resident.
  if ((next / LogManager::kBlockSize) != (lsn_ / LogManager::kBlockSize)) {
    core_->PrefetchBlock(next + LogManager::kBlockSize);
  }
  return LoadAt(next, /*benign=*/true);
}

Status MaterializeFpiImage(const Cursor& at, std::string* image) {
  if (!at.Valid()) {
    return Status::InvalidArgument("MaterializeFpiImage on invalid cursor");
  }
  if (at.record().type == LogType::kPreformat) {
    if (at.record().image.size() != kPageSize) {
      return Status::Corruption("FPI at " + std::to_string(at.lsn()) +
                                " has wrong image size");
    }
    *image = at.record().image;
    return Status::OK();
  }
  if (at.record().type != LogType::kFpiDelta) {
    return Status::InvalidArgument("MaterializeFpiImage on non-FPI record");
  }
  // Walk the delta chain back to its kPreformat base, collecting the
  // patches newest-first. The writer bounds chains (PageOps gives up
  // and emits a full image past kMaxFpiDeltaChain), so a longer walk
  // here means a broken chain, not a deep one.
  constexpr size_t kChainCap = 64;
  std::vector<std::string> patches;  // newest-first
  Cursor cur = at;  // the caller's cursor never moves
  patches.push_back(cur.record().image);
  while (true) {
    if (patches.size() > kChainCap) {
      return Status::Corruption("FPI delta chain at " +
                                std::to_string(at.lsn()) +
                                " exceeds the chain cap");
    }
    REWIND_RETURN_IF_ERROR(cur.FollowPrevFpi());
    if (!cur.Valid()) {
      return Status::Corruption("FPI delta chain at " +
                                std::to_string(at.lsn()) +
                                " has no full-image base");
    }
    if (cur.record().type == LogType::kPreformat) break;
    if (cur.record().type != LogType::kFpiDelta) {
      return Status::Corruption("FPI chain at " + std::to_string(at.lsn()) +
                                " links a non-FPI record");
    }
    patches.push_back(cur.record().image);
  }
  if (cur.record().image.size() != kPageSize) {
    return Status::Corruption("FPI base at " + std::to_string(cur.lsn()) +
                              " has wrong image size");
  }
  *image = cur.record().image;
  for (size_t i = patches.size(); i-- > 0;) {  // oldest-first
    REWIND_RETURN_IF_ERROR(
        ApplyPageDelta(image->data(), image->size(), Slice(patches[i])));
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace rewinddb
