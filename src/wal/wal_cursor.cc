#include "wal/wal_cursor.h"

#include "log/log_manager.h"

namespace rewinddb {
namespace wal {

Status Cursor::LoadAt(Lsn lsn, bool benign_corruption) {
  valid_ = false;
  if (lsn == kInvalidLsn) return Status::OK();  // chain end
  size_t size = 0;
  auto rec = core_->ReadRecord(lsn, &size);
  if (rec.ok()) {
    rec_ = std::move(*rec);
    lsn_ = lsn;
    size_ = size;
    valid_ = true;
    return Status::OK();
  }
  const Status& s = rec.status();
  if (s.IsInvalidArgument()) {
    // At or past the append frontier: the benign end of a forward scan.
    return Status::OK();
  }
  if (s.IsCorruption() && benign_corruption) {
    // Torn tail: the durable log simply ends here.
    return Status::OK();
  }
  return s;
}

Status Cursor::SeekTo(Lsn lsn) { return LoadAt(lsn, /*benign=*/false); }

Status Cursor::Follow(Lsn lsn) {
  if (lsn == kInvalidLsn) {
    valid_ = false;
    return Status::OK();  // chain end
  }
  REWIND_RETURN_IF_ERROR(LoadAt(lsn, /*benign=*/false));
  if (!valid_) {
    // Unlike a forward scan reaching the frontier, a chain link that
    // does not resolve to a record is a broken chain, never benign:
    // silently stopping here would present a partial rollback or
    // flashback as complete.
    return Status::Corruption("log chain link " + std::to_string(lsn) +
                              " points past the log end");
  }
  return Status::OK();
}

Status Cursor::Next() {
  if (!valid_) {
    return Status::InvalidArgument("Next() on an invalid wal::Cursor");
  }
  Lsn next = lsn_ + size_;
  // One-block readahead: on crossing into a new block, warm the cache
  // with the block AFTER it, so a record straddling out of the new
  // block finds its second half already resident.
  if ((next / LogManager::kBlockSize) != (lsn_ / LogManager::kBlockSize)) {
    core_->PrefetchBlock(next + LogManager::kBlockSize);
  }
  return LoadAt(next, /*benign=*/true);
}

}  // namespace wal
}  // namespace rewinddb
