// wal::Cursor -- the one record-level read API over the transaction
// log.
//
// Two access patterns, one handle:
//
//  * forward scans (recovery analysis/redo, SplitLSN search, flashback
//    victim location): SeekTo(from) then Next() until !Valid() or the
//    caller's bound; block prefetch keeps sequential reads one cache
//    miss per 32 KiB block, and record sizes come from the decode so
//    iteration never re-encodes (the seed's Scan re-encoded every
//    record just to find the next one);
//
//  * chain walks (rollback, page rewind, snapshot undo): SeekTo(head)
//    then FollowPrev()/FollowPrevPage()/FollowPrevFpi()/
//    FollowUndoNext(), which jump straight to the LSN the current
//    record names. A kInvalidLsn link ends the walk benignly
//    (Valid() false, OK status).
//
// End-of-log and a torn tail end a forward scan benignly: Next()
// leaves the cursor invalid with OK status, mirroring how recovery
// treats a half-written final record. Random-access entry points
// (SeekTo, Follow*) surface corruption instead -- a broken chain is
// never benign.
//
// Tier transparency: LSNs below the active log's start_lsn resolve
// through the WAL archive tier (sealed segments holding the same bytes
// at the same offsets) when one is attached, so scans and chain walks
// cross the active/archive boundary without the cursor -- or any of its
// consumers -- knowing it exists. "Below the retention window" in the
// contracts below means below wal::Wal::oldest_lsn(), the oldest byte
// EITHER tier retains. A checksum-corrupt archived segment surfaces
// Status::Corruption from the read that touches it, never a silent
// short walk.
#ifndef REWINDDB_WAL_WAL_CURSOR_H_
#define REWINDDB_WAL_WAL_CURSOR_H_

#include "common/result.h"
#include "common/types.h"
#include "log/log_record.h"

namespace rewinddb {

class LogManager;

namespace wal {

class Cursor {
 public:
  /// True if the cursor is positioned on a decoded record.
  bool Valid() const { return valid_; }

  /// LSN of the current record. Undefined unless Valid().
  Lsn lsn() const { return lsn_; }

  /// The current record. Undefined unless Valid().
  const LogRecord& record() const { return rec_; }

  /// LSN one past the current record (the next record's position in a
  /// forward scan; also the log-cut point after a boundary record).
  Lsn end_lsn() const { return lsn_ + size_; }

  /// Position on the record at `lsn` (forward-scan entry point).
  /// kInvalidLsn or at/past the log end: invalid, OK (benign end).
  /// Below the retention window: invalid, OutOfRange.
  /// Undecodable bytes: invalid, Corruption.
  Status SeekTo(Lsn lsn);

  /// Position on the head of a chain walk: kInvalidLsn is a benign
  /// (empty) chain, but any other `lsn` MUST resolve to a record --
  /// at/past the log end is Corruption, same as Follow* (a broken
  /// chain must never read as a completed walk).
  Status SeekToChain(Lsn lsn) { return Follow(lsn); }

  /// Advance to the next record in LSN order. At the log end or on a
  /// torn tail record the cursor becomes invalid with OK status.
  Status Next();

  // Chain navigation: jump to the LSN the current record names.
  // kInvalidLsn links invalidate benignly with OK status; any other
  // link that does not resolve to a record is Corruption (a broken
  // chain must never read as a completed walk).
  Status FollowPrev() { return Follow(rec_.prev_lsn); }
  Status FollowPrevPage() { return Follow(rec_.prev_page_lsn); }
  Status FollowPrevFpi() { return Follow(rec_.prev_fpi_lsn); }
  Status FollowUndoNext() { return Follow(rec_.undo_next_lsn); }

 private:
  friend class Wal;

  explicit Cursor(LogManager* core) : core_(core) {}

  Status Follow(Lsn lsn);
  /// Load the record at `lsn`; `benign_corruption` maps a decode
  /// failure to a quiet end-of-scan instead of an error.
  Status LoadAt(Lsn lsn, bool benign_corruption);

  LogManager* core_;
  bool valid_ = false;
  Lsn lsn_ = kInvalidLsn;
  size_t size_ = 0;
  LogRecord rec_;
};

/// Materialize the full page image the FPI record under `at` stands
/// for: a kPreformat's image directly, or a kFpiDelta's chain composed
/// by walking prev_fpi_lsn back to the terminating kPreformat base and
/// applying the deltas oldest-first. `at` must be Valid() and on a
/// kPreformat or kFpiDelta; the cursor itself is not moved (the walk
/// runs on a copy). Every failure mode -- missing base, over-long
/// chain, non-FPI link, malformed delta, wrong image size -- surfaces
/// Corruption: an FPI jump must never compose a wrong page silently.
Status MaterializeFpiImage(const Cursor& at, std::string* image);

}  // namespace wal
}  // namespace rewinddb

#endif  // REWINDDB_WAL_WAL_CURSOR_H_
