// wal::Writer -- the per-transaction write handle of the WAL surface.
//
// A Writer stages record encodings in transaction-local buffers and
// publishes them to the shared log in single splices, so the global
// append lock is held only for a pointer-bump and a memcpy:
//
//  * Stage(rec) encodes a record WITHOUT assigning an LSN. The BEGIN
//    record of every transaction is staged: a transaction that never
//    writes publishes nothing, and one that does publishes BEGIN
//    together with its first update in one batch (one lock
//    acquisition, contiguous LSNs).
//  * Append(rec) encodes outside the lock, then publishes any staged
//    bytes plus this record in one splice and returns the record's
//    LSN (page headers are stamped with it immediately).
//
// Writers never stage checkpoint records (those go through
// Wal::Append, which maintains the checkpoint directory).
#ifndef REWINDDB_WAL_WAL_WRITER_H_
#define REWINDDB_WAL_WAL_WRITER_H_

#include <string>

#include "common/types.h"
#include "log/log_record.h"
#include "wal/commit_mode.h"

namespace rewinddb {
namespace wal {

class Wal;

class Writer {
 public:
  /// Detached handle; Append on it is a programming error.
  Writer() = default;
  explicit Writer(Wal* wal) : wal_(wal) {}

  Writer(Writer&&) = default;
  Writer& operator=(Writer&&) = default;
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Encode `rec` into the local staging buffer; it receives its LSN
  /// when the next Append publishes.
  void Stage(const LogRecord& rec);

  /// Publish staged bytes + `rec` in one splice. Returns `rec`'s LSN;
  /// `*publish_base` (if non-null) receives the LSN of the first
  /// published byte (the staged BEGIN's LSN when one was pending) --
  /// the transaction's true retention floor.
  Lsn Append(const LogRecord& rec, Lsn* publish_base = nullptr);

  bool attached() const { return wal_ != nullptr; }
  Wal* wal() const { return wal_; }

 private:
  Wal* wal_ = nullptr;
  std::string staged_;    // encoded, unpublished records
  size_t staged_records_ = 0;
  std::string scratch_;   // reusable encode buffer for Append
};

}  // namespace wal
}  // namespace rewinddb

#endif  // REWINDDB_WAL_WAL_WRITER_H_
