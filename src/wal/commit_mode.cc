#include "wal/commit_mode.h"

#include <cctype>
#include <string>

namespace rewinddb {

const char* CommitModeName(CommitMode mode) {
  switch (mode) {
    case CommitMode::kSync:
      return "SYNC";
    case CommitMode::kGroup:
      return "GROUP";
    case CommitMode::kAsync:
      return "ASYNC";
    case CommitMode::kNone:
      return "NONE";
  }
  return "UNKNOWN";
}

bool ParseCommitMode(const char* text, CommitMode* out) {
  std::string upper;
  for (const char* p = text; *p != '\0'; p++) {
    upper.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(*p))));
  }
  if (upper == "SYNC") {
    *out = CommitMode::kSync;
  } else if (upper == "GROUP") {
    *out = CommitMode::kGroup;
  } else if (upper == "ASYNC") {
    *out = CommitMode::kAsync;
  } else if (upper == "NONE") {
    *out = CommitMode::kNone;
  } else {
    return false;
  }
  return true;
}

}  // namespace rewinddb
