// WAL archive tier: sealed, checksummed segments of old log.
//
// The paper's premise is that the transaction log IS the version store,
// which only stays viable in production if the log can be retained for
// the whole AS OF window without growing the ACTIVE log unboundedly.
// The archive tier is how the two are decoupled (the same split Sauer &
// Haerder's REDO-only recovery design makes, see PAPERS.md): retention
// enforcement first copies old log bytes into immutable archive
// segments, then truncates the active log, so crash recovery scans stay
// short while point-in-time reads keep the full horizon.
//
// Addressing: LSNs are byte offsets into one conceptual, append-only
// log. A segment holds the verbatim log bytes of the half-open range
// [first_lsn, last_lsn) at their original offsets, so serving a read is
// pure address arithmetic and the record encoding never changes across
// the tier boundary. wal::Cursor consumers (PageRewinder, flashback,
// recovery analysis, AsOfSnapshot mounts) therefore work unmodified on
// archived history -- LogManager transparently falls back to the
// archive for LSNs below the active log's start.
//
// Invariants:
//  * segments are record-aligned: first_lsn and last_lsn are record
//    boundaries (the sealer chunks with a cursor), so a forward scan
//    may start at any segment's first_lsn;
//  * retained segments are contiguous: Seal() only appends at the high
//    water mark and DropBefore() only removes a prefix, so the index is
//    a single run [oldest_lsn, high_water);
//  * sealed bytes are immutable: every segment carries a checksum of
//    its payload, verified on the first read after (re)open; a mismatch
//    surfaces Status::Corruption -- never a silent short walk.
//
// Thread safety: all public methods are safe for concurrent use. One
// internal mutex guards the index; payload IO runs outside it. The
// mutex is a leaf in the engine's lock hierarchy (no other lock is ever
// taken while holding it).
#ifndef REWINDDB_WAL_ARCHIVE_H_
#define REWINDDB_WAL_ARCHIVE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/types.h"
#include "io/disk_model.h"
#include "io/io_stats.h"
#include "log/log_manager.h"

namespace rewinddb {
namespace wal {

/// Filesystem layout policy: how segment ranges map to file names.
/// Pluggable so deployments can adopt their own naming (e.g. sharding
/// archive files across directories by LSN prefix) without touching the
/// manager; the default flat layout keeps one directory of
/// `seg-<first>-<last>.rwarc` files with zero-padded hex bounds, which
/// sort lexicographically in LSN order for operators and for Open().
struct ArchiveLayout {
  virtual ~ArchiveLayout() = default;
  /// Relative file name for the segment [first_lsn, last_lsn).
  virtual std::string SegmentFileName(Lsn first_lsn, Lsn last_lsn) const;
  /// Parse a file name produced by SegmentFileName; false if `name` is
  /// not a segment of this layout (such files are ignored on Open).
  virtual bool ParseSegmentFileName(const std::string& name, Lsn* first_lsn,
                                    Lsn* last_lsn) const;
};

struct ArchiveOptions {
  /// Target payload bytes per sealed segment. The sealer cuts at the
  /// last record boundary at or below this size (a single record larger
  /// than the target becomes its own oversized segment).
  uint64_t segment_bytes = 4ull << 20;
  /// Layout policy; nullptr selects the default flat layout.
  const ArchiveLayout* layout = nullptr;
};

/// Effectiveness/consistency counters (steady-state evidence for the
/// operations runbook and the fig5 space split).
struct ArchiveStats {
  uint64_t segments_sealed = 0;
  uint64_t segments_dropped = 0;
  uint64_t bytes_sealed = 0;
  uint64_t bytes_dropped = 0;
  /// Bytes served to readers out of archived segments.
  uint64_t bytes_read = 0;
  /// Segment checksum verifications performed (first read per segment
  /// per process lifetime).
  uint64_t verifications = 0;
};

/// One retained segment (index entry; exposed for the backup log cut
/// and for tests/tools that enumerate the on-disk layout).
struct ArchiveSegment {
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;  // exclusive
  std::string path;            // absolute/joined path of the file
};

/// Owns one archive directory of sealed log segments.
class ArchiveManager {
 public:
  /// Open (creating the directory if needed) an archive at `dir`.
  /// Scans for segment files, validates their headers against their
  /// names, and indexes the newest contiguous run; stray or
  /// non-contiguous leftovers are ignored (never deleted). `disk` and
  /// `stats` may be null; when set, payload IO is charged to them like
  /// log IO.
  static Result<std::unique_ptr<ArchiveManager>> Open(
      const std::string& dir, DiskModel* disk, IoStats* stats,
      ArchiveOptions opts = ArchiveOptions());

  ~ArchiveManager() = default;
  ArchiveManager(const ArchiveManager&) = delete;
  ArchiveManager& operator=(const ArchiveManager&) = delete;

  /// Seal `payload` (the verbatim PHYSICAL log bytes of [first_lsn,
  /// first_lsn + payload.size()), compression frames included and
  /// frame gaps zeroed) as one segment, with `checkpoints` (the
  /// checkpoint-directory entries whose begin LSN falls inside the
  /// range) and `frames` (the compression frames the range contains,
  /// wholly inside it -- the sealer never cuts mid-frame) persisted in
  /// a checksummed footer so Open() recovers both directories without
  /// decoding archived history. Frame gaps are not written (sparse
  /// file), so sealed segments inherit the active log's disk savings;
  /// the payload checksum still covers the full zero-filled image.
  /// Must append at the high water mark: `first_lsn` == high_water()
  /// (any value when the archive is empty). Written to a temp file,
  /// fsynced, renamed, then the DIRECTORY is fsynced: once Seal
  /// returns, the segment survives power loss -- the guarantee
  /// Wal::TruncateBefore's hole-punch relies on.
  Status Seal(Lsn first_lsn, Slice payload,
              const std::vector<CheckpointRef>& checkpoints = {},
              const std::vector<LogFrame>& frames = {});

  /// Copy archived bytes of [lsn, lsn + n) into `dst`, crossing segment
  /// boundaries as needed. The whole range must be covered (callers
  /// clamp with oldest_lsn()/high_water() first). The first read
  /// touching a segment verifies its payload checksum; Corruption if it
  /// does not match (a damaged archive must never read as a shorter
  /// history).
  Status ReadBytes(Lsn lsn, size_t n, char* dst);

  /// Delete segments wholly below `lsn` (archive retention). Segments
  /// straddling `lsn` are kept whole.
  Status DropBefore(Lsn lsn);

  /// True if [lsn, lsn+1) lies inside the retained contiguous run.
  bool Covers(Lsn lsn) const;

  /// Oldest archived byte; kInvalidLsn when empty.
  Lsn oldest_lsn() const;
  /// One past the newest archived byte; kInvalidLsn when empty.
  Lsn high_water() const;

  /// Total payload bytes retained (the "archived" half of the fig5
  /// space split).
  uint64_t archived_bytes() const;
  size_t segment_count() const;
  std::vector<ArchiveSegment> segments() const;
  ArchiveStats stats() const;
  const std::string& dir() const { return dir_; }

  /// Checkpoint refs recovered from segment footers at Open
  /// (ascending; wal::Wal splices them into the log's checkpoint
  /// directory). A static snapshot of open time -- later pruning goes
  /// through the log's directory, not this copy.
  const std::vector<CheckpointRef>& recovered_checkpoints() const {
    return recovered_checkpoints_;
  }

  /// Compression frames recovered from segment footers at Open
  /// (ascending; wal::Wal splices them into the log's frame directory
  /// so archived compressed history stays readable after a restart).
  const std::vector<LogFrame>& recovered_frames() const {
    return recovered_frames_;
  }

  uint64_t segment_bytes() const { return opts_.segment_bytes; }

 private:
  struct Segment {
    Lsn first_lsn;
    Lsn last_lsn;
    std::string path;
    /// Payload checksum verified this process lifetime (lazily, on the
    /// first read that touches the segment).
    bool verified = false;
  };

  ArchiveManager(std::string dir, DiskModel* disk, IoStats* stats,
                 ArchiveOptions opts);

  /// Read + checksum the whole payload of `seg` (under no lock; the
  /// caller re-checks the index afterwards).
  Status VerifySegment(const Segment& seg);

  const std::string dir_;
  DiskModel* disk_;
  IoStats* stats_;
  const ArchiveOptions opts_;
  const ArchiveLayout* layout_;  // opts_.layout or the default
  ArchiveLayout default_layout_;

  mutable std::mutex mu_;  // leaf lock: guards segments_ + counters
  std::vector<Segment> segments_;  // ascending, contiguous
  std::vector<CheckpointRef> recovered_checkpoints_;  // set once, at Open
  std::vector<LogFrame> recovered_frames_;            // set once, at Open

  std::atomic<uint64_t> segments_sealed_{0};
  std::atomic<uint64_t> segments_dropped_{0};
  std::atomic<uint64_t> bytes_sealed_{0};
  std::atomic<uint64_t> bytes_dropped_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> verifications_{0};
};

}  // namespace wal
}  // namespace rewinddb

#endif  // REWINDDB_WAL_ARCHIVE_H_
