#include "wal/wal_writer.h"

#include <cassert>

#include "wal/wal.h"

namespace rewinddb {
namespace wal {

void Writer::Stage(const LogRecord& rec) {
  assert(wal_ != nullptr);
  assert(rec.type != LogType::kCheckpointBegin &&
         rec.type != LogType::kCheckpointEnd);
  const size_t before = staged_.size();
  rec.EncodeTo(&staged_);
  staged_records_++;
  wal_->NoteRecord(rec.type, staged_.size() - before);
}

Lsn Writer::Append(const LogRecord& rec, Lsn* publish_base) {
  assert(wal_ != nullptr);
  assert(rec.type != LogType::kCheckpointBegin &&
         rec.type != LogType::kCheckpointEnd);
  scratch_.clear();
  rec.EncodeTo(&scratch_);
  wal_->NoteRecord(rec.type, scratch_.size());
  Lsn base;
  Lsn lsn;
  if (staged_.empty()) {
    base = wal_->PublishEncoded(scratch_, 1);
    lsn = base;
  } else {
    // One splice publishes the staged prefix (BEGIN et al.) together
    // with this record; its LSN sits after the staged bytes.
    size_t prefix = staged_.size();
    staged_.append(scratch_);
    base = wal_->PublishEncoded(staged_, staged_records_ + 1);
    lsn = base + prefix;
    staged_.clear();
    staged_records_ = 0;
  }
  if (publish_base != nullptr) *publish_base = base;
  if (rec.type == LogType::kCommit) {
    wal_->NoteCommitWaypoint(lsn, rec.wall_clock);
  }
  return lsn;
}

}  // namespace wal
}  // namespace rewinddb
