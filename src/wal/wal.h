// The redesigned two-sided WAL surface (the log-side mirror of the
// api/ ReadView unification).
//
// Everything the system does with the transaction log goes through one
// of two handles:
//
//   * write side -- wal::Writer (one per transaction) stages encoded
//     records locally and publishes them in batches; commits declare a
//     CommitMode and, in the default kGroup mode, block on a
//     flushed-LSN waiter while a background flusher turns many
//     concurrent commits into one pwrite + one fdatasync (in the
//     spirit of pipelined multicore group commit);
//
//   * read side -- wal::Cursor (wal_cursor.h) is the only record-level
//     read API: forward scans with block prefetch, SeekTo(lsn), and
//     FollowPrev()/FollowPrevPage()/FollowPrevFpi()/FollowUndoNext()
//     chain navigation replace every bespoke ReadRecord loop.
//
// Wal itself owns the LogManager block/file/cache core and forwards
// its metadata surface (start/next/flushed LSN, checkpoint directory,
// truncation, cache control), so `db->log()` stays the one handle the
// engine, snapshot, backup and benchmark layers pass around.
#ifndef REWINDDB_WAL_WAL_H_
#define REWINDDB_WAL_WAL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "log/log_manager.h"
#include "wal/commit_mode.h"
#include "wal/wal_cursor.h"

namespace rewinddb {
namespace wal {

struct WalOptions {
  /// Log-block cache capacity in 32 KiB blocks (0 disables caching;
  /// reads then go straight to the file and retain nothing).
  size_t cache_blocks = 256;
  /// Tail size at which appends nudge the background flusher.
  size_t max_tail_bytes = 4 << 20;
  /// Tail size at which an appender flushes synchronously (bounds
  /// memory when the flusher cannot keep up).
  size_t hard_tail_bytes = 32 << 20;
  /// Straggler-polling cadence: while unflushed bytes exist the
  /// flusher re-flushes at this interval (covers records appended
  /// during an in-flight batch). A fully-flushed log parks the thread
  /// with no timer until the next nudge. 0 flushes only on demand
  /// (group waiters, backpressure, FlushTo/FlushAll); tests use 0 for
  /// deterministic crash loss.
  uint64_t flush_interval_micros = 2'000;
};

/// Pipeline counters: the batch-size and fsync evidence the fig6 bench
/// reports, and what the commit-storm tests assert against.
struct WalStats {
  /// Flush batches written by any path (one fdatasync each).
  uint64_t fsyncs = 0;
  uint64_t flushed_bytes = 0;
  uint64_t max_batch_bytes = 0;
  /// Records published.
  uint64_t appends = 0;
  /// Commits that parked on the group-commit waiter.
  uint64_t group_commit_waits = 0;
  /// Commits by durability mode.
  uint64_t sync_commits = 0;
  uint64_t group_commits = 0;
  uint64_t async_commits = 0;
  uint64_t none_commits = 0;
};

class Writer;

class Wal {
 public:
  using Options = WalOptions;

  /// Create a fresh log at `path` and start the flusher.
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             DiskModel* disk, IoStats* stats,
                                             Options opts = Options());

  /// Open an existing log (finds the durable end, rebuilds the
  /// checkpoint directory) and start the flusher.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           DiskModel* disk, IoStats* stats,
                                           Options opts = Options());

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // --------------------------- write side ----------------------------

  /// Per-transaction staging handle. Cheap; embed one per transaction.
  Writer MakeWriter();

  /// One-off append outside any transaction (checkpoint records,
  /// recovery bookkeeping). Returns the record's LSN; does not flush.
  Lsn Append(const LogRecord& rec);

  /// Make the commit record at `lsn` durable per `mode`:
  /// kSync flushes in this thread, kGroup parks on the flusher's next
  /// batch, kAsync nudges the flusher, kNone returns immediately.
  Status WaitCommit(Lsn lsn, CommitMode mode);

  /// Synchronous flush of everything up to and including `lsn`
  /// (WAL-rule page evictions, log cuts).
  Status FlushTo(Lsn lsn);
  /// Synchronous flush of everything appended so far.
  Status FlushAll();

  // ---------------------------- read side ----------------------------

  /// The record-level read API. The cursor borrows this Wal.
  Cursor OpenCursor() { return Cursor(core_.get()); }

  // ---------------------- metadata / maintenance ---------------------

  Lsn flushed_lsn() const { return core_->flushed_lsn(); }
  Lsn next_lsn() const { return core_->next_lsn(); }
  Lsn start_lsn() const { return core_->start_lsn(); }
  std::vector<CheckpointRef> checkpoints() const {
    return core_->checkpoints();
  }
  Status TruncateBefore(Lsn lsn) { return core_->TruncateBefore(lsn); }
  uint64_t LiveBytes() const { return core_->LiveBytes(); }
  void DropCache() { core_->DropCache(); }

  WalStats stats() const;

  /// Test/benchmark hook mirroring Database::SimulateCrash: stop the
  /// flusher WITHOUT flushing, so the unflushed tail is lost exactly as
  /// in a real crash. The Wal only accepts destruction afterwards.
  void SimulateCrash();

 private:
  friend class Writer;

  explicit Wal(std::unique_ptr<LogManager> core, Options opts);

  void StartFlusher();
  void FlusherLoop();
  /// Wake the flusher (it always flushes the whole tail).
  void NudgeFlusher();
  /// Writer publish path: splice pre-encoded bytes, handle
  /// backpressure. Returns the LSN of the first spliced byte.
  Lsn PublishEncoded(Slice encoded, size_t records);

  std::unique_ptr<LogManager> core_;
  const Options opts_;

  std::thread flusher_;
  std::mutex pipe_mu_;
  std::condition_variable flush_request_cv_;  // flusher sleeps here
  std::condition_variable durable_cv_;        // group waiters sleep here
  bool flush_requested_ = false;
  bool stop_ = false;
  /// Outcome of the most recent flush round (under pipe_mu_). Not
  /// sticky: cleared by the next success and by each new group waiter,
  /// so an old transient error is only ever reported to the waiters of
  /// the round that actually failed.
  Status flusher_status_;

  std::atomic<uint64_t> group_commit_waits_{0};
  std::atomic<uint64_t> sync_commits_{0};
  std::atomic<uint64_t> group_commits_{0};
  std::atomic<uint64_t> async_commits_{0};
  std::atomic<uint64_t> none_commits_{0};
  std::atomic<uint64_t> appends_{0};
};

}  // namespace wal
}  // namespace rewinddb

#endif  // REWINDDB_WAL_WAL_H_
