// The redesigned two-sided WAL surface (the log-side mirror of the
// api/ ReadView unification).
//
// Everything the system does with the transaction log goes through one
// of two handles:
//
//   * write side -- wal::Writer (one per transaction) stages encoded
//     records locally and publishes them in batches; commits declare a
//     CommitMode and, in the default kGroup mode, block on a
//     flushed-LSN waiter while a background flusher turns many
//     concurrent commits into one pwrite + one fdatasync (in the
//     spirit of pipelined multicore group commit);
//
//   * read side -- wal::Cursor (wal_cursor.h) is the only record-level
//     read API: forward scans with block prefetch, SeekTo(lsn), and
//     FollowPrev()/FollowPrevPage()/FollowPrevFpi()/FollowUndoNext()
//     chain navigation replace every bespoke ReadRecord loop.
//
// Wal itself owns the LogManager block/file/cache core and forwards
// its metadata surface (start/next/flushed LSN, checkpoint directory,
// truncation, cache control), so `db->log()` stays the one handle the
// engine, snapshot, backup and benchmark layers pass around.
#ifndef REWINDDB_WAL_WAL_H_
#define REWINDDB_WAL_WAL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "log/log_manager.h"
#include "wal/archive.h"
#include "wal/commit_mode.h"
#include "wal/wal_cursor.h"

namespace rewinddb {
namespace wal {

struct WalOptions {
  /// Log-block cache capacity in 32 KiB blocks (0 disables caching;
  /// reads then go straight to the file and retain nothing).
  size_t cache_blocks = 256;
  /// Tail size at which appends nudge the background flusher.
  size_t max_tail_bytes = 4 << 20;
  /// Tail size at which an appender flushes synchronously (bounds
  /// memory when the flusher cannot keep up).
  size_t hard_tail_bytes = 32 << 20;
  /// Straggler-polling cadence: while unflushed bytes exist the
  /// flusher re-flushes at this interval (covers records appended
  /// during an in-flight batch). A fully-flushed log parks the thread
  /// with no timer until the next nudge. 0 flushes only on demand
  /// (group waiters, backpressure, FlushTo/FlushAll); tests use 0 for
  /// deterministic crash loss.
  uint64_t flush_interval_micros = 2'000;
  /// Compress group-commit flush batches into self-describing frames
  /// (the WAL-diet write side; see LogManagerOptions::compression).
  /// Read-side support is unconditional, so flipping this between
  /// restarts is always safe.
  bool compression = false;
  /// Directory for the archive tier. Empty disables archiving:
  /// TruncateBefore then really drops history (the seed behaviour) and
  /// ArchiveUpTo is a no-op. Non-empty: the Wal owns an ArchiveManager
  /// there, reads below start_lsn() fall back to sealed segments, and
  /// truncation hole-punches the active file once the range is sealed.
  std::string archive_dir;
  /// Target payload bytes per sealed archive segment.
  uint64_t archive_segment_bytes = 4ull << 20;
};

/// Pipeline counters: the batch-size and fsync evidence the fig6 bench
/// reports, and what the commit-storm tests assert against.
struct WalStats {
  /// Flush batches written by any path (one fdatasync each).
  uint64_t fsyncs = 0;
  uint64_t flushed_bytes = 0;
  uint64_t max_batch_bytes = 0;
  /// Records published.
  uint64_t appends = 0;
  /// Commits that parked on the group-commit waiter.
  uint64_t group_commit_waits = 0;
  /// Commits by durability mode.
  uint64_t sync_commits = 0;
  uint64_t group_commits = 0;
  uint64_t async_commits = 0;
  uint64_t none_commits = 0;

  /// Per-record-kind histogram (indexed by LogType; the WAL-diet
  /// evidence for "where do the log bytes go"). Bytes are encoded
  /// (pre-compression, logical) sizes.
  static constexpr size_t kTypeSlots = 16;
  uint64_t record_counts[kTypeSlots] = {};
  uint64_t record_bytes[kTypeSlots] = {};

  /// FPI delta-encoding effectiveness: emits that rode the delta path
  /// vs full-image fallbacks (cache miss, chain too deep, window
  /// exceeded, or delta no smaller than the image).
  uint64_t fpi_delta_hits = 0;
  uint64_t fpi_delta_fallbacks = 0;

  /// Flush-batch compression evidence (mirrors LogFlushStats):
  /// frame_logical_bytes / frame_physical_bytes is the live ratio.
  uint64_t frames_written = 0;
  uint64_t frame_logical_bytes = 0;
  uint64_t frame_physical_bytes = 0;
};

class Writer;

/// Sparse (wall_clock, lsn) marker fed from commit records: the
/// SplitLSN search narrows its commit scan with these, so translating
/// an AS OF time into an LSN stays O(waypoint spacing) even when
/// checkpoints are rare (the lazy-mount O(1) create path depends on
/// this). In-memory only: after a restart the table repopulates from
/// new commits and from archive sealing; until then the search falls
/// back to checkpoint narrowing, which is correct but coarser.
struct CommitWaypoint {
  Lsn lsn = kInvalidLsn;
  WallClock wall_clock = 0;
};

class Wal {
 public:
  using Options = WalOptions;

  /// Create a fresh log at `path` and start the flusher.
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             DiskModel* disk, IoStats* stats,
                                             Options opts = Options());

  /// Open an existing log (finds the durable end, rebuilds the
  /// checkpoint directory) and start the flusher.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           DiskModel* disk, IoStats* stats,
                                           Options opts = Options());

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // --------------------------- write side ----------------------------

  /// Per-transaction staging handle. Cheap; embed one per transaction.
  Writer MakeWriter();

  /// One-off append outside any transaction (checkpoint records,
  /// recovery bookkeeping). Returns the record's LSN; does not flush.
  Lsn Append(const LogRecord& rec);

  /// Make the commit record at `lsn` durable per `mode`:
  /// kSync flushes in this thread, kGroup parks on the flusher's next
  /// batch, kAsync nudges the flusher, kNone returns immediately.
  Status WaitCommit(Lsn lsn, CommitMode mode);

  /// Synchronous flush of everything up to and including `lsn`
  /// (WAL-rule page evictions, log cuts).
  Status FlushTo(Lsn lsn);
  /// Synchronous flush of everything appended so far.
  Status FlushAll();

  // ---------------------------- read side ----------------------------

  /// The record-level read API. The cursor borrows this Wal.
  Cursor OpenCursor() { return Cursor(core_.get()); }

  // ---------------------- metadata / maintenance ---------------------

  Lsn flushed_lsn() const { return core_->flushed_lsn(); }
  Lsn next_lsn() const { return core_->next_lsn(); }
  /// Start of the ACTIVE log file (bytes below it live only in the
  /// archive tier, if one is attached).
  Lsn start_lsn() const { return core_->start_lsn(); }
  /// Oldest LSN any cursor can still resolve, across BOTH tiers -- the
  /// true AS OF horizon floor (== start_lsn() without an archive).
  Lsn oldest_lsn() const { return core_->oldest_available_lsn(); }
  std::vector<CheckpointRef> checkpoints() const {
    return core_->checkpoints();
  }
  /// Record a commit's (lsn, wall_clock) as a split-search waypoint.
  /// Sampled: kept only every kWaypointSpacingBytes of log and only
  /// when the wall clock did not run backwards (commit clocks are
  /// near-monotonic; a regressed sample would break the search's
  /// stop-at-first-later-commit rule). Fed by Writer::Append for every
  /// commit and by ArchiveUpTo's sealing cursor (which re-decodes old
  /// records anyway, repopulating the table for pre-restart history as
  /// it gets sealed).
  void NoteCommitWaypoint(Lsn lsn, WallClock wall_clock);
  /// Ascending by lsn AND wall_clock; entries below oldest_lsn() may
  /// linger briefly (pruned on insert).
  std::vector<CommitWaypoint> commit_waypoints() const;
  static constexpr Lsn kWaypointSpacingBytes = 256 * 1024;
  /// Truncate the active log. With an archive tier attached the cut is
  /// clamped to the archive high water mark -- truncating LESS is
  /// always safe, and clamping means the retained active range is
  /// always fully sealed, so the truncated file bytes can be
  /// hole-punched every time (bounded-log steady state). Without the
  /// clamp a sealer that stopped an epsilon short of `lsn` (it never
  /// cuts inside a compression frame) would disable reclaim forever.
  Status TruncateBefore(Lsn lsn) {
    const Lsn hw =
        archive_ != nullptr ? archive_->high_water() : kInvalidLsn;
    if (hw != kInvalidLsn) {
      return core_->TruncateBefore(std::min(lsn, hw), /*reclaim=*/true);
    }
    return core_->TruncateBefore(lsn, /*reclaim=*/false);
  }
  /// Bytes in the ACTIVE log (next_lsn - start_lsn); add
  /// ArchivedBytes() for the full history footprint (the honest fig5
  /// space split).
  uint64_t LiveBytes() const { return core_->LiveBytes(); }
  uint64_t ArchivedBytes() const {
    return archive_ != nullptr ? archive_->archived_bytes() : 0;
  }
  void DropCache() { core_->DropCache(); }

  // ------------------------- archive tier ----------------------------

  /// The archive tier, or nullptr when archiving is off.
  ArchiveManager* archive() const { return archive_.get(); }

  /// Seal flushed active-log bytes from the archive high water mark up
  /// to min(target, flushed_lsn) into archive segments. Segments are
  /// cut at record boundaries (a cursor drives the chunking), so any
  /// segment's first_lsn is a valid forward-scan entry point. Safe to
  /// call concurrently (internally serialized); no-op without an
  /// archive. `target` must be a record boundary (callers pass
  /// checkpoint LSNs or transaction first-LSNs).
  Status ArchiveUpTo(Lsn target);

  /// Archive retention: drop sealed segments wholly below `lsn` and
  /// re-prune checkpoint refs that no tier can resolve anymore.
  Status DropArchiveBefore(Lsn lsn);

  /// Materialize a standalone log file at `dest_path` holding every
  /// retained byte (archived segments first, via the archive index,
  /// then the active range) with a proper header, truncated at `cut` --
  /// the point-in-time restore log cut. The whole retained log is
  /// copied before the truncation, matching the paper's baseline
  /// ("initialization for the unused portion of transaction log" is
  /// charged); `bytes_copied` reports that full volume. Flush to at
  /// least `cut` first (RestoreToTime calls FlushAll).
  Status ExportPrefix(const std::string& dest_path, Lsn cut,
                      uint64_t* bytes_copied);

  WalStats stats() const;

  /// Feed the per-kind record histogram (called by every append path:
  /// Writer::Stage/Append and Wal::Append). `bytes` is the encoded
  /// logical size of the record.
  void NoteRecord(LogType type, size_t bytes) {
    const size_t slot =
        std::min<size_t>(static_cast<size_t>(type), WalStats::kTypeSlots - 1);
    record_counts_[slot].fetch_add(1, std::memory_order_relaxed);
    record_bytes_[slot].fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Record an FPI emission's path: delta (hit) or full image
  /// (fallback). Called by PageOps::MaybeEmitFpi.
  void NoteFpiDelta(bool hit) {
    (hit ? fpi_delta_hits_ : fpi_delta_fallbacks_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Test/benchmark hook mirroring Database::SimulateCrash: stop the
  /// flusher WITHOUT flushing, so the unflushed tail is lost exactly as
  /// in a real crash. The Wal only accepts destruction afterwards.
  void SimulateCrash();

 private:
  friend class Writer;

  explicit Wal(std::unique_ptr<LogManager> core, Options opts);

  void StartFlusher();
  void FlusherLoop();
  /// Wake the flusher (it always flushes the whole tail).
  void NudgeFlusher();
  /// Writer publish path: splice pre-encoded bytes, handle
  /// backpressure. Returns the LSN of the first spliced byte.
  Lsn PublishEncoded(Slice encoded, size_t records);

  /// Attach (or create) the archive tier per opts_.archive_dir, rebuild
  /// archived checkpoint refs, and retire a stale non-contiguous
  /// archive run. Shared by Create/Open.
  Status InitArchive();

  std::unique_ptr<LogManager> core_;
  std::unique_ptr<ArchiveManager> archive_;
  const Options opts_;
  /// Serializes sealers (ArchiveUpTo from checkpoints and retention).
  std::mutex archive_seal_mu_;

  mutable std::mutex waypoints_mu_;
  std::vector<CommitWaypoint> waypoints_;
  /// LSN below which NoteCommitWaypoint skips without locking (last
  /// kept sample + spacing). ArchiveUpTo's backfill of OLD lsns is
  /// filtered by the same gate, which is exactly right: once live
  /// commits seeded the table, archived history adds nothing.
  std::atomic<Lsn> waypoint_gate_{0};

  std::thread flusher_;
  std::mutex pipe_mu_;
  std::condition_variable flush_request_cv_;  // flusher sleeps here
  std::condition_variable durable_cv_;        // group waiters sleep here
  bool flush_requested_ = false;
  bool stop_ = false;
  /// Outcome of the most recent flush round (under pipe_mu_). Not
  /// sticky: cleared by the next success and by each new group waiter,
  /// so an old transient error is only ever reported to the waiters of
  /// the round that actually failed.
  Status flusher_status_;

  std::atomic<uint64_t> group_commit_waits_{0};
  std::atomic<uint64_t> sync_commits_{0};
  std::atomic<uint64_t> group_commits_{0};
  std::atomic<uint64_t> async_commits_{0};
  std::atomic<uint64_t> none_commits_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> record_counts_[WalStats::kTypeSlots] = {};
  std::atomic<uint64_t> record_bytes_[WalStats::kTypeSlots] = {};
  std::atomic<uint64_t> fpi_delta_hits_{0};
  std::atomic<uint64_t> fpi_delta_fallbacks_{0};
};

}  // namespace wal
}  // namespace rewinddb

#endif  // REWINDDB_WAL_WAL_H_
