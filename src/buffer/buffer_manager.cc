#include "buffer/buffer_manager.h"

#include <cassert>
#include <cstring>

#include "io/paged_file.h"

namespace rewinddb {

Status FilePageStore::ReadPage(PageId id, char* buf) {
  return file_->ReadPage(id, buf);
}

Status FilePageStore::WritePage(PageId id, const char* buf) {
  return file_->WritePage(id, buf);
}

// ----------------------------- PageGuard ------------------------------

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    bm_ = o.bm_;
    frame_ = o.frame_;
    mode_ = o.mode_;
    o.bm_ = nullptr;
    o.frame_ = nullptr;
  }
  return *this;
}

PageId PageGuard::page_id() const {
  assert(valid());
  return frame_->page_id;
}

const char* PageGuard::data() const {
  assert(valid());
  return frame_->data;
}

char* PageGuard::mutable_data() {
  assert(valid() && mode_ == AccessMode::kWrite);
  return frame_->data;
}

void PageGuard::MarkDirty(Lsn lsn) {
  assert(valid() && mode_ == AccessMode::kWrite);
  SetPageLsn(frame_->data, lsn);
  if (!frame_->dirty) {
    frame_->dirty = true;
    frame_->rec_lsn = lsn;
  }
}

void PageGuard::MarkDirtyUnlogged() {
  assert(valid() && mode_ == AccessMode::kWrite);
  frame_->dirty = true;
}

void PageGuard::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_, mode_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

// --------------------------- BufferManager ----------------------------

BufferManager::BufferManager(PageStore* store, wal::Wal* log,
                             IoStats* stats, size_t pool_pages,
                             bool verify_checksums)
    : store_(store), log_(log), stats_(stats),
      verify_checksums_(verify_checksums) {
  frames_.reserve(pool_pages);
  for (size_t i = 0; i < pool_pages; i++) frames_.push_back(new Frame());
}

BufferManager::~BufferManager() {
  for (Frame* f : frames_) delete f;
}

void BufferManager::Unpin(Frame* frame, AccessMode mode) {
  if (mode == AccessMode::kWrite) {
    frame->latch.unlock();
  } else {
    frame->latch.unlock_shared();
  }
  std::lock_guard<std::mutex> g(table_mu_);
  frame->pin_count--;
  assert(frame->pin_count >= 0);
}

Status BufferManager::EvictVictimLocked() {
  // Clock sweep: two full passes distinguish "everything referenced"
  // from "everything pinned".
  for (size_t step = 0; step < frames_.size() * 2; step++) {
    Frame* f = frames_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f->page_id == kInvalidPageId) return Status::OK();  // free frame
    if (f->pin_count > 0) continue;
    if (f->ref) {
      f->ref = false;
      continue;
    }
    // Victim found: flush if dirty (WAL rule), then drop the mapping.
    if (f->dirty) {
      REWIND_RETURN_IF_ERROR(WriteFrameToStore(f));
    }
    table_.erase(f->page_id);
    f->page_id = kInvalidPageId;
    f->dirty = false;
    f->rec_lsn = kInvalidLsn;
    return Status::OK();
  }
  return Status::Busy("buffer pool exhausted: every frame is pinned");
}

Status BufferManager::WriteFrameToStore(Frame* frame) {
  // WAL rule: the log must be durable up to the page's LSN before the
  // page image can reach the store.
  if (log_ != nullptr) {
    Lsn lsn = PageLsn(frame->data);
    if (lsn != kInvalidLsn) {
      REWIND_RETURN_IF_ERROR(log_->FlushTo(lsn));
    }
  }
  // Stamp the checksum on a copy so concurrent shared readers of the
  // frame never observe the checksum field mutating.
  char copy[kPageSize];
  memcpy(copy, frame->data, kPageSize);
  StampPageChecksum(copy);
  REWIND_RETURN_IF_ERROR(store_->WritePage(frame->page_id, copy));
  frame->dirty = false;
  frame->rec_lsn = kInvalidLsn;
  return Status::OK();
}

Result<Frame*> BufferManager::PinFrame(PageId id, bool read_on_miss,
                                       bool* was_present) {
  std::unique_lock<std::mutex> g(table_mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame* f = it->second;
    f->pin_count++;
    f->ref = true;
    *was_present = true;
    return f;
  }
  *was_present = false;
  REWIND_RETURN_IF_ERROR(EvictVictimLocked());
  // EvictVictimLocked leaves at least one free frame; find it near the
  // clock hand.
  Frame* target = nullptr;
  for (size_t i = 0; i < frames_.size(); i++) {
    Frame* f = frames_[(clock_hand_ + i) % frames_.size()];
    if (f->page_id == kInvalidPageId && f->pin_count == 0) {
      target = f;
      break;
    }
  }
  if (target == nullptr) {
    return Status::Busy("buffer pool exhausted");
  }
  target->page_id = id;
  target->pin_count = 1;
  target->ref = true;
  target->dirty = false;
  target->rec_lsn = kInvalidLsn;
  table_[id] = target;
  // Hold the frame exclusively during the miss IO so concurrent
  // fetchers of the same page wait for the image to arrive.
  target->latch.lock();
  g.unlock();

  Status io = Status::OK();
  if (read_on_miss) {
    io = store_->ReadPage(id, target->data);
    if (io.ok() && verify_checksums_ && !VerifyPageChecksum(target->data)) {
      io = Status::Corruption("page " + std::to_string(id) +
                              " failed checksum verification");
    }
  } else {
    memset(target->data, 0, kPageSize);
    Header(target->data)->page_id = id;
  }
  target->latch.unlock();
  if (!io.ok()) {
    std::lock_guard<std::mutex> g2(table_mu_);
    target->pin_count--;
    if (target->pin_count == 0) {
      table_.erase(id);
      target->page_id = kInvalidPageId;
    }
    return io;
  }
  return target;
}

Result<PageGuard> BufferManager::FetchPage(PageId id, AccessMode mode) {
  bool present;
  REWIND_ASSIGN_OR_RETURN(Frame * frame, PinFrame(id, true, &present));
  if (mode == AccessMode::kWrite) {
    frame->latch.lock();
  } else {
    frame->latch.lock_shared();
  }
  return PageGuard(this, frame, mode);
}

Result<PageGuard> BufferManager::NewPage(PageId id) {
  bool present;
  REWIND_ASSIGN_OR_RETURN(Frame * frame, PinFrame(id, false, &present));
  frame->latch.lock();
  if (present) {
    // Page re-allocated while its old frame is still resident: reuse
    // the frame; the caller formats over it.
    memset(frame->data, 0, kPageSize);
    Header(frame->data)->page_id = id;
    frame->dirty = false;
    frame->rec_lsn = kInvalidLsn;
  }
  return PageGuard(this, frame, AccessMode::kWrite);
}

Status BufferManager::FlushPage(PageId id) {
  std::unique_lock<std::mutex> g(table_mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Status::OK();
  Frame* f = it->second;
  f->pin_count++;
  g.unlock();

  f->latch.lock_shared();
  Status s = f->dirty ? WriteFrameToStore(f) : Status::OK();
  f->latch.unlock_shared();

  std::lock_guard<std::mutex> g2(table_mu_);
  f->pin_count--;
  return s;
}

Status BufferManager::FlushAll() {
  std::vector<PageId> dirty;
  {
    std::lock_guard<std::mutex> g(table_mu_);
    for (const auto& [id, f] : table_) {
      if (f->dirty) dirty.push_back(id);
    }
  }
  for (PageId id : dirty) {
    REWIND_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

Status BufferManager::FlushAndEvict(PageId id) {
  REWIND_RETURN_IF_ERROR(FlushPage(id));
  std::lock_guard<std::mutex> g(table_mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Status::OK();
  Frame* f = it->second;
  if (f->pin_count > 0) {
    return Status::Busy("cannot evict pinned page " + std::to_string(id));
  }
  if (f->dirty) {
    // Dirtied again between flush and evict; extremely unlikely in the
    // deallocation path, but do not lose the write.
    REWIND_RETURN_IF_ERROR(WriteFrameToStore(f));
  }
  table_.erase(it);
  f->page_id = kInvalidPageId;
  f->dirty = false;
  f->rec_lsn = kInvalidLsn;
  return Status::OK();
}

std::vector<DptEntry> BufferManager::DirtyPageTable() {
  std::vector<DptEntry> dpt;
  std::lock_guard<std::mutex> g(table_mu_);
  for (const auto& [id, f] : table_) {
    if (f->dirty) dpt.push_back({id, f->rec_lsn});
  }
  return dpt;
}

}  // namespace rewinddb
