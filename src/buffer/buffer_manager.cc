#include "buffer/buffer_manager.h"

#include <cassert>
#include <cstring>

#include "io/paged_file.h"

namespace rewinddb {

Status FilePageStore::ReadPage(PageId id, char* buf) {
  return file_->ReadPage(id, buf);
}

Status FilePageStore::WritePage(PageId id, const char* buf) {
  return file_->WritePage(id, buf);
}

// ----------------------------- PageGuard ------------------------------

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    bm_ = o.bm_;
    frame_ = o.frame_;
    mode_ = o.mode_;
    o.bm_ = nullptr;
    o.frame_ = nullptr;
  }
  return *this;
}

PageId PageGuard::page_id() const {
  assert(valid());
  return frame_->page_id;
}

const char* PageGuard::data() const {
  assert(valid());
  return frame_->data;
}

char* PageGuard::mutable_data() {
  assert(valid() && mode_ == AccessMode::kWrite);
  return frame_->data;
}

void PageGuard::MarkDirty(Lsn lsn) {
  assert(valid() && mode_ == AccessMode::kWrite);
  SetPageLsn(frame_->data, lsn);
  if (!frame_->dirty) {
    frame_->dirty = true;
    frame_->rec_lsn = lsn;
  }
}

void PageGuard::MarkDirtyUnlogged() {
  assert(valid() && mode_ == AccessMode::kWrite);
  frame_->dirty = true;
}

void PageGuard::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_, mode_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

// --------------------------- BufferManager ----------------------------

BufferManager::BufferManager(PageStore* store, wal::Wal* log,
                             IoStats* stats, size_t pool_pages,
                             bool verify_checksums, size_t shards)
    : store_(store), log_(log), stats_(stats),
      verify_checksums_(verify_checksums), pool_pages_(pool_pages) {
  if (pool_pages == 0) pool_pages = pool_pages_ = 1;
  if (shards == 0) shards = pool_pages / kFramesPerShardTarget;
  if (shards > kMaxShards) shards = kMaxShards;
  if (shards > pool_pages) shards = pool_pages;
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Distribute frames round-robin so every shard gets its fair share
  // (the first `pool_pages % shards` shards hold one extra frame).
  for (size_t i = 0; i < pool_pages; i++) {
    Shard* s = shards_[i % shards].get();
    Frame* f = new Frame();
    f->slot = s->frames.size();
    s->frames.push_back(f);
  }
}

BufferManager::~BufferManager() {
  for (auto& s : shards_) {
    for (Frame* f : s->frames) delete f;
  }
}

BufferManager::Shard* BufferManager::ShardOf(PageId id) {
  return shards_[PagePartition(id, shards_.size())].get();
}

BufferManager::Stats BufferManager::stats() const {
  Stats out;
  out.shards = shards_.size();
  out.pool_pages = pool_pages_;
  for (const auto& s : shards_) {
    out.hits += s->hits.load(std::memory_order_relaxed);
    out.misses += s->misses.load(std::memory_order_relaxed);
    out.evictions += s->evictions.load(std::memory_order_relaxed);
  }
  return out;
}

void BufferManager::Unpin(Frame* frame, AccessMode mode) {
  if (mode == AccessMode::kWrite) {
    frame->latch.unlock();
  } else {
    frame->latch.unlock_shared();
  }
  Shard* s = ShardOf(frame->page_id);
  std::lock_guard<std::mutex> g(s->mu);
  frame->pin_count--;
  assert(frame->pin_count >= 0);
}

Status BufferManager::EvictVictimLocked(Shard* s) {
  // Clock sweep: two full passes distinguish "everything referenced"
  // from "everything pinned".
  for (size_t step = 0; step < s->frames.size() * 2; step++) {
    Frame* f = s->frames[s->clock_hand];
    s->clock_hand = (s->clock_hand + 1) % s->frames.size();
    if (f->page_id == kInvalidPageId) return Status::OK();  // free frame
    if (f->pin_count > 0) continue;
    if (f->ref) {
      f->ref = false;
      continue;
    }
    // Victim found: flush if dirty (WAL rule), then drop the mapping.
    // pin_count == 0 implies no latch holder (latches are held only
    // while pinned), so reading the frame bytes here is safe.
    if (f->dirty) {
      REWIND_RETURN_IF_ERROR(WriteFrameToStore(f));
    }
    s->table.erase(f->page_id);
    RetireFrameLocked(s, f);
    s->evictions.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  return Status::Busy("buffer pool shard exhausted: every frame is pinned");
}

void BufferManager::RetireFrameLocked(Shard* s, Frame* f) {
  size_t slot = f->slot;
  delete f;
  Frame* fresh = new Frame();
  fresh->slot = slot;
  s->frames[slot] = fresh;
}

Status BufferManager::WriteFrameToStore(Frame* frame) {
  // WAL rule: the log must be durable up to the page's LSN before the
  // page image can reach the store.
  if (log_ != nullptr) {
    Lsn lsn = PageLsn(frame->data);
    if (lsn != kInvalidLsn) {
      REWIND_RETURN_IF_ERROR(log_->FlushTo(lsn));
    }
  }
  // Stamp the checksum on a copy so concurrent shared readers of the
  // frame never observe the checksum field mutating.
  char copy[kPageSize];
  memcpy(copy, frame->data, kPageSize);
  StampPageChecksum(copy);
  REWIND_RETURN_IF_ERROR(store_->WritePage(frame->page_id, copy));
  frame->dirty = false;
  frame->rec_lsn = kInvalidLsn;
  return Status::OK();
}

Result<Frame*> BufferManager::PinFrame(PageId id, bool read_on_miss,
                                       bool* was_present) {
  Shard* s = ShardOf(id);
  std::unique_lock<std::mutex> g(s->mu);
  for (;;) {
    auto it = s->table.find(id);
    if (it == s->table.end()) break;
    Frame* f = it->second;
    if (f->io_busy) {
      // Another thread is filling this frame; wait for the image (or
      // for the failed miss to retract the mapping) and re-check.
      s->io_cv.wait(g);
      continue;
    }
    f->pin_count++;
    f->ref = true;
    *was_present = true;
    s->hits.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  *was_present = false;
  s->misses.fetch_add(1, std::memory_order_relaxed);
  REWIND_RETURN_IF_ERROR(EvictVictimLocked(s));
  // EvictVictimLocked leaves at least one free frame; find it near the
  // clock hand.
  Frame* target = nullptr;
  for (size_t i = 0; i < s->frames.size(); i++) {
    Frame* f = s->frames[(s->clock_hand + i) % s->frames.size()];
    if (f->page_id == kInvalidPageId && f->pin_count == 0) {
      target = f;
      break;
    }
  }
  if (target == nullptr) {
    return Status::Busy("buffer pool shard exhausted");
  }
  target->page_id = id;
  target->pin_count = 1;
  target->ref = true;
  target->dirty = false;
  target->rec_lsn = kInvalidLsn;
  s->table[id] = target;
  if (!read_on_miss) {
    // Page allocation: format an empty frame; no store IO, so no
    // io_busy window (done under the shard mutex).
    memset(target->data, 0, kPageSize);
    Header(target->data)->page_id = id;
    return target;
  }
  // Fill the frame outside the shard mutex. io_busy (not the frame
  // latch) excludes concurrent fetchers, so no mutex -> latch edge.
  target->io_busy = true;
  g.unlock();

  Status io = store_->ReadPage(id, target->data);
  if (io.ok() && verify_checksums_ && !VerifyPageChecksum(target->data)) {
    io = Status::Corruption("page " + std::to_string(id) +
                            " failed checksum verification");
  }

  g.lock();
  target->io_busy = false;
  if (!io.ok()) {
    // Waiters never pin an io_busy frame, so the misser's pin is the
    // only one: retract the mapping and let waiters retry the miss.
    target->pin_count--;
    assert(target->pin_count == 0);
    s->table.erase(id);
    target->page_id = kInvalidPageId;
    s->io_cv.notify_all();
    return io;
  }
  s->io_cv.notify_all();
  return target;
}

Result<PageGuard> BufferManager::FetchPage(PageId id, AccessMode mode) {
  bool present;
  REWIND_ASSIGN_OR_RETURN(Frame * frame, PinFrame(id, true, &present));
  if (mode == AccessMode::kWrite) {
    frame->latch.lock();
  } else {
    frame->latch.lock_shared();
  }
  return PageGuard(this, frame, mode);
}

Result<PageGuard> BufferManager::NewPage(PageId id) {
  bool present;
  REWIND_ASSIGN_OR_RETURN(Frame * frame, PinFrame(id, false, &present));
  frame->latch.lock();
  if (present) {
    // Page re-allocated while its old frame is still resident: reuse
    // the frame; the caller formats over it.
    memset(frame->data, 0, kPageSize);
    Header(frame->data)->page_id = id;
    frame->dirty = false;
    frame->rec_lsn = kInvalidLsn;
  }
  return PageGuard(this, frame, AccessMode::kWrite);
}

Status BufferManager::FlushPage(PageId id) {
  Shard* s = ShardOf(id);
  std::unique_lock<std::mutex> g(s->mu);
  auto it = s->table.find(id);
  if (it == s->table.end()) return Status::OK();
  Frame* f = it->second;
  if (f->io_busy) return Status::OK();  // mid-miss frames are clean
  f->pin_count++;
  g.unlock();

  f->latch.lock_shared();
  Status st = f->dirty ? WriteFrameToStore(f) : Status::OK();
  f->latch.unlock_shared();

  std::lock_guard<std::mutex> g2(s->mu);
  f->pin_count--;
  return st;
}

Status BufferManager::FlushAll() {
  std::vector<PageId> dirty;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> g(s->mu);
    for (const auto& [id, f] : s->table) {
      if (f->dirty) dirty.push_back(id);
    }
  }
  for (PageId id : dirty) {
    REWIND_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

Status BufferManager::FlushAndEvict(PageId id) {
  REWIND_RETURN_IF_ERROR(FlushPage(id));
  Shard* s = ShardOf(id);
  std::lock_guard<std::mutex> g(s->mu);
  auto it = s->table.find(id);
  if (it == s->table.end()) return Status::OK();
  Frame* f = it->second;
  if (f->pin_count > 0) {
    return Status::Busy("cannot evict pinned page " + std::to_string(id));
  }
  if (f->dirty) {
    // Dirtied again between flush and evict; extremely unlikely in the
    // deallocation path, but do not lose the write.
    REWIND_RETURN_IF_ERROR(WriteFrameToStore(f));
  }
  s->table.erase(it);
  RetireFrameLocked(s, f);
  return Status::OK();
}

std::vector<DptEntry> BufferManager::DirtyPageTable() {
  std::vector<DptEntry> dpt;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> g(s->mu);
    for (const auto& [id, f] : s->table) {
      if (f->dirty) dpt.push_back({id, f->rec_lsn});
    }
  }
  return dpt;
}

}  // namespace rewinddb
