// Buffer pool with shared/exclusive page latches, clock eviction, dirty
// tracking and the WAL rule.
//
// The pool reads and writes through the PageStore interface. The primary
// database's store is the PagedFile; an as-of snapshot's store is the
// SnapshotStore, which checks the sparse side file, falls back to the
// primary file and rewinds the page on the way in (paper section 5.3).
// Keeping that indirection *below* the buffer pool is what preserves the
// paper's property that every component higher in the stack (B-tree,
// catalog, queries) is oblivious to time travel (section 2.2).
#ifndef REWINDDB_BUFFER_BUFFER_MANAGER_H_
#define REWINDDB_BUFFER_BUFFER_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "io/io_stats.h"
#include "log/log_record.h"
#include "page/page.h"
#include "wal/wal.h"

namespace rewinddb {

/// Backing store for a buffer pool: where pages come from on a miss and
/// go on eviction/flush.
class PageStore {
 public:
  virtual ~PageStore() = default;
  virtual Status ReadPage(PageId id, char* buf) = 0;
  virtual Status WritePage(PageId id, const char* buf) = 0;
};

/// Adapter: PagedFile as a PageStore.
class FilePageStore : public PageStore {
 public:
  explicit FilePageStore(class PagedFile* file) : file_(file) {}
  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;

 private:
  class PagedFile* file_;
};

enum class AccessMode { kRead, kWrite };

/// One pool slot. Internal to the buffer manager; exposed in the header
/// only so PageGuard can be a cheap inline handle.
struct Frame {
  alignas(8) char data[kPageSize];
  PageId page_id = kInvalidPageId;
  bool dirty = false;
  Lsn rec_lsn = kInvalidLsn;  // first LSN that dirtied the page (DPT)
  int pin_count = 0;          // guarded by BufferManager::table_mu_
  bool ref = false;           // clock reference bit
  std::shared_mutex latch;
};

class BufferManager;

/// RAII handle to a pinned, latched page frame. Move-only; releases the
/// latch and pin on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  PageId page_id() const;

  const char* data() const;
  /// Mutable page bytes; requires kWrite access.
  char* mutable_data();

  /// Record that this page was modified by the log record at `lsn`:
  /// sets the page LSN, marks the frame dirty and seeds its recovery
  /// LSN for the dirty page table.
  void MarkDirty(Lsn lsn);

  /// Mark dirty without an LSN (snapshot-side modifications, which are
  /// not logged -- the side file is a cache, not a database of record).
  void MarkDirtyUnlogged();

  /// Explicitly release (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageGuard(BufferManager* bm, struct Frame* frame, AccessMode mode)
      : bm_(bm), frame_(frame), mode_(mode) {}

  BufferManager* bm_ = nullptr;
  struct Frame* frame_ = nullptr;
  AccessMode mode_ = AccessMode::kRead;
};

/// A fixed-size pool of page frames.
class BufferManager {
 public:
  /// \param store    backing page store (file or snapshot store)
  /// \param log      WAL to honour before flushing dirty pages; nullptr
  ///                 for snapshot pools (their writes are unlogged)
  /// \param pool_pages number of frames
  /// \param verify_checksums verify page checksums on every miss read
  BufferManager(PageStore* store, wal::Wal* log, IoStats* stats,
                size_t pool_pages, bool verify_checksums = true);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Fetch an existing page (reads through the store on a miss).
  Result<PageGuard> FetchPage(PageId id, AccessMode mode);

  /// Materialize a page frame without reading the store (page
  /// allocation: the caller formats the frame).
  Result<PageGuard> NewPage(PageId id);

  /// Write one page to the store if dirty (honours the WAL rule).
  Status FlushPage(PageId id);

  /// Flush every dirty page (checkpoint / snapshot creation).
  Status FlushAll();

  /// Flush (if dirty) and drop a page from the pool. Used at page
  /// deallocation so the store holds the final pre-dealloc image that a
  /// later preformat record must capture.
  Status FlushAndEvict(PageId id);

  /// Dirty page table for checkpoint end records.
  std::vector<DptEntry> DirtyPageTable();

  size_t pool_pages() const { return frames_.size(); }

 private:
  friend class PageGuard;

  Result<Frame*> PinFrame(PageId id, bool expect_present, bool* was_present);
  Status EvictVictimLocked();  // table_mu_ held
  Status WriteFrameToStore(Frame* frame);
  void Unpin(Frame* frame, AccessMode mode);

  PageStore* store_;
  wal::Wal* log_;
  IoStats* stats_;
  const bool verify_checksums_;

  std::mutex table_mu_;
  std::unordered_map<PageId, Frame*> table_;
  std::vector<Frame*> frames_;
  size_t clock_hand_ = 0;
};

}  // namespace rewinddb

#endif  // REWINDDB_BUFFER_BUFFER_MANAGER_H_
