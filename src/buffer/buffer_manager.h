// Sharded buffer pool with shared/exclusive page latches, per-shard
// clock eviction, dirty tracking and the WAL rule.
//
// The pool reads and writes through the PageStore interface. The primary
// database's store is the PagedFile; an as-of snapshot's store is the
// SnapshotStore, which checks the sparse side file, falls back to the
// primary file and rewinds the page on the way in (paper section 5.3).
// Keeping that indirection *below* the buffer pool is what preserves the
// paper's property that every component higher in the stack (B-tree,
// catalog, queries) is oblivious to time travel (section 2.2).
//
// Sharding: the frame table is split into N shards (per-shard hash
// table, mutex, frame array and clock hand), so parallel replay workers
// and concurrent queries touching different pages do not serialize on
// one table mutex. Per-frame shared_mutex latches are unchanged.
//
// Lock ordering (enforced, checked by the TSan CI job with
// detect_deadlocks=1):
//   frame latch -> shard mutex -> WAL mutexes
// A thread may hold page latches while fetching another page (which
// takes a shard mutex), and a shard mutex while flushing a victim
// (which takes WAL mutexes), but never the reverse. Miss IO therefore
// does NOT hold the frame latch: a frame being filled is marked
// `io_busy` and concurrent fetchers of the same page wait on the
// shard's condition variable, so no shard-mutex -> frame-latch edge
// exists.
#ifndef REWINDDB_BUFFER_BUFFER_MANAGER_H_
#define REWINDDB_BUFFER_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "io/io_stats.h"
#include "log/log_record.h"
#include "page/page.h"
#include "wal/wal.h"

namespace rewinddb {

/// Backing store for a buffer pool: where pages come from on a miss and
/// go on eviction/flush.
class PageStore {
 public:
  virtual ~PageStore() = default;
  virtual Status ReadPage(PageId id, char* buf) = 0;
  virtual Status WritePage(PageId id, const char* buf) = 0;
};

/// Adapter: PagedFile as a PageStore.
class FilePageStore : public PageStore {
 public:
  explicit FilePageStore(class PagedFile* file) : file_(file) {}
  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;

 private:
  class PagedFile* file_;
};

enum class AccessMode { kRead, kWrite };

/// One pool slot. Internal to the buffer manager; exposed in the header
/// only so PageGuard can be a cheap inline handle.
///
/// A Frame object lives for ONE page incarnation: eviction deletes it
/// and puts a fresh Frame in its slot. That keeps the per-incarnation
/// latch a distinct lock instance, so lock-order tracking (TSan
/// detect_deadlocks=1 in CI) sees page-latch ordering per page rather
/// than false cycles from one recycled mutex serving many pages.
struct Frame {
  alignas(8) char data[kPageSize];
  PageId page_id = kInvalidPageId;
  /// Dirty flag and first-dirtier LSN (dirty page table). Atomic
  /// because flushers clear them under a SHARED latch: two concurrent
  /// FlushPage calls on one page (e.g. two simultaneous checkpoints)
  /// may race clear-vs-clear, and DirtyPageTable reads race a writer's
  /// MarkDirty. Set-vs-clear cannot race: MarkDirty requires the
  /// exclusive latch, which excludes the flusher's shared latch.
  std::atomic<bool> dirty{false};
  std::atomic<Lsn> rec_lsn{kInvalidLsn};
  int pin_count = 0;          // guarded by the owning shard's mutex
  bool ref = false;           // clock reference bit
  /// Miss IO in flight: the misser fills `data` without the latch;
  /// concurrent fetchers wait on the shard cv until this clears.
  bool io_busy = false;
  /// Index in the owning shard's frame array (so eviction can replace
  /// this object in place).
  size_t slot = 0;
  std::shared_mutex latch;
};

class BufferManager;

/// RAII handle to a pinned, latched page frame. Move-only; releases the
/// latch and pin on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  PageId page_id() const;

  const char* data() const;
  /// Mutable page bytes; requires kWrite access.
  char* mutable_data();

  /// Record that this page was modified by the log record at `lsn`:
  /// sets the page LSN, marks the frame dirty and seeds its recovery
  /// LSN for the dirty page table.
  void MarkDirty(Lsn lsn);

  /// Mark dirty without an LSN (snapshot-side modifications, which are
  /// not logged -- the side file is a cache, not a database of record).
  void MarkDirtyUnlogged();

  /// Explicitly release (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageGuard(BufferManager* bm, struct Frame* frame, AccessMode mode)
      : bm_(bm), frame_(frame), mode_(mode) {}

  BufferManager* bm_ = nullptr;
  struct Frame* frame_ = nullptr;
  AccessMode mode_ = AccessMode::kRead;
};

/// A fixed-size pool of page frames, sharded by page id.
class BufferManager {
 public:
  /// Aggregated pool counters (per-shard counters summed).
  struct Stats {
    uint64_t hits = 0;       // fetches served from a resident frame
    uint64_t misses = 0;     // fetches that had to touch the store
    uint64_t evictions = 0;  // victim frames recycled by the clock sweep
    size_t shards = 0;
    size_t pool_pages = 0;
  };

  /// \param store    backing page store (file or snapshot store)
  /// \param log      WAL to honour before flushing dirty pages; nullptr
  ///                 for snapshot pools (their writes are unlogged)
  /// \param pool_pages number of frames
  /// \param verify_checksums verify page checksums on every miss read
  /// \param shards   shard count; 0 picks one shard per 128 frames,
  ///                 capped at kMaxShards (small pools degenerate to a
  ///                 single shard, i.e. the pre-sharding behaviour)
  BufferManager(PageStore* store, wal::Wal* log, IoStats* stats,
                size_t pool_pages, bool verify_checksums = true,
                size_t shards = 0);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Fetch an existing page (reads through the store on a miss).
  Result<PageGuard> FetchPage(PageId id, AccessMode mode);

  /// Materialize a page frame without reading the store (page
  /// allocation: the caller formats the frame).
  Result<PageGuard> NewPage(PageId id);

  /// Write one page to the store if dirty (honours the WAL rule).
  Status FlushPage(PageId id);

  /// Flush every dirty page (checkpoint / snapshot creation).
  Status FlushAll();

  /// Flush (if dirty) and drop a page from the pool. Used at page
  /// deallocation so the store holds the final pre-dealloc image that a
  /// later preformat record must capture.
  Status FlushAndEvict(PageId id);

  /// Dirty page table for checkpoint end records.
  std::vector<DptEntry> DirtyPageTable();

  size_t pool_pages() const { return pool_pages_; }
  size_t shard_count() const { return shards_.size(); }

  /// Aggregated hit/miss/eviction counters across all shards.
  Stats stats() const;

  static constexpr size_t kMaxShards = 16;
  static constexpr size_t kFramesPerShardTarget = 128;

 private:
  friend class PageGuard;

  struct Shard {
    std::mutex mu;
    std::condition_variable io_cv;  // miss-IO completion
    std::unordered_map<PageId, Frame*> table;
    std::vector<Frame*> frames;
    size_t clock_hand = 0;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };

  Shard* ShardOf(PageId id);
  Result<Frame*> PinFrame(PageId id, bool read_on_miss, bool* was_present);
  Status EvictVictimLocked(Shard* s);  // s->mu held
  /// Retire an unpinned, unmapped frame's incarnation: delete the
  /// object and seat a fresh Frame in its slot (s->mu held).
  void RetireFrameLocked(Shard* s, Frame* f);
  Status WriteFrameToStore(Frame* frame);
  void Unpin(Frame* frame, AccessMode mode);

  PageStore* store_;
  wal::Wal* log_;
  IoStats* stats_;
  const bool verify_checksums_;
  size_t pool_pages_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rewinddb

#endif  // REWINDDB_BUFFER_BUFFER_MANAGER_H_
