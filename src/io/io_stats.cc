#include "io/io_stats.h"

namespace rewinddb {

std::string IoStats::ToString() const {
  std::string s;
  s += "data_reads=" + std::to_string(data_reads.load());
  s += " data_writes=" + std::to_string(data_writes.load());
  s += " log_writes=" + std::to_string(log_writes.load());
  s += " log_bytes=" + std::to_string(log_bytes_written.load());
  s += " log_hits=" + std::to_string(log_read_hits.load());
  s += " log_misses=" + std::to_string(log_read_misses.load());
  s += " sim_io_ms=" + std::to_string(sim_io_micros.load() / 1000);
  return s;
}

}  // namespace rewinddb
