// Page-granular file: the persistent store behind the primary database
// and backups. Reads and writes are whole pages; per-page striped locks
// guarantee snapshot readers never observe a torn page while the
// primary's buffer manager is flushing it.
#ifndef REWINDDB_IO_PAGED_FILE_H_
#define REWINDDB_IO_PAGED_FILE_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/disk_model.h"

namespace rewinddb {

/// A file addressed in kPageSize units. Thread-safe.
class PagedFile {
 public:
  ~PagedFile();
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Create a new file (error if it exists unless `truncate`).
  static Result<std::unique_ptr<PagedFile>> Create(const std::string& path,
                                                   DiskModel* disk,
                                                   IoStats* stats,
                                                   bool truncate = false);

  /// Open an existing file.
  static Result<std::unique_ptr<PagedFile>> Open(const std::string& path,
                                                 DiskModel* disk,
                                                 IoStats* stats);

  /// Read page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Write page `id` from `buf` (kPageSize bytes), extending the file
  /// if needed.
  Status WritePage(PageId id, const char* buf);

  /// Flush OS buffers to stable storage.
  Status Sync();

  /// Number of pages currently in the file.
  PageId NumPages() const { return num_pages_.load(); }

  const std::string& path() const { return path_; }

 private:
  PagedFile(std::string path, int fd, PageId num_pages, DiskModel* disk,
            IoStats* stats);

  std::mutex& LockFor(PageId id) { return stripes_[id % kStripes]; }

  static constexpr size_t kStripes = 64;

  std::string path_;
  int fd_;
  std::atomic<PageId> num_pages_;
  DiskModel* disk_;
  IoStats* stats_;
  std::array<std::mutex, kStripes> stripes_;
  std::mutex extend_mu_;
};

}  // namespace rewinddb

#endif  // REWINDDB_IO_PAGED_FILE_H_
