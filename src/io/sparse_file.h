// Sparse side file backing as-of snapshots.
//
// SQL Server database snapshots store prior page versions in NTFS sparse
// files (paper section 2.2); as-of snapshots reuse the same files as a
// cache of pages already rewound to the SplitLSN (section 5.3). RewindDB
// emulates the sparse file with a compact append-allocated backing file
// plus an in-memory presence index, which preserves the contract that
// matters: only written pages occupy space, and reads check the side
// file before falling through to the primary.
#ifndef REWINDDB_IO_SPARSE_FILE_H_
#define REWINDDB_IO_SPARSE_FILE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/types.h"
#include "io/disk_model.h"

namespace rewinddb {

/// Thread-safe sparse page store.
class SparseFile {
 public:
  ~SparseFile();
  SparseFile(const SparseFile&) = delete;
  SparseFile& operator=(const SparseFile&) = delete;

  /// Create a fresh (empty) sparse file at `path`.
  static Result<std::unique_ptr<SparseFile>> Create(const std::string& path,
                                                    DiskModel* disk,
                                                    IoStats* stats);

  /// True if a version of `id` has been written here.
  bool Contains(PageId id) const;

  /// Read page `id`; NotFound if absent.
  Status ReadPage(PageId id, char* buf);

  /// Write (or overwrite) page `id`.
  Status WritePage(PageId id, const char* buf);

  /// Number of distinct pages stored (space accounting for experiments).
  size_t PageCount() const;

  /// Delete the backing file (called when the snapshot is dropped).
  Status Destroy();

 private:
  SparseFile(std::string path, int fd, DiskModel* disk, IoStats* stats);

  std::string path_;
  int fd_;
  DiskModel* disk_;
  IoStats* stats_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, uint64_t> slot_of_;  // page id -> file slot
  uint64_t next_slot_ = 0;
};

}  // namespace rewinddb

#endif  // REWINDDB_IO_SPARSE_FILE_H_
