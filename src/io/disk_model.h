// Storage media cost model. The paper evaluates on 10K RPM SAS disks
// and SLC SSDs (section 6); we do not have that hardware, so RewindDB
// charges a per-IO latency -- seek/rotate for non-sequential access plus
// transfer time -- to the database clock. With a SimClock this yields
// deterministic "simulated seconds" that reproduce the figures' shapes;
// with a RealClock the model is inert.
#ifndef REWINDDB_IO_DISK_MODEL_H_
#define REWINDDB_IO_DISK_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "io/io_stats.h"

namespace rewinddb {

/// Latency parameters for one device.
struct MediaProfile {
  std::string name;
  /// Cost of a non-sequential access (seek + rotational delay), us.
  uint64_t random_access_micros = 0;
  /// Sequential transfer rate, bytes per microsecond (== MB/s).
  double bytes_per_micro = 1e9;

  /// 10K RPM SAS drive: ~6.5 ms random access, ~150 MB/s sequential.
  static MediaProfile Sas() { return {"SAS", 6500, 150.0}; }
  /// SLC SSD: ~90 us random access, ~500 MB/s sequential.
  static MediaProfile Ssd() { return {"SSD", 90, 500.0}; }
  /// No simulated latency (unit tests, throughput experiments).
  static MediaProfile None() { return {"none", 0, 1e9}; }
};

/// Tracks the head position of one simulated device and charges access
/// latency to the clock. Thread-safe (the position is a best-effort
/// model; contention on a real disk would only make things worse).
class DiskModel {
 public:
  DiskModel(MediaProfile profile, Clock* clock, IoStats* stats)
      : profile_(std::move(profile)), clock_(clock), stats_(stats) {}

  /// Charge one access of `bytes` at `offset`. Sequential if it starts
  /// exactly where the previous access ended.
  void Access(uint64_t offset, uint64_t bytes) {
    if (profile_.random_access_micros == 0 &&
        profile_.bytes_per_micro >= 1e9) {
      return;  // latency-free profile
    }
    uint64_t micros = 0;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (offset != head_pos_) micros += profile_.random_access_micros;
      micros += static_cast<uint64_t>(
          static_cast<double>(bytes) / profile_.bytes_per_micro);
      head_pos_ = offset + bytes;
    }
    if (micros > 0) {
      clock_->AdvanceIo(micros);
      if (stats_ != nullptr) stats_->sim_io_micros += micros;
    }
  }

  const MediaProfile& profile() const { return profile_; }

 private:
  MediaProfile profile_;
  Clock* clock_;
  IoStats* stats_;
  std::mutex mu_;
  uint64_t head_pos_ = 0;
};

}  // namespace rewinddb

#endif  // REWINDDB_IO_DISK_MODEL_H_
