// Counters for the IO behaviour the paper's evaluation reasons about:
// data page reads/writes, log reads that miss the cache ("each log IO is
// a potential stall", section 6.2) and total simulated IO time.
#ifndef REWINDDB_IO_IO_STATS_H_
#define REWINDDB_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rewinddb {

/// Thread-safe IO counters. One instance per database; snapshots share
/// the primary's instance so experiments see end-to-end cost.
class IoStats {
 public:
  std::atomic<uint64_t> data_reads{0};
  std::atomic<uint64_t> data_writes{0};
  std::atomic<uint64_t> log_writes{0};
  std::atomic<uint64_t> log_bytes_written{0};
  /// Log record fetches served from the log block cache.
  std::atomic<uint64_t> log_read_hits{0};
  /// Log record fetches that had to touch the device (the undo IOs of
  /// figure 11).
  std::atomic<uint64_t> log_read_misses{0};
  /// Microseconds of device latency charged to the clock.
  std::atomic<uint64_t> sim_io_micros{0};

  void Reset() {
    data_reads = 0;
    data_writes = 0;
    log_writes = 0;
    log_bytes_written = 0;
    log_read_hits = 0;
    log_read_misses = 0;
    sim_io_micros = 0;
  }

  struct Snapshot {
    uint64_t data_reads;
    uint64_t data_writes;
    uint64_t log_writes;
    uint64_t log_bytes_written;
    uint64_t log_read_hits;
    uint64_t log_read_misses;
    uint64_t sim_io_micros;
  };

  Snapshot Capture() const {
    return Snapshot{data_reads.load(),       data_writes.load(),
                    log_writes.load(),       log_bytes_written.load(),
                    log_read_hits.load(),    log_read_misses.load(),
                    sim_io_micros.load()};
  }

  std::string ToString() const;
};

}  // namespace rewinddb

#endif  // REWINDDB_IO_IO_STATS_H_
