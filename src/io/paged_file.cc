#include "io/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rewinddb {

PagedFile::PagedFile(std::string path, int fd, PageId num_pages,
                     DiskModel* disk, IoStats* stats)
    : path_(std::move(path)),
      fd_(fd),
      num_pages_(num_pages),
      disk_(disk),
      stats_(stats) {}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PagedFile>> PagedFile::Create(const std::string& path,
                                                     DiskModel* disk,
                                                     IoStats* stats,
                                                     bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : O_EXCL);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("create " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<PagedFile>(new PagedFile(path, fd, 0, disk, stats));
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path,
                                                   DiskModel* disk,
                                                   IoStats* stats) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("stat " + path + ": " + strerror(errno));
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<PagedFile>(
      new PagedFile(path, fd, pages, disk, stats));
}

Status PagedFile::ReadPage(PageId id, char* buf) {
  if (id >= num_pages_.load()) {
    return Status::InvalidArgument("read past EOF: page " +
                                   std::to_string(id));
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  {
    std::lock_guard<std::mutex> g(LockFor(id));
    ssize_t n = ::pread(fd_, buf, kPageSize, offset);
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IoError("short read page " + std::to_string(id));
    }
  }
  if (disk_ != nullptr) disk_->Access(offset, kPageSize);
  if (stats_ != nullptr) stats_->data_reads++;
  return Status::OK();
}

Status PagedFile::WritePage(PageId id, const char* buf) {
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  if (id >= num_pages_.load()) {
    // Serialize extension so num_pages_ tracks the high-water mark.
    std::lock_guard<std::mutex> g(extend_mu_);
    if (id >= num_pages_.load()) num_pages_.store(id + 1);
  }
  {
    std::lock_guard<std::mutex> g(LockFor(id));
    ssize_t n = ::pwrite(fd_, buf, kPageSize, offset);
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IoError("short write page " + std::to_string(id));
    }
  }
  if (disk_ != nullptr) disk_->Access(offset, kPageSize);
  if (stats_ != nullptr) stats_->data_writes++;
  return Status::OK();
}

Status PagedFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync " + path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

}  // namespace rewinddb
