#include "io/sparse_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/status.h"

namespace rewinddb {

SparseFile::SparseFile(std::string path, int fd, DiskModel* disk,
                       IoStats* stats)
    : path_(std::move(path)), fd_(fd), disk_(disk), stats_(stats) {}

SparseFile::~SparseFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SparseFile>> SparseFile::Create(const std::string& path,
                                                       DiskModel* disk,
                                                       IoStats* stats) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create sparse " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<SparseFile>(new SparseFile(path, fd, disk, stats));
}

bool SparseFile::Contains(PageId id) const {
  std::lock_guard<std::mutex> g(mu_);
  return slot_of_.count(id) > 0;
}

Status SparseFile::ReadPage(PageId id, char* buf) {
  uint64_t slot;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = slot_of_.find(id);
    if (it == slot_of_.end()) {
      return Status::NotFound("sparse: page " + std::to_string(id));
    }
    slot = it->second;
  }
  const off_t offset = static_cast<off_t>(slot) * kPageSize;
  ssize_t n = ::pread(fd_, buf, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("sparse short read page " + std::to_string(id));
  }
  if (disk_ != nullptr) disk_->Access(offset, kPageSize);
  if (stats_ != nullptr) stats_->data_reads++;
  return Status::OK();
}

Status SparseFile::WritePage(PageId id, const char* buf) {
  uint64_t slot;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = slot_of_.find(id);
    if (it != slot_of_.end()) {
      slot = it->second;
    } else {
      slot = next_slot_++;
      slot_of_.emplace(id, slot);
    }
  }
  const off_t offset = static_cast<off_t>(slot) * kPageSize;
  ssize_t n = ::pwrite(fd_, buf, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("sparse short write page " + std::to_string(id));
  }
  if (disk_ != nullptr) disk_->Access(offset, kPageSize);
  if (stats_ != nullptr) stats_->data_writes++;
  return Status::OK();
}

size_t SparseFile::PageCount() const {
  std::lock_guard<std::mutex> g(mu_);
  return slot_of_.size();
}

Status SparseFile::Destroy() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError("unlink " + path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

}  // namespace rewinddb
