#include "common/clock.h"

namespace rewinddb {

RealClock* RealClock::Default() {
  static RealClock clock;
  return &clock;
}

}  // namespace rewinddb
