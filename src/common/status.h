// Status: exception-free error propagation, RocksDB/Arrow style.
#ifndef REWINDDB_COMMON_STATUS_H_
#define REWINDDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace rewinddb {

/// Outcome of an operation that can fail. All fallible RewindDB APIs
/// return Status (or Result<T>); the library never throws.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIoError,
    kAborted,         // transaction aborted (deadlock / lock timeout)
    kBusy,            // resource temporarily unavailable
    kNotSupported,
    kOutOfRange,      // e.g. as-of time outside the retention period
    kAlreadyExists,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  /// Rebuild a status from an already-validated code (wire decode,
  /// message enrichment). A kOk code ignores the message.
  static Status FromCode(Code code, std::string msg = "") {
    if (code == Code::kOk) return OK();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logging and tests.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagate a non-OK Status to the caller.
#define REWIND_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::rewinddb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_STATUS_H_
