#include "common/page_delta.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace rewinddb {

namespace {
/// Equal-byte runs shorter than this between two changed runs are
/// cheaper to resend than to frame as separate extents.
constexpr size_t kGapMerge = 8;

/// First position in [i, n) where the buffers differ, or n. Word-wise:
/// this runs over every unchanged byte of the page on the FPI write
/// path, so it is the encoder's hot loop.
inline size_t SkipEqual(const char* a, const char* b, size_t i, size_t n) {
  while (i + 8 <= n) {
    uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    if (x != y) {
      return i + (static_cast<size_t>(__builtin_ctzll(x ^ y)) >> 3);
    }
    i += 8;
  }
  while (i < n && a[i] == b[i]) i++;
  return i;
}
}  // namespace

std::string EncodePageDelta(const char* base, const char* next, size_t n) {
  assert(n <= 65535);
  std::string out;
  PutFixed16(&out, 0);  // extent count, patched below
  uint16_t count = 0;
  size_t i = SkipEqual(base, next, 0, n);
  while (i < n) {
    const size_t start = i;
    size_t end = i + 1;
    // Extend across short equal gaps: an extent only closes at an
    // unchanged run of >= kGapMerge bytes (or the page end).
    while (end < n) {
      const size_t eq_end = SkipEqual(base, next, end, n);
      if (eq_end >= n || eq_end - end >= kGapMerge) break;
      end = eq_end + 1;
    }
    PutFixed16(&out, static_cast<uint16_t>(start));
    PutFixed16(&out, static_cast<uint16_t>(end - start));
    out.append(next + start, end - start);
    count++;
    i = SkipEqual(base, next, end, n);
  }
  char* hdr = out.data();
  hdr[0] = static_cast<char>(count & 0xFF);
  hdr[1] = static_cast<char>(count >> 8);
  return out;
}

Status ApplyPageDelta(char* page, size_t n, Slice delta) {
  Decoder dec(delta);
  uint16_t count = 0;
  if (!dec.GetFixed16(&count)) {
    return Status::Corruption("page delta: truncated header");
  }
  for (uint16_t e = 0; e < count; e++) {
    uint16_t off = 0;
    uint16_t len = 0;
    if (!dec.GetFixed16(&off) || !dec.GetFixed16(&len)) {
      return Status::Corruption("page delta: truncated extent header");
    }
    if (static_cast<size_t>(off) + len > n) {
      return Status::Corruption("page delta: extent past page end");
    }
    Slice bytes;
    if (!dec.GetBytes(len, &bytes)) {
      return Status::Corruption("page delta: truncated extent bytes");
    }
    std::memcpy(page + off, bytes.data(), len);
  }
  if (!dec.empty()) {
    return Status::Corruption("page delta: trailing bytes");
  }
  return Status::OK();
}

}  // namespace rewinddb
