// Clock abstraction: real wall-clock for production/tests, simulated
// clock for the media-latency experiments (figures 7-11).
#ifndef REWINDDB_COMMON_CLOCK_H_
#define REWINDDB_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/types.h"

namespace rewinddb {

/// Source of wall-clock time for commit/checkpoint log records and sink
/// for simulated IO latency charged by the DiskModel.
///
/// Figures 7-11 of the paper compare media (SSD vs 10K SAS) whose costs
/// are IO-dominated. Rather than sleeping for every simulated IO (a
/// 44-minute restore!), RewindDB charges per-IO latency to a SimClock,
/// and the latency benchmarks report simulated elapsed time. Throughput
/// experiments (figures 5-6) use the RealClock and real execution.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the epoch (or since simulation
  /// start for SimClock).
  virtual WallClock NowMicros() = 0;

  /// Charge `micros` of IO latency. Advances a SimClock; no-op on the
  /// RealClock (the real device already took the time).
  virtual void AdvanceIo(uint64_t micros) = 0;
};

/// System clock. AdvanceIo is a no-op.
class RealClock : public Clock {
 public:
  WallClock NowMicros() override {
    return static_cast<WallClock>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  void AdvanceIo(uint64_t /*micros*/) override {}

  /// Process-wide shared instance.
  static RealClock* Default();
};

/// Deterministic virtual clock for single-threaded latency experiments.
/// Time only moves when advanced explicitly or by charged IO.
class SimClock : public Clock {
 public:
  /// \param start_micros initial simulated time (non-zero so that
  ///        timestamps are never confused with kInvalidLsn-like zeros).
  explicit SimClock(WallClock start_micros = 1'000'000)
      : now_(start_micros) {}

  WallClock NowMicros() override { return now_.load(std::memory_order_relaxed); }

  void AdvanceIo(uint64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Advance simulated time by `micros` (e.g. to model the passage of
  /// minutes between a mistake and its recovery).
  void Advance(uint64_t micros) { now_.fetch_add(micros, std::memory_order_relaxed); }

 private:
  std::atomic<WallClock> now_;
};

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_CLOCK_H_
