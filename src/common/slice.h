// Slice: cheap non-owning view over bytes (RocksDB idiom).
#ifndef REWINDDB_COMMON_SLICE_H_
#define REWINDDB_COMMON_SLICE_H_

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

namespace rewinddb {

/// Non-owning pointer+length view over a byte range. The referenced
/// memory must outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Memcmp-style three-way compare. RewindDB keys are encoded so that
  /// this byte order equals logical key order (see key_codec.h).
  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = +1;
    }
    return r;
  }

  bool operator==(const Slice& b) const {
    return size_ == b.size_ && memcmp(data_, b.data_, size_) == 0;
  }
  bool operator!=(const Slice& b) const { return !(*this == b); }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_SLICE_H_
