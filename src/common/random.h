// Small fast RNG used by tests, property checks and the TPC-C driver.
#ifndef REWINDDB_COMMON_RANDOM_H_
#define REWINDDB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace rewinddb {

/// xorshift128+ generator: deterministic given a seed, cheap enough for
/// hot workload-generation loops.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    s0_ = seed ^ 0x2545F4914F6CDD1DULL;
    s1_ = seed * 0x9E3779B97F4A7C15ULL + 1;
    // Warm up so poor seeds decorrelate.
    for (int i = 0; i < 8; i++) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive (TPC-C's rand() convention).
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `percent`/100.
  bool Percent(uint32_t percent) { return Uniform(100) < percent; }

  /// TPC-C non-uniform random (clause 2.1.6).
  int64_t NonUniform(int64_t a, int64_t x, int64_t y) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + 42) % (y - x + 1)) + x;
  }

  /// Random lower-case alphabetic string of length in [min_len, max_len].
  std::string AlphaString(size_t min_len, size_t max_len) {
    size_t n = min_len + Uniform(max_len - min_len + 1);
    std::string s(n, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_RANDOM_H_
