// Byte-range delta encoding between two versions of one page, used by
// the WAL's FPI-delta records (LogType::kFpiDelta): when a page was
// FPI'd recently, the next periodic FPI logs only the extents that
// changed since, and readers re-materialize the full image by applying
// the delta chain oldest-first on top of the last full image.
//
// Format: u16 extent count, then per extent {u16 offset, u16 length,
// `length` raw replacement bytes}. Raw bytes rather than XOR: applying
// is a plain memcpy, and the batch-compression layer squeezes the
// repetition out either way. Nearby changed runs separated by fewer
// than kGapMerge equal bytes are merged into one extent -- two u16s of
// framing cost more than re-sending a short equal run.
#ifndef REWINDDB_COMMON_PAGE_DELTA_H_
#define REWINDDB_COMMON_PAGE_DELTA_H_

#include <cstddef>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace rewinddb {

/// Encode the byte ranges where next[0, n) differs from base[0, n).
/// `n` must fit u16 offsets (pages are 8 KiB, well within range).
std::string EncodePageDelta(const char* base, const char* next, size_t n);

/// Apply a delta produced by EncodePageDelta in place: page[0, n) must
/// hold the base image and becomes the next image. Bounds-checked;
/// malformed input (truncated, extent past `n`) is Corruption and may
/// leave the page partially patched -- callers re-materialize from
/// scratch on error.
Status ApplyPageDelta(char* page, size_t n, Slice delta);

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_PAGE_DELTA_H_
