// Typed column values, row payload codec, and the order-preserving
// (memcomparable) key encoding used by every B-tree in RewindDB.
#ifndef REWINDDB_COMMON_VALUE_H_
#define REWINDDB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace rewinddb {

/// Column types supported by the row codec. kNull is not a storable
/// column type -- Schema::CheckRow rejects it -- but SQL expressions
/// (and therefore query result rowsets) produce NULLs, e.g. SUM() over
/// zero rows, so Value and the wire codec carry it.
enum class ColumnType : uint8_t {
  kNull = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ColumnTypeName(ColumnType t);

/// A single column value. The variant order matches ColumnType for the
/// four storable types; SQL NULL rides at the end.
class Value {
 public:
  Value() : v_(int32_t{0}) {}
  Value(int32_t v) : v_(v) {}              // NOLINT(runtime/explicit)
  Value(int64_t v) : v_(v) {}              // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}               // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  /// The SQL NULL value (type() == ColumnType::kNull).
  static Value Null() {
    Value v;
    v.v_ = std::monostate{};
    return v;
  }

  ColumnType type() const {
    switch (v_.index()) {
      case 0: return ColumnType::kInt32;
      case 1: return ColumnType::kInt64;
      case 2: return ColumnType::kDouble;
      case 3: return ColumnType::kString;
      default: return ColumnType::kNull;
    }
  }

  bool is_null() const { return type() == ColumnType::kNull; }

  int32_t AsInt32() const { return std::get<int32_t>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return v_ != o.v_; }

  /// Debug rendering, e.g. for example programs and test failures.
  std::string ToString() const;

 private:
  std::variant<int32_t, int64_t, double, std::string, std::monostate> v_;
};

/// A row is an ordered tuple of values matching a table's column list.
using Row = std::vector<Value>;

std::string RowToString(const Row& row);

// ---------------------------------------------------------------------
// Row payload codec (non-ordered storage format for B-tree leaf values).
// ---------------------------------------------------------------------

/// Serialize `row` (which must match `types`) into `dst`.
void EncodeRow(const std::vector<ColumnType>& types, const Row& row,
               std::string* dst);

/// Decode a payload previously produced by EncodeRow.
Result<Row> DecodeRow(const std::vector<ColumnType>& types, Slice payload);

// ---------------------------------------------------------------------
// Memcomparable key codec: byte order == logical order, so B-trees can
// compare keys with memcmp regardless of schema.
// ---------------------------------------------------------------------

/// Append the order-preserving encoding of `v` to `dst`.
void EncodeKeyValue(const Value& v, std::string* dst);

/// Encode the first `num_cols` values of `row` as a composite key.
std::string EncodeKey(const Row& row, size_t num_cols);

/// Decode a composite key produced by EncodeKey given the key column
/// types. Used by examples and debugging; the engine itself treats keys
/// as opaque bytes.
Result<Row> DecodeKey(const std::vector<ColumnType>& key_types, Slice key);

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_VALUE_H_
