// Result<T>: value-or-Status, the return type of fallible producers.
#ifndef REWINDDB_COMMON_RESULT_H_
#define REWINDDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rewinddb {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound();`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assign the value of a Result expression or propagate its error.
#define REWIND_ASSIGN_OR_RETURN(lhs, expr)      \
  auto REWIND_CONCAT_(_res_, __LINE__) = (expr);                  \
  if (!REWIND_CONCAT_(_res_, __LINE__).ok())                      \
    return REWIND_CONCAT_(_res_, __LINE__).status();              \
  lhs = std::move(REWIND_CONCAT_(_res_, __LINE__)).value()

#define REWIND_CONCAT_IMPL_(a, b) a##b
#define REWIND_CONCAT_(a, b) REWIND_CONCAT_IMPL_(a, b)

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_RESULT_H_
