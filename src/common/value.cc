#include "common/value.h"

#include <cmath>
#include <cstring>

#include "common/coding.h"

namespace rewinddb {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kNull: return "NULL";
    case ColumnType::kInt32: return "INT32";
    case ColumnType::kInt64: return "INT64";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kString: return "STRING";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ColumnType::kNull: return "NULL";
    case ColumnType::kInt32: return std::to_string(AsInt32());
    case ColumnType::kInt64: return std::to_string(AsInt64());
    case ColumnType::kDouble: return std::to_string(AsDouble());
    case ColumnType::kString: return "'" + AsString() + "'";
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); i++) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

void EncodeRow(const std::vector<ColumnType>& types, const Row& row,
               std::string* dst) {
  for (size_t i = 0; i < types.size(); i++) {
    const Value& v = row[i];
    switch (types[i]) {
      case ColumnType::kInt32:
        PutFixed32(dst, static_cast<uint32_t>(v.AsInt32()));
        break;
      case ColumnType::kInt64:
        PutFixed64(dst, static_cast<uint64_t>(v.AsInt64()));
        break;
      case ColumnType::kDouble: {
        uint64_t bits;
        double d = v.AsDouble();
        memcpy(&bits, &d, 8);
        PutFixed64(dst, bits);
        break;
      }
      case ColumnType::kString:
        PutLengthPrefixed(dst, v.AsString());
        break;
      case ColumnType::kNull:
        // Unreachable: Schema::CheckRow rejects NULL before storage.
        break;
    }
  }
}

Result<Row> DecodeRow(const std::vector<ColumnType>& types, Slice payload) {
  Row row;
  row.reserve(types.size());
  Decoder dec(payload);
  for (ColumnType t : types) {
    switch (t) {
      case ColumnType::kInt32: {
        uint32_t v;
        if (!dec.GetFixed32(&v)) return Status::Corruption("row: short int32");
        row.emplace_back(static_cast<int32_t>(v));
        break;
      }
      case ColumnType::kInt64: {
        uint64_t v;
        if (!dec.GetFixed64(&v)) return Status::Corruption("row: short int64");
        row.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case ColumnType::kDouble: {
        uint64_t bits;
        if (!dec.GetFixed64(&bits)) return Status::Corruption("row: short dbl");
        double d;
        memcpy(&d, &bits, 8);
        row.emplace_back(d);
        break;
      }
      case ColumnType::kString: {
        Slice s;
        if (!dec.GetLengthPrefixed(&s)) return Status::Corruption("row: short str");
        row.emplace_back(s.ToString());
        break;
      }
      case ColumnType::kNull:
        return Status::Corruption("row: NULL column type in schema");
    }
  }
  if (!dec.empty()) return Status::Corruption("row: trailing bytes");
  return row;
}

namespace {

// Big-endian with the sign bit flipped: preserves signed integer order.
void PutOrderedU32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v >> 24);
  buf[1] = static_cast<char>(v >> 16);
  buf[2] = static_cast<char>(v >> 8);
  buf[3] = static_cast<char>(v);
  dst->append(buf, 4);
}

void PutOrderedU64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; i++) buf[i] = static_cast<char>(v >> (56 - 8 * i));
  dst->append(buf, 8);
}

uint32_t GetOrderedU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t GetOrderedU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

// IEEE-754 total-order trick: positive doubles flip only the sign bit,
// negative doubles flip all bits.
uint64_t DoubleToOrdered(double d) {
  uint64_t bits;
  memcpy(&bits, &d, 8);
  if (bits & (1ULL << 63)) return ~bits;
  return bits | (1ULL << 63);
}

double OrderedToDouble(uint64_t enc) {
  uint64_t bits;
  if (enc & (1ULL << 63)) bits = enc & ~(1ULL << 63);
  else bits = ~enc;
  double d;
  memcpy(&d, &bits, 8);
  return d;
}

// Strings: escape 0x00 as 0x00 0xFF, terminate with 0x00 0x00 so that
// prefixes order before extensions and embedded NULs survive.
void PutOrderedString(std::string* dst, const std::string& s) {
  for (char c : s) {
    dst->push_back(c);
    if (c == '\0') dst->push_back('\xFF');
  }
  dst->push_back('\0');
  dst->push_back('\0');
}

bool GetOrderedString(Slice* in, std::string* out) {
  out->clear();
  while (in->size() >= 2) {
    char c = (*in)[0];
    if (c == '\0') {
      char next = (*in)[1];
      in->remove_prefix(2);
      if (next == '\0') return true;       // terminator
      if (next == '\xFF') {
        out->push_back('\0');              // escaped NUL
        continue;
      }
      return false;                        // malformed
    }
    out->push_back(c);
    in->remove_prefix(1);
  }
  return false;
}

}  // namespace

void EncodeKeyValue(const Value& v, std::string* dst) {
  switch (v.type()) {
    case ColumnType::kInt32:
      PutOrderedU32(dst, static_cast<uint32_t>(v.AsInt32()) ^ 0x80000000u);
      break;
    case ColumnType::kInt64:
      PutOrderedU64(dst,
                    static_cast<uint64_t>(v.AsInt64()) ^ (1ULL << 63));
      break;
    case ColumnType::kDouble:
      PutOrderedU64(dst, DoubleToOrdered(v.AsDouble()));
      break;
    case ColumnType::kString:
      PutOrderedString(dst, v.AsString());
      break;
    case ColumnType::kNull:
      // Unreachable: keys come from schema-checked rows.
      break;
  }
}

std::string EncodeKey(const Row& row, size_t num_cols) {
  std::string key;
  for (size_t i = 0; i < num_cols && i < row.size(); i++) {
    EncodeKeyValue(row[i], &key);
  }
  return key;
}

Result<Row> DecodeKey(const std::vector<ColumnType>& key_types, Slice key) {
  Row row;
  row.reserve(key_types.size());
  for (ColumnType t : key_types) {
    switch (t) {
      case ColumnType::kInt32: {
        if (key.size() < 4) return Status::Corruption("key: short int32");
        uint32_t enc = GetOrderedU32(key.data());
        key.remove_prefix(4);
        row.emplace_back(static_cast<int32_t>(enc ^ 0x80000000u));
        break;
      }
      case ColumnType::kInt64: {
        if (key.size() < 8) return Status::Corruption("key: short int64");
        uint64_t enc = GetOrderedU64(key.data());
        key.remove_prefix(8);
        row.emplace_back(static_cast<int64_t>(enc ^ (1ULL << 63)));
        break;
      }
      case ColumnType::kDouble: {
        if (key.size() < 8) return Status::Corruption("key: short double");
        uint64_t enc = GetOrderedU64(key.data());
        key.remove_prefix(8);
        row.emplace_back(OrderedToDouble(enc));
        break;
      }
      case ColumnType::kString: {
        std::string s;
        if (!GetOrderedString(&key, &s))
          return Status::Corruption("key: bad string");
        row.emplace_back(std::move(s));
        break;
      }
      case ColumnType::kNull:
        return Status::Corruption("key: NULL column type in schema");
    }
  }
  if (!key.empty()) return Status::Corruption("key: trailing bytes");
  return row;
}

}  // namespace rewinddb
