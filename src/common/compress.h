// Byte-oriented fast compression for WAL flush batches (and anything
// else that wants an in-tree LZ77 with zero dependencies).
//
// The format is LZ4-shaped: a stream of sequences, each a token byte
// (high nibble = literal length, low nibble = match length - 4, value
// 15 extends with 255-saturated continuation bytes), the literals, and
// a 2-byte little-endian match offset into the already-produced
// output. The final sequence carries literals only. Log records are
// full of repeated page ids, tree ids and -- above all -- full page
// images whose slotted layouts repeat, so even this greedy
// single-probe matcher routinely halves FPI-heavy batches.
//
// Compress() is allowed to give up: it returns 0 when the input is
// incompressible (or too small to bother), and callers keep the raw
// bytes. Decompress() is fully bounds-checked and never reads or
// writes outside the given buffers: compressed WAL frames cross a
// crash boundary, so a torn or bit-flipped payload must come back as
// Status::Corruption, not a wild pointer.
#ifndef REWINDDB_COMMON_COMPRESS_H_
#define REWINDDB_COMMON_COMPRESS_H_

#include <cstddef>

#include "common/status.h"

namespace rewinddb {

/// Worst-case compressed size for `n` input bytes (raw expansion plus
/// per-sequence token overhead). Size a destination buffer with this
/// when you cannot tolerate Compress() giving up for lack of room.
size_t CompressBound(size_t n);

/// Greedy single-probe LZ77 compression of src[0, n) into dst[0, cap).
/// Returns the compressed size, or 0 when the output would not fit in
/// `cap` (pass CompressBound(n) to make that case mean "expanded") or
/// the input is too small to be worth encoding.
size_t Compress(const char* src, size_t n, char* dst, size_t cap);

/// Inverse of Compress. `dst_size` must be the exact original size
/// (callers store it next to the compressed bytes); anything
/// malformed -- truncated stream, offset pointing before the output
/// start, output not landing exactly on dst_size -- is Corruption.
Status Decompress(const char* src, size_t n, char* dst, size_t dst_size);

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_COMPRESS_H_
