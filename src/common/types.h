// Core scalar types shared by every RewindDB module.
#ifndef REWINDDB_COMMON_TYPES_H_
#define REWINDDB_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rewinddb {

/// Log sequence number. RewindDB assigns each log record the byte offset
/// of the record within the (conceptually infinite) log stream, so
/// `GetLogRecord(lsn)` is a single positioned read -- which makes the
/// paper's observation that "each log IO is a potential stall" (VLDB'12
/// section 6.2) literal in this implementation.
using Lsn = uint64_t;

/// LSN value meaning "no record" (start of every chain).
inline constexpr Lsn kInvalidLsn = 0;

/// Page number within the single data file of a database.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Transaction identifier. Ids below kFirstUserTxnId are reserved for
/// system transactions (B-tree structure modifications, allocation).
using TxnId = uint64_t;

inline constexpr TxnId kInvalidTxnId = 0;

/// Wall-clock timestamp, microseconds since the Unix epoch (or since the
/// start of a simulation when a SimClock is in use). Checkpoint and
/// commit log records carry these so that as-of snapshot creation can
/// translate a user-supplied wall-clock time into a SplitLSN.
using WallClock = uint64_t;

/// Reference to a checkpoint: kept in memory to narrow the SplitLSN
/// search (section 5.1) and to pick log truncation points, persisted
/// per archive segment so reopening the WAL's archive tier recovers
/// the directory without decoding archived history.
struct CheckpointRef {
  Lsn begin_lsn;
  WallClock wall_clock;
};

/// Identifier of a B-tree. RewindDB B-tree roots never move (root splits
/// redistribute into fresh children), so the root page id doubles as the
/// stable tree id carried in log records for logical undo.
using TreeId = PageId;

/// Size of every data page, log-block unit and side-file slot.
inline constexpr size_t kPageSize = 8192;

/// Partition a page id across `n` buckets. Page ids are dense small
/// integers with stride patterns (allocation maps every
/// kPagesPerAllocMap pages), so a Fibonacci multiplicative hash spreads
/// them evenly. Shared by the buffer manager's shard choice and the
/// replay dispatcher's worker choice so both layers agree on what "one
/// page's partition" means.
inline size_t PagePartition(PageId id, size_t n) {
  uint64_t h = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>((h >> 32) % n);
}

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_TYPES_H_
