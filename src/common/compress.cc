#include "common/compress.h"

#include <cstdint>
#include <cstring>

namespace rewinddb {

namespace {

constexpr size_t kMinInput = 16;      // below this, never compress
constexpr size_t kHashBits = 13;      // 8K-entry match table
constexpr size_t kMinMatch = 4;
// The matcher stops this far from the end so the 4-byte probe loads
// and the greedy match extension never read past the input.
constexpr size_t kTailGuard = 12;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Hash32(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Write a token-nibble length: `base` is the value already packed in
/// the nibble; every 255 thereafter continues, terminated by the final
/// remainder byte.
inline char* PutExtLength(char* op, size_t len) {
  while (len >= 255) {
    *op++ = static_cast<char>(0xFF);
    len -= 255;
  }
  *op++ = static_cast<char>(len);
  return op;
}

}  // namespace

size_t CompressBound(size_t n) {
  // One token per 15-literal run in the worst case, plus slack for the
  // trailing sequence and the extension bytes.
  return n + n / 15 + 32;
}

size_t Compress(const char* src, size_t n, char* dst, size_t cap) {
  if (n < kMinInput || n > (1ull << 31)) return 0;
  int32_t table[1u << kHashBits];
  std::memset(table, -1, sizeof(table));

  const char* const src_end = src + n;
  const char* const mflimit = src_end - kTailGuard;
  const char* ip = src;
  const char* anchor = src;
  char* op = dst;
  char* const op_end = dst + cap;
  // Literal-skip acceleration: after repeated probe misses the stride
  // grows, so poorly-matching regions are crossed in big steps instead
  // of byte by byte (a slightly worse ratio there buys a bounded scan).
  uint32_t miss_run = 1u << 6;

  while (ip < mflimit) {
    // Probe for a 4-byte match through the hash table.
    const uint32_t h = Hash32(Load32(ip));
    const int32_t cand = table[h];
    table[h] = static_cast<int32_t>(ip - src);
    const char* match = src + cand;
    if (cand < 0 || ip - match > 65535 ||
        Load32(match) != Load32(ip)) {
      ip += (miss_run++) >> 6;
      continue;
    }
    miss_run = 1u << 6;

    // Extend the match forward, word-wise (guarded so every load stays
    // in range; this is the matcher's hot loop on compressible input).
    const char* const ext_limit = src_end - 5;
    const char* p = ip + kMinMatch;
    const char* q = match + kMinMatch;
    while (p + 8 <= ext_limit) {
      uint64_t x, y;
      std::memcpy(&x, p, 8);
      std::memcpy(&y, q, 8);
      if (x != y) {
        p += static_cast<size_t>(__builtin_ctzll(x ^ y)) >> 3;
        q = nullptr;  // diff found; stop both loops
        break;
      }
      p += 8;
      q += 8;
    }
    if (q != nullptr) {
      while (p < ext_limit && *q == *p) {
        p++;
        q++;
      }
    }
    const size_t mlen = static_cast<size_t>(p - ip);

    const size_t lit = static_cast<size_t>(ip - anchor);
    // Worst-case bytes for this sequence: token + literal extension +
    // literals + offset + match extension.
    if (op + 1 + lit / 255 + 1 + lit + 2 + mlen / 255 + 1 > op_end) {
      return 0;
    }

    char* token = op++;
    if (lit >= 15) {
      *token = static_cast<char>(0xF0);
      op = PutExtLength(op, lit - 15);
    } else {
      *token = static_cast<char>(lit << 4);
    }
    std::memcpy(op, anchor, lit);
    op += lit;

    const uint16_t offset = static_cast<uint16_t>(ip - match);
    *op++ = static_cast<char>(offset & 0xFF);
    *op++ = static_cast<char>(offset >> 8);

    const size_t mcode = mlen - kMinMatch;
    if (mcode >= 15) {
      *token = static_cast<char>(*token | 0x0F);
      op = PutExtLength(op, mcode - 15);
    } else {
      *token = static_cast<char>(*token | mcode);
    }

    ip += mlen;
    anchor = ip;
    // No table insert here: the next loop iteration probes-and-inserts
    // this position itself. Inserting now would make that probe find
    // the entry just written -- a zero-offset self-match.
  }

  // Trailing literals-only sequence.
  const size_t lit = static_cast<size_t>(src_end - anchor);
  if (op + 1 + lit / 255 + 1 + lit > op_end) return 0;
  char* token = op++;
  if (lit >= 15) {
    *token = static_cast<char>(0xF0);
    op = PutExtLength(op, lit - 15);
  } else {
    *token = static_cast<char>(lit << 4);
  }
  std::memcpy(op, anchor, lit);
  op += lit;
  return static_cast<size_t>(op - dst);
}

Status Decompress(const char* src, size_t n, char* dst, size_t dst_size) {
  const uint8_t* ip = reinterpret_cast<const uint8_t*>(src);
  const uint8_t* const ip_end = ip + n;
  char* op = dst;
  char* const op_end = dst + dst_size;

  while (ip < ip_end) {
    const uint8_t token = *ip++;

    // Literals.
    size_t lit = token >> 4;
    if (lit == 15) {
      uint8_t b;
      do {
        if (ip >= ip_end) return Status::Corruption("compress: truncated");
        b = *ip++;
        lit += b;
      } while (b == 255);
    }
    if (static_cast<size_t>(ip_end - ip) < lit ||
        static_cast<size_t>(op_end - op) < lit) {
      return Status::Corruption("compress: literal overruns buffer");
    }
    std::memcpy(op, ip, lit);
    ip += lit;
    op += lit;
    if (ip == ip_end) break;  // final literals-only sequence

    // Match.
    if (ip_end - ip < 2) return Status::Corruption("compress: truncated");
    const size_t offset = static_cast<size_t>(ip[0]) |
                          (static_cast<size_t>(ip[1]) << 8);
    ip += 2;
    if (offset == 0 || offset > static_cast<size_t>(op - dst)) {
      return Status::Corruption("compress: match offset out of range");
    }
    size_t mlen = (token & 0x0F) + kMinMatch;
    if ((token & 0x0F) == 15) {
      uint8_t b;
      do {
        if (ip >= ip_end) return Status::Corruption("compress: truncated");
        b = *ip++;
        mlen += b;
      } while (b == 255);
    }
    if (static_cast<size_t>(op_end - op) < mlen) {
      return Status::Corruption("compress: match overruns buffer");
    }
    // Matches may overlap their own output (RLE). With the source at
    // least 8 behind, 8-byte blocks never read what this copy wrote,
    // so the hot path is word-wise; short offsets fall back to bytes.
    const char* from = op - offset;
    if (offset >= 8) {
      size_t rem = mlen;
      while (rem >= 8) {
        std::memcpy(op, from, 8);
        op += 8;
        from += 8;
        rem -= 8;
      }
      for (size_t i = 0; i < rem; i++) op[i] = from[i];
      op += rem;
    } else {
      for (size_t i = 0; i < mlen; i++) op[i] = from[i];
      op += mlen;
    }
  }

  if (op != op_end) {
    return Status::Corruption("compress: output size mismatch");
  }
  return Status::OK();
}

}  // namespace rewinddb
