// Fixed-width and length-prefixed little-endian encoding helpers used by
// log records, page layouts and the row codec.
#ifndef REWINDDB_COMMON_CODING_H_
#define REWINDDB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace rewinddb {

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

/// Append a 32-bit length prefix followed by the bytes.
inline void PutLengthPrefixed(std::string* dst, const Slice& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Cursor-style decoder over an input Slice. All Get* methods return
/// false (without advancing) if the input is exhausted or malformed.
class Decoder {
 public:
  explicit Decoder(Slice input) : in_(input) {}

  bool GetFixed16(uint16_t* v) {
    if (in_.size() < 2) return false;
    *v = DecodeFixed16(in_.data());
    in_.remove_prefix(2);
    return true;
  }
  bool GetFixed32(uint32_t* v) {
    if (in_.size() < 4) return false;
    *v = DecodeFixed32(in_.data());
    in_.remove_prefix(4);
    return true;
  }
  bool GetFixed64(uint64_t* v) {
    if (in_.size() < 8) return false;
    *v = DecodeFixed64(in_.data());
    in_.remove_prefix(8);
    return true;
  }
  bool GetLengthPrefixed(Slice* out) {
    uint32_t len;
    if (!GetFixed32(&len)) return false;
    if (in_.size() < len) return false;
    *out = Slice(in_.data(), len);
    in_.remove_prefix(len);
    return true;
  }
  bool GetBytes(size_t n, Slice* out) {
    if (in_.size() < n) return false;
    *out = Slice(in_.data(), n);
    in_.remove_prefix(n);
    return true;
  }

  size_t remaining() const { return in_.size(); }
  bool empty() const { return in_.empty(); }

 private:
  Slice in_;
};

/// CRC-style checksum (FNV-1a 32-bit): cheap integrity check for log
/// records and torn-write detection on pages.
inline uint32_t Checksum32(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

}  // namespace rewinddb

#endif  // REWINDDB_COMMON_CODING_H_
