// Transaction log record format.
//
// RewindDB logs in the ARIES style (one log record per page
// modification) with the paper's extensions baked in:
//
//  * every record carries `prev_page_lsn`, the backward per-page chain
//    that PreparePageAsOf walks (section 4.1B);
//  * every record carries `prev_fpi_lsn`, pointing at the most recent
//    full-page-image record for the page, so the rewinder can skip log
//    regions (section 6.1);
//  * DELETE records always carry the deleted row image -- including
//    deletes that are one half of a B-tree structure-modification move
//    (section 4.2(3));
//  * CLRs carry full undo information, not just redo (section 4.2(2));
//  * PREFORMAT records store a complete page image. They are emitted at
//    page re-allocation to splice the page's old and new chains
//    together (section 4.2(1)) and, optionally, after every Nth
//    modification (section 6.1). In both uses the record means "the
//    page content at this LSN is exactly `image`".
#ifndef REWINDDB_LOG_LOG_RECORD_H_
#define REWINDDB_LOG_LOG_RECORD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/types.h"

namespace rewinddb {

enum class LogType : uint8_t {
  kInvalid = 0,
  // Transaction control.
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  // Row operations (page + slot physical info, tree id for logical undo;
  // the row image payload is both redo and undo information).
  kInsert = 4,
  kDelete = 5,
  kUpdate = 6,
  // Compensation log record written during rollback; carries the same
  // payload as the row operation it performs plus undo_next_lsn.
  kClr = 7,
  // Page lifecycle.
  kFormat = 8,
  kPreformat = 9,
  // Allocation map bit change.
  kAllocBits = 10,
  // B-tree leaf chain maintenance.
  kSetSibling = 11,
  // Checkpoints (carry wall-clock time for SplitLSN search).
  kCheckpointBegin = 12,
  kCheckpointEnd = 13,
  // Delta form of kPreformat: `image` holds an EncodePageDelta patch
  // against the page image at prev_fpi_lsn (itself possibly another
  // delta; chains terminate at a kPreformat). Like the periodic
  // kPreformat it is emitted outside any transaction and changes no
  // page content -- redo and undo treat it as a content no-op -- but
  // FPI-jump readers materialize "the page content at this LSN" by
  // composing the chain oldest-first.
  kFpiDelta = 14,
};

const char* LogTypeName(LogType t);

/// Active-transaction-table entry serialized into kCheckpointEnd.
struct AttEntry {
  TxnId txn_id;
  Lsn last_lsn;
};

/// Dirty-page-table entry serialized into kCheckpointEnd.
struct DptEntry {
  PageId page_id;
  Lsn rec_lsn;
};

/// In-memory form of a log record. One struct covers all types; unused
/// fields stay at their defaults and are not serialized.
struct LogRecord {
  LogType type = LogType::kInvalid;
  /// For kClr: the row operation the CLR performs.
  LogType clr_op = LogType::kInvalid;

  /// True if the record belongs to a system transaction (B-tree SMO or
  /// allocation). System-transaction records are undone physically;
  /// user records logically (rows move under committed SMOs).
  bool is_system = false;

  TxnId txn_id = kInvalidTxnId;
  Lsn prev_lsn = kInvalidLsn;        // per-transaction backward chain
  Lsn prev_page_lsn = kInvalidLsn;   // per-page backward chain
  Lsn prev_fpi_lsn = kInvalidLsn;    // most recent FPI for this page
  PageId page_id = kInvalidPageId;
  TreeId tree_id = kInvalidPageId;
  uint16_t slot = 0;

  /// kInsert/kDelete: the row entry bytes. kUpdate: the OLD entry.
  /// kPreformat: the full page image. kClr: per clr_op.
  std::string image;
  /// kUpdate: the NEW entry bytes.
  std::string image2;

  /// kCommit / kCheckpoint*: wall-clock microseconds.
  WallClock wall_clock = 0;
  /// kClr: next record of this transaction to undo.
  Lsn undo_next_lsn = kInvalidLsn;

  // kFormat payload.
  uint8_t fmt_type = 0;   // PageType
  uint8_t fmt_level = 0;

  // kAllocBits payload: bit index plus new/old values of both bits.
  uint32_t alloc_bit = 0;
  bool alloc_new = false;
  bool ever_new = false;
  bool alloc_old = false;
  bool ever_old = false;

  // kSetSibling payload.
  PageId sibling_new = kInvalidPageId;
  PageId sibling_old = kInvalidPageId;

  // kCheckpointEnd payload.
  std::vector<AttEntry> att;
  std::vector<DptEntry> dpt;

  /// Serialize (with length header and checksum) and append to `dst`.
  void EncodeTo(std::string* dst) const;

  /// Size EncodeTo would append.
  size_t EncodedSize() const;

  /// Decode one record from the start of `data`. On success sets
  /// `*consumed` to the record's total encoded length.
  static Result<LogRecord> Decode(Slice data, size_t* consumed);

  /// Total length of the record starting at `data` (from the length
  /// header alone); 0 if data is too short to tell.
  static uint32_t PeekLength(Slice data);

  /// True for record types that modify a page (and therefore
  /// participate in per-page chains and physical undo).
  bool IsPageRecord() const;

  std::string DebugString() const;
};

/// Minimum prefix needed to learn a record's length.
inline constexpr size_t kLogLengthPrefix = 4;

}  // namespace rewinddb

#endif  // REWINDDB_LOG_LOG_RECORD_H_
