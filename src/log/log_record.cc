#include "log/log_record.h"

#include "common/coding.h"

namespace rewinddb {

const char* LogTypeName(LogType t) {
  switch (t) {
    case LogType::kInvalid: return "INVALID";
    case LogType::kBegin: return "BEGIN";
    case LogType::kCommit: return "COMMIT";
    case LogType::kAbort: return "ABORT";
    case LogType::kInsert: return "INSERT";
    case LogType::kDelete: return "DELETE";
    case LogType::kUpdate: return "UPDATE";
    case LogType::kClr: return "CLR";
    case LogType::kFormat: return "FORMAT";
    case LogType::kPreformat: return "PREFORMAT";
    case LogType::kAllocBits: return "ALLOC_BITS";
    case LogType::kSetSibling: return "SET_SIBLING";
    case LogType::kCheckpointBegin: return "CKPT_BEGIN";
    case LogType::kCheckpointEnd: return "CKPT_END";
    case LogType::kFpiDelta: return "FPI_DELTA";
  }
  return "?";
}

bool LogRecord::IsPageRecord() const {
  switch (type) {
    case LogType::kInsert:
    case LogType::kDelete:
    case LogType::kUpdate:
    case LogType::kClr:
    case LogType::kFormat:
    case LogType::kPreformat:
    case LogType::kFpiDelta:
    case LogType::kAllocBits:
    case LogType::kSetSibling:
      return true;
    default:
      return false;
  }
}

namespace {
// Fixed part: len(4) + checksum(4) + type(1) + clr_op(1) + flags(1) +
// slot(2) + txn(8) + prev_lsn(8) + prev_page_lsn(8) + prev_fpi_lsn(8) +
// page(4) + tree(4) = 53 bytes.
constexpr size_t kFixedHeader = 53;
}  // namespace

void LogRecord::EncodeTo(std::string* dst) const {
  size_t start = dst->size();
  PutFixed32(dst, 0);  // length placeholder
  PutFixed32(dst, 0);  // checksum placeholder
  dst->push_back(static_cast<char>(type));
  dst->push_back(static_cast<char>(clr_op));
  dst->push_back(static_cast<char>(is_system ? 1 : 0));
  PutFixed16(dst, slot);
  PutFixed64(dst, txn_id);
  PutFixed64(dst, prev_lsn);
  PutFixed64(dst, prev_page_lsn);
  PutFixed64(dst, prev_fpi_lsn);
  PutFixed32(dst, page_id);
  PutFixed32(dst, tree_id);

  LogType op = type == LogType::kClr ? clr_op : type;
  switch (type == LogType::kClr ? LogType::kClr : type) {
    case LogType::kBegin:
    case LogType::kAbort:
      break;
    case LogType::kCommit:
    case LogType::kCheckpointBegin:
      PutFixed64(dst, wall_clock);
      break;
    case LogType::kInsert:
    case LogType::kDelete:
      PutLengthPrefixed(dst, image);
      break;
    case LogType::kUpdate:
      PutLengthPrefixed(dst, image);
      PutLengthPrefixed(dst, image2);
      break;
    case LogType::kClr:
      PutFixed64(dst, undo_next_lsn);
      PutLengthPrefixed(dst, image);
      if (op == LogType::kUpdate) PutLengthPrefixed(dst, image2);
      if (op == LogType::kAllocBits) {
        PutFixed32(dst, alloc_bit);
        dst->push_back(static_cast<char>((alloc_new ? 1 : 0) |
                                         (ever_new ? 2 : 0) |
                                         (alloc_old ? 4 : 0) |
                                         (ever_old ? 8 : 0)));
      }
      if (op == LogType::kSetSibling) {
        PutFixed32(dst, sibling_new);
        PutFixed32(dst, sibling_old);
      }
      break;
    case LogType::kFormat:
      dst->push_back(static_cast<char>(fmt_type));
      dst->push_back(static_cast<char>(fmt_level));
      break;
    case LogType::kPreformat:
    case LogType::kFpiDelta:
      PutLengthPrefixed(dst, image);
      break;
    case LogType::kAllocBits:
      PutFixed32(dst, alloc_bit);
      dst->push_back(static_cast<char>((alloc_new ? 1 : 0) |
                                       (ever_new ? 2 : 0) |
                                       (alloc_old ? 4 : 0) |
                                       (ever_old ? 8 : 0)));
      break;
    case LogType::kSetSibling:
      PutFixed32(dst, sibling_new);
      PutFixed32(dst, sibling_old);
      break;
    case LogType::kCheckpointEnd: {
      PutFixed64(dst, wall_clock);
      PutFixed32(dst, static_cast<uint32_t>(att.size()));
      for (const AttEntry& e : att) {
        PutFixed64(dst, e.txn_id);
        PutFixed64(dst, e.last_lsn);
      }
      PutFixed32(dst, static_cast<uint32_t>(dpt.size()));
      for (const DptEntry& e : dpt) {
        PutFixed32(dst, e.page_id);
        PutFixed64(dst, e.rec_lsn);
      }
      break;
    }
    case LogType::kInvalid:
      break;
  }

  uint32_t len = static_cast<uint32_t>(dst->size() - start);
  char* base = dst->data() + start;
  memcpy(base, &len, 4);
  uint32_t sum = Checksum32(base + 8, len - 8);
  memcpy(base + 4, &sum, 4);
}

size_t LogRecord::EncodedSize() const {
  std::string tmp;
  EncodeTo(&tmp);
  return tmp.size();
}

uint32_t LogRecord::PeekLength(Slice data) {
  if (data.size() < kLogLengthPrefix) return 0;
  return DecodeFixed32(data.data());
}

Result<LogRecord> LogRecord::Decode(Slice data, size_t* consumed) {
  if (data.size() < kFixedHeader) {
    return Status::Corruption("log record: short header");
  }
  uint32_t len = DecodeFixed32(data.data());
  if (len < kFixedHeader || len > data.size()) {
    return Status::Corruption("log record: bad length " + std::to_string(len));
  }
  uint32_t stored_sum = DecodeFixed32(data.data() + 4);
  uint32_t sum = Checksum32(data.data() + 8, len - 8);
  if (sum != stored_sum) {
    return Status::Corruption("log record: checksum mismatch");
  }

  LogRecord rec;
  Decoder dec(Slice(data.data() + 8, len - 8));
  Slice b;
  if (!dec.GetBytes(1, &b)) return Status::Corruption("log: type");
  rec.type = static_cast<LogType>(b[0]);
  if (!dec.GetBytes(1, &b)) return Status::Corruption("log: clr_op");
  rec.clr_op = static_cast<LogType>(b[0]);
  if (!dec.GetBytes(1, &b)) return Status::Corruption("log: flags");
  rec.is_system = b[0] & 1;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  if (!dec.GetFixed16(&u16)) return Status::Corruption("log: slot");
  rec.slot = u16;
  if (!dec.GetFixed64(&u64)) return Status::Corruption("log: txn");
  rec.txn_id = u64;
  if (!dec.GetFixed64(&u64)) return Status::Corruption("log: prev_lsn");
  rec.prev_lsn = u64;
  if (!dec.GetFixed64(&u64)) return Status::Corruption("log: prev_page");
  rec.prev_page_lsn = u64;
  if (!dec.GetFixed64(&u64)) return Status::Corruption("log: prev_fpi");
  rec.prev_fpi_lsn = u64;
  if (!dec.GetFixed32(&u32)) return Status::Corruption("log: page");
  rec.page_id = u32;
  if (!dec.GetFixed32(&u32)) return Status::Corruption("log: tree");
  rec.tree_id = u32;

  auto get_bits = [&](LogRecord* r) -> bool {
    Slice bb;
    if (!dec.GetFixed32(&r->alloc_bit)) return false;
    if (!dec.GetBytes(1, &bb)) return false;
    uint8_t f = static_cast<uint8_t>(bb[0]);
    r->alloc_new = f & 1;
    r->ever_new = f & 2;
    r->alloc_old = f & 4;
    r->ever_old = f & 8;
    return true;
  };

  LogType op = rec.type == LogType::kClr ? rec.clr_op : rec.type;
  switch (rec.type == LogType::kClr ? LogType::kClr : rec.type) {
    case LogType::kBegin:
    case LogType::kAbort:
      break;
    case LogType::kCommit:
    case LogType::kCheckpointBegin:
      if (!dec.GetFixed64(&rec.wall_clock))
        return Status::Corruption("log: wall_clock");
      break;
    case LogType::kInsert:
    case LogType::kDelete: {
      Slice img;
      if (!dec.GetLengthPrefixed(&img)) return Status::Corruption("log: image");
      rec.image = img.ToString();
      break;
    }
    case LogType::kUpdate: {
      Slice img;
      if (!dec.GetLengthPrefixed(&img)) return Status::Corruption("log: image");
      rec.image = img.ToString();
      if (!dec.GetLengthPrefixed(&img)) return Status::Corruption("log: image2");
      rec.image2 = img.ToString();
      break;
    }
    case LogType::kClr: {
      if (!dec.GetFixed64(&rec.undo_next_lsn))
        return Status::Corruption("log: undo_next");
      Slice img;
      if (!dec.GetLengthPrefixed(&img)) return Status::Corruption("log: image");
      rec.image = img.ToString();
      if (op == LogType::kUpdate) {
        if (!dec.GetLengthPrefixed(&img))
          return Status::Corruption("log: image2");
        rec.image2 = img.ToString();
      }
      if (op == LogType::kAllocBits && !get_bits(&rec))
        return Status::Corruption("log: clr alloc bits");
      if (op == LogType::kSetSibling) {
        if (!dec.GetFixed32(&rec.sibling_new) ||
            !dec.GetFixed32(&rec.sibling_old)) {
          return Status::Corruption("log: clr sibling");
        }
      }
      break;
    }
    case LogType::kFormat: {
      Slice bb;
      if (!dec.GetBytes(2, &bb)) return Status::Corruption("log: format");
      rec.fmt_type = static_cast<uint8_t>(bb[0]);
      rec.fmt_level = static_cast<uint8_t>(bb[1]);
      break;
    }
    case LogType::kPreformat:
    case LogType::kFpiDelta: {
      Slice img;
      if (!dec.GetLengthPrefixed(&img)) return Status::Corruption("log: fpi");
      rec.image = img.ToString();
      break;
    }
    case LogType::kAllocBits:
      if (!get_bits(&rec)) return Status::Corruption("log: alloc bits");
      break;
    case LogType::kSetSibling:
      if (!dec.GetFixed32(&rec.sibling_new))
        return Status::Corruption("log: sibling_new");
      if (!dec.GetFixed32(&rec.sibling_old))
        return Status::Corruption("log: sibling_old");
      break;
    case LogType::kCheckpointEnd: {
      if (!dec.GetFixed64(&rec.wall_clock))
        return Status::Corruption("log: ckpt wall_clock");
      uint32_t n;
      if (!dec.GetFixed32(&n)) return Status::Corruption("log: att size");
      rec.att.resize(n);
      for (uint32_t i = 0; i < n; i++) {
        if (!dec.GetFixed64(&rec.att[i].txn_id) ||
            !dec.GetFixed64(&rec.att[i].last_lsn)) {
          return Status::Corruption("log: att entry");
        }
      }
      if (!dec.GetFixed32(&n)) return Status::Corruption("log: dpt size");
      rec.dpt.resize(n);
      for (uint32_t i = 0; i < n; i++) {
        if (!dec.GetFixed32(&rec.dpt[i].page_id) ||
            !dec.GetFixed64(&rec.dpt[i].rec_lsn)) {
          return Status::Corruption("log: dpt entry");
        }
      }
      break;
    }
    case LogType::kInvalid:
      return Status::Corruption("log: invalid type");
    default:
      // A type this build does not know (a future format) must fail
      // loudly: falling through would hand back a half-parsed record.
      return Status::Corruption("log: unknown record type " +
                                std::to_string(static_cast<int>(rec.type)));
  }

  *consumed = len;
  return rec;
}

std::string LogRecord::DebugString() const {
  std::string s = LogTypeName(type);
  if (type == LogType::kClr) {
    s += "(";
    s += LogTypeName(clr_op);
    s += ")";
  }
  s += " txn=" + std::to_string(txn_id);
  if (page_id != kInvalidPageId) {
    s += " page=" + std::to_string(page_id) + " slot=" + std::to_string(slot);
  }
  s += " prevPage=" + std::to_string(prev_page_lsn);
  return s;
}

}  // namespace rewinddb
