#include "log/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"

namespace rewinddb {

namespace {
constexpr uint64_t kLogMagic = 0x52574C4F47763101ULL;  // "RWLOGv1" + 0x01
}

LogManager::LogManager(std::string path, int fd, DiskModel* disk,
                       IoStats* stats, Options opts)
    : path_(std::move(path)), fd_(fd), disk_(disk), stats_(stats),
      opts_(opts) {}

LogManager::~LogManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::WriteHeader() {
  char hdr[kFirstLsn];
  memset(hdr, 0, sizeof(hdr));
  uint64_t magic = kLogMagic;
  memcpy(hdr, &magic, 8);
  Lsn start = start_lsn_.load();
  memcpy(hdr + 8, &start, 8);
  if (::pwrite(fd_, hdr, sizeof(hdr), 0) != static_cast<ssize_t>(sizeof(hdr))) {
    return Status::IoError("log header write: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Result<std::unique_ptr<LogManager>> LogManager::Create(const std::string& path,
                                                       DiskModel* disk,
                                                       IoStats* stats,
                                                       Options opts) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create log " + path + ": " + strerror(errno));
  }
  auto lm = std::unique_ptr<LogManager>(
      new LogManager(path, fd, disk, stats, opts));
  REWIND_RETURN_IF_ERROR(lm->WriteHeader());
  return lm;
}

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& path,
                                                     DiskModel* disk,
                                                     IoStats* stats,
                                                     Options opts) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open log " + path + ": " + strerror(errno));
  }
  char hdr[kFirstLsn];
  if (::pread(fd, hdr, sizeof(hdr), 0) != static_cast<ssize_t>(sizeof(hdr))) {
    ::close(fd);
    return Status::Corruption("log header unreadable");
  }
  uint64_t magic;
  memcpy(&magic, hdr, 8);
  if (magic != kLogMagic) {
    ::close(fd);
    return Status::Corruption("log magic mismatch");
  }
  Lsn start;
  memcpy(&start, hdr + 8, 8);

  auto lm = std::unique_ptr<LogManager>(
      new LogManager(path, fd, disk, stats, opts));
  lm->start_lsn_.store(start < kFirstLsn ? kFirstLsn : start);

  // Scan forward from the start to find the durable end of the log and
  // rebuild the checkpoint directory. Stops at the first record whose
  // length or checksum is invalid (torn tail after a crash).
  Lsn cursor = lm->start_lsn_.load();
  while (true) {
    auto rec = lm->ReadFromFile(cursor);
    if (!rec.ok()) break;
    if (rec->type == LogType::kCheckpointBegin) {
      lm->checkpoints_.push_back({cursor, rec->wall_clock});
    }
    std::string tmp;
    rec->EncodeTo(&tmp);
    cursor += tmp.size();
  }
  lm->next_lsn_ = cursor;
  lm->tail_start_ = cursor;
  lm->flushed_lsn_.store(cursor);
  return lm;
}

Lsn LogManager::Append(const LogRecord& rec) {
  Lsn lsn;
  bool need_flush = false;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    lsn = next_lsn_;
    rec.EncodeTo(&tail_);
    next_lsn_ = tail_start_ + tail_.size();
    if (stats_ != nullptr) stats_->log_writes++;
    need_flush = tail_.size() >= opts_.max_tail_bytes;
  }
  if (rec.type == LogType::kCheckpointBegin) {
    std::lock_guard<std::mutex> g(ckpt_mu_);
    checkpoints_.push_back({lsn, rec.wall_clock});
  }
  if (need_flush) FlushTo(lsn);  // backpressure; error surfaces on commit
  return lsn;
}

Status LogManager::FlushTo(Lsn lsn) {
  if (flushed_lsn_.load(std::memory_order_acquire) > lsn) return Status::OK();
  std::lock_guard<std::mutex> fg(flush_mu_);
  return FlushLocked(lsn);
}

Status LogManager::FlushAll() {
  std::lock_guard<std::mutex> fg(flush_mu_);
  Lsn target;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    target = next_lsn_;
  }
  return FlushLocked(target == kFirstLsn ? kFirstLsn : target - 1);
}

Status LogManager::FlushLocked(Lsn target) {
  // flush_mu_ held. Steal the current tail (group commit: one write and
  // one sync cover every record appended so far).
  if (flushed_lsn_.load(std::memory_order_acquire) > target) {
    return Status::OK();
  }
  std::string batch;
  Lsn batch_start;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    batch.swap(tail_);
    batch_start = tail_start_;
    tail_start_ += batch.size();
  }
  if (!batch.empty()) {
    ssize_t n = ::pwrite(fd_, batch.data(), batch.size(),
                         static_cast<off_t>(batch_start));
    if (n != static_cast<ssize_t>(batch.size())) {
      return Status::IoError("log write failed: " +
                             std::string(strerror(errno)));
    }
    if (::fdatasync(fd_) != 0) {
      return Status::IoError("log sync failed: " +
                             std::string(strerror(errno)));
    }
    if (disk_ != nullptr) disk_->Access(batch_start, batch.size());
    if (stats_ != nullptr) stats_->log_bytes_written += batch.size();
    // Invalidate cached blocks the write touched: the previously-last
    // block may have been cached short and would shadow new records.
    if (opts_.cache_blocks > 0) {
      std::lock_guard<std::mutex> cg(cache_mu_);
      uint64_t first = batch_start / kBlockSize;
      uint64_t last = (batch_start + batch.size() - 1) / kBlockSize;
      for (uint64_t i = first; i <= last; i++) {
        auto it = cache_.find(i);
        if (it != cache_.end()) {
          lru_.erase(it->second.lru_it);
          cache_.erase(it);
        }
      }
    }
    flushed_lsn_.store(batch_start + batch.size(), std::memory_order_release);
  }
  return Status::OK();
}

Lsn LogManager::flushed_lsn() const { return flushed_lsn_.load(); }

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> g(append_mu_);
  return next_lsn_;
}

Lsn LogManager::start_lsn() const { return start_lsn_.load(); }

uint64_t LogManager::LiveBytes() const {
  std::lock_guard<std::mutex> g(append_mu_);
  return next_lsn_ - start_lsn_.load();
}

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) {
  if (lsn < start_lsn_.load()) {
    return Status::OutOfRange(
        "log record " + std::to_string(lsn) +
        " is older than the retention period (truncated)");
  }
  {
    std::lock_guard<std::mutex> g(append_mu_);
    if (lsn >= next_lsn_) {
      return Status::InvalidArgument("read past log end");
    }
    if (lsn >= tail_start_) {
      // Still in the unflushed tail: serve from memory, no IO.
      size_t off = lsn - tail_start_;
      return ParseAt(tail_.data() + off, tail_.size() - off);
    }
  }
  return ReadFromFile(lsn);
}

Result<LogRecord> LogManager::ParseAt(const char* data, size_t avail) const {
  size_t consumed;
  return LogRecord::Decode(Slice(data, avail), &consumed);
}

Result<std::shared_ptr<std::string>> LogManager::FetchBlock(uint64_t idx) {
  if (opts_.cache_blocks > 0) {
    std::lock_guard<std::mutex> g(cache_mu_);
    auto it = cache_.find(idx);
    if (it != cache_.end()) {
      lru_.erase(it->second.lru_it);
      lru_.push_front(idx);
      it->second.lru_it = lru_.begin();
      if (stats_ != nullptr) stats_->log_read_hits++;
      return it->second.block;
    }
  }
  // Miss: read from the device.
  auto block = std::make_shared<std::string>();
  block->resize(kBlockSize);
  off_t offset = static_cast<off_t>(idx) * kBlockSize;
  ssize_t n = ::pread(fd_, block->data(), kBlockSize, offset);
  if (n < 0) {
    return Status::IoError("log block read: " + std::string(strerror(errno)));
  }
  block->resize(static_cast<size_t>(n));
  if (disk_ != nullptr) disk_->Access(static_cast<uint64_t>(offset),
                                      static_cast<uint64_t>(n));
  if (stats_ != nullptr) stats_->log_read_misses++;
  if (opts_.cache_blocks > 0) {
    std::lock_guard<std::mutex> g(cache_mu_);
    if (cache_.find(idx) == cache_.end()) {
      lru_.push_front(idx);
      cache_[idx] = {block, lru_.begin()};
      while (cache_.size() > opts_.cache_blocks) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
      }
    }
  }
  return block;
}

Result<LogRecord> LogManager::ReadFromFile(Lsn lsn) {
  // Assemble the record (which may straddle block boundaries): first get
  // enough bytes for the length prefix, then the rest.
  std::string buf;
  uint64_t idx = lsn / kBlockSize;
  size_t in_block = lsn % kBlockSize;
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<std::string> block,
                          FetchBlock(idx));
  if (block->size() <= in_block) {
    return Status::Corruption("log read past end of file");
  }
  buf.append(block->data() + in_block, block->size() - in_block);
  uint32_t len = LogRecord::PeekLength(Slice(buf));
  if (len == 0 && buf.size() < kLogLengthPrefix) {
    // Length prefix itself straddles: pull the next block.
    REWIND_ASSIGN_OR_RETURN(std::shared_ptr<std::string> nb,
                            FetchBlock(idx + 1));
    buf.append(*nb);
    len = LogRecord::PeekLength(Slice(buf));
    idx++;
  }
  if (len == 0 || len > (64 << 20)) {
    return Status::Corruption("log record: implausible length");
  }
  while (buf.size() < len) {
    idx++;
    auto nb = FetchBlock(idx);
    if (!nb.ok()) return nb.status();
    if ((*nb)->empty()) {
      return Status::Corruption("log record truncated");
    }
    buf.append(**nb);
  }
  size_t consumed;
  return LogRecord::Decode(Slice(buf.data(), len), &consumed);
}

Status LogManager::Scan(Lsn from, Lsn to,
                        const std::function<bool(Lsn, const LogRecord&)>& cb) {
  if (from < start_lsn_.load()) {
    return Status::OutOfRange("scan start below retention window");
  }
  Lsn cursor = from;
  while (cursor < to) {
    {
      std::lock_guard<std::mutex> g(append_mu_);
      if (cursor >= next_lsn_) break;
    }
    auto rec = ReadRecord(cursor);
    if (!rec.ok()) {
      // A torn tail ends the scan benignly; anything else propagates.
      if (rec.status().IsCorruption()) break;
      return rec.status();
    }
    std::string tmp;
    rec->EncodeTo(&tmp);
    if (!cb(cursor, *rec)) break;
    cursor += tmp.size();
  }
  return Status::OK();
}

std::vector<CheckpointRef> LogManager::checkpoints() const {
  std::lock_guard<std::mutex> g(ckpt_mu_);
  return checkpoints_;
}

Status LogManager::TruncateBefore(Lsn lsn) {
  Lsn cur = start_lsn_.load();
  if (lsn <= cur) return Status::OK();
  {
    std::lock_guard<std::mutex> g(append_mu_);
    if (lsn > next_lsn_) {
      return Status::InvalidArgument("truncate beyond log end");
    }
  }
  start_lsn_.store(lsn);
  {
    std::lock_guard<std::mutex> g(ckpt_mu_);
    while (!checkpoints_.empty() && checkpoints_.front().begin_lsn < lsn) {
      checkpoints_.erase(checkpoints_.begin());
    }
  }
  return WriteHeader();
}

void LogManager::DropCache() {
  std::lock_guard<std::mutex> g(cache_mu_);
  cache_.clear();
  lru_.clear();
}

}  // namespace rewinddb
