#include "log/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/falloc.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <limits>

#include "common/coding.h"
#include "common/compress.h"
#include "wal/archive.h"

namespace rewinddb {

namespace {
constexpr uint64_t kLogMagic = 0x52574C4F47763101ULL;  // "RWLOGv1" + 0x01

/// Encode a frame header for `ulen` logical bytes compressed into
/// `payload[0, clen)`.
void EncodeFrameHeader(char* hdr, uint32_t ulen, uint32_t clen,
                       const char* payload) {
  uint32_t v = LogManager::kFrameMagic;
  memcpy(hdr, &v, 4);
  hdr[4] = static_cast<char>(LogManager::kFrameVersion);
  hdr[5] = hdr[6] = hdr[7] = 0;
  memcpy(hdr + 8, &ulen, 4);
  memcpy(hdr + 12, &clen, 4);
  uint32_t psum = Checksum32(payload, clen);
  memcpy(hdr + 16, &psum, 4);
  uint32_t hsum = Checksum32(hdr, 20);
  memcpy(hdr + 20, &hsum, 4);
}

/// Parse + validate a frame header. Returns false when the bytes are
/// not a well-formed current-or-past frame header (torn tail); a
/// well-formed header with a FUTURE version sets *future instead, so
/// the caller can fail loudly rather than treat new-format log as a
/// torn end.
bool ParseFrameHeader(const char* hdr, uint32_t* ulen, uint32_t* clen,
                      uint32_t* psum, bool* future) {
  *future = false;
  uint32_t magic;
  memcpy(&magic, hdr, 4);
  if (magic != LogManager::kFrameMagic) return false;
  uint32_t hsum;
  memcpy(&hsum, hdr + 20, 4);
  if (Checksum32(hdr, 20) != hsum) return false;
  if (static_cast<uint8_t>(hdr[4]) > LogManager::kFrameVersion) {
    *future = true;
    return false;
  }
  memcpy(ulen, hdr + 8, 4);
  memcpy(clen, hdr + 12, 4);
  memcpy(psum, hdr + 16, 4);
  if (*ulen == 0 || *ulen > (64u << 20) || *clen == 0 || *clen >= *ulen) {
    return false;
  }
  return true;
}
}  // namespace

LogManager::LogManager(std::string path, int fd, DiskModel* disk,
                       IoStats* stats, Options opts)
    : path_(std::move(path)), fd_(fd), disk_(disk), stats_(stats),
      opts_(opts) {}

LogManager::~LogManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::WriteHeaderAt(int fd, Lsn start) {
  char hdr[kFirstLsn];
  memset(hdr, 0, sizeof(hdr));
  uint64_t magic = kLogMagic;
  memcpy(hdr, &magic, 8);
  memcpy(hdr + 8, &start, 8);
  if (::pwrite(fd, hdr, sizeof(hdr), 0) != static_cast<ssize_t>(sizeof(hdr))) {
    return Status::IoError("log header write: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status LogManager::WriteHeader() {
  return WriteHeaderAt(fd_, start_lsn_.load());
}

Result<std::unique_ptr<LogManager>> LogManager::Create(const std::string& path,
                                                       DiskModel* disk,
                                                       IoStats* stats,
                                                       Options opts) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create log " + path + ": " + strerror(errno));
  }
  auto lm = std::unique_ptr<LogManager>(
      new LogManager(path, fd, disk, stats, opts));
  REWIND_RETURN_IF_ERROR(lm->WriteHeader());
  return lm;
}

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& path,
                                                     DiskModel* disk,
                                                     IoStats* stats,
                                                     Options opts) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open log " + path + ": " + strerror(errno));
  }
  char hdr[kFirstLsn];
  if (::pread(fd, hdr, sizeof(hdr), 0) != static_cast<ssize_t>(sizeof(hdr))) {
    ::close(fd);
    return Status::Corruption("log header unreadable");
  }
  uint64_t magic;
  memcpy(&magic, hdr, 8);
  if (magic != kLogMagic) {
    ::close(fd);
    return Status::Corruption("log magic mismatch");
  }
  Lsn start;
  memcpy(&start, hdr + 8, 8);

  auto lm = std::unique_ptr<LogManager>(
      new LogManager(path, fd, disk, stats, opts));
  lm->start_lsn_.store(start < kFirstLsn ? kFirstLsn : start);

  // Scan forward from the start to find the durable end of the log and
  // rebuild the checkpoint and frame directories. The scan is
  // PHYSICAL: each boundary holds either a compression frame (magic +
  // self-checksummed header) or a raw record (length prefix + record
  // checksum), and the frame magic can never be mistaken for a record
  // length (it exceeds the 64 MiB length ceiling). A torn unit ends
  // the scan (crash tail); a unit that checksums clean but does not
  // parse -- an unknown future record type or a well-formed frame
  // header with a future version -- is a hard Corruption error, never
  // a silent end-of-log.
  Lsn cursor = lm->start_lsn_.load();
  std::string ubuf;
  while (true) {
    char fh[kFrameHeaderSize];
    ssize_t got = ::pread(fd, fh, sizeof(fh), static_cast<off_t>(cursor));
    if (got < static_cast<ssize_t>(kLogLengthPrefix)) break;
    uint32_t first;
    memcpy(&first, fh, 4);
    if (first == kFrameMagic) {
      uint32_t ulen = 0, clen = 0, psum = 0;
      bool future = false;
      if (got < static_cast<ssize_t>(kFrameHeaderSize) ||
          !ParseFrameHeader(fh, &ulen, &clen, &psum, &future)) {
        if (future) {
          return Status::Corruption(
              "log: compression frame from a future format version");
        }
        break;  // torn frame header
      }
      std::string cbuf(clen, '\0');
      if (::pread(fd, cbuf.data(), clen,
                  static_cast<off_t>(cursor + kFrameHeaderSize)) !=
          static_cast<ssize_t>(clen)) {
        break;  // torn payload
      }
      if (Checksum32(cbuf.data(), clen) != psum) break;
      ubuf.assign(ulen, '\0');
      if (!Decompress(cbuf.data(), clen, ubuf.data(), ulen).ok()) break;
      // The frame checksummed clean, so its records must parse; a
      // failure here is real corruption, not a torn tail.
      size_t off = 0;
      while (off < ulen) {
        size_t consumed = 0;
        auto rec = LogRecord::Decode(Slice(ubuf.data() + off, ulen - off),
                                     &consumed);
        if (!rec.ok()) return rec.status();
        if (rec->type == LogType::kCheckpointBegin) {
          lm->checkpoints_.push_back({cursor + off, rec->wall_clock});
        }
        off += consumed;
      }
      lm->frames_.push_back({cursor, ulen, clen});
      cursor += ulen;
      continue;
    }
    // Raw record: length prefix, whole-record read, checksum.
    if (first < 8 || first > (64u << 20)) break;
    std::string rbuf(first, '\0');
    if (::pread(fd, rbuf.data(), first, static_cast<off_t>(cursor)) !=
        static_cast<ssize_t>(first)) {
      break;
    }
    uint32_t stored_sum;
    memcpy(&stored_sum, rbuf.data() + 4, 4);
    if (Checksum32(rbuf.data() + 8, first - 8) != stored_sum) break;
    size_t consumed = 0;
    auto rec = LogRecord::Decode(Slice(rbuf), &consumed);
    if (!rec.ok()) return rec.status();  // checksummed but unparseable
    if (rec->type == LogType::kCheckpointBegin) {
      lm->checkpoints_.push_back({cursor, rec->wall_clock});
    }
    cursor += consumed;
  }
  lm->next_lsn_ = cursor;
  lm->tail_start_ = cursor;
  lm->flushing_start_ = cursor;
  lm->flushed_lsn_.store(cursor);
  return lm;
}

void LogManager::NoteCheckpoint(const LogRecord& rec, Lsn lsn) {
  if (rec.type != LogType::kCheckpointBegin) return;
  std::lock_guard<std::mutex> g(ckpt_mu_);
  checkpoints_.push_back({lsn, rec.wall_clock});
}

Lsn LogManager::Append(const LogRecord& rec, bool* need_flush) {
  Lsn lsn;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    lsn = next_lsn_;
    rec.EncodeTo(&tail_);
    next_lsn_ = tail_start_ + tail_.size();
    if (stats_ != nullptr) stats_->log_writes++;
    if (need_flush != nullptr) {
      *need_flush = tail_.size() >= opts_.max_tail_bytes;
    }
  }
  NoteCheckpoint(rec, lsn);
  return lsn;
}

Lsn LogManager::AppendEncoded(Slice encoded, size_t records,
                              bool* need_flush) {
  Lsn base;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    base = next_lsn_;
    tail_.append(encoded.data(), encoded.size());
    next_lsn_ = tail_start_ + tail_.size();
    if (stats_ != nullptr) stats_->log_writes += records;
    if (need_flush != nullptr) {
      *need_flush = tail_.size() >= opts_.max_tail_bytes;
    }
  }
  return base;
}

Status LogManager::FlushTo(Lsn lsn) {
  if (flushed_lsn_.load(std::memory_order_acquire) > lsn) return Status::OK();
  std::lock_guard<std::mutex> fg(flush_mu_);
  return FlushLocked(lsn);
}

Status LogManager::FlushAll() {
  std::lock_guard<std::mutex> fg(flush_mu_);
  Lsn target;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    target = next_lsn_;
  }
  return FlushLocked(target == kFirstLsn ? kFirstLsn : target - 1);
}

Status LogManager::FlushLocked(Lsn target) {
  // flush_mu_ held. Steal the current tail (group commit: one write and
  // one sync cover every record appended so far). The stolen batch
  // stays readable from memory (flushing_) until it is on disk, so
  // concurrent cursor reads never observe a half-written file region.
  if (flushed_lsn_.load(std::memory_order_acquire) > target) {
    return Status::OK();
  }
  Lsn batch_start;
  {
    std::lock_guard<std::mutex> g(append_mu_);
    flushing_.swap(tail_);  // flushing_ is empty outside a flush
    batch_start = tail_start_;
    flushing_start_ = batch_start;
    tail_start_ += flushing_.size();
  }
  if (!flushing_.empty()) {
    Status io;
    // Build the physical write plan. Uncompressed: the whole batch at
    // its logical offset (one extent). Compressed: the batch is cut at
    // record boundaries into ~kFrameTargetBytes chunks; each chunk
    // that compresses well becomes a frame written at the chunk's
    // logical offset (the logical remainder stays an unwritten hole),
    // the rest stay raw. Chunking is a pure function of the record
    // lengths, so a failed flush that hands the batch back retries
    // with byte-identical physical prefixes.
    struct WriteExt {
      Lsn off;
      const char* data;
      size_t n;
    };
    std::vector<WriteExt> writes;
    std::vector<LogFrame> new_frames;
    std::deque<std::string> frame_bufs;  // stable storage for frame bytes
    if (!opts_.compression) {
      writes.push_back({batch_start, flushing_.data(), flushing_.size()});
    } else {
      // Raw chunks are contiguous in flushing_, so coalescing adjacent
      // ones just widens the previous extent.
      auto add_raw = [&writes](Lsn off, const char* p, size_t n) {
        if (!writes.empty() && writes.back().off + writes.back().n == off &&
            writes.back().data + writes.back().n == p) {
          writes.back().n += n;
        } else {
          writes.push_back({off, p, n});
        }
      };
      std::string cbuf;
      size_t pos = 0;
      while (pos < flushing_.size()) {
        size_t cend = pos;
        bool well_formed = true;
        while (cend < flushing_.size() && cend - pos < kFrameTargetBytes) {
          uint32_t rl = LogRecord::PeekLength(
              Slice(flushing_.data() + cend, flushing_.size() - cend));
          if (rl < kLogLengthPrefix || rl > flushing_.size() - cend) {
            well_formed = false;  // cannot happen for our own encodes
            break;
          }
          cend += rl;
        }
        if (!well_formed) {
          add_raw(batch_start + pos, flushing_.data() + pos,
                  flushing_.size() - pos);
          break;
        }
        const size_t ulen = cend - pos;
        bool framed = false;
        if (ulen > kFrameHeaderSize + kFrameMinSaving) {
          const size_t cap = ulen - kFrameHeaderSize - kFrameMinSaving;
          cbuf.resize(cap);
          size_t clen =
              Compress(flushing_.data() + pos, ulen, cbuf.data(), cap);
          if (clen > 0) {
            std::string fb(kFrameHeaderSize, '\0');
            EncodeFrameHeader(fb.data(), static_cast<uint32_t>(ulen),
                              static_cast<uint32_t>(clen), cbuf.data());
            fb.append(cbuf.data(), clen);
            frame_bufs.push_back(std::move(fb));
            writes.push_back({batch_start + pos, frame_bufs.back().data(),
                              frame_bufs.back().size()});
            new_frames.push_back({batch_start + pos,
                                  static_cast<uint32_t>(ulen),
                                  static_cast<uint32_t>(clen)});
            framed = true;
          }
        }
        if (!framed) add_raw(batch_start + pos, flushing_.data() + pos, ulen);
        pos = cend;
      }
    }
    uint64_t phys_bytes = 0;
    for (const WriteExt& w : writes) {
      ssize_t n = ::pwrite(fd_, w.data, w.n, static_cast<off_t>(w.off));
      if (n != static_cast<ssize_t>(w.n)) {
        io = Status::IoError("log write failed: " +
                             std::string(strerror(errno)));
        break;
      }
      phys_bytes += w.n;
    }
    if (io.ok() && ::fdatasync(fd_) != 0) {
      io = Status::IoError("log sync failed: " +
                           std::string(strerror(errno)));
    }
    if (!io.ok()) {
      // Give the stolen batch back to the front of the tail so the
      // LSN-to-byte mapping stays exact (records appended meanwhile
      // follow it contiguously); a later flush retries from
      // batch_start, and flushed_lsn never moved.
      std::lock_guard<std::mutex> g(append_mu_);
      tail_.insert(0, flushing_);
      tail_start_ -= flushing_.size();
      flushing_.clear();
      flushing_start_ = tail_start_;
      return io;
    }
    const size_t batch_bytes = flushing_.size();
    // Publish the batch's frames BEFORE any block over this range can
    // be (re)built from the file: once the cache invalidation below
    // runs, fetches must compose these frames to see the records.
    if (!new_frames.empty()) {
      uint64_t frame_ulen = 0;
      uint64_t frame_phys = 0;
      for (const LogFrame& f : new_frames) {
        frame_ulen += f.ulen;
        frame_phys += kFrameHeaderSize + f.clen;
      }
      AddFrames(new_frames);
      frames_written_.fetch_add(new_frames.size(), std::memory_order_relaxed);
      frame_logical_bytes_.fetch_add(frame_ulen, std::memory_order_relaxed);
      frame_physical_bytes_.fetch_add(frame_phys, std::memory_order_relaxed);
    }
    // Close the short-block caching window: readers that overlap
    // [write, invalidate) must not insert a pre-flush copy of the
    // last block (odd flush_gen_ = flush in progress).
    flush_gen_.fetch_add(1, std::memory_order_acq_rel);
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    flush_batch_bytes_.fetch_add(batch_bytes, std::memory_order_relaxed);
    uint64_t prev_max = max_batch_bytes_.load(std::memory_order_relaxed);
    while (prev_max < batch_bytes &&
           !max_batch_bytes_.compare_exchange_weak(
               prev_max, batch_bytes, std::memory_order_relaxed)) {
    }
    if (disk_ != nullptr) disk_->Access(batch_start, phys_bytes);
    if (stats_ != nullptr) stats_->log_bytes_written += phys_bytes;
    // Invalidate cached blocks the write touched: the previously-last
    // block may have been cached short and would shadow new records.
    if (opts_.cache_blocks > 0) {
      std::lock_guard<std::mutex> cg(cache_mu_);
      uint64_t first = batch_start / kBlockSize;
      uint64_t last = (batch_start + batch_bytes - 1) / kBlockSize;
      for (uint64_t i = first; i <= last; i++) {
        auto it = cache_.find(i);
        if (it != cache_.end()) {
          lru_.erase(it->second.lru_it);
          cache_.erase(it);
        }
      }
    }
    flush_gen_.fetch_add(1, std::memory_order_acq_rel);
    flushed_lsn_.store(batch_start + batch_bytes, std::memory_order_release);
    {
      // The bytes are durable; retire the in-memory copy.
      std::lock_guard<std::mutex> g(append_mu_);
      flushing_.clear();
      flushing_start_ = tail_start_;
    }
  }
  return Status::OK();
}

Lsn LogManager::flushed_lsn() const { return flushed_lsn_.load(); }

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> g(append_mu_);
  return next_lsn_;
}

Lsn LogManager::start_lsn() const { return start_lsn_.load(); }

size_t LogManager::tail_bytes() const {
  std::lock_guard<std::mutex> g(append_mu_);
  return tail_.size();
}

uint64_t LogManager::LiveBytes() const {
  std::lock_guard<std::mutex> g(append_mu_);
  return next_lsn_ - start_lsn_.load();
}

LogFlushStats LogManager::flush_stats() const {
  LogFlushStats out;
  out.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  out.batch_bytes = flush_batch_bytes_.load(std::memory_order_relaxed);
  out.max_batch_bytes = max_batch_bytes_.load(std::memory_order_relaxed);
  out.frames_written = frames_written_.load(std::memory_order_relaxed);
  out.frame_logical_bytes =
      frame_logical_bytes_.load(std::memory_order_relaxed);
  out.frame_physical_bytes =
      frame_physical_bytes_.load(std::memory_order_relaxed);
  return out;
}

std::vector<LogFrame> LogManager::frames() const {
  std::lock_guard<std::mutex> g(frames_mu_);
  return frames_;
}

std::vector<LogFrame> LogManager::FramesOverlapping(Lsn lo, Lsn hi) const {
  std::vector<LogFrame> out;
  std::lock_guard<std::mutex> g(frames_mu_);
  auto it = std::upper_bound(
      frames_.begin(), frames_.end(), lo,
      [](Lsn v, const LogFrame& f) { return v < f.lsn; });
  // The frame before the first one starting after `lo` may still
  // reach into the range.
  if (it != frames_.begin()) --it;
  for (; it != frames_.end() && it->lsn < hi; ++it) {
    if (it->lsn + it->ulen > lo) out.push_back(*it);
  }
  return out;
}

bool LogManager::IsFrameInterior(Lsn lsn) const {
  return FrameFloor(lsn) != lsn;
}

Lsn LogManager::FrameFloor(Lsn lsn) const {
  std::lock_guard<std::mutex> g(frames_mu_);
  auto it = std::upper_bound(
      frames_.begin(), frames_.end(), lsn,
      [](Lsn v, const LogFrame& f) { return v < f.lsn; });
  if (it == frames_.begin()) return lsn;
  --it;
  if (lsn > it->lsn && lsn < it->lsn + it->ulen) return it->lsn;
  return lsn;
}

void LogManager::AddFrames(const std::vector<LogFrame>& frames) {
  std::lock_guard<std::mutex> g(frames_mu_);
  frames_.insert(frames_.end(), frames.begin(), frames.end());
}

void LogManager::PrependFrames(const std::vector<LogFrame>& frames) {
  if (!frames.empty()) {
    std::lock_guard<std::mutex> g(frames_mu_);
    // Archive footers can overlap what the active-file scan already
    // registered (the range above start_lsn is in both tiers until it
    // is punched); keep the active log's own entries authoritative.
    const Lsn first_known =
        frames_.empty() ? std::numeric_limits<Lsn>::max() : frames_[0].lsn;
    std::vector<LogFrame> merged;
    for (const LogFrame& f : frames) {
      if (f.lsn < first_known) merged.push_back(f);
    }
    frames_.insert(frames_.begin(), merged.begin(), merged.end());
  }
  // Cached blocks built before these frames were known lack their
  // content.
  DropCache();
}

void LogManager::PruneFrames(Lsn floor) {
  std::lock_guard<std::mutex> g(frames_mu_);
  auto it = frames_.begin();
  while (it != frames_.end() && it->lsn + it->ulen <= floor) ++it;
  frames_.erase(frames_.begin(), it);
}

Status LogManager::MaterializeFrame(const LogFrame& f, char* dst) {
  const size_t phys = kFrameHeaderSize + f.clen;
  std::string fbuf(phys, '\0');
  // The frame's physical bytes live in whichever tier owns its logical
  // range: sealed segments hold them verbatim at their original
  // offsets (archive cuts never split a frame), the active file
  // otherwise.
  bool from_archive = false;
  if (archive_ != nullptr) {
    const Lsn arch_oldest = archive_->oldest_lsn();
    from_archive = arch_oldest != kInvalidLsn && f.lsn >= arch_oldest &&
                   f.lsn + f.ulen <= archive_->high_water();
  }
  if (from_archive) {
    REWIND_RETURN_IF_ERROR(archive_->ReadBytes(f.lsn, phys, fbuf.data()));
  } else {
    if (::pread(fd_, fbuf.data(), phys, static_cast<off_t>(f.lsn)) !=
        static_cast<ssize_t>(phys)) {
      return Status::IoError("log frame read: " +
                             std::string(strerror(errno)));
    }
    if (disk_ != nullptr) disk_->Access(f.lsn, phys);
  }
  uint32_t ulen = 0, clen = 0, psum = 0;
  bool future = false;
  if (!ParseFrameHeader(fbuf.data(), &ulen, &clen, &psum, &future) ||
      ulen != f.ulen || clen != f.clen) {
    return Status::Corruption(
        future ? "log frame from a future format version"
               : "log frame header does not match the frame directory");
  }
  if (Checksum32(fbuf.data() + kFrameHeaderSize, clen) != psum) {
    return Status::Corruption("log frame payload checksum mismatch");
  }
  return Decompress(fbuf.data() + kFrameHeaderSize, clen, dst, ulen);
}

Status LogManager::ReadLogical(Lsn lsn, size_t n, char* dst) {
  if (lsn < oldest_available_lsn() ||
      lsn + n > flushed_lsn_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "logical log read outside the flushed range");
  }
  size_t done = 0;
  while (done < n) {
    const Lsn at = lsn + done;
    REWIND_ASSIGN_OR_RETURN(std::shared_ptr<std::string> block,
                            FetchBlock(at / kBlockSize));
    const size_t off = at % kBlockSize;
    if (block->size() <= off) {
      return Status::Corruption("logical log read past materialized end");
    }
    const size_t take = std::min(n - done, block->size() - off);
    memcpy(dst + done, block->data() + off, take);
    done += take;
  }
  return Status::OK();
}

Lsn LogManager::oldest_available_lsn() const {
  const Lsn start = start_lsn_.load();
  if (archive_ == nullptr) return start;
  const Lsn oldest = archive_->oldest_lsn();
  const Lsn hw = archive_->high_water();
  // The archive extends the horizon only while contiguous with the
  // active log (archive-then-truncate keeps hw >= start; a gap would
  // mean bytes in (hw, start) are gone for good).
  if (oldest == kInvalidLsn || hw < start) return start;
  return std::min(oldest, start);
}

Result<LogRecord> LogManager::ReadRecord(Lsn lsn, size_t* encoded_size) {
  if (lsn < start_lsn_.load() &&
      (archive_ == nullptr || !archive_->Covers(lsn))) {
    return Status::OutOfRange(
        "log record " + std::to_string(lsn) +
        " is older than the retention period (truncated)");
  }
  {
    std::lock_guard<std::mutex> g(append_mu_);
    if (lsn >= next_lsn_) {
      return Status::InvalidArgument("read past log end");
    }
    if (lsn >= tail_start_) {
      // Still in the unflushed tail: serve from memory, no IO.
      size_t off = lsn - tail_start_;
      return ParseAt(tail_.data() + off, tail_.size() - off, encoded_size);
    }
    if (!flushing_.empty() && lsn >= flushing_start_) {
      // In the batch a flusher stole but has not finished writing.
      size_t off = lsn - flushing_start_;
      return ParseAt(flushing_.data() + off, flushing_.size() - off,
                     encoded_size);
    }
  }
  return ReadFromFile(lsn, encoded_size);
}

Result<LogRecord> LogManager::ParseAt(const char* data, size_t avail,
                                      size_t* encoded_size) const {
  size_t consumed = 0;
  auto rec = LogRecord::Decode(Slice(data, avail), &consumed);
  if (rec.ok() && encoded_size != nullptr) *encoded_size = consumed;
  return rec;
}

Result<std::shared_ptr<std::string>> LogManager::FetchBlock(uint64_t idx) {
  if (opts_.cache_blocks > 0) {
    std::lock_guard<std::mutex> g(cache_mu_);
    auto it = cache_.find(idx);
    if (it != cache_.end()) {
      lru_.erase(it->second.lru_it);
      lru_.push_front(idx);
      it->second.lru_it = lru_.begin();
      if (stats_ != nullptr) stats_->log_read_hits++;
      return it->second.block;
    }
  }
  // Miss: materialize the block from the device. Without an archive
  // (or for blocks wholly at/above the archive high water mark) this is
  // one pread of the active file. A block below the high water mark is
  // composed from up to three sources at their original offsets:
  // the file header prefix [0, kFirstLsn) for block 0, archived bytes
  // for the range the archive covers, and the active file for the
  // suffix at/above the high water mark (which is never hole-punched).
  // A front that fell off even the archive horizon stays zeroed --
  // record reads there are rejected by ReadRecord's range guard before
  // they can touch it.
  uint64_t gen_before = flush_gen_.load(std::memory_order_acquire);
  const Lsn flushed_before = flushed_lsn_.load(std::memory_order_acquire);
  auto block = std::make_shared<std::string>();
  block->assign(kBlockSize, '\0');
  const Lsn base = static_cast<Lsn>(idx) * kBlockSize;
  const Lsn block_end = base + kBlockSize;
  Lsn arch_oldest = kInvalidLsn;
  Lsn arch_hw = 0;
  if (archive_ != nullptr) {
    arch_oldest = archive_->oldest_lsn();
    if (arch_oldest != kInvalidLsn) arch_hw = archive_->high_water();
  }
  size_t valid_end = 0;  // bytes [0, valid_end) of the block materialized
  if (arch_hw > base && arch_oldest < block_end) {
    const Lsn from = std::max(base, arch_oldest);
    const Lsn to = std::min(block_end, arch_hw);
    if (to > from) {
      REWIND_RETURN_IF_ERROR(
          archive_->ReadBytes(from, to - from, block->data() + (from - base)));
      valid_end = to - base;
    }
  }
  if (base < kFirstLsn) {
    // The log header lives only in the active file (never archived,
    // never punched).
    const size_t n_hdr = std::min<Lsn>(block_end, kFirstLsn) - base;
    if (::pread(fd_, block->data() + 0, n_hdr, static_cast<off_t>(base)) !=
        static_cast<ssize_t>(n_hdr)) {
      return Status::IoError("log header block read: " +
                             std::string(strerror(errno)));
    }
    valid_end = std::max(valid_end, n_hdr);
  }
  const Lsn file_from = arch_hw > base ? std::min(block_end, arch_hw) : base;
  if (file_from < block_end) {
    ssize_t n = ::pread(fd_, block->data() + (file_from - base),
                        block_end - file_from, static_cast<off_t>(file_from));
    if (n < 0) {
      return Status::IoError("log block read: " +
                             std::string(strerror(errno)));
    }
    if (disk_ != nullptr && n > 0) {
      disk_->Access(file_from, static_cast<uint64_t>(n));
    }
    if (n > 0) {
      valid_end =
          std::max(valid_end, static_cast<size_t>(file_from - base) +
                                  static_cast<size_t>(n));
    }
  }
  // Compression-frame overlay: the raw composite above holds frame
  // headers + compressed payloads (and holes) where framed logical
  // bytes should be. Materialize every durable frame that overlaps the
  // block and splice its logical bytes over the raw image. Frames
  // still being written by an in-flight flush are skipped -- reads in
  // that range are served from flushing_ memory, never from here.
  for (const LogFrame& f : FramesOverlapping(base, block_end)) {
    if (f.lsn + f.ulen > flushed_before) continue;
    std::string ubuf(f.ulen, '\0');
    REWIND_RETURN_IF_ERROR(MaterializeFrame(f, ubuf.data()));
    const Lsn lo = std::max<Lsn>(base, f.lsn);
    const Lsn hi = std::min<Lsn>(block_end, f.lsn + f.ulen);
    memcpy(block->data() + (lo - base), ubuf.data() + (lo - f.lsn), hi - lo);
    valid_end = std::max(valid_end, static_cast<size_t>(hi - base));
  }
  block->resize(valid_end);
  if (stats_ != nullptr) stats_->log_read_misses++;
  // A COMPLETE block of an append-only log is immutable, always safe
  // to cache. A SHORT (last) block may be extended by a concurrent
  // flush whose cache-invalidation pass ran before our insert, which
  // would leave a stale copy shadowing the new records -- so a short
  // block is inserted only if, under cache_mu_, no flush has started
  // since before our pread (flush_gen_ even and unchanged; the
  // invalidation pass runs strictly inside an odd-gen window, so an
  // unchanged even gen proves it has not run yet and any later flush
  // will invalidate what we insert).
  if (opts_.cache_blocks > 0) {
    std::lock_guard<std::mutex> g(cache_mu_);
    const bool short_block_safe =
        gen_before % 2 == 0 &&
        flush_gen_.load(std::memory_order_acquire) == gen_before;
    // A block wholly below the pre-read flush frontier is immutable
    // (its frames were published before the frontier moved); a block
    // reaching past it may have raced a concurrent flush's write and
    // is only cached when no flush ran across the read.
    const bool stable =
        block->size() == kBlockSize && block_end <= flushed_before;
    if ((stable || short_block_safe) && cache_.find(idx) == cache_.end()) {
      lru_.push_front(idx);
      cache_[idx] = {block, lru_.begin()};
      while (cache_.size() > opts_.cache_blocks) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
      }
    }
  }
  return block;
}

void LogManager::PrefetchBlock(Lsn lsn) {
  if (opts_.cache_blocks == 0) return;  // nothing to warm
  if (lsn >= flushed_lsn_.load(std::memory_order_acquire)) return;
  auto block = FetchBlock(lsn / kBlockSize);
  (void)block;
}

Result<LogRecord> LogManager::ReadFromFile(Lsn lsn, size_t* encoded_size) {
  // Assemble the record (which may straddle block boundaries): first get
  // enough bytes for the length prefix, then the rest.
  std::string buf;
  uint64_t idx = lsn / kBlockSize;
  size_t in_block = lsn % kBlockSize;
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<std::string> block,
                          FetchBlock(idx));
  if (block->size() <= in_block) {
    return Status::Corruption("log read past end of file");
  }
  buf.append(block->data() + in_block, block->size() - in_block);
  uint32_t len = LogRecord::PeekLength(Slice(buf));
  if (len == 0 && buf.size() < kLogLengthPrefix) {
    // Length prefix itself straddles: pull the next block.
    REWIND_ASSIGN_OR_RETURN(std::shared_ptr<std::string> nb,
                            FetchBlock(idx + 1));
    buf.append(*nb);
    len = LogRecord::PeekLength(Slice(buf));
    idx++;
  }
  if (len == 0 || len > (64 << 20)) {
    return Status::Corruption("log record: implausible length");
  }
  while (buf.size() < len) {
    idx++;
    auto nb = FetchBlock(idx);
    if (!nb.ok()) return nb.status();
    if ((*nb)->empty()) {
      return Status::Corruption("log record truncated");
    }
    buf.append(**nb);
  }
  if (encoded_size != nullptr) *encoded_size = len;
  size_t consumed;
  return LogRecord::Decode(Slice(buf.data(), len), &consumed);
}

std::vector<CheckpointRef> LogManager::checkpoints() const {
  std::lock_guard<std::mutex> g(ckpt_mu_);
  return checkpoints_;
}

Status LogManager::TruncateBefore(Lsn lsn, bool reclaim) {
  // Never leave the log starting inside a compression frame: the
  // restart scan reads physical bytes from start_lsn, and a mid-frame
  // start would put it in the middle of a compressed payload. Keeping
  // the few extra records down to the frame boundary is always safe.
  lsn = FrameFloor(lsn);
  Lsn cur = start_lsn_.load();
  if (lsn <= cur) return Status::OK();
  {
    std::lock_guard<std::mutex> g(append_mu_);
    if (lsn > next_lsn_) {
      return Status::InvalidArgument("truncate beyond log end");
    }
  }
  start_lsn_.store(lsn);
  PruneCheckpointRefs();
  REWIND_RETURN_IF_ERROR(WriteHeader());
#if defined(__linux__) && defined(FALLOC_FL_PUNCH_HOLE)
  if (reclaim) {
    // Every truncated byte is sealed in the archive (the caller's
    // contract), so give the file blocks back to the filesystem. The
    // header's 4 KiB block is always kept; readers only touch the file
    // at/above the archive high water mark, which is >= lsn here.
    constexpr off_t kAlign = 4096;
    const off_t from = kAlign;
    const off_t to = static_cast<off_t>(lsn / kAlign) * kAlign;
    if (to > from) {
      // Best effort: filesystems without punch support keep the bytes;
      // the logical truncation above already hides them.
      (void)::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                        from, to - from);
    }
  }
#else
  (void)reclaim;
#endif
  return Status::OK();
}

void LogManager::PruneCheckpointRefs() {
  // Keep refs as long as their LSN is still resolvable through EITHER
  // tier: SplitLSN search and snapshot analysis need them for
  // long-horizon AS OF targets whose log lives only in the archive.
  const Lsn floor = oldest_available_lsn();
  PruneFrames(floor);
  std::lock_guard<std::mutex> g(ckpt_mu_);
  while (!checkpoints_.empty() && checkpoints_.front().begin_lsn < floor) {
    checkpoints_.erase(checkpoints_.begin());
  }
}

void LogManager::PrependCheckpoints(const std::vector<CheckpointRef>& refs) {
  if (refs.empty()) return;
  std::lock_guard<std::mutex> g(ckpt_mu_);
  checkpoints_.insert(checkpoints_.begin(), refs.begin(), refs.end());
}

Status LogManager::ReadRaw(Lsn lsn, size_t n, char* dst) {
  if (lsn < start_lsn_.load() ||
      lsn + n > flushed_lsn_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("raw log read outside the flushed range");
  }
  // Compressed frames leave their logical remainder unwritten, so the
  // physical file can legitimately end (or hole) inside the flushed
  // range: zero-fill and accept a short read, exactly what the sparse
  // bytes mean.
  memset(dst, 0, n);
  ssize_t r = ::pread(fd_, dst, n, static_cast<off_t>(lsn));
  if (r < 0) {
    return Status::IoError("raw log read: " + std::string(strerror(errno)));
  }
  if (disk_ != nullptr) disk_->Access(lsn, n);
  return Status::OK();
}

void LogManager::DropCache() {
  std::lock_guard<std::mutex> g(cache_mu_);
  cache_.clear();
  lru_.clear();
}

}  // namespace rewinddb
