// Append-only transaction log with ARIES-style LSNs.
//
// LSNs are byte offsets into the log file, so fetching a record during
// page rewind is one positioned read; a log-block cache absorbs
// re-reads, and every cache miss is charged to the disk model -- the
// paper's "each log IO is a potential stall" (section 6.2) and the
// quantity figure 11 estimates.
#ifndef REWINDDB_LOG_LOG_MANAGER_H_
#define REWINDDB_LOG_LOG_MANAGER_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/types.h"
#include "io/disk_model.h"
#include "log/log_record.h"

namespace rewinddb {

/// Reference to a checkpoint, kept in memory to narrow the SplitLSN
/// search (section 5.1) and to pick log truncation points.
struct CheckpointRef {
  Lsn begin_lsn;
  WallClock wall_clock;
};

/// Thread-safe log manager: appends, group-commit flushes, random and
/// sequential reads, retention-driven truncation.
/// Tuning knobs for the log manager.
struct LogManagerOptions {
  /// Log-block cache capacity in 32 KiB blocks (0 disables caching --
  /// useful to magnify stalls in experiments).
  size_t cache_blocks = 256;
  /// Auto-flush threshold for the in-memory tail.
  size_t max_tail_bytes = 4 << 20;
};

class LogManager {
 public:
  using Options = LogManagerOptions;

  ~LogManager();
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Create a fresh log at `path`.
  static Result<std::unique_ptr<LogManager>> Create(const std::string& path,
                                                    DiskModel* disk,
                                                    IoStats* stats,
                                                    Options opts = Options());

  /// Open an existing log: scans to the end to find next_lsn and
  /// rebuilds the checkpoint directory.
  static Result<std::unique_ptr<LogManager>> Open(const std::string& path,
                                                  DiskModel* disk,
                                                  IoStats* stats,
                                                  Options opts = Options());

  /// Append `rec`; returns its LSN. Does not flush.
  Lsn Append(const LogRecord& rec);

  /// Ensure all records up to and including `lsn` are durable.
  Status FlushTo(Lsn lsn);

  /// Flush everything appended so far.
  Status FlushAll();

  Lsn flushed_lsn() const;
  /// LSN the next appended record will receive.
  Lsn next_lsn() const;
  /// Oldest available LSN (records below were truncated away).
  Lsn start_lsn() const;

  /// Random-access read of the record at `lsn` (chain walks).
  Result<LogRecord> ReadRecord(Lsn lsn);

  /// Sequential scan of [from, to): invokes `cb(lsn, record)`; the
  /// callback returns false to stop early.
  Status Scan(Lsn from, Lsn to,
              const std::function<bool(Lsn, const LogRecord&)>& cb);

  /// Checkpoint directory (ascending LSN).
  std::vector<CheckpointRef> checkpoints() const;

  /// Drop records below `lsn` (they become unavailable; reads fail with
  /// OutOfRange). Used by the retention policy (section 4.3).
  Status TruncateBefore(Lsn lsn);

  /// Bytes of live log (next_lsn - start_lsn): the space metric of
  /// figure 5.
  uint64_t LiveBytes() const;

  /// Drop all cached blocks (failure-injection in tests/benchmarks).
  void DropCache();

 private:
  LogManager(std::string path, int fd, DiskModel* disk, IoStats* stats,
             Options opts);

  Status WriteHeader();
  Status FlushLocked(Lsn target);
  /// Fetch the 32 KiB block with index `idx` through the cache.
  Result<std::shared_ptr<std::string>> FetchBlock(uint64_t idx);
  Result<LogRecord> ReadFromFile(Lsn lsn);
  Result<LogRecord> ParseAt(const char* data, size_t avail) const;

  static constexpr size_t kBlockSize = 32 * 1024;
  static constexpr Lsn kFirstLsn = 64;  // log header occupies [0, 64)

  const std::string path_;
  int fd_;
  DiskModel* disk_;
  IoStats* stats_;
  const Options opts_;

  mutable std::mutex append_mu_;
  std::string tail_;          // unflushed bytes
  Lsn tail_start_ = kFirstLsn;
  Lsn next_lsn_ = kFirstLsn;

  std::mutex flush_mu_;       // serializes file writes
  std::atomic<Lsn> flushed_lsn_{kFirstLsn};
  std::atomic<Lsn> start_lsn_{kFirstLsn};

  mutable std::mutex cache_mu_;
  std::list<uint64_t> lru_;   // most recent at front
  struct CacheEntry {
    std::shared_ptr<std::string> block;
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, CacheEntry> cache_;

  mutable std::mutex ckpt_mu_;
  std::vector<CheckpointRef> checkpoints_;
};

}  // namespace rewinddb

#endif  // REWINDDB_LOG_LOG_MANAGER_H_
