// Log block/file/cache core underneath the wal:: surface.
//
// LSNs are byte offsets into the log file, so fetching a record during
// page rewind is one positioned read; a log-block cache absorbs
// re-reads, and every cache miss is charged to the disk model -- the
// paper's "each log IO is a potential stall" (section 6.2) and the
// quantity figure 11 estimates.
//
// With an attached wal::ArchiveManager the same address space spans two
// tiers: bytes at or above start_lsn live in the active file, bytes
// below it in sealed archive segments holding the verbatim log bytes at
// their original offsets. Block fetches compose the two transparently,
// so every cursor consumer reads across the boundary unmodified.
//
// This class is NOT an application surface. Writers publish through
// wal::Writer / wal::Wal (which owns the group-commit pipeline) and
// readers iterate with wal::Cursor; record-level reads are private and
// friended to the wal layer so no consumer can grow a bespoke
// chain-walk or scan loop against the core again.
#ifndef REWINDDB_LOG_LOG_MANAGER_H_
#define REWINDDB_LOG_LOG_MANAGER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/types.h"
#include "io/disk_model.h"
#include "log/log_record.h"

namespace rewinddb {

namespace wal {
class ArchiveManager;
class Cursor;
class Wal;
}  // namespace wal

// CheckpointRef (the checkpoint-directory entry) lives in
// common/types.h so the archive tier can persist it per segment.

/// Tuning knobs for the log core.
struct LogManagerOptions {
  /// Log-block cache capacity in 32 KiB blocks (0 disables caching --
  /// useful to magnify stalls in experiments). With the cache disabled
  /// every read goes straight to the file and nothing is retained.
  size_t cache_blocks = 256;
  /// Tail size at which appends ask for a flush (backpressure).
  size_t max_tail_bytes = 4 << 20;
  /// Compress flush batches into frames (see LogFrame). Write-side
  /// only: readers handle framed logs unconditionally, so a log
  /// written with compression on reopens fine with it off and vice
  /// versa.
  bool compression = false;
};

/// One compressed frame in the active log. The LOGICAL byte range
/// [lsn, lsn + ulen) still addresses the uncompressed record bytes --
/// LSNs stay byte offsets into the conceptual uncompressed log -- but
/// the file stores only [lsn, lsn + kFrameHeaderSize + clen): a
/// self-describing header plus the compressed payload. The rest of
/// the logical range is never written (a filesystem hole), which is
/// where the disk saving comes from. Frames start and end on record
/// boundaries.
struct LogFrame {
  Lsn lsn = kInvalidLsn;
  uint32_t ulen = 0;  // logical (uncompressed) length
  uint32_t clen = 0;  // compressed payload length on disk
};

/// Counters for the flush pipeline (evidence for the fig6 bench JSON).
struct LogFlushStats {
  /// Flush batches written -- one pwrite + one fdatasync pair each, so
  /// this is also the fsync count.
  uint64_t fsyncs = 0;
  /// Total bytes across all batches.
  uint64_t batch_bytes = 0;
  /// Largest single batch.
  uint64_t max_batch_bytes = 0;
  /// Compression-frame evidence (zero with compression off): logical
  /// bytes framed vs physical bytes (header + payload) written for
  /// them. logical/physical is the live compression ratio.
  uint64_t frames_written = 0;
  uint64_t frame_logical_bytes = 0;
  uint64_t frame_physical_bytes = 0;
};

class LogManager {
 public:
  using Options = LogManagerOptions;

  ~LogManager();
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Create a fresh log at `path`.
  static Result<std::unique_ptr<LogManager>> Create(const std::string& path,
                                                    DiskModel* disk,
                                                    IoStats* stats,
                                                    Options opts = Options());

  /// Open an existing log: scans to the end to find next_lsn and
  /// rebuilds the checkpoint directory.
  static Result<std::unique_ptr<LogManager>> Open(const std::string& path,
                                                  DiskModel* disk,
                                                  IoStats* stats,
                                                  Options opts = Options());

  /// Append `rec`; returns its LSN. Does not flush; `*need_flush` (if
  /// non-null) is set when the tail has crossed the backpressure
  /// threshold and the owner should schedule a flush.
  Lsn Append(const LogRecord& rec, bool* need_flush = nullptr);

  /// Splice `records` pre-encoded record bytes (no checkpoint records)
  /// onto the tail in one step; returns the LSN of the first byte.
  /// This is the wal::Writer publish path: encoding happened outside
  /// the append lock.
  Lsn AppendEncoded(Slice encoded, size_t records, bool* need_flush);

  /// Ensure all records up to and including `lsn` are durable.
  Status FlushTo(Lsn lsn);

  /// Flush everything appended so far.
  Status FlushAll();

  Lsn flushed_lsn() const;
  /// LSN the next appended record will receive.
  Lsn next_lsn() const;
  /// Oldest available LSN (records below were truncated away).
  Lsn start_lsn() const;
  /// Bytes currently staged in the unflushed tail.
  size_t tail_bytes() const;

  /// Checkpoint directory (ascending LSN).
  std::vector<CheckpointRef> checkpoints() const;

  /// Attach the archive tier: reads below start_lsn() transparently
  /// fall back to sealed segments, so cursor walks cross the
  /// active/archive boundary unmodified. The archive must outlive this
  /// LogManager. Set once, before concurrent readers exist (wal::Wal
  /// does this during Create/Open).
  void set_archive(wal::ArchiveManager* archive) { archive_ = archive; }
  wal::ArchiveManager* archive() const { return archive_; }

  /// Oldest LSN any read can still resolve: the oldest archived byte
  /// when the archive tier is attached and contiguous with the active
  /// log, start_lsn() otherwise. This is the true AS OF horizon floor.
  Lsn oldest_available_lsn() const;

  /// Copy the flushed byte range [lsn, lsn + n) out of the active log
  /// file (the archive sealer's source), PHYSICAL bytes: compressed
  /// frames come back verbatim and their unwritten logical remainder
  /// (and any hole-punched range) reads as zeros. The range must lie
  /// within [start_lsn, flushed_lsn); flushed bytes are stable, so no
  /// lock is held across the read.
  Status ReadRaw(Lsn lsn, size_t n, char* dst);

  /// Copy the LOGICAL byte range [lsn, lsn + n): record bytes with
  /// every compression frame expanded, composed across both tiers.
  /// The range must be flushed and at/above oldest_available_lsn().
  /// Wal::ExportPrefix uses this so exported logs are plain record
  /// streams regardless of how the source was stored.
  Status ReadLogical(Lsn lsn, size_t n, char* dst);

  // ------------------------ compression frames -----------------------

  /// Frame directory snapshot, ascending by lsn (introspection for
  /// tests, benches and the crash-matrix harness).
  std::vector<LogFrame> frames() const;

  /// True when `lsn` lies strictly inside some frame's logical range.
  /// Archive cuts and truncation floors must avoid such points: the
  /// physical bytes there belong to a frame that only materializes as
  /// a whole.
  bool IsFrameInterior(Lsn lsn) const;

  /// `lsn` rounded down to the enclosing frame's start when frame-
  /// interior, else `lsn` itself: the largest safe boundary <= lsn.
  Lsn FrameFloor(Lsn lsn) const;

  /// Splice frames recovered from archive segment footers in front of
  /// the directory (wal::Wal::InitArchive; all entries must precede
  /// the active log's own frames). Drops the block cache: cached
  /// blocks built without these frames would shadow their content.
  void PrependFrames(const std::vector<LogFrame>& frames);

  /// Drop records below `lsn` from the ACTIVE log (they become
  /// unavailable unless the archive tier covers them; bare reads then
  /// fail with OutOfRange). Used by the retention policy (section 4.3).
  /// With `reclaim` set the truncated file range is hole-punched so the
  /// active log's disk footprint actually shrinks -- only pass it when
  /// every truncated byte is sealed in the archive (wal::Wal does).
  /// `lsn` is rounded DOWN to FrameFloor(lsn): the log never starts
  /// inside a compression frame (keeping a few extra records is always
  /// safe; starting mid-frame would make the restart scan unreadable).
  Status TruncateBefore(Lsn lsn, bool reclaim = false);

  /// Re-prune the checkpoint directory down to oldest_available_lsn()
  /// (after archive segments are dropped). Truncation with an attached
  /// archive keeps refs into archived history so SplitLSN search still
  /// narrows long-horizon AS OF targets.
  void PruneCheckpointRefs();

  /// Splice checkpoint refs recovered from the archive tier in front of
  /// the directory (wal::Wal::Open's archive scan; all `refs` must
  /// precede the existing entries).
  void PrependCheckpoints(const std::vector<CheckpointRef>& refs);

  /// Bytes of live log (next_lsn - start_lsn): the space metric of
  /// figure 5.
  uint64_t LiveBytes() const;

  /// Drop all cached blocks (failure-injection in tests/benchmarks).
  /// Safe no-op when the cache is disabled (cache_blocks == 0).
  void DropCache();

  LogFlushStats flush_stats() const;

 private:
  friend class wal::Cursor;
  friend class wal::Wal;

  LogManager(std::string path, int fd, DiskModel* disk, IoStats* stats,
             Options opts);

  /// Random-access read of the record at `lsn`. Sets `*encoded_size`
  /// (if non-null) to the record's on-log length so iteration can
  /// advance without re-encoding. wal::Cursor is the only consumer.
  Result<LogRecord> ReadRecord(Lsn lsn, size_t* encoded_size = nullptr);

  /// Warm the cache with the 32 KiB block holding `lsn` (sequential
  /// scan prefetch). No-op when the cache is disabled.
  void PrefetchBlock(Lsn lsn);

  Status WriteHeader();
  /// Write a log-file header (magic + start LSN) at offset 0 of `fd`:
  /// how Wal::ExportPrefix stamps a reconstructed standalone log.
  static Status WriteHeaderAt(int fd, Lsn start);
  Status FlushLocked(Lsn target);
  /// Frames intersecting the logical range [lo, hi), ascending.
  std::vector<LogFrame> FramesOverlapping(Lsn lo, Lsn hi) const;
  /// Publish frames written by a successful flush (ascending, all
  /// above existing entries).
  void AddFrames(const std::vector<LogFrame>& frames);
  /// Drop frames whose logical range ends at or below `floor`.
  void PruneFrames(Lsn floor);
  /// Read + verify + decompress the frame's logical bytes into `dst`
  /// (f.ulen bytes), choosing the owning tier by the frame's range.
  Status MaterializeFrame(const LogFrame& f, char* dst);
  /// Fetch the 32 KiB block with index `idx` through the cache.
  Result<std::shared_ptr<std::string>> FetchBlock(uint64_t idx);
  Result<LogRecord> ReadFromFile(Lsn lsn, size_t* encoded_size);
  Result<LogRecord> ParseAt(const char* data, size_t avail,
                            size_t* encoded_size) const;
  void NoteCheckpoint(const LogRecord& rec, Lsn lsn);

  static constexpr size_t kBlockSize = 32 * 1024;
  static constexpr Lsn kFirstLsn = 64;  // log header occupies [0, 64)

 public:
  // Frame format constants (public: the archive tier and tests share
  // them).
  /// First 4 bytes of a frame. Chosen far above the 64 MiB record
  /// length ceiling ReadFromFile enforces, so a physical scan can
  /// always tell a frame header from a record length prefix.
  static constexpr uint32_t kFrameMagic = 0xF7D1E7A5u;
  static constexpr uint8_t kFrameVersion = 1;
  /// magic(4) + version(1) + reserved(3) + ulen(4) + clen(4) +
  /// payload checksum(4) + header checksum(4).
  static constexpr size_t kFrameHeaderSize = 24;
  /// Target logical bytes per frame (flush batches are chunked into
  /// frames of about this size, always on record boundaries).
  static constexpr size_t kFrameTargetBytes = kBlockSize;
  /// A frame is only emitted when it saves at least this many bytes
  /// over the raw chunk; marginal wins are not worth the decompression
  /// on every read.
  static constexpr size_t kFrameMinSaving = 64;

 private:

  const std::string path_;
  int fd_;
  DiskModel* disk_;
  IoStats* stats_;
  const Options opts_;
  /// Archive tier for reads below start_lsn_; null when archiving is
  /// off (reads below start_lsn_ then fail with OutOfRange).
  wal::ArchiveManager* archive_ = nullptr;

  mutable std::mutex append_mu_;
  std::string tail_;          // unflushed bytes
  Lsn tail_start_ = kFirstLsn;
  Lsn next_lsn_ = kFirstLsn;
  /// Batch currently being written by a flusher: stolen from the tail
  /// but possibly not yet on disk, so reads of [flushing_start_,
  /// tail_start_) are served from here instead of the file.
  std::string flushing_;
  Lsn flushing_start_ = kFirstLsn;

  std::mutex flush_mu_;       // serializes file writes
  /// Bumped to odd when a flush starts writing the file and back to
  /// even once its cache invalidation completed; FetchBlock uses it to
  /// refuse caching a short block whose read overlapped a flush.
  std::atomic<uint64_t> flush_gen_{0};
  std::atomic<Lsn> flushed_lsn_{kFirstLsn};
  std::atomic<Lsn> start_lsn_{kFirstLsn};

  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> flush_batch_bytes_{0};
  std::atomic<uint64_t> max_batch_bytes_{0};
  std::atomic<uint64_t> frames_written_{0};
  std::atomic<uint64_t> frame_logical_bytes_{0};
  std::atomic<uint64_t> frame_physical_bytes_{0};

  /// Frame directory, ascending by lsn. Grows at the back on flush,
  /// shrinks at the front on truncation/retention; archive recovery
  /// prepends. Readers snapshot under the mutex.
  mutable std::mutex frames_mu_;
  std::vector<LogFrame> frames_;

  mutable std::mutex cache_mu_;
  std::list<uint64_t> lru_;   // most recent at front
  struct CacheEntry {
    std::shared_ptr<std::string> block;
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, CacheEntry> cache_;

  mutable std::mutex ckpt_mu_;
  std::vector<CheckpointRef> checkpoints_;
};

}  // namespace rewinddb

#endif  // REWINDDB_LOG_LOG_MANAGER_H_
