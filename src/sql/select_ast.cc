#include "sql/select_ast.h"

namespace rewinddb {
namespace sql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
    case AggFn::kCountStar: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
    case AggFn::kAvg: return "AVG";
  }
  return "?";
}

std::string Expr::Render() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumn:
      if (!table.empty()) return table + "." + column;
      if (!column.empty()) return column;
      return "#" + std::to_string(slot);
    case Kind::kBinary:
      return "(" + lhs->Render() + " " + BinOpName(op) + " " +
             rhs->Render() + ")";
    case Kind::kNot:
      return "(NOT " + lhs->Render() + ")";
    case Kind::kNeg:
      return "(- " + lhs->Render() + ")";
    case Kind::kIsNull:
      return "(" + lhs->Render() + (negated ? " IS NOT NULL)" : " IS NULL)");
    case Kind::kAgg:
      if (agg == AggFn::kCountStar) return "COUNT(*)";
      return std::string(AggFnName(agg)) + "(" +
             (agg_distinct ? "DISTINCT " : "") + lhs->Render() + ")";
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumn(std::string table, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeSlot(int slot, std::string display_name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column = std::move(display_name);
  e->slot = slot;
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeUnary(Expr::Kind kind, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->lhs = std::move(child);
  return e;
}

ExprPtr MakeAgg(AggFn fn, ExprPtr arg, bool distinct) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kAgg;
  e->agg = fn;
  e->lhs = std::move(arg);
  e->agg_distinct = distinct;
  return e;
}

}  // namespace sql
}  // namespace rewinddb
