#include "sql/parser.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <ctime>
#include <vector>

namespace rewinddb {

namespace {

/// Exception-free digit-string parse; the lexer admits arbitrarily
/// long numbers, so overflow must become InvalidArgument, not a throw.
Result<uint64_t> ParseU64(const std::string& text) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("number '" + text + "' out of range");
  }
  return value;
}

struct Token {
  enum class Type { kWord, kNumber, kString, kPunct, kEnd };
  Type type;
  std::string text;  // words upper-cased; strings without quotes
  std::string raw;   // original spelling
};

class Lexer {
 public:
  explicit Lexer(const std::string& in) : in_(in) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (c == '\'') {
        size_t j = i + 1;
        std::string s;
        while (j < in_.size() && in_[j] != '\'') s += in_[j++];
        if (j >= in_.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({Token::Type::kString, s, s});
        i = j + 1;
        continue;
      }
      if (isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < in_.size() &&
               isdigit(static_cast<unsigned char>(in_[j]))) {
          j++;
        }
        std::string n = in_.substr(i, j - i);
        out.push_back({Token::Type::kNumber, n, n});
        i = j;
        continue;
      }
      if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < in_.size() &&
               (isalnum(static_cast<unsigned char>(in_[j])) ||
                in_[j] == '_')) {
          j++;
        }
        std::string raw = in_.substr(i, j - i);
        std::string up = raw;
        for (char& ch : up) ch = static_cast<char>(toupper(ch));
        out.push_back({Token::Type::kWord, up, raw});
        i = j;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == ';') {
        out.push_back({Token::Type::kPunct, std::string(1, c),
                       std::string(1, c)});
        i++;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    out.push_back({Token::Type::kEnd, "", ""});
    return out;
  }

 private:
  const std::string& in_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlCommand> Parse() {
    if (Accept("CREATE")) {
      if (Accept("DATABASE")) return CreateSnapshot();
      if (Accept("TABLE")) return CreateTable();
      return Err("expected DATABASE or TABLE after CREATE");
    }
    if (Accept("ALTER")) return AlterDatabase();
    if (Accept("FLASHBACK")) return Flashback();
    if (Accept("SET")) return SetCommitMode();
    if (Accept("CHECKPOINT")) {
      SqlCommand cmd;
      cmd.kind = SqlCommand::Kind::kCheckpoint;
      return cmd;
    }
    if (Accept("SHOW")) {
      REWIND_RETURN_IF_ERROR(Expect("STATS"));
      SqlCommand cmd;
      cmd.kind = SqlCommand::Kind::kShowStats;
      return cmd;
    }
    if (Accept("DROP")) {
      if (Accept("DATABASE")) return DropNamed(SqlCommand::Kind::kDropDatabase);
      if (Accept("TABLE")) return DropNamed(SqlCommand::Kind::kDropTable);
      return Err("expected DATABASE or TABLE after DROP");
    }
    return Err("unrecognized statement");
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }

  /// Every parser diagnostic names the token it stopped at; ParseSql
  /// appends the statement fragment on the way out.
  Status Err(const std::string& what) const {
    std::string at = Cur().type == Token::Type::kEnd
                         ? std::string("end of statement")
                         : "'" + Cur().raw + "'";
    return Status::InvalidArgument(what + " near " + at);
  }

  bool Accept(const std::string& word) {
    if (Cur().type == Token::Type::kWord && Cur().text == word) {
      pos_++;
      return true;
    }
    return false;
  }

  bool AcceptPunct(char c) {
    if (Cur().type == Token::Type::kPunct && Cur().text[0] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  Status Expect(const std::string& word) {
    if (!Accept(word)) return Err("expected " + word);
    return Status::OK();
  }

  Result<std::string> Identifier() {
    if (Cur().type != Token::Type::kWord) {
      return Err("expected identifier");
    }
    std::string id = Cur().raw;
    pos_++;
    return id;
  }

  Result<SqlCommand> CreateSnapshot() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kCreateSnapshot;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("AS"));
    REWIND_RETURN_IF_ERROR(Expect("SNAPSHOT"));
    REWIND_RETURN_IF_ERROR(Expect("OF"));
    REWIND_ASSIGN_OR_RETURN(cmd.source, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("AS"));
    REWIND_RETURN_IF_ERROR(Expect("OF"));
    if (Cur().type == Token::Type::kString) {
      REWIND_ASSIGN_OR_RETURN(cmd.as_of, ParseTimestamp(Cur().text));
      pos_++;
    } else if (Cur().type == Token::Type::kNumber) {
      REWIND_ASSIGN_OR_RETURN(cmd.as_of, ParseU64(Cur().text));
      pos_++;
    } else {
      return Err("expected timestamp after AS OF");
    }
    return cmd;
  }

  Result<SqlCommand> AlterDatabase() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kAlterUndoInterval;
    REWIND_RETURN_IF_ERROR(Expect("DATABASE"));
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("SET"));
    REWIND_RETURN_IF_ERROR(Expect("UNDO_INTERVAL"));
    if (!AcceptPunct('=')) return Err("expected = after UNDO_INTERVAL");
    if (Cur().type != Token::Type::kNumber) {
      return Err("expected a number for UNDO_INTERVAL");
    }
    REWIND_ASSIGN_OR_RETURN(uint64_t n, ParseU64(Cur().text));
    pos_++;
    uint64_t unit;
    if (Accept("HOURS") || Accept("HOUR")) {
      unit = 3600ULL * 1'000'000;
    } else if (Accept("MINUTES") || Accept("MINUTE")) {
      unit = 60ULL * 1'000'000;
    } else if (Accept("SECONDS") || Accept("SECOND")) {
      unit = 1'000'000;
    } else {
      return Err("expected HOURS, MINUTES or SECONDS");
    }
    if (n > UINT64_MAX / unit) {
      return Err("undo interval out of range");
    }
    cmd.undo_interval_micros = n * unit;
    return cmd;
  }

  Result<SqlCommand> SetCommitMode() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kSetCommitMode;
    REWIND_RETURN_IF_ERROR(Expect("COMMIT_MODE"));
    if (!AcceptPunct('=')) return Err("expected = after COMMIT_MODE");
    if (Cur().type != Token::Type::kWord ||
        !ParseCommitMode(Cur().text.c_str(), &cmd.commit_mode)) {
      return Err("expected SYNC, GROUP, ASYNC or NONE");
    }
    pos_++;
    return cmd;
  }

  Result<SqlCommand> Flashback() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kFlashback;
    REWIND_RETURN_IF_ERROR(Expect("TRANSACTION"));
    if (Cur().type != Token::Type::kNumber) {
      return Err("expected a transaction id");
    }
    REWIND_ASSIGN_OR_RETURN(cmd.txn_id, ParseU64(Cur().text));
    pos_++;
    return cmd;
  }

  Result<SqlCommand> DropNamed(SqlCommand::Kind kind) {
    SqlCommand cmd;
    cmd.kind = kind;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    return cmd;
  }

  Result<ColumnType> TypeName() {
    if (Accept("INT") || Accept("INT32") || Accept("INTEGER")) {
      return ColumnType::kInt32;
    }
    if (Accept("BIGINT") || Accept("INT64")) return ColumnType::kInt64;
    if (Accept("DOUBLE") || Accept("FLOAT") || Accept("REAL") ||
        Accept("DECIMAL")) {
      return ColumnType::kDouble;
    }
    if (Accept("TEXT") || Accept("STRING") || Accept("VARCHAR") ||
        Accept("CHAR")) {
      // Optional (n) length, ignored.
      if (AcceptPunct('(')) {
        if (Cur().type == Token::Type::kNumber) pos_++;
        if (!AcceptPunct(')')) return Err("expected ) after length");
      }
      return ColumnType::kString;
    }
    return Err("unknown column type");
  }

  Result<SqlCommand> CreateTable() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kCreateTable;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    if (!AcceptPunct('(')) return Err("expected ( after table name");
    std::vector<Column> cols;
    std::vector<std::string> key_cols;
    while (true) {
      if (Accept("PRIMARY")) {
        REWIND_RETURN_IF_ERROR(Expect("KEY"));
        if (!AcceptPunct('(')) {
          return Err("expected ( after PRIMARY KEY");
        }
        while (true) {
          REWIND_ASSIGN_OR_RETURN(std::string k, Identifier());
          key_cols.push_back(k);
          if (AcceptPunct(',')) continue;
          break;
        }
        if (!AcceptPunct(')')) {
          return Err("expected ) after key columns");
        }
      } else {
        REWIND_ASSIGN_OR_RETURN(std::string col, Identifier());
        REWIND_ASSIGN_OR_RETURN(ColumnType type, TypeName());
        cols.push_back({col, type});
      }
      if (AcceptPunct(',')) continue;
      break;
    }
    if (!AcceptPunct(')')) {
      return Err("expected ) to close column list");
    }
    if (key_cols.empty()) {
      return Err("PRIMARY KEY clause is required");
    }
    // Reorder so the key columns form the prefix, in declared key order.
    std::vector<Column> ordered;
    for (const std::string& k : key_cols) {
      bool found = false;
      for (const Column& c : cols) {
        if (c.name == k) {
          ordered.push_back(c);
          found = true;
          break;
        }
      }
      if (!found) {
        return Err("key column '" + k + "' not declared");
      }
    }
    for (const Column& c : cols) {
      bool is_key = false;
      for (const std::string& k : key_cols) {
        if (c.name == k) is_key = true;
      }
      if (!is_key) ordered.push_back(c);
    }
    cmd.schema = Schema(std::move(ordered), key_cols.size());
    return cmd;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string StatementFragment(const std::string& sql) {
  std::string out;
  out.reserve(64);
  bool last_space = false;
  for (char c : sql) {
    bool space = isspace(static_cast<unsigned char>(c)) != 0;
    if (space && (last_space || out.empty())) continue;
    out.push_back(space ? ' ' : c);
    last_space = space;
    if (out.size() >= 60) {
      out += "...";
      break;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Result<SqlCommand> ParseSql(const std::string& sql) {
  // Uniform diagnostic contract: every parse failure -- lexer or
  // grammar -- carries the offending statement fragment, so a client on
  // the other end of a wire sees which statement it sent went wrong.
  auto wrap = [&sql](const Status& st) {
    return Status::InvalidArgument(st.message() + " [statement: \"" +
                                   StatementFragment(sql) + "\"]");
  };
  Lexer lexer(sql);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return wrap(tokens.status());
  Parser parser(std::move(*tokens));
  Result<SqlCommand> cmd = parser.Parse();
  if (!cmd.ok()) return wrap(cmd.status());
  return cmd;
}

Result<WallClock> ParseTimestamp(const std::string& text) {
  int year, month, day, hour, minute, second;
  unsigned long frac = 0;
  char frac_buf[16] = {0};
  int matched = sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%15s", &year, &month,
                       &day, &hour, &minute, &second, frac_buf);
  if (matched < 6) {
    return Status::InvalidArgument("bad timestamp '" + text +
                                   "' (want YYYY-MM-DD HH:MM:SS[.ffffff])");
  }
  if (matched == 7) {
    // frac_buf came from %15s: it can hold ANY non-space bytes, so it
    // must be digit-validated and parsed exception-free (std::stoul on
    // '.abc' would throw -- a crash path for hostile wire input).
    std::string digits(frac_buf);
    while (digits.size() < 6) digits += '0';
    digits = digits.substr(0, 6);
    auto [ptr, ec] = std::from_chars(digits.data(),
                                     digits.data() + digits.size(), frac);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      return Status::InvalidArgument("bad fractional seconds in timestamp '" +
                                     text + "'");
    }
  }
  struct tm tm_utc = {};
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = minute;
  tm_utc.tm_sec = second;
  time_t secs = timegm(&tm_utc);
  if (secs < 0) return Status::InvalidArgument("timestamp out of range");
  return static_cast<WallClock>(secs) * 1'000'000 + frac;
}

std::string FormatTimestamp(WallClock micros) {
  time_t secs = static_cast<time_t>(micros / 1'000'000);
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06llu",
           tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
           tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
           static_cast<unsigned long long>(micros % 1'000'000));
  return buf;
}

}  // namespace rewinddb
