#include "sql/parser.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <vector>

namespace rewinddb {

namespace {

/// Exception-free digit-string parse; the lexer admits arbitrarily
/// long numbers, so overflow must become InvalidArgument, not a throw.
Result<uint64_t> ParseU64(const std::string& text) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("number '" + text + "' out of range");
  }
  return value;
}

struct Token {
  enum class Type { kWord, kNumber, kString, kPunct, kEnd };
  Type type;
  std::string text;  // words upper-cased; strings without quotes
  std::string raw;   // original spelling
};

class Lexer {
 public:
  explicit Lexer(const std::string& in) : in_(in) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (c == '\'') {
        size_t j = i + 1;
        std::string s;
        while (j < in_.size() && in_[j] != '\'') s += in_[j++];
        if (j >= in_.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({Token::Type::kString, s, s});
        i = j + 1;
        continue;
      }
      if (isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < in_.size() &&
               isdigit(static_cast<unsigned char>(in_[j]))) {
          j++;
        }
        // A '.' glues into the number only when digits follow, so
        // "1.5" is one token while "t.c" stays ident '.' ident.
        if (j + 1 < in_.size() && in_[j] == '.' &&
            isdigit(static_cast<unsigned char>(in_[j + 1]))) {
          j += 2;
          while (j < in_.size() &&
                 isdigit(static_cast<unsigned char>(in_[j]))) {
            j++;
          }
        }
        std::string n = in_.substr(i, j - i);
        out.push_back({Token::Type::kNumber, n, n});
        i = j;
        continue;
      }
      if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < in_.size() &&
               (isalnum(static_cast<unsigned char>(in_[j])) ||
                in_[j] == '_')) {
          j++;
        }
        std::string raw = in_.substr(i, j - i);
        std::string up = raw;
        for (char& ch : up) ch = static_cast<char>(toupper(ch));
        out.push_back({Token::Type::kWord, up, raw});
        i = j;
        continue;
      }
      // Two-character operators first (the parser compares whole token
      // text, so "<=" never half-matches "<").
      if (i + 1 < in_.size()) {
        char d = in_[i + 1];
        if ((c == '<' && (d == '=' || d == '>')) ||
            (c == '>' && d == '=') || (c == '!' && d == '=')) {
          std::string op{c, d};
          out.push_back({Token::Type::kPunct, op, op});
          i += 2;
          continue;
        }
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == ';' ||
          c == '<' || c == '>' || c == '+' || c == '-' || c == '*' ||
          c == '/' || c == '%' || c == '.') {
        out.push_back({Token::Type::kPunct, std::string(1, c),
                       std::string(1, c)});
        i++;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    out.push_back({Token::Type::kEnd, "", ""});
    return out;
  }

 private:
  const std::string& in_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlCommand> Parse() {
    if (Accept("SELECT")) return Select(/*explain=*/false);
    if (Accept("EXPLAIN")) {
      REWIND_RETURN_IF_ERROR(Expect("SELECT"));
      return Select(/*explain=*/true);
    }
    if (Accept("CREATE")) {
      if (Accept("DATABASE")) return CreateSnapshot();
      if (Accept("TABLE")) return CreateTable();
      if (Accept("INDEX")) return CreateIndex();
      return Err("expected DATABASE, TABLE or INDEX after CREATE");
    }
    if (Accept("ALTER")) return AlterDatabase();
    if (Accept("FLASHBACK")) return Flashback();
    if (Accept("SET")) return SetOption();
    if (Accept("CHECKPOINT")) {
      SqlCommand cmd;
      cmd.kind = SqlCommand::Kind::kCheckpoint;
      return cmd;
    }
    if (Accept("SHOW")) {
      REWIND_RETURN_IF_ERROR(Expect("STATS"));
      SqlCommand cmd;
      cmd.kind = SqlCommand::Kind::kShowStats;
      return cmd;
    }
    if (Accept("DROP")) {
      if (Accept("DATABASE")) return DropNamed(SqlCommand::Kind::kDropDatabase);
      if (Accept("TABLE")) return DropNamed(SqlCommand::Kind::kDropTable);
      if (Accept("INDEX")) return DropNamed(SqlCommand::Kind::kDropIndex);
      return Err("expected DATABASE, TABLE or INDEX after DROP");
    }
    return Err("unrecognized statement");
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }

  /// Every parser diagnostic names the token it stopped at; ParseSql
  /// appends the statement fragment on the way out.
  Status Err(const std::string& what) const {
    std::string at = Cur().type == Token::Type::kEnd
                         ? std::string("end of statement")
                         : "'" + Cur().raw + "'";
    return Status::InvalidArgument(what + " near " + at);
  }

  bool Accept(const std::string& word) {
    if (Cur().type == Token::Type::kWord && Cur().text == word) {
      pos_++;
      return true;
    }
    return false;
  }

  bool AcceptPunct(char c) {
    if (Cur().type == Token::Type::kPunct && Cur().text.size() == 1 &&
        Cur().text[0] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  /// Accept a (possibly multi-character) operator token.
  bool AcceptOp(const std::string& op) {
    if (Cur().type == Token::Type::kPunct && Cur().text == op) {
      pos_++;
      return true;
    }
    return false;
  }

  /// True if the current token is the given keyword (not consumed).
  bool Peek(const std::string& word) const {
    return Cur().type == Token::Type::kWord && Cur().text == word;
  }

  Status Expect(const std::string& word) {
    if (!Accept(word)) return Err("expected " + word);
    return Status::OK();
  }

  Result<std::string> Identifier() {
    if (Cur().type != Token::Type::kWord) {
      return Err("expected identifier");
    }
    std::string id = Cur().raw;
    pos_++;
    return id;
  }

  Result<SqlCommand> CreateSnapshot() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kCreateSnapshot;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("AS"));
    REWIND_RETURN_IF_ERROR(Expect("SNAPSHOT"));
    REWIND_RETURN_IF_ERROR(Expect("OF"));
    REWIND_ASSIGN_OR_RETURN(cmd.source, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("AS"));
    REWIND_RETURN_IF_ERROR(Expect("OF"));
    if (Cur().type == Token::Type::kString) {
      REWIND_ASSIGN_OR_RETURN(cmd.as_of, ParseTimestamp(Cur().text));
      pos_++;
    } else if (Cur().type == Token::Type::kNumber) {
      REWIND_ASSIGN_OR_RETURN(cmd.as_of, ParseU64(Cur().text));
      pos_++;
    } else {
      return Err("expected timestamp after AS OF");
    }
    return cmd;
  }

  Result<SqlCommand> AlterDatabase() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kAlterUndoInterval;
    REWIND_RETURN_IF_ERROR(Expect("DATABASE"));
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("SET"));
    REWIND_RETURN_IF_ERROR(Expect("UNDO_INTERVAL"));
    if (!AcceptPunct('=')) return Err("expected = after UNDO_INTERVAL");
    if (Cur().type != Token::Type::kNumber) {
      return Err("expected a number for UNDO_INTERVAL");
    }
    REWIND_ASSIGN_OR_RETURN(uint64_t n, ParseU64(Cur().text));
    pos_++;
    uint64_t unit;
    if (Accept("HOURS") || Accept("HOUR")) {
      unit = 3600ULL * 1'000'000;
    } else if (Accept("MINUTES") || Accept("MINUTE")) {
      unit = 60ULL * 1'000'000;
    } else if (Accept("SECONDS") || Accept("SECOND")) {
      unit = 1'000'000;
    } else {
      return Err("expected HOURS, MINUTES or SECONDS");
    }
    if (n > UINT64_MAX / unit) {
      return Err("undo interval out of range");
    }
    cmd.undo_interval_micros = n * unit;
    return cmd;
  }

  Result<SqlCommand> SetOption() {
    if (Accept("MOUNT_MODE")) {
      SqlCommand cmd;
      cmd.kind = SqlCommand::Kind::kSetMountMode;
      if (!AcceptPunct('=')) return Err("expected = after MOUNT_MODE");
      if (Accept("LAZY")) {
        cmd.lazy_mount = true;
      } else if (Accept("EAGER")) {
        cmd.lazy_mount = false;
      } else {
        return Err("expected LAZY or EAGER");
      }
      return cmd;
    }
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kSetCommitMode;
    REWIND_RETURN_IF_ERROR(Expect("COMMIT_MODE"));
    if (!AcceptPunct('=')) return Err("expected = after COMMIT_MODE");
    if (Cur().type != Token::Type::kWord ||
        !ParseCommitMode(Cur().text.c_str(), &cmd.commit_mode)) {
      return Err("expected SYNC, GROUP, ASYNC or NONE");
    }
    pos_++;
    return cmd;
  }

  Result<SqlCommand> Flashback() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kFlashback;
    REWIND_RETURN_IF_ERROR(Expect("TRANSACTION"));
    if (Cur().type != Token::Type::kNumber) {
      return Err("expected a transaction id");
    }
    REWIND_ASSIGN_OR_RETURN(cmd.txn_id, ParseU64(Cur().text));
    pos_++;
    return cmd;
  }

  Result<SqlCommand> DropNamed(SqlCommand::Kind kind) {
    SqlCommand cmd;
    cmd.kind = kind;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    return cmd;
  }

  // ------------------------- SELECT grammar ---------------------------

  /// Words that terminate an implicit (AS-less) alias position.
  static bool IsReserved(const std::string& up) {
    static const char* kWords[] = {
        "SELECT", "FROM",  "WHERE",  "JOIN",     "INNER", "ON",
        "GROUP",  "BY",    "HAVING", "ORDER",    "LIMIT", "AS",
        "OF",     "ASC",   "DESC",   "AND",      "OR",    "NOT",
        "NULL",   "IS",    "DISTINCT", "SNAPSHOT", "LEFT", "RIGHT",
        "OUTER",  "CROSS", "UNION",  "EXPLAIN"};
    for (const char* w : kWords) {
      if (up == w) return true;
    }
    return false;
  }

  Result<sql::TableRef> TableRefClause() {
    sql::TableRef ref;
    REWIND_ASSIGN_OR_RETURN(ref.table, Identifier());
    if (Accept("AS")) {
      // `FROM t AS OF ...` is the time-travel clause, not an alias.
      if (Peek("OF")) {
        pos_--;  // give AS back; the caller owns the trailing clauses
        return ref;
      }
      REWIND_ASSIGN_OR_RETURN(ref.alias, Identifier());
      return ref;
    }
    if (Cur().type == Token::Type::kWord && !IsReserved(Cur().text)) {
      ref.alias = Cur().raw;
      pos_++;
    }
    return ref;
  }

  Result<Value> NumberLiteral(const std::string& text) {
    if (text.find('.') != std::string::npos) {
      // strtod cannot fail here: the lexer admits only digits '.' digits.
      return Value(strtod(text.c_str(), nullptr));
    }
    REWIND_ASSIGN_OR_RETURN(uint64_t n, ParseU64(text));
    if (n > static_cast<uint64_t>(INT64_MAX)) {
      return Err("integer literal '" + text + "' out of range");
    }
    return Value(static_cast<int64_t>(n));
  }

  Result<sql::ExprPtr> Primary() {
    if (Cur().type == Token::Type::kNumber) {
      REWIND_ASSIGN_OR_RETURN(Value v, NumberLiteral(Cur().text));
      pos_++;
      return sql::MakeLiteral(std::move(v));
    }
    if (Cur().type == Token::Type::kString) {
      sql::ExprPtr e = sql::MakeLiteral(Value(Cur().text));
      pos_++;
      return e;
    }
    if (Accept("NULL")) return sql::MakeLiteral(Value::Null());
    if (AcceptPunct('(')) {
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, Expression());
      if (!AcceptPunct(')')) return Err("expected ) to close expression");
      return e;
    }
    if (Cur().type != Token::Type::kWord) {
      return Err("expected an expression");
    }
    // Aggregate function call?
    const std::string& up = Cur().text;
    sql::AggFn fn;
    bool is_agg = true;
    if (up == "COUNT") fn = sql::AggFn::kCount;
    else if (up == "SUM") fn = sql::AggFn::kSum;
    else if (up == "MIN") fn = sql::AggFn::kMin;
    else if (up == "MAX") fn = sql::AggFn::kMax;
    else if (up == "AVG") fn = sql::AggFn::kAvg;
    else is_agg = false;
    if (is_agg && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].type == Token::Type::kPunct &&
        tokens_[pos_ + 1].text == "(") {
      pos_ += 2;  // fn (
      if (fn == sql::AggFn::kCount && AcceptPunct('*')) {
        if (!AcceptPunct(')')) return Err("expected ) after COUNT(*");
        return sql::MakeAgg(sql::AggFn::kCountStar, nullptr, false);
      }
      bool distinct = Accept("DISTINCT");
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr arg, Expression());
      if (!AcceptPunct(')')) return Err("expected ) to close aggregate");
      return sql::MakeAgg(fn, std::move(arg), distinct);
    }
    // Column reference: ident or ident.ident.
    REWIND_ASSIGN_OR_RETURN(std::string first, Identifier());
    if (AcceptPunct('.')) {
      REWIND_ASSIGN_OR_RETURN(std::string second, Identifier());
      return sql::MakeColumn(std::move(first), std::move(second));
    }
    return sql::MakeColumn("", std::move(first));
  }

  Result<sql::ExprPtr> Unary() {
    if (AcceptPunct('-')) {
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, Unary());
      // Fold -literal so key-bound derivation sees plain literals.
      if (e->kind == sql::Expr::Kind::kLiteral) {
        switch (e->literal.type()) {
          case ColumnType::kInt64:
            return sql::MakeLiteral(Value(-e->literal.AsInt64()));
          case ColumnType::kInt32:
            return sql::MakeLiteral(Value(-e->literal.AsInt32()));
          case ColumnType::kDouble:
            return sql::MakeLiteral(Value(-e->literal.AsDouble()));
          default:
            break;
        }
      }
      return sql::MakeUnary(sql::Expr::Kind::kNeg, std::move(e));
    }
    return Primary();
  }

  Result<sql::ExprPtr> MulExpr() {
    REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, Unary());
    while (true) {
      sql::BinOp op;
      if (AcceptPunct('*')) op = sql::BinOp::kMul;
      else if (AcceptPunct('/')) op = sql::BinOp::kDiv;
      else if (AcceptPunct('%')) op = sql::BinOp::kMod;
      else return e;
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr rhs, Unary());
      e = sql::MakeBinary(op, std::move(e), std::move(rhs));
    }
  }

  Result<sql::ExprPtr> AddExpr() {
    REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, MulExpr());
    while (true) {
      sql::BinOp op;
      if (AcceptPunct('+')) op = sql::BinOp::kAdd;
      else if (AcceptPunct('-')) op = sql::BinOp::kSub;
      else return e;
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr rhs, MulExpr());
      e = sql::MakeBinary(op, std::move(e), std::move(rhs));
    }
  }

  Result<sql::ExprPtr> Comparison() {
    REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, AddExpr());
    if (Accept("IS")) {
      bool negated = Accept("NOT");
      REWIND_RETURN_IF_ERROR(Expect("NULL"));
      sql::ExprPtr n = sql::MakeUnary(sql::Expr::Kind::kIsNull, std::move(e));
      n->negated = negated;
      return n;
    }
    sql::BinOp op;
    if (AcceptOp("=")) op = sql::BinOp::kEq;
    else if (AcceptOp("<>") || AcceptOp("!=")) op = sql::BinOp::kNe;
    else if (AcceptOp("<=")) op = sql::BinOp::kLe;
    else if (AcceptOp("<")) op = sql::BinOp::kLt;
    else if (AcceptOp(">=")) op = sql::BinOp::kGe;
    else if (AcceptOp(">")) op = sql::BinOp::kGt;
    else return e;
    REWIND_ASSIGN_OR_RETURN(sql::ExprPtr rhs, AddExpr());
    return sql::MakeBinary(op, std::move(e), std::move(rhs));
  }

  Result<sql::ExprPtr> NotExpr() {
    if (Accept("NOT")) {
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, NotExpr());
      return sql::MakeUnary(sql::Expr::Kind::kNot, std::move(e));
    }
    return Comparison();
  }

  Result<sql::ExprPtr> AndExpr() {
    REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, NotExpr());
    while (Accept("AND")) {
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr rhs, NotExpr());
      e = sql::MakeBinary(sql::BinOp::kAnd, std::move(e), std::move(rhs));
    }
    return e;
  }

  Result<sql::ExprPtr> Expression() {
    REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, AndExpr());
    while (Accept("OR")) {
      REWIND_ASSIGN_OR_RETURN(sql::ExprPtr rhs, AndExpr());
      e = sql::MakeBinary(sql::BinOp::kOr, std::move(e), std::move(rhs));
    }
    return e;
  }

  Result<sql::SelectItem> SelectItemClause() {
    sql::SelectItem item;
    if (AcceptPunct('*')) {
      item.star = true;
      return item;
    }
    // `t.*`: an identifier followed by `.` `*`.
    if (Cur().type == Token::Type::kWord && pos_ + 2 < tokens_.size() &&
        tokens_[pos_ + 1].type == Token::Type::kPunct &&
        tokens_[pos_ + 1].text == "." &&
        tokens_[pos_ + 2].type == Token::Type::kPunct &&
        tokens_[pos_ + 2].text == "*") {
      item.star = true;
      item.star_table = Cur().raw;
      pos_ += 3;
      return item;
    }
    REWIND_ASSIGN_OR_RETURN(item.expr, Expression());
    if (Accept("AS")) {
      REWIND_ASSIGN_OR_RETURN(item.alias, Identifier());
    } else if (Cur().type == Token::Type::kWord && !IsReserved(Cur().text)) {
      item.alias = Cur().raw;
      pos_++;
    }
    return item;
  }

  Result<SqlCommand> Select(bool explain) {
    SqlCommand cmd;
    cmd.kind = explain ? SqlCommand::Kind::kExplain : SqlCommand::Kind::kSelect;
    auto stmt = std::make_shared<sql::SelectStmt>();
    stmt->distinct = Accept("DISTINCT");
    while (true) {
      REWIND_ASSIGN_OR_RETURN(sql::SelectItem item, SelectItemClause());
      stmt->items.push_back(std::move(item));
      if (!AcceptPunct(',')) break;
    }
    REWIND_RETURN_IF_ERROR(Expect("FROM"));
    REWIND_ASSIGN_OR_RETURN(stmt->from, TableRefClause());
    while (true) {
      if (Accept("LEFT") || Accept("RIGHT") || Accept("OUTER") ||
          Accept("CROSS") || Accept("FULL")) {
        return Err("only [INNER] JOIN ... ON is supported");
      }
      bool inner = Accept("INNER");
      if (!Accept("JOIN")) {
        if (inner) return Err("expected JOIN after INNER");
        break;
      }
      sql::JoinRef join;
      REWIND_ASSIGN_OR_RETURN(join.ref, TableRefClause());
      REWIND_RETURN_IF_ERROR(Expect("ON"));
      REWIND_ASSIGN_OR_RETURN(join.on, Expression());
      stmt->joins.push_back(std::move(join));
    }
    if (Accept("WHERE")) {
      REWIND_ASSIGN_OR_RETURN(stmt->where, Expression());
    }
    if (Accept("GROUP")) {
      REWIND_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        REWIND_ASSIGN_OR_RETURN(sql::ExprPtr e, Expression());
        stmt->group_by.push_back(std::move(e));
        if (!AcceptPunct(',')) break;
      }
    }
    if (Accept("HAVING")) {
      REWIND_ASSIGN_OR_RETURN(stmt->having, Expression());
    }
    if (Accept("ORDER")) {
      REWIND_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        sql::OrderItem item;
        REWIND_ASSIGN_OR_RETURN(item.expr, Expression());
        if (Accept("DESC")) item.desc = true;
        else Accept("ASC");
        stmt->order_by.push_back(std::move(item));
        if (!AcceptPunct(',')) break;
      }
    }
    if (Accept("LIMIT")) {
      if (Cur().type != Token::Type::kNumber ||
          Cur().text.find('.') != std::string::npos) {
        return Err("expected an integer after LIMIT");
      }
      REWIND_ASSIGN_OR_RETURN(uint64_t n, ParseU64(Cur().text));
      pos_++;
      stmt->limit = n;
    }
    // Time-travel clauses: the whole query runs against the past.
    if (Accept("AS")) {
      REWIND_RETURN_IF_ERROR(Expect("OF"));
      if (Cur().type == Token::Type::kString) {
        REWIND_ASSIGN_OR_RETURN(stmt->as_of, ParseTimestamp(Cur().text));
        pos_++;
      } else if (Cur().type == Token::Type::kNumber &&
                 Cur().text.find('.') == std::string::npos) {
        REWIND_ASSIGN_OR_RETURN(stmt->as_of, ParseU64(Cur().text));
        pos_++;
      } else {
        return Err("expected timestamp after AS OF");
      }
      if (stmt->as_of == 0) return Err("AS OF time must be positive");
    } else if (Accept("SNAPSHOT")) {
      REWIND_RETURN_IF_ERROR(Expect("OF"));
      REWIND_ASSIGN_OR_RETURN(stmt->snapshot, Identifier());
    }
    AcceptPunct(';');
    if (Cur().type != Token::Type::kEnd) {
      return Err("unexpected trailing input");
    }
    cmd.select = std::move(stmt);
    return cmd;
  }

  Result<SqlCommand> CreateIndex() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kCreateIndex;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    REWIND_RETURN_IF_ERROR(Expect("ON"));
    REWIND_ASSIGN_OR_RETURN(cmd.source, Identifier());
    if (!AcceptPunct('(')) return Err("expected ( after table name");
    while (true) {
      REWIND_ASSIGN_OR_RETURN(std::string col, Identifier());
      cmd.index_columns.push_back(std::move(col));
      if (!AcceptPunct(',')) break;
    }
    if (!AcceptPunct(')')) return Err("expected ) to close column list");
    return cmd;
  }

  Result<ColumnType> TypeName() {
    if (Accept("INT") || Accept("INT32") || Accept("INTEGER")) {
      return ColumnType::kInt32;
    }
    if (Accept("BIGINT") || Accept("INT64")) return ColumnType::kInt64;
    if (Accept("DOUBLE") || Accept("FLOAT") || Accept("REAL") ||
        Accept("DECIMAL")) {
      return ColumnType::kDouble;
    }
    if (Accept("TEXT") || Accept("STRING") || Accept("VARCHAR") ||
        Accept("CHAR")) {
      // Optional (n) length, ignored.
      if (AcceptPunct('(')) {
        if (Cur().type == Token::Type::kNumber) pos_++;
        if (!AcceptPunct(')')) return Err("expected ) after length");
      }
      return ColumnType::kString;
    }
    return Err("unknown column type");
  }

  Result<SqlCommand> CreateTable() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kCreateTable;
    REWIND_ASSIGN_OR_RETURN(cmd.name, Identifier());
    if (!AcceptPunct('(')) return Err("expected ( after table name");
    std::vector<Column> cols;
    std::vector<std::string> key_cols;
    while (true) {
      if (Accept("PRIMARY")) {
        REWIND_RETURN_IF_ERROR(Expect("KEY"));
        if (!AcceptPunct('(')) {
          return Err("expected ( after PRIMARY KEY");
        }
        while (true) {
          REWIND_ASSIGN_OR_RETURN(std::string k, Identifier());
          key_cols.push_back(k);
          if (AcceptPunct(',')) continue;
          break;
        }
        if (!AcceptPunct(')')) {
          return Err("expected ) after key columns");
        }
      } else {
        REWIND_ASSIGN_OR_RETURN(std::string col, Identifier());
        REWIND_ASSIGN_OR_RETURN(ColumnType type, TypeName());
        cols.push_back({col, type});
      }
      if (AcceptPunct(',')) continue;
      break;
    }
    if (!AcceptPunct(')')) {
      return Err("expected ) to close column list");
    }
    if (key_cols.empty()) {
      return Err("PRIMARY KEY clause is required");
    }
    // Reorder so the key columns form the prefix, in declared key order.
    std::vector<Column> ordered;
    for (const std::string& k : key_cols) {
      bool found = false;
      for (const Column& c : cols) {
        if (c.name == k) {
          ordered.push_back(c);
          found = true;
          break;
        }
      }
      if (!found) {
        return Err("key column '" + k + "' not declared");
      }
    }
    for (const Column& c : cols) {
      bool is_key = false;
      for (const std::string& k : key_cols) {
        if (c.name == k) is_key = true;
      }
      if (!is_key) ordered.push_back(c);
    }
    cmd.schema = Schema(std::move(ordered), key_cols.size());
    return cmd;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string StatementFragment(const std::string& sql) {
  std::string out;
  out.reserve(64);
  bool last_space = false;
  for (char c : sql) {
    bool space = isspace(static_cast<unsigned char>(c)) != 0;
    if (space && (last_space || out.empty())) continue;
    out.push_back(space ? ' ' : c);
    last_space = space;
    if (out.size() >= 60) {
      out += "...";
      break;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Result<SqlCommand> ParseSql(const std::string& sql) {
  // Uniform diagnostic contract: every parse failure -- lexer or
  // grammar -- carries the offending statement fragment, so a client on
  // the other end of a wire sees which statement it sent went wrong.
  auto wrap = [&sql](const Status& st) {
    return Status::InvalidArgument(st.message() + " [statement: \"" +
                                   StatementFragment(sql) + "\"]");
  };
  Lexer lexer(sql);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return wrap(tokens.status());
  Parser parser(std::move(*tokens));
  Result<SqlCommand> cmd = parser.Parse();
  if (!cmd.ok()) return wrap(cmd.status());
  return cmd;
}

Result<WallClock> ParseTimestamp(const std::string& text) {
  int year, month, day, hour, minute, second;
  unsigned long frac = 0;
  char frac_buf[16] = {0};
  int matched = sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%15s", &year, &month,
                       &day, &hour, &minute, &second, frac_buf);
  if (matched < 6) {
    return Status::InvalidArgument("bad timestamp '" + text +
                                   "' (want YYYY-MM-DD HH:MM:SS[.ffffff])");
  }
  if (matched == 7) {
    // frac_buf came from %15s: it can hold ANY non-space bytes, so it
    // must be digit-validated and parsed exception-free (std::stoul on
    // '.abc' would throw -- a crash path for hostile wire input).
    std::string digits(frac_buf);
    while (digits.size() < 6) digits += '0';
    digits = digits.substr(0, 6);
    auto [ptr, ec] = std::from_chars(digits.data(),
                                     digits.data() + digits.size(), frac);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      return Status::InvalidArgument("bad fractional seconds in timestamp '" +
                                     text + "'");
    }
  }
  struct tm tm_utc = {};
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = minute;
  tm_utc.tm_sec = second;
  time_t secs = timegm(&tm_utc);
  if (secs < 0) return Status::InvalidArgument("timestamp out of range");
  return static_cast<WallClock>(secs) * 1'000'000 + frac;
}

std::string FormatTimestamp(WallClock micros) {
  time_t secs = static_cast<time_t>(micros / 1'000'000);
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06llu",
           tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
           tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
           static_cast<unsigned long long>(micros % 1'000'000));
  return buf;
}

}  // namespace rewinddb
