// SqlSession: executes the parsed snapshot/retention DDL against a
// Database and manages the named as-of snapshots it creates -- the
// surface the paper's walk-throughs use.
#ifndef REWINDDB_SQL_SESSION_H_
#define REWINDDB_SQL_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "engine/database.h"
#include "snapshot/asof_snapshot.h"
#include "sql/parser.h"

namespace rewinddb {

class SqlSession {
 public:
  explicit SqlSession(Database* db) : db_(db) {}

  /// Parse and execute one statement; returns a human-readable result
  /// line (examples print it).
  Result<std::string> Execute(const std::string& sql);

  /// Look up a snapshot created by CREATE DATABASE ... AS SNAPSHOT.
  Result<AsOfSnapshot*> GetSnapshot(const std::string& name);

  Database* db() { return db_; }

 private:
  Database* db_;
  std::map<std::string, std::unique_ptr<AsOfSnapshot>> snapshots_;
};

}  // namespace rewinddb

#endif  // REWINDDB_SQL_SESSION_H_
