// SqlSession: the paper's SQL surface as a thin parser shim over
// Connection. Every statement parses into a SqlCommand and dispatches
// to exactly one Connection call:
//
//   CREATE DATABASE s AS SNAPSHOT OF db AS OF t  -> CreateSnapshot
//   DROP DATABASE s                              -> DropSnapshot
//   ALTER DATABASE db SET UNDO_INTERVAL = n U    -> SetRetention
//   FLASHBACK TRANSACTION n                      -> Flashback
//   SET COMMIT_MODE = SYNC|GROUP|ASYNC|NONE      -> SetDefaultCommitMode
//   CREATE TABLE / DROP TABLE                    -> CreateTable/DropTable
#ifndef REWINDDB_SQL_SESSION_H_
#define REWINDDB_SQL_SESSION_H_

#include <memory>
#include <string>

#include "api/connection.h"
#include "sql/parser.h"

namespace rewinddb {

class SqlSession {
 public:
  /// Shim over a caller-owned Connection.
  explicit SqlSession(Connection* conn) : conn_(conn) {}

  /// Legacy entry point: wraps the engine handle in an attached
  /// Connection owned by the session.
  explicit SqlSession(Database* db)
      : owned_(Connection::Attach(db)), conn_(owned_.get()) {}

  /// Parse and execute one statement; returns a human-readable result
  /// line (examples print it).
  Result<std::string> Execute(const std::string& sql);

  /// Stable handle to a snapshot created by CREATE DATABASE ... AS
  /// SNAPSHOT. Safe to hold across DROP DATABASE: operations on a
  /// dropped snapshot fail with Status::Aborted instead of dangling.
  Result<std::shared_ptr<ReadView>> GetSnapshot(const std::string& name);

  Connection* connection() { return conn_; }
  Database* db() { return conn_->engine(); }

 private:
  std::unique_ptr<Connection> owned_;  // only for the legacy constructor
  Connection* conn_;
};

}  // namespace rewinddb

#endif  // REWINDDB_SQL_SESSION_H_
