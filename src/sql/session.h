// SqlSession: the paper's SQL surface as a thin parser shim over
// Connection. Every statement parses into a SqlCommand and dispatches
// to exactly one Connection call:
//
//   CREATE DATABASE s AS SNAPSHOT OF db AS OF t  -> CreateSnapshot
//   DROP DATABASE s                              -> DropSnapshot
//   ALTER DATABASE db SET UNDO_INTERVAL = n U    -> SetRetention
//   FLASHBACK TRANSACTION n                      -> Flashback
//   SET COMMIT_MODE = SYNC|GROUP|ASYNC|NONE      -> SetDefaultCommitMode
//   CREATE TABLE / DROP TABLE                    -> CreateTable/DropTable
//   CHECKPOINT                                   -> FuzzyCheckpoint
//   SHOW STATS                                   -> engine counter rowset
//
// Statements execute against the session's own Connection, except the
// named-snapshot lifecycle (CREATE/DROP DATABASE, GetSnapshot), which
// routes to an optional shared *registry* Connection so snapshots
// created by one network session are visible to every other session of
// the same server.
#ifndef REWINDDB_SQL_SESSION_H_
#define REWINDDB_SQL_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/connection.h"
#include "sql/parser.h"

namespace rewinddb {

/// The serializable result of one SQL statement: a human-readable
/// message plus, for rowset-producing statements (SHOW STATS), column
/// metadata and rows. This is the shape the wire protocol ships.
struct SqlResult {
  std::string message;
  bool has_rowset = false;
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;
  std::vector<Row> rows;
};

class SqlSession {
 public:
  /// Shim over a caller-owned Connection. `snapshot_registry` (may be
  /// null = use `conn`) receives CREATE/DROP DATABASE and GetSnapshot,
  /// making named snapshots shareable across sessions.
  explicit SqlSession(Connection* conn,
                      Connection* snapshot_registry = nullptr)
      : conn_(conn), registry_(snapshot_registry) {}

  /// Legacy entry point: wraps the engine handle in an attached
  /// Connection owned by the session.
  explicit SqlSession(Database* db)
      : owned_(Connection::Attach(db)), conn_(owned_.get()) {}

  /// Parse and execute one statement; returns a human-readable result
  /// line (examples print it). Failures carry the offending statement
  /// fragment in the message.
  Result<std::string> Execute(const std::string& sql);

  /// Parse and execute one statement, returning the full structured
  /// result (message + optional rowset). The network server's entry
  /// point.
  Result<SqlResult> ExecuteStatement(const std::string& sql);

  /// Stable handle to a snapshot created by CREATE DATABASE ... AS
  /// SNAPSHOT. Safe to hold across DROP DATABASE: operations on a
  /// dropped snapshot fail with Status::Aborted instead of dangling.
  Result<std::shared_ptr<ReadView>> GetSnapshot(const std::string& name);

  /// Extra (metric, value) rows appended to SHOW STATS output: how the
  /// network server injects its session/admission counters.
  using StatsRow = std::pair<std::string, int64_t>;
  using ExtraStatsFn = std::function<void(std::vector<StatsRow>*)>;
  void set_extra_stats(ExtraStatsFn fn) { extra_stats_ = std::move(fn); }

  Connection* connection() { return conn_; }
  /// Where named-snapshot statements execute.
  Connection* registry() { return registry_ != nullptr ? registry_ : conn_; }
  Database* db() { return conn_->engine(); }

 private:
  SqlResult ShowStats();

  std::unique_ptr<Connection> owned_;  // only for the legacy constructor
  Connection* conn_;
  Connection* registry_ = nullptr;
  ExtraStatsFn extra_stats_;
};

}  // namespace rewinddb

#endif  // REWINDDB_SQL_SESSION_H_
