// SQL parser for the paper's surface syntax:
//
//   CREATE DATABASE <snap> AS SNAPSHOT OF <db> AS OF '<timestamp>'
//   ALTER DATABASE <db> SET UNDO_INTERVAL = <n> HOURS|MINUTES|SECONDS
//   DROP DATABASE <snap>
//   FLASHBACK TRANSACTION <txn-id>
//   SET COMMIT_MODE = SYNC|GROUP|ASYNC|NONE
//   CHECKPOINT
//   SHOW STATS
//
// DDL:
//
//   CREATE TABLE <name> (<col> <type> [, ...] , PRIMARY KEY (<cols>))
//   DROP TABLE <name>
//   CREATE INDEX <name> ON <table> (<cols>)
//   DROP INDEX <name>
//
// and the full query surface (executed by src/exec/ over any ReadView,
// which is what makes the same text run live, AS OF a timestamp, or
// against a named snapshot -- see docs/SQL.md for the grammar):
//
//   [EXPLAIN] SELECT [DISTINCT] items FROM t [[AS] a]
//     [[INNER] JOIN t2 [[AS] b] ON cond]...
//     [WHERE cond] [GROUP BY exprs] [HAVING cond]
//     [ORDER BY exprs [ASC|DESC]] [LIMIT n]
//     [AS OF '<timestamp>' | SNAPSHOT OF <name>]
//
// Timestamps accept 'YYYY-MM-DD HH:MM:SS[.ffffff]' (UTC) or a bare
// integer of microseconds (handy with the simulated clock).
#ifndef REWINDDB_SQL_PARSER_H_
#define REWINDDB_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/types.h"
#include "sql/select_ast.h"
#include "wal/commit_mode.h"

namespace rewinddb {

struct SqlCommand {
  enum class Kind {
    kCreateSnapshot,
    kAlterUndoInterval,
    kDropDatabase,
    kCreateTable,
    kDropTable,
    kFlashback,
    kSetCommitMode,
    /// SET MOUNT_MODE = LAZY | EAGER: how this session's CREATE
    /// DATABASE ... AS SNAPSHOT OF / AS OF views are mounted.
    kSetMountMode,
    /// CHECKPOINT: take a fuzzy checkpoint now (bounds crash-recovery
    /// analysis; with the archive tier on, also archives + trims the
    /// active log).
    kCheckpoint,
    /// SHOW STATS: engine + server counters as a (metric, value)
    /// rowset -- the operator's over-the-wire inspection surface.
    kShowStats,
    /// SELECT ...: planned and executed by src/exec/ over a ReadView.
    kSelect,
    /// EXPLAIN SELECT ...: the chosen plan tree as a one-column rowset.
    kExplain,
    /// CREATE INDEX <name> ON <table> (<cols>): logged secondary index.
    kCreateIndex,
    /// DROP INDEX <name>.
    kDropIndex,
  };

  Kind kind;
  /// Object being created/dropped (snapshot, table, or index name).
  std::string name;
  /// CREATE ... AS SNAPSHOT OF <source>; CREATE INDEX ... ON <source>.
  std::string source;
  /// AS OF time, microseconds.
  WallClock as_of = 0;
  /// SET UNDO_INTERVAL value, microseconds.
  uint64_t undo_interval_micros = 0;
  /// FLASHBACK TRANSACTION victim id.
  TxnId txn_id = kInvalidTxnId;
  /// SET COMMIT_MODE value.
  CommitMode commit_mode = CommitMode::kGroup;
  /// SET MOUNT_MODE value (true = LAZY).
  bool lazy_mount = false;
  /// CREATE TABLE schema.
  Schema schema;
  /// CREATE INDEX column list.
  std::vector<std::string> index_columns;
  /// kSelect / kExplain payload (shared so SqlCommand stays copyable).
  std::shared_ptr<sql::SelectStmt> select;
};

/// Parse one statement. Keywords are case-insensitive; identifiers keep
/// their case. Every parse error names the offending token ("near
/// '...'") and carries a fragment of the statement, so a wire client's
/// diagnostic is self-contained.
Result<SqlCommand> ParseSql(const std::string& sql);

/// First ~60 characters of `sql`, whitespace-collapsed, "..."-elided:
/// the fragment parse and execution errors embed.
std::string StatementFragment(const std::string& sql);

/// Parse 'YYYY-MM-DD HH:MM:SS[.ffffff]' (UTC) into epoch microseconds.
Result<WallClock> ParseTimestamp(const std::string& text);

/// Render epoch microseconds as 'YYYY-MM-DD HH:MM:SS.ffffff'.
std::string FormatTimestamp(WallClock micros);

}  // namespace rewinddb

#endif  // REWINDDB_SQL_PARSER_H_
