// Mini SQL parser for the paper's surface syntax:
//
//   CREATE DATABASE <snap> AS SNAPSHOT OF <db> AS OF '<timestamp>'
//   ALTER DATABASE <db> SET UNDO_INTERVAL = <n> HOURS|MINUTES|SECONDS
//   DROP DATABASE <snap>
//   FLASHBACK TRANSACTION <txn-id>
//   SET COMMIT_MODE = SYNC|GROUP|ASYNC|NONE
//   CHECKPOINT
//   SHOW STATS
//
// plus convenience DDL so examples read naturally:
//
//   CREATE TABLE <name> (<col> <type> [, ...] , PRIMARY KEY (<cols>))
//   DROP TABLE <name>
//
// Timestamps accept 'YYYY-MM-DD HH:MM:SS[.ffffff]' (UTC) or a bare
// integer of microseconds (handy with the simulated clock).
#ifndef REWINDDB_SQL_PARSER_H_
#define REWINDDB_SQL_PARSER_H_

#include <string>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/types.h"
#include "wal/commit_mode.h"

namespace rewinddb {

struct SqlCommand {
  enum class Kind {
    kCreateSnapshot,
    kAlterUndoInterval,
    kDropDatabase,
    kCreateTable,
    kDropTable,
    kFlashback,
    kSetCommitMode,
    /// CHECKPOINT: take a fuzzy checkpoint now (bounds crash-recovery
    /// analysis; with the archive tier on, also archives + trims the
    /// active log).
    kCheckpoint,
    /// SHOW STATS: engine + server counters as a (metric, value)
    /// rowset -- the operator's over-the-wire inspection surface.
    kShowStats,
  };

  Kind kind;
  /// Object being created/dropped (snapshot or table name).
  std::string name;
  /// CREATE ... AS SNAPSHOT OF <source>.
  std::string source;
  /// AS OF time, microseconds.
  WallClock as_of = 0;
  /// SET UNDO_INTERVAL value, microseconds.
  uint64_t undo_interval_micros = 0;
  /// FLASHBACK TRANSACTION victim id.
  TxnId txn_id = kInvalidTxnId;
  /// SET COMMIT_MODE value.
  CommitMode commit_mode = CommitMode::kGroup;
  /// CREATE TABLE schema.
  Schema schema;
};

/// Parse one statement. Keywords are case-insensitive; identifiers keep
/// their case. Every parse error names the offending token ("near
/// '...'") and carries a fragment of the statement, so a wire client's
/// diagnostic is self-contained.
Result<SqlCommand> ParseSql(const std::string& sql);

/// First ~60 characters of `sql`, whitespace-collapsed, "..."-elided:
/// the fragment parse and execution errors embed.
std::string StatementFragment(const std::string& sql);

/// Parse 'YYYY-MM-DD HH:MM:SS[.ffffff]' (UTC) into epoch microseconds.
Result<WallClock> ParseTimestamp(const std::string& text);

/// Render epoch microseconds as 'YYYY-MM-DD HH:MM:SS.ffffff'.
std::string FormatTimestamp(WallClock micros);

}  // namespace rewinddb

#endif  // REWINDDB_SQL_PARSER_H_
