#include "sql/session.h"

namespace rewinddb {

Result<std::string> SqlSession::Execute(const std::string& sql) {
  REWIND_ASSIGN_OR_RETURN(SqlCommand cmd, ParseSql(sql));
  switch (cmd.kind) {
    case SqlCommand::Kind::kCreateSnapshot: {
      REWIND_RETURN_IF_ERROR(conn_->CreateSnapshot(cmd.name, cmd.as_of));
      REWIND_ASSIGN_OR_RETURN(std::shared_ptr<ReadView> view,
                              conn_->Snapshot(cmd.name));
      return "Created snapshot " + cmd.name + " as of " +
             FormatTimestamp(view->as_of());
    }
    case SqlCommand::Kind::kAlterUndoInterval: {
      REWIND_RETURN_IF_ERROR(conn_->SetRetention(cmd.undo_interval_micros));
      return std::string("Undo interval set to ") +
             std::to_string(cmd.undo_interval_micros / 1'000'000) +
             " seconds";
    }
    case SqlCommand::Kind::kDropDatabase: {
      REWIND_RETURN_IF_ERROR(conn_->DropSnapshot(cmd.name));
      return "Dropped snapshot " + cmd.name;
    }
    case SqlCommand::Kind::kFlashback: {
      REWIND_ASSIGN_OR_RETURN(FlashbackResult r,
                              conn_->Flashback(cmd.txn_id));
      return "Flashback of transaction " + std::to_string(cmd.txn_id) +
             " undid " + std::to_string(r.operations_undone) +
             " operations (compensating transaction " +
             std::to_string(r.compensating_txn) + ")";
    }
    case SqlCommand::Kind::kCreateTable: {
      REWIND_RETURN_IF_ERROR(conn_->CreateTable(cmd.name, cmd.schema));
      return "Created table " + cmd.name;
    }
    case SqlCommand::Kind::kDropTable: {
      REWIND_RETURN_IF_ERROR(conn_->DropTable(cmd.name));
      return "Dropped table " + cmd.name;
    }
    case SqlCommand::Kind::kSetCommitMode: {
      conn_->SetDefaultCommitMode(cmd.commit_mode);
      return std::string("Commit mode set to ") +
             CommitModeName(cmd.commit_mode);
    }
    case SqlCommand::Kind::kCheckpoint: {
      REWIND_RETURN_IF_ERROR(conn_->FuzzyCheckpoint());
      return std::string("Checkpoint complete");
    }
  }
  return Status::InvalidArgument("unhandled statement");
}

Result<std::shared_ptr<ReadView>> SqlSession::GetSnapshot(
    const std::string& name) {
  return conn_->Snapshot(name);
}

}  // namespace rewinddb
