#include "sql/session.h"

#include "exec/planner.h"

namespace rewinddb {

namespace {
/// Append the statement fragment to an execution error, unless a parse
/// error already embedded one: wire clients must always see which
/// statement failed.
Status WithStatement(const Status& st, const std::string& sql) {
  if (st.ok()) return st;
  if (st.message().find("[statement:") != std::string::npos) return st;
  std::string msg = st.message() + " [statement: \"" +
                    StatementFragment(sql) + "\"]";
  return Status::FromCode(st.code(), std::move(msg));
}
}  // namespace

Result<std::string> SqlSession::Execute(const std::string& sql) {
  REWIND_ASSIGN_OR_RETURN(SqlResult r, ExecuteStatement(sql));
  return r.message;
}

Result<SqlResult> SqlSession::ExecuteStatement(const std::string& sql) {
  Result<SqlCommand> parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  const SqlCommand& cmd = *parsed;
  SqlResult out;
  switch (cmd.kind) {
    case SqlCommand::Kind::kCreateSnapshot: {
      Status s = registry()->CreateSnapshot(cmd.name, cmd.as_of);
      if (!s.ok()) return WithStatement(s, sql);
      Result<std::shared_ptr<ReadView>> view = registry()->Snapshot(cmd.name);
      if (!view.ok()) return WithStatement(view.status(), sql);
      out.message = "Created snapshot " + cmd.name + " as of " +
                    FormatTimestamp((*view)->as_of());
      return out;
    }
    case SqlCommand::Kind::kAlterUndoInterval: {
      Status s = conn_->SetRetention(cmd.undo_interval_micros);
      if (!s.ok()) return WithStatement(s, sql);
      out.message = std::string("Undo interval set to ") +
                    std::to_string(cmd.undo_interval_micros / 1'000'000) +
                    " seconds";
      return out;
    }
    case SqlCommand::Kind::kDropDatabase: {
      Status s = registry()->DropSnapshot(cmd.name);
      if (!s.ok()) return WithStatement(s, sql);
      out.message = "Dropped snapshot " + cmd.name;
      return out;
    }
    case SqlCommand::Kind::kFlashback: {
      Result<FlashbackResult> r = conn_->Flashback(cmd.txn_id);
      if (!r.ok()) return WithStatement(r.status(), sql);
      out.message = "Flashback of transaction " + std::to_string(cmd.txn_id) +
                    " undid " + std::to_string(r->operations_undone) +
                    " operations (compensating transaction " +
                    std::to_string(r->compensating_txn) + ")";
      return out;
    }
    case SqlCommand::Kind::kCreateTable: {
      Status s = conn_->CreateTable(cmd.name, cmd.schema);
      if (!s.ok()) return WithStatement(s, sql);
      out.message = "Created table " + cmd.name;
      return out;
    }
    case SqlCommand::Kind::kDropTable: {
      Status s = conn_->DropTable(cmd.name);
      if (!s.ok()) return WithStatement(s, sql);
      out.message = "Dropped table " + cmd.name;
      return out;
    }
    case SqlCommand::Kind::kSetCommitMode: {
      conn_->SetDefaultCommitMode(cmd.commit_mode);
      out.message = std::string("Commit mode set to ") +
                    CommitModeName(cmd.commit_mode);
      return out;
    }
    case SqlCommand::Kind::kSetMountMode: {
      conn_->SetLazyMounts(cmd.lazy_mount);
      out.message = std::string("Mount mode set to ") +
                    (cmd.lazy_mount ? "LAZY" : "EAGER");
      return out;
    }
    case SqlCommand::Kind::kCheckpoint: {
      Status s = conn_->FuzzyCheckpoint();
      if (!s.ok()) return WithStatement(s, sql);
      out.message = "Checkpoint complete";
      return out;
    }
    case SqlCommand::Kind::kShowStats:
      return ShowStats();
    case SqlCommand::Kind::kCreateIndex: {
      Status s = conn_->CreateIndex(cmd.name, cmd.source, cmd.index_columns);
      if (!s.ok()) return WithStatement(s, sql);
      out.message = "Created index " + cmd.name + " on " + cmd.source;
      return out;
    }
    case SqlCommand::Kind::kDropIndex: {
      Status s = conn_->DropIndex(cmd.name);
      if (!s.ok()) return WithStatement(s, sql);
      out.message = "Dropped index " + cmd.name;
      return out;
    }
    case SqlCommand::Kind::kSelect:
    case SqlCommand::Kind::kExplain: {
      const sql::SelectStmt& stmt = *cmd.select;
      // Resolve the view the statement's time-travel clause names:
      // SNAPSHOT OF -> the shared named snapshot, AS OF -> a fresh
      // as-of view, neither -> the live database. The planner and
      // executors see only the ReadView, never which kind it is.
      std::shared_ptr<ReadView> shared_view;
      std::unique_ptr<ReadView> live_view;
      ReadView* view = nullptr;
      if (!stmt.snapshot.empty()) {
        Result<std::shared_ptr<ReadView>> v = registry()->Snapshot(
            stmt.snapshot);
        if (!v.ok()) return WithStatement(v.status(), sql);
        shared_view = std::move(*v);
        view = shared_view.get();
      } else if (stmt.as_of != 0) {
        Result<std::shared_ptr<ReadView>> v = conn_->AsOf(stmt.as_of);
        if (!v.ok()) return WithStatement(v.status(), sql);
        shared_view = std::move(*v);
        view = shared_view.get();
      } else {
        live_view = conn_->Live();
        view = live_view.get();
      }
      Status ready = view->WaitReady();
      if (!ready.ok()) return WithStatement(ready, sql);
      if (cmd.kind == SqlCommand::Kind::kExplain) {
        Result<exec::PreparedQuery> q = exec::PlanSelect(view, stmt);
        if (!q.ok()) return WithStatement(q.status(), sql);
        out.has_rowset = true;
        out.column_names = {"plan"};
        out.column_types = {ColumnType::kString};
        for (std::string& line : q->ExplainLines()) {
          out.rows.push_back({Value(std::move(line))});
        }
        out.message = std::to_string(out.rows.size()) + " plan steps";
        return out;
      }
      Result<exec::SelectOutput> r = exec::RunSelect(view, stmt);
      if (!r.ok()) return WithStatement(r.status(), sql);
      out.has_rowset = true;
      out.column_names = std::move(r->column_names);
      out.column_types = std::move(r->column_types);
      out.rows = std::move(r->rows);
      out.message = std::to_string(out.rows.size()) +
                    (out.rows.size() == 1 ? " row" : " rows");
      return out;
    }
  }
  return WithStatement(Status::InvalidArgument("unhandled statement"), sql);
}

SqlResult SqlSession::ShowStats() {
  SqlResult out;
  out.has_rowset = true;
  out.column_names = {"metric", "value"};
  out.column_types = {ColumnType::kString, ColumnType::kInt64};

  std::vector<StatsRow> rows;
  auto add = [&rows](const char* name, uint64_t v) {
    rows.emplace_back(name, static_cast<int64_t>(v));
  };

  BufferManager::Stats bs = conn_->BufferStats();
  add("buffer.hits", bs.hits);
  add("buffer.misses", bs.misses);
  add("buffer.evictions", bs.evictions);
  add("buffer.shards", bs.shards);
  add("buffer.pool_pages", bs.pool_pages);

  VersionStore::Stats vs = conn_->VersionStoreStats();
  add("version_store.exact_hits", vs.exact_hits);
  add("version_store.partial_hits", vs.partial_hits);
  add("version_store.misses", vs.misses);
  add("version_store.published", vs.published);
  add("version_store.evictions", vs.evictions);
  add("version_store.cap_drops", vs.cap_drops);
  add("version_store.truncation_drops", vs.truncation_drops);

  wal::WalStats ws = conn_->engine()->log()->stats();
  add("wal.fsyncs", ws.fsyncs);
  add("wal.flushed_bytes", ws.flushed_bytes);
  add("wal.max_batch_bytes", ws.max_batch_bytes);
  add("wal.appends", ws.appends);
  add("wal.group_commit_waits", ws.group_commit_waits);
  add("wal.sync_commits", ws.sync_commits);
  add("wal.group_commits", ws.group_commits);
  add("wal.async_commits", ws.async_commits);
  add("wal.none_commits", ws.none_commits);
  // WAL-diet evidence: per-kind record bytes (nonzero kinds only), FPI
  // delta effectiveness, and flush-batch compression frames.
  for (size_t i = 0; i < wal::WalStats::kTypeSlots; i++) {
    if (ws.record_counts[i] == 0) continue;
    const std::string kind = LogTypeName(static_cast<LogType>(i));
    rows.emplace_back("wal.record_counts." + kind,
                      static_cast<int64_t>(ws.record_counts[i]));
    rows.emplace_back("wal.record_bytes." + kind,
                      static_cast<int64_t>(ws.record_bytes[i]));
  }
  add("wal.fpi_delta_hits", ws.fpi_delta_hits);
  add("wal.fpi_delta_fallbacks", ws.fpi_delta_fallbacks);
  add("wal.frames_written", ws.frames_written);
  add("wal.frame_logical_bytes", ws.frame_logical_bytes);
  add("wal.frame_physical_bytes", ws.frame_physical_bytes);

  wal::ArchiveStats as = conn_->ArchiveStats();
  add("archive.segments_sealed", as.segments_sealed);
  add("archive.segments_dropped", as.segments_dropped);
  add("archive.bytes_sealed", as.bytes_sealed);
  add("archive.bytes_dropped", as.bytes_dropped);
  add("archive.bytes_read", as.bytes_read);
  add("archive.verifications", as.verifications);

  LazyMountCounters lm = conn_->LazyMountStats();
  add("lazy_mount.lazy_mounts", lm.lazy_mounts);
  add("lazy_mount.eager_mounts", lm.eager_mounts);
  add("lazy_mount.pages_recovered_on_demand", lm.pages_recovered_on_demand);
  add("lazy_mount.fpi_index_hits", lm.fpi_index_hits);
  add("lazy_mount.trees_recovered_on_demand", lm.trees_recovered_on_demand);
  add("lazy_mount.sweeps_completed", lm.sweeps_completed);

  add("retention.undo_interval_micros", conn_->retention_micros());
  add("snapshots.named", registry()->ListSnapshots().size());
  add("snapshots.open_anchors", conn_->engine()->SnapshotAnchorCount());

  if (extra_stats_) extra_stats_(&rows);

  out.rows.reserve(rows.size());
  for (const StatsRow& r : rows) {
    out.rows.push_back({Value(r.first), Value(r.second)});
  }
  out.message = std::to_string(out.rows.size()) + " metrics";
  return out;
}

Result<std::shared_ptr<ReadView>> SqlSession::GetSnapshot(
    const std::string& name) {
  return registry()->Snapshot(name);
}

}  // namespace rewinddb
