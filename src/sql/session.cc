#include "sql/session.h"

namespace rewinddb {

Result<std::string> SqlSession::Execute(const std::string& sql) {
  REWIND_ASSIGN_OR_RETURN(SqlCommand cmd, ParseSql(sql));
  switch (cmd.kind) {
    case SqlCommand::Kind::kCreateSnapshot: {
      if (snapshots_.count(cmd.name)) {
        return Status::AlreadyExists("snapshot '" + cmd.name + "' exists");
      }
      REWIND_ASSIGN_OR_RETURN(
          std::unique_ptr<AsOfSnapshot> snap,
          AsOfSnapshot::Create(db_, cmd.name, cmd.as_of));
      std::string msg = "Created snapshot " + cmd.name + " as of " +
                        FormatTimestamp(snap->creation_stats().boundary_time) +
                        " (SplitLSN " +
                        std::to_string(snap->split_lsn()) + ")";
      snapshots_[cmd.name] = std::move(snap);
      return msg;
    }
    case SqlCommand::Kind::kAlterUndoInterval: {
      REWIND_RETURN_IF_ERROR(db_->SetUndoInterval(cmd.undo_interval_micros));
      return std::string("Undo interval set to ") +
             std::to_string(cmd.undo_interval_micros / 1'000'000) +
             " seconds";
    }
    case SqlCommand::Kind::kDropDatabase: {
      auto it = snapshots_.find(cmd.name);
      if (it == snapshots_.end()) {
        return Status::NotFound("snapshot '" + cmd.name + "' not found");
      }
      snapshots_.erase(it);  // destructor drops the side file
      return "Dropped snapshot " + cmd.name;
    }
    case SqlCommand::Kind::kCreateTable: {
      Transaction* txn = db_->Begin();
      Status s = db_->CreateTable(txn, cmd.name, cmd.schema);
      if (!s.ok()) {
        Status a = db_->Abort(txn);
        (void)a;
        return s;
      }
      REWIND_RETURN_IF_ERROR(db_->Commit(txn));
      return "Created table " + cmd.name;
    }
    case SqlCommand::Kind::kDropTable: {
      Transaction* txn = db_->Begin();
      Status s = db_->DropTable(txn, cmd.name);
      if (!s.ok()) {
        Status a = db_->Abort(txn);
        (void)a;
        return s;
      }
      REWIND_RETURN_IF_ERROR(db_->Commit(txn));
      return "Dropped table " + cmd.name;
    }
  }
  return Status::InvalidArgument("unhandled statement");
}

Result<AsOfSnapshot*> SqlSession::GetSnapshot(const std::string& name) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("snapshot '" + name + "' not found");
  }
  return it->second.get();
}

}  // namespace rewinddb
