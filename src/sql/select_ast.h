// The SELECT statement AST: what the parser produces and the planner
// (src/exec/planner.h) consumes.
//
// Expressions are shared_ptr trees so a parsed statement stays cheaply
// copyable inside SqlCommand; the binder (planner) annotates column
// nodes with resolved input slots in place. Render() gives the
// canonical text used by EXPLAIN, by error messages, and by the
// planner's structural expression matching (GROUP BY item <-> SELECT
// item correspondence).
#ifndef REWINDDB_SQL_SELECT_AST_H_
#define REWINDDB_SQL_SELECT_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace rewinddb {
namespace sql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class BinOp : uint8_t {
  kEq, kNe, kLt, kLe, kGt, kGe,   // comparisons (3-valued under NULL)
  kAnd, kOr,                      // Kleene logic
  kAdd, kSub, kMul, kDiv, kMod,   // arithmetic (NULL-propagating)
};

const char* BinOpName(BinOp op);

enum class AggFn : uint8_t { kCount, kCountStar, kSum, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One node of an expression tree.
struct Expr {
  enum class Kind : uint8_t {
    kLiteral,     // `literal` (may be Value::Null())
    kColumn,      // [table.]column; binder fills `slot`
    kBinary,      // lhs op rhs
    kNot,         // NOT lhs
    kNeg,         // - lhs
    kIsNull,      // lhs IS [NOT] NULL (negated = IS NOT NULL)
    kAgg,         // agg fn over lhs (null lhs = COUNT(*))
  };

  Kind kind;
  Value literal;                 // kLiteral
  std::string table;             // kColumn qualifier ("" = unqualified)
  std::string column;            // kColumn
  BinOp op = BinOp::kEq;         // kBinary
  AggFn agg = AggFn::kCount;     // kAgg
  bool agg_distinct = false;     // kAgg: COUNT(DISTINCT x)
  bool negated = false;          // kIsNull: IS NOT NULL
  ExprPtr lhs, rhs;              // children (unary ops use lhs only)

  /// Filled by the binder: index into the executor's input row. For
  /// kColumn this addresses the current scope; the planner also mints
  /// bare-slot column nodes ("#n") to address post-aggregation rows.
  int slot = -1;

  /// Canonical rendering, e.g. "(a + 1) > b" -- stable across parses
  /// of the same text modulo whitespace.
  std::string Render() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(std::string table, std::string column);
/// A column node addressing input slot `slot` directly (planner use).
ExprPtr MakeSlot(int slot, std::string display_name);
ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(Expr::Kind kind, ExprPtr child);
ExprPtr MakeAgg(AggFn fn, ExprPtr arg, bool distinct);

/// One SELECT-list item: an expression with an optional alias, or a
/// star (`*` / `t.*`) expanded by the planner.
struct SelectItem {
  ExprPtr expr;
  std::string alias;       // "" = derive from the expression
  bool star = false;       // `*` or `table.*`
  std::string star_table;  // qualifier of `table.*` ("" = all tables)
};

struct TableRef {
  std::string table;
  std::string alias;  // "" = table name
  const std::string& binding() const { return alias.empty() ? table : alias; }
};

struct JoinRef {
  TableRef ref;
  ExprPtr on;
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

/// A full SELECT statement. `as_of`/`snapshot` carry the paper's
/// time-travel clauses: exactly one of them may be set; both unset
/// means the live database.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinRef> joins;
  ExprPtr where;                    // null = none
  std::vector<ExprPtr> group_by;
  ExprPtr having;                   // null = none
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
  WallClock as_of = 0;              // SELECT ... AS OF '<ts>' (0 = live)
  std::string snapshot;             // SELECT ... SNAPSHOT OF <name>
};

}  // namespace sql
}  // namespace rewinddb

#endif  // REWINDDB_SQL_SELECT_AST_H_
