// B+-tree index manager.
//
// Properties chosen for the paper's mechanisms:
//  * The root page id never changes (root splits redistribute into two
//    fresh children), so the root id doubles as the stable TreeId that
//    log records carry for logical undo.
//  * Structure modifications run in short *system transactions* that
//    commit within the operation; their row moves are logged as inserts
//    plus deletes that carry the full deleted entry (section 4.2(3)),
//    so page-oriented undo can rewind through splits.
//  * When a root changes shape (leaf -> internal) it is re-formatted
//    behind a PREFORMAT record, keeping its prevPageLSN chain intact.
//  * Leaves that become empty are deallocated (when cheap to unlink),
//    which is what later exercises the re-allocation/preformat path.
//
// Concurrency: writers must hold the tree's exclusive latch, readers
// the shared latch (the engine's Table layer owns that latch). Methods
// here only use page latches for frame stability.
#ifndef REWINDDB_BTREE_BTREE_H_
#define REWINDDB_BTREE_BTREE_H_

#include <functional>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/result.h"
#include "engine/allocator.h"
#include "engine/page_ops.h"
#include "txn/transaction.h"

namespace rewinddb {

/// Everything a B-tree mutation needs.
struct TreeWriteContext {
  BufferManager* buffers;
  PageOps* ops;
  TransactionManager* txns;
  PageAllocator* allocator;
};

/// Scan callback verdicts.
enum class ScanAction {
  kContinue,  // deliver next row
  kStop,      // end the scan successfully
  kYield,     // release latches and report the current key to the caller
              // (used to wait on a row lock without holding latches)
};

/// Result of a scan: whether it yielded, and at which key.
struct ScanOutcome {
  bool yielded = false;
  std::string yield_key;
};

class BTree {
 public:
  /// Entries larger than this are rejected (an entry must fit in a
  /// fraction of a page for splits to terminate).
  static constexpr size_t kMaxEntrySize = 1800;

  explicit BTree(TreeId root) : root_(root) {}

  TreeId root() const { return root_; }

  /// Allocate and format the root of a new tree. Returns its TreeId.
  static Result<TreeId> Create(const TreeWriteContext& ctx, Transaction* txn);

  /// Insert (key, value); AlreadyExists if the key is present.
  Status Insert(const TreeWriteContext& ctx, Transaction* txn, Slice key,
                Slice value);

  /// Replace the value of `key`; NotFound if absent.
  Status Update(const TreeWriteContext& ctx, Transaction* txn, Slice key,
                Slice value);

  /// Delete `key`; NotFound if absent.
  Status Delete(const TreeWriteContext& ctx, Transaction* txn, Slice key);

  /// Point lookup (read-only).
  Result<std::string> Get(BufferManager* buffers, Slice key) const;

  /// Range scan over [lower, upper) in key order; empty `upper` means
  /// unbounded. The callback may yield (see ScanAction).
  Result<ScanOutcome> Scan(
      BufferManager* buffers, Slice lower, Slice upper,
      const std::function<ScanAction(Slice key, Slice value)>& cb) const;

  /// Number of entries (test helper; O(n)).
  Result<uint64_t> Count(BufferManager* buffers) const;

  /// Deallocate every page of the tree except the root, then the root's
  /// content is cleared. Used by DROP TABLE. Runs in system
  /// transactions; `txn` is the user transaction that owns the drop.
  Status Drop(const TreeWriteContext& ctx, Transaction* txn);

  /// Structural invariant check (tests): in-page ordering, separator
  /// bounds, leaf-chain consistency. Returns Corruption on violation.
  Status Validate(BufferManager* buffers) const;

  /// Page ids from the root to the leaf covering `key` (read-only
  /// descent). Used by the snapshot's unlogged logical undo.
  Result<std::vector<PageId>> FindLeafPath(BufferManager* buffers,
                                           Slice key) const;

  // --- logical undo with compensation logging (rollback path) ---

  /// Undo an INSERT: erase `key`, logging a CLR(delete) whose
  /// undo_next_lsn is `undo_next`.
  Status ClrErase(const TreeWriteContext& ctx, Transaction* txn, Slice key,
                  Lsn undo_next);

  /// Undo a DELETE: re-insert the logged `entry`, logging CLR(insert).
  Status ClrReinsert(const TreeWriteContext& ctx, Transaction* txn,
                     Slice entry, Lsn undo_next);

  /// Undo an UPDATE: restore `old_entry`, logging CLR(update).
  Status ClrRestore(const TreeWriteContext& ctx, Transaction* txn,
                    Slice old_entry, Lsn undo_next);

 private:
  struct Descent {
    std::vector<PageId> path;  // root .. leaf
  };

  Result<Descent> DescendToLeaf(BufferManager* buffers, Slice key) const;

  Status SplitLeaf(const TreeWriteContext& ctx, const Descent& d,
                   PageId leaf_id);
  Status SplitRoot(const TreeWriteContext& ctx, Transaction* sys);
  /// Insert (sep -> child) into the node at path index `node_idx`,
  /// splitting upward as needed.
  Status InsertSeparator(const TreeWriteContext& ctx, Transaction* sys,
                         const Descent& d, size_t node_idx,
                         const std::string& sep, PageId child);
  Status SplitInternal(const TreeWriteContext& ctx, Transaction* sys,
                       const Descent& d, size_t node_idx);
  Status MaybeDeallocateEmptyLeaf(const TreeWriteContext& ctx,
                                  const Descent& d, PageId leaf_id);

  Status ValidateNode(BufferManager* buffers, PageId id, const std::string& lo,
                      const std::string& hi, int expect_level,
                      std::vector<PageId>* leaves) const;

  TreeId root_;
};

/// Child pointer codec for internal-node entries.
std::string EncodeChild(PageId child);
PageId DecodeChild(Slice value);

}  // namespace rewinddb

#endif  // REWINDDB_BTREE_BTREE_H_
