#include "btree/btree.h"

#include <cstring>

#include "common/coding.h"
#include "page/slotted_page.h"

namespace rewinddb {

std::string EncodeChild(PageId child) {
  std::string v;
  PutFixed32(&v, child);
  return v;
}

PageId DecodeChild(Slice value) {
  return DecodeFixed32(value.data());
}

namespace {

bool IsLeaf(const char* page) {
  return Header(page)->type == PageType::kBtreeLeaf;
}

/// Internal-node routing: index of the child subtree covering `key`
/// (the last entry whose key is <= `key`; slot 0 carries the implicit
/// minus-infinity key "").
uint16_t ChildIndexFor(const char* page, Slice key) {
  bool found;
  uint16_t idx = SlottedPage::LowerBound(page, key, &found);
  if (found) return idx;
  return static_cast<uint16_t>(idx - 1);
}

/// True if replacing slot's record with `new_size` bytes fits.
bool CanReplace(const char* page, uint16_t slot, size_t new_size) {
  size_t old = SlottedPage::Record(page, slot).size();
  if (new_size <= old) return true;
  return SlottedPage::FreeSpace(page) + Header(page)->frag_bytes + old >=
         new_size;
}

}  // namespace

Result<TreeId> BTree::Create(const TreeWriteContext& ctx, Transaction* txn) {
  REWIND_ASSIGN_OR_RETURN(
      PageId root,
      ctx.allocator->AllocatePage(txn, PageType::kBtreeLeaf, 0,
                                  kInvalidPageId));
  // The allocator formatted the page with tree=kInvalidPageId; reformat
  // is unnecessary -- patch the tree id via a cheap reformat would cost
  // a record, so instead allocate with tree==its own id in two steps:
  // the page id is only known after allocation, so fix it with a
  // dedicated format record binding the tree identity.
  REWIND_ASSIGN_OR_RETURN(PageGuard g,
                          ctx.buffers->FetchPage(root, AccessMode::kWrite));
  REWIND_RETURN_IF_ERROR(
      ctx.ops->LogFormat(txn, g, root, PageType::kBtreeLeaf, 0, root));
  return root;
}

Result<BTree::Descent> BTree::DescendToLeaf(BufferManager* buffers,
                                            Slice key) const {
  Descent d;
  PageId pid = root_;
  for (int depth = 0; depth < 64; depth++) {
    d.path.push_back(pid);
    REWIND_ASSIGN_OR_RETURN(PageGuard g,
                            buffers->FetchPage(pid, AccessMode::kRead));
    if (IsLeaf(g.data())) return d;
    if (SlottedPage::SlotCount(g.data()) == 0) {
      return Status::Corruption("internal node with no children");
    }
    uint16_t idx = ChildIndexFor(g.data(), key);
    pid = DecodeChild(
        SlottedPage::EntryValue(SlottedPage::Record(g.data(), idx)));
  }
  return Status::Corruption("btree deeper than 64 levels");
}

Status BTree::Insert(const TreeWriteContext& ctx, Transaction* txn, Slice key,
                     Slice value) {
  std::string entry = SlottedPage::MakeEntry(key, value);
  if (entry.size() > kMaxEntrySize) {
    return Status::InvalidArgument("entry exceeds max size");
  }
  for (int attempt = 0; attempt < 64; attempt++) {
    REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(ctx.buffers, key));
    PageId leaf_id = d.path.back();
    {
      REWIND_ASSIGN_OR_RETURN(
          PageGuard leaf, ctx.buffers->FetchPage(leaf_id, AccessMode::kWrite));
      bool found;
      uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
      if (found) return Status::AlreadyExists("key exists");
      if (SlottedPage::HasRoomFor(leaf.data(), entry.size())) {
        return ctx.ops->LogInsert(txn, leaf, idx, entry);
      }
    }
    REWIND_RETURN_IF_ERROR(SplitLeaf(ctx, d, leaf_id));
  }
  return Status::Corruption("insert did not converge after splits");
}

Status BTree::Update(const TreeWriteContext& ctx, Transaction* txn, Slice key,
                     Slice value) {
  std::string entry = SlottedPage::MakeEntry(key, value);
  if (entry.size() > kMaxEntrySize) {
    return Status::InvalidArgument("entry exceeds max size");
  }
  REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(ctx.buffers, key));
  {
    REWIND_ASSIGN_OR_RETURN(
        PageGuard leaf,
        ctx.buffers->FetchPage(d.path.back(), AccessMode::kWrite));
    bool found;
    uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
    if (!found) return Status::NotFound("key not found");
    if (CanReplace(leaf.data(), idx, entry.size())) {
      return ctx.ops->LogUpdate(txn, leaf, idx, entry);
    }
    // Grown beyond this page's capacity: delete + insert (two records
    // in the user transaction; logical undo reverses both).
    REWIND_RETURN_IF_ERROR(ctx.ops->LogDelete(txn, leaf, idx));
  }
  return Insert(ctx, txn, key, value);
}

Status BTree::Delete(const TreeWriteContext& ctx, Transaction* txn,
                     Slice key) {
  REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(ctx.buffers, key));
  PageId leaf_id = d.path.back();
  bool now_empty = false;
  {
    REWIND_ASSIGN_OR_RETURN(PageGuard leaf,
                            ctx.buffers->FetchPage(leaf_id, AccessMode::kWrite));
    bool found;
    uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
    if (!found) return Status::NotFound("key not found");
    REWIND_RETURN_IF_ERROR(ctx.ops->LogDelete(txn, leaf, idx));
    now_empty = SlottedPage::SlotCount(leaf.data()) == 0;
  }
  if (now_empty && leaf_id != root_ && d.path.size() >= 2) {
    // Best effort: an empty leaf that cannot be unlinked cheaply stays.
    Status s = MaybeDeallocateEmptyLeaf(ctx, d, leaf_id);
    if (!s.ok() && !s.IsBusy()) return s;
  }
  return Status::OK();
}

Result<std::string> BTree::Get(BufferManager* buffers, Slice key) const {
  REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(buffers, key));
  REWIND_ASSIGN_OR_RETURN(PageGuard leaf,
                          buffers->FetchPage(d.path.back(), AccessMode::kRead));
  bool found;
  uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
  if (!found) return Status::NotFound("key not found");
  return SlottedPage::EntryValue(SlottedPage::Record(leaf.data(), idx))
      .ToString();
}

Result<ScanOutcome> BTree::Scan(
    BufferManager* buffers, Slice lower, Slice upper,
    const std::function<ScanAction(Slice, Slice)>& cb) const {
  ScanOutcome out;
  REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(buffers, lower));
  PageId pid = d.path.back();
  bool first_page = true;
  while (pid != kInvalidPageId) {
    REWIND_ASSIGN_OR_RETURN(PageGuard leaf,
                            buffers->FetchPage(pid, AccessMode::kRead));
    uint16_t start = 0;
    if (first_page) {
      bool found;
      start = SlottedPage::LowerBound(leaf.data(), lower, &found);
      first_page = false;
    }
    uint16_t n = SlottedPage::SlotCount(leaf.data());
    for (uint16_t i = start; i < n; i++) {
      Slice entry = SlottedPage::Record(leaf.data(), i);
      Slice key = SlottedPage::EntryKey(entry);
      if (!upper.empty() && key.compare(upper) >= 0) return out;
      ScanAction action = cb(key, SlottedPage::EntryValue(entry));
      if (action == ScanAction::kStop) return out;
      if (action == ScanAction::kYield) {
        out.yielded = true;
        out.yield_key = key.ToString();
        return out;
      }
    }
    pid = Header(leaf.data())->right_sibling;
  }
  return out;
}

Result<uint64_t> BTree::Count(BufferManager* buffers) const {
  uint64_t n = 0;
  REWIND_ASSIGN_OR_RETURN(
      ScanOutcome out,
      Scan(buffers, Slice(), Slice(), [&](Slice, Slice) {
        n++;
        return ScanAction::kContinue;
      }));
  (void)out;
  return n;
}

Status BTree::SplitLeaf(const TreeWriteContext& ctx, const Descent& d,
                        PageId leaf_id) {
  Transaction* sys = ctx.txns->Begin(/*is_system=*/true);
  Status s = [&]() -> Status {
    if (leaf_id == root_) return SplitRoot(ctx, sys);

    REWIND_ASSIGN_OR_RETURN(
        PageId right_id,
        ctx.allocator->AllocatePage(sys, PageType::kBtreeLeaf, 0, root_));
    std::string sep;
    {
      REWIND_ASSIGN_OR_RETURN(
          PageGuard leaf, ctx.buffers->FetchPage(leaf_id, AccessMode::kWrite));
      REWIND_ASSIGN_OR_RETURN(
          PageGuard right,
          ctx.buffers->FetchPage(right_id, AccessMode::kWrite));
      uint16_t n = SlottedPage::SlotCount(leaf.data());
      if (n < 2) return Status::Corruption("split of underfull leaf");
      uint16_t mid = static_cast<uint16_t>(n / 2);
      sep = SlottedPage::EntryKey(SlottedPage::Record(leaf.data(), mid))
                .ToString();
      // Move upper half: insert into the new page, then delete from the
      // old -- both halves fully logged with undo info (section 4.2(3)).
      for (uint16_t i = mid; i < n; i++) {
        REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(
            sys, right, static_cast<uint16_t>(i - mid),
            SlottedPage::Record(leaf.data(), i)));
      }
      for (uint16_t i = n; i-- > mid;) {
        REWIND_RETURN_IF_ERROR(ctx.ops->LogDelete(sys, leaf, i));
      }
      REWIND_RETURN_IF_ERROR(ctx.ops->LogSetSibling(
          sys, right, Header(leaf.data())->right_sibling));
      REWIND_RETURN_IF_ERROR(ctx.ops->LogSetSibling(sys, leaf, right_id));
    }
    return InsertSeparator(ctx, sys, d, d.path.size() - 2, sep, right_id);
  }();
  if (!s.ok()) return s;
  return ctx.txns->Commit(sys);
}

Status BTree::SplitRoot(const TreeWriteContext& ctx, Transaction* sys) {
  // Learn the root's shape with a read latch, then allocate the new
  // children BEFORE re-latching it: the allocator must never be entered
  // with page latches held (lock order: latches after allocation). The
  // shape cannot change in between -- writers hold the tree's exclusive
  // latch for the whole operation.
  bool leaf_root;
  uint8_t child_level;
  {
    REWIND_ASSIGN_OR_RETURN(PageGuard root,
                            ctx.buffers->FetchPage(root_, AccessMode::kRead));
    leaf_root = IsLeaf(root.data());
    child_level = Header(root.data())->level;
  }
  PageType child_type =
      leaf_root ? PageType::kBtreeLeaf : PageType::kBtreeInternal;

  REWIND_ASSIGN_OR_RETURN(
      PageId left_id,
      ctx.allocator->AllocatePage(sys, child_type, child_level, root_));
  REWIND_ASSIGN_OR_RETURN(
      PageId right_id,
      ctx.allocator->AllocatePage(sys, child_type, child_level, root_));

  REWIND_ASSIGN_OR_RETURN(PageGuard root,
                          ctx.buffers->FetchPage(root_, AccessMode::kWrite));
  REWIND_ASSIGN_OR_RETURN(PageGuard left,
                          ctx.buffers->FetchPage(left_id, AccessMode::kWrite));
  REWIND_ASSIGN_OR_RETURN(PageGuard right,
                          ctx.buffers->FetchPage(right_id, AccessMode::kWrite));

  uint16_t n = SlottedPage::SlotCount(root.data());
  if (n < 2) return Status::Corruption("split of underfull root");
  uint16_t mid = static_cast<uint16_t>(n / 2);
  std::string sep =
      SlottedPage::EntryKey(SlottedPage::Record(root.data(), mid)).ToString();

  for (uint16_t i = 0; i < mid; i++) {
    REWIND_RETURN_IF_ERROR(
        ctx.ops->LogInsert(sys, left, i, SlottedPage::Record(root.data(), i)));
  }
  for (uint16_t i = mid; i < n; i++) {
    Slice entry = SlottedPage::Record(root.data(), i);
    if (!leaf_root && i == mid) {
      // Internal split pushes the middle key up: the right child's
      // first entry takes the implicit minus-infinity key.
      std::string e0 = SlottedPage::MakeEntry(
          Slice(), SlottedPage::EntryValue(entry));
      REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(sys, right, 0, e0));
    } else {
      REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(
          sys, right, static_cast<uint16_t>(i - mid), entry));
    }
  }
  if (leaf_root) {
    REWIND_RETURN_IF_ERROR(ctx.ops->LogSetSibling(sys, left, right_id));
  }

  // Re-format the root as an internal node behind a preformat record so
  // the pre-split content stays reachable for page-oriented undo.
  char image[kPageSize];
  memcpy(image, root.data(), kPageSize);
  REWIND_RETURN_IF_ERROR(ctx.ops->LogPreformat(sys, root, image));
  REWIND_RETURN_IF_ERROR(ctx.ops->LogFormat(
      sys, root, root_, PageType::kBtreeInternal,
      static_cast<uint8_t>(child_level + 1), root_));
  REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(
      sys, root, 0, SlottedPage::MakeEntry(Slice(), EncodeChild(left_id))));
  REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(
      sys, root, 1, SlottedPage::MakeEntry(sep, EncodeChild(right_id))));
  return Status::OK();
}

Status BTree::InsertSeparator(const TreeWriteContext& ctx, Transaction* sys,
                              const Descent& d, size_t node_idx,
                              const std::string& sep, PageId child) {
  std::string entry = SlottedPage::MakeEntry(sep, EncodeChild(child));
  for (int attempt = 0; attempt < 64; attempt++) {
    PageId node_id = d.path[node_idx];
    {
      REWIND_ASSIGN_OR_RETURN(
          PageGuard node, ctx.buffers->FetchPage(node_id, AccessMode::kWrite));
      // The node may have been split (by us, one attempt ago): route to
      // the half that now covers `sep` by re-descending from the root
      // is handled below; here check the recorded node first.
      if (Header(node.data())->type == PageType::kBtreeInternal) {
        bool found;
        uint16_t idx = SlottedPage::LowerBound(node.data(), sep, &found);
        if (found) return Status::Corruption("duplicate separator");
        if (SlottedPage::HasRoomFor(node.data(), entry.size())) {
          return ctx.ops->LogInsert(sys, node, idx, entry);
        }
      }
    }
    // No room (or the recorded page is stale): split this node and
    // retry through a fresh descent to the covering node.
    REWIND_RETURN_IF_ERROR(SplitInternal(ctx, sys, d, node_idx));
    // After splitting, re-locate the internal node that covers `sep` by
    // descending from the root to the target level.
    REWIND_ASSIGN_OR_RETURN(Descent fresh, DescendToLeaf(ctx.buffers, sep));
    // The covering internal node sits at the same depth as node_idx
    // counted from the root only if the tree did not grow; recompute
    // from level instead: walk the fresh path and pick the node whose
    // level matches the child's level + 1.
    PageId target = kInvalidPageId;
    for (PageId pid : fresh.path) {
      REWIND_ASSIGN_OR_RETURN(PageGuard g,
                              ctx.buffers->FetchPage(pid, AccessMode::kRead));
      REWIND_ASSIGN_OR_RETURN(PageGuard c,
                              ctx.buffers->FetchPage(child, AccessMode::kRead));
      if (Header(g.data())->type == PageType::kBtreeInternal &&
          Header(g.data())->level == Header(c.data())->level + 1) {
        target = pid;
        break;
      }
    }
    if (target == kInvalidPageId) {
      return Status::Corruption("separator target level not found");
    }
    REWIND_ASSIGN_OR_RETURN(
        PageGuard node, ctx.buffers->FetchPage(target, AccessMode::kWrite));
    bool found;
    uint16_t idx = SlottedPage::LowerBound(node.data(), sep, &found);
    if (found) return Status::Corruption("duplicate separator");
    if (SlottedPage::HasRoomFor(node.data(), entry.size())) {
      return ctx.ops->LogInsert(sys, node, idx, entry);
    }
    // Still no room (pathological); loop and split again.
  }
  return Status::Corruption("separator insert did not converge");
}

Status BTree::SplitInternal(const TreeWriteContext& ctx, Transaction* sys,
                            const Descent& d, size_t node_idx) {
  PageId node_id = d.path[node_idx];
  if (node_id == root_) return SplitRoot(ctx, sys);

  uint8_t level;
  {
    REWIND_ASSIGN_OR_RETURN(PageGuard node,
                            ctx.buffers->FetchPage(node_id, AccessMode::kRead));
    level = Header(node.data())->level;
  }
  REWIND_ASSIGN_OR_RETURN(
      PageId right_id,
      ctx.allocator->AllocatePage(sys, PageType::kBtreeInternal, level,
                                  root_));
  std::string sep;
  {
    REWIND_ASSIGN_OR_RETURN(PageGuard node,
                            ctx.buffers->FetchPage(node_id, AccessMode::kWrite));
    REWIND_ASSIGN_OR_RETURN(PageGuard right,
                            ctx.buffers->FetchPage(right_id, AccessMode::kWrite));
    uint16_t n = SlottedPage::SlotCount(node.data());
    if (n < 2) return Status::Corruption("split of underfull internal node");
    uint16_t mid = static_cast<uint16_t>(n / 2);
    sep = SlottedPage::EntryKey(SlottedPage::Record(node.data(), mid))
              .ToString();
    for (uint16_t i = mid; i < n; i++) {
      Slice entry = SlottedPage::Record(node.data(), i);
      if (i == mid) {
        std::string e0 =
            SlottedPage::MakeEntry(Slice(), SlottedPage::EntryValue(entry));
        REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(sys, right, 0, e0));
      } else {
        REWIND_RETURN_IF_ERROR(ctx.ops->LogInsert(
            sys, right, static_cast<uint16_t>(i - mid), entry));
      }
    }
    for (uint16_t i = n; i-- > mid;) {
      REWIND_RETURN_IF_ERROR(ctx.ops->LogDelete(sys, node, i));
    }
  }
  return InsertSeparator(ctx, sys, d, node_idx - 1, sep, right_id);
}

Status BTree::MaybeDeallocateEmptyLeaf(const TreeWriteContext& ctx,
                                       const Descent& d, PageId leaf_id) {
  Transaction* sys = ctx.txns->Begin(/*is_system=*/true);
  Status s = [&]() -> Status {
    PageId parent_id = d.path[d.path.size() - 2];
    PageId left_id = kInvalidPageId;
    PageId leaf_next;
    {
      REWIND_ASSIGN_OR_RETURN(
          PageGuard parent,
          ctx.buffers->FetchPage(parent_id, AccessMode::kWrite));
      if (Header(parent.data())->type != PageType::kBtreeInternal) {
        return Status::Busy("stale parent");
      }
      uint16_t n = SlottedPage::SlotCount(parent.data());
      uint16_t pos = n;
      for (uint16_t i = 0; i < n; i++) {
        PageId child = DecodeChild(
            SlottedPage::EntryValue(SlottedPage::Record(parent.data(), i)));
        if (child == leaf_id) {
          pos = i;
          break;
        }
      }
      // Leftmost children keep the subtree's lower fence; unlinking
      // them would need cross-parent surgery -- leave them (lazy).
      if (pos == n || pos == 0) return Status::Busy("not unlinkable");
      left_id = DecodeChild(SlottedPage::EntryValue(
          SlottedPage::Record(parent.data(), pos - 1)));
      {
        REWIND_ASSIGN_OR_RETURN(
            PageGuard leaf, ctx.buffers->FetchPage(leaf_id, AccessMode::kRead));
        if (SlottedPage::SlotCount(leaf.data()) != 0) {
          return Status::Busy("leaf refilled");
        }
        leaf_next = Header(leaf.data())->right_sibling;
      }
      {
        REWIND_ASSIGN_OR_RETURN(
            PageGuard left, ctx.buffers->FetchPage(left_id, AccessMode::kWrite));
        if (Header(left.data())->right_sibling != leaf_id) {
          return Status::Busy("chain mismatch");
        }
        REWIND_RETURN_IF_ERROR(ctx.ops->LogSetSibling(sys, left, leaf_next));
      }
      REWIND_RETURN_IF_ERROR(ctx.ops->LogDelete(sys, parent, pos));
    }
    return ctx.allocator->DeallocatePage(sys, leaf_id);
  }();
  if (!s.ok()) {
    // Nothing applied yet on the Busy paths; make the no-op txn vanish.
    Status cs = ctx.txns->Commit(sys);
    return s.IsBusy() ? s : (cs.ok() ? s : cs);
  }
  return ctx.txns->Commit(sys);
}

Status BTree::Drop(const TreeWriteContext& ctx, Transaction* txn) {
  // Collect every page of the tree, then deallocate all non-root pages
  // and clear the root. The alloc-map flips are logged in the user
  // transaction so the drop is undone as a unit (logically on abort,
  // physically for as-of queries).
  std::vector<PageId> pages;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId pid = stack.back();
    stack.pop_back();
    pages.push_back(pid);
    REWIND_ASSIGN_OR_RETURN(PageGuard g,
                            ctx.buffers->FetchPage(pid, AccessMode::kRead));
    if (!IsLeaf(g.data())) {
      uint16_t n = SlottedPage::SlotCount(g.data());
      for (uint16_t i = 0; i < n; i++) {
        stack.push_back(DecodeChild(
            SlottedPage::EntryValue(SlottedPage::Record(g.data(), i))));
      }
    }
  }
  for (PageId pid : pages) {
    if (pid == root_) continue;
    REWIND_RETURN_IF_ERROR(ctx.allocator->DeallocatePage(txn, pid));
  }
  return ctx.allocator->DeallocatePage(txn, root_);
}

Status BTree::ClrErase(const TreeWriteContext& ctx, Transaction* txn,
                       Slice key, Lsn undo_next) {
  REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(ctx.buffers, key));
  REWIND_ASSIGN_OR_RETURN(
      PageGuard leaf, ctx.buffers->FetchPage(d.path.back(), AccessMode::kWrite));
  bool found;
  uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
  if (!found) {
    return Status::Corruption("undo insert: key vanished");
  }
  return ctx.ops->LogClrDelete(txn, leaf, idx, undo_next);
}

Status BTree::ClrReinsert(const TreeWriteContext& ctx, Transaction* txn,
                          Slice entry, Lsn undo_next) {
  Slice key = SlottedPage::EntryKey(entry);
  for (int attempt = 0; attempt < 64; attempt++) {
    REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(ctx.buffers, key));
    PageId leaf_id = d.path.back();
    {
      REWIND_ASSIGN_OR_RETURN(
          PageGuard leaf, ctx.buffers->FetchPage(leaf_id, AccessMode::kWrite));
      bool found;
      uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
      if (found) return Status::Corruption("undo delete: key reappeared");
      if (SlottedPage::HasRoomFor(leaf.data(), entry.size())) {
        return ctx.ops->LogClrInsert(txn, leaf, idx, entry, undo_next);
      }
    }
    REWIND_RETURN_IF_ERROR(SplitLeaf(ctx, d, leaf_id));
  }
  return Status::Corruption("undo delete did not converge");
}

Status BTree::ClrRestore(const TreeWriteContext& ctx, Transaction* txn,
                         Slice old_entry, Lsn undo_next) {
  Slice key = SlottedPage::EntryKey(old_entry);
  for (int attempt = 0; attempt < 64; attempt++) {
    REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(ctx.buffers, key));
    PageId leaf_id = d.path.back();
    {
      REWIND_ASSIGN_OR_RETURN(
          PageGuard leaf, ctx.buffers->FetchPage(leaf_id, AccessMode::kWrite));
      bool found;
      uint16_t idx = SlottedPage::LowerBound(leaf.data(), key, &found);
      if (!found) return Status::Corruption("undo update: key vanished");
      size_t old_len = SlottedPage::Record(leaf.data(), idx).size();
      bool fits = old_entry.size() <= old_len ||
                  SlottedPage::FreeSpace(leaf.data()) +
                          Header(leaf.data())->frag_bytes + old_len >=
                      old_entry.size();
      if (fits) {
        return ctx.ops->LogClrUpdate(txn, leaf, idx, old_entry, undo_next);
      }
    }
    REWIND_RETURN_IF_ERROR(SplitLeaf(ctx, d, leaf_id));
  }
  return Status::Corruption("undo update did not converge");
}

Result<std::vector<PageId>> BTree::FindLeafPath(BufferManager* buffers,
                                                Slice key) const {
  REWIND_ASSIGN_OR_RETURN(Descent d, DescendToLeaf(buffers, key));
  return d.path;
}

Status BTree::ValidateNode(BufferManager* buffers, PageId id,
                           const std::string& lo, const std::string& hi,
                           int expect_level,
                           std::vector<PageId>* leaves) const {
  REWIND_ASSIGN_OR_RETURN(PageGuard g, buffers->FetchPage(id, AccessMode::kRead));
  const PageHeader* h = Header(g.data());
  if (expect_level >= 0 && h->level != expect_level) {
    return Status::Corruption("level mismatch at page " + std::to_string(id));
  }
  uint16_t n = SlottedPage::SlotCount(g.data());
  std::string prev;
  bool have_prev = false;
  for (uint16_t i = 0; i < n; i++) {
    std::string key =
        SlottedPage::EntryKey(SlottedPage::Record(g.data(), i)).ToString();
    if (have_prev && !(prev < key)) {
      return Status::Corruption("keys out of order in page " +
                                std::to_string(id));
    }
    if (!(i == 0 && h->type == PageType::kBtreeInternal)) {
      if (key < lo || (!hi.empty() && key >= hi)) {
        return Status::Corruption("key outside fence in page " +
                                  std::to_string(id));
      }
    }
    prev = key;
    have_prev = true;
  }
  if (h->type == PageType::kBtreeLeaf) {
    leaves->push_back(id);
    return Status::OK();
  }
  if (n == 0) return Status::Corruption("empty internal node");
  for (uint16_t i = 0; i < n; i++) {
    Slice entry = SlottedPage::Record(g.data(), i);
    std::string child_lo =
        i == 0 ? lo : SlottedPage::EntryKey(entry).ToString();
    std::string child_hi =
        i + 1 < n
            ? SlottedPage::EntryKey(SlottedPage::Record(g.data(), i + 1))
                  .ToString()
            : hi;
    REWIND_RETURN_IF_ERROR(
        ValidateNode(buffers, DecodeChild(SlottedPage::EntryValue(entry)),
                     child_lo, child_hi, h->level - 1, leaves));
  }
  return Status::OK();
}

Status BTree::Validate(BufferManager* buffers) const {
  std::vector<PageId> leaves;
  REWIND_RETURN_IF_ERROR(
      ValidateNode(buffers, root_, std::string(), std::string(), -1, &leaves));
  // Leaf chain must visit exactly the leaves of the tree, in order.
  // (Leftmost lazily-kept empty leaves are part of the chain too.)
  if (leaves.empty()) return Status::OK();
  PageId pid = leaves.front();
  size_t i = 0;
  while (pid != kInvalidPageId && i < leaves.size()) {
    if (pid != leaves[i]) {
      return Status::Corruption("leaf chain order mismatch");
    }
    REWIND_ASSIGN_OR_RETURN(PageGuard g,
                            buffers->FetchPage(pid, AccessMode::kRead));
    pid = Header(g.data())->right_sibling;
    i++;
  }
  if (i != leaves.size()) {
    return Status::Corruption("leaf chain shorter than tree leaves");
  }
  return Status::OK();
}

}  // namespace rewinddb
