// The RewindDB network front end: a TCP server speaking the
// length-prefixed binary protocol of src/net/wire.h.
//
// Threading model: one accept loop plus one worker thread per admitted
// connection, bounded by Options::max_connections -- the worker pool IS
// the admission limit. A connection beyond the limit receives a clean
// "server busy" response frame (Status::kBusy, echoing HELLO) and is
// closed; it is never half-served. Sessions idle longer than
// Options::idle_timeout_ms are closed and counted.
//
// All sessions share one engine Database; each gets its own
// api::Connection (session-scoped commit mode, open transaction, view
// handles), while named snapshots live on a server-wide registry
// Connection so CREATE DATABASE ... AS SNAPSHOT in one session is
// visible to every other.
#ifndef REWINDDB_SERVER_SERVER_H_
#define REWINDDB_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/connection.h"
#include "server/session.h"

namespace rewinddb {
namespace server {

class Server {
 public:
  struct Options {
    /// Bind address. Tests and the bench fleet use loopback.
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back with port().
    uint16_t port = 0;
    /// Admission limit: concurrent sessions beyond this are rejected
    /// with Status::kBusy.
    uint32_t max_connections = 64;
    /// Close sessions with no request for this long. 0 disables.
    uint32_t idle_timeout_ms = 0;
  };

  /// Monotonic counters; sessions_open is the only gauge.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected_busy = 0;
    uint64_t sessions_open = 0;
    uint64_t sessions_peak = 0;
    uint64_t frames = 0;
    uint64_t frame_errors = 0;
    uint64_t idle_timeouts = 0;
  };

  /// `db` is borrowed and must outlive the server.
  Server(Database* db, Options opts);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the accept loop. Returns once the port is
  /// accepting connections.
  Status Start();

  /// Stop accepting, shut down every live session (their open
  /// transactions roll back, their snapshot handles release), join all
  /// threads. Idempotent.
  void Stop();

  /// The bound port (after Start(); useful with Options::port = 0).
  uint16_t port() const { return port_; }

  Stats stats() const;

  Database* db() const { return db_; }

 private:
  struct Worker {
    int fd = -1;         // -1 once the worker closed it
    std::thread thread;
    bool done = false;
  };

  void AcceptLoop();
  void ServeConnection(Worker* w, uint64_t session_id);
  /// Join workers that finished on their own (called from the accept
  /// loop so the worker list cannot grow without bound).
  void ReapDone();

  Database* db_;
  Options opts_;
  std::unique_ptr<Connection> registry_;

  /// Atomic: Stop() retires the fd while AcceptLoop() is blocked on it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex mu_;  // guards workers_ and Worker::fd/done
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_busy_{0};
  std::atomic<uint64_t> sessions_open_{0};
  std::atomic<uint64_t> sessions_peak_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
};

}  // namespace server
}  // namespace rewinddb

#endif  // REWINDDB_SERVER_SERVER_H_
