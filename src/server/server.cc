#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/wire.h"

namespace rewinddb {
namespace server {

Server::Server(Database* db, Options opts)
    : db_(db), opts_(std::move(opts)), registry_(Connection::Attach(db)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + opts_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError(std::string("bind ") + opts_.host + ":" +
                               std::to_string(opts_.port) + ": " +
                               strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::IoError(std::string("listen: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Status::IoError(std::string("getsockname: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Unblock accept(2) first so no new session can start, then kick
  // every live session off its socket.
  if (int lfd = listen_fd_.exchange(-1); lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& w : workers_) {
      if (w->fd >= 0) ::shutdown(w->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<Worker>> drained;
  {
    std::lock_guard<std::mutex> g(mu_);
    drained.swap(workers_);
  }
  for (auto& w : drained) {
    if (w->thread.joinable()) w->thread.join();
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.rejected_busy = rejected_busy_.load();
  s.sessions_open = sessions_open_.load();
  s.sessions_peak = sessions_peak_.load();
  s.frames = frames_.load();
  s.frame_errors = frame_errors_.load();
  s.idle_timeouts = idle_timeouts_.load();
  return s;
}

void Server::ReapDone() {
  std::vector<std::unique_ptr<Worker>> done;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto it = workers_.begin(); it != workers_.end();) {
      if ((*it)->done) {
        done.push_back(std::move(*it));
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& w : done) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load()) return;
      if (errno == ECONNABORTED) continue;
      return;  // listen socket is gone
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    ReapDone();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    uint64_t open = sessions_open_.load();
    if (open >= opts_.max_connections) {
      // Clean rejection: a full response frame (echoing HELLO, which
      // is what the peer sent first) so the client can distinguish
      // "busy" from a network failure, then close.
      rejected_busy_.fetch_add(1);
      std::string frame = net::EncodeResponse(
          net::Op::kHello,
          Status::Busy("server busy: " +
                       std::to_string(opts_.max_connections) +
                       " sessions already connected"));
      net::WriteFull(fd, frame.data(), frame.size());
      ::close(fd);
      continue;
    }

    accepted_.fetch_add(1);
    uint64_t now_open = sessions_open_.fetch_add(1) + 1;
    uint64_t peak = sessions_peak_.load();
    while (now_open > peak &&
           !sessions_peak_.compare_exchange_weak(peak, now_open)) {
    }

    uint64_t sid = next_session_id_.fetch_add(1);
    auto w = std::make_unique<Worker>();
    w->fd = fd;
    Worker* raw = w.get();
    {
      std::lock_guard<std::mutex> g(mu_);
      workers_.push_back(std::move(w));
    }
    raw->thread = std::thread([this, raw, sid] { ServeConnection(raw, sid); });
  }
}

void Server::ServeConnection(Worker* w, uint64_t session_id) {
  const int fd = w->fd;
  {
    // Session-scoped state lives exactly as long as this block: when
    // the connection ends -- goodbye, EOF, idle timeout, shutdown --
    // ~ServerSession rolls back the open transaction and releases
    // every snapshot view handle.
    ServerSession session(
        session_id, db_, registry_.get(),
        [this](std::vector<SqlSession::StatsRow>* rows) {
          Stats s = stats();
          rows->emplace_back("server.accepted",
                             static_cast<int64_t>(s.accepted));
          rows->emplace_back("server.rejected_busy",
                             static_cast<int64_t>(s.rejected_busy));
          rows->emplace_back("server.sessions_open",
                             static_cast<int64_t>(s.sessions_open));
          rows->emplace_back("server.sessions_peak",
                             static_cast<int64_t>(s.sessions_peak));
          rows->emplace_back("server.frames", static_cast<int64_t>(s.frames));
          rows->emplace_back("server.frame_errors",
                             static_cast<int64_t>(s.frame_errors));
          rows->emplace_back("server.idle_timeouts",
                             static_cast<int64_t>(s.idle_timeouts));
        });

    std::string body;
    while (!stopping_.load()) {
      if (opts_.idle_timeout_ms > 0) {
        pollfd pfd{fd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, static_cast<int>(opts_.idle_timeout_ms));
        if (pr == 0) {
          idle_timeouts_.fetch_add(1);
          break;
        }
        if (pr < 0) {
          if (errno == EINTR) continue;
          break;
        }
      }
      Status rs = net::ReadFrame(fd, net::kMaxFrameBytes, &body);
      if (!rs.ok()) {
        if (rs.IsNotFound()) break;  // clean EOF
        frame_errors_.fetch_add(1);
        if (rs.IsInvalidArgument()) {
          // Oversized length prefix: the stream is unsynchronized.
          // Tell the peer why, then close.
          std::string frame =
              net::EncodeResponse(net::Op::kGoodbye, rs);
          net::WriteFull(fd, frame.data(), frame.size());
        }
        break;
      }
      frames_.fetch_add(1);
      net::Request req;
      uint8_t raw_op = 0;
      Status ps = net::ParseRequest(Slice(body), &req, &raw_op);
      std::string resp;
      bool close = false;
      if (!ps.ok()) {
        // The frame itself was well-formed, so the stream is still in
        // sync: report the bad request and keep the connection.
        frame_errors_.fetch_add(1);
        resp = net::EncodeResponse(static_cast<net::Op>(raw_op), ps);
      } else {
        resp = session.HandleRequest(req, &close);
      }
      if (!net::WriteFull(fd, resp.data(), resp.size()).ok()) break;
      if (close) break;
    }
  }
  sessions_open_.fetch_sub(1);
  std::lock_guard<std::mutex> g(mu_);
  ::close(fd);
  w->fd = -1;
  w->done = true;
}

}  // namespace server
}  // namespace rewinddb
