// ServerSession: the per-connection state of the network front end.
//
// Each accepted TCP connection gets one ServerSession layered over its
// OWN api::Connection (attached to the shared engine Database), so
// session-scoped settings -- default commit mode, the open transaction
// -- are isolated, while named snapshots route through the server's
// shared registry Connection and are visible to every session.
//
// AS OF and named-snapshot ReadViews are mapped to session-scoped
// u64 handles. The handle table is the ownership root: dropping an
// entry (RELEASE, session death, server shutdown) drops the last
// shared_ptr and deterministically releases the snapshot (side file
// deleted, log anchor unregistered), so an abandoned investigator
// session can never pin retention or the version store forever.
#ifndef REWINDDB_SERVER_SESSION_H_
#define REWINDDB_SERVER_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "api/connection.h"
#include "net/wire.h"
#include "sql/session.h"

namespace rewinddb {
namespace server {

class ServerSession {
 public:
  /// `registry` is the server-wide Connection named snapshots live on;
  /// `server_stats` (may be empty) appends server counters to
  /// SHOW STATS.
  ServerSession(uint64_t id, Database* db, Connection* registry,
                SqlSession::ExtraStatsFn server_stats);

  /// Teardown is deterministic: the open transaction (if any) is
  /// rolled back by ~Txn, every view handle is released, and the
  /// session's Connection releases any snapshot state it minted.
  ~ServerSession() = default;

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Execute one request and return the encoded response frame. Sets
  /// `*close` when the connection must end after the reply (GOODBYE).
  /// Never throws and never leaves partial state: payloads are fully
  /// decoded and validated before any engine call.
  std::string HandleRequest(const net::Request& req, bool* close);

  uint64_t id() const { return id_; }
  size_t open_view_handles() const { return views_.size(); }

 private:
  std::string Respond(net::Op op, const Status& st,
                      const std::string& payload = std::string()) const {
    return net::EncodeResponse(op, st, payload);
  }

  // Per-op bodies: decode payload -> act -> encode response payload.
  Status DoHello(Slice payload, std::string* out);
  Status DoExecute(Slice payload, std::string* out);
  Status DoBegin(std::string* out);
  Status DoCommit(Slice payload);
  Status DoRollback();
  Status DoDml(net::Op op, Slice payload);
  Status DoGet(Slice payload, std::string* out);
  Status DoScan(Slice payload, std::string* out);
  Status DoCount(Slice payload, std::string* out);
  Status DoAsOf(Slice payload, std::string* out);
  Status DoOpenSnapshot(Slice payload, std::string* out);
  Status DoReleaseView(Slice payload);
  Status DoListTables(Slice payload, std::string* out);

  /// Resolve a view handle; kLiveViewHandle materializes a fresh live
  /// view (owned by *live_backing).
  Result<ReadView*> ResolveView(uint64_t handle,
                                std::unique_ptr<ReadView>* live_backing);

  uint64_t id_;
  std::unique_ptr<Connection> conn_;
  SqlSession sql_;
  bool hello_done_ = false;
  Txn txn_;  // at most one open transaction per session
  uint64_t next_handle_ = 1;
  std::map<uint64_t, std::shared_ptr<ReadView>> views_;
};

/// Coerce a wire row toward the given column types: integer widths
/// widen/narrow (with range checks), integers promote to double.
/// Anything lossy or cross-kind is InvalidArgument. `row` may be a
/// prefix of `types` (scan bounds); extra values are InvalidArgument.
Status CoerceRowToTypes(const std::vector<ColumnType>& types, Row* row);

}  // namespace server
}  // namespace rewinddb

#endif  // REWINDDB_SERVER_SESSION_H_
