#include "server/session.h"

#include <cmath>
#include <utility>

namespace rewinddb {
namespace server {

namespace {

/// Server-side ceiling on rows per SCAN response; the `more` flag tells
/// the client to continue from the last key. Keeps any response frame
/// well under net::kMaxFrameBytes.
constexpr uint32_t kMaxScanRows = 65536;
constexpr size_t kMaxScanBytes = 4u << 20;

bool GetString(Decoder* dec, std::string* out) {
  Slice s;
  if (!dec->GetLengthPrefixed(&s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

bool GetU8(Decoder* dec, uint8_t* out) {
  Slice b;
  if (!dec->GetBytes(1, &b)) return false;
  *out = static_cast<uint8_t>(b.data()[0]);
  return true;
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

/// Rough serialized size of a row, used to bound SCAN responses.
size_t ApproxRowBytes(const Row& row) {
  size_t n = 2;
  for (const Value& v : row) {
    n += v.type() == ColumnType::kString ? 5 + v.AsString().size() : 9;
  }
  return n;
}

net::Rowset RowsetOf(const Schema& schema) {
  net::Rowset rs;
  rs.columns.reserve(schema.num_columns());
  for (const Column& c : schema.columns()) rs.columns.push_back({c.name, c.type});
  return rs;
}

}  // namespace

Status CoerceRowToTypes(const std::vector<ColumnType>& types, Row* row) {
  if (row->size() > types.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row->size()) + " values but the type " +
        "list has only " + std::to_string(types.size()));
  }
  for (size_t i = 0; i < row->size(); i++) {
    Value& v = (*row)[i];
    if (v.type() == types[i]) continue;
    switch (types[i]) {
      case ColumnType::kInt64:
        if (v.type() == ColumnType::kInt32) {
          v = Value(static_cast<int64_t>(v.AsInt32()));
          continue;
        }
        break;
      case ColumnType::kInt32:
        if (v.type() == ColumnType::kInt64) {
          int64_t x = v.AsInt64();
          if (x >= INT32_MIN && x <= INT32_MAX) {
            v = Value(static_cast<int32_t>(x));
            continue;
          }
          return Status::InvalidArgument(
              "value " + std::to_string(x) + " overflows int32 column " +
              std::to_string(i));
        }
        break;
      case ColumnType::kDouble:
        if (v.type() == ColumnType::kInt32) {
          v = Value(static_cast<double>(v.AsInt32()));
          continue;
        }
        if (v.type() == ColumnType::kInt64) {
          // Only exact promotions: 2^53+1 silently losing a ULP is a
          // data bug, not a convenience.
          int64_t x = v.AsInt64();
          double d = static_cast<double>(x);
          if (static_cast<int64_t>(d) == x) {
            v = Value(d);
            continue;
          }
          return Status::InvalidArgument(
              "value " + std::to_string(x) +
              " is not exactly representable as double (column " +
              std::to_string(i) + ")");
        }
        break;
      case ColumnType::kString:
      case ColumnType::kNull:
        break;  // NULL never coerces into a storable column
    }
    return Status::InvalidArgument(
        std::string("type mismatch at column ") + std::to_string(i) +
        ": got " + ColumnTypeName(v.type()) + ", column is " +
        ColumnTypeName(types[i]));
  }
  return Status::OK();
}

ServerSession::ServerSession(uint64_t id, Database* db, Connection* registry,
                             SqlSession::ExtraStatsFn server_stats)
    : id_(id),
      conn_(Connection::Attach(db)),
      sql_(conn_.get(), registry) {
  if (server_stats) sql_.set_extra_stats(std::move(server_stats));
}

std::string ServerSession::HandleRequest(const net::Request& req,
                                         bool* close) {
  *close = false;
  if (!hello_done_ && req.op != net::Op::kHello &&
      req.op != net::Op::kPing && req.op != net::Op::kGoodbye) {
    return Respond(req.op,
                   Status::InvalidArgument("session not established: "
                                           "send HELLO first"));
  }
  std::string out;
  Status st;
  switch (req.op) {
    case net::Op::kHello:
      st = DoHello(req.payload, &out);
      break;
    case net::Op::kExecute:
      st = DoExecute(req.payload, &out);
      break;
    case net::Op::kBegin:
      st = DoBegin(&out);
      break;
    case net::Op::kCommit:
      st = DoCommit(req.payload);
      break;
    case net::Op::kRollback:
      st = DoRollback();
      break;
    case net::Op::kInsert:
    case net::Op::kUpdate:
    case net::Op::kDelete:
      st = DoDml(req.op, req.payload);
      break;
    case net::Op::kGet:
      st = DoGet(req.payload, &out);
      break;
    case net::Op::kScan:
      st = DoScan(req.payload, &out);
      break;
    case net::Op::kCount:
      st = DoCount(req.payload, &out);
      break;
    case net::Op::kAsOf:
      st = DoAsOf(req.payload, &out);
      break;
    case net::Op::kOpenSnapshot:
      st = DoOpenSnapshot(req.payload, &out);
      break;
    case net::Op::kReleaseView:
      st = DoReleaseView(req.payload);
      break;
    case net::Op::kListTables:
      st = DoListTables(req.payload, &out);
      break;
    case net::Op::kPing:
      st = Status::OK();
      break;
    case net::Op::kGoodbye:
      st = Status::OK();
      *close = true;
      break;
  }
  if (!st.ok()) out.clear();
  return Respond(req.op, st, out);
}

Status ServerSession::DoHello(Slice payload, std::string* out) {
  if (hello_done_) return Status::InvalidArgument("HELLO already received");
  Decoder dec(payload);
  uint32_t version;
  std::string client;
  if (!dec.GetFixed32(&version) || !GetString(&dec, &client)) {
    return Truncated("HELLO needs u32 version | LP client name");
  }
  if (version != net::kProtocolVersion) {
    return Status::NotSupported(
        "protocol version " + std::to_string(version) +
        " not supported (server speaks " +
        std::to_string(net::kProtocolVersion) + ")");
  }
  hello_done_ = true;
  PutFixed64(out, id_);
  PutLengthPrefixed(out, Slice("RewindDB server, protocol " +
                               std::to_string(net::kProtocolVersion)));
  return Status::OK();
}

Status ServerSession::DoExecute(Slice payload, std::string* out) {
  Decoder dec(payload);
  std::string stmt;
  if (!GetString(&dec, &stmt)) return Truncated("EXECUTE needs LP sql");
  REWIND_ASSIGN_OR_RETURN(SqlResult r, sql_.ExecuteStatement(stmt));
  const size_t mark = out->size();
  PutLengthPrefixed(out, Slice(r.message));
  out->push_back(r.has_rowset ? 1 : 0);
  if (r.has_rowset) {
    net::Rowset rs;
    rs.columns.reserve(r.column_names.size());
    for (size_t i = 0; i < r.column_names.size(); i++) {
      rs.columns.push_back({r.column_names[i], r.column_types[i]});
    }
    rs.rows = std::move(r.rows);
    net::EncodeRowset(rs, out);
    // The frame codec hard-rejects oversize frames on both ends; turn
    // that protocol violation into an actionable statement error.
    // 256 bytes of headroom covers the response envelope (opcode,
    // status byte, message).
    if (out->size() - mark + 256 > net::kMaxFrameBytes) {
      out->resize(mark);
      return Status::OutOfRange(
          "result set of " + std::to_string(rs.rows.size()) +
          " rows exceeds the wire frame limit; add a LIMIT clause or a "
          "narrower projection [statement: \"" + StatementFragment(stmt) +
          "\"]");
    }
  }
  return Status::OK();
}

Status ServerSession::DoBegin(std::string* out) {
  if (txn_.active()) {
    return Status::InvalidArgument(
        "transaction " + std::to_string(txn_.id()) +
        " already open on this session");
  }
  txn_ = conn_->Begin();
  PutFixed64(out, txn_.id());
  return Status::OK();
}

Status ServerSession::DoCommit(Slice payload) {
  Decoder dec(payload);
  uint8_t mode_plus1;
  if (!GetU8(&dec, &mode_plus1)) return Truncated("COMMIT needs u8 mode");
  if (!txn_.active()) {
    return Status::InvalidArgument("no open transaction to commit");
  }
  if (mode_plus1 == 0) return txn_.Commit();
  uint8_t mode = mode_plus1 - 1;
  if (mode > static_cast<uint8_t>(CommitMode::kNone)) {
    return Status::InvalidArgument("unknown commit mode " +
                                   std::to_string(mode_plus1));
  }
  return txn_.Commit(static_cast<CommitMode>(mode));
}

Status ServerSession::DoRollback() {
  if (!txn_.active()) {
    return Status::InvalidArgument("no open transaction to roll back");
  }
  return txn_.Abort();
}

Status ServerSession::DoDml(net::Op op, Slice payload) {
  Decoder dec(payload);
  std::string table;
  Row row;
  if (!GetString(&dec, &table) || !net::DecodeWireRow(&dec, &row)) {
    return Truncated("DML needs LP table | row");
  }
  // Coerce wire values toward the schema before touching the engine:
  // the B-tree keys rows by the memcomparable encoding of typed values,
  // so an int64 where the schema says int32 would otherwise produce
  // wrong key bytes, not an error.
  std::unique_ptr<ReadView> live = conn_->Live();
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> tv,
                          live->OpenTable(table));
  const Schema& schema = tv->schema();
  if (op == net::Op::kDelete) {
    if (row.size() != schema.num_key_columns()) {
      return Status::InvalidArgument(
          "DELETE key has " + std::to_string(row.size()) + " values, table " +
          table + " has " + std::to_string(schema.num_key_columns()) +
          " key columns");
    }
    REWIND_RETURN_IF_ERROR(CoerceRowToTypes(schema.key_types(), &row));
  } else {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(row.size()) + " values, table " +
          table + " has " + std::to_string(schema.num_columns()) +
          " columns");
    }
    REWIND_RETURN_IF_ERROR(CoerceRowToTypes(schema.types(), &row));
  }

  const bool autocommit = !txn_.active();
  Txn local;
  Txn& txn = autocommit ? (local = conn_->Begin(), local) : txn_;
  Status st;
  switch (op) {
    case net::Op::kInsert:
      st = conn_->Insert(txn, table, row);
      break;
    case net::Op::kUpdate:
      st = conn_->Update(txn, table, row);
      break;
    default:
      st = conn_->Delete(txn, table, row);
      break;
  }
  if (!st.ok()) return st;  // ~local aborts the autocommit txn
  if (autocommit) return local.Commit();
  return Status::OK();
}

Result<ReadView*> ServerSession::ResolveView(
    uint64_t handle, std::unique_ptr<ReadView>* live_backing) {
  if (handle == net::kLiveViewHandle) {
    // Reads inside an open transaction see (and lock under) it.
    *live_backing = txn_.active() ? conn_->Live(txn_) : conn_->Live();
    return live_backing->get();
  }
  auto it = views_.find(handle);
  if (it == views_.end()) {
    return Status::NotFound("unknown view handle " + std::to_string(handle));
  }
  return it->second.get();
}

Status ServerSession::DoGet(Slice payload, std::string* out) {
  Decoder dec(payload);
  uint64_t handle;
  std::string table;
  Row key;
  if (!dec.GetFixed64(&handle) || !GetString(&dec, &table) ||
      !net::DecodeWireRow(&dec, &key)) {
    return Truncated("GET needs u64 view | LP table | key row");
  }
  std::unique_ptr<ReadView> live;
  REWIND_ASSIGN_OR_RETURN(ReadView * view, ResolveView(handle, &live));
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> tv,
                          view->OpenTable(table));
  const Schema& schema = tv->schema();
  if (key.size() != schema.num_key_columns()) {
    return Status::InvalidArgument(
        "GET key has " + std::to_string(key.size()) + " values, table " +
        table + " has " + std::to_string(schema.num_key_columns()) +
        " key columns");
  }
  REWIND_RETURN_IF_ERROR(CoerceRowToTypes(schema.key_types(), &key));
  REWIND_ASSIGN_OR_RETURN(Row row, tv->Get(key));
  net::Rowset rs = RowsetOf(schema);
  rs.rows.push_back(std::move(row));
  net::EncodeRowset(rs, out);
  return Status::OK();
}

Status ServerSession::DoScan(Slice payload, std::string* out) {
  Decoder dec(payload);
  uint64_t handle;
  std::string table;
  uint8_t has_lower, has_upper;
  std::optional<Row> lower, upper;
  if (!dec.GetFixed64(&handle) || !GetString(&dec, &table) ||
      !GetU8(&dec, &has_lower)) {
    return Truncated("SCAN needs u64 view | LP table | bounds | u32 limit");
  }
  if (has_lower) {
    Row r;
    if (!net::DecodeWireRow(&dec, &r)) return Truncated("SCAN lower bound");
    lower = std::move(r);
  }
  if (!GetU8(&dec, &has_upper)) return Truncated("SCAN upper-bound flag");
  if (has_upper) {
    Row r;
    if (!net::DecodeWireRow(&dec, &r)) return Truncated("SCAN upper bound");
    upper = std::move(r);
  }
  uint32_t limit;
  if (!dec.GetFixed32(&limit)) return Truncated("SCAN limit");
  if (limit == 0 || limit > kMaxScanRows) limit = kMaxScanRows;

  std::unique_ptr<ReadView> live;
  REWIND_ASSIGN_OR_RETURN(ReadView * view, ResolveView(handle, &live));
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> tv,
                          view->OpenTable(table));
  const Schema& schema = tv->schema();
  std::vector<ColumnType> key_types = schema.key_types();
  if (lower) REWIND_RETURN_IF_ERROR(CoerceRowToTypes(key_types, &*lower));
  if (upper) REWIND_RETURN_IF_ERROR(CoerceRowToTypes(key_types, &*upper));

  net::Rowset rs = RowsetOf(schema);
  size_t bytes = 0;
  bool more = false;
  Status st = tv->Scan(lower, upper, [&](const Row& row) {
    if (rs.rows.size() >= limit || bytes >= kMaxScanBytes) {
      more = true;
      return false;
    }
    bytes += ApproxRowBytes(row);
    rs.rows.push_back(row);
    return true;
  });
  REWIND_RETURN_IF_ERROR(st);
  out->push_back(more ? 1 : 0);
  net::EncodeRowset(rs, out);
  return Status::OK();
}

Status ServerSession::DoCount(Slice payload, std::string* out) {
  Decoder dec(payload);
  uint64_t handle;
  std::string table;
  if (!dec.GetFixed64(&handle) || !GetString(&dec, &table)) {
    return Truncated("COUNT needs u64 view | LP table");
  }
  std::unique_ptr<ReadView> live;
  REWIND_ASSIGN_OR_RETURN(ReadView * view, ResolveView(handle, &live));
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> tv,
                          view->OpenTable(table));
  REWIND_ASSIGN_OR_RETURN(uint64_t n, tv->Count());
  PutFixed64(out, n);
  return Status::OK();
}

Status ServerSession::DoAsOf(Slice payload, std::string* out) {
  Decoder dec(payload);
  uint64_t micros;
  if (!dec.GetFixed64(&micros)) return Truncated("AS OF needs u64 micros");
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<ReadView> view,
                          conn_->AsOf(micros));
  REWIND_RETURN_IF_ERROR(view->WaitReady());
  uint64_t handle = next_handle_++;
  uint64_t as_of = view->as_of();
  views_[handle] = std::move(view);
  PutFixed64(out, handle);
  PutFixed64(out, as_of);
  return Status::OK();
}

Status ServerSession::DoOpenSnapshot(Slice payload, std::string* out) {
  Decoder dec(payload);
  std::string name;
  if (!GetString(&dec, &name)) return Truncated("OPEN SNAPSHOT needs LP name");
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<ReadView> view,
                          sql_.GetSnapshot(name));
  REWIND_RETURN_IF_ERROR(view->WaitReady());
  uint64_t handle = next_handle_++;
  uint64_t as_of = view->as_of();
  views_[handle] = std::move(view);
  PutFixed64(out, handle);
  PutFixed64(out, as_of);
  return Status::OK();
}

Status ServerSession::DoReleaseView(Slice payload) {
  Decoder dec(payload);
  uint64_t handle;
  if (!dec.GetFixed64(&handle)) return Truncated("RELEASE needs u64 handle");
  if (handle == net::kLiveViewHandle) {
    return Status::InvalidArgument("the live view cannot be released");
  }
  if (views_.erase(handle) == 0) {
    return Status::NotFound("unknown view handle " + std::to_string(handle));
  }
  return Status::OK();
}

Status ServerSession::DoListTables(Slice payload, std::string* out) {
  Decoder dec(payload);
  uint64_t handle;
  if (!dec.GetFixed64(&handle)) return Truncated("LIST needs u64 view");
  std::unique_ptr<ReadView> live;
  REWIND_ASSIGN_OR_RETURN(ReadView * view, ResolveView(handle, &live));
  REWIND_ASSIGN_OR_RETURN(std::vector<TableInfo> tables, view->ListTables());
  net::Rowset rs;
  rs.columns = {{"name", ColumnType::kString},
                {"table_id", ColumnType::kInt64},
                {"columns", ColumnType::kInt64},
                {"key_columns", ColumnType::kInt64}};
  rs.rows.reserve(tables.size());
  for (const TableInfo& t : tables) {
    rs.rows.push_back({Value(t.name), Value(static_cast<int64_t>(t.table_id)),
                       Value(static_cast<int64_t>(t.schema.num_columns())),
                       Value(static_cast<int64_t>(t.schema.num_key_columns()))});
  }
  net::EncodeRowset(rs, out);
  return Status::OK();
}

}  // namespace server
}  // namespace rewinddb
