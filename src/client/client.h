// RewindDB C++ client: a blocking TCP client for the network front end
// (src/server/), mirroring the api::Connection surface over the wire
// protocol of src/net/wire.h.
//
//   auto c = *client::Client::Connect("127.0.0.1", port, "myapp");
//   c->Execute("CREATE TABLE t (id INT64, v STRING, PRIMARY KEY (id))");
//   c->Insert("t", {int64_t{1}, std::string("hello")});   // autocommit
//   Row r = *c->Get("t", {int64_t{1}});
//
//   auto past = *c->AsOf(yesterday_micros);   // server-side handle
//   c->Scan("t", ..., past.handle);           // read the past
//   c->ReleaseView(past.handle);              // or just disconnect
//
// One Client is one server session: one socket, one request in flight.
// It is NOT thread-safe; give each thread its own Client (that is the
// point of a multi-user server).
#ifndef REWINDDB_CLIENT_CLIENT_H_
#define REWINDDB_CLIENT_CLIENT_H_

#include <memory>
#include <optional>
#include <string>

#include "net/wire.h"
#include "wal/commit_mode.h"

namespace rewinddb {
namespace client {

class Client {
 public:
  /// Dial the server and perform the HELLO handshake. An over-capacity
  /// server answers with Status::kBusy, which is returned here.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      const std::string& client_name = "rewinddb-client");

  /// Best-effort GOODBYE, then closes the socket. Server-side session
  /// state (open transaction, view handles) dies with the session.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ----------------------------- SQL ---------------------------------
  struct ExecuteResult {
    std::string message;
    bool has_rowset = false;
    net::Rowset rowset;
  };
  Result<ExecuteResult> Execute(const std::string& sql);

  // ------------------------- transactions ----------------------------
  /// Open the session's transaction; returns its server-side id.
  Result<uint64_t> Begin();
  /// Commit at the session default durability (SET COMMIT_MODE).
  Status Commit();
  /// Commit at an explicit durability level.
  Status Commit(CommitMode mode);
  Status Rollback();

  // ------------------------------ DML --------------------------------
  // Inside Begin()..Commit() these join the open transaction; outside,
  // each call autocommits at the session default mode.
  Status Insert(const std::string& table, const Row& row);
  Status Update(const std::string& table, const Row& row);
  Status Delete(const std::string& table, const Row& key_values);

  // ------------------------------ reads ------------------------------
  // `view` selects what to read: net::kLiveViewHandle (the live
  // database, under the open transaction's locks if any) or a handle
  // from AsOf()/OpenSnapshot().
  Result<Row> Get(const std::string& table, const Row& key_values,
                  uint64_t view = net::kLiveViewHandle);

  struct ScanResult {
    bool more = false;  // truncated by limit; continue past the last key
    net::Rowset rowset;
  };
  /// Scan key range [lower, upper); nullopt bounds are open. limit 0
  /// lets the server choose its response cap.
  Result<ScanResult> Scan(const std::string& table,
                          const std::optional<Row>& lower,
                          const std::optional<Row>& upper,
                          uint32_t limit = 0,
                          uint64_t view = net::kLiveViewHandle);
  Result<uint64_t> Count(const std::string& table,
                         uint64_t view = net::kLiveViewHandle);

  // --------------------------- time travel ---------------------------
  struct ViewInfo {
    uint64_t handle = 0;
    uint64_t as_of = 0;  // snapshot boundary, microseconds
  };
  /// Mount an as-of snapshot server-side; the handle is session-scoped
  /// and released by ReleaseView or session death.
  Result<ViewInfo> AsOf(uint64_t micros);
  /// Handle to a named snapshot (CREATE DATABASE ... AS SNAPSHOT).
  Result<ViewInfo> OpenSnapshot(const std::string& name);
  Status ReleaseView(uint64_t handle);

  Result<net::Rowset> ListTables(uint64_t view = net::kLiveViewHandle);

  Status Ping();

  uint64_t session_id() const { return session_id_; }
  const std::string& banner() const { return banner_; }

 private:
  Client(int fd) : fd_(fd) {}

  /// Send one request, read one response; returns the response payload
  /// (owned copy) on OK. IoError/Corruption poison the connection.
  Result<std::string> RoundTrip(net::Op op, const std::string& payload);
  Status SimpleCall(net::Op op, const std::string& payload);
  Result<ViewInfo> ViewCall(net::Op op, const std::string& payload);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::string banner_;
  bool broken_ = false;  // a framing failure desynchronized the stream
};

}  // namespace client
}  // namespace rewinddb

#endif  // REWINDDB_CLIENT_CLIENT_H_
