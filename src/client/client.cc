#include "client/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rewinddb {
namespace client {

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port, const std::string& client_name) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError("connect " + host + ":" +
                               std::to_string(port) + ": " + strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<Client> c(new Client(fd));
  std::string hello;
  PutFixed32(&hello, net::kProtocolVersion);
  PutLengthPrefixed(&hello, Slice(client_name));
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          c->RoundTrip(net::Op::kHello, hello));
  Decoder dec{Slice(reply)};
  Slice banner;
  if (!dec.GetFixed64(&c->session_id_) || !dec.GetLengthPrefixed(&banner)) {
    return Status::Corruption("malformed HELLO reply");
  }
  c->banner_.assign(banner.data(), banner.size());
  return c;
}

Client::~Client() {
  if (fd_ >= 0) {
    if (!broken_) {
      // Best-effort GOODBYE so the server logs a clean departure; the
      // close itself is what tears the session down.
      std::string frame = net::EncodeRequest(net::Op::kGoodbye, session_id_,
                                             std::string());
      net::WriteFull(fd_, frame.data(), frame.size());
    }
    ::close(fd_);
  }
}

Result<std::string> Client::RoundTrip(net::Op op, const std::string& payload) {
  if (fd_ < 0 || broken_) {
    return Status::IoError("connection is closed or desynchronized");
  }
  std::string frame = net::EncodeRequest(op, session_id_, payload);
  Status ws = net::WriteFull(fd_, frame.data(), frame.size());
  if (!ws.ok()) {
    broken_ = true;
    return ws;
  }
  std::string body;
  Status rs = net::ReadFrame(fd_, net::kMaxFrameBytes, &body);
  if (!rs.ok()) {
    broken_ = true;
    if (rs.IsNotFound()) {
      return Status::IoError("server closed the connection");
    }
    return rs;
  }
  net::ResponseView resp;
  Status ps = net::ParseResponse(Slice(body), &resp);
  if (!ps.ok()) {
    broken_ = true;
    return ps;
  }
  if (resp.op != op) {
    // A busy server answers the HELLO it never read with kHello; any
    // other mismatch means the stream lost a frame.
    if (!(op == net::Op::kHello && !resp.status.ok())) {
      broken_ = true;
      return Status::Corruption("response opcode mismatch");
    }
  }
  if (!resp.status.ok()) return resp.status;
  return std::string(resp.payload.data(), resp.payload.size());
}

Status Client::SimpleCall(net::Op op, const std::string& payload) {
  Result<std::string> r = RoundTrip(op, payload);
  return r.ok() ? Status::OK() : r.status();
}

Result<Client::ExecuteResult> Client::Execute(const std::string& sql) {
  std::string payload;
  PutLengthPrefixed(&payload, Slice(sql));
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          RoundTrip(net::Op::kExecute, payload));
  Decoder dec{Slice(reply)};
  Slice msg;
  ExecuteResult out;
  if (!dec.GetLengthPrefixed(&msg)) {
    return Status::Corruption("malformed EXECUTE reply");
  }
  out.message.assign(msg.data(), msg.size());
  Slice flag;
  if (!dec.GetBytes(1, &flag)) {
    return Status::Corruption("malformed EXECUTE reply: missing rowset flag");
  }
  if (flag.data()[0] != 0) {
    out.has_rowset = true;
    if (!net::DecodeRowset(&dec, &out.rowset)) {
      return Status::Corruption("malformed EXECUTE rowset");
    }
  }
  return out;
}

Result<uint64_t> Client::Begin() {
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          RoundTrip(net::Op::kBegin, std::string()));
  Decoder dec{Slice(reply)};
  uint64_t txn_id;
  if (!dec.GetFixed64(&txn_id)) {
    return Status::Corruption("malformed BEGIN reply");
  }
  return txn_id;
}

Status Client::Commit() {
  return SimpleCall(net::Op::kCommit, std::string(1, '\0'));
}

Status Client::Commit(CommitMode mode) {
  std::string payload(1, static_cast<char>(static_cast<uint8_t>(mode) + 1));
  return SimpleCall(net::Op::kCommit, payload);
}

Status Client::Rollback() {
  return SimpleCall(net::Op::kRollback, std::string());
}

namespace {
std::string TableRowPayload(const std::string& table, const Row& row) {
  std::string p;
  PutLengthPrefixed(&p, Slice(table));
  net::EncodeWireRow(row, &p);
  return p;
}
}  // namespace

Status Client::Insert(const std::string& table, const Row& row) {
  return SimpleCall(net::Op::kInsert, TableRowPayload(table, row));
}

Status Client::Update(const std::string& table, const Row& row) {
  return SimpleCall(net::Op::kUpdate, TableRowPayload(table, row));
}

Status Client::Delete(const std::string& table, const Row& key_values) {
  return SimpleCall(net::Op::kDelete, TableRowPayload(table, key_values));
}

Result<Row> Client::Get(const std::string& table, const Row& key_values,
                        uint64_t view) {
  std::string payload;
  PutFixed64(&payload, view);
  PutLengthPrefixed(&payload, Slice(table));
  net::EncodeWireRow(key_values, &payload);
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          RoundTrip(net::Op::kGet, payload));
  Decoder dec{Slice(reply)};
  net::Rowset rs;
  if (!net::DecodeRowset(&dec, &rs) || rs.rows.size() != 1) {
    return Status::Corruption("malformed GET reply");
  }
  return std::move(rs.rows[0]);
}

Result<Client::ScanResult> Client::Scan(const std::string& table,
                                        const std::optional<Row>& lower,
                                        const std::optional<Row>& upper,
                                        uint32_t limit, uint64_t view) {
  std::string payload;
  PutFixed64(&payload, view);
  PutLengthPrefixed(&payload, Slice(table));
  payload.push_back(lower.has_value() ? 1 : 0);
  if (lower) net::EncodeWireRow(*lower, &payload);
  payload.push_back(upper.has_value() ? 1 : 0);
  if (upper) net::EncodeWireRow(*upper, &payload);
  PutFixed32(&payload, limit);
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          RoundTrip(net::Op::kScan, payload));
  Decoder dec{Slice(reply)};
  Slice more;
  ScanResult out;
  if (!dec.GetBytes(1, &more) || !net::DecodeRowset(&dec, &out.rowset)) {
    return Status::Corruption("malformed SCAN reply");
  }
  out.more = more.data()[0] != 0;
  return out;
}

Result<uint64_t> Client::Count(const std::string& table, uint64_t view) {
  std::string payload;
  PutFixed64(&payload, view);
  PutLengthPrefixed(&payload, Slice(table));
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          RoundTrip(net::Op::kCount, payload));
  Decoder dec{Slice(reply)};
  uint64_t n;
  if (!dec.GetFixed64(&n)) return Status::Corruption("malformed COUNT reply");
  return n;
}

Result<Client::ViewInfo> Client::ViewCall(net::Op op,
                                          const std::string& payload) {
  REWIND_ASSIGN_OR_RETURN(std::string reply, RoundTrip(op, payload));
  Decoder dec{Slice(reply)};
  ViewInfo v;
  if (!dec.GetFixed64(&v.handle) || !dec.GetFixed64(&v.as_of)) {
    return Status::Corruption("malformed view reply");
  }
  return v;
}

Result<Client::ViewInfo> Client::AsOf(uint64_t micros) {
  std::string payload;
  PutFixed64(&payload, micros);
  return ViewCall(net::Op::kAsOf, payload);
}

Result<Client::ViewInfo> Client::OpenSnapshot(const std::string& name) {
  std::string payload;
  PutLengthPrefixed(&payload, Slice(name));
  return ViewCall(net::Op::kOpenSnapshot, payload);
}

Status Client::ReleaseView(uint64_t handle) {
  std::string payload;
  PutFixed64(&payload, handle);
  return SimpleCall(net::Op::kReleaseView, payload);
}

Result<net::Rowset> Client::ListTables(uint64_t view) {
  std::string payload;
  PutFixed64(&payload, view);
  REWIND_ASSIGN_OR_RETURN(std::string reply,
                          RoundTrip(net::Op::kListTables, payload));
  Decoder dec{Slice(reply)};
  net::Rowset rs;
  if (!net::DecodeRowset(&dec, &rs)) {
    return Status::Corruption("malformed LIST TABLES reply");
  }
  return rs;
}

Status Client::Ping() { return SimpleCall(net::Op::kPing, std::string()); }

}  // namespace client
}  // namespace rewinddb
