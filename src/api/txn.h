// RAII transaction handle: the public write-side unit of the API.
//
// A Txn is obtained from Connection::Begin(). It must be explicitly
// Commit()ed; a Txn that goes out of scope while still active is
// aborted, so an early return or an exception can never leak a
// half-done transaction holding row locks.
#ifndef REWINDDB_API_TXN_H_
#define REWINDDB_API_TXN_H_

#include "common/status.h"
#include "common/types.h"
#include "wal/commit_mode.h"

namespace rewinddb {

class Database;
struct Transaction;

class Txn {
 public:
  /// Empty handle; active() is false.
  Txn() = default;
  /// Wraps a running engine transaction. Normally called by
  /// Connection::Begin(), but available for engine-level interop.
  Txn(Database* db, Transaction* txn);

  /// Auto-abort: rolls the transaction back if still active.
  ~Txn();

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  Txn(Txn&& other) noexcept;
  Txn& operator=(Txn&& other) noexcept;

  /// Commit at the session's default durability level (the engine
  /// default, or what Connection::SetDefaultCommitMode chose). The
  /// handle becomes inactive whatever the outcome.
  Status Commit();

  /// Commit at an explicit durability level: kSync fsyncs in this
  /// thread, kGroup (default) parks on the group-commit pipeline,
  /// kAsync/kNone return before the commit record is durable.
  Status Commit(CommitMode mode);

  /// Explicit rollback (the destructor does this implicitly).
  Status Abort();

  bool active() const { return txn_ != nullptr; }

  /// Engine transaction id; survives Commit() so the caller can later
  /// hand it to Connection::Flashback().
  TxnId id() const { return id_; }

  /// Borrow the engine descriptor (nullptr once finished). For interop
  /// with engine-level surfaces such as Table.
  Transaction* raw() const { return txn_; }

 private:
  void Release();

  Database* db_ = nullptr;
  Transaction* txn_ = nullptr;
  TxnId id_ = kInvalidTxnId;
};

}  // namespace rewinddb

#endif  // REWINDDB_API_TXN_H_
