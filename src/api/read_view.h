// The unified time-travel query surface (the paper's §5–§8 made into an
// API): a ReadView is "a database you can read", whether that is
//
//   * the live database, untracked (read-committed-ish point reads),
//   * the live database under a transaction's two-phase row locks, or
//   * an as-of snapshot of an arbitrary wall-clock time within the
//     retention period.
//
// Every view hands out TableViews with the same Get/Scan/IndexScan/
// Count signatures, so a query written once runs unchanged against the
// present or the past -- which is the paper's whole point: point-in-time
// queries should look like ordinary queries.
#ifndef REWINDDB_API_READ_VIEW_H_
#define REWINDDB_API_READ_VIEW_H_

#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/value.h"

namespace rewinddb {

class AsOfSnapshot;
class Database;
struct Transaction;

/// Read-only handle to one table of a ReadView.
class TableView {
 public:
  using RowCallback = std::function<bool(const Row&)>;

  virtual ~TableView() = default;

  virtual const Schema& schema() const = 0;
  virtual const TableInfo& info() const = 0;
  virtual const std::vector<IndexInfo>& indexes() const = 0;

  /// Point lookup by key values (a Row of the key columns).
  virtual Result<Row> Get(const Row& key_values) = 0;

  /// Scan rows with key in [lower, upper) in key order; nullopt bounds
  /// are open. The callback returns false to stop early.
  virtual Status Scan(const std::optional<Row>& lower,
                      const std::optional<Row>& upper,
                      const RowCallback& cb) = 0;

  /// Equality lookup through a secondary index: `prefix_values` are
  /// values for (a prefix of) the index's key columns.
  virtual Status IndexScan(const std::string& index_name,
                           const Row& prefix_values,
                           const RowCallback& cb) = 0;

  /// Row count (O(n) in the worst case).
  virtual Result<uint64_t> Count() = 0;
};

/// A queryable, transactionally consistent view of the database: live,
/// or as of a point in time.
class ReadView {
 public:
  virtual ~ReadView() = default;

  virtual Result<std::unique_ptr<TableView>> OpenTable(
      const std::string& name) = 0;
  virtual Result<std::vector<TableInfo>> ListTables() = 0;

  /// True for as-of snapshot views.
  virtual bool is_snapshot() const = 0;

  /// Snapshot boundary wall-clock (microseconds); 0 for live views.
  virtual WallClock as_of() const { return 0; }

  /// Snapshot views: block until the background undo of in-flight
  /// transactions finishes (queries are correct before that, just
  /// gated). Live views: no-op.
  virtual Status WaitReady() { return Status::OK(); }
};

/// Live view over `db`. With `txn`, reads run under that transaction's
/// two-phase row locks (repeatable); with nullptr, reads are untracked.
/// Borrows both pointers: the view must not outlive them.
std::unique_ptr<ReadView> WrapLive(Database* db, Transaction* txn = nullptr);

/// As-of view borrowing an engine-owned snapshot. The view must not
/// outlive `snap`; snapshot lifecycle stays with the caller. Prefer
/// Connection::AsOf / Connection::Snapshot, which own the lifetime.
std::unique_ptr<ReadView> WrapSnapshot(AsOfSnapshot* snap);

namespace api_internal {

/// Shared ownership cell behind Connection's snapshot handles. The
/// snapshot can be released deterministically (DROP DATABASE) while
/// outstanding ReadView/TableView handles stay safe: they take `mu`
/// shared for the duration of each call and fail cleanly once `snap`
/// is null.
struct SnapshotState {
  SnapshotState();
  ~SnapshotState();

  std::shared_mutex mu;
  std::unique_ptr<AsOfSnapshot> owned;  // engine object (null if borrowed)
  AsOfSnapshot* snap = nullptr;         // null once dropped
};

/// Wrap an owned snapshot into a state cell.
std::shared_ptr<SnapshotState> AdoptSnapshot(
    std::unique_ptr<AsOfSnapshot> snap);

/// A ReadView sharing ownership of `state`.
std::shared_ptr<ReadView> ViewOf(std::shared_ptr<SnapshotState> state);

/// Deterministically destroy the snapshot behind `state`: waits out
/// in-flight reads, joins the background undo, deletes the side file.
/// Handles that survive return Status::Aborted afterwards.
Status ReleaseSnapshot(SnapshotState* state);

}  // namespace api_internal

}  // namespace rewinddb

#endif  // REWINDDB_API_READ_VIEW_H_
