#include "api/connection.h"

#include "snapshot/asof_snapshot.h"

namespace rewinddb {

Connection::Connection(Database* db)
    : db_(db),
      commit_mode_(db->options().default_commit_mode),
      lazy_mounts_(db->options().lazy_mount) {}

Connection::~Connection() {
  // Every snapshot this Connection minted -- named or anonymous -- is
  // released before the engine: their destructors unregister log
  // anchors and delete side files against `db_`, and their background
  // undo threads read its log. Handles that outlive the Connection
  // then fail with Status::Aborted instead of touching a dead engine.
  std::map<std::string, std::shared_ptr<api_internal::SnapshotState>> snaps;
  std::vector<std::weak_ptr<api_internal::SnapshotState>> anon;
  {
    std::lock_guard<std::mutex> g(mu_);
    snaps.swap(snapshots_);
    anon.swap(anon_states_);
  }
  for (auto& [name, state] : snaps) {
    Status s = api_internal::ReleaseSnapshot(state.get());
    (void)s;
  }
  for (auto& weak : anon) {
    if (auto state = weak.lock()) {
      Status s = api_internal::ReleaseSnapshot(state.get());
      (void)s;
    }
  }
}

Result<std::unique_ptr<Connection>> Connection::Create(const std::string& dir,
                                                       DatabaseOptions opts) {
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Create(dir, opts));
  std::unique_ptr<Connection> conn(new Connection(db.get()));
  conn->owned_ = std::move(db);
  return conn;
}

Result<std::unique_ptr<Connection>> Connection::Open(const std::string& dir,
                                                     DatabaseOptions opts) {
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(dir, opts));
  std::unique_ptr<Connection> conn(new Connection(db.get()));
  conn->owned_ = std::move(db);
  return conn;
}

std::unique_ptr<Connection> Connection::Attach(Database* db) {
  return std::unique_ptr<Connection>(new Connection(db));
}

Txn Connection::Begin() {
  Transaction* txn = db_->Begin();
  txn->commit_mode = commit_mode_.load(std::memory_order_relaxed);
  return Txn(db_, txn);
}

void Connection::SetDefaultCommitMode(CommitMode mode) {
  commit_mode_.store(mode, std::memory_order_relaxed);
}

CommitMode Connection::default_commit_mode() const {
  return commit_mode_.load(std::memory_order_relaxed);
}

void Connection::SetLazyMounts(bool lazy) {
  lazy_mounts_.store(lazy, std::memory_order_relaxed);
}

bool Connection::lazy_mounts() const {
  return lazy_mounts_.load(std::memory_order_relaxed);
}

LazyMountCounters Connection::LazyMountStats() const {
  return db_->lazy_mount_counters();
}

VersionStore::Stats Connection::VersionStoreStats() const {
  return db_->version_store()->stats();
}

BufferManager::Stats Connection::BufferStats() const {
  return db_->buffers()->stats();
}

Status Connection::RunDdl(const std::function<Status(Transaction*)>& body) {
  Transaction* txn = db_->Begin();
  // DDL honours the session's durability level too (SET COMMIT_MODE).
  txn->commit_mode = commit_mode_.load(std::memory_order_relaxed);
  Status s = body(txn);
  if (!s.ok()) {
    Status a = db_->Abort(txn);
    (void)a;
    return s;
  }
  REWIND_RETURN_IF_ERROR(db_->Commit(txn));
  // Descriptors may have changed (new table, dropped table, index list
  // of a table altered); drop the whole cache rather than tracking
  // which entries a statement touched.
  std::lock_guard<std::mutex> g(mu_);
  table_cache_.clear();
  return Status::OK();
}

Status Connection::CreateTable(const std::string& name, const Schema& schema) {
  return RunDdl(
      [&](Transaction* txn) { return db_->CreateTable(txn, name, schema); });
}

Status Connection::DropTable(const std::string& name) {
  return RunDdl([&](Transaction* txn) { return db_->DropTable(txn, name); });
}

Status Connection::CreateIndex(const std::string& index_name,
                               const std::string& table_name,
                               const std::vector<std::string>& columns) {
  return RunDdl([&](Transaction* txn) {
    return db_->CreateIndex(txn, index_name, table_name, columns);
  });
}

Status Connection::DropIndex(const std::string& index_name) {
  return RunDdl(
      [&](Transaction* txn) { return db_->DropIndex(txn, index_name); });
}

Result<std::shared_ptr<Table>> Connection::ResolveTable(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = table_cache_.find(name);
    if (it != table_cache_.end()) return it->second;
  }
  REWIND_ASSIGN_OR_RETURN(Table table, db_->OpenTable(name));
  auto handle = std::make_shared<Table>(std::move(table));
  std::lock_guard<std::mutex> g(mu_);
  table_cache_[name] = handle;
  return handle;
}

namespace {
Status RequireActive(const Txn& txn) {
  if (!txn.active()) {
    return Status::InvalidArgument("transaction already finished");
  }
  return Status::OK();
}
}  // namespace

Status Connection::Insert(Txn& txn, const std::string& table,
                          const Row& row) {
  REWIND_RETURN_IF_ERROR(RequireActive(txn));
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, ResolveTable(table));
  return t->Insert(txn.raw(), row);
}

Status Connection::Update(Txn& txn, const std::string& table,
                          const Row& row) {
  REWIND_RETURN_IF_ERROR(RequireActive(txn));
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, ResolveTable(table));
  return t->Update(txn.raw(), row);
}

Status Connection::Delete(Txn& txn, const std::string& table,
                          const Row& key_values) {
  REWIND_RETURN_IF_ERROR(RequireActive(txn));
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, ResolveTable(table));
  return t->Delete(txn.raw(), key_values);
}

Result<Row> Connection::Get(Txn& txn, const std::string& table,
                            const Row& key_values) {
  REWIND_RETURN_IF_ERROR(RequireActive(txn));
  REWIND_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, ResolveTable(table));
  return t->Get(txn.raw(), key_values);
}

std::unique_ptr<ReadView> Connection::Live() { return WrapLive(db_, nullptr); }

std::unique_ptr<ReadView> Connection::Live(const Txn& txn) {
  return WrapLive(db_, txn.raw());
}

Result<std::shared_ptr<ReadView>> Connection::AsOf(WallClock as_of) {
  // The engine-level object-id counter makes the side-file name unique
  // across every Connection attached to this Database, not just ours.
  std::string name = "__asof" + std::to_string(db_->AllocateObjectId());
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<AsOfSnapshot> snap,
      AsOfSnapshot::Create(db_, name, as_of,
                           lazy_mounts() ? MountMode::kLazy
                                         : MountMode::kEager));
  auto state = api_internal::AdoptSnapshot(std::move(snap));
  {
    std::lock_guard<std::mutex> g(mu_);
    // Prune entries whose last handle is already gone, then track the
    // new one for release in ~Connection.
    std::erase_if(anon_states_,
                  [](const auto& weak) { return weak.expired(); });
    anon_states_.push_back(state);
  }
  return api_internal::ViewOf(std::move(state));
}

Status Connection::CreateSnapshot(const std::string& name, WallClock as_of) {
  if (name.rfind("__asof", 0) == 0) {
    return Status::InvalidArgument(
        "snapshot names starting with '__asof' are reserved");
  }
  {
    // Reserve the name BEFORE the expensive create: two racing
    // creators of one name would otherwise truncate and then delete
    // each other's side file (both map to dir/<name>.side).
    std::lock_guard<std::mutex> g(mu_);
    if (snapshots_.count(name) || creating_.count(name)) {
      return Status::AlreadyExists("snapshot '" + name + "' exists");
    }
    creating_.insert(name);
  }
  auto snap = AsOfSnapshot::Create(
      db_, name, as_of,
      lazy_mounts() ? MountMode::kLazy : MountMode::kEager);
  std::lock_guard<std::mutex> g(mu_);
  creating_.erase(name);
  if (!snap.ok()) return snap.status();
  snapshots_[name] = api_internal::AdoptSnapshot(std::move(*snap));
  return Status::OK();
}

Result<std::shared_ptr<ReadView>> Connection::Snapshot(
    const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("snapshot '" + name + "' not found");
  }
  return api_internal::ViewOf(it->second);
}

Status Connection::DropSnapshot(const std::string& name) {
  std::shared_ptr<api_internal::SnapshotState> state;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = snapshots_.find(name);
    if (it == snapshots_.end()) {
      return Status::NotFound("snapshot '" + name + "' not found");
    }
    state = std::move(it->second);
    snapshots_.erase(it);
  }
  // Outside mu_: releasing waits for in-flight reads on this snapshot
  // and must not block unrelated Connection calls meanwhile.
  return api_internal::ReleaseSnapshot(state.get());
}

std::vector<std::string> Connection::ListSnapshots() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> names;
  names.reserve(snapshots_.size());
  for (const auto& [name, state] : snapshots_) names.push_back(name);
  return names;
}

Result<FlashbackResult> Connection::Flashback(TxnId victim) {
  return FlashbackTransaction(db_, victim);
}

Status Connection::SetRetention(uint64_t micros) {
  return db_->SetUndoInterval(micros);
}

uint64_t Connection::retention_micros() const {
  return db_->undo_interval_micros();
}

Status Connection::EnforceRetention() { return db_->EnforceRetention(); }

Status Connection::Checkpoint() { return db_->Checkpoint(); }

Status Connection::FuzzyCheckpoint() { return db_->FuzzyCheckpoint(); }

wal::ArchiveStats Connection::ArchiveStats() const {
  wal::ArchiveManager* archive = db_->log()->archive();
  return archive != nullptr ? archive->stats() : wal::ArchiveStats();
}

Clock* Connection::clock() const { return db_->clock(); }

}  // namespace rewinddb
