#include "api/read_view.h"

#include "engine/database.h"
#include "engine/table.h"
#include "snapshot/asof_snapshot.h"

namespace rewinddb {

namespace {

// ------------------------------ live ---------------------------------

class LiveTableView : public TableView {
 public:
  LiveTableView(Table table, Transaction* txn)
      : table_(std::move(table)), txn_(txn) {}

  const Schema& schema() const override { return table_.schema(); }
  const TableInfo& info() const override { return table_.info(); }
  const std::vector<IndexInfo>& indexes() const override {
    return table_.indexes();
  }

  Result<Row> Get(const Row& key_values) override {
    return table_.Get(txn_, key_values);
  }
  Status Scan(const std::optional<Row>& lower, const std::optional<Row>& upper,
              const RowCallback& cb) override {
    return table_.Scan(txn_, lower, upper, cb);
  }
  Status IndexScan(const std::string& index_name, const Row& prefix_values,
                   const RowCallback& cb) override {
    return table_.IndexScan(txn_, index_name, prefix_values, cb);
  }
  Result<uint64_t> Count() override { return table_.Count(); }

 private:
  Table table_;
  Transaction* txn_;
};

class LiveReadView : public ReadView {
 public:
  LiveReadView(Database* db, Transaction* txn) : db_(db), txn_(txn) {}

  Result<std::unique_ptr<TableView>> OpenTable(
      const std::string& name) override {
    REWIND_ASSIGN_OR_RETURN(Table table, db_->OpenTable(name));
    return std::unique_ptr<TableView>(
        new LiveTableView(std::move(table), txn_));
  }
  Result<std::vector<TableInfo>> ListTables() override {
    return db_->catalog()->ListTables();
  }
  bool is_snapshot() const override { return false; }

 private:
  Database* db_;
  Transaction* txn_;
};

// ---------------------------- snapshot -------------------------------

using api_internal::SnapshotState;

Status SnapshotGone() {
  return Status::Aborted("snapshot has been dropped");
}

class SnapshotTableView : public TableView {
 public:
  SnapshotTableView(std::shared_ptr<SnapshotState> state, SnapshotTable table)
      : state_(std::move(state)), table_(std::move(table)) {}

  // Descriptors were resolved at OpenTable time and stay valid after a
  // drop; only page-touching operations need the snapshot alive.
  const Schema& schema() const override { return table_.schema(); }
  const TableInfo& info() const override { return table_.info(); }
  const std::vector<IndexInfo>& indexes() const override {
    return table_.indexes();
  }

  Result<Row> Get(const Row& key_values) override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    return table_.Get(key_values);
  }
  Status Scan(const std::optional<Row>& lower, const std::optional<Row>& upper,
              const RowCallback& cb) override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    return table_.Scan(lower, upper, cb);
  }
  Status IndexScan(const std::string& index_name, const Row& prefix_values,
                   const RowCallback& cb) override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    return table_.IndexScan(index_name, prefix_values, cb);
  }
  Result<uint64_t> Count() override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    return table_.Count();
  }

 private:
  std::shared_ptr<SnapshotState> state_;
  SnapshotTable table_;
};

class SnapshotReadView : public ReadView {
 public:
  explicit SnapshotReadView(std::shared_ptr<SnapshotState> state)
      : state_(std::move(state)) {}

  Result<std::unique_ptr<TableView>> OpenTable(
      const std::string& name) override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    REWIND_ASSIGN_OR_RETURN(SnapshotTable table,
                            state_->snap->OpenTable(name));
    return std::unique_ptr<TableView>(
        new SnapshotTableView(state_, std::move(table)));
  }
  Result<std::vector<TableInfo>> ListTables() override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    return state_->snap->ListTables();
  }
  bool is_snapshot() const override { return true; }
  WallClock as_of() const override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return 0;
    return state_->snap->creation_stats().boundary_time;
  }
  Status WaitReady() override {
    std::shared_lock<std::shared_mutex> l(state_->mu);
    if (state_->snap == nullptr) return SnapshotGone();
    return state_->snap->WaitForUndo();
  }

 private:
  std::shared_ptr<SnapshotState> state_;
};

}  // namespace

std::unique_ptr<ReadView> WrapLive(Database* db, Transaction* txn) {
  return std::make_unique<LiveReadView>(db, txn);
}

std::unique_ptr<ReadView> WrapSnapshot(AsOfSnapshot* snap) {
  auto state = std::make_shared<SnapshotState>();
  state->snap = snap;
  return std::make_unique<SnapshotReadView>(std::move(state));
}

namespace api_internal {

SnapshotState::SnapshotState() = default;
SnapshotState::~SnapshotState() = default;

std::shared_ptr<SnapshotState> AdoptSnapshot(
    std::unique_ptr<AsOfSnapshot> snap) {
  auto state = std::make_shared<SnapshotState>();
  state->snap = snap.get();
  state->owned = std::move(snap);
  return state;
}

std::shared_ptr<ReadView> ViewOf(std::shared_ptr<SnapshotState> state) {
  return std::make_shared<SnapshotReadView>(std::move(state));
}

Status ReleaseSnapshot(SnapshotState* state) {
  std::unique_lock<std::shared_mutex> l(state->mu);
  state->snap = nullptr;
  // ~AsOfSnapshot joins the background undo and deletes the side file.
  state->owned.reset();
  return Status::OK();
}

}  // namespace api_internal

}  // namespace rewinddb
