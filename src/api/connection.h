// Connection: the one front door to a RewindDB database.
//
// Owns (or attaches to) an engine Database and routes everything an
// application does through a single surface:
//
//   auto conn = *Connection::Create(dir);
//   conn->CreateTable("accounts", schema);
//   Txn txn = conn->Begin();
//   conn->Insert(txn, "accounts", {1, "alice", 100.0});
//   txn.Commit();                       // ~Txn aborts if you forget
//
//   auto past = *conn->AsOf(yesterday); // ReadView: the paper's
//   auto t = *past->OpenTable("accounts");  // CREATE DATABASE ... AS
//   t->Scan(...);                           // SNAPSHOT OF ... AS OF
//
//   conn->Flashback(txn_id);            // undo one committed txn
//
// Named-snapshot lifecycle (CREATE/DROP DATABASE through SqlSession)
// and retention control (ALTER DATABASE SET UNDO_INTERVAL) live here
// too, so the SQL layer is a pure parser shim.
#ifndef REWINDDB_API_CONNECTION_H_
#define REWINDDB_API_CONNECTION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/read_view.h"
#include "api/txn.h"
#include "engine/database.h"
#include "engine/flashback.h"
#include "engine/table.h"

namespace rewinddb {

class Connection {
 public:
  /// Create a fresh database in `dir` and connect to it.
  static Result<std::unique_ptr<Connection>> Create(const std::string& dir,
                                                    DatabaseOptions opts = {});

  /// Open an existing database (runs crash recovery if needed).
  static Result<std::unique_ptr<Connection>> Open(const std::string& dir,
                                                  DatabaseOptions opts = {});

  /// Attach to an engine owned elsewhere (benchmarks, tests). The
  /// Database must outlive the Connection.
  static std::unique_ptr<Connection> Attach(Database* db);

  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ------------------------- transactions ----------------------------
  Txn Begin();

  /// Session default durability for commits begun on this Connection
  /// (initially the engine's DatabaseOptions::default_commit_mode).
  /// The SQL statement SET COMMIT_MODE binds here; Txn::Commit(mode)
  /// overrides per transaction.
  void SetDefaultCommitMode(CommitMode mode);
  CommitMode default_commit_mode() const;

  /// Session mount mode for AsOf()/CreateSnapshot() (initially the
  /// engine's DatabaseOptions::lazy_mount). The SQL statement
  /// SET MOUNT_MODE = LAZY | EAGER binds here. Lazy mounts return in
  /// O(1) and recover pages/trees on first access; eager mounts pay
  /// checkpoint + analysis up front. Both serve identical data.
  void SetLazyMounts(bool lazy);
  bool lazy_mounts() const;
  /// Engine-wide lazy-mount effectiveness counters (SHOW STATS).
  LazyMountCounters LazyMountStats() const;

  // ------------------------------ DDL --------------------------------
  // Each statement runs in its own transaction, committed on success.
  Status CreateTable(const std::string& name, const Schema& schema);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& index_name,
                     const std::string& table_name,
                     const std::vector<std::string>& columns);
  Status DropIndex(const std::string& index_name);

  // ------------------------------ DML --------------------------------
  // Routed by table name; table descriptors are cached until DDL.
  Status Insert(Txn& txn, const std::string& table, const Row& row);
  Status Update(Txn& txn, const std::string& table, const Row& row);
  Status Delete(Txn& txn, const std::string& table, const Row& key_values);
  /// S-locking point read under `txn`.
  Result<Row> Get(Txn& txn, const std::string& table, const Row& key_values);

  // --------------------------- read views ----------------------------
  /// Live view with untracked reads (no locks taken).
  std::unique_ptr<ReadView> Live();
  /// Live view reading under `txn`'s two-phase row locks. The view
  /// borrows the Txn: do not use it after the Txn finishes.
  std::unique_ptr<ReadView> Live(const Txn& txn);

  /// The paper's CREATE DATABASE ... AS SNAPSHOT OF ... AS OF, unnamed:
  /// mounts an as-of snapshot and returns its view. The snapshot lives
  /// exactly as long as handles to it do; the last handle released
  /// deletes the side file. All snapshots created through this
  /// Connection (and any other surface over the same engine) share the
  /// engine's version store, so views at nearby times reuse each
  /// other's page rewinds.
  Result<std::shared_ptr<ReadView>> AsOf(WallClock as_of);

  /// Effectiveness counters of the shared rewind cache behind AsOf /
  /// Snapshot views: exact hits (no chain walk), partial hits (walk
  /// covered only the gap), evictions. See DatabaseOptions::
  /// version_store_bytes for the budget knob.
  VersionStore::Stats VersionStoreStats() const;

  /// Aggregated buffer-pool counters (per-shard hits/misses/evictions
  /// summed across the sharded frame table) of the live engine's pool.
  BufferManager::Stats BufferStats() const;

  /// Named-snapshot lifecycle (the SQL surface binds to these).
  Status CreateSnapshot(const std::string& name, WallClock as_of);
  /// Stable handle to a named snapshot: safe to hold across a drop
  /// (operations fail with Status::Aborted after the snapshot is gone).
  Result<std::shared_ptr<ReadView>> Snapshot(const std::string& name);
  /// Deterministically releases the snapshot: waits out in-flight
  /// reads, stops background undo, deletes the side file.
  Status DropSnapshot(const std::string& name);
  std::vector<std::string> ListSnapshots() const;

  // ------------------------- error recovery --------------------------
  /// Undo one committed transaction (the paper's §8 extension). Atomic:
  /// on conflict with a later transaction nothing changes and
  /// Status::Aborted is returned.
  Result<FlashbackResult> Flashback(TxnId victim);

  // ---------------------- retention / maintenance --------------------
  /// ALTER DATABASE SET UNDO_INTERVAL: how far back AsOf() may reach.
  Status SetRetention(uint64_t micros);
  uint64_t retention_micros() const;
  /// Enforce the retention policy. Without the archive tier this
  /// truncates log outside the retention period (respecting snapshot
  /// anchors and active transactions); with it, old active log is
  /// sealed-then-truncated and the horizon is enforced on archived
  /// segments instead (see DatabaseOptions::archive_dir).
  Status EnforceRetention();
  /// SHARP checkpoint: full dirty-page flush; drains the pool. Prefer
  /// FuzzyCheckpoint() for routine log bounding.
  Status Checkpoint();
  /// FUZZY checkpoint (the SQL CHECKPOINT statement): bounds crash
  /// recovery's analysis scan without blocking writers and, with the
  /// archive tier on, archives + trims the active log. Also taken
  /// automatically every DatabaseOptions::checkpoint_interval_bytes of
  /// WAL.
  Status FuzzyCheckpoint();
  /// Archive-tier counters (segments sealed/dropped, bytes moved,
  /// checksum verifications); all zero when the tier is off.
  wal::ArchiveStats ArchiveStats() const;

  // ----------------------------- interop -----------------------------
  Clock* clock() const;
  /// Escape hatch to the engine for benchmarks and tests.
  Database* engine() const { return db_; }

 private:
  explicit Connection(Database* db);

  Result<std::shared_ptr<Table>> ResolveTable(const std::string& name);
  Status RunDdl(const std::function<Status(Transaction*)>& body);

  std::unique_ptr<Database> owned_;
  Database* db_;
  std::atomic<CommitMode> commit_mode_;
  std::atomic<bool> lazy_mounts_;

  mutable std::mutex mu_;  // guards the four members below
  std::map<std::string, std::shared_ptr<api_internal::SnapshotState>>
      snapshots_;
  /// Names reserved by an in-flight CreateSnapshot, so two racing
  /// creators of one name cannot both build (and then destroy each
  /// other's) side files.
  std::set<std::string> creating_;
  /// Anonymous AsOf() views handed out by this Connection. Tracked so
  /// ~Connection can release them BEFORE the engine it owns goes away;
  /// surviving handles then fail cleanly instead of dereferencing a
  /// dead Database.
  std::vector<std::weak_ptr<api_internal::SnapshotState>> anon_states_;
  std::map<std::string, std::shared_ptr<Table>> table_cache_;
};

}  // namespace rewinddb

#endif  // REWINDDB_API_CONNECTION_H_
