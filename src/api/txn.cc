#include "api/txn.h"

#include "engine/database.h"

namespace rewinddb {

Txn::Txn(Database* db, Transaction* txn)
    : db_(db), txn_(txn), id_(txn != nullptr ? txn->id : kInvalidTxnId) {}

Txn::~Txn() {
  if (txn_ != nullptr) {
    Status s = db_->Abort(txn_);
    (void)s;  // destructor: nowhere to report; locks are released anyway
  }
}

Txn::Txn(Txn&& other) noexcept
    : db_(other.db_), txn_(other.txn_), id_(other.id_) {
  other.txn_ = nullptr;
}

Txn& Txn::operator=(Txn&& other) noexcept {
  if (this != &other) {
    if (txn_ != nullptr) {
      Status s = db_->Abort(txn_);
      (void)s;
    }
    db_ = other.db_;
    txn_ = other.txn_;
    id_ = other.id_;
    other.txn_ = nullptr;
  }
  return *this;
}

Status Txn::Commit() {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("transaction already finished");
  }
  Transaction* t = txn_;
  txn_ = nullptr;
  return db_->Commit(t);
}

Status Txn::Commit(CommitMode mode) {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("transaction already finished");
  }
  Transaction* t = txn_;
  txn_ = nullptr;
  return db_->Commit(t, mode);
}

Status Txn::Abort() {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("transaction already finished");
  }
  Transaction* t = txn_;
  txn_ = nullptr;
  return db_->Abort(t);
}

}  // namespace rewinddb
