// Page allocator over the allocation-map pages.
//
// Implements the paper's re-allocation protocol (section 4.2(1)):
//  * first allocation of a page -> plain FORMAT record (no preformat:
//    "a data page does not contain useful information if it has never
//    been allocated before", so initial load stays cheap);
//  * re-allocation -> read the page's final pre-deallocation image from
//    the store, log a PREFORMAT record carrying that image (splicing
//    the old and new prevPageLSN chains), then FORMAT.
//
// Deallocation logs only the allocation-map bit flip; the page's bytes
// are left untouched on disk, exactly as the paper prescribes ("instead
// of logging pro-actively during de-allocation... the cost is paid at
// re-allocation").
//
// Concurrency: allocation decisions are serialized by the allocation
// map page's exclusive latch (the find-free scan and the bit flip
// happen under one PageGuard), NOT by an allocator-wide mutex held
// across buffer-pool calls. The only allocator mutex (`grow_mu_`)
// guards materializing a new map page, and no caller holds page
// latches when entering the allocator -- together these keep the
// engine's lock order acyclic (frame latch -> buffer shard mutex ->
// WAL), which the TSan CI job checks with detect_deadlocks=1.
#ifndef REWINDDB_ENGINE_ALLOCATOR_H_
#define REWINDDB_ENGINE_ALLOCATOR_H_

#include <atomic>
#include <functional>
#include <mutex>

#include "buffer/buffer_manager.h"
#include "common/result.h"
#include "engine/page_ops.h"
#include "txn/transaction.h"

namespace rewinddb {

/// Superblock (page 0) accessor: boot metadata updated outside logging,
/// like SQL Server's boot page.
struct SuperBlock {
  uint64_t magic;
  Lsn master_checkpoint_lsn;   // analysis starts here after a crash
  uint32_t num_alloc_maps;     // allocation intervals materialized
  uint32_t next_table_id;
  uint64_t undo_interval_micros;  // retention period (section 4.3)
  uint64_t next_txn_id;

  void WriteTo(char* page) const;
  static SuperBlock ReadFrom(const char* page);
  static constexpr uint64_t kMagic = 0x5257444256313031ULL;  // "RWDBV101"
};

class PageAllocator {
 public:
  PageAllocator(BufferManager* buffers, PageOps* ops)
      : buffers_(buffers), ops_(ops) {}

  /// Bootstrap: create the first allocation map page (page 1). Called
  /// once at database creation, inside the bootstrap transaction.
  Status CreateFirstAllocMap(Transaction* txn);

  /// Allocate a page and format it as `type`. Returns the page id; the
  /// caller re-fetches it for its own latching discipline.
  Result<PageId> AllocatePage(Transaction* txn, PageType type, uint8_t level,
                              TreeId tree);

  /// Free a page: flushes its final image (so a later re-allocation can
  /// capture it in a preformat record) and clears its allocated bit.
  Status DeallocatePage(Transaction* txn, PageId id);

  /// True if `id` is currently allocated (tests / consistency checks).
  Result<bool> IsAllocated(PageId id);

  /// Number of allocated pages across all map pages (space accounting).
  Result<uint64_t> CountAllocatedPages();

  void set_num_alloc_maps(uint32_t n) { num_alloc_maps_.store(n); }
  uint32_t num_alloc_maps() const { return num_alloc_maps_.load(); }

  /// Hook invoked when a new allocation map page is materialized so the
  /// database can persist num_alloc_maps in the superblock.
  void set_on_new_map(std::function<void(uint32_t)> cb) {
    on_new_map_ = std::move(cb);
  }

 private:
  Result<PageId> TryAllocateInMap(Transaction* txn, PageId map_id,
                                  PageType type, uint8_t level, TreeId tree);

  BufferManager* buffers_;
  PageOps* ops_;
  /// Serializes materializing a new allocation map page (growth only;
  /// per-map allocation is serialized by the map page latch).
  std::mutex grow_mu_;
  std::atomic<uint32_t> num_alloc_maps_{0};
  std::function<void(uint32_t)> on_new_map_;
};

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_ALLOCATOR_H_
