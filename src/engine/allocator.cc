#include "engine/allocator.h"

#include <cstring>
#include <functional>

#include "page/alloc_page.h"

namespace rewinddb {

void SuperBlock::WriteTo(char* page) const {
  memset(page, 0, kPageSize);
  PageHeader* h = Header(page);
  h->page_id = 0;
  h->type = PageType::kSuper;
  char* p = page + kPageHeaderSize;
  memcpy(p, &magic, 8);
  memcpy(p + 8, &master_checkpoint_lsn, 8);
  memcpy(p + 16, &num_alloc_maps, 4);
  memcpy(p + 20, &next_table_id, 4);
  memcpy(p + 24, &undo_interval_micros, 8);
  memcpy(p + 32, &next_txn_id, 8);
}

SuperBlock SuperBlock::ReadFrom(const char* page) {
  SuperBlock sb;
  const char* p = page + kPageHeaderSize;
  memcpy(&sb.magic, p, 8);
  memcpy(&sb.master_checkpoint_lsn, p + 8, 8);
  memcpy(&sb.num_alloc_maps, p + 16, 4);
  memcpy(&sb.next_table_id, p + 20, 4);
  memcpy(&sb.undo_interval_micros, p + 24, 8);
  memcpy(&sb.next_txn_id, p + 32, 8);
  return sb;
}

Status PageAllocator::CreateFirstAllocMap(Transaction* txn) {
  {
    REWIND_ASSIGN_OR_RETURN(PageGuard map, buffers_->NewPage(1));
    REWIND_RETURN_IF_ERROR(
        ops_->LogFormat(txn, map, 1, PageType::kAllocMap, 0, kInvalidPageId));
  }
  num_alloc_maps_.store(1);
  if (on_new_map_) on_new_map_(1);
  return Status::OK();
}

Result<PageId> PageAllocator::TryAllocateInMap(Transaction* txn, PageId map_id,
                                               PageType type, uint8_t level,
                                               TreeId tree) {
  uint32_t bit;
  bool ever;
  {
    REWIND_ASSIGN_OR_RETURN(PageGuard map,
                            buffers_->FetchPage(map_id, AccessMode::kWrite));
    bit = AllocPage::FindFree(map.data(), 1);
    if (bit == AllocPage::kNoFreeBit) {
      return Status::NotFound("alloc map full");
    }
    ever = AllocPage::EverAllocated(map.data(), bit);
    REWIND_RETURN_IF_ERROR(ops_->LogAllocBits(txn, map, bit, true, true));
  }
  PageId page_id = PageForAllocBit(map_id, bit);

  if (ever) {
    // Re-allocation: capture the previous incarnation's final image in
    // a preformat record before formatting over it (section 4.2(1)).
    char image[kPageSize];
    {
      REWIND_ASSIGN_OR_RETURN(PageGuard old,
                              buffers_->FetchPage(page_id, AccessMode::kRead));
      memcpy(image, old.data(), kPageSize);
    }
    REWIND_ASSIGN_OR_RETURN(PageGuard fresh, buffers_->NewPage(page_id));
    // NewPage wiped the frame; restore the image so LogPreformat reads
    // consistent chain anchors and LogFormat links behind it.
    memcpy(fresh.mutable_data(), image, kPageSize);
    REWIND_RETURN_IF_ERROR(ops_->LogPreformat(txn, fresh, image));
    REWIND_RETURN_IF_ERROR(
        ops_->LogFormat(txn, fresh, page_id, type, level, tree));
  } else {
    // First allocation: no useful prior content, no preformat logging.
    REWIND_ASSIGN_OR_RETURN(PageGuard fresh, buffers_->NewPage(page_id));
    REWIND_RETURN_IF_ERROR(
        ops_->LogFormat(txn, fresh, page_id, type, level, tree));
  }
  return page_id;
}

Result<PageId> PageAllocator::AllocatePage(Transaction* txn, PageType type,
                                           uint8_t level, TreeId tree) {
  // Concurrent allocators racing one map page serialize on its
  // exclusive latch inside TryAllocateInMap; each sees the bits the
  // previous one flipped and takes the next free one.
  for (int round = 0; round < 64; round++) {
    uint32_t maps = num_alloc_maps_.load();
    for (uint32_t i = 0; i < maps; i++) {
      PageId map_id = 1 + i * kPagesPerAllocMap;
      auto r = TryAllocateInMap(txn, map_id, type, level, tree);
      if (r.ok()) return r;
      if (!r.status().IsNotFound()) return r.status();
    }
    // Every interval is full: materialize a new allocation map page.
    std::lock_guard<std::mutex> g(grow_mu_);
    if (num_alloc_maps_.load() != maps) continue;  // lost the race; rescan
    PageId new_map = 1 + maps * kPagesPerAllocMap;
    {
      REWIND_ASSIGN_OR_RETURN(PageGuard map, buffers_->NewPage(new_map));
      REWIND_RETURN_IF_ERROR(ops_->LogFormat(txn, map, new_map,
                                             PageType::kAllocMap, 0,
                                             kInvalidPageId));
    }
    num_alloc_maps_.store(maps + 1);
    if (on_new_map_) on_new_map_(maps + 1);
  }
  return Status::Busy("allocation did not converge");
}

Status PageAllocator::DeallocatePage(Transaction* txn, PageId id) {
  // Flush the final image so the store holds exactly what a future
  // preformat record must capture, then drop the frame.
  REWIND_RETURN_IF_ERROR(buffers_->FlushAndEvict(id));
  PageId map_id = AllocMapPageFor(id);
  uint32_t bit = AllocBitFor(id);
  REWIND_ASSIGN_OR_RETURN(PageGuard map,
                          buffers_->FetchPage(map_id, AccessMode::kWrite));
  if (!AllocPage::IsAllocated(map.data(), bit)) {
    return Status::Corruption("double free of page " + std::to_string(id));
  }
  return ops_->LogAllocBits(txn, map, bit, false, true);
}

Result<bool> PageAllocator::IsAllocated(PageId id) {
  PageId map_id = AllocMapPageFor(id);
  REWIND_ASSIGN_OR_RETURN(PageGuard map,
                          buffers_->FetchPage(map_id, AccessMode::kRead));
  return AllocPage::IsAllocated(map.data(), AllocBitFor(id));
}

Result<uint64_t> PageAllocator::CountAllocatedPages() {
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_alloc_maps_; i++) {
    PageId map_id = 1 + i * kPagesPerAllocMap;
    REWIND_ASSIGN_OR_RETURN(PageGuard map,
                            buffers_->FetchPage(map_id, AccessMode::kRead));
    total += AllocPage::CountAllocated(map.data());
  }
  return total;
}

}  // namespace rewinddb
