#include "engine/read_core.h"

#include "btree/btree.h"
#include "buffer/buffer_manager.h"

namespace rewinddb {

Result<Row> ReadCoreGet(RowGate* gate, const TableInfo& info,
                        const std::vector<ColumnType>& types,
                        const Row& key_values) {
  std::string pk = EncodeKey(key_values, info.schema.num_key_columns());
  REWIND_RETURN_IF_ERROR(gate->BeforePointRead(info.root, pk));
  BTree tree(info.root);
  std::shared_lock<std::shared_mutex> tl(*gate->TreeLatch(info.root));
  REWIND_ASSIGN_OR_RETURN(std::string value, tree.Get(gate->buffers(), pk));
  return DecodeRow(types, value);
}

Status ReadCoreScan(RowGate* gate, const TableInfo& info,
                    const std::vector<ColumnType>& types,
                    const std::optional<Row>& lower,
                    const std::optional<Row>& upper,
                    const std::function<bool(const Row&)>& cb) {
  std::string lo = lower ? EncodeKey(*lower, lower->size()) : std::string();
  std::string hi = upper ? EncodeKey(*upper, upper->size()) : std::string();

  BTree tree(info.root);
  std::string cursor = lo;
  bool done = false;
  Status inner;
  while (!done) {
    ScanOutcome out;
    {
      std::shared_lock<std::shared_mutex> tl(*gate->TreeLatch(info.root));
      auto r = tree.Scan(
          gate->buffers(), cursor, hi, [&](Slice key, Slice value) {
            if (gate->ScanNeedsRowCheck()) {
              auto check = gate->CheckScanRow(info.root, key.ToString());
              if (!check.ok()) {
                inner = check.status();
                return ScanAction::kStop;
              }
              if (*check == RowGate::Check::kYield) {
                return ScanAction::kYield;
              }
            }
            auto row = DecodeRow(types, value);
            if (!row.ok()) {
              inner = row.status();
              return ScanAction::kStop;
            }
            if (!cb(*row)) {
              done = true;
              return ScanAction::kStop;
            }
            return ScanAction::kContinue;
          });
      if (!r.ok()) return r.status();
      out = std::move(*r);
    }
    REWIND_RETURN_IF_ERROR(inner);
    if (!out.yielded) break;
    // Wait with no latches held, then resume at the yielded key
    // (inclusive: the row has not been delivered yet; if the wait made
    // it disappear, the scan simply moves past it).
    REWIND_RETURN_IF_ERROR(gate->AwaitRow(info.root, out.yield_key));
    cursor = out.yield_key;
  }
  return Status::OK();
}

Status ReadCoreIndexScan(RowGate* gate, const TableInfo& info,
                         const std::vector<IndexInfo>& indexes,
                         const std::vector<ColumnType>& types,
                         const std::string& index_name,
                         const Row& prefix_values,
                         const std::function<bool(const Row&)>& cb) {
  const IndexInfo* idx = nullptr;
  for (const IndexInfo& i : indexes) {
    if (i.name == index_name) {
      idx = &i;
      break;
    }
  }
  if (idx == nullptr) {
    return Status::NotFound("index '" + index_name + "' not on this table");
  }
  if (prefix_values.size() > idx->key_columns.size()) {
    return Status::InvalidArgument("prefix longer than index key");
  }
  std::string prefix;
  for (const Value& v : prefix_values) EncodeKeyValue(v, &prefix);

  BTree itree(idx->root);
  std::vector<std::string> pks;
  {
    std::shared_lock<std::shared_mutex> tl(*gate->TreeLatch(idx->root));
    REWIND_ASSIGN_OR_RETURN(
        ScanOutcome out,
        itree.Scan(gate->buffers(), prefix, Slice(),
                   [&](Slice key, Slice value) {
                     if (!key.starts_with(prefix)) return ScanAction::kStop;
                     pks.push_back(value.ToString());
                     return ScanAction::kContinue;
                   }));
    (void)out;
  }
  // Fetch base rows outside the index latch. BeforePointRead makes each
  // fetch safe; a base row gone by the time its gate clears (deleted
  // live, or an in-flight insert's phantom entry undone away on a
  // snapshot) simply no longer qualifies.
  BTree btree(info.root);
  for (const std::string& pk : pks) {
    REWIND_RETURN_IF_ERROR(gate->BeforePointRead(info.root, pk));
    std::string value;
    {
      std::shared_lock<std::shared_mutex> tl(*gate->TreeLatch(info.root));
      auto v = btree.Get(gate->buffers(), pk);
      if (v.status().IsNotFound()) continue;
      if (!v.ok()) return v.status();
      value = std::move(*v);
    }
    REWIND_ASSIGN_OR_RETURN(Row row, DecodeRow(types, value));
    if (!cb(row)) break;
  }
  return Status::OK();
}

Result<uint64_t> ReadCoreCount(RowGate* gate, const TableInfo& info,
                               const std::vector<ColumnType>& types) {
  if (gate->CountNeedsVisibilityScan()) {
    uint64_t n = 0;
    REWIND_RETURN_IF_ERROR(ReadCoreScan(gate, info, types, std::nullopt,
                                        std::nullopt, [&](const Row&) {
                                          n++;
                                          return true;
                                        }));
    return n;
  }
  BTree tree(info.root);
  std::shared_lock<std::shared_mutex> tl(*gate->TreeLatch(info.root));
  return tree.Count(gate->buffers());
}

}  // namespace rewinddb
