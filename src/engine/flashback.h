// Single-transaction undo: the paper's stated future work (§8, "we are
// working on extending our scheme to undo a specific transaction").
//
// Given the id of a COMMITTED transaction, FlashbackTransaction walks
// its prevLSN chain backwards and applies the logical inverse of every
// row operation inside a fresh transaction: inserts are deleted,
// deletes re-inserted, updates restored. Before each inverse the
// current row is compared with the victim's after-image; if a later
// transaction has since re-modified the row, the flashback aborts with
// Status::Aborted (a write-write conflict the application must
// reconcile -- exactly the caveat the paper's §8 anticipates).
#ifndef REWINDDB_ENGINE_FLASHBACK_H_
#define REWINDDB_ENGINE_FLASHBACK_H_

#include "common/result.h"
#include "engine/database.h"

namespace rewinddb {

struct FlashbackResult {
  /// Id of the compensating transaction that was committed.
  TxnId compensating_txn = kInvalidTxnId;
  /// Row operations reversed.
  size_t operations_undone = 0;
};

/// Undo the committed transaction `victim`. The whole flashback is
/// atomic: on any conflict or error the compensating transaction is
/// rolled back and the database is unchanged.
///
/// DEPRECATED as an application surface: call Connection::Flashback
/// (or the SQL statement FLASHBACK TRANSACTION <id>) instead; this free
/// function remains the engine-level implementation underneath both.
///
/// Errors: NotFound if no trace of `victim` is in the retained log,
/// InvalidArgument if `victim` did not commit (aborted or still
/// active), Aborted on a write-write conflict with a later transaction.
Result<FlashbackResult> FlashbackTransaction(Database* db, TxnId victim);

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_FLASHBACK_H_
