#include "engine/parallel_replay.h"

#include <cstdlib>

namespace rewinddb {
namespace replay {

int DefaultReplayThreads() {
  static const int cached = [] {
    const char* env = std::getenv("REWINDDB_REPLAY_THREADS");
    if (env == nullptr || *env == '\0') return 1;
    int n = std::atoi(env);
    if (n < 1) return 1;
    if (n > 64) return 64;
    return n;
  }();
  return cached;
}

PagePool::PagePool(int threads, ApplyFn apply, size_t queue_capacity)
    : capacity_batches_(queue_capacity / kBatchRecords == 0
                            ? 1
                            : queue_capacity / kBatchRecords),
      apply_(std::move(apply)) {
  int n = threads < 1 ? 1 : threads;
  if (n == 1) return;  // inline mode: no queues, no threads
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) queues_.push_back(std::make_unique<Queue>());
  staging_.resize(static_cast<size_t>(n));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

PagePool::~PagePool() {
  Status s = Finish();
  (void)s;
}

void PagePool::Poison(Status s) {
  {
    std::lock_guard<std::mutex> g(error_mu_);
    if (first_error_.ok()) first_error_ = std::move(s);
  }
  failed_.store(true, std::memory_order_release);
  // Unblock a dispatcher parked on any full queue.
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> g(q->mu);
    q->not_full.notify_all();
  }
}

bool PagePool::Dispatch(Lsn lsn, const LogRecord& rec) {
  if (failed_.load(std::memory_order_acquire)) return false;
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    Status s = apply_(0, lsn, rec);
    if (!s.ok()) {
      Poison(std::move(s));
      return false;
    }
    return true;
  }
  size_t w = PagePartition(rec.page_id, queues_.size());
  Batch& pending = staging_[w];
  pending.emplace_back(lsn, rec);
  if (pending.size() < kBatchRecords) return true;
  return PushBatch(w);
}

bool PagePool::PushBatch(size_t w) {
  Queue& q = *queues_[w];
  std::unique_lock<std::mutex> g(q.mu);
  q.not_full.wait(g, [&] {
    return q.batches.size() < capacity_batches_ ||
           failed_.load(std::memory_order_acquire);
  });
  if (failed_.load(std::memory_order_acquire)) return false;
  const bool was_empty = q.batches.empty();
  q.batches.push_back(std::move(staging_[w]));
  staging_[w].clear();
  if (was_empty) q.not_empty.notify_one();
  return true;
}

void PagePool::WorkerLoop(size_t w) {
  Queue& q = *queues_[w];
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> g(q.mu);
      q.not_empty.wait(g, [&] { return !q.batches.empty() || q.closed; });
      if (q.batches.empty()) return;  // closed and drained
      batch = std::move(q.batches.front());
      q.batches.pop_front();
      q.not_full.notify_one();
    }
    for (auto& [lsn, rec] : batch) {
      // A poisoned pool drains without applying, so every worker
      // reaches its closed+empty exit no matter where the failure
      // happened.
      if (failed_.load(std::memory_order_acquire)) break;
      Status s = apply_(w, lsn, rec);
      if (!s.ok()) {
        Poison(std::move(s));
        break;
      }
    }
  }
}

Status PagePool::Finish() {
  if (finished_) {
    std::lock_guard<std::mutex> g(error_mu_);
    return first_error_;
  }
  finished_ = true;
  // Flush the staged partial batches, then close every queue.
  for (size_t w = 0; w < staging_.size(); w++) {
    if (!staging_[w].empty() && !failed_.load(std::memory_order_acquire)) {
      PushBatch(w);
    }
  }
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> g(q->mu);
    q->closed = true;
    q->not_empty.notify_all();
  }
  for (auto& t : workers_) t.join();
  std::lock_guard<std::mutex> g(error_mu_);
  return first_error_;
}

Status ParallelFor(int threads, size_t n,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  size_t workers = threads < 1 ? 1 : static_cast<size_t>(threads);
  if (workers > n) workers = n;
  if (workers == 1) {
    for (size_t i = 0; i < n; i++) {
      REWIND_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; w++) {
    pool.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || failed.load(std::memory_order_acquire)) return;
        Status s = fn(i);
        if (!s.ok()) {
          std::lock_guard<std::mutex> g(error_mu);
          if (first_error.ok()) first_error = std::move(s);
          failed.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  return first_error;
}

}  // namespace replay
}  // namespace rewinddb
