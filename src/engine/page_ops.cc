#include "engine/page_ops.h"

#include <cstring>
#include <utility>

#include "common/page_delta.h"
#include "page/alloc_page.h"
#include "page/slotted_page.h"

namespace rewinddb {

Lsn PageOps::Publish(Transaction* txn, const LogRecord& rec) {
  if (txn != nullptr) {
    Lsn base = kInvalidLsn;
    Lsn lsn = txn->writer.Append(rec, &base);
    txns_->OnAppended(txn, lsn, base);
    return lsn;
  }
  return wal_->Append(rec);
}

Lsn PageOps::AppendChained(Transaction* txn, PageGuard& page,
                           LogRecord* rec) {
  PageHeader* h = Header(page.mutable_data());
  rec->txn_id = txn != nullptr ? txn->id : kInvalidTxnId;
  rec->prev_lsn = txn != nullptr ? txn->last_lsn.load() : kInvalidLsn;
  rec->is_system = txn != nullptr && txn->is_system;
  rec->prev_page_lsn = h->page_lsn;
  rec->prev_fpi_lsn = h->last_fpi_lsn;
  rec->page_id = h->page_id;
  if (rec->tree_id == kInvalidPageId) rec->tree_id = h->tree_id;
  return Publish(txn, *rec);
}

void PageOps::MaybeEmitFpi(Transaction* /*txn*/, PageGuard& page) {
  PageHeader* h = Header(page.mutable_data());
  h->mod_count++;
  if (fpi_period_ == 0 || h->mod_count < fpi_period_) return;

  // Periodic full page image (section 6.1): "the page content at this
  // LSN is exactly `image`". Logged outside any transaction chain; the
  // per-page and per-FPI chains are what the rewinder follows.
  LogRecord fpi;
  fpi.page_id = h->page_id;
  fpi.tree_id = h->tree_id;
  fpi.prev_page_lsn = h->page_lsn;
  fpi.prev_fpi_lsn = h->last_fpi_lsn;

  // WAL-diet delta path: when the page's previous FPI is recent (still
  // inside the configured log window) and its composed image is still
  // cached, log only the byte ranges that changed since. Any miss --
  // window exceeded, cache evicted, chain already at max depth, or a
  // patch that would barely undercut the full image -- falls back to a
  // full kPreformat, which also restarts the chain.
  uint32_t depth = 0;
  bool delta = false;
  if (fpi_delta_window_ > 0 && h->last_fpi_lsn != kInvalidLsn &&
      wal_->next_lsn() - h->last_fpi_lsn <= fpi_delta_window_) {
    std::lock_guard<std::mutex> g(delta_mu_);
    auto it = delta_cache_.find(h->page_id);
    if (it != delta_cache_.end() && it->second.lsn == h->last_fpi_lsn &&
        it->second.depth < kMaxFpiDeltaChain) {
      std::string patch =
          EncodePageDelta(it->second.image.data(), page.data(), kPageSize);
      if (patch.size() + 64 < kPageSize) {
        fpi.type = LogType::kFpiDelta;
        fpi.image = std::move(patch);
        depth = it->second.depth + 1;
        delta = true;
      }
    }
  }
  if (!delta) {
    fpi.type = LogType::kPreformat;
    fpi.image.assign(page.data(), kPageSize);
  }
  if (fpi_delta_window_ > 0) wal_->NoteFpiDelta(delta);
  Lsn lsn = wal_->Append(fpi);
  // Cache the CURRENT content (the image this FPI stands for, composed)
  // as the base for the page's next delta.
  CacheFpiImage(h->page_id, lsn, depth, page.data());
  h->last_fpi_lsn = lsn;
  h->mod_count = 0;
  page.MarkDirty(lsn);
}

void PageOps::CacheFpiImage(PageId id, Lsn lsn, uint32_t depth,
                            const char* image) {
  if (fpi_delta_window_ == 0) return;
  std::lock_guard<std::mutex> g(delta_mu_);
  if (delta_cache_.size() >= kFpiDeltaCacheEntries &&
      delta_cache_.find(id) == delta_cache_.end()) {
    // Evict an arbitrary entry: the cache is an optimization, and any
    // smarter policy would need bookkeeping on the mutation hot path.
    delta_cache_.erase(delta_cache_.begin());
  }
  FpiBase& e = delta_cache_[id];
  e.lsn = lsn;
  e.depth = depth;
  e.image.assign(image, kPageSize);
}

Status PageOps::LogInsert(Transaction* txn, PageGuard& page, uint16_t slot,
                          Slice entry) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.slot = slot;
  rec.image = entry.ToString();
  Lsn lsn = AppendChained(txn, page, &rec);
  REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(page.mutable_data(), slot,
                                               entry));
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogDelete(Transaction* txn, PageGuard& page, uint16_t slot) {
  if (slot >= SlottedPage::SlotCount(page.data())) {
    return Status::Corruption("LogDelete: slot out of range");
  }
  LogRecord rec;
  rec.type = LogType::kDelete;
  rec.slot = slot;
  rec.image = SlottedPage::Record(page.data(), slot).ToString();
  Lsn lsn = AppendChained(txn, page, &rec);
  REWIND_RETURN_IF_ERROR(SlottedPage::RemoveAt(page.mutable_data(), slot));
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogUpdate(Transaction* txn, PageGuard& page, uint16_t slot,
                          Slice entry) {
  if (slot >= SlottedPage::SlotCount(page.data())) {
    return Status::Corruption("LogUpdate: slot out of range");
  }
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.slot = slot;
  rec.image = SlottedPage::Record(page.data(), slot).ToString();
  rec.image2 = entry.ToString();
  Lsn lsn = AppendChained(txn, page, &rec);
  REWIND_RETURN_IF_ERROR(SlottedPage::ReplaceAt(page.mutable_data(), slot,
                                                entry));
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogFormat(Transaction* txn, PageGuard& page, PageId id,
                          PageType type, uint8_t level, TreeId tree) {
  // Capture chain anchors before Init wipes the header. When LogFormat
  // follows LogPreformat, the preformat record is both the previous
  // page record and the newest FPI.
  PageHeader* h = Header(page.mutable_data());
  Lsn prev_page = h->page_lsn;
  Lsn prev_fpi = h->last_fpi_lsn;

  LogRecord rec;
  rec.type = LogType::kFormat;
  rec.page_id = id;
  rec.tree_id = tree;
  rec.fmt_type = static_cast<uint8_t>(type);
  rec.fmt_level = level;
  rec.txn_id = txn != nullptr ? txn->id : kInvalidTxnId;
  rec.prev_lsn = txn != nullptr ? txn->last_lsn.load() : kInvalidLsn;
  rec.is_system = txn != nullptr && txn->is_system;
  rec.prev_page_lsn = prev_page;
  rec.prev_fpi_lsn = prev_fpi;
  Lsn lsn = Publish(txn, rec);

  if (type == PageType::kAllocMap) {
    AllocPage::Init(page.mutable_data(), id);
  } else {
    SlottedPage::Init(page.mutable_data(), id, type, level, tree);
  }
  Header(page.mutable_data())->last_fpi_lsn = prev_fpi;
  page.MarkDirty(lsn);
  return Status::OK();
}

Status PageOps::LogPreformat(Transaction* txn, PageGuard& page,
                             const char* image) {
  const PageHeader* ih = Header(image);
  LogRecord rec;
  rec.type = LogType::kPreformat;
  rec.page_id = Header(page.data())->page_id;
  rec.tree_id = ih->tree_id;
  rec.txn_id = txn != nullptr ? txn->id : kInvalidTxnId;
  rec.prev_lsn = txn != nullptr ? txn->last_lsn.load() : kInvalidLsn;
  rec.is_system = txn != nullptr && txn->is_system;
  // Splice the chains: the preformat's predecessor is the last record
  // of the page's previous incarnation (paper figure 2).
  rec.prev_page_lsn = ih->page_lsn;
  rec.prev_fpi_lsn = ih->last_fpi_lsn;
  rec.image.assign(image, kPageSize);
  Lsn lsn = Publish(txn, rec);
  // A full image restarts the page's delta chain at depth 0.
  CacheFpiImage(Header(page.data())->page_id, lsn, 0, image);

  // The frame now carries the preformat LSN in both chain anchors so
  // the following LogFormat links to it.
  PageHeader* h = Header(page.mutable_data());
  h->page_lsn = lsn;
  h->last_fpi_lsn = lsn;
  h->mod_count = 0;
  page.MarkDirty(lsn);
  return Status::OK();
}

Status PageOps::LogSetSibling(Transaction* txn, PageGuard& page,
                              PageId new_sibling) {
  PageHeader* h = Header(page.mutable_data());
  LogRecord rec;
  rec.type = LogType::kSetSibling;
  rec.sibling_new = new_sibling;
  rec.sibling_old = h->right_sibling;
  Lsn lsn = AppendChained(txn, page, &rec);
  h->right_sibling = new_sibling;
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogAllocBits(Transaction* txn, PageGuard& map_page,
                             uint32_t bit, bool allocated, bool ever) {
  LogRecord rec;
  rec.type = LogType::kAllocBits;
  rec.alloc_bit = bit;
  rec.alloc_new = allocated;
  rec.ever_new = ever;
  rec.alloc_old = AllocPage::IsAllocated(map_page.data(), bit);
  rec.ever_old = AllocPage::EverAllocated(map_page.data(), bit);
  Lsn lsn = AppendChained(txn, map_page, &rec);
  bool pa, pe;
  AllocPage::SetBits(map_page.mutable_data(), bit, allocated, ever, &pa, &pe);
  map_page.MarkDirty(lsn);
  MaybeEmitFpi(txn, map_page);
  return Status::OK();
}

Status PageOps::LogClrInsert(Transaction* txn, PageGuard& page, uint16_t slot,
                             Slice entry, Lsn undo_next) {
  LogRecord rec;
  rec.type = LogType::kClr;
  rec.clr_op = LogType::kInsert;
  rec.slot = slot;
  rec.image = entry.ToString();
  rec.undo_next_lsn = undo_next;
  Lsn lsn = AppendChained(txn, page, &rec);
  REWIND_RETURN_IF_ERROR(SlottedPage::InsertAt(page.mutable_data(), slot,
                                               entry));
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogClrDelete(Transaction* txn, PageGuard& page, uint16_t slot,
                             Lsn undo_next) {
  if (slot >= SlottedPage::SlotCount(page.data())) {
    return Status::Corruption("LogClrDelete: slot out of range");
  }
  LogRecord rec;
  rec.type = LogType::kClr;
  rec.clr_op = LogType::kDelete;
  rec.slot = slot;
  rec.image = SlottedPage::Record(page.data(), slot).ToString();
  rec.undo_next_lsn = undo_next;
  Lsn lsn = AppendChained(txn, page, &rec);
  REWIND_RETURN_IF_ERROR(SlottedPage::RemoveAt(page.mutable_data(), slot));
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogClrUpdate(Transaction* txn, PageGuard& page, uint16_t slot,
                             Slice entry, Lsn undo_next) {
  if (slot >= SlottedPage::SlotCount(page.data())) {
    return Status::Corruption("LogClrUpdate: slot out of range");
  }
  LogRecord rec;
  rec.type = LogType::kClr;
  rec.clr_op = LogType::kUpdate;
  rec.slot = slot;
  rec.image = entry.ToString();
  rec.image2 = SlottedPage::Record(page.data(), slot).ToString();
  rec.undo_next_lsn = undo_next;
  Lsn lsn = AppendChained(txn, page, &rec);
  REWIND_RETURN_IF_ERROR(SlottedPage::ReplaceAt(page.mutable_data(), slot,
                                                entry));
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogClrAllocBits(Transaction* txn, PageGuard& map_page,
                                uint32_t bit, bool allocated, bool ever,
                                Lsn undo_next) {
  LogRecord rec;
  rec.type = LogType::kClr;
  rec.clr_op = LogType::kAllocBits;
  rec.alloc_bit = bit;
  rec.alloc_new = allocated;
  rec.ever_new = ever;
  rec.alloc_old = AllocPage::IsAllocated(map_page.data(), bit);
  rec.ever_old = AllocPage::EverAllocated(map_page.data(), bit);
  rec.undo_next_lsn = undo_next;
  Lsn lsn = AppendChained(txn, map_page, &rec);
  bool pa, pe;
  AllocPage::SetBits(map_page.mutable_data(), bit, allocated, ever, &pa, &pe);
  map_page.MarkDirty(lsn);
  MaybeEmitFpi(txn, map_page);
  return Status::OK();
}

Status PageOps::LogClrSetSibling(Transaction* txn, PageGuard& page,
                                 PageId new_sibling, Lsn undo_next) {
  PageHeader* h = Header(page.mutable_data());
  LogRecord rec;
  rec.type = LogType::kClr;
  rec.clr_op = LogType::kSetSibling;
  rec.sibling_new = new_sibling;
  rec.sibling_old = h->right_sibling;
  rec.undo_next_lsn = undo_next;
  Lsn lsn = AppendChained(txn, page, &rec);
  h->right_sibling = new_sibling;
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

Status PageOps::LogClrNoop(Transaction* txn, PageGuard& page,
                           LogType compensated, Lsn undo_next) {
  LogRecord rec;
  rec.type = LogType::kClr;
  rec.clr_op = compensated;
  rec.undo_next_lsn = undo_next;
  Lsn lsn = AppendChained(txn, page, &rec);
  page.MarkDirty(lsn);
  MaybeEmitFpi(txn, page);
  return Status::OK();
}

}  // namespace rewinddb
