// Shared read-path plumbing behind every table surface.
//
// The live Table and the snapshot's as-of table used to carry two
// near-identical copies of the Get/Scan/IndexScan/Count loops, differing
// only in how a row's visibility is decided: live transactional reads
// S-lock rows (try-lock + yield during scans, so a scan never waits on a
// lock while holding a latch), while as-of reads wait for the snapshot's
// background undo to erase in-flight transactions' effects. This file
// implements those loops once, parameterized by a RowGate that supplies
// the buffer pool, the per-tree latches and the visibility decisions.
#ifndef REWINDDB_ENGINE_READ_CORE_H_
#define REWINDDB_ENGINE_READ_CORE_H_

#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/value.h"

namespace rewinddb {

class BufferManager;

/// Visibility and locking hooks distinguishing one read surface from
/// another. Implementations must be callable from multiple threads.
class RowGate {
 public:
  enum class Check { kVisible, kYield };

  virtual ~RowGate() = default;

  /// Buffer pool the table's trees resolve through (the primary's, or a
  /// snapshot's side-file-backed pool).
  virtual BufferManager* buffers() = 0;

  /// Reader/writer latch for `tree`.
  virtual std::shared_mutex* TreeLatch(TreeId tree) = 0;

  /// Called before a point read of primary key `pk`: S-lock it (live
  /// transactional read), wait until background undo made it visible
  /// (snapshot), or do nothing (untracked live read).
  virtual Status BeforePointRead(TreeId tree, const std::string& pk) = 0;

  /// Cheap per-row pre-test: false means every row is visible and
  /// CheckScanRow will not be called, sparing the scan the key
  /// materialization (untracked live reads; snapshots once background
  /// undo completed). May flip true->false mid-scan, never the other
  /// way.
  virtual bool ScanNeedsRowCheck() = 0;

  /// Called under the tree latch for each row a scan is about to
  /// deliver (only while ScanNeedsRowCheck() is true). kYield means:
  /// release every latch, AwaitRow(key), then resume the scan at `key`
  /// (inclusive -- the row has not been delivered yet).
  virtual Result<Check> CheckScanRow(TreeId tree, const std::string& key) = 0;

  /// Latch-free wait after a yield; returns once `key` may be re-read.
  virtual Status AwaitRow(TreeId tree, const std::string& key) = 0;

  /// True while rows may exist in the tree that this surface must not
  /// count (snapshot background undo still running); forces Count() to
  /// take the visibility-checked scan path instead of the raw tree
  /// count.
  virtual bool CountNeedsVisibilityScan() = 0;
};

/// The four read operations every table surface exposes, implemented
/// once over a (descriptor, gate) pair.
Result<Row> ReadCoreGet(RowGate* gate, const TableInfo& info,
                        const std::vector<ColumnType>& types,
                        const Row& key_values);

Status ReadCoreScan(RowGate* gate, const TableInfo& info,
                    const std::vector<ColumnType>& types,
                    const std::optional<Row>& lower,
                    const std::optional<Row>& upper,
                    const std::function<bool(const Row&)>& cb);

Status ReadCoreIndexScan(RowGate* gate, const TableInfo& info,
                         const std::vector<IndexInfo>& indexes,
                         const std::vector<ColumnType>& types,
                         const std::string& index_name,
                         const Row& prefix_values,
                         const std::function<bool(const Row&)>& cb);

Result<uint64_t> ReadCoreCount(RowGate* gate, const TableInfo& info,
                               const std::vector<ColumnType>& types);

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_READ_CORE_H_
