// Parallel replay: the worker-pool machinery behind crash-recovery
// redo/undo and snapshot background undo.
//
// Two partitioning schemes, matching the two phases' ordering
// invariants:
//
//  * PagePool -- redo. A single dispatcher (the caller) scans the log
//    once in LSN order and routes every record to the worker that owns
//    its page (hash(page_id) % workers). Because a page's records all
//    land in one worker's FIFO queue, the per-page apply order equals
//    the dispatch order -- exactly the invariant ARIES redo needs --
//    while different pages replay concurrently. Queues are bounded, so
//    a slow worker back-pressures the dispatcher instead of buffering
//    the whole log span.
//
//  * ParallelFor -- undo, partitioned by loser transaction. A
//    transaction's chain walk is inherently sequential (each CLR names
//    the next record to undo), but different losers' effects are
//    disjoint: user rows by two-phase locking, system-transaction pages
//    by the tree latch their SMO held. Callers undo system losers
//    first (they revert structure the by-key user undo re-traverses),
//    then fan user losers out here.
//
// Error contract: the first failing apply poisons the pool; remaining
// queued work is drained without being applied, Dispatch tells the
// dispatcher to stop, and Finish/ParallelFor surface that first Status.
// No error path blocks: a poisoned pool always joins.
#ifndef REWINDDB_ENGINE_PARALLEL_REPLAY_H_
#define REWINDDB_ENGINE_PARALLEL_REPLAY_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/log_record.h"

namespace rewinddb {
namespace replay {

/// Default worker count for DatabaseOptions::replay_threads: 1 (the
/// serial path) unless the REWINDDB_REPLAY_THREADS environment variable
/// names another value (how CI's parallel-replay test variant runs the
/// whole suite with workers on). Clamped to [1, 64].
int DefaultReplayThreads();

/// Page-partitioned record fan-out (see file comment). With
/// `threads` <= 1 there are no worker threads and Dispatch applies
/// inline -- the degenerate case is byte-for-byte the serial path.
class PagePool {
 public:
  /// Applies one record on the worker's thread. `worker` is the queue
  /// index (workers never share a page, so the callee needs no
  /// same-page synchronization of its own).
  using ApplyFn = std::function<Status(size_t worker, Lsn lsn,
                                       const LogRecord& rec)>;

  PagePool(int threads, ApplyFn apply, size_t queue_capacity = 256);
  ~PagePool();

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// Route `rec` to the worker owning rec.page_id, blocking while that
  /// worker's queue is full. Records are staged into per-worker batches
  /// (kBatchRecords each) before they hit the queue, so the
  /// dispatcher/worker handoff costs one lock per batch, not per
  /// record. Returns false once the pool is poisoned (some apply
  /// failed) -- the dispatcher should stop scanning and call Finish()
  /// for the error.
  bool Dispatch(Lsn lsn, const LogRecord& rec);

  /// Records per dispatcher->worker handoff.
  static constexpr size_t kBatchRecords = 64;

  /// Drain every queue, join the workers and return the first apply
  /// error (OK when all records applied).
  Status Finish();

  /// Records handed to workers (or applied inline) so far.
  uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  using Batch = std::vector<std::pair<Lsn, LogRecord>>;

  struct Queue {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Batch> batches;
    bool closed = false;
  };

  void WorkerLoop(size_t w);
  void Poison(Status s);
  /// Move worker w's staged batch into its queue (blocking on a full
  /// queue). False when the pool is poisoned.
  bool PushBatch(size_t w);

  const size_t capacity_batches_;
  ApplyFn apply_;
  std::vector<std::unique_ptr<Queue>> queues_;
  /// Dispatcher-local staging, one batch per worker (no locking).
  std::vector<Batch> staging_;
  std::vector<std::thread> workers_;
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> dispatched_{0};
  std::mutex error_mu_;
  Status first_error_;
  bool finished_ = false;
};

/// Run fn(0) .. fn(n-1) across min(threads, n) workers, returning the
/// first error. Indices are claimed dynamically (losers vary wildly in
/// chain length); once any call fails no new index is started.
/// `threads` <= 1 runs inline, in order.
Status ParallelFor(int threads, size_t n,
                   const std::function<Status(size_t)>& fn);

}  // namespace replay
}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_PARALLEL_REPLAY_H_
