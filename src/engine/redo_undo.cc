#include "engine/redo_undo.h"

#include <cstring>

#include "page/alloc_page.h"
#include "page/slotted_page.h"

namespace rewinddb {

namespace {

Status RedoRowOp(char* page, LogType op, const LogRecord& rec) {
  switch (op) {
    case LogType::kInsert:
      return SlottedPage::InsertAt(page, rec.slot, rec.image);
    case LogType::kDelete:
      return SlottedPage::RemoveAt(page, rec.slot);
    case LogType::kUpdate:
      return SlottedPage::ReplaceAt(page, rec.slot, rec.image2);
    default:
      return Status::Corruption("redo: unexpected row op");
  }
}

Status UndoRowOp(char* page, LogType op, const LogRecord& rec) {
  switch (op) {
    case LogType::kInsert:
      return SlottedPage::RemoveAt(page, rec.slot);
    case LogType::kDelete:
      // The delete record always carries the deleted entry -- including
      // SMO move deletes (paper section 4.2(3)).
      return SlottedPage::InsertAt(page, rec.slot, rec.image);
    case LogType::kUpdate:
      return SlottedPage::ReplaceAt(page, rec.slot, rec.image);
    default:
      return Status::Corruption("undo: unexpected row op");
  }
}

void RedoAllocBits(char* page, const LogRecord& rec) {
  bool pa, pe;
  AllocPage::SetBits(page, rec.alloc_bit, rec.alloc_new, rec.ever_new, &pa,
                     &pe);
}

void UndoAllocBits(char* page, const LogRecord& rec) {
  bool pa, pe;
  AllocPage::SetBits(page, rec.alloc_bit, rec.alloc_old, rec.ever_old, &pa,
                     &pe);
}

}  // namespace

Status ApplyRedo(char* page, const LogRecord& rec, Lsn rec_lsn) {
  switch (rec.type) {
    case LogType::kInsert:
    case LogType::kDelete:
    case LogType::kUpdate:
      REWIND_RETURN_IF_ERROR(RedoRowOp(page, rec.type, rec));
      break;
    case LogType::kClr:
      switch (rec.clr_op) {
        case LogType::kInsert:
        case LogType::kDelete:
        case LogType::kUpdate:
          REWIND_RETURN_IF_ERROR(RedoRowOp(page, rec.clr_op, rec));
          break;
        case LogType::kAllocBits:
          RedoAllocBits(page, rec);
          break;
        case LogType::kSetSibling:
          Header(page)->right_sibling = rec.sibling_new;
          break;
        case LogType::kFormat:
        case LogType::kPreformat:
          break;  // no-op compensations
        default:
          return Status::Corruption("redo: unknown CLR op");
      }
      break;
    case LogType::kFormat: {
      Lsn keep_fpi = rec.prev_fpi_lsn;
      if (static_cast<PageType>(rec.fmt_type) == PageType::kAllocMap) {
        AllocPage::Init(page, rec.page_id);
      } else {
        SlottedPage::Init(page, rec.page_id,
                          static_cast<PageType>(rec.fmt_type), rec.fmt_level,
                          rec.tree_id);
      }
      Header(page)->last_fpi_lsn = keep_fpi;
      break;
    }
    case LogType::kPreformat:
      // "The page content at this LSN is exactly `image`."
      memcpy(page, rec.image.data(), kPageSize);
      Header(page)->last_fpi_lsn = rec.prev_fpi_lsn;
      break;
    case LogType::kFpiDelta:
      // Content no-op: the delta describes the content the page
      // already has (FPIs never change a page going forward). Only the
      // chain anchors advance, below.
      break;
    case LogType::kAllocBits:
      RedoAllocBits(page, rec);
      break;
    case LogType::kSetSibling:
      Header(page)->right_sibling = rec.sibling_new;
      break;
    default:
      return Status::Corruption("redo: not a page record");
  }
  SetPageLsn(page, rec_lsn);
  if (rec.type == LogType::kPreformat || rec.type == LogType::kFpiDelta) {
    Header(page)->last_fpi_lsn = rec_lsn;
  }
  return Status::OK();
}

Status ApplyUndo(char* page, const LogRecord& rec) {
  switch (rec.type) {
    case LogType::kInsert:
    case LogType::kDelete:
    case LogType::kUpdate:
      REWIND_RETURN_IF_ERROR(UndoRowOp(page, rec.type, rec));
      break;
    case LogType::kClr:
      // CLRs carry undo information precisely so this arm exists
      // (paper section 4.2(2)): rewinding through a rollback.
      switch (rec.clr_op) {
        case LogType::kInsert:
        case LogType::kDelete:
        case LogType::kUpdate:
          REWIND_RETURN_IF_ERROR(UndoRowOp(page, rec.clr_op, rec));
          break;
        case LogType::kAllocBits:
          UndoAllocBits(page, rec);
          break;
        case LogType::kSetSibling:
          Header(page)->right_sibling = rec.sibling_old;
          break;
        case LogType::kFormat:
        case LogType::kPreformat:
          break;  // no-op compensations undo to no-ops
        default:
          return Status::Corruption("undo: unknown CLR op");
      }
      break;
    case LogType::kFormat:
      // The preceding PREFORMAT record (reached via prev_page_lsn)
      // restores the old content; the format itself unwinds to an
      // empty frame.
      memset(page + kPageHeaderSize, 0, kPageSize - kPageHeaderSize);
      Header(page)->type = PageType::kFree;
      Header(page)->slot_count = 0;
      Header(page)->heap_top = static_cast<uint16_t>(kPageHeaderSize);
      Header(page)->frag_bytes = 0;
      break;
    case LogType::kPreformat:
      // Both uses (re-allocation splice and periodic image) mean "the
      // content at this LSN is `image`"; stepping backwards over the
      // record restores that image, from which older records unwind.
      memcpy(page, rec.image.data(), kPageSize);
      break;
    case LogType::kFpiDelta:
      // Content no-op both ways: a backward walk arriving here already
      // holds the content the delta describes, so only the chain
      // anchors rewind (below). Walks that want the image as a seed
      // jump via MaterializeFpiImage instead of stepping over.
      break;
    case LogType::kAllocBits:
      UndoAllocBits(page, rec);
      break;
    case LogType::kSetSibling:
      Header(page)->right_sibling = rec.sibling_old;
      break;
    default:
      return Status::Corruption("undo: not a page record");
  }
  SetPageLsn(page, rec.prev_page_lsn);
  Header(page)->last_fpi_lsn = rec.prev_fpi_lsn;
  return Status::OK();
}

}  // namespace rewinddb
