// PageOps: the apply-and-log primitives every mutation goes through.
//
// Each operation (a) appends a log record whose prev_page_lsn /
// prev_fpi_lsn come from the target page's header -- maintaining the
// backward chains PreparePageAsOf walks -- (b) applies the change to the
// latched frame, (c) stamps the new LSN into the page and the
// transaction chain, and (d) optionally emits a full-page-image
// (preformat) record after every Nth modification of the page
// (section 6.1), resetting the page's modification counter.
#ifndef REWINDDB_ENGINE_PAGE_OPS_H_
#define REWINDDB_ENGINE_PAGE_OPS_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "buffer/buffer_manager.h"
#include "common/status.h"
#include "txn/transaction.h"
#include "wal/wal.h"

namespace rewinddb {

class PageOps {
 public:
  /// \param fpi_period_n emit a full page image after every N
  ///        modifications of a page; 0 disables periodic images (the
  ///        paper's baseline configuration).
  /// \param fpi_delta_window_bytes when a page's previous FPI lies
  ///        within this many bytes of log, emit the periodic image as a
  ///        kFpiDelta (byte-range patch against that FPI) instead of a
  ///        full kPreformat; 0 disables delta encoding (every FPI is a
  ///        full image, the pre-diet behaviour).
  PageOps(wal::Wal* wal, TransactionManager* txns, uint32_t fpi_period_n,
          uint64_t fpi_delta_window_bytes = 0)
      : wal_(wal),
        txns_(txns),
        fpi_period_(fpi_period_n),
        fpi_delta_window_(fpi_delta_window_bytes) {}

  uint32_t fpi_period() const { return fpi_period_; }
  uint64_t fpi_delta_window() const { return fpi_delta_window_; }
  wal::Wal* log() const { return wal_; }

  /// Longest kFpiDelta chain the writer will grow before emitting a
  /// full image again (bounds FPI-jump materialization cost; the read
  /// side tolerates more, so older logs stay valid if this shrinks).
  static constexpr uint32_t kMaxFpiDeltaChain = 8;

  /// Insert `entry` at `slot` of the guarded page.
  Status LogInsert(Transaction* txn, PageGuard& page, uint16_t slot,
                   Slice entry);

  /// Delete the record at `slot`; the record bytes are captured in the
  /// log record as undo information (always, including SMO moves --
  /// paper section 4.2(3)).
  Status LogDelete(Transaction* txn, PageGuard& page, uint16_t slot);

  /// Replace the record at `slot` with `entry` (old bytes logged).
  Status LogUpdate(Transaction* txn, PageGuard& page, uint16_t slot,
                   Slice entry);

  /// Format the guarded frame as a fresh page.
  Status LogFormat(Transaction* txn, PageGuard& page, PageId id,
                   PageType type, uint8_t level, TreeId tree);

  /// Log a preformat record carrying `image` (the page's prior content)
  /// and chain it so the old incarnation's records stay reachable
  /// (paper section 4.2(1)). Must be immediately followed by LogFormat.
  Status LogPreformat(Transaction* txn, PageGuard& page, const char* image);

  /// Set a leaf's right-sibling pointer.
  Status LogSetSibling(Transaction* txn, PageGuard& page,
                       PageId new_sibling);

  /// Flip allocation bits on an allocation map page.
  Status LogAllocBits(Transaction* txn, PageGuard& map_page, uint32_t bit,
                      bool allocated, bool ever);

  // CLR variants: identical page effects, logged as compensation
  // records that carry full undo information (paper section 4.2(2)).
  Status LogClrInsert(Transaction* txn, PageGuard& page, uint16_t slot,
                      Slice entry, Lsn undo_next);
  Status LogClrDelete(Transaction* txn, PageGuard& page, uint16_t slot,
                      Lsn undo_next);
  Status LogClrUpdate(Transaction* txn, PageGuard& page, uint16_t slot,
                      Slice entry, Lsn undo_next);
  Status LogClrAllocBits(Transaction* txn, PageGuard& map_page, uint32_t bit,
                         bool allocated, bool ever, Lsn undo_next);
  Status LogClrSetSibling(Transaction* txn, PageGuard& page,
                          PageId new_sibling, Lsn undo_next);
  /// No-op compensation for FORMAT/PREFORMAT records (the page effect
  /// of undoing them is realized by the chain itself when rewinding).
  Status LogClrNoop(Transaction* txn, PageGuard& page, LogType compensated,
                    Lsn undo_next);

 private:
  /// Publish one record: through `txn`'s wal::Writer (staged BEGIN
  /// rides along, prevLSN chain updated) or straight to the wal for
  /// txn-less records.
  Lsn Publish(Transaction* txn, const LogRecord& rec);
  /// Fill chain fields from the page header and transaction, Publish,
  /// and return the record's LSN.
  Lsn AppendChained(Transaction* txn, PageGuard& page, LogRecord* rec);
  void MaybeEmitFpi(Transaction* txn, PageGuard& page);
  /// Remember the full image the FPI at `lsn` stands for, so the next
  /// periodic FPI of the page can be delta-encoded against it.
  void CacheFpiImage(PageId id, Lsn lsn, uint32_t depth, const char* image);

  wal::Wal* wal_;
  TransactionManager* txns_;
  uint32_t fpi_period_;
  const uint64_t fpi_delta_window_;

  /// Delta-encoding base cache: page -> the composed full image of the
  /// page's newest FPI record (and that record's LSN + chain depth).
  /// Purely an emission-side optimization -- a miss or stale entry just
  /// means the next FPI is a full image. Bounded FIFO-ish eviction.
  struct FpiBase {
    Lsn lsn = kInvalidLsn;
    uint32_t depth = 0;
    std::string image;
  };
  static constexpr size_t kFpiDeltaCacheEntries = 512;
  std::mutex delta_mu_;
  std::unordered_map<PageId, FpiBase> delta_cache_;
};

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_PAGE_OPS_H_
