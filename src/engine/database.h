// Database: the engine facade tying together file, buffer pool, log,
// locks, transactions, allocator, catalog and recovery.
//
// The architecture mirrors the SQL Server slice described in the
// paper's section 2: index manager (btree/), lock manager (txn/),
// buffer manager (buffer/), transaction manager (txn/), log manager
// (log/) and recovery manager (this file), over slotted pages with
// ARIES-style logging.
#ifndef REWINDDB_ENGINE_DATABASE_H_
#define REWINDDB_ENGINE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <set>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "buffer/buffer_manager.h"
#include "catalog/catalog.h"
#include "common/clock.h"
#include "engine/allocator.h"
#include "engine/page_ops.h"
#include "engine/parallel_replay.h"
#include "io/disk_model.h"
#include "io/paged_file.h"
#include "snapshot/version_store.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "wal/commit_mode.h"
#include "wal/wal.h"

namespace rewinddb {

class Table;

/// Default for DatabaseOptions::checkpoint_interval_bytes: the
/// REWINDDB_CHECKPOINT_INTERVAL_BYTES environment variable, else 0
/// (byte-triggered checkpoints off).
uint64_t DefaultCheckpointIntervalBytes();

/// True when the REWINDDB_ARCHIVE environment variable asks for the
/// archive tier (any non-empty value except "0").
bool DefaultArchiveEnabled();

/// True when the REWINDDB_LAZY_MOUNT environment variable asks for
/// lazy AS OF mounts (any non-empty value except "0"). How CI runs the
/// whole suite with lazy mounts on.
bool DefaultLazyMount();

/// True when REWINDDB_WAL_COMPRESSION or REWINDDB_WAL_DIET asks for
/// group-commit batch compression (any non-empty value except "0").
bool DefaultWalCompression();

/// The REWINDDB_FPI_DELTA_WINDOW_BYTES environment variable, else
/// 1 MiB when REWINDDB_WAL_DIET is set, else 0 (delta FPIs off).
uint64_t DefaultFpiDeltaWindowBytes();

struct DatabaseOptions {
  /// Buffer pool size in pages.
  size_t buffer_pool_pages = 2048;
  /// Emit a full page image every N modifications of a page (paper
  /// section 6.1); 0 disables periodic images.
  uint32_t fpi_period = 0;
  /// Delta-encode periodic FPIs against the page's previous FPI when
  /// that FPI lies within this many bytes of log (the WAL-diet FPI
  /// half; 0 = always log full images). The default honours
  /// REWINDDB_FPI_DELTA_WINDOW_BYTES / REWINDDB_WAL_DIET.
  uint64_t fpi_delta_window_bytes = DefaultFpiDeltaWindowBytes();
  /// Compress group-commit flush batches into frames (the WAL-diet
  /// space half; readers handle framed logs unconditionally). The
  /// default honours REWINDDB_WAL_COMPRESSION / REWINDDB_WAL_DIET.
  bool wal_compression = DefaultWalCompression();
  /// Retention period for as-of queries (ALTER DATABASE SET
  /// UNDO_INTERVAL, section 4.3). Default: 24 hours.
  uint64_t undo_interval_micros = 24ULL * 3600 * 1'000'000;
  /// Media model for the data file and the log device.
  MediaProfile data_media = MediaProfile::None();
  MediaProfile log_media = MediaProfile::None();
  /// Clock; nullptr selects the process-wide RealClock.
  Clock* clock = nullptr;
  /// Log block cache capacity (32 KiB blocks).
  size_t log_cache_blocks = 256;
  /// Byte budget for the shared version store: the cross-snapshot cache
  /// of rewound page images (LRU-evicted; 0 disables). All as-of
  /// snapshots of this database share one store, so concurrent
  /// point-in-time queries at nearby times reuse instead of repeat the
  /// per-page log-chain walks (paper sections 6.2-6.3).
  size_t version_store_bytes = 32ull << 20;
  /// Default durability level for Commit (Txn::Commit(mode) and
  /// Connection::SetDefaultCommitMode override per call / session).
  CommitMode default_commit_mode = CommitMode::kGroup;
  /// Background WAL flusher cadence for kAsync/kNone stragglers;
  /// 0 flushes only on demand (deterministic for crash tests).
  uint64_t wal_flush_interval_micros = 2'000;
  bool verify_checksums = true;
  uint64_t lock_timeout_micros = 1'000'000;
  /// Background checkpoint cadence; 0 = manual checkpoints only. The
  /// background thread takes FUZZY checkpoints (writers never drained)
  /// and runs retention enforcement after each one.
  uint64_t checkpoint_interval_micros = 0;
  /// Fuzzy-checkpoint trigger by WAL volume: when this many log bytes
  /// accumulate since the last checkpoint, the committing thread takes
  /// a fuzzy checkpoint (and, with the archive tier on, archives and
  /// trims the active log -- the bounded-log steady state). 0 disables
  /// the byte trigger. The default honours the
  /// REWINDDB_CHECKPOINT_INTERVAL_BYTES environment variable (how CI
  /// forces multiple checkpoints across the whole suite).
  uint64_t checkpoint_interval_bytes = DefaultCheckpointIntervalBytes();
  /// WAL archive tier directory. "auto" (the default) enables the tier
  /// at "<dir>/archive" iff the REWINDDB_ARCHIVE environment variable
  /// is set; "" disables it explicitly (truncation then drops history,
  /// the pre-archive behaviour); any other value is used as the archive
  /// directory. With the tier on, retention becomes archive-then-
  /// truncate and AS OF reaches transparently into archived history.
  std::string archive_dir = "auto";
  /// Target payload bytes per sealed archive segment.
  uint64_t archive_segment_bytes = 4ull << 20;
  /// How long ARCHIVED log is retained (the long-horizon AS OF window).
  /// 0 = follow undo_interval_micros. Only meaningful with the archive
  /// tier on; segments pinned by a live snapshot are never dropped.
  uint64_t archive_retention_micros = 0;
  /// Worker threads for parallel replay: crash-recovery redo/undo and
  /// snapshot background undo run a dispatcher that partitions log
  /// records across this many workers (redo by page, undo by loser
  /// transaction). 1 keeps the serial path as the degenerate case.
  /// The default honours the REWINDDB_REPLAY_THREADS environment
  /// variable (how CI runs the whole suite with workers on).
  int replay_threads = replay::DefaultReplayThreads();
  /// Buffer pool shard count (per-shard hash table + mutex + clock
  /// hand); 0 = auto: one shard per 128 frames, at most 16. Small
  /// pools degenerate to a single shard.
  size_t buffer_shards = 0;
  /// Lazy AS OF mounts: snapshot creation records only the SplitLSN
  /// and defers analysis + loser undo to a background sweeper, while
  /// pages are recovered individually on first access (per-page rewind
  /// entered through the mount's page log index). Mount cost becomes
  /// O(1) in log-since-backup; first-query latency becomes O(working
  /// set). The eager path (default) stays the oracle: both produce
  /// byte-identical page images (tests/lazy_mount_test.cc). Overridable
  /// per session with SET MOUNT_MODE. The default honours the
  /// REWINDDB_LAZY_MOUNT environment variable.
  bool lazy_mount = DefaultLazyMount();
};

/// Counters behind SHOW STATS' lazy_mount.* rows: how much recovery
/// work lazy mounts deferred and where it was eventually paid (on
/// demand by queries vs. by the background sweeper). Plain values; the
/// engine keeps them in relaxed atomics.
struct LazyMountCounters {
  uint64_t lazy_mounts = 0;
  uint64_t eager_mounts = 0;
  /// Pages recovered on first access by a lazily mounted snapshot.
  uint64_t pages_recovered_on_demand = 0;
  /// On-demand recoveries that entered the chain at an indexed
  /// post-split page image instead of walking from the current page.
  uint64_t fpi_index_hits = 0;
  /// Trees whose loser undo was applied on first query touch (the
  /// remainder were completed by the sweeper).
  uint64_t trees_recovered_on_demand = 0;
  /// Background sweeps that ran to completion.
  uint64_t sweeps_completed = 0;
};

/// Phase timings of the last crash recovery, charged to the database
/// clock (simulated micros under a SimClock). Zeroed when the shutdown
/// was clean.
struct RecoveryStats {
  uint64_t analysis_micros = 0;
  uint64_t redo_micros = 0;
  uint64_t undo_micros = 0;
  /// LSN the analysis scan started at: the last completed checkpoint's
  /// begin record (the log's oldest available byte only when no
  /// checkpoint exists). What bounds recovery time in steady state.
  Lsn analysis_start_lsn = kInvalidLsn;
  /// Records the analysis scan decoded (analysis_start_lsn -> end).
  uint64_t analysis_records = 0;
  /// Where the durable log ended when recovery STARTED -- before undo
  /// CLRs and the post-recovery checkpoint appended past it. After a
  /// crash this is the boundary between kept and lost history.
  Lsn durable_end_lsn = kInvalidLsn;
  /// Records the redo dispatcher handed to workers (after DPT filter).
  uint64_t redo_records = 0;
  uint64_t loser_transactions = 0;
  int replay_threads = 1;
};

/// Physical undo applier: compensates records at their recorded page
/// and slot. Valid whenever records are undone in reverse-LSN order
/// (crash recovery) or belong to a system transaction whose pages no
/// one else touched (runtime SMO failure).
class PhysicalUndoApplier : public UndoApplier {
 public:
  PhysicalUndoApplier(BufferManager* buffers, PageOps* ops)
      : buffers_(buffers), ops_(ops) {}
  Status UndoRecord(Transaction* txn, Lsn lsn, const LogRecord& rec) override;

 private:
  BufferManager* buffers_;
  PageOps* ops_;
};

/// Logical undo applier: row operations re-traverse the B-tree by key
/// (rows may have moved since); everything else is position-independent
/// and compensated physically.
class LogicalUndoApplier : public UndoApplier {
 public:
  explicit LogicalUndoApplier(const TreeWriteContext& ctx)
      : ctx_(ctx), physical_(ctx.buffers, ctx.ops) {}
  Status UndoRecord(Transaction* txn, Lsn lsn, const LogRecord& rec) override;

 private:
  TreeWriteContext ctx_;
  PhysicalUndoApplier physical_;
};

class Database {
 public:
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a fresh database in directory `dir` (created if needed):
  /// data file `dir`/data.rwdb, log `dir`/log.rwdb.
  static Result<std::unique_ptr<Database>> Create(const std::string& dir,
                                                  DatabaseOptions opts = {});

  /// Open an existing database; runs ARIES crash recovery
  /// (analysis / redo / undo) if the shutdown was not clean.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                DatabaseOptions opts = {});

  /// Flush everything and stop background work. Called by the
  /// destructor if not called explicitly.
  Status Close();

  // ------------------------- transactions ----------------------------
  Transaction* Begin();
  /// Commit with the transaction's stamped CommitMode (the engine
  /// default unless overridden).
  Status Commit(Transaction* txn);
  /// Commit with an explicit durability level for this transaction.
  Status Commit(Transaction* txn, CommitMode mode);
  Status Abort(Transaction* txn);

  // ----------------------------- DDL ---------------------------------
  Status CreateTable(Transaction* txn, const std::string& name,
                     const Schema& schema);
  /// Drops the table and its indexes. Page deallocation is deferred to
  /// commit (so aborting the transaction cannot race re-allocations).
  Status DropTable(Transaction* txn, const std::string& name);
  Result<Table> OpenTable(const std::string& name);
  Status CreateIndex(Transaction* txn, const std::string& index_name,
                     const std::string& table_name,
                     const std::vector<std::string>& columns);
  Status DropIndex(Transaction* txn, const std::string& index_name);

  // ------------------------- maintenance -----------------------------
  /// SHARP checkpoint: wall-clock-stamped begin/end records, full dirty
  /// page flush, master record update. After it the data file holds
  /// every pre-checkpoint change -- what snapshot creation (section
  /// 5.2's "redo needs no page reads") and backup rely on. Drains the
  /// buffer pool's dirty set, so prefer FuzzyCheckpoint() for routine
  /// log bounding.
  Status Checkpoint();

  /// FUZZY checkpoint (taken without blocking writers): begin/end
  /// records carrying the active-transaction table and the dirty page
  /// table, no wholesale page flush -- only pages dirty since before
  /// the PREVIOUS checkpoint are written back, so the redo floor keeps
  /// advancing (the classic two-checkpoint rule) while the pool stays
  /// warm. Crash recovery's analysis starts at the resulting master
  /// checkpoint. With the archive tier on, also archives + trims the
  /// active log up to the new truncation floor. Triggered by
  /// checkpoint_interval_bytes, the SQL CHECKPOINT statement, and the
  /// background checkpointer.
  Status FuzzyCheckpoint();

  /// ALTER DATABASE SET UNDO_INTERVAL.
  Status SetUndoInterval(uint64_t micros);
  uint64_t undo_interval_micros() const { return undo_interval_micros_; }

  /// Enforce the retention policy (section 4.3). Without the archive
  /// tier: truncate log older than the retention period (keeping
  /// everything crash recovery, active transactions or live snapshots
  /// still need). With the archive tier: seal-then-truncate the active
  /// log up to the truncation floor, then drop ARCHIVED segments older
  /// than archive_retention (never past a live snapshot's pin).
  Status EnforceRetention();

  // ------------------------ engine internals -------------------------
  // Exposed for the snapshot, backup and benchmark layers.
  wal::Wal* log() { return wal_.get(); }
  BufferManager* buffers() { return buffers_.get(); }
  LockManager* locks() { return &locks_; }
  TransactionManager* txns() { return txns_.get(); }
  PageAllocator* allocator() { return allocator_.get(); }
  Catalog* catalog() { return catalog_.get(); }
  Clock* clock() { return clock_; }
  IoStats* stats() { return &stats_; }
  PagedFile* data_file() { return data_file_.get(); }
  /// Shared cross-snapshot cache of rewound page images; every
  /// AsOfSnapshot of this database reads through it. Never null (a
  /// zero budget makes it an always-miss no-op).
  VersionStore* version_store() { return version_store_.get(); }
  DiskModel* data_disk() { return &data_disk_; }
  DiskModel* log_disk() { return &log_disk_; }
  const std::string& dir() const { return dir_; }
  const DatabaseOptions& options() const { return opts_; }

  TreeWriteContext write_ctx() {
    return {buffers_.get(), ops_.get(), txns_.get(), allocator_.get()};
  }

  /// Per-tree reader/writer latch (writers of a tree are serialized;
  /// readers exclude structure changes).
  std::shared_mutex* TreeLatch(TreeId tree);

  /// Master-record LSN of the last completed checkpoint.
  Lsn master_checkpoint_lsn() const { return master_checkpoint_lsn_; }

  /// True if the last Open had to run crash recovery (tests).
  bool recovered_from_crash() const { return recovered_from_crash_; }

  /// Phase breakdown of the last crash recovery (analysis/redo/undo).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Test/benchmark hook: abandon all in-memory state as a real crash
  /// would -- no checkpoint, no page flush, unflushed log lost. The
  /// object may only be destroyed afterwards; reopen with Open() to
  /// exercise recovery.
  void SimulateCrash();

  uint32_t AllocateObjectId() { return next_object_id_++; }

  /// Open as-of snapshots pin the log they depend on: retention
  /// enforcement never truncates past the oldest registered anchor.
  void RegisterSnapshotAnchor(Lsn anchor);
  void UnregisterSnapshotAnchor(Lsn anchor);
  /// Number of currently registered anchors == open as-of snapshots.
  /// The baseline signal SHOW STATS and the network tests use to prove
  /// session teardown released every snapshot handle.
  size_t SnapshotAnchorCount();

  /// Lazy-mount accounting (bumped by AsOfSnapshot, which this
  /// Database always outlives).
  void BumpLazyMount(bool lazy) {
    (lazy ? lazy_mounts_ : eager_mounts_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void BumpPagesRecoveredOnDemand(bool via_fpi_index) {
    pages_recovered_on_demand_.fetch_add(1, std::memory_order_relaxed);
    if (via_fpi_index) fpi_index_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpTreesRecoveredOnDemand(uint64_t n) {
    trees_recovered_on_demand_.fetch_add(n, std::memory_order_relaxed);
  }
  void BumpSweepsCompleted() {
    sweeps_completed_.fetch_add(1, std::memory_order_relaxed);
  }
  LazyMountCounters lazy_mount_counters() const {
    LazyMountCounters c;
    c.lazy_mounts = lazy_mounts_.load(std::memory_order_relaxed);
    c.eager_mounts = eager_mounts_.load(std::memory_order_relaxed);
    c.pages_recovered_on_demand =
        pages_recovered_on_demand_.load(std::memory_order_relaxed);
    c.fpi_index_hits = fpi_index_hits_.load(std::memory_order_relaxed);
    c.trees_recovered_on_demand =
        trees_recovered_on_demand_.load(std::memory_order_relaxed);
    c.sweeps_completed = sweeps_completed_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  friend class Table;

  explicit Database(std::string dir, DatabaseOptions opts);

  Status InitStorage(bool create);
  Status Bootstrap();
  Status LoadSuperBlock();
  Status WriteSuperBlock();
  Status RunRecovery();
  /// Redo worker body: fetch (or materialize) the page and repeat
  /// history if the page LSN says the record is not yet applied.
  Status RedoOne(Lsn lsn, const LogRecord& rec);
  /// Undo one loser transaction's whole chain (CLR-logged), appending
  /// its ABORT record. Thread-safe: logical undo re-latches trees per
  /// record.
  Status UndoLoser(TxnId id, Lsn last_lsn);
  /// Shared body of Checkpoint()/FuzzyCheckpoint(); serialized on
  /// checkpoint_serial_mu_ so begin/end pairs never interleave in the
  /// log.
  Status CheckpointImpl(bool fuzzy);
  /// Byte-triggered fuzzy checkpoint (called from Commit); claims an
  /// atomic flag so exactly one committer pays for it.
  void MaybeAutoCheckpoint();
  /// Oldest LSN the active log must keep: min of the last checkpoint's
  /// redo floor, the oldest active transaction's first record and the
  /// oldest live snapshot's pin.
  Lsn TruncationFloor();
  /// Archive-then-truncate the active log up to TruncationFloor()
  /// (no-op without the archive tier -- truncation would destroy the
  /// AS OF horizon).
  Status TrimActiveWal();
  /// Resolve opts_.archive_dir ("auto"/""/path) to the directory the
  /// WAL should archive into; empty = tier off.
  std::string ResolveArchiveDir() const;
  void StartCheckpointer();
  void StopCheckpointer();

  /// Deferred DROP TABLE work executed at commit.
  struct DeferredDrop {
    TreeId tree;
  };

  std::string dir_;
  DatabaseOptions opts_;
  Clock* clock_;
  IoStats stats_;
  DiskModel data_disk_;
  DiskModel log_disk_;

  std::unique_ptr<PagedFile> data_file_;
  std::unique_ptr<FilePageStore> store_;
  std::unique_ptr<wal::Wal> wal_;
  std::unique_ptr<BufferManager> buffers_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<PageOps> ops_;
  std::unique_ptr<PageAllocator> allocator_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<VersionStore> version_store_;

  std::atomic<uint64_t> undo_interval_micros_;
  std::atomic<uint32_t> next_object_id_{1};
  std::atomic<Lsn> master_checkpoint_lsn_{kInvalidLsn};
  /// Min rec_lsn across the last checkpoint's DPT (== its begin LSN
  /// when the DPT was empty): where redo would have to start, i.e. the
  /// checkpoint's contribution to the truncation floor. kInvalidLsn
  /// until the first checkpoint this process lifetime (TruncationFloor
  /// then falls back to the master checkpoint, which is exact for the
  /// sharp checkpoint a clean shutdown wrote).
  std::atomic<Lsn> checkpoint_redo_floor_{kInvalidLsn};
  /// wal next_lsn at the last checkpoint: the byte trigger's baseline.
  std::atomic<Lsn> checkpoint_wal_mark_{0};
  /// Claim flag so one committer at a time pays for the byte-triggered
  /// checkpoint.
  std::atomic<bool> auto_checkpoint_running_{false};
  /// Serializes checkpoint begin/end pairs (manual, byte-triggered,
  /// background, snapshot-creation). Ordered BEFORE every other engine
  /// lock; nothing is held when acquiring it.
  std::mutex checkpoint_serial_mu_;
  bool recovered_from_crash_ = false;
  RecoveryStats recovery_stats_;
  bool closed_ = false;

  std::mutex tree_latches_mu_;
  std::map<TreeId, std::unique_ptr<std::shared_mutex>> tree_latches_;

  std::mutex deferred_mu_;
  std::map<TxnId, std::vector<DeferredDrop>> deferred_drops_;

  std::mutex anchors_mu_;
  std::multiset<Lsn> snapshot_anchors_;

  std::atomic<uint64_t> lazy_mounts_{0};
  std::atomic<uint64_t> eager_mounts_{0};
  std::atomic<uint64_t> pages_recovered_on_demand_{0};
  std::atomic<uint64_t> fpi_index_hits_{0};
  std::atomic<uint64_t> trees_recovered_on_demand_{0};
  std::atomic<uint64_t> sweeps_completed_{0};

  std::thread checkpointer_;
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool stop_checkpointer_ = false;

  std::mutex ddl_mu_;  // serializes DDL statements
};

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_DATABASE_H_
