// Physical application of log records to page images, in both
// directions.
//
// ApplyRedo repeats history (ARIES redo, backup roll-forward).
// ApplyUndo reverses one record on a page image -- the step primitive of
// PreparePageAsOf (paper figure 3's UndoLogRec) and of recovery's
// physical undo. Both operate on raw page bytes so they work equally on
// buffer frames of the primary and on side-file images of a snapshot.
#ifndef REWINDDB_ENGINE_REDO_UNDO_H_
#define REWINDDB_ENGINE_REDO_UNDO_H_

#include "common/status.h"
#include "log/log_record.h"
#include "page/page.h"

namespace rewinddb {

/// Apply the forward (redo) effect of `rec` to `page` and stamp
/// `rec_lsn` as the page LSN. The caller has checked pageLSN < rec_lsn.
Status ApplyRedo(char* page, const LogRecord& rec, Lsn rec_lsn);

/// Apply the inverse (undo) effect of `rec` to `page` and wind the page
/// LSN back to rec.prev_page_lsn. Valid when the page's current state
/// is exactly the state just after `rec` was applied -- guaranteed when
/// records are undone in reverse prevPageLSN order.
Status ApplyUndo(char* page, const LogRecord& rec);

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_REDO_UNDO_H_
