#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "engine/redo_undo.h"
#include "engine/table.h"
#include "page/slotted_page.h"

namespace rewinddb {

uint64_t DefaultCheckpointIntervalBytes() {
  static const uint64_t cached = [] {
    const char* env = std::getenv("REWINDDB_CHECKPOINT_INTERVAL_BYTES");
    if (env == nullptr || *env == '\0') return uint64_t{0};
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }();
  return cached;
}

bool DefaultArchiveEnabled() {
  static const bool cached = [] {
    const char* env = std::getenv("REWINDDB_ARCHIVE");
    return env != nullptr && *env != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return cached;
}

bool DefaultLazyMount() {
  static const bool cached = [] {
    const char* env = std::getenv("REWINDDB_LAZY_MOUNT");
    return env != nullptr && *env != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return cached;
}

namespace {
bool EnvFlagSet(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && *env != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}
}  // namespace

bool DefaultWalCompression() {
  // REWINDDB_WAL_DIET=1 is the one-switch diet (compression + delta
  // FPIs); REWINDDB_WAL_COMPRESSION toggles this half alone.
  static const bool cached = [] {
    return EnvFlagSet("REWINDDB_WAL_COMPRESSION") ||
           EnvFlagSet("REWINDDB_WAL_DIET");
  }();
  return cached;
}

uint64_t DefaultFpiDeltaWindowBytes() {
  static const uint64_t cached = [] {
    const char* env = std::getenv("REWINDDB_FPI_DELTA_WINDOW_BYTES");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
    }
    // The diet switch turns delta FPIs on at a window that comfortably
    // spans a few checkpoint intervals of the test workloads.
    if (EnvFlagSet("REWINDDB_WAL_DIET")) return uint64_t{1} << 20;
    return uint64_t{0};
  }();
  return cached;
}

// ------------------------- undo appliers ------------------------------

Status PhysicalUndoApplier::UndoRecord(Transaction* txn, Lsn /*lsn*/,
                                       const LogRecord& rec) {
  REWIND_ASSIGN_OR_RETURN(
      PageGuard page, buffers_->FetchPage(rec.page_id, AccessMode::kWrite));
  Lsn undo_next = rec.prev_lsn;
  switch (rec.type) {
    case LogType::kInsert:
      return ops_->LogClrDelete(txn, page, rec.slot, undo_next);
    case LogType::kDelete:
      return ops_->LogClrInsert(txn, page, rec.slot, rec.image, undo_next);
    case LogType::kUpdate:
      return ops_->LogClrUpdate(txn, page, rec.slot, rec.image, undo_next);
    case LogType::kAllocBits:
      return ops_->LogClrAllocBits(txn, page, rec.alloc_bit, rec.alloc_old,
                                   rec.ever_old, undo_next);
    case LogType::kSetSibling:
      return ops_->LogClrSetSibling(txn, page, rec.sibling_old, undo_next);
    case LogType::kFormat:
    case LogType::kPreformat:
      // The page content unwinds through the chain itself; compensate
      // with a no-op so repeated recoveries skip this record.
      return ops_->LogClrNoop(txn, page, rec.type, undo_next);
    default:
      return Status::Corruption("physical undo: unexpected record type " +
                                std::string(LogTypeName(rec.type)));
  }
}

Status LogicalUndoApplier::UndoRecord(Transaction* txn, Lsn lsn,
                                      const LogRecord& rec) {
  switch (rec.type) {
    case LogType::kInsert: {
      BTree tree(rec.tree_id);
      return tree.ClrErase(ctx_, txn, SlottedPage::EntryKey(rec.image),
                           rec.prev_lsn);
    }
    case LogType::kDelete: {
      BTree tree(rec.tree_id);
      return tree.ClrReinsert(ctx_, txn, rec.image, rec.prev_lsn);
    }
    case LogType::kUpdate: {
      BTree tree(rec.tree_id);
      return tree.ClrRestore(ctx_, txn, rec.image, rec.prev_lsn);
    }
    default:
      // Allocation bits, siblings, formats: position-independent.
      return physical_.UndoRecord(txn, lsn, rec);
  }
}

// ----------------------------- lifecycle ------------------------------

Database::Database(std::string dir, DatabaseOptions opts)
    : dir_(std::move(dir)),
      opts_(opts),
      clock_(opts.clock != nullptr ? opts.clock : RealClock::Default()),
      data_disk_(opts.data_media, clock_, &stats_),
      log_disk_(opts.log_media, clock_, &stats_),
      locks_(opts.lock_timeout_micros),
      undo_interval_micros_(opts.undo_interval_micros) {}

Database::~Database() {
  Status s = Close();
  (void)s;
}

Status Database::InitStorage(bool create) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string data_path = dir_ + "/data.rwdb";
  const std::string log_path = dir_ + "/log.rwdb";
  wal::WalOptions wo;
  wo.cache_blocks = opts_.log_cache_blocks;
  wo.flush_interval_micros = opts_.wal_flush_interval_micros;
  wo.archive_dir = ResolveArchiveDir();
  wo.archive_segment_bytes = opts_.archive_segment_bytes;
  wo.compression = opts_.wal_compression;
  if (create) {
    REWIND_ASSIGN_OR_RETURN(
        data_file_, PagedFile::Create(data_path, &data_disk_, &stats_));
    REWIND_ASSIGN_OR_RETURN(
        wal_, wal::Wal::Create(log_path, &log_disk_, &stats_, wo));
  } else {
    REWIND_ASSIGN_OR_RETURN(data_file_,
                            PagedFile::Open(data_path, &data_disk_, &stats_));
    REWIND_ASSIGN_OR_RETURN(
        wal_, wal::Wal::Open(log_path, &log_disk_, &stats_, wo));
  }
  store_ = std::make_unique<FilePageStore>(data_file_.get());
  buffers_ = std::make_unique<BufferManager>(store_.get(), wal_.get(),
                                             &stats_, opts_.buffer_pool_pages,
                                             opts_.verify_checksums,
                                             opts_.buffer_shards);
  txns_ = std::make_unique<TransactionManager>(wal_.get(), &locks_, clock_,
                                               opts_.default_commit_mode);
  ops_ = std::make_unique<PageOps>(wal_.get(), txns_.get(), opts_.fpi_period,
                                   opts_.fpi_delta_window_bytes);
  allocator_ = std::make_unique<PageAllocator>(buffers_.get(), ops_.get());
  allocator_->set_on_new_map([this](uint32_t) {
    Status s = WriteSuperBlock();
    (void)s;  // best effort; rebuilt by recovery redo otherwise
  });
  catalog_ = std::make_unique<Catalog>(buffers_.get());
  version_store_ = std::make_unique<VersionStore>(opts_.version_store_bytes);
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::Create(const std::string& dir,
                                                   DatabaseOptions opts) {
  if (std::filesystem::exists(dir + "/data.rwdb")) {
    return Status::AlreadyExists("database exists at " + dir);
  }
  std::unique_ptr<Database> db(new Database(dir, opts));
  REWIND_RETURN_IF_ERROR(db->InitStorage(/*create=*/true));
  REWIND_RETURN_IF_ERROR(db->Bootstrap());
  db->StartCheckpointer();
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 DatabaseOptions opts) {
  std::unique_ptr<Database> db(new Database(dir, opts));
  REWIND_RETURN_IF_ERROR(db->InitStorage(/*create=*/false));
  REWIND_RETURN_IF_ERROR(db->LoadSuperBlock());
  REWIND_RETURN_IF_ERROR(db->RunRecovery());
  // Object ids continue above everything the catalog knows.
  REWIND_ASSIGN_OR_RETURN(uint32_t max_id, db->catalog_->MaxObjectId());
  db->next_object_id_ = max_id + 1;
  db->StartCheckpointer();
  return db;
}

Status Database::Bootstrap() {
  // Superblock first so a crash during bootstrap is detectable.
  REWIND_RETURN_IF_ERROR(WriteSuperBlock());
  Transaction* txn = txns_->Begin();
  REWIND_RETURN_IF_ERROR(allocator_->CreateFirstAllocMap(txn));
  REWIND_RETURN_IF_ERROR(Catalog::Bootstrap(write_ctx(), txn));
  REWIND_RETURN_IF_ERROR(txns_->Commit(txn));
  return Checkpoint();
}

Status Database::LoadSuperBlock() {
  char page[kPageSize];
  REWIND_RETURN_IF_ERROR(data_file_->ReadPage(0, page));
  SuperBlock sb = SuperBlock::ReadFrom(page);
  if (sb.magic != SuperBlock::kMagic) {
    return Status::Corruption("superblock magic mismatch");
  }
  master_checkpoint_lsn_ = sb.master_checkpoint_lsn;
  allocator_->set_num_alloc_maps(sb.num_alloc_maps);
  next_object_id_ = sb.next_table_id;
  undo_interval_micros_ = sb.undo_interval_micros;
  txns_->BumpTxnId(sb.next_txn_id);
  return Status::OK();
}

Status Database::WriteSuperBlock() {
  SuperBlock sb;
  sb.magic = SuperBlock::kMagic;
  sb.master_checkpoint_lsn = master_checkpoint_lsn_.load();
  sb.num_alloc_maps = allocator_->num_alloc_maps();
  sb.next_table_id = next_object_id_.load();
  sb.undo_interval_micros = undo_interval_micros_.load();
  sb.next_txn_id = txns_ != nullptr ? txns_->NextTxnIdHint() : 1;
  char page[kPageSize];
  sb.WriteTo(page);
  StampPageChecksum(page);
  REWIND_RETURN_IF_ERROR(data_file_->WritePage(0, page));
  return data_file_->Sync();
}

void Database::SimulateCrash() {
  StopCheckpointer();
  // Stop the WAL flusher without a final flush: whatever sits in the
  // unflushed tail is lost, exactly as in a real crash.
  wal_->SimulateCrash();
  closed_ = true;
}

Status Database::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  StopCheckpointer();
  // A failed Create/Open can reach here with storage only partially
  // initialized (e.g. a corrupt archive segment rejected by the WAL's
  // archive scan); there is nothing to checkpoint then.
  if (wal_ == nullptr || buffers_ == nullptr) return Status::OK();
  REWIND_RETURN_IF_ERROR(Checkpoint());
  return Status::OK();
}

// ----------------------------- recovery -------------------------------

namespace {

/// Per-record undo routing for per-transaction recovery undo: system
/// records physically (slot-exact -- their pages were exclusive to the
/// SMO), user records logically (by key). Each record is applied under
/// the exclusive latch of the tree it touches, so parallel workers
/// honour the engine's concurrency contract ("writers hold the tree's
/// exclusive latch"): logical undo re-traverses the tree and may split
/// leaves; physical undo changes structure. Records without a tree
/// (allocation map bits) share the kInvalidPageId latch.
class TreeLatchedUndoApplier : public UndoApplier {
 public:
  TreeLatchedUndoApplier(Database* db, UndoApplier* physical,
                         UndoApplier* logical)
      : db_(db), physical_(physical), logical_(logical) {}
  Status UndoRecord(Transaction* txn, Lsn lsn, const LogRecord& rec) override {
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(rec.tree_id));
    UndoApplier* inner = rec.is_system ? physical_ : logical_;
    return inner->UndoRecord(txn, lsn, rec);
  }

 private:
  Database* db_;
  UndoApplier* physical_;
  UndoApplier* logical_;
};

}  // namespace

Status Database::RedoOne(Lsn lsn, const LogRecord& rec) {
  auto fetched = buffers_->FetchPage(rec.page_id, AccessMode::kWrite);
  if (!fetched.ok()) {
    // Never flushed before the crash: materialize an empty frame;
    // the first record to redo formats it.
    fetched = buffers_->NewPage(rec.page_id);
    if (!fetched.ok()) return fetched.status();
  }
  PageGuard page = std::move(*fetched);
  if (PageLsn(page.data()) < lsn) {  // not yet applied
    REWIND_RETURN_IF_ERROR(ApplyRedo(page.mutable_data(), rec, lsn));
    page.MarkDirty(lsn);
  }
  return Status::OK();
}

Status Database::UndoLoser(TxnId id, Lsn last_lsn) {
  // One loser's whole chain, CLR-logged, exactly like a runtime abort.
  // User records are undone logically (by key -- committed SMOs may
  // have moved the rows; paper section 4.1), system records physically.
  Transaction* txn = txns_->AdoptForRecovery(id, last_lsn);
  PhysicalUndoApplier physical(buffers_.get(), ops_.get());
  LogicalUndoApplier logical(write_ctx());
  TreeLatchedUndoApplier applier(this, &physical, &logical);
  return txns_->Abort(txn, &applier);
}

Status Database::RunRecovery() {
  const int threads = opts_.replay_threads < 1 ? 1 : opts_.replay_threads;
  recovery_stats_ = RecoveryStats();
  recovery_stats_.replay_threads = threads;
  recovery_stats_.durable_end_lsn = wal_->flushed_lsn();
  uint64_t t0 = clock_->NowMicros();

  // --- Analysis: from the master checkpoint to the end of the log. ---
  // The checkpoint may be fuzzy, so the end record's tables are merged
  // with what the scan itself sees:
  //  * DPT entries merge with MIN(recLSN) -- a page modified between
  //    checkpoint begin and end is seen by the scan FIRST with a
  //    too-late recLSN; the checkpoint's older entry must win or redo
  //    would skip its unflushed pre-checkpoint records;
  //  * ATT entries never resurrect a transaction whose COMMIT/ABORT the
  //    scan already passed (a commit can land between the begin record
  //    and the end record's capture).
  Lsn analysis_start = master_checkpoint_lsn_.load();
  if (analysis_start == kInvalidLsn ||
      analysis_start < wal_->oldest_lsn()) {
    analysis_start = wal_->oldest_lsn();
  }
  recovery_stats_.analysis_start_lsn = analysis_start;
  std::unordered_map<TxnId, Lsn> att;          // loser candidates
  std::unordered_set<TxnId> ended;             // committed/aborted in scan
  std::unordered_map<PageId, Lsn> dpt;         // page -> recLSN
  Lsn end_lsn = wal_->next_lsn();
  wal::Cursor cur = wal_->OpenCursor();
  REWIND_RETURN_IF_ERROR(cur.SeekTo(analysis_start));
  while (cur.Valid() && cur.lsn() < end_lsn) {
    const LogRecord& rec = cur.record();
    recovery_stats_.analysis_records++;
    if (rec.type == LogType::kCheckpointEnd) {
      for (const AttEntry& e : rec.att) {
        if (ended.count(e.txn_id) != 0) continue;
        if (att.find(e.txn_id) == att.end()) att[e.txn_id] = e.last_lsn;
      }
      for (const DptEntry& e : rec.dpt) {
        auto it = dpt.find(e.page_id);
        if (it == dpt.end() || e.rec_lsn < it->second) {
          dpt[e.page_id] = e.rec_lsn;
        }
      }
    } else {
      if (rec.txn_id != kInvalidTxnId) {
        if (rec.type == LogType::kCommit || rec.type == LogType::kAbort) {
          att.erase(rec.txn_id);
          ended.insert(rec.txn_id);
        } else {
          att[rec.txn_id] = cur.lsn();
        }
      }
      if (rec.IsPageRecord() && dpt.find(rec.page_id) == dpt.end()) {
        dpt[rec.page_id] = cur.lsn();
      }
    }
    REWIND_RETURN_IF_ERROR(cur.Next());
  }
  // A checkpoint ATT written by an older build can list a decided
  // transaction whose completion record predates the analysis window
  // (captured during its durability wait). Its chain head is then the
  // COMMIT/ABORT record itself: drop it, or undo would walk past the
  // completion record into committed history.
  for (auto it = att.begin(); it != att.end();) {
    REWIND_RETURN_IF_ERROR(cur.SeekToChain(it->second));
    const LogType head = cur.record().type;
    if (head == LogType::kCommit || head == LogType::kAbort) {
      it = att.erase(it);
    } else {
      ++it;
    }
  }
  recovery_stats_.analysis_micros = clock_->NowMicros() - t0;

  const bool clean = att.empty() && dpt.empty();
  recovered_from_crash_ = !clean;
  if (clean) return Status::OK();

  // --- Redo: repeat history from the oldest recLSN. ---
  // The dispatcher (this thread) scans the log once and routes each
  // DPT-qualified record to the worker owning its page; same-page
  // order is preserved by the partition, different pages replay
  // concurrently over the sharded buffer pool. threads == 1 applies
  // inline: the serial path, in the serial order.
  t0 = clock_->NowMicros();
  Lsn redo_start = end_lsn;
  for (const auto& [pid, rec_lsn] : dpt) {
    if (rec_lsn < redo_start) redo_start = rec_lsn;
  }
  // Clamp to the oldest byte EITHER tier retains: with fuzzy
  // checkpoints the min recLSN may predate the master checkpoint, and
  // with the archive tier those records may live below the active log's
  // start -- the cursor reads across the boundary transparently.
  if (redo_start < wal_->oldest_lsn()) redo_start = wal_->oldest_lsn();
  {
    replay::PagePool pool(threads,
                          [this](size_t, Lsn lsn, const LogRecord& rec) {
                            return RedoOne(lsn, rec);
                          });
    Status scan = cur.SeekTo(redo_start);
    while (scan.ok() && cur.Valid() && cur.lsn() < end_lsn) {
      const Lsn lsn = cur.lsn();
      const LogRecord& rec = cur.record();
      auto it = rec.IsPageRecord() ? dpt.find(rec.page_id) : dpt.end();
      if (it != dpt.end() && lsn >= it->second) {
        if (!pool.Dispatch(lsn, rec)) break;  // poisoned: stop scanning
      }
      scan = cur.Next();
    }
    Status applied = pool.Finish();
    REWIND_RETURN_IF_ERROR(scan);
    REWIND_RETURN_IF_ERROR(applied);
    recovery_stats_.redo_records = pool.dispatched();
  }
  recovery_stats_.redo_micros = clock_->NowMicros() - t0;

  // --- Undo: roll back losers with CLRs. ---
  // Partitioned by transaction: a loser's chain walk is sequential,
  // different losers are disjoint (user rows by two-phase locking,
  // system-transaction pages by the SMO's tree latch). System losers
  // go first and serially -- an in-flight SMO's structural changes
  // must be reverted before by-key undo re-traverses that tree, and
  // at the split every user record on the tree predates the SMO.
  t0 = clock_->NowMicros();
  recovery_stats_.loser_transactions = att.size();
  if (threads == 1) {
    // Serial degenerate case: the classic interleaved walk, undoing
    // the globally largest next-LSN first (identical to the
    // pre-parallel path, CLR layout included).
    PhysicalUndoApplier physical_applier(buffers_.get(), ops_.get());
    LogicalUndoApplier logical_applier(write_ctx());
    std::unordered_map<TxnId, Transaction*> losers;
    for (const auto& [id, last] : att) {
      losers[id] = txns_->AdoptForRecovery(id, last);
    }
    std::unordered_map<TxnId, Lsn> cursor(att.begin(), att.end());
    while (!cursor.empty()) {
      TxnId victim = 0;
      Lsn max_lsn = 0;
      for (const auto& [id, lsn] : cursor) {
        if (lsn >= max_lsn) {
          max_lsn = lsn;
          victim = id;
        }
      }
      if (max_lsn == kInvalidLsn) break;
      REWIND_RETURN_IF_ERROR(cur.SeekToChain(max_lsn));
      const LogRecord& rec = cur.record();
      Transaction* txn = losers[victim];
      if (rec.type == LogType::kClr) {
        cursor[victim] = rec.undo_next_lsn;
      } else if (rec.type == LogType::kBegin) {
        cursor[victim] = kInvalidLsn;
      } else {
        UndoApplier* applier =
            rec.is_system ? static_cast<UndoApplier*>(&physical_applier)
                          : static_cast<UndoApplier*>(&logical_applier);
        REWIND_RETURN_IF_ERROR(applier->UndoRecord(txn, max_lsn, rec));
        cursor[victim] = rec.prev_lsn;
      }
      if (cursor[victim] == kInvalidLsn) {
        LogRecord abort;
        abort.type = LogType::kAbort;
        abort.txn_id = victim;
        abort.prev_lsn = txn->last_lsn;
        wal_->Append(abort);
        txns_->Forget(txn);
        cursor.erase(victim);
      }
    }
  } else {
    // Classify each loser by its last record's is_system flag (every
    // record carries it), then: system losers serially, user losers
    // fanned out across the replay workers.
    std::vector<AttEntry> system_losers;
    std::vector<AttEntry> user_losers;
    for (const auto& [id, last] : att) {
      REWIND_RETURN_IF_ERROR(cur.SeekToChain(last));
      if (cur.record().is_system) {
        system_losers.push_back({id, last});
      } else {
        user_losers.push_back({id, last});
      }
    }
    for (const AttEntry& e : system_losers) {
      REWIND_RETURN_IF_ERROR(UndoLoser(e.txn_id, e.last_lsn));
    }
    REWIND_RETURN_IF_ERROR(replay::ParallelFor(
        threads, user_losers.size(), [&](size_t i) {
          return UndoLoser(user_losers[i].txn_id, user_losers[i].last_lsn);
        }));
  }
  recovery_stats_.undo_micros = clock_->NowMicros() - t0;
  REWIND_RETURN_IF_ERROR(wal_->FlushAll());
  return Checkpoint();
}

// --------------------------- transactions -----------------------------

Transaction* Database::Begin() {
  // The BEGIN record is staged in the transaction's wal::Writer and
  // published together with the first update.
  return txns_->Begin();
}

Status Database::Commit(Transaction* txn, CommitMode mode) {
  txn->commit_mode = mode;
  return Commit(txn);
}

Status Database::Commit(Transaction* txn) {
  TxnId id = txn->id;
  REWIND_RETURN_IF_ERROR(txns_->Commit(txn));
  // Execute deferred drops (page deallocation) outside the user
  // transaction so an abort never races re-allocation.
  std::vector<DeferredDrop> drops;
  {
    std::lock_guard<std::mutex> g(deferred_mu_);
    auto it = deferred_drops_.find(id);
    if (it != deferred_drops_.end()) {
      drops = std::move(it->second);
      deferred_drops_.erase(it);
    }
  }
  for (const DeferredDrop& d : drops) {
    Transaction* sys = txns_->Begin(/*is_system=*/true);
    BTree tree(d.tree);
    std::unique_lock<std::shared_mutex> tl(*TreeLatch(d.tree));
    Status s = tree.Drop(write_ctx(), sys);
    if (!s.ok()) return s;
    REWIND_RETURN_IF_ERROR(txns_->Commit(sys));
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status Database::Abort(Transaction* txn) {
  {
    std::lock_guard<std::mutex> g(deferred_mu_);
    deferred_drops_.erase(txn->id);
  }
  LogicalUndoApplier applier(write_ctx());
  return txns_->Abort(txn, &applier);
}

std::shared_mutex* Database::TreeLatch(TreeId tree) {
  std::lock_guard<std::mutex> g(tree_latches_mu_);
  auto& slot = tree_latches_[tree];
  if (slot == nullptr) slot = std::make_unique<std::shared_mutex>();
  return slot.get();
}

// ------------------------------- DDL ----------------------------------

Status Database::CreateTable(Transaction* txn, const std::string& name,
                             const Schema& schema) {
  if (schema.num_key_columns() == 0 ||
      schema.num_key_columns() > schema.num_columns()) {
    return Status::InvalidArgument("schema needs a key prefix");
  }
  std::lock_guard<std::mutex> g(ddl_mu_);
  // Catalog rows obey strict 2PL like user rows: without the row lock,
  // a CREATE could re-insert a name whose DROP is still in flight,
  // which breaks abort (the undo would collide) and the as-of snapshot
  // boundary invariant (an in-flight delete whose key is present).
  REWIND_RETURN_IF_ERROR(
      locks_.Acquire(txn->id,
                     RowLockKey(Catalog::kSysTablesRoot, Catalog::NameKey(name)),
                     LockMode::kExclusive));
  if (catalog_->GetTable(name).ok()) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  REWIND_ASSIGN_OR_RETURN(TreeId root, BTree::Create(write_ctx(), txn));
  TableInfo info;
  info.table_id = AllocateObjectId();
  info.name = name;
  info.root = root;
  info.schema = schema;
  return catalog_->PutTable(write_ctx(), txn, info);
}

Status Database::DropTable(Transaction* txn, const std::string& name) {
  std::lock_guard<std::mutex> g(ddl_mu_);
  REWIND_RETURN_IF_ERROR(
      locks_.Acquire(txn->id,
                     RowLockKey(Catalog::kSysTablesRoot, Catalog::NameKey(name)),
                     LockMode::kExclusive));
  REWIND_ASSIGN_OR_RETURN(TableInfo info, catalog_->GetTable(name));
  REWIND_ASSIGN_OR_RETURN(std::vector<IndexInfo> indexes,
                          catalog_->ListIndexesOf(info.table_id));
  // Exclusive schema locks: no transaction may have in-flight changes
  // on the table when its pages are eventually deallocated.
  REWIND_RETURN_IF_ERROR(locks_.Acquire(txn->id, SchemaLockKey(info.root),
                                        LockMode::kExclusive));
  for (const IndexInfo& idx : indexes) {
    REWIND_RETURN_IF_ERROR(locks_.Acquire(txn->id, SchemaLockKey(idx.root),
                                          LockMode::kExclusive));
    REWIND_RETURN_IF_ERROR(locks_.Acquire(
        txn->id, RowLockKey(Catalog::kSysIndexesRoot, Catalog::NameKey(idx.name)),
        LockMode::kExclusive));
  }
  // Erase catalog rows inside the user transaction (undoable, and what
  // as-of metadata queries rewind through); defer page deallocation.
  REWIND_RETURN_IF_ERROR(catalog_->EraseTable(write_ctx(), txn, name));
  std::lock_guard<std::mutex> dg(deferred_mu_);
  auto& drops = deferred_drops_[txn->id];
  for (const IndexInfo& idx : indexes) {
    REWIND_RETURN_IF_ERROR(catalog_->EraseIndex(write_ctx(), txn, idx.name));
    drops.push_back({idx.root});
  }
  drops.push_back({info.root});
  return Status::OK();
}

Status Database::CreateIndex(Transaction* txn, const std::string& index_name,
                             const std::string& table_name,
                             const std::vector<std::string>& columns) {
  std::lock_guard<std::mutex> g(ddl_mu_);
  REWIND_RETURN_IF_ERROR(locks_.Acquire(
      txn->id,
      RowLockKey(Catalog::kSysIndexesRoot, Catalog::NameKey(index_name)),
      LockMode::kExclusive));
  if (catalog_->GetIndex(index_name).ok()) {
    return Status::AlreadyExists("index '" + index_name + "' exists");
  }
  REWIND_ASSIGN_OR_RETURN(TableInfo tinfo, catalog_->GetTable(table_name));
  IndexInfo info;
  info.index_id = AllocateObjectId();
  info.name = index_name;
  info.table_id = tinfo.table_id;
  for (const std::string& col : columns) {
    int idx = tinfo.schema.ColumnIndex(col);
    if (idx < 0) {
      return Status::InvalidArgument("no column '" + col + "' in table '" +
                                     table_name + "'");
    }
    info.key_columns.push_back(static_cast<uint16_t>(idx));
  }
  REWIND_ASSIGN_OR_RETURN(info.root, BTree::Create(write_ctx(), txn));
  REWIND_RETURN_IF_ERROR(catalog_->PutIndex(write_ctx(), txn, info));

  // Backfill from existing rows.
  BTree table_tree(tinfo.root);
  BTree index_tree(info.root);
  std::vector<ColumnType> types = tinfo.schema.types();
  Status backfill;
  REWIND_ASSIGN_OR_RETURN(
      ScanOutcome so,
      table_tree.Scan(buffers_.get(), Slice(), Slice(),
                      [&](Slice pk, Slice value) {
                        auto row = DecodeRow(types, value);
                        if (!row.ok()) {
                          backfill = row.status();
                          return ScanAction::kStop;
                        }
                        std::string ikey;
                        for (uint16_t c : info.key_columns) {
                          EncodeKeyValue((*row)[c], &ikey);
                        }
                        ikey.append(pk.data(), pk.size());
                        backfill = index_tree.Insert(write_ctx(), txn, ikey,
                                                     pk);
                        return backfill.ok() ? ScanAction::kContinue
                                             : ScanAction::kStop;
                      }));
  (void)so;
  return backfill;
}

Status Database::DropIndex(Transaction* txn, const std::string& index_name) {
  std::lock_guard<std::mutex> g(ddl_mu_);
  REWIND_RETURN_IF_ERROR(locks_.Acquire(
      txn->id,
      RowLockKey(Catalog::kSysIndexesRoot, Catalog::NameKey(index_name)),
      LockMode::kExclusive));
  REWIND_ASSIGN_OR_RETURN(IndexInfo info, catalog_->GetIndex(index_name));
  REWIND_RETURN_IF_ERROR(catalog_->EraseIndex(write_ctx(), txn, index_name));
  std::lock_guard<std::mutex> dg(deferred_mu_);
  deferred_drops_[txn->id].push_back({info.root});
  return Status::OK();
}

// --------------------------- maintenance ------------------------------

std::string Database::ResolveArchiveDir() const {
  if (opts_.archive_dir == "auto") {
    return DefaultArchiveEnabled() ? dir_ + "/archive" : std::string();
  }
  return opts_.archive_dir;
}

Status Database::Checkpoint() { return CheckpointImpl(/*fuzzy=*/false); }

Status Database::FuzzyCheckpoint() { return CheckpointImpl(/*fuzzy=*/true); }

Status Database::CheckpointImpl(bool fuzzy) {
  std::lock_guard<std::mutex> g(checkpoint_serial_mu_);
  LogRecord begin;
  begin.type = LogType::kCheckpointBegin;
  begin.wall_clock = clock_->NowMicros();
  Lsn begin_lsn = wal_->Append(begin);

  LogRecord end;
  end.type = LogType::kCheckpointEnd;
  end.wall_clock = begin.wall_clock;
  end.att = txns_->ActiveTransactions();
  if (fuzzy) {
    // Two-checkpoint rule: only pages dirty since BEFORE the previous
    // checkpoint are written back, so the redo floor advances one
    // checkpoint interval per checkpoint while writers never drain.
    // (Commits, evictions and page latching proceed concurrently; the
    // DPT captured below is whatever remains dirty.)
    const Lsn prev_begin = master_checkpoint_lsn_.load();
    if (prev_begin != kInvalidLsn) {
      for (const DptEntry& e : buffers_->DirtyPageTable()) {
        if (e.rec_lsn < prev_begin) {
          REWIND_RETURN_IF_ERROR(buffers_->FlushPage(e.page_id));
        }
      }
    }
  } else {
    // Sharp: flush every dirty page. Snapshot recovery's redo pass then
    // needs no page reads (section 5.2), and crash redo starts no
    // earlier than the checkpoint.
    REWIND_RETURN_IF_ERROR(buffers_->FlushAll());
  }
  end.dpt = buffers_->DirtyPageTable();
  wal_->Append(end);
  REWIND_RETURN_IF_ERROR(wal_->FlushAll());

  Lsn redo_floor = begin_lsn;
  for (const DptEntry& e : end.dpt) {
    redo_floor = std::min(redo_floor, e.rec_lsn);
  }
  master_checkpoint_lsn_ = begin_lsn;
  checkpoint_redo_floor_ = redo_floor;
  checkpoint_wal_mark_ = wal_->next_lsn();
  REWIND_RETURN_IF_ERROR(WriteSuperBlock());
  if (fuzzy) {
    // Bounded-log steady state: everything below the new truncation
    // floor moves to the archive tier (no-op when the tier is off).
    return TrimActiveWal();
  }
  return Status::OK();
}

void Database::MaybeAutoCheckpoint() {
  const uint64_t interval = opts_.checkpoint_interval_bytes;
  if (interval == 0 || closed_) return;
  if (wal_->next_lsn() - checkpoint_wal_mark_.load(std::memory_order_relaxed) <
      interval) {
    return;
  }
  bool expected = false;
  if (!auto_checkpoint_running_.compare_exchange_strong(expected, true)) {
    return;  // another committer is already paying for it
  }
  Status s = FuzzyCheckpoint();
  (void)s;  // best effort; surfaced by the next explicit checkpoint
  auto_checkpoint_running_.store(false);
}

Lsn Database::TruncationFloor() {
  Lsn floor = checkpoint_redo_floor_.load();
  if (floor == kInvalidLsn) floor = master_checkpoint_lsn_.load();
  if (floor == kInvalidLsn) return kInvalidLsn;
  Lsn oldest_active = txns_->OldestActiveFirstLsn();
  if (oldest_active != kInvalidLsn && oldest_active < floor) {
    floor = oldest_active;
  }
  {
    std::lock_guard<std::mutex> g(anchors_mu_);
    if (!snapshot_anchors_.empty() && *snapshot_anchors_.begin() < floor) {
      floor = *snapshot_anchors_.begin();
    }
  }
  return floor;
}

Status Database::TrimActiveWal() {
  if (wal_->archive() == nullptr) return Status::OK();
  const Lsn floor = TruncationFloor();
  if (floor == kInvalidLsn || floor <= wal_->start_lsn()) return Status::OK();
  REWIND_RETURN_IF_ERROR(wal_->ArchiveUpTo(floor));
  // Truncate only past the archive high water mark: if sealing stopped
  // short of the floor (unflushed tail) the unsealed remainder stays
  // active. The version store is deliberately NOT truncated here --
  // targets below the trim point remain reachable through the archive.
  const Lsn hw = wal_->archive()->high_water();
  if (hw == kInvalidLsn) return Status::OK();
  const Lsn target = std::min(floor, hw);
  if (target > wal_->start_lsn()) {
    REWIND_RETURN_IF_ERROR(wal_->TruncateBefore(target));
  }
  return Status::OK();
}

Status Database::SetUndoInterval(uint64_t micros) {
  undo_interval_micros_ = micros;
  return WriteSuperBlock();
}

void Database::RegisterSnapshotAnchor(Lsn anchor) {
  std::lock_guard<std::mutex> g(anchors_mu_);
  snapshot_anchors_.insert(anchor);
}

void Database::UnregisterSnapshotAnchor(Lsn anchor) {
  std::lock_guard<std::mutex> g(anchors_mu_);
  auto it = snapshot_anchors_.find(anchor);
  if (it != snapshot_anchors_.end()) snapshot_anchors_.erase(it);
}

size_t Database::SnapshotAnchorCount() {
  std::lock_guard<std::mutex> g(anchors_mu_);
  return snapshot_anchors_.size();
}

namespace {

/// Begin-LSN of the newest checkpoint at or before `cutoff` wall-clock
/// time; kInvalidLsn if none. Everything below it is outside the
/// corresponding retention window.
Lsn NewestCheckpointBefore(const std::vector<CheckpointRef>& ckpts,
                           WallClock cutoff) {
  Lsn out = kInvalidLsn;
  for (const CheckpointRef& c : ckpts) {
    if (c.wall_clock <= cutoff) out = c.begin_lsn;
  }
  return out;
}

}  // namespace

Status Database::EnforceRetention() {
  const WallClock now = clock_->NowMicros();
  const uint64_t retention = undo_interval_micros_.load();

  if (wal_->archive() == nullptr) {
    // No archive tier: truncation IS the horizon (seed behaviour).
    // Never truncate what crash recovery, an active transaction or a
    // live snapshot still needs.
    if (now < retention) return Status::OK();
    Lsn candidate =
        NewestCheckpointBefore(wal_->checkpoints(), now - retention);
    if (candidate == kInvalidLsn) return Status::OK();
    Lsn floor = TruncationFloor();
    Lsn target = std::min(candidate, floor);
    if (target == kInvalidLsn || target <= wal_->start_lsn()) {
      return Status::OK();
    }
    REWIND_RETURN_IF_ERROR(wal_->TruncateBefore(target));
    // Cached versions wholly before the truncation point can no longer
    // serve any in-retention target; drop them so the store's budget
    // goes to reachable history.
    version_store_->TruncateBefore(target);
    return Status::OK();
  }

  // Archive tier on: the active log is bounded by seal-then-truncate up
  // to the truncation floor (the AS OF horizon is unaffected -- reads
  // below the cut fall through to the archive)...
  REWIND_RETURN_IF_ERROR(TrimActiveWal());

  // ...and the HORIZON is enforced on the archive instead: drop sealed
  // segments wholly older than the archive retention window, but never
  // past a pin (TruncationFloor includes the oldest live snapshot).
  const uint64_t archive_retention = opts_.archive_retention_micros != 0
                                         ? opts_.archive_retention_micros
                                         : retention;
  if (now < archive_retention) return Status::OK();
  Lsn drop = NewestCheckpointBefore(wal_->checkpoints(),
                                    now - archive_retention);
  if (drop == kInvalidLsn) return Status::OK();
  const Lsn floor = TruncationFloor();
  if (floor != kInvalidLsn) drop = std::min(drop, floor);
  REWIND_RETURN_IF_ERROR(wal_->DropArchiveBefore(drop));
  // Only now is the history below `drop` truly unreachable.
  version_store_->TruncateBefore(drop);
  return Status::OK();
}

void Database::StartCheckpointer() {
  if (opts_.checkpoint_interval_micros == 0) return;
  checkpointer_ = std::thread([this] {
    std::unique_lock<std::mutex> g(ckpt_mu_);
    while (!stop_checkpointer_) {
      ckpt_cv_.wait_for(
          g, std::chrono::microseconds(opts_.checkpoint_interval_micros));
      if (stop_checkpointer_) break;
      g.unlock();
      // Fuzzy: the background cadence must never drain the pool or
      // stall writers; retention (and with it active-log trimming)
      // rides along.
      Status s = FuzzyCheckpoint();
      (void)s;
      s = EnforceRetention();
      (void)s;
      g.lock();
    }
  });
}

void Database::StopCheckpointer() {
  if (!checkpointer_.joinable()) return;
  {
    std::lock_guard<std::mutex> g(ckpt_mu_);
    stop_checkpointer_ = true;
  }
  ckpt_cv_.notify_all();
  checkpointer_.join();
}

Result<Table> Database::OpenTable(const std::string& name) {
  REWIND_ASSIGN_OR_RETURN(TableInfo info, catalog_->GetTable(name));
  REWIND_ASSIGN_OR_RETURN(std::vector<IndexInfo> indexes,
                          catalog_->ListIndexesOf(info.table_id));
  return Table(this, std::move(info), std::move(indexes));
}

}  // namespace rewinddb
