#include "engine/table.h"

#include <shared_mutex>

#include "btree/btree.h"
#include "engine/database.h"

namespace rewinddb {

Table::Table(Database* db, TableInfo info, std::vector<IndexInfo> indexes)
    : db_(db),
      info_(std::move(info)),
      indexes_(std::move(indexes)),
      types_(info_.schema.types()) {}

std::string Table::IndexKeyFor(const IndexInfo& idx, const Row& row,
                               const std::string& pk) const {
  std::string ikey;
  for (uint16_t c : idx.key_columns) EncodeKeyValue(row[c], &ikey);
  ikey += pk;  // primary key suffix makes secondary entries unique
  return ikey;
}

Status Table::MaintainIndexesOnInsert(Transaction* txn, const Row& row,
                                      const std::string& pk) {
  for (const IndexInfo& idx : indexes_) {
    BTree tree(idx.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(idx.root));
    REWIND_RETURN_IF_ERROR(
        tree.Insert(db_->write_ctx(), txn, IndexKeyFor(idx, row, pk), pk));
  }
  return Status::OK();
}

Status Table::MaintainIndexesOnDelete(Transaction* txn, const Row& old_row,
                                      const std::string& pk) {
  for (const IndexInfo& idx : indexes_) {
    BTree tree(idx.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(idx.root));
    REWIND_RETURN_IF_ERROR(
        tree.Delete(db_->write_ctx(), txn, IndexKeyFor(idx, old_row, pk)));
  }
  return Status::OK();
}

Status Table::Insert(Transaction* txn, const Row& row) {
  REWIND_RETURN_IF_ERROR(info_.schema.CheckRow(row));
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, SchemaLockKey(info_.root), LockMode::kShared));
  std::string pk = info_.schema.KeyOf(row);
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, RowLockKey(info_.root, pk), LockMode::kExclusive));
  std::string value;
  EncodeRow(types_, row, &value);
  {
    BTree tree(info_.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    REWIND_RETURN_IF_ERROR(tree.Insert(db_->write_ctx(), txn, pk, value));
  }
  return MaintainIndexesOnInsert(txn, row, pk);
}

Status Table::Update(Transaction* txn, const Row& row) {
  REWIND_RETURN_IF_ERROR(info_.schema.CheckRow(row));
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, SchemaLockKey(info_.root), LockMode::kShared));
  std::string pk = info_.schema.KeyOf(row);
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, RowLockKey(info_.root, pk), LockMode::kExclusive));
  // Fetch the old row for index maintenance.
  Row old_row;
  {
    BTree tree(info_.root);
    std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    auto old = tree.Get(db_->buffers(), pk);
    if (!old.ok()) return old.status();
    REWIND_ASSIGN_OR_RETURN(old_row, DecodeRow(types_, *old));
  }
  std::string value;
  EncodeRow(types_, row, &value);
  {
    BTree tree(info_.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    REWIND_RETURN_IF_ERROR(tree.Update(db_->write_ctx(), txn, pk, value));
  }
  // Refresh index entries whose key columns changed.
  for (const IndexInfo& idx : indexes_) {
    std::string old_ikey = IndexKeyFor(idx, old_row, pk);
    std::string new_ikey = IndexKeyFor(idx, row, pk);
    if (old_ikey == new_ikey) continue;
    BTree tree(idx.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(idx.root));
    REWIND_RETURN_IF_ERROR(tree.Delete(db_->write_ctx(), txn, old_ikey));
    REWIND_RETURN_IF_ERROR(tree.Insert(db_->write_ctx(), txn, new_ikey, pk));
  }
  return Status::OK();
}

Status Table::Delete(Transaction* txn, const Row& key_values) {
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, SchemaLockKey(info_.root), LockMode::kShared));
  std::string pk = EncodeKey(key_values, info_.schema.num_key_columns());
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, RowLockKey(info_.root, pk), LockMode::kExclusive));
  Row old_row;
  {
    BTree tree(info_.root);
    std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    auto old = tree.Get(db_->buffers(), pk);
    if (!old.ok()) return old.status();
    REWIND_ASSIGN_OR_RETURN(old_row, DecodeRow(types_, *old));
  }
  {
    BTree tree(info_.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    REWIND_RETURN_IF_ERROR(tree.Delete(db_->write_ctx(), txn, pk));
  }
  return MaintainIndexesOnDelete(txn, old_row, pk);
}

Result<Row> Table::Get(Transaction* txn, const Row& key_values) {
  std::string pk = EncodeKey(key_values, info_.schema.num_key_columns());
  if (txn != nullptr) {
    REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id, RowLockKey(info_.root, pk), LockMode::kShared));
  }
  BTree tree(info_.root);
  std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
  REWIND_ASSIGN_OR_RETURN(std::string value, tree.Get(db_->buffers(), pk));
  return DecodeRow(types_, value);
}

Status Table::Scan(Transaction* txn, const std::optional<Row>& lower,
                   const std::optional<Row>& upper,
                   const std::function<bool(const Row&)>& cb) {
  std::string lo =
      lower ? EncodeKey(*lower, lower->size()) : std::string();
  std::string hi = upper ? EncodeKey(*upper, upper->size()) : std::string();

  BTree tree(info_.root);
  std::string cursor = lo;
  bool done = false;
  Status inner;
  while (!done) {
    ScanOutcome out;
    {
      std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
      auto r = tree.Scan(
          db_->buffers(), cursor, hi, [&](Slice key, Slice value) {
            if (txn != nullptr) {
              Status ls = db_->locks()->TryAcquire(
                  txn->id, RowLockKey(info_.root, key.ToString()),
                  LockMode::kShared);
              if (ls.IsBusy()) return ScanAction::kYield;
              if (!ls.ok()) {
                inner = ls;
                return ScanAction::kStop;
              }
            }
            auto row = DecodeRow(types_, value);
            if (!row.ok()) {
              inner = row.status();
              return ScanAction::kStop;
            }
            if (!cb(*row)) {
              done = true;
              return ScanAction::kStop;
            }
            return ScanAction::kContinue;
          });
      if (!r.ok()) return r.status();
      out = std::move(*r);
    }
    REWIND_RETURN_IF_ERROR(inner);
    if (!out.yielded) break;
    // Wait for the blocking writer with no latches held, then resume at
    // the yielded key (inclusive: the row has not been delivered yet).
    REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id, RowLockKey(info_.root, out.yield_key), LockMode::kShared));
    cursor = out.yield_key;
  }
  return Status::OK();
}

Status Table::IndexScan(Transaction* txn, const std::string& index_name,
                        const Row& prefix_values,
                        const std::function<bool(const Row&)>& cb) {
  const IndexInfo* idx = nullptr;
  for (const IndexInfo& i : indexes_) {
    if (i.name == index_name) {
      idx = &i;
      break;
    }
  }
  if (idx == nullptr) {
    return Status::NotFound("index '" + index_name + "' not on this table");
  }
  if (prefix_values.size() > idx->key_columns.size()) {
    return Status::InvalidArgument("prefix longer than index key");
  }
  std::string prefix;
  for (const Value& v : prefix_values) EncodeKeyValue(v, &prefix);

  BTree itree(idx->root);
  std::vector<std::string> pks;
  {
    std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(idx->root));
    REWIND_ASSIGN_OR_RETURN(
        ScanOutcome out,
        itree.Scan(db_->buffers(), prefix, Slice(), [&](Slice key,
                                                        Slice value) {
          if (!key.starts_with(prefix)) return ScanAction::kStop;
          pks.push_back(value.ToString());
          return ScanAction::kContinue;
        }));
    (void)out;
  }
  // Fetch base rows outside the index latch; row locks make each fetch
  // safe, and a row deleted in between simply no longer qualifies.
  BTree btree(info_.root);
  for (const std::string& pk : pks) {
    if (txn != nullptr) {
      REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
          txn->id, RowLockKey(info_.root, pk), LockMode::kShared));
    }
    std::string value;
    {
      std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
      auto v = btree.Get(db_->buffers(), pk);
      if (v.status().IsNotFound()) continue;
      if (!v.ok()) return v.status();
      value = std::move(*v);
    }
    REWIND_ASSIGN_OR_RETURN(Row row, DecodeRow(types_, value));
    if (!cb(row)) break;
  }
  return Status::OK();
}

Result<uint64_t> Table::Count() {
  BTree tree(info_.root);
  std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
  return tree.Count(db_->buffers());
}

}  // namespace rewinddb
