#include "engine/table.h"

#include <shared_mutex>

#include "btree/btree.h"
#include "engine/database.h"
#include "engine/read_core.h"

namespace rewinddb {

namespace {

/// Live-read gate: rows are visible once their lock can be shared.
/// With no transaction the gate is a pass-through (untracked read).
class LiveRowGate : public RowGate {
 public:
  LiveRowGate(Database* db, Transaction* txn) : db_(db), txn_(txn) {}

  BufferManager* buffers() override { return db_->buffers(); }
  std::shared_mutex* TreeLatch(TreeId tree) override {
    return db_->TreeLatch(tree);
  }
  Status BeforePointRead(TreeId tree, const std::string& pk) override {
    if (txn_ == nullptr) return Status::OK();
    return db_->locks()->Acquire(txn_->id, RowLockKey(tree, pk),
                                 LockMode::kShared);
  }
  bool ScanNeedsRowCheck() override { return txn_ != nullptr; }
  Result<Check> CheckScanRow(TreeId tree, const std::string& key) override {
    if (txn_ == nullptr) return Check::kVisible;
    Status s = db_->locks()->TryAcquire(txn_->id, RowLockKey(tree, key),
                                        LockMode::kShared);
    if (s.IsBusy()) return Check::kYield;
    if (!s.ok()) return s;
    return Check::kVisible;
  }
  Status AwaitRow(TreeId tree, const std::string& key) override {
    if (txn_ == nullptr) return Status::OK();
    return db_->locks()->Acquire(txn_->id, RowLockKey(tree, key),
                                 LockMode::kShared);
  }
  bool CountNeedsVisibilityScan() override { return false; }

 private:
  Database* db_;
  Transaction* txn_;
};

}  // namespace

Table::Table(Database* db, TableInfo info, std::vector<IndexInfo> indexes)
    : db_(db),
      info_(std::move(info)),
      indexes_(std::move(indexes)),
      types_(info_.schema.types()) {}

std::string Table::IndexKeyFor(const IndexInfo& idx, const Row& row,
                               const std::string& pk) const {
  std::string ikey;
  for (uint16_t c : idx.key_columns) EncodeKeyValue(row[c], &ikey);
  ikey += pk;  // primary key suffix makes secondary entries unique
  return ikey;
}

Status Table::MaintainIndexesOnInsert(Transaction* txn, const Row& row,
                                      const std::string& pk) {
  for (const IndexInfo& idx : indexes_) {
    BTree tree(idx.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(idx.root));
    REWIND_RETURN_IF_ERROR(
        tree.Insert(db_->write_ctx(), txn, IndexKeyFor(idx, row, pk), pk));
  }
  return Status::OK();
}

Status Table::MaintainIndexesOnDelete(Transaction* txn, const Row& old_row,
                                      const std::string& pk) {
  for (const IndexInfo& idx : indexes_) {
    BTree tree(idx.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(idx.root));
    REWIND_RETURN_IF_ERROR(
        tree.Delete(db_->write_ctx(), txn, IndexKeyFor(idx, old_row, pk)));
  }
  return Status::OK();
}

Status Table::Insert(Transaction* txn, const Row& row) {
  REWIND_RETURN_IF_ERROR(info_.schema.CheckRow(row));
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, SchemaLockKey(info_.root), LockMode::kShared));
  std::string pk = info_.schema.KeyOf(row);
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, RowLockKey(info_.root, pk), LockMode::kExclusive));
  std::string value;
  EncodeRow(types_, row, &value);
  {
    BTree tree(info_.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    REWIND_RETURN_IF_ERROR(tree.Insert(db_->write_ctx(), txn, pk, value));
  }
  return MaintainIndexesOnInsert(txn, row, pk);
}

Status Table::Update(Transaction* txn, const Row& row) {
  REWIND_RETURN_IF_ERROR(info_.schema.CheckRow(row));
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, SchemaLockKey(info_.root), LockMode::kShared));
  std::string pk = info_.schema.KeyOf(row);
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, RowLockKey(info_.root, pk), LockMode::kExclusive));
  // Fetch the old row for index maintenance.
  Row old_row;
  {
    BTree tree(info_.root);
    std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    auto old = tree.Get(db_->buffers(), pk);
    if (!old.ok()) return old.status();
    REWIND_ASSIGN_OR_RETURN(old_row, DecodeRow(types_, *old));
  }
  std::string value;
  EncodeRow(types_, row, &value);
  {
    BTree tree(info_.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    REWIND_RETURN_IF_ERROR(tree.Update(db_->write_ctx(), txn, pk, value));
  }
  // Refresh index entries whose key columns changed.
  for (const IndexInfo& idx : indexes_) {
    std::string old_ikey = IndexKeyFor(idx, old_row, pk);
    std::string new_ikey = IndexKeyFor(idx, row, pk);
    if (old_ikey == new_ikey) continue;
    BTree tree(idx.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(idx.root));
    REWIND_RETURN_IF_ERROR(tree.Delete(db_->write_ctx(), txn, old_ikey));
    REWIND_RETURN_IF_ERROR(tree.Insert(db_->write_ctx(), txn, new_ikey, pk));
  }
  return Status::OK();
}

Status Table::Delete(Transaction* txn, const Row& key_values) {
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, SchemaLockKey(info_.root), LockMode::kShared));
  std::string pk = EncodeKey(key_values, info_.schema.num_key_columns());
  REWIND_RETURN_IF_ERROR(db_->locks()->Acquire(
      txn->id, RowLockKey(info_.root, pk), LockMode::kExclusive));
  Row old_row;
  {
    BTree tree(info_.root);
    std::shared_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    auto old = tree.Get(db_->buffers(), pk);
    if (!old.ok()) return old.status();
    REWIND_ASSIGN_OR_RETURN(old_row, DecodeRow(types_, *old));
  }
  {
    BTree tree(info_.root);
    std::unique_lock<std::shared_mutex> tl(*db_->TreeLatch(info_.root));
    REWIND_RETURN_IF_ERROR(tree.Delete(db_->write_ctx(), txn, pk));
  }
  return MaintainIndexesOnDelete(txn, old_row, pk);
}

Result<Row> Table::Get(Transaction* txn, const Row& key_values) {
  LiveRowGate gate(db_, txn);
  return ReadCoreGet(&gate, info_, types_, key_values);
}

Status Table::Scan(Transaction* txn, const std::optional<Row>& lower,
                   const std::optional<Row>& upper,
                   const std::function<bool(const Row&)>& cb) {
  LiveRowGate gate(db_, txn);
  return ReadCoreScan(&gate, info_, types_, lower, upper, cb);
}

Status Table::IndexScan(Transaction* txn, const std::string& index_name,
                        const Row& prefix_values,
                        const std::function<bool(const Row&)>& cb) {
  LiveRowGate gate(db_, txn);
  return ReadCoreIndexScan(&gate, info_, indexes_, types_, index_name,
                           prefix_values, cb);
}

Result<uint64_t> Table::Count() {
  LiveRowGate gate(db_, nullptr);
  return ReadCoreCount(&gate, info_, types_);
}

}  // namespace rewinddb
