// Table: typed row operations over a clustered B-tree, with row
// locking, secondary index maintenance and lock-safe scans.
//
// DEPRECATED as an application surface: applications should use the
// api/ layer (Connection routes DML, Connection::Live()/AsOf() hand out
// the unified ReadView/TableView read surface). Table remains the
// engine-level write path underneath api/ and for engine-internal code;
// its read methods delegate to engine/read_core.h.
#ifndef REWINDDB_ENGINE_TABLE_H_
#define REWINDDB_ENGINE_TABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/value.h"
#include "txn/transaction.h"

namespace rewinddb {

class Database;

/// Handle to one table of the primary database. Cheap to copy-construct
/// via Database::OpenTable; holds no resources beyond descriptors.
///
/// Locking protocol (strict two-phase, row granularity):
///  * writers X-lock the primary key BEFORE taking any latch;
///  * point reads S-lock the key first, then read;
///  * scans use try-lock + yield: if a row's lock is busy, the scan
///    releases every latch, waits for the lock, and resumes at that
///    key. A scan therefore never waits on a lock while holding a
///    latch, which is what makes the lock/latch order deadlock-free.
class Table {
 public:
  Table(Database* db, TableInfo info, std::vector<IndexInfo> indexes);

  const Schema& schema() const { return info_.schema; }
  const TableInfo& info() const { return info_; }
  const std::vector<IndexInfo>& indexes() const { return indexes_; }

  /// Insert a full row. AlreadyExists if the key is taken.
  Status Insert(Transaction* txn, const Row& row);

  /// Replace the row with the same primary key. NotFound if absent.
  Status Update(Transaction* txn, const Row& row);

  /// Delete by key values (a Row containing just the key columns, or a
  /// full row -- only the key prefix is used).
  Status Delete(Transaction* txn, const Row& key_values);

  /// Point lookup by key values. S-locks the row when `txn` != nullptr.
  Result<Row> Get(Transaction* txn, const Row& key_values);

  /// Scan rows with key in [lower, upper) in key order; nullopt bounds
  /// are open. The callback returns false to stop early.
  Status Scan(Transaction* txn, const std::optional<Row>& lower,
              const std::optional<Row>& upper,
              const std::function<bool(const Row&)>& cb);

  /// Equality lookup through a secondary index: `prefix_values` are
  /// values for (a prefix of) the index's key columns.
  Status IndexScan(Transaction* txn, const std::string& index_name,
                   const Row& prefix_values,
                   const std::function<bool(const Row&)>& cb);

  /// Row count (O(n); tests and examples).
  Result<uint64_t> Count();

 private:
  Status MaintainIndexesOnInsert(Transaction* txn, const Row& row,
                                 const std::string& pk);
  Status MaintainIndexesOnDelete(Transaction* txn, const Row& old_row,
                                 const std::string& pk);
  std::string IndexKeyFor(const IndexInfo& idx, const Row& row,
                          const std::string& pk) const;

  Database* db_;
  TableInfo info_;
  std::vector<IndexInfo> indexes_;
  std::vector<ColumnType> types_;
};

}  // namespace rewinddb

#endif  // REWINDDB_ENGINE_TABLE_H_
