#include "engine/flashback.h"

#include <shared_mutex>
#include <vector>

#include "btree/btree.h"
#include "page/slotted_page.h"
#include "txn/lock_manager.h"

namespace rewinddb {

namespace {

/// One reversible row operation of the victim, in log order.
struct VictimOp {
  LogType op;
  TreeId tree;
  std::string image;   // insert/delete: the entry; update: OLD entry
  std::string image2;  // update: NEW entry (the victim's after-image)
};

}  // namespace

Result<FlashbackResult> FlashbackTransaction(Database* db, TxnId victim) {
  wal::Wal* log = db->log();

  // Locate the victim's commit record with one forward cursor pass (the
  // ATT only knows active transactions); bounded by the retained log.
  // The commit record's prev_lsn is the chain head to undo from.
  Lsn commit_prev = kInvalidLsn;
  bool committed = false;
  bool aborted = false;
  {
    wal::Cursor cur = log->OpenCursor();
    REWIND_RETURN_IF_ERROR(cur.SeekTo(log->start_lsn()));
    while (cur.Valid()) {
      const LogRecord& rec = cur.record();
      if (rec.txn_id == victim) {
        if (rec.type == LogType::kCommit) {
          committed = true;
          commit_prev = rec.prev_lsn;
          break;
        }
        if (rec.type == LogType::kAbort) {
          aborted = true;
          break;
        }
      }
      REWIND_RETURN_IF_ERROR(cur.Next());
    }
  }
  if (aborted) {
    return Status::InvalidArgument("transaction " + std::to_string(victim) +
                                   " was rolled back; nothing to undo");
  }
  if (!committed) {
    // Either unknown or still active.
    return Status::NotFound("no committed transaction " +
                            std::to_string(victim) +
                            " found in the retained log");
  }

  // Collect the victim's row operations by walking its chain backwards
  // from the commit record (honouring CLR skips from any partial
  // rollback it performed while running).
  std::vector<VictimOp> reversed;  // in reverse-execution order
  {
    wal::Cursor cur = log->OpenCursor();
    REWIND_RETURN_IF_ERROR(cur.SeekToChain(commit_prev));
    while (cur.Valid()) {
      const LogRecord& rec = cur.record();
      if (rec.type == LogType::kClr) {
        REWIND_RETURN_IF_ERROR(cur.FollowUndoNext());
        continue;
      }
      if (rec.type == LogType::kBegin) break;
      if (!rec.is_system &&
          (rec.type == LogType::kInsert || rec.type == LogType::kDelete ||
           rec.type == LogType::kUpdate)) {
        reversed.push_back({rec.type, rec.tree_id, rec.image, rec.image2});
      }
      REWIND_RETURN_IF_ERROR(cur.FollowPrev());
    }
  }

  // Apply the inverses in a fresh transaction, with conflict checks.
  Transaction* txn = db->Begin();
  TreeWriteContext ctx = db->write_ctx();
  Status failure;
  size_t undone = 0;
  for (const VictimOp& op : reversed) {
    Slice entry = op.image;
    Slice key = SlottedPage::EntryKey(entry);
    // Strict 2PL on the row, then the tree's writer latch.
    failure = db->locks()->Acquire(txn->id, RowLockKey(op.tree, key.ToString()),
                                   LockMode::kExclusive);
    if (!failure.ok()) break;
    BTree tree(op.tree);
    std::unique_lock<std::shared_mutex> tl(*db->TreeLatch(op.tree));
    switch (op.op) {
      case LogType::kInsert: {
        // Undo an insert: the row must still hold the victim's value.
        auto cur = tree.Get(ctx.buffers, key);
        if (!cur.ok()) {
          failure = cur.status().IsNotFound()
                        ? Status::Aborted("flashback conflict: row deleted "
                                          "by a later transaction")
                        : cur.status();
          break;
        }
        if (Slice(*cur) != SlottedPage::EntryValue(entry)) {
          failure = Status::Aborted(
              "flashback conflict: row re-modified by a later transaction");
          break;
        }
        failure = tree.Delete(ctx, txn, key);
        break;
      }
      case LogType::kDelete: {
        // Undo a delete: the key must still be absent.
        auto cur = tree.Get(ctx.buffers, key);
        if (cur.ok()) {
          failure = Status::Aborted(
              "flashback conflict: key re-inserted by a later transaction");
          break;
        }
        if (!cur.status().IsNotFound()) {
          failure = cur.status();
          break;
        }
        failure = tree.Insert(ctx, txn, key,
                              SlottedPage::EntryValue(entry));
        break;
      }
      case LogType::kUpdate: {
        // Undo an update: the row must still hold the victim's NEW
        // value; restore the OLD one.
        auto cur = tree.Get(ctx.buffers, key);
        if (!cur.ok()) {
          failure = cur.status().IsNotFound()
                        ? Status::Aborted("flashback conflict: row deleted "
                                          "by a later transaction")
                        : cur.status();
          break;
        }
        if (Slice(*cur) != SlottedPage::EntryValue(op.image2)) {
          failure = Status::Aborted(
              "flashback conflict: row re-modified by a later transaction");
          break;
        }
        failure = tree.Update(ctx, txn, key,
                              SlottedPage::EntryValue(entry));
        break;
      }
      default:
        failure = Status::Corruption("flashback: unexpected op");
        break;
    }
    if (!failure.ok()) break;
    undone++;
  }

  if (!failure.ok()) {
    Status a = db->Abort(txn);
    (void)a;
    return failure;
  }
  FlashbackResult out;
  out.compensating_txn = txn->id;
  out.operations_undone = undone;
  REWIND_RETURN_IF_ERROR(db->Commit(txn));
  return out;
}

}  // namespace rewinddb
