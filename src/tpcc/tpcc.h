// Scaled-down TPC-C-like workload (paper section 6).
//
// The paper drives its evaluation with an internal scaled-down TPC-C
// (800 warehouses, 10 districts each, 8 clients x 25 users). RewindDB
// ships a configurable equivalent: the five standard transactions over
// the nine standard tables, with the STOCK-LEVEL transaction doubling
// as the as-of query of sections 6.2/6.3 (it reads the most recent 20
// orders of a district and counts under-threshold stock).
#ifndef REWINDDB_TPCC_TPCC_H_
#define REWINDDB_TPCC_TPCC_H_

#include <atomic>
#include <memory>
#include <string>

#include "api/read_view.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/table.h"

namespace rewinddb {

struct TpccConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 30;
  int items = 200;
  int min_order_lines = 5;
  int max_order_lines = 15;
  /// Initial orders pre-loaded per district.
  int initial_orders_per_district = 10;
  /// Fraction (percent) of new-order transactions that roll back
  /// (TPC-C's 1% invalid item clause) -- exercises undo machinery.
  int new_order_rollback_percent = 1;
  uint64_t seed = 12345;
};

/// Handle over a Database loaded with the TPC-C schema and data.
class TpccDatabase {
 public:
  /// Create tables + secondary index and bulk-load initial data.
  static Result<std::unique_ptr<TpccDatabase>> CreateAndLoad(
      Database* db, const TpccConfig& config);

  /// Attach to an already-loaded database.
  static Result<std::unique_ptr<TpccDatabase>> Attach(
      Database* db, const TpccConfig& config);

  // --- the five transactions; each runs one engine transaction ---
  // Aborted (deadlock victim) and intentional-rollback outcomes return
  // Status::Aborted; the driver retries/counts accordingly.
  /// `forced_warehouse` pins the order to one warehouse (0 = random);
  /// benchmarks use it to control how hot the queried warehouse is.
  Status NewOrder(Random* rnd, int forced_warehouse = 0);
  Status Payment(Random* rnd);
  Status OrderStatus(Random* rnd);
  Status Delivery(Random* rnd);
  /// The stock-level query (also the paper's as-of query): counts
  /// distinct items in the district's last 20 orders with stock
  /// quantity below `threshold`. Runs in its own transaction and routes
  /// through StockLevelOn with a lock-coupled live view.
  Result<int> StockLevel(int w_id, int d_id, int threshold);

  /// The same query text against ANY ReadView -- live, live-in-txn, or
  /// an as-of snapshot (Connection::AsOf or api/read_view.h's
  /// WrapSnapshot). This is the paper's point made concrete: the
  /// point-in-time query is the ordinary query, only the view differs.
  static Result<int> StockLevelOn(ReadView* view, int w_id, int d_id,
                                  int threshold);

  /// Cross-table invariants (tests): district next-order ids match the
  /// orders table; warehouse YTD equals the sum of its districts' YTD.
  Status CheckConsistency();

  Database* db() { return db_; }
  const TpccConfig& config() const { return config_; }

 private:
  TpccDatabase(Database* db, TpccConfig config)
      : db_(db), config_(std::move(config)) {}

  Status OpenTables();

  Database* db_;
  TpccConfig config_;
  std::unique_ptr<Table> warehouse_, district_, customer_, item_, stock_,
      orders_, new_order_, order_line_, history_;
  std::atomic<int64_t> history_seq_{0};
};

/// Multi-threaded workload driver producing the paper's throughput
/// metric (committed new-orders per minute, "tpmC").
class TpccDriver {
 public:
  struct RunStats {
    uint64_t new_orders = 0;
    uint64_t payments = 0;
    uint64_t order_statuses = 0;
    uint64_t deliveries = 0;
    uint64_t stock_levels = 0;
    uint64_t rollbacks = 0;
    uint64_t duration_micros = 0;
    double tpmc = 0;
  };

  /// Run the standard mix for `duration_micros` of real time across
  /// `threads` worker threads.
  static RunStats Run(TpccDatabase* tpcc, int threads,
                      uint64_t duration_micros, uint64_t seed = 99);
};

}  // namespace rewinddb

#endif  // REWINDDB_TPCC_TPCC_H_
