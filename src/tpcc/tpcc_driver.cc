// Multi-threaded TPC-C driver with the standard transaction mix.
#include <chrono>
#include <thread>
#include <vector>

#include "tpcc/tpcc.h"

namespace rewinddb {

TpccDriver::RunStats TpccDriver::Run(TpccDatabase* tpcc, int threads,
                                     uint64_t duration_micros,
                                     uint64_t seed) {
  std::atomic<uint64_t> new_orders{0}, payments{0}, order_statuses{0},
      deliveries{0}, stock_levels{0}, rollbacks{0};
  std::atomic<bool> stop{false};

  auto worker = [&](int id) {
    Random rnd(seed + static_cast<uint64_t>(id) * 7919);
    const TpccConfig& c = tpcc->config();
    while (!stop.load(std::memory_order_relaxed)) {
      // Standard mix: 45% new-order, 43% payment, 4% each of the rest.
      uint64_t pick = rnd.Uniform(100);
      Status s;
      if (pick < 45) {
        s = tpcc->NewOrder(&rnd);
        if (s.ok()) new_orders++;
      } else if (pick < 88) {
        s = tpcc->Payment(&rnd);
        if (s.ok()) payments++;
      } else if (pick < 92) {
        s = tpcc->OrderStatus(&rnd);
        if (s.ok()) order_statuses++;
      } else if (pick < 96) {
        s = tpcc->Delivery(&rnd);
        if (s.ok()) deliveries++;
      } else {
        int w = static_cast<int>(rnd.UniformRange(1, c.warehouses));
        int d = static_cast<int>(
            rnd.UniformRange(1, c.districts_per_warehouse));
        auto r = tpcc->StockLevel(w, d, 50);
        if (r.ok()) stock_levels++;
        s = r.ok() ? Status::OK() : r.status();
      }
      if (s.IsAborted()) rollbacks++;
    }
  };

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int i = 0; i < threads; i++) pool.emplace_back(worker, i);
  std::this_thread::sleep_for(std::chrono::microseconds(duration_micros));
  stop = true;
  for (std::thread& t : pool) t.join();
  auto t1 = std::chrono::steady_clock::now();

  RunStats out;
  out.new_orders = new_orders;
  out.payments = payments;
  out.order_statuses = order_statuses;
  out.deliveries = deliveries;
  out.stock_levels = stock_levels;
  out.rollbacks = rollbacks;
  out.duration_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
  out.tpmc = out.duration_micros == 0
                 ? 0
                 : static_cast<double>(out.new_orders) * 60'000'000.0 /
                       static_cast<double>(out.duration_micros);
  return out;
}

}  // namespace rewinddb
