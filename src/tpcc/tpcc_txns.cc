// The five TPC-C transactions plus the as-of stock-level variant.
#include <set>

#include "tpcc/tpcc.h"

namespace rewinddb {

namespace {
/// Abort the engine transaction, preferring the original error.
Status AbortWith(Database* db, Transaction* txn, Status cause) {
  Status a = db->Abort(txn);
  return cause.ok() ? a : cause;
}
}  // namespace

Status TpccDatabase::NewOrder(Random* rnd, int forced_warehouse) {
  const TpccConfig& c = config_;
  int w = forced_warehouse > 0
              ? forced_warehouse
              : static_cast<int>(rnd->UniformRange(1, c.warehouses));
  int d = static_cast<int>(rnd->UniformRange(1, c.districts_per_warehouse));
  int cust = static_cast<int>(rnd->NonUniform(1023, 1,
                                              c.customers_per_district));
  int ol_cnt =
      static_cast<int>(rnd->UniformRange(c.min_order_lines,
                                         c.max_order_lines));
  bool rollback = rnd->Percent(c.new_order_rollback_percent);

  Transaction* txn = db_->Begin();

  // District: read and bump the next order id.
  auto drow = district_->Get(txn, {w, d});
  if (!drow.ok()) return AbortWith(db_, txn, drow.status());
  int o_id = (*drow)[4].AsInt32();
  Row updated_d = *drow;
  updated_d[4] = o_id + 1;
  Status s = district_->Update(txn, updated_d);
  if (!s.ok()) return AbortWith(db_, txn, s);

  s = orders_->Insert(txn, {w, d, o_id, cust, ol_cnt, 0,
                            static_cast<int64_t>(db_->clock()->NowMicros())});
  if (!s.ok()) return AbortWith(db_, txn, s);
  s = new_order_->Insert(txn, {w, d, o_id});
  if (!s.ok()) return AbortWith(db_, txn, s);

  for (int l = 1; l <= ol_cnt; l++) {
    if (rollback && l == ol_cnt) {
      // TPC-C clause 2.4.1.4: ~1% of new-orders hit an invalid item and
      // the whole transaction rolls back.
      return AbortWith(db_, txn,
                       Status::Aborted("new-order: invalid item"));
    }
    int item = static_cast<int>(rnd->NonUniform(8191, 1, c.items));
    auto irow = item_->Get(txn, {item});
    if (!irow.ok()) return AbortWith(db_, txn, irow.status());
    double price = (*irow)[2].AsDouble();
    int qty = static_cast<int>(rnd->UniformRange(1, 10));

    auto srow = stock_->Get(txn, {w, item});
    if (!srow.ok()) return AbortWith(db_, txn, srow.status());
    Row stock_row = *srow;
    int s_qty = stock_row[2].AsInt32();
    s_qty = s_qty >= qty + 10 ? s_qty - qty : s_qty - qty + 91;
    stock_row[2] = s_qty;
    stock_row[3] = stock_row[3].AsDouble() + qty;
    stock_row[4] = stock_row[4].AsInt32() + 1;
    s = stock_->Update(txn, stock_row);
    if (!s.ok()) return AbortWith(db_, txn, s);

    s = order_line_->Insert(txn, {w, d, o_id, l, item, qty, price * qty});
    if (!s.ok()) return AbortWith(db_, txn, s);
  }
  return db_->Commit(txn);
}

Status TpccDatabase::Payment(Random* rnd) {
  const TpccConfig& c = config_;
  int w = static_cast<int>(rnd->UniformRange(1, c.warehouses));
  int d = static_cast<int>(rnd->UniformRange(1, c.districts_per_warehouse));
  double amount = 1.0 + static_cast<double>(rnd->Uniform(499900)) / 100.0;

  Transaction* txn = db_->Begin();

  auto wrow = warehouse_->Get(txn, {w});
  if (!wrow.ok()) return AbortWith(db_, txn, wrow.status());
  Row wh = *wrow;
  wh[2] = wh[2].AsDouble() + amount;
  Status s = warehouse_->Update(txn, wh);
  if (!s.ok()) return AbortWith(db_, txn, s);

  auto drow = district_->Get(txn, {w, d});
  if (!drow.ok()) return AbortWith(db_, txn, drow.status());
  Row dist = *drow;
  dist[3] = dist[3].AsDouble() + amount;
  s = district_->Update(txn, dist);
  if (!s.ok()) return AbortWith(db_, txn, s);

  // 60% of payments select the customer by last name via the secondary
  // index (TPC-C clause 2.5.2.2); the rest by id.
  Row cust_row;
  if (rnd->Percent(60)) {
    int name_num = static_cast<int>(rnd->NonUniform(255, 0, 999));
    const char* kLastNames[] = {"BAR",   "OUGHT", "ABLE",  "PRI",   "PRES",
                                "ESE",   "ANTI",  "CALLY", "ATION", "EING"};
    std::string last = std::string(kLastNames[(name_num / 100) % 10]) +
                       kLastNames[(name_num / 10) % 10] +
                       kLastNames[name_num % 10];
    std::vector<Row> matches;
    s = customer_->IndexScan(txn, "customer_by_last", {w, d, last},
                             [&](const Row& row) {
                               matches.push_back(row);
                               return true;
                             });
    if (!s.ok()) return AbortWith(db_, txn, s);
    if (matches.empty()) {
      // Fall back to a customer by id (sparse scaled-down name space).
      auto crow = customer_->Get(
          txn, {w, d,
                static_cast<int>(
                    rnd->UniformRange(1, c.customers_per_district))});
      if (!crow.ok()) return AbortWith(db_, txn, crow.status());
      cust_row = *crow;
    } else {
      cust_row = matches[matches.size() / 2];  // the median match
    }
  } else {
    auto crow = customer_->Get(
        txn,
        {w, d,
         static_cast<int>(rnd->NonUniform(1023, 1,
                                          c.customers_per_district))});
    if (!crow.ok()) return AbortWith(db_, txn, crow.status());
    cust_row = *crow;
  }
  cust_row[4] = cust_row[4].AsDouble() - amount;
  cust_row[5] = cust_row[5].AsDouble() + amount;
  cust_row[6] = cust_row[6].AsInt32() + 1;
  s = customer_->Update(txn, cust_row);
  if (!s.ok()) return AbortWith(db_, txn, s);

  s = history_->Insert(txn, {w, d, cust_row[2].AsInt32(),
                             history_seq_.fetch_add(1), amount});
  if (!s.ok()) return AbortWith(db_, txn, s);
  return db_->Commit(txn);
}

Status TpccDatabase::OrderStatus(Random* rnd) {
  const TpccConfig& c = config_;
  int w = static_cast<int>(rnd->UniformRange(1, c.warehouses));
  int d = static_cast<int>(rnd->UniformRange(1, c.districts_per_warehouse));
  int cust = static_cast<int>(rnd->NonUniform(1023, 1,
                                              c.customers_per_district));

  Transaction* txn = db_->Begin();
  // Most recent order of the customer.
  int last_o_id = -1;
  Status s = orders_->Scan(txn, std::optional<Row>(Row{w, d, 0}),
                           std::optional<Row>(Row{w, d + 1, 0}),
                           [&](const Row& row) {
                             if (row[3].AsInt32() == cust) {
                               last_o_id = row[2].AsInt32();
                             }
                             return true;
                           });
  if (!s.ok()) return AbortWith(db_, txn, s);
  if (last_o_id >= 0) {
    s = order_line_->Scan(txn, std::optional<Row>(Row{w, d, last_o_id, 0}),
                          std::optional<Row>(Row{w, d, last_o_id + 1, 0}),
                          [&](const Row&) { return true; });
    if (!s.ok()) return AbortWith(db_, txn, s);
  }
  return db_->Commit(txn);
}

Status TpccDatabase::Delivery(Random* rnd) {
  const TpccConfig& c = config_;
  int w = static_cast<int>(rnd->UniformRange(1, c.warehouses));
  int carrier = static_cast<int>(rnd->UniformRange(1, 10));

  Transaction* txn = db_->Begin();
  for (int d = 1; d <= c.districts_per_warehouse; d++) {
    // Oldest undelivered order.
    int oldest = -1;
    Status s = new_order_->Scan(txn, std::optional<Row>(Row{w, d, 0}),
                                std::optional<Row>(Row{w, d + 1, 0}),
                                [&](const Row& row) {
                                  oldest = row[2].AsInt32();
                                  return false;  // first = oldest
                                });
    if (!s.ok()) return AbortWith(db_, txn, s);
    if (oldest < 0) continue;

    s = new_order_->Delete(txn, {w, d, oldest});
    if (s.IsNotFound()) continue;  // another delivery raced us
    if (!s.ok()) return AbortWith(db_, txn, s);

    auto orow = orders_->Get(txn, {w, d, oldest});
    if (!orow.ok()) return AbortWith(db_, txn, orow.status());
    Row order = *orow;
    order[5] = carrier;
    s = orders_->Update(txn, order);
    if (!s.ok()) return AbortWith(db_, txn, s);

    double total = 0;
    s = order_line_->Scan(txn, std::optional<Row>(Row{w, d, oldest, 0}),
                          std::optional<Row>(Row{w, d, oldest + 1, 0}),
                          [&](const Row& row) {
                            total += row[6].AsDouble();
                            return true;
                          });
    if (!s.ok()) return AbortWith(db_, txn, s);

    auto crow = customer_->Get(txn, {w, d, order[3].AsInt32()});
    if (!crow.ok()) return AbortWith(db_, txn, crow.status());
    Row cust = *crow;
    cust[4] = cust[4].AsDouble() + total;
    s = customer_->Update(txn, cust);
    if (!s.ok()) return AbortWith(db_, txn, s);
  }
  return db_->Commit(txn);
}

Result<int> TpccDatabase::StockLevel(int w_id, int d_id, int threshold) {
  Transaction* txn = db_->Begin();
  std::unique_ptr<ReadView> view = WrapLive(db_, txn);
  auto low = StockLevelOn(view.get(), w_id, d_id, threshold);
  if (!low.ok()) return AbortWith(db_, txn, low.status());
  REWIND_RETURN_IF_ERROR(db_->Commit(txn));
  return *low;
}

Result<int> TpccDatabase::StockLevelOn(ReadView* view, int w_id, int d_id,
                                       int threshold) {
  // One query text for present and past: tables and metadata resolve
  // through whatever catalog the view carries (the live one, or the
  // snapshot's rewound pages).
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> district,
                          view->OpenTable("district"));
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> order_line,
                          view->OpenTable("order_line"));
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TableView> stock,
                          view->OpenTable("stock"));

  REWIND_ASSIGN_OR_RETURN(Row drow, district->Get({w_id, d_id}));
  int next_o_id = drow[4].AsInt32();
  int low_o = next_o_id - 20 < 1 ? 1 : next_o_id - 20;

  std::set<int> items;
  REWIND_RETURN_IF_ERROR(order_line->Scan(
      std::optional<Row>(Row{w_id, d_id, low_o, 0}),
      std::optional<Row>(Row{w_id, d_id, next_o_id, 0}),
      [&](const Row& row) {
        items.insert(row[4].AsInt32());
        return true;
      }));

  int low_stock = 0;
  for (int item : items) {
    REWIND_ASSIGN_OR_RETURN(Row srow, stock->Get({w_id, item}));
    if (srow[2].AsInt32() < threshold) low_stock++;
  }
  return low_stock;
}

}  // namespace rewinddb
