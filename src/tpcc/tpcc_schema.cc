// TPC-C schema definition and initial load.
#include <string>

#include "tpcc/tpcc.h"

namespace rewinddb {

namespace {

Schema WarehouseSchema() {
  return Schema({{"w_id", ColumnType::kInt32},
                 {"w_name", ColumnType::kString},
                 {"w_ytd", ColumnType::kDouble}},
                1);
}

Schema DistrictSchema() {
  return Schema({{"d_w_id", ColumnType::kInt32},
                 {"d_id", ColumnType::kInt32},
                 {"d_name", ColumnType::kString},
                 {"d_ytd", ColumnType::kDouble},
                 {"d_next_o_id", ColumnType::kInt32}},
                2);
}

Schema CustomerSchema() {
  return Schema({{"c_w_id", ColumnType::kInt32},
                 {"c_d_id", ColumnType::kInt32},
                 {"c_id", ColumnType::kInt32},
                 {"c_last", ColumnType::kString},
                 {"c_balance", ColumnType::kDouble},
                 {"c_ytd_payment", ColumnType::kDouble},
                 {"c_payment_cnt", ColumnType::kInt32}},
                3);
}

Schema ItemSchema() {
  return Schema({{"i_id", ColumnType::kInt32},
                 {"i_name", ColumnType::kString},
                 {"i_price", ColumnType::kDouble}},
                1);
}

Schema StockSchema() {
  return Schema({{"s_w_id", ColumnType::kInt32},
                 {"s_i_id", ColumnType::kInt32},
                 {"s_quantity", ColumnType::kInt32},
                 {"s_ytd", ColumnType::kDouble},
                 {"s_order_cnt", ColumnType::kInt32}},
                2);
}

Schema OrdersSchema() {
  return Schema({{"o_w_id", ColumnType::kInt32},
                 {"o_d_id", ColumnType::kInt32},
                 {"o_id", ColumnType::kInt32},
                 {"o_c_id", ColumnType::kInt32},
                 {"o_ol_cnt", ColumnType::kInt32},
                 {"o_carrier_id", ColumnType::kInt32},
                 {"o_entry_d", ColumnType::kInt64}},
                3);
}

Schema NewOrderSchema() {
  return Schema({{"no_w_id", ColumnType::kInt32},
                 {"no_d_id", ColumnType::kInt32},
                 {"no_o_id", ColumnType::kInt32}},
                3);
}

Schema OrderLineSchema() {
  return Schema({{"ol_w_id", ColumnType::kInt32},
                 {"ol_d_id", ColumnType::kInt32},
                 {"ol_o_id", ColumnType::kInt32},
                 {"ol_number", ColumnType::kInt32},
                 {"ol_i_id", ColumnType::kInt32},
                 {"ol_quantity", ColumnType::kInt32},
                 {"ol_amount", ColumnType::kDouble}},
                4);
}

Schema HistorySchema() {
  return Schema({{"h_w_id", ColumnType::kInt32},
                 {"h_d_id", ColumnType::kInt32},
                 {"h_c_id", ColumnType::kInt32},
                 {"h_seq", ColumnType::kInt64},
                 {"h_amount", ColumnType::kDouble}},
                4);
}

const char* kLastNames[] = {"BAR",   "OUGHT", "ABLE",  "PRI",   "PRES",
                            "ESE",   "ANTI",  "CALLY", "ATION", "EING"};

std::string LastName(int num) {
  return std::string(kLastNames[(num / 100) % 10]) +
         kLastNames[(num / 10) % 10] + kLastNames[num % 10];
}

}  // namespace

Status TpccDatabase::OpenTables() {
  auto open = [&](const char* name,
                  std::unique_ptr<Table>* out) -> Status {
    REWIND_ASSIGN_OR_RETURN(Table t, db_->OpenTable(name));
    *out = std::make_unique<Table>(std::move(t));
    return Status::OK();
  };
  REWIND_RETURN_IF_ERROR(open("warehouse", &warehouse_));
  REWIND_RETURN_IF_ERROR(open("district", &district_));
  REWIND_RETURN_IF_ERROR(open("customer", &customer_));
  REWIND_RETURN_IF_ERROR(open("item", &item_));
  REWIND_RETURN_IF_ERROR(open("stock", &stock_));
  REWIND_RETURN_IF_ERROR(open("orders", &orders_));
  REWIND_RETURN_IF_ERROR(open("new_order", &new_order_));
  REWIND_RETURN_IF_ERROR(open("order_line", &order_line_));
  REWIND_RETURN_IF_ERROR(open("history", &history_));
  return Status::OK();
}

Result<std::unique_ptr<TpccDatabase>> TpccDatabase::Attach(
    Database* db, const TpccConfig& config) {
  std::unique_ptr<TpccDatabase> tpcc(new TpccDatabase(db, config));
  REWIND_RETURN_IF_ERROR(tpcc->OpenTables());
  return tpcc;
}

Result<std::unique_ptr<TpccDatabase>> TpccDatabase::CreateAndLoad(
    Database* db, const TpccConfig& config) {
  {
    Transaction* ddl = db->Begin();
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "warehouse",
                                           WarehouseSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "district",
                                           DistrictSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "customer",
                                           CustomerSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "item", ItemSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "stock", StockSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "orders", OrdersSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "new_order",
                                           NewOrderSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "order_line",
                                           OrderLineSchema()));
    REWIND_RETURN_IF_ERROR(db->CreateTable(ddl, "history", HistorySchema()));
    REWIND_RETURN_IF_ERROR(db->CreateIndex(
        ddl, "customer_by_last", "customer", {"c_w_id", "c_d_id", "c_last"}));
    REWIND_RETURN_IF_ERROR(db->Commit(ddl));
  }
  std::unique_ptr<TpccDatabase> tpcc(new TpccDatabase(db, config));
  REWIND_RETURN_IF_ERROR(tpcc->OpenTables());

  Random rnd(config.seed);
  const TpccConfig& c = config;

  // Items (shared across warehouses).
  {
    Transaction* txn = db->Begin();
    for (int i = 1; i <= c.items; i++) {
      REWIND_RETURN_IF_ERROR(tpcc->item_->Insert(
          txn, {i, "item-" + std::to_string(i),
                1.0 + static_cast<double>(rnd.Uniform(9900)) / 100.0}));
    }
    REWIND_RETURN_IF_ERROR(db->Commit(txn));
  }

  for (int w = 1; w <= c.warehouses; w++) {
    Transaction* txn = db->Begin();
    REWIND_RETURN_IF_ERROR(tpcc->warehouse_->Insert(
        txn, {w, "warehouse-" + std::to_string(w), 0.0}));
    for (int i = 1; i <= c.items; i++) {
      REWIND_RETURN_IF_ERROR(tpcc->stock_->Insert(
          txn, {w, i, static_cast<int32_t>(10 + rnd.Uniform(91)), 0.0, 0}));
    }
    REWIND_RETURN_IF_ERROR(db->Commit(txn));

    for (int d = 1; d <= c.districts_per_warehouse; d++) {
      Transaction* dtxn = db->Begin();
      int next_o_id = c.initial_orders_per_district + 1;
      REWIND_RETURN_IF_ERROR(tpcc->district_->Insert(
          dtxn, {w, d, "district-" + std::to_string(d), 0.0, next_o_id}));
      for (int cu = 1; cu <= c.customers_per_district; cu++) {
        int name_num =
            cu <= 999 ? cu : static_cast<int>(rnd.NonUniform(255, 0, 999));
        REWIND_RETURN_IF_ERROR(tpcc->customer_->Insert(
            dtxn, {w, d, cu, LastName(name_num % 1000), -10.0, 10.0, 1}));
      }
      // Seed a few orders so stock-level has something to look at.
      for (int o = 1; o <= c.initial_orders_per_district; o++) {
        int ol_cnt = static_cast<int>(
            rnd.UniformRange(c.min_order_lines, c.max_order_lines));
        int cust = static_cast<int>(
            rnd.UniformRange(1, c.customers_per_district));
        REWIND_RETURN_IF_ERROR(tpcc->orders_->Insert(
            dtxn, {w, d, o, cust, ol_cnt, 0,
                   static_cast<int64_t>(db->clock()->NowMicros())}));
        for (int l = 1; l <= ol_cnt; l++) {
          int item = static_cast<int>(rnd.UniformRange(1, c.items));
          REWIND_RETURN_IF_ERROR(tpcc->order_line_->Insert(
              dtxn, {w, d, o, l, item,
                     static_cast<int32_t>(rnd.UniformRange(1, 10)),
                     static_cast<double>(rnd.Uniform(10000)) / 100.0}));
        }
      }
      REWIND_RETURN_IF_ERROR(db->Commit(dtxn));
    }
  }
  REWIND_RETURN_IF_ERROR(db->Checkpoint());
  return tpcc;
}

Status TpccDatabase::CheckConsistency() {
  const TpccConfig& c = config_;
  for (int w = 1; w <= c.warehouses; w++) {
    double district_ytd_sum = 0;
    for (int d = 1; d <= c.districts_per_warehouse; d++) {
      REWIND_ASSIGN_OR_RETURN(Row drow, district_->Get(nullptr, {w, d}));
      int next_o_id = drow[4].AsInt32();
      district_ytd_sum += drow[3].AsDouble();
      // max(o_id) over orders of this district must be next_o_id - 1.
      int max_o = 0;
      REWIND_RETURN_IF_ERROR(orders_->Scan(
          nullptr, std::optional<Row>(Row{w, d, 0}),
          std::optional<Row>(Row{w, d + 1, 0}), [&](const Row& row) {
            if (row[2].AsInt32() > max_o) max_o = row[2].AsInt32();
            return true;
          }));
      if (max_o != next_o_id - 1) {
        return Status::Corruption(
            "district (" + std::to_string(w) + "," + std::to_string(d) +
            "): next_o_id " + std::to_string(next_o_id) + " but max o_id " +
            std::to_string(max_o));
      }
    }
    REWIND_ASSIGN_OR_RETURN(Row wrow, warehouse_->Get(nullptr, {w}));
    double w_ytd = wrow[2].AsDouble();
    if (w_ytd < district_ytd_sum - 0.01 || w_ytd > district_ytd_sum + 0.01) {
      return Status::Corruption("warehouse " + std::to_string(w) +
                                " ytd mismatch");
    }
  }
  return Status::OK();
}

}  // namespace rewinddb
