#include "net/wire.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstring>

namespace rewinddb {
namespace net {

namespace {
/// Arity/width caps: a hostile peer must not make us reserve gigabytes
/// from a 6-byte frame.
constexpr uint16_t kMaxRowArity = 1024;
constexpr uint16_t kMaxColumns = 1024;
}  // namespace

bool IsKnownOp(uint8_t op) {
  return op >= static_cast<uint8_t>(Op::kHello) &&
         op <= static_cast<uint8_t>(Op::kGoodbye);
}

// ------------------------- rowset codec -------------------------------

void EncodeValue(const Value& v, std::string* dst) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ColumnType::kNull:
      break;  // the tag alone carries SQL NULL
    case ColumnType::kInt32:
      PutFixed32(dst, static_cast<uint32_t>(v.AsInt32()));
      break;
    case ColumnType::kInt64:
      PutFixed64(dst, static_cast<uint64_t>(v.AsInt64()));
      break;
    case ColumnType::kDouble:
      PutFixed64(dst, std::bit_cast<uint64_t>(v.AsDouble()));
      break;
    case ColumnType::kString:
      PutLengthPrefixed(dst, Slice(v.AsString()));
      break;
  }
}

bool DecodeValue(Decoder* dec, Value* out) {
  Slice tag;
  if (!dec->GetBytes(1, &tag)) return false;
  switch (static_cast<ColumnType>(tag.data()[0])) {
    case ColumnType::kNull:
      *out = Value::Null();
      return true;
    case ColumnType::kInt32: {
      uint32_t v;
      if (!dec->GetFixed32(&v)) return false;
      *out = Value(static_cast<int32_t>(v));
      return true;
    }
    case ColumnType::kInt64: {
      uint64_t v;
      if (!dec->GetFixed64(&v)) return false;
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case ColumnType::kDouble: {
      uint64_t v;
      if (!dec->GetFixed64(&v)) return false;
      *out = Value(std::bit_cast<double>(v));
      return true;
    }
    case ColumnType::kString: {
      Slice s;
      if (!dec->GetLengthPrefixed(&s)) return false;
      *out = Value(std::string(s.data(), s.size()));
      return true;
    }
  }
  return false;  // unknown tag
}

void EncodeWireRow(const Row& row, std::string* dst) {
  PutFixed16(dst, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) EncodeValue(v, dst);
}

bool DecodeWireRow(Decoder* dec, Row* out) {
  uint16_t n;
  if (!dec->GetFixed16(&n)) return false;
  if (n > kMaxRowArity) return false;
  out->clear();
  out->reserve(n);
  for (uint16_t i = 0; i < n; i++) {
    Value v;
    if (!DecodeValue(dec, &v)) return false;
    out->push_back(std::move(v));
  }
  return true;
}

void EncodeRowset(const Rowset& rs, std::string* dst) {
  PutFixed16(dst, static_cast<uint16_t>(rs.columns.size()));
  for (const WireColumn& c : rs.columns) {
    PutLengthPrefixed(dst, Slice(c.name));
    dst->push_back(static_cast<char>(c.type));
  }
  PutFixed32(dst, static_cast<uint32_t>(rs.rows.size()));
  for (const Row& r : rs.rows) EncodeWireRow(r, dst);
}

bool DecodeRowset(Decoder* dec, Rowset* out) {
  uint16_t ncols;
  if (!dec->GetFixed16(&ncols)) return false;
  if (ncols > kMaxColumns) return false;
  out->columns.clear();
  out->rows.clear();
  for (uint16_t i = 0; i < ncols; i++) {
    Slice name;
    Slice tag;
    if (!dec->GetLengthPrefixed(&name)) return false;
    if (!dec->GetBytes(1, &tag)) return false;
    // kNull (0) is admitted: an all-NULL result column (e.g. SUM over
    // zero rows) has no better static type to declare.
    uint8_t t = static_cast<uint8_t>(tag.data()[0]);
    if (t > static_cast<uint8_t>(ColumnType::kString)) return false;
    out->columns.push_back(
        {std::string(name.data(), name.size()), static_cast<ColumnType>(t)});
  }
  uint32_t nrows;
  if (!dec->GetFixed32(&nrows)) return false;
  // Each row costs >= 2 bytes on the wire; a count that outruns the
  // remaining bytes is garbage, not a huge result.
  if (static_cast<uint64_t>(nrows) * 2 > dec->remaining()) return false;
  out->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; i++) {
    Row r;
    if (!DecodeWireRow(dec, &r)) return false;
    out->rows.push_back(std::move(r));
  }
  return true;
}

// ------------------------- frame codec --------------------------------

std::string EncodeRequest(Op op, uint64_t session_id,
                          const std::string& payload) {
  std::string body;
  body.reserve(9 + payload.size());
  body.push_back(static_cast<char>(op));
  PutFixed64(&body, session_id);
  body.append(payload);
  std::string frame;
  frame.reserve(4 + body.size());
  PutFixed32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

std::string EncodeResponse(Op op, const Status& status,
                           const std::string& payload) {
  std::string body;
  body.reserve(6 + status.message().size() + payload.size());
  body.push_back(static_cast<char>(op));
  body.push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(&body, Slice(status.message()));
  body.append(payload);
  std::string frame;
  frame.reserve(4 + body.size());
  PutFixed32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

Status ParseRequest(Slice body, Request* out, uint8_t* raw_op) {
  if (raw_op != nullptr) *raw_op = 0;
  Decoder dec(body);
  Slice op_byte;
  if (!dec.GetBytes(1, &op_byte)) {
    return Status::InvalidArgument("truncated request: missing opcode");
  }
  uint8_t op = static_cast<uint8_t>(op_byte.data()[0]);
  if (raw_op != nullptr) *raw_op = op;
  if (!IsKnownOp(op)) {
    return Status::NotSupported("unknown opcode " + std::to_string(op));
  }
  uint64_t sid;
  if (!dec.GetFixed64(&sid)) {
    return Status::InvalidArgument("truncated request: missing session id");
  }
  out->op = static_cast<Op>(op);
  out->session_id = sid;
  Slice rest;
  dec.GetBytes(dec.remaining(), &rest);
  out->payload = rest;
  return Status::OK();
}

Status ParseResponse(Slice body, ResponseView* out) {
  Decoder dec(body);
  Slice op_byte, code_byte, msg;
  if (!dec.GetBytes(1, &op_byte) || !dec.GetBytes(1, &code_byte) ||
      !dec.GetLengthPrefixed(&msg)) {
    return Status::Corruption("truncated response header");
  }
  uint8_t op = static_cast<uint8_t>(op_byte.data()[0]);
  if (!IsKnownOp(op)) {
    return Status::Corruption("response echoes unknown opcode " +
                              std::to_string(op));
  }
  out->op = static_cast<Op>(op);
  out->status = StatusFromWire(static_cast<uint8_t>(code_byte.data()[0]),
                               std::string(msg.data(), msg.size()));
  Slice rest;
  dec.GetBytes(dec.remaining(), &rest);
  out->payload = rest;
  return Status::OK();
}

Status StatusFromWire(uint8_t code, const std::string& message) {
  if (code > static_cast<uint8_t>(Status::Code::kAlreadyExists)) {
    return Status::Corruption("unknown status code " + std::to_string(code) +
                              ": " + message);
  }
  return Status::FromCode(static_cast<Status::Code>(code), message);
}

// ------------------------- socket helpers -----------------------------

Status WriteFull(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as
    // EPIPE, not kill the process. Non-socket fds (tests over pipes)
    // fall back to write(2).
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + strerror(errno));
    }
    if (w == 0) return Status::IoError("write: zero-byte progress");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFull(int fd, char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + strerror(errno));
    }
    if (r == 0) {
      if (off == 0) return Status::NotFound("eof");
      return Status::IoError("truncated frame: peer closed mid-body");
    }
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ReadFrame(int fd, uint32_t max_frame, std::string* body) {
  char lenbuf[4];
  REWIND_RETURN_IF_ERROR(ReadFull(fd, lenbuf, 4));
  uint32_t len = DecodeFixed32(lenbuf);
  if (len > max_frame) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds limit " +
                                   std::to_string(max_frame));
  }
  body->resize(len);
  if (len == 0) return Status::OK();
  Status s = ReadFull(fd, body->data(), len);
  if (s.IsNotFound()) {
    // EOF exactly between prefix and body is still a truncated frame.
    return Status::IoError("truncated frame: peer closed after prefix");
  }
  return s;
}

}  // namespace net
}  // namespace rewinddb
