// Wire protocol shared by the network server (src/server/) and the
// client library (src/client/): a small length-prefixed binary framing
// over TCP.
//
//   Frame    := u32 body_len (LE) | body          body_len <= max_frame
//   Request  := u8 opcode | u64 session_id | payload
//   Response := u8 opcode (echo) | u8 status_code | u32 msg_len | msg
//               | payload
//
// Every response carries a Status (code byte + message); op-specific
// payloads follow. Result rowsets travel with column metadata (name +
// type per column) and self-describing value tags, so a client can
// render results for tables it has never seen.
//
// Decode helpers are defensive by construction: they consume from a
// bounded Decoder and fail cleanly on truncated, oversized or garbage
// input -- the server's robustness against hostile bytes rests here.
#ifndef REWINDDB_NET_WIRE_H_
#define REWINDDB_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/value.h"

namespace rewinddb {
namespace net {

/// Hard cap on one frame's body. Anything larger is a protocol error:
/// the connection is unsynchronized and must close.
constexpr uint32_t kMaxFrameBytes = 8u << 20;

/// Protocol revision, exchanged in HELLO. Bump on incompatible change.
constexpr uint32_t kProtocolVersion = 1;

enum class Op : uint8_t {
  kHello = 1,        // u32 version | LP client_name
                     //   -> u64 session_id | LP banner
  kExecute = 2,      // LP sql -> LP message | u8 has_rowset | [rowset]
  kBegin = 3,        // (empty) -> u64 txn_id
  kCommit = 4,       // u8 mode_plus1 (0 = session default) -> (empty)
  kRollback = 5,     // (empty) -> (empty)
  kInsert = 6,       // LP table | row -> (empty)
  kUpdate = 7,       // LP table | row -> (empty)
  kDelete = 8,       // LP table | key row -> (empty)
  kGet = 9,          // u64 view | LP table | key row
                     //   -> rowset (1 row; NotFound when absent)
  kScan = 10,        // u64 view | LP table | opt lower | opt upper |
                     //   u32 limit -> u8 more | rowset
  kCount = 11,       // u64 view | LP table -> u64
  kAsOf = 12,        // u64 micros -> u64 handle | u64 as_of
  kOpenSnapshot = 13,  // LP name -> u64 handle | u64 as_of
  kReleaseView = 14,   // u64 handle -> (empty)
  kListTables = 15,    // u64 view -> rowset
  kPing = 16,          // (empty) -> (empty)
  kGoodbye = 17,       // (empty) -> (empty), then the server closes
};

/// True if `op` names a known opcode.
bool IsKnownOp(uint8_t op);

/// The live-database view handle: always valid, never released.
constexpr uint64_t kLiveViewHandle = 0;

// ------------------------- rowset codec -------------------------------

struct WireColumn {
  std::string name;
  ColumnType type;
};

/// A serializable query result: column metadata + rows. The wire shape
/// of SqlResult and of every Scan/Get/ListTables response.
struct Rowset {
  std::vector<WireColumn> columns;
  std::vector<Row> rows;
};

/// Append one value as `u8 type tag | body` (int32/int64/double fixed,
/// string length-prefixed).
void EncodeValue(const Value& v, std::string* dst);
/// Decode one tagged value; false on truncation or an unknown tag.
bool DecodeValue(Decoder* dec, Value* out);

/// Append `u16 n | n tagged values`.
void EncodeWireRow(const Row& row, std::string* dst);
/// Decode a wire row; false on malformed input. Caps arity at 1024.
bool DecodeWireRow(Decoder* dec, Row* out);

void EncodeRowset(const Rowset& rs, std::string* dst);
bool DecodeRowset(Decoder* dec, Rowset* out);

// ------------------------- frame codec --------------------------------

/// Build a request frame (length prefix included).
std::string EncodeRequest(Op op, uint64_t session_id,
                          const std::string& payload);

/// Build a response frame (length prefix included).
std::string EncodeResponse(Op op, const Status& status,
                           const std::string& payload = std::string());

struct Request {
  Op op;
  uint64_t session_id = 0;
  Slice payload;  // borrows the frame body buffer
};

struct ResponseView {
  Op op;
  Status status;
  Slice payload;  // borrows the frame body buffer
};

/// Parse a request body (the bytes after the length prefix). Fails on
/// truncation or an unknown opcode; `raw_op` (may be null) receives the
/// opcode byte either way so the server can echo it in the error reply.
Status ParseRequest(Slice body, Request* out, uint8_t* raw_op);

/// Parse a response body.
Status ParseResponse(Slice body, ResponseView* out);

/// Rebuild a Status from its wire code byte + message. Unknown code
/// bytes decode as Corruption (the peer speaks a different protocol).
Status StatusFromWire(uint8_t code, const std::string& message);

// ------------------------- socket helpers -----------------------------

/// Loop write(2) until all n bytes are written (EINTR-safe).
Status WriteFull(int fd, const char* data, size_t n);

/// Loop read(2) until n bytes arrive. A clean EOF before the first byte
/// returns NotFound("eof"); EOF mid-buffer returns IoError (truncated
/// frame).
Status ReadFull(int fd, char* data, size_t n);

/// Read one frame: the u32 length prefix, validated against
/// `max_frame`, then the body. On an oversized prefix returns
/// InvalidArgument -- the stream is unsynchronized and the caller must
/// close the connection.
Status ReadFrame(int fd, uint32_t max_frame, std::string* body);

}  // namespace net
}  // namespace rewinddb

#endif  // REWINDDB_NET_WIRE_H_
