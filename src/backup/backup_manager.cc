#include "backup/backup_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#include "engine/allocator.h"
#include "io/paged_file.h"
#include "snapshot/split_lsn.h"

namespace rewinddb {

namespace {

/// Copy `n` bytes from fd_in to fd_out in 1 MiB chunks, charging the
/// disk models (sequential on both sides).
Status CopyBytes(int fd_in, int fd_out, uint64_t n, DiskModel* read_disk,
                 DiskModel* write_disk, uint64_t* copied) {
  constexpr size_t kChunk = 1 << 20;
  std::vector<char> buf(kChunk);
  uint64_t off = 0;
  while (off < n) {
    size_t want = static_cast<size_t>(std::min<uint64_t>(kChunk, n - off));
    ssize_t r = ::pread(fd_in, buf.data(), want, static_cast<off_t>(off));
    if (r <= 0) return Status::IoError("backup copy read failed");
    ssize_t w = ::pwrite(fd_out, buf.data(), static_cast<size_t>(r),
                         static_cast<off_t>(off));
    if (w != r) return Status::IoError("backup copy write failed");
    if (read_disk != nullptr) read_disk->Access(off, static_cast<uint64_t>(r));
    if (write_disk != nullptr) {
      write_disk->Access(off, static_cast<uint64_t>(r));
    }
    off += static_cast<uint64_t>(r);
  }
  *copied = off;
  return Status::OK();
}

Result<uint64_t> FileSize(int fd) {
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return Status::IoError("lseek failed");
  return static_cast<uint64_t>(end);
}

}  // namespace

Result<BackupInfo> BackupManager::BackupFull(Database* db,
                                             const std::string& backup_path) {
  // The backup is page-consistent as of this checkpoint: everything up
  // to the master checkpoint LSN is in the data file.
  REWIND_RETURN_IF_ERROR(db->Checkpoint());

  int src = ::open((db->dir() + "/data.rwdb").c_str(), O_RDONLY);
  if (src < 0) return Status::IoError("open data file: " + std::string(strerror(errno)));
  int dst = ::open(backup_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (dst < 0) {
    ::close(src);
    return Status::IoError("create backup: " + std::string(strerror(errno)));
  }
  auto size = FileSize(src);
  Status s = size.ok() ? Status::OK() : size.status();
  uint64_t copied = 0;
  if (s.ok()) {
    s = CopyBytes(src, dst, *size, db->data_disk(), db->data_disk(), &copied);
  }
  if (s.ok() && ::fdatasync(dst) != 0) s = Status::IoError("backup sync");
  ::close(src);
  ::close(dst);
  REWIND_RETURN_IF_ERROR(s);

  BackupInfo info;
  info.path = backup_path;
  info.backup_lsn = db->master_checkpoint_lsn();
  info.num_pages = static_cast<PageId>(copied / kPageSize);
  info.taken_at = db->clock()->NowMicros();
  return info;
}

Result<RestoreResult> BackupManager::RestoreToTime(Database* source,
                                                   const BackupInfo& backup,
                                                   const std::string& dest_dir,
                                                   WallClock target,
                                                   DatabaseOptions opts) {
  Clock* clock = opts.clock != nullptr ? opts.clock : source->clock();
  WallClock t0 = clock->NowMicros();

  // Make the live log durable, then locate the stop point.
  REWIND_RETURN_IF_ERROR(source->log()->FlushAll());
  REWIND_ASSIGN_OR_RETURN(
      SplitPoint split,
      FindSplitPoint(source->log(), target, clock->NowMicros()));

  std::error_code ec;
  std::filesystem::remove_all(dest_dir, ec);
  std::filesystem::create_directories(dest_dir, ec);

  RestoreResult out;

  // 1. Restore the full database backup (sequential copy; cost
  //    proportional to database size, independent of the target time).
  {
    int src = ::open(backup.path.c_str(), O_RDONLY);
    if (src < 0) return Status::IoError("open backup: " + std::string(strerror(errno)));
    int dst = ::open((dest_dir + "/data.rwdb").c_str(),
                     O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (dst < 0) {
      ::close(src);
      return Status::IoError("create restored data file");
    }
    auto size = FileSize(src);
    Status s = size.ok() ? Status::OK() : size.status();
    if (s.ok()) {
      s = CopyBytes(src, dst, *size, source->data_disk(),
                    source->data_disk(), &out.data_bytes_copied);
    }
    ::close(src);
    ::close(dst);
    REWIND_RETURN_IF_ERROR(s);
  }

  // 2. Lay down the transaction log. The entire retained log -- sealed
  //    archive segments (resolved through the archive index) followed
  //    by the active file -- is copied (the unused tail is
  //    "initialized", as in the paper's baseline), then cut at the stop
  //    point so recovery replays exactly to it. Reusing the archive
  //    index here is what keeps point-in-time restore working after the
  //    active log reached its bounded steady state.
  {
    // Position on the boundary record so the cut lands after it.
    wal::Cursor boundary = source->log()->OpenCursor();
    REWIND_RETURN_IF_ERROR(boundary.SeekTo(split.split_lsn));
    if (!boundary.Valid()) {
      return Status::Corruption("split point not found in the source log");
    }
    Lsn cut = boundary.end_lsn();
    REWIND_RETURN_IF_ERROR(source->log()->ExportPrefix(
        dest_dir + "/log.rwdb", cut, &out.log_bytes_copied));
    out.stop_lsn = split.split_lsn;
  }

  // 3. Ordinary crash recovery on the restored pair: analysis from the
  //    backup's master checkpoint, redo to the cut, undo of in-flight
  //    transactions. This reuses the engine's recovery manager whole.
  if (opts.clock == nullptr) opts.clock = source->clock();
  REWIND_ASSIGN_OR_RETURN(out.database, Database::Open(dest_dir, opts));
  out.restore_micros = clock->NowMicros() - t0;
  return out;
}

}  // namespace rewinddb
