#include "backup/pitr_advisor.h"

#include <limits>

#include "common/types.h"

namespace rewinddb {

const char* RecoveryStrategyName(RecoveryStrategy s) {
  return s == RecoveryStrategy::kRewind ? "rewind" : "restore";
}

uint64_t PitrAdvisor::SeqMicros(const MediaProfile& m, uint64_t bytes) const {
  return m.random_access_micros +
         static_cast<uint64_t>(static_cast<double>(bytes) /
                               m.bytes_per_micro);
}

uint64_t PitrAdvisor::RandomMicros(const MediaProfile& m, uint64_t ios,
                                   uint64_t bytes_per_io) const {
  double per_io = static_cast<double>(m.random_access_micros) +
                  static_cast<double>(bytes_per_io) / m.bytes_per_micro;
  return static_cast<uint64_t>(per_io * static_cast<double>(ios));
}

uint64_t PitrAdvisor::EstimateRewindMicros(const RecoveryEstimate& e) const {
  // One random page read per touched page from the primary file...
  uint64_t page_reads = RandomMicros(data_, e.pages_accessed, kPageSize);
  // ...plus the chain walk: one log fetch per modification, of which
  // log_miss_ratio actually hit the device (a log-cache hit is free).
  double undo_ios = static_cast<double>(e.pages_accessed) * e.mods_per_page *
                    e.log_miss_ratio;
  uint64_t log_reads =
      RandomMicros(log_, static_cast<uint64_t>(undo_ios), 512);
  return page_reads + log_reads;
}

uint64_t PitrAdvisor::EstimateRestoreMicros(const RecoveryEstimate& e) const {
  uint64_t db_bytes = e.db_pages * kPageSize;
  // Full database copy: sequential read plus sequential write.
  uint64_t copy = SeqMicros(data_, db_bytes) + SeqMicros(data_, db_bytes);
  // Log initialization (full retained log, read + write) and replay
  // scan of the region between backup and target.
  uint64_t log_init =
      SeqMicros(log_, e.total_log_bytes) + SeqMicros(log_, e.total_log_bytes);
  uint64_t replay = SeqMicros(log_, e.replay_log_bytes);
  return copy + log_init + replay;
}

RecoveryStrategy PitrAdvisor::Choose(const RecoveryEstimate& e) const {
  return EstimateRewindMicros(e) <= EstimateRestoreMicros(e)
             ? RecoveryStrategy::kRewind
             : RecoveryStrategy::kRestore;
}

uint64_t PitrAdvisor::CrossoverPagesAccessed(RecoveryEstimate e) const {
  uint64_t lo = 0;
  uint64_t hi = e.db_pages;
  e.pages_accessed = hi;
  if (Choose(e) == RecoveryStrategy::kRewind) {
    return std::numeric_limits<uint64_t>::max();
  }
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    e.pages_accessed = mid;
    if (Choose(e) == RecoveryStrategy::kRestore) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace rewinddb
