// Traditional backup/restore: the baseline the paper's evaluation
// compares against (sections 1 and 6.2).
//
// BackupFull checkpoints the primary and copies its data file
// sequentially. RestoreToTime is classic point-in-time restore
// ("RESTORE ... WITH STOPAT"): copy the full backup back, lay down the
// transaction log up to the target's SplitLSN (the unused remainder is
// still written -- the paper charges "initialization for the unused
// portion of transaction log" to the baseline), then run ordinary crash
// recovery, which rolls forward to the stop point and rolls back
// in-flight transactions. The result is a fully functional Database.
//
// Every byte moved is charged to the disk models, so under a SimClock
// the restore cost is dominated by database size -- constant in the
// restore point -- exactly the flat baseline of figures 7 and 8.
#ifndef REWINDDB_BACKUP_BACKUP_MANAGER_H_
#define REWINDDB_BACKUP_BACKUP_MANAGER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/database.h"

namespace rewinddb {

struct BackupInfo {
  std::string path;
  /// Master checkpoint LSN captured in the backup's superblock: log
  /// replay resumes here.
  Lsn backup_lsn = kInvalidLsn;
  PageId num_pages = 0;
  WallClock taken_at = 0;
};

struct RestoreResult {
  /// The restored, recovered database (opened at `dest_dir`).
  std::unique_ptr<Database> database;
  /// LSN the restore stopped at.
  Lsn stop_lsn = kInvalidLsn;
  /// Bytes copied for the data file and the log.
  uint64_t data_bytes_copied = 0;
  uint64_t log_bytes_copied = 0;
  /// Wall/simulated time of the whole restore.
  uint64_t restore_micros = 0;
};

class BackupManager {
 public:
  /// Take a full backup of `db` into `backup_path` (a single file).
  static Result<BackupInfo> BackupFull(Database* db,
                                       const std::string& backup_path);

  /// Restore `backup` into `dest_dir`, rolling the source's retained
  /// log forward to `target` wall-clock time. The source database must
  /// still be open (it owns the live log). `opts` configures the
  /// restored database (media models etc.).
  static Result<RestoreResult> RestoreToTime(Database* source,
                                             const BackupInfo& backup,
                                             const std::string& dest_dir,
                                             WallClock target,
                                             DatabaseOptions opts = {});
};

}  // namespace rewinddb

#endif  // REWINDDB_BACKUP_BACKUP_MANAGER_H_
