// PITR advisor: the paper's section 6.4 "generalized version" that
// chooses between rolling BACKWARD from the current state (as-of
// snapshot + rewind) and rolling FORWARD from a base backup (restore +
// log replay), picking the faster path to the data in the past.
#ifndef REWINDDB_BACKUP_PITR_ADVISOR_H_
#define REWINDDB_BACKUP_PITR_ADVISOR_H_

#include <cstdint>
#include <string>

#include "io/disk_model.h"

namespace rewinddb {

/// Workload description for the cost model.
struct RecoveryEstimate {
  /// Pages the recovery query will touch on the as-of replica.
  uint64_t pages_accessed = 0;
  /// Average log records to undo per touched page (grows with how far
  /// back the target is and how hot the pages are).
  double mods_per_page = 0;
  /// Total pages of the database (restore must copy them all).
  uint64_t db_pages = 0;
  /// Bytes of log between the base backup and the target.
  uint64_t replay_log_bytes = 0;
  /// Bytes of retained log (restore "initializes" all of it).
  uint64_t total_log_bytes = 0;
  /// Fraction of per-page undo record fetches that miss the log cache.
  double log_miss_ratio = 1.0;
};

enum class RecoveryStrategy { kRewind, kRestore };

const char* RecoveryStrategyName(RecoveryStrategy s);

/// Cost model over the media profiles.
class PitrAdvisor {
 public:
  PitrAdvisor(MediaProfile data_media, MediaProfile log_media)
      : data_(std::move(data_media)), log_(std::move(log_media)) {}

  /// Estimated microseconds to reach the as-of data by rewinding: one
  /// random data read per accessed page plus one random log read per
  /// modification to undo.
  uint64_t EstimateRewindMicros(const RecoveryEstimate& e) const;

  /// Estimated microseconds for restore + replay: sequential copy of
  /// the database (read + write) plus sequential log initialization and
  /// replay.
  uint64_t EstimateRestoreMicros(const RecoveryEstimate& e) const;

  /// The faster strategy under the model.
  RecoveryStrategy Choose(const RecoveryEstimate& e) const;

  /// For an accessed-fraction sweep: smallest pages_accessed (all other
  /// fields from `e`) at which restore becomes faster; returns
  /// UINT64_MAX if rewind always wins up to db_pages.
  uint64_t CrossoverPagesAccessed(RecoveryEstimate e) const;

 private:
  uint64_t SeqMicros(const MediaProfile& m, uint64_t bytes) const;
  uint64_t RandomMicros(const MediaProfile& m, uint64_t ios,
                        uint64_t bytes_per_io) const;

  MediaProfile data_;
  MediaProfile log_;
};

}  // namespace rewinddb

#endif  // REWINDDB_BACKUP_PITR_ADVISOR_H_
