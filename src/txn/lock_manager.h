// Row-granular strict two-phase lock manager.
//
// Lock keys are opaque strings built by the engine (tree id ++ encoded
// row key). Shared/exclusive modes, FIFO-ish wakeups, timeout-based
// deadlock resolution (the waiter aborts). Snapshot recovery uses
// GrantForRecovery to re-acquire the locks held by transactions that
// were in flight as of the SplitLSN (paper section 5.2) so that as-of
// queries cannot observe their uncommitted effects before the
// background undo pass has erased them.
#ifndef REWINDDB_TXN_LOCK_MANAGER_H_
#define REWINDDB_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace rewinddb {

enum class LockMode { kShared, kExclusive };

/// Build the canonical lock key for a row.
std::string RowLockKey(TreeId tree, const std::string& encoded_key);

/// Table-level schema lock key: DML holds it shared, DROP TABLE holds
/// it exclusive, so a drop can never deallocate pages under a
/// transaction with in-flight changes to the table.
std::string SchemaLockKey(TreeId tree);

class LockManager {
 public:
  /// \param timeout_micros how long a waiter blocks before it is
  ///        declared deadlocked and aborted.
  explicit LockManager(uint64_t timeout_micros = 1'000'000)
      : timeout_(timeout_micros) {}

  /// Acquire `key` in `mode` for `txn`. Blocks; returns Aborted on
  /// timeout. Re-entrant: a holder re-requesting a covered mode
  /// succeeds immediately; S->X upgrade succeeds when `txn` is the sole
  /// holder.
  Status Acquire(TxnId txn, const std::string& key, LockMode mode);

  /// Non-blocking variant; returns Busy instead of waiting.
  Status TryAcquire(TxnId txn, const std::string& key, LockMode mode);

  /// Grant without conflict checking (lock re-acquisition during
  /// snapshot/crash redo, where the requesting transactions are known
  /// to have held the locks at the SplitLSN).
  void GrantForRecovery(TxnId txn, const std::string& key, LockMode mode);

  /// Release every lock held by `txn` (commit/abort).
  void ReleaseAll(TxnId txn);

  /// Number of distinct keys currently locked (tests/metrics).
  size_t LockedKeyCount() const;

  /// True if `txn` holds `key` in a mode covering `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  /// True if any transaction holds `key` exclusively (cheap probe used
  /// by snapshot scans to decide whether to yield).
  bool IsHeldExclusive(const std::string& key) const;

 private:
  struct LockState {
    // Granted holders: txn -> mode.
    std::map<TxnId, LockMode> holders;
    int waiters = 0;
  };

  bool CompatibleLocked(const LockState& st, TxnId txn, LockMode mode) const;
  Status AcquireInternal(TxnId txn, const std::string& key, LockMode mode,
                         bool blocking);

  const uint64_t timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, LockState> locks_;
  std::unordered_map<TxnId, std::vector<std::string>> held_;
};

}  // namespace rewinddb

#endif  // REWINDDB_TXN_LOCK_MANAGER_H_
