#include "txn/transaction.h"

namespace rewinddb {

Transaction* TransactionManager::Begin(bool is_system) {
  std::lock_guard<std::mutex> g(mu_);
  auto txn = std::make_unique<Transaction>();
  txn->id = next_id_++;
  txn->is_system = is_system;
  Transaction* raw = txn.get();
  active_[raw->id] = std::move(txn);
  return raw;
}

void TransactionManager::OnAppended(Transaction* txn, Lsn lsn) {
  if (txn->first_lsn == kInvalidLsn) txn->first_lsn = lsn;
  txn->last_lsn = lsn;
}

Status TransactionManager::Commit(Transaction* txn) {
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn_id = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.wall_clock = clock_->NowMicros();
  Lsn lsn = log_->Append(rec);
  OnAppended(txn, lsn);
  // Durability: user commits force the log (group commit); system
  // transactions piggyback on the next user flush, which is safe
  // because their effects only matter once referencing user records
  // are durable.
  if (!txn->is_system) {
    REWIND_RETURN_IF_ERROR(log_->FlushTo(lsn));
  }
  txn->state = TxnState::kCommitted;
  locks_->ReleaseAll(txn->id);
  Forget(txn);
  return Status::OK();
}

Status RollbackChain(LogManager* log, Transaction* txn, Lsn from_lsn,
                     UndoApplier* applier) {
  Lsn cursor = from_lsn;
  while (cursor != kInvalidLsn) {
    REWIND_ASSIGN_OR_RETURN(LogRecord rec, log->ReadRecord(cursor));
    switch (rec.type) {
      case LogType::kClr:
        // Already-compensated region: skip to what remains.
        cursor = rec.undo_next_lsn;
        break;
      case LogType::kBegin:
        return Status::OK();
      case LogType::kCommit:
      case LogType::kAbort:
        return Status::Corruption("rollback hit a completion record");
      default:
        REWIND_RETURN_IF_ERROR(applier->UndoRecord(txn, cursor, rec));
        cursor = rec.prev_lsn;
        break;
    }
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn, UndoApplier* applier) {
  REWIND_RETURN_IF_ERROR(RollbackChain(log_, txn, txn->last_lsn, applier));
  LogRecord rec;
  rec.type = LogType::kAbort;
  rec.txn_id = txn->id;
  rec.prev_lsn = txn->last_lsn;
  Lsn lsn = log_->Append(rec);
  OnAppended(txn, lsn);
  txn->state = TxnState::kAborted;
  locks_->ReleaseAll(txn->id);
  Forget(txn);
  return Status::OK();
}

std::vector<AttEntry> TransactionManager::ActiveTransactions() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<AttEntry> att;
  att.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    if (txn->last_lsn != kInvalidLsn) att.push_back({id, txn->last_lsn});
  }
  return att;
}

Lsn TransactionManager::OldestActiveFirstLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  Lsn oldest = kInvalidLsn;
  for (const auto& [id, txn] : active_) {
    if (txn->first_lsn == kInvalidLsn) continue;
    if (oldest == kInvalidLsn || txn->first_lsn < oldest) {
      oldest = txn->first_lsn;
    }
  }
  return oldest;
}

void TransactionManager::Forget(Transaction* txn) {
  std::lock_guard<std::mutex> g(mu_);
  active_.erase(txn->id);  // destroys the descriptor
}

Transaction* TransactionManager::AdoptForRecovery(TxnId id, Lsn last_lsn) {
  std::lock_guard<std::mutex> g(mu_);
  auto txn = std::make_unique<Transaction>();
  txn->id = id;
  txn->last_lsn = last_lsn;
  Transaction* raw = txn.get();
  active_[id] = std::move(txn);
  if (id >= next_id_) next_id_ = id + 1;
  return raw;
}

TxnId TransactionManager::NextTxnIdHint() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_id_;
}

void TransactionManager::BumpTxnId(TxnId floor) {
  std::lock_guard<std::mutex> g(mu_);
  if (floor > next_id_) next_id_ = floor;
}

}  // namespace rewinddb
