#include "txn/transaction.h"

namespace rewinddb {

Transaction* TransactionManager::Begin(bool is_system) {
  std::unique_lock<std::mutex> g(mu_);
  auto txn = std::make_unique<Transaction>();
  txn->id = next_id_++;
  txn->is_system = is_system;
  txn->commit_mode = default_commit_mode_;
  txn->writer = wal_->MakeWriter();
  Transaction* raw = txn.get();
  active_[raw->id] = std::move(txn);
  g.unlock();
  // Stage (don't publish) the BEGIN record: it reaches the log in one
  // splice with the transaction's first update.
  LogRecord begin;
  begin.type = LogType::kBegin;
  begin.txn_id = raw->id;
  begin.is_system = is_system;
  raw->writer.Stage(begin);
  return raw;
}

void TransactionManager::OnAppended(Transaction* txn, Lsn lsn,
                                    Lsn publish_base) {
  if (txn->first_lsn == kInvalidLsn) {
    txn->first_lsn = publish_base != kInvalidLsn ? publish_base : lsn;
  }
  txn->last_lsn = lsn;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->last_lsn == kInvalidLsn) {
    // Read-only: nothing was published (the staged BEGIN is simply
    // discarded with the descriptor), so there is nothing to log or
    // make durable -- commit is lock release alone.
    txn->state = TxnState::kCommitted;
    locks_->ReleaseAll(txn->id);
    Forget(txn);
    return Status::OK();
  }
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn_id = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.wall_clock = clock_->NowMicros();
  Lsn lsn;
  {
    // Append the COMMIT record and mark the transaction decided in one
    // step relative to ActiveTransactions(): a fuzzy checkpoint racing
    // the durability wait below must not capture this transaction as
    // active once its completion record has an LSN (see
    // Transaction::completion_logged).
    std::lock_guard<std::mutex> g(mu_);
    Lsn base = kInvalidLsn;
    lsn = txn->writer.Append(rec, &base);
    OnAppended(txn, lsn, base);
    txn->completion_logged = true;
  }
  // Durability: user commits wait per their CommitMode (kGroup parks on
  // the group-commit pipeline; kSync forces the log in this thread).
  // System transactions piggyback on the next flush, which is safe
  // because their effects only matter once referencing user records
  // are durable.
  if (!txn->is_system) {
    REWIND_RETURN_IF_ERROR(wal_->WaitCommit(lsn, txn->commit_mode));
  }
  txn->state = TxnState::kCommitted;
  locks_->ReleaseAll(txn->id);
  Forget(txn);
  return Status::OK();
}

Status RollbackChain(wal::Wal* wal, Transaction* txn, Lsn from_lsn,
                     UndoApplier* applier) {
  wal::Cursor cur = wal->OpenCursor();
  REWIND_RETURN_IF_ERROR(cur.SeekToChain(from_lsn));
  while (cur.Valid()) {
    const LogRecord& rec = cur.record();
    switch (rec.type) {
      case LogType::kClr:
        // Already-compensated region: skip to what remains.
        REWIND_RETURN_IF_ERROR(cur.FollowUndoNext());
        break;
      case LogType::kBegin:
        return Status::OK();
      case LogType::kCommit:
      case LogType::kAbort:
        return Status::Corruption("rollback hit a completion record");
      default:
        REWIND_RETURN_IF_ERROR(applier->UndoRecord(txn, cur.lsn(), rec));
        REWIND_RETURN_IF_ERROR(cur.FollowPrev());
        break;
    }
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn, UndoApplier* applier) {
  REWIND_RETURN_IF_ERROR(RollbackChain(wal_, txn, txn->last_lsn, applier));
  if (txn->last_lsn != kInvalidLsn) {
    LogRecord rec;
    rec.type = LogType::kAbort;
    rec.txn_id = txn->id;
    rec.prev_lsn = txn->last_lsn;
    std::lock_guard<std::mutex> g(mu_);
    Lsn base = kInvalidLsn;
    Lsn lsn = txn->writer.Append(rec, &base);
    OnAppended(txn, lsn, base);
    txn->completion_logged = true;
  }
  txn->state = TxnState::kAborted;
  locks_->ReleaseAll(txn->id);
  Forget(txn);
  return Status::OK();
}

std::vector<AttEntry> TransactionManager::ActiveTransactions() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<AttEntry> att;
  att.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    // Decided transactions linger in active_ through the durability
    // wait; they are not recovery work and must not be captured.
    if (txn->completion_logged) continue;
    if (txn->last_lsn != kInvalidLsn) att.push_back({id, txn->last_lsn});
  }
  return att;
}

Lsn TransactionManager::OldestActiveFirstLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  Lsn oldest = kInvalidLsn;
  for (const auto& [id, txn] : active_) {
    if (txn->first_lsn == kInvalidLsn) continue;
    if (oldest == kInvalidLsn || txn->first_lsn < oldest) {
      oldest = txn->first_lsn;
    }
  }
  return oldest;
}

void TransactionManager::Forget(Transaction* txn) {
  std::lock_guard<std::mutex> g(mu_);
  active_.erase(txn->id);  // destroys the descriptor
}

Transaction* TransactionManager::AdoptForRecovery(TxnId id, Lsn last_lsn) {
  std::lock_guard<std::mutex> g(mu_);
  auto txn = std::make_unique<Transaction>();
  txn->id = id;
  txn->last_lsn = last_lsn;
  txn->writer = wal_->MakeWriter();
  txn->commit_mode = default_commit_mode_;
  Transaction* raw = txn.get();
  active_[id] = std::move(txn);
  if (id >= next_id_) next_id_ = id + 1;
  return raw;
}

TxnId TransactionManager::NextTxnIdHint() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_id_;
}

void TransactionManager::BumpTxnId(TxnId floor) {
  std::lock_guard<std::mutex> g(mu_);
  if (floor > next_id_) next_id_ = floor;
}

}  // namespace rewinddb
