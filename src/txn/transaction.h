// Transaction descriptor and the transaction manager.
#ifndef REWINDDB_TXN_TRANSACTION_H_
#define REWINDDB_TXN_TRANSACTION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/types.h"
#include "txn/lock_manager.h"
#include "wal/commit_mode.h"
#include "wal/wal.h"
#include "wal/wal_writer.h"

namespace rewinddb {

enum class TxnState { kActive, kCommitted, kAborted };

/// A running transaction. The engine threads one of these through every
/// DML call; the transaction manager owns the storage.
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnState state = TxnState::kActive;
  /// LSN of the first published record -- the BEGIN record, which the
  /// writer stages at Begin and publishes together with the first
  /// update (log-retention floor for active txns). Atomic: written by
  /// the owning thread as it publishes, read cross-thread by fuzzy
  /// checkpoints (ActiveTransactions) and the retention floor
  /// (OldestActiveFirstLsn) while the owner keeps running.
  std::atomic<Lsn> first_lsn{kInvalidLsn};
  /// LSN of the most recent record (head of the prevLSN chain). Same
  /// cross-thread read contract as first_lsn.
  std::atomic<Lsn> last_lsn{kInvalidLsn};
  /// System transactions wrap B-tree structure modifications and page
  /// (de)allocations: short, committed within the operation, and undone
  /// *physically* during recovery (their pages cannot have been touched
  /// by anyone else in between).
  bool is_system = false;
  /// Durability level of this transaction's commit (set from the
  /// engine/connection default at Begin; Txn::Commit(mode) overrides).
  CommitMode commit_mode = CommitMode::kGroup;
  /// True once the COMMIT/ABORT record has been appended to the log.
  /// Guarded by TransactionManager::mu_. A decided transaction must
  /// never appear in a fuzzy checkpoint's ATT: its descriptor lingers
  /// in `active_` through the durability wait, and an ATT entry whose
  /// last_lsn is a completion record would let a later analysis pass
  /// (whose scan starts above that LSN) resurrect the transaction as a
  /// loser and undo committed work.
  bool completion_logged = false;
  /// Per-transaction WAL write handle: stages record encodings locally
  /// and publishes them in batches.
  wal::Writer writer;
};

/// Logical-undo callback implemented by the engine layer: applies the
/// inverse of `rec` and logs a CLR whose undo_next_lsn is
/// `rec.prev_lsn`.
class UndoApplier {
 public:
  virtual ~UndoApplier() = default;
  virtual Status UndoRecord(Transaction* txn, Lsn lsn,
                            const LogRecord& rec) = 0;
};

/// Creates transactions, logs their begin/commit/abort, drives
/// rollback, and tracks the active transaction table (ATT).
class TransactionManager {
 public:
  TransactionManager(wal::Wal* wal, LockManager* locks, Clock* clock,
                     CommitMode default_commit_mode = CommitMode::kGroup)
      : wal_(wal), locks_(locks), clock_(clock),
        default_commit_mode_(default_commit_mode) {}

  /// Start a transaction. The BEGIN record is staged in the
  /// transaction's writer and published with its first update, so a
  /// read-only transaction costs no log space until commit.
  Transaction* Begin(bool is_system = false);

  /// Commit: append COMMIT (with wall-clock for SplitLSN search), then
  /// wait per the transaction's CommitMode (user transactions; system
  /// transactions piggyback on the next flush), release locks.
  Status Commit(Transaction* txn);

  /// Roll back every change of `txn` via logical undo + CLRs, then log
  /// ABORT and release locks.
  Status Abort(Transaction* txn, UndoApplier* applier);

  /// Called by the engine after publishing a record for `txn` so the
  /// prevLSN chain and ATT stay current. `publish_base` is the LSN of
  /// the first byte the publish spliced (the staged BEGIN when the
  /// writer held one); it anchors first_lsn.
  void OnAppended(Transaction* txn, Lsn lsn, Lsn publish_base = kInvalidLsn);

  /// Snapshot of the ATT for checkpoint-end records.
  std::vector<AttEntry> ActiveTransactions() const;

  /// Log-retention floor: the oldest first_lsn among active
  /// transactions, or kInvalidLsn if none are active.
  Lsn OldestActiveFirstLsn() const;

  /// Forget a finished transaction's descriptor.
  void Forget(Transaction* txn);

  /// Register a descriptor reconstructed by crash recovery.
  Transaction* AdoptForRecovery(TxnId id, Lsn last_lsn);

  /// Highest transaction id issued (persisted via checkpoints so ids
  /// stay unique across restarts).
  TxnId NextTxnIdHint() const;
  void BumpTxnId(TxnId floor);

 private:
  wal::Wal* wal_;
  LockManager* locks_;
  Clock* clock_;
  const CommitMode default_commit_mode_;

  mutable std::mutex mu_;
  TxnId next_id_ = 1;
  std::map<TxnId, std::unique_ptr<Transaction>> active_;
};

/// Drive the rollback of one transaction chain: walks prevLSN from
/// `from_lsn` with a wal::Cursor, calling `applier` for undoable
/// records and honouring CLR undo_next jumps. Shared by runtime abort,
/// crash-recovery undo and snapshot background undo (which is what
/// makes the paper's "single mechanism" point concrete).
Status RollbackChain(wal::Wal* wal, Transaction* txn, Lsn from_lsn,
                     UndoApplier* applier);

}  // namespace rewinddb

#endif  // REWINDDB_TXN_TRANSACTION_H_
