// Transaction descriptor and the transaction manager.
#ifndef REWINDDB_TXN_TRANSACTION_H_
#define REWINDDB_TXN_TRANSACTION_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/types.h"
#include "log/log_manager.h"
#include "txn/lock_manager.h"

namespace rewinddb {

enum class TxnState { kActive, kCommitted, kAborted };

/// A running transaction. The engine threads one of these through every
/// DML call; the transaction manager owns the storage.
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnState state = TxnState::kActive;
  /// LSN of the BEGIN record (log-retention floor for active txns).
  Lsn first_lsn = kInvalidLsn;
  /// LSN of the most recent record (head of the prevLSN chain).
  Lsn last_lsn = kInvalidLsn;
  /// System transactions wrap B-tree structure modifications and page
  /// (de)allocations: short, committed within the operation, and undone
  /// *physically* during recovery (their pages cannot have been touched
  /// by anyone else in between).
  bool is_system = false;
};

/// Logical-undo callback implemented by the engine layer: applies the
/// inverse of `rec` and logs a CLR whose undo_next_lsn is
/// `rec.prev_lsn`.
class UndoApplier {
 public:
  virtual ~UndoApplier() = default;
  virtual Status UndoRecord(Transaction* txn, Lsn lsn,
                            const LogRecord& rec) = 0;
};

/// Creates transactions, logs their begin/commit/abort, drives
/// rollback, and tracks the active transaction table (ATT).
class TransactionManager {
 public:
  TransactionManager(LogManager* log, LockManager* locks, Clock* clock)
      : log_(log), locks_(locks), clock_(clock) {}

  /// Start a transaction (logs BEGIN lazily with its first update; the
  /// descriptor is registered in the ATT immediately).
  Transaction* Begin(bool is_system = false);

  /// Commit: append COMMIT (with wall-clock for SplitLSN search), group
  /// flush for user transactions, release locks.
  Status Commit(Transaction* txn);

  /// Roll back every change of `txn` via logical undo + CLRs, then log
  /// ABORT and release locks.
  Status Abort(Transaction* txn, UndoApplier* applier);

  /// Called by the engine after appending a record for `txn` so the
  /// prevLSN chain and ATT stay current.
  void OnAppended(Transaction* txn, Lsn lsn);

  /// Snapshot of the ATT for checkpoint-end records.
  std::vector<AttEntry> ActiveTransactions() const;

  /// Log-retention floor: the oldest first_lsn among active
  /// transactions, or kInvalidLsn if none are active.
  Lsn OldestActiveFirstLsn() const;

  /// Forget a finished transaction's descriptor.
  void Forget(Transaction* txn);

  /// Register a descriptor reconstructed by crash recovery.
  Transaction* AdoptForRecovery(TxnId id, Lsn last_lsn);

  /// Highest transaction id issued (persisted via checkpoints so ids
  /// stay unique across restarts).
  TxnId NextTxnIdHint() const;
  void BumpTxnId(TxnId floor);

 private:
  LogManager* log_;
  LockManager* locks_;
  Clock* clock_;

  mutable std::mutex mu_;
  TxnId next_id_ = 1;
  std::map<TxnId, std::unique_ptr<Transaction>> active_;
};

/// Drive the rollback of one transaction chain: walks prevLSN from
/// `from_lsn`, calling `applier` for undoable records and honouring CLR
/// undo_next jumps. Shared by runtime abort, crash-recovery undo and
/// snapshot background undo (which is what makes the paper's "single
/// mechanism" point concrete).
Status RollbackChain(LogManager* log, Transaction* txn, Lsn from_lsn,
                     UndoApplier* applier);

}  // namespace rewinddb

#endif  // REWINDDB_TXN_TRANSACTION_H_
