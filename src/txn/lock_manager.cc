#include "txn/lock_manager.h"

#include <algorithm>

namespace rewinddb {

std::string RowLockKey(TreeId tree, const std::string& encoded_key) {
  std::string k;
  k.reserve(4 + encoded_key.size());
  k.append(reinterpret_cast<const char*>(&tree), sizeof(tree));
  k.append(encoded_key);
  return k;
}

std::string SchemaLockKey(TreeId tree) {
  std::string k = "S#";
  k.append(reinterpret_cast<const char*>(&tree), sizeof(tree));
  return k;
}

bool LockManager::CompatibleLocked(const LockState& st, TxnId txn,
                                   LockMode mode) const {
  for (const auto& [holder, held_mode] : st.holders) {
    if (holder == txn) continue;  // self-compatibility handled by caller
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::AcquireInternal(TxnId txn, const std::string& key,
                                    LockMode mode, bool blocking) {
  std::unique_lock<std::mutex> g(mu_);
  LockState& st = locks_[key];

  auto self = st.holders.find(txn);
  if (self != st.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already covered
    }
    // S -> X upgrade.
  }

  auto grantable = [&]() { return CompatibleLocked(st, txn, mode); };

  if (!grantable()) {
    if (!blocking) {
      if (st.holders.empty() && st.waiters == 0) locks_.erase(key);
      return Status::Busy("lock busy");
    }
    st.waiters++;
    bool ok = cv_.wait_for(g, std::chrono::microseconds(timeout_), grantable);
    // The map node may have been touched; re-find defensively.
    LockState& st2 = locks_[key];
    st2.waiters--;
    if (!ok) {
      if (st2.holders.empty() && st2.waiters == 0) locks_.erase(key);
      return Status::Aborted(
          "lock wait timeout (deadlock victim): txn " + std::to_string(txn));
    }
    st2.holders[txn] = mode;
    if (self == st.holders.end()) held_[txn].push_back(key);
    return Status::OK();
  }

  bool already_tracked = self != st.holders.end();
  st.holders[txn] = mode;
  if (!already_tracked) held_[txn].push_back(key);
  return Status::OK();
}

Status LockManager::Acquire(TxnId txn, const std::string& key, LockMode mode) {
  return AcquireInternal(txn, key, mode, /*blocking=*/true);
}

Status LockManager::TryAcquire(TxnId txn, const std::string& key,
                               LockMode mode) {
  return AcquireInternal(txn, key, mode, /*blocking=*/false);
}

void LockManager::GrantForRecovery(TxnId txn, const std::string& key,
                                   LockMode mode) {
  std::lock_guard<std::mutex> g(mu_);
  LockState& st = locks_[key];
  auto it = st.holders.find(txn);
  if (it == st.holders.end()) {
    st.holders[txn] = mode;
    held_[txn].push_back(key);
  } else if (mode == LockMode::kExclusive) {
    it->second = LockMode::kExclusive;
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const std::string& key : it->second) {
    auto lk = locks_.find(key);
    if (lk == locks_.end()) continue;
    lk->second.holders.erase(txn);
    if (lk->second.holders.empty() && lk->second.waiters == 0) {
      locks_.erase(lk);
    }
  }
  held_.erase(it);
  cv_.notify_all();
}

size_t LockManager::LockedKeyCount() const {
  std::lock_guard<std::mutex> g(mu_);
  return locks_.size();
}

bool LockManager::Holds(TxnId txn, const std::string& key,
                        LockMode mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto lk = locks_.find(key);
  if (lk == locks_.end()) return false;
  auto it = lk->second.holders.find(txn);
  if (it == lk->second.holders.end()) return false;
  return mode == LockMode::kShared || it->second == LockMode::kExclusive;
}

bool LockManager::IsHeldExclusive(const std::string& key) const {
  std::lock_guard<std::mutex> g(mu_);
  auto lk = locks_.find(key);
  if (lk == locks_.end()) return false;
  for (const auto& [holder, mode] : lk->second.holders) {
    if (mode == LockMode::kExclusive) return true;
  }
  return false;
}

}  // namespace rewinddb
