#include "page/alloc_page.h"

#include <cassert>
#include <cstring>

namespace rewinddb {

namespace {

// Layout after the header: allocated bitmap, then ever-allocated bitmap.
constexpr size_t kBitmapBytes = kPagesPerAllocMap / 8;
static_assert(kPageHeaderSize + 2 * kBitmapBytes <= kPageSize,
              "alloc bitmaps must fit in one page");

char* AllocBits(char* page) { return page + kPageHeaderSize; }
const char* AllocBits(const char* page) { return page + kPageHeaderSize; }
char* EverBits(char* page) { return page + kPageHeaderSize + kBitmapBytes; }
const char* EverBits(const char* page) {
  return page + kPageHeaderSize + kBitmapBytes;
}

bool GetBit(const char* bits, uint32_t i) {
  return (bits[i / 8] >> (i % 8)) & 1;
}

void PutBit(char* bits, uint32_t i, bool v) {
  if (v) bits[i / 8] = static_cast<char>(bits[i / 8] | (1 << (i % 8)));
  else bits[i / 8] = static_cast<char>(bits[i / 8] & ~(1 << (i % 8)));
}

}  // namespace

void AllocPage::Init(char* page, PageId id) {
  memset(page, 0, kPageSize);
  PageHeader* h = Header(page);
  h->page_id = id;
  h->type = PageType::kAllocMap;
  h->right_sibling = kInvalidPageId;
  // Bit 0 is the map page itself: permanently allocated.
  PutBit(AllocBits(page), 0, true);
  PutBit(EverBits(page), 0, true);
}

bool AllocPage::IsAllocated(const char* page, uint32_t bit) {
  assert(bit < kPagesPerAllocMap);
  return GetBit(AllocBits(page), bit);
}

bool AllocPage::EverAllocated(const char* page, uint32_t bit) {
  assert(bit < kPagesPerAllocMap);
  return GetBit(EverBits(page), bit);
}

void AllocPage::SetBits(char* page, uint32_t bit, bool allocated, bool ever,
                        bool* prev_allocated, bool* prev_ever) {
  assert(bit < kPagesPerAllocMap);
  *prev_allocated = GetBit(AllocBits(page), bit);
  *prev_ever = GetBit(EverBits(page), bit);
  PutBit(AllocBits(page), bit, allocated);
  PutBit(EverBits(page), bit, ever);
}

uint32_t AllocPage::FindFree(const char* page, uint32_t from) {
  const char* bits = AllocBits(page);
  for (uint32_t i = from; i < kPagesPerAllocMap; i++) {
    if (!GetBit(bits, i)) return i;
  }
  return kNoFreeBit;
}

uint32_t AllocPage::CountAllocated(const char* page) {
  const char* bits = AllocBits(page);
  uint32_t n = 0;
  for (uint32_t i = 0; i < kPagesPerAllocMap; i++) {
    if (GetBit(bits, i)) n++;
  }
  return n;
}

}  // namespace rewinddb
