// Slotted page: ordered variable-length records with a slot directory.
//
// Records live in a heap growing up from the header; the slot directory
// grows down from the end of the page. Slot indexes are the positions
// log records refer to, which is what makes physical (page-oriented)
// undo slot-exact: undoing records in reverse prevPageLSN order always
// finds slots exactly where the inverse operation expects them.
#ifndef REWINDDB_PAGE_SLOTTED_PAGE_H_
#define REWINDDB_PAGE_SLOTTED_PAGE_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "page/page.h"

namespace rewinddb {

/// Static helpers operating on a kPageSize buffer. The caller owns
/// latching; these functions assume exclusive access for mutators.
class SlottedPage {
 public:
  /// Format `page` as an empty slotted page.
  static void Init(char* page, PageId id, PageType type, uint8_t level,
                   TreeId tree_id);

  static uint16_t SlotCount(const char* page) {
    return Header(page)->slot_count;
  }

  /// Bytes available for a new record including its slot entry.
  static size_t FreeSpace(const char* page);

  /// True if a record of `len` bytes fits (possibly after compaction).
  static bool HasRoomFor(const char* page, size_t len);

  /// Record bytes at `slot` (undefined if slot >= SlotCount).
  static Slice Record(const char* page, uint16_t slot);

  /// Insert `data` at slot index `slot`, shifting later slots up by one.
  /// Fails with Corruption if there is no room (callers check first).
  static Status InsertAt(char* page, uint16_t slot, Slice data);

  /// Remove the record at `slot`, shifting later slots down by one.
  static Status RemoveAt(char* page, uint16_t slot);

  /// Replace the record at `slot` with `data`.
  static Status ReplaceAt(char* page, uint16_t slot, Slice data);

  /// Binary search for the first slot whose record's leading
  /// length-prefixed key is >= `key`. Records must be stored in key
  /// order with a 4-byte key-length prefix (B-tree entry format, see
  /// btree.h). Sets *found if an exact match exists.
  static uint16_t LowerBound(const char* page, Slice key, bool* found);

  /// Extract the key portion of a B-tree entry (length-prefixed).
  static Slice EntryKey(Slice entry);
  /// Extract the value portion of a B-tree entry.
  static Slice EntryValue(Slice entry);
  /// Build an entry from key and value.
  static std::string MakeEntry(Slice key, Slice value);

 private:
  static void Compact(char* page);
};

}  // namespace rewinddb

#endif  // REWINDDB_PAGE_SLOTTED_PAGE_H_
