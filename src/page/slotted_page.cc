#include "page/slotted_page.h"

#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "common/coding.h"

namespace rewinddb {

namespace {

// Each slot directory entry: record offset (2) + record length (2).
constexpr size_t kSlotEntrySize = 4;

uint16_t SlotOffset(const char* page, uint16_t slot) {
  const char* entry =
      page + kPageSize - kSlotEntrySize * (static_cast<size_t>(slot) + 1);
  return DecodeFixed16(entry);
}

uint16_t SlotLen(const char* page, uint16_t slot) {
  const char* entry =
      page + kPageSize - kSlotEntrySize * (static_cast<size_t>(slot) + 1);
  return DecodeFixed16(entry + 2);
}

void WriteSlot(char* page, uint16_t slot, uint16_t offset, uint16_t len) {
  char* entry =
      page + kPageSize - kSlotEntrySize * (static_cast<size_t>(slot) + 1);
  memcpy(entry, &offset, 2);
  memcpy(entry + 2, &len, 2);
}

size_t SlotDirStart(const char* page) {
  return kPageSize - kSlotEntrySize * Header(page)->slot_count;
}

}  // namespace

void SlottedPage::Init(char* page, PageId id, PageType type, uint8_t level,
                       TreeId tree_id) {
  memset(page, 0, kPageSize);
  PageHeader* h = Header(page);
  h->page_lsn = kInvalidLsn;
  h->last_fpi_lsn = kInvalidLsn;
  h->page_id = id;
  h->type = type;
  h->level = level;
  h->slot_count = 0;
  h->heap_top = static_cast<uint16_t>(kPageHeaderSize);
  h->frag_bytes = 0;
  h->right_sibling = kInvalidPageId;
  h->tree_id = tree_id;
  h->checksum = 0;
}

size_t SlottedPage::FreeSpace(const char* page) {
  const PageHeader* h = Header(page);
  size_t dir_start = SlotDirStart(page);
  assert(dir_start >= h->heap_top);
  return dir_start - h->heap_top;
}

bool SlottedPage::HasRoomFor(const char* page, size_t len) {
  // Space needed: record bytes + one slot entry; frag bytes count
  // because Compact() can reclaim them.
  return FreeSpace(page) + Header(page)->frag_bytes >= len + kSlotEntrySize;
}

Slice SlottedPage::Record(const char* page, uint16_t slot) {
  assert(slot < Header(page)->slot_count);
  return Slice(page + SlotOffset(page, slot), SlotLen(page, slot));
}

void SlottedPage::Compact(char* page) {
  PageHeader* h = Header(page);
  std::string heap;
  heap.reserve(h->heap_top);
  std::vector<std::pair<uint16_t, uint16_t>> slots(h->slot_count);
  for (uint16_t i = 0; i < h->slot_count; i++) {
    uint16_t off = SlotOffset(page, i);
    uint16_t len = SlotLen(page, i);
    uint16_t new_off = static_cast<uint16_t>(kPageHeaderSize + heap.size());
    heap.append(page + off, len);
    slots[i] = {new_off, len};
  }
  memcpy(page + kPageHeaderSize, heap.data(), heap.size());
  for (uint16_t i = 0; i < h->slot_count; i++) {
    WriteSlot(page, i, slots[i].first, slots[i].second);
  }
  h->heap_top = static_cast<uint16_t>(kPageHeaderSize + heap.size());
  h->frag_bytes = 0;
}

Status SlottedPage::InsertAt(char* page, uint16_t slot, Slice data) {
  PageHeader* h = Header(page);
  if (slot > h->slot_count) {
    return Status::Corruption("slot insert out of range");
  }
  if (!HasRoomFor(page, data.size())) {
    return Status::Corruption("slotted page full");
  }
  if (FreeSpace(page) < data.size() + kSlotEntrySize) {
    Compact(page);
  }
  // Shift slot entries for [slot, count) one position "later" (toward
  // lower addresses, since the directory grows down).
  char* dir_start = page + SlotDirStart(page);
  size_t shifted = (h->slot_count - slot) * kSlotEntrySize;
  memmove(dir_start - kSlotEntrySize, dir_start, shifted);
  h->slot_count++;
  // Place record bytes at the heap top.
  memcpy(page + h->heap_top, data.data(), data.size());
  WriteSlot(page, slot, h->heap_top, static_cast<uint16_t>(data.size()));
  h->heap_top = static_cast<uint16_t>(h->heap_top + data.size());
  return Status::OK();
}

Status SlottedPage::RemoveAt(char* page, uint16_t slot) {
  PageHeader* h = Header(page);
  if (slot >= h->slot_count) {
    return Status::Corruption("slot remove out of range");
  }
  uint16_t len = SlotLen(page, slot);
  uint16_t off = SlotOffset(page, slot);
  if (static_cast<size_t>(off) + len == h->heap_top) {
    h->heap_top = off;  // record was at the heap top: reclaim directly
  } else {
    h->frag_bytes = static_cast<uint16_t>(h->frag_bytes + len);
  }
  // Shift slot entries for (slot, count) one position "earlier".
  char* dir_start = page + SlotDirStart(page);
  size_t shifted = (h->slot_count - slot - 1) * kSlotEntrySize;
  memmove(dir_start + kSlotEntrySize, dir_start, shifted);
  h->slot_count--;
  return Status::OK();
}

Status SlottedPage::ReplaceAt(char* page, uint16_t slot, Slice data) {
  PageHeader* h = Header(page);
  if (slot >= h->slot_count) {
    return Status::Corruption("slot replace out of range");
  }
  uint16_t old_len = SlotLen(page, slot);
  uint16_t off = SlotOffset(page, slot);
  if (data.size() <= old_len) {
    memcpy(page + off, data.data(), data.size());
    h->frag_bytes = static_cast<uint16_t>(h->frag_bytes +
                                          (old_len - data.size()));
    WriteSlot(page, slot, off, static_cast<uint16_t>(data.size()));
    return Status::OK();
  }
  // Grow: free the old bytes, then place at heap top (compact if needed).
  if (FreeSpace(page) + h->frag_bytes + old_len < data.size()) {
    return Status::Corruption("slotted page full on replace");
  }
  h->frag_bytes = static_cast<uint16_t>(h->frag_bytes + old_len);
  WriteSlot(page, slot, 0, 0);
  if (FreeSpace(page) < data.size()) Compact(page);
  memcpy(page + h->heap_top, data.data(), data.size());
  WriteSlot(page, slot, h->heap_top, static_cast<uint16_t>(data.size()));
  h->heap_top = static_cast<uint16_t>(h->heap_top + data.size());
  return Status::OK();
}

Slice SlottedPage::EntryKey(Slice entry) {
  Decoder dec(entry);
  Slice key;
  bool ok = dec.GetLengthPrefixed(&key);
  assert(ok);
  (void)ok;
  return key;
}

Slice SlottedPage::EntryValue(Slice entry) {
  Decoder dec(entry);
  Slice key;
  bool ok = dec.GetLengthPrefixed(&key);
  assert(ok);
  (void)ok;
  return Slice(entry.data() + 4 + key.size(), entry.size() - 4 - key.size());
}

std::string SlottedPage::MakeEntry(Slice key, Slice value) {
  std::string e;
  PutLengthPrefixed(&e, key);
  e.append(value.data(), value.size());
  return e;
}

uint16_t SlottedPage::LowerBound(const char* page, Slice key, bool* found) {
  *found = false;
  uint16_t lo = 0;
  uint16_t hi = SlotCount(page);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    Slice mid_key = EntryKey(Record(page, mid));
    int c = mid_key.compare(key);
    if (c < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      if (c == 0) *found = true;
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rewinddb
