// Allocation map pages.
//
// Each map page covers an interval of kPagesPerAllocMap pages and holds
// two bits per covered page:
//   * allocated      -- the page is currently in use;
//   * ever_allocated -- the page has been allocated at least once.
//
// The ever-allocated bit is the metadata the paper introduces in
// section 4.2(1): it lets the allocator distinguish the *first*
// allocation of a page (no preformat logging needed -- the page holds
// nothing of interest) from a *re*-allocation, where a preformat log
// record must capture the previous content and link the old and new
// prevPageLSN chains.
//
// Allocation map updates are logged like any other page modification
// (kAllocBits records), so as-of snapshots rewind allocation state with
// the same physical-undo mechanism as data (paper section 3).
#ifndef REWINDDB_PAGE_ALLOC_PAGE_H_
#define REWINDDB_PAGE_ALLOC_PAGE_H_

#include <cstdint>

#include "common/types.h"
#include "page/page.h"

namespace rewinddb {

/// Pages covered by one allocation map page (including the map page
/// itself, which occupies bit 0 of its interval).
inline constexpr PageId kPagesPerAllocMap = 8192;

/// Page 0 is the superblock; allocation intervals start at page 1.
/// Interval i covers pages [1 + i*K, 1 + (i+1)*K) and its first page is
/// the map page itself.
inline PageId AllocMapPageFor(PageId page) {
  PageId interval = (page - 1) / kPagesPerAllocMap;
  return 1 + interval * kPagesPerAllocMap;
}

/// Bit index of `page` within its map page.
inline uint32_t AllocBitFor(PageId page) {
  return (page - 1) % kPagesPerAllocMap;
}

/// Page id covered by `bit` of map page `map_page`.
inline PageId PageForAllocBit(PageId map_page, uint32_t bit) {
  return map_page + bit;
}

/// Static helpers over a kPageSize buffer formatted as an alloc map.
class AllocPage {
 public:
  static void Init(char* page, PageId id);

  static bool IsAllocated(const char* page, uint32_t bit);
  static bool EverAllocated(const char* page, uint32_t bit);

  /// Set both bits; returns previous values through the out params so
  /// the caller can build the undo payload of the kAllocBits record.
  static void SetBits(char* page, uint32_t bit, bool allocated, bool ever,
                      bool* prev_allocated, bool* prev_ever);

  /// First bit >= `from` that is not allocated; kNoFreeBit if none.
  static uint32_t FindFree(const char* page, uint32_t from);

  static constexpr uint32_t kNoFreeBit = 0xFFFFFFFFu;

  /// Number of allocated bits (space accounting).
  static uint32_t CountAllocated(const char* page);
};

}  // namespace rewinddb

#endif  // REWINDDB_PAGE_ALLOC_PAGE_H_
