// On-page layout shared by every RewindDB page.
//
// The header carries exactly what the paper's page-oriented undo needs:
// `page_lsn` (the last log record that modified the page, section 2.1)
// which anchors the backward walk of PreparePageAsOf, and
// `last_fpi_lsn`, RewindDB's hint to the most recent full-page-image
// (preformat) record so the rewinder can skip log regions (section 6.1).
#ifndef REWINDDB_PAGE_PAGE_H_
#define REWINDDB_PAGE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace rewinddb {

enum class PageType : uint8_t {
  kFree = 0,
  kSuper = 1,       // page 0: boot page / master record
  kAllocMap = 2,    // allocation bitmap (allocated + ever-allocated bits)
  kBtreeLeaf = 3,
  kBtreeInternal = 4,
};

/// Fixed header at offset 0 of every page. Plain bytes, little-endian,
/// accessed through the helpers below so the layout stays explicit.
struct PageHeader {
  Lsn page_lsn;        // 0  : LSN of the last record that modified the page
  Lsn last_fpi_lsn;    // 8  : most recent full-page-image record (or 0)
  PageId page_id;      // 16
  PageType type;       // 20
  uint8_t level;       // 21 : B-tree level, 0 = leaf
  uint16_t slot_count; // 22
  uint16_t heap_top;   // 24 : offset of first free byte after record heap
  uint16_t frag_bytes; // 26 : reclaimable bytes inside the heap
  PageId right_sibling;// 28 : next leaf in key order (B-tree leaves)
  TreeId tree_id;      // 32 : owning tree (root page id)
  uint32_t checksum;   // 36 : torn-write detection, set at flush
  uint16_t mod_count;  // 40 : modifications since the last full page
                       //      image; drives the every-Nth FPI emission
                       //      of section 6.1
  uint16_t reserved16; // 42
  uint32_t reserved32; // 44 : pads the header to an 8-byte multiple
};
static_assert(sizeof(PageHeader) == 48, "page header layout is part of the format");

inline constexpr size_t kPageHeaderSize = sizeof(PageHeader);

inline PageHeader* Header(char* page) {
  return reinterpret_cast<PageHeader*>(page);
}
inline const PageHeader* Header(const char* page) {
  return reinterpret_cast<const PageHeader*>(page);
}

inline Lsn PageLsn(const char* page) { return Header(page)->page_lsn; }
inline void SetPageLsn(char* page, Lsn lsn) { Header(page)->page_lsn = lsn; }

/// Compute the checksum over everything except the checksum field.
uint32_t ComputePageChecksum(const char* page);

/// Stamp the checksum field (done by the buffer manager before a flush).
void StampPageChecksum(char* page);

/// Verify a page read from disk. Pages written before any checksum was
/// stamped (all-zero field) are accepted.
bool VerifyPageChecksum(const char* page);

}  // namespace rewinddb

#endif  // REWINDDB_PAGE_PAGE_H_
