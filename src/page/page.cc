#include "page/page.h"

#include <cstddef>

#include "common/coding.h"

namespace rewinddb {

uint32_t ComputePageChecksum(const char* page) {
  // Hash the page with the checksum field zeroed: hash the bytes before
  // and after the field.
  constexpr size_t kOff = offsetof(PageHeader, checksum);
  uint32_t h = Checksum32(page, kOff);
  uint32_t h2 = Checksum32(page + kOff + 4, kPageSize - kOff - 4);
  return h ^ (h2 * 16777619u) ^ 0x5bd1e995u;
}

void StampPageChecksum(char* page) {
  Header(page)->checksum = ComputePageChecksum(page);
}

bool VerifyPageChecksum(const char* page) {
  uint32_t stored = Header(page)->checksum;
  if (stored == 0) return true;  // never stamped
  return stored == ComputePageChecksum(page);
}

}  // namespace rewinddb
