#include "exec/planner.h"

#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace rewinddb {
namespace exec {

namespace {

// ------------------------- expression helpers -------------------------

void SplitConjuncts(const sql::ExprPtr& e, std::vector<sql::ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kBinary && e->op == sql::BinOp::kAnd) {
    SplitConjuncts(e->lhs, out);
    SplitConjuncts(e->rhs, out);
    return;
  }
  out->push_back(e);
}

sql::ExprPtr AndAll(const std::vector<sql::ExprPtr>& conjuncts) {
  sql::ExprPtr e;
  for (const sql::ExprPtr& c : conjuncts) {
    e = e == nullptr ? c : sql::MakeBinary(sql::BinOp::kAnd, e, c);
  }
  return e;
}

void CollectSlots(const sql::Expr& e, std::vector<int>* slots) {
  if (e.kind == sql::Expr::Kind::kColumn && e.slot >= 0) {
    slots->push_back(e.slot);
  }
  if (e.lhs != nullptr) CollectSlots(*e.lhs, slots);
  if (e.rhs != nullptr) CollectSlots(*e.rhs, slots);
}

void ShiftSlots(sql::Expr* e, int delta) {
  if (e->kind == sql::Expr::Kind::kColumn && e->slot >= 0) e->slot += delta;
  if (e->lhs != nullptr) ShiftSlots(e->lhs.get(), delta);
  if (e->rhs != nullptr) ShiftSlots(e->rhs.get(), delta);
}

/// Successor of an integer value, if it has one.
bool TryIncrement(Value* v) {
  switch (v->type()) {
    case ColumnType::kInt32:
      if (v->AsInt32() == INT32_MAX) return false;
      *v = Value(v->AsInt32() + 1);
      return true;
    case ColumnType::kInt64:
      if (v->AsInt64() == INT64_MAX) return false;
      *v = Value(v->AsInt64() + 1);
      return true;
    default:
      return false;
  }
}

// --------------------------------- scope ------------------------------

struct ScopeTable {
  std::string binding;
  std::unique_ptr<TableView> table;
  size_t offset = 0;  // first slot in the joined row layout
};

}  // namespace

// -------------------------------- planner -----------------------------

namespace {

class Planner {
 public:
  Planner(ReadView* view, const sql::SelectStmt& stmt)
      : view_(view), stmt_(stmt) {}

  Result<PreparedQuery> Plan();

 private:
  // Scope / binding.
  Status OpenTables();
  Result<int> ResolveColumn(const std::string& qual, const std::string& name);
  Status Bind(sql::Expr* e, bool allow_agg);
  /// Table index whose slot range contains `slot`.
  size_t TableOf(int slot) const;

  // Scans and joins.
  Result<std::unique_ptr<Executor>> BuildScan(
      size_t ti, std::vector<sql::ExprPtr> conjuncts);
  Result<std::unique_ptr<Executor>> BuildJoinTree();

  // Aggregation.
  Result<sql::ExprPtr> RewriteOverAgg(const sql::ExprPtr& e);
  void CollectAggs(const sql::ExprPtr& e);

  ReadView* view_;
  const sql::SelectStmt& stmt_;
  std::vector<ScopeTable> tables_;
  std::vector<ColumnType> joined_types_;
  /// WHERE/ON conjuncts not pushed into a scan, keyed by the join
  /// (table index) that first sees both sides.
  std::vector<std::vector<sql::ExprPtr>> join_conjuncts_;
  std::vector<std::vector<sql::ExprPtr>> scan_conjuncts_;

  // Aggregation state.
  std::vector<sql::ExprPtr> group_exprs_;
  std::vector<std::string> group_renders_;
  std::vector<sql::ExprPtr> agg_nodes_;
  std::vector<std::string> agg_renders_;
};

Status Planner::OpenTables() {
  std::vector<sql::TableRef> refs;
  refs.push_back(stmt_.from);
  for (const sql::JoinRef& j : stmt_.joins) refs.push_back(j.ref);
  for (const sql::TableRef& r : refs) {
    for (const ScopeTable& t : tables_) {
      if (t.binding == r.binding()) {
        return Status::InvalidArgument("duplicate table name '" +
                                       r.binding() +
                                       "' (use an alias to disambiguate)");
      }
    }
    Result<std::unique_ptr<TableView>> tv = view_->OpenTable(r.table);
    if (!tv.ok()) return tv.status();
    ScopeTable st;
    st.binding = r.binding();
    st.table = std::move(*tv);
    st.offset = joined_types_.size();
    for (ColumnType t : st.table->schema().types()) joined_types_.push_back(t);
    tables_.push_back(std::move(st));
  }
  join_conjuncts_.resize(tables_.size());
  scan_conjuncts_.resize(tables_.size());
  return Status::OK();
}

Result<int> Planner::ResolveColumn(const std::string& qual,
                                   const std::string& name) {
  int found = -1;
  bool saw_table = false;
  for (const ScopeTable& t : tables_) {
    if (!qual.empty() && t.binding != qual) continue;
    saw_table = true;
    int idx = t.table->schema().ColumnIndex(name);
    if (idx < 0) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column '" + name +
                                     "' (qualify it with a table name)");
    }
    found = static_cast<int>(t.offset) + idx;
  }
  if (!qual.empty() && !saw_table) {
    return Status::InvalidArgument("unknown table '" + qual + "'");
  }
  if (found < 0) {
    return Status::InvalidArgument(
        "unknown column '" + (qual.empty() ? name : qual + "." + name) + "'");
  }
  return found;
}

Status Planner::Bind(sql::Expr* e, bool allow_agg) {
  switch (e->kind) {
    case sql::Expr::Kind::kColumn: {
      if (e->slot >= 0) return Status::OK();  // planner-minted slot node
      Result<int> slot = ResolveColumn(e->table, e->column);
      if (!slot.ok()) return slot.status();
      e->slot = *slot;
      return Status::OK();
    }
    case sql::Expr::Kind::kAgg:
      if (!allow_agg) {
        return Status::InvalidArgument("aggregate " + e->Render() +
                                       " is not allowed here");
      }
      // No nested aggregates.
      return e->lhs == nullptr ? Status::OK() : Bind(e->lhs.get(), false);
    default:
      if (e->lhs != nullptr) {
        REWIND_RETURN_IF_ERROR(Bind(e->lhs.get(), allow_agg));
      }
      if (e->rhs != nullptr) {
        REWIND_RETURN_IF_ERROR(Bind(e->rhs.get(), allow_agg));
      }
      return Status::OK();
  }
}

size_t Planner::TableOf(int slot) const {
  for (size_t i = tables_.size(); i-- > 0;) {
    if (static_cast<size_t>(slot) >= tables_[i].offset) return i;
  }
  return 0;
}

Result<std::unique_ptr<Executor>> Planner::BuildScan(
    size_t ti, std::vector<sql::ExprPtr> conjuncts) {
  ScopeTable& st = tables_[ti];
  const Schema& schema = st.table->schema();
  int offset = static_cast<int>(st.offset);
  for (const sql::ExprPtr& c : conjuncts) ShiftSlots(c.get(), -offset);
  sql::ExprPtr residual = AndAll(conjuncts);

  // Equality and range conjuncts of the shape `col op literal` (either
  // side), by table-local column position.
  std::map<int, Value> eq;
  struct Range { sql::BinOp op; Value v; };
  std::map<int, std::vector<Range>> ranges;
  for (const sql::ExprPtr& c : conjuncts) {
    if (c->kind != sql::Expr::Kind::kBinary) continue;
    sql::BinOp op = c->op;
    const sql::Expr* col = c->lhs.get();
    const sql::Expr* lit = c->rhs.get();
    if (col->kind != sql::Expr::Kind::kColumn) {
      std::swap(col, lit);
      // Mirror the operator when the literal is on the left.
      switch (op) {
        case sql::BinOp::kLt: op = sql::BinOp::kGt; break;
        case sql::BinOp::kLe: op = sql::BinOp::kGe; break;
        case sql::BinOp::kGt: op = sql::BinOp::kLt; break;
        case sql::BinOp::kGe: op = sql::BinOp::kLe; break;
        default: break;
      }
    }
    if (col->kind != sql::Expr::Kind::kColumn || col->slot < 0) continue;
    if (lit->kind != sql::Expr::Kind::kLiteral || lit->literal.is_null()) {
      continue;
    }
    // Bounds need the literal in the column's storage type; a value
    // that cannot convert cannot bound the key range.
    Result<Value> v =
        CoerceValue(lit->literal, schema.columns()[col->slot].type);
    if (!v.ok()) continue;
    switch (op) {
      case sql::BinOp::kEq:
        eq.emplace(col->slot, *v);
        break;
      case sql::BinOp::kLt:
      case sql::BinOp::kLe:
      case sql::BinOp::kGt:
      case sql::BinOp::kGe:
        ranges[col->slot].push_back({op, *v});
        break;
      default:
        break;
    }
  }

  // Secondary-index selection: pick the index whose key columns have
  // the longest equality-covered prefix, when that beats the primary
  // key's equality prefix.
  size_t num_keys = schema.num_key_columns();
  size_t pk_eq = 0;
  while (pk_eq < num_keys && eq.count(static_cast<int>(pk_eq))) pk_eq++;
  const IndexInfo* best_index = nullptr;
  size_t best_eq = pk_eq;
  for (const IndexInfo& idx : st.table->indexes()) {
    size_t n = 0;
    while (n < idx.key_columns.size() && eq.count(idx.key_columns[n])) n++;
    if (n > best_eq) {
      best_eq = n;
      best_index = &idx;
    }
  }
  if (best_index != nullptr) {
    Row prefix;
    for (size_t j = 0; j < best_eq; j++) {
      prefix.push_back(eq.at(best_index->key_columns[j]));
    }
    return std::unique_ptr<Executor>(
        new IndexScanExec(std::move(st.table), st.binding, best_index->name,
                          std::move(prefix), std::move(residual)));
  }

  // Primary-key bounds from the equality prefix plus at most one range
  // conjunct on the next key column. Optimization only: `residual`
  // keeps the full predicate.
  std::optional<Row> lower, upper;
  Row eq_prefix;
  for (size_t j = 0; j < pk_eq; j++) {
    eq_prefix.push_back(eq.at(static_cast<int>(j)));
  }
  if (!eq_prefix.empty()) lower = eq_prefix;
  bool have_upper = false;
  if (pk_eq < num_keys) {
    auto it = ranges.find(static_cast<int>(pk_eq));
    if (it != ranges.end()) {
      for (const Range& r : it->second) {
        if (r.op == sql::BinOp::kGt || r.op == sql::BinOp::kGe) {
          // Inclusive lower even for `>`: the residual drops equality.
          Row lo = eq_prefix;
          lo.push_back(r.v);
          lower = std::move(lo);
        } else {
          Value v = r.v;
          // `<= X` widens to `< X+1`; if X has no successor, fall back
          // to the equality-prefix upper bound below.
          if (r.op == sql::BinOp::kLe && !TryIncrement(&v)) continue;
          Row hi = eq_prefix;
          hi.push_back(v);
          upper = std::move(hi);
          have_upper = true;
        }
      }
    }
  }
  if (!have_upper && !eq_prefix.empty()) {
    // Successor of the equality prefix: increment the last column that
    // has a successor, truncating the rest.
    for (size_t j = eq_prefix.size(); j-- > 0;) {
      Value v = eq_prefix[j];
      if (!TryIncrement(&v)) continue;
      Row hi(eq_prefix.begin(), eq_prefix.begin() + j);
      hi.push_back(v);
      upper = std::move(hi);
      break;
    }
  }
  return std::unique_ptr<Executor>(
      new SeqScanExec(std::move(st.table), st.binding, std::move(lower),
                      std::move(upper), std::move(residual)));
}

Result<std::unique_ptr<Executor>> Planner::BuildJoinTree() {
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<Executor> left,
                          BuildScan(0, std::move(scan_conjuncts_[0])));
  for (size_t i = 1; i < tables_.size(); i++) {
    int offset = static_cast<int>(tables_[i].offset);
    size_t arity = tables_[i].table->schema().num_columns();
    std::vector<ColumnType> right_types = tables_[i].table->schema().types();
    std::vector<ColumnType> left_types(joined_types_.begin(),
                                       joined_types_.begin() + offset);
    // The scan consumes tables_[i].table, so build it after computing
    // everything that needs the schema.
    std::vector<HashJoinExec::Key> keys;
    std::vector<sql::ExprPtr> residual;
    for (const sql::ExprPtr& c : join_conjuncts_[i]) {
      if (c->kind != sql::Expr::Kind::kBinary || c->op != sql::BinOp::kEq) {
        residual.push_back(c);
        continue;
      }
      std::vector<int> ls, rs;
      CollectSlots(*c->lhs, &ls);
      CollectSlots(*c->rhs, &rs);
      auto all_left = [&](const std::vector<int>& v) {
        for (int s : v) if (s >= offset) return false;
        return !v.empty();
      };
      auto all_right = [&](const std::vector<int>& v) {
        for (int s : v) {
          if (s < offset || static_cast<size_t>(s) >= offset + arity) {
            return false;
          }
        }
        return !v.empty();
      };
      sql::ExprPtr lkey, rkey;
      if (all_left(ls) && all_right(rs)) {
        lkey = c->lhs;
        rkey = c->rhs;
      } else if (all_left(rs) && all_right(ls)) {
        lkey = c->rhs;
        rkey = c->lhs;
      } else {
        residual.push_back(c);
        continue;
      }
      ShiftSlots(rkey.get(), -offset);
      Result<ColumnType> lt = InferType(*lkey, left_types);
      Result<ColumnType> rt = InferType(*rkey, right_types);
      ColumnType common = ColumnType::kNull;
      if (lt.ok() && rt.ok()) {
        bool ls_str = *lt == ColumnType::kString;
        bool rs_str = *rt == ColumnType::kString;
        if (ls_str && rs_str) {
          common = ColumnType::kString;
        } else if (!ls_str && !rs_str && *lt != ColumnType::kNull &&
                   *rt != ColumnType::kNull) {
          common = (*lt == ColumnType::kDouble || *rt == ColumnType::kDouble)
                       ? ColumnType::kDouble
                       : ColumnType::kInt64;
        }
      }
      if (common == ColumnType::kNull) {
        // Incomparable or statically-NULL keys: evaluate as a plain
        // predicate instead (NULL = anything rejects every row).
        ShiftSlots(rkey.get(), offset);
        residual.push_back(c);
        continue;
      }
      keys.push_back({std::move(lkey), std::move(rkey), common});
    }
    REWIND_ASSIGN_OR_RETURN(std::unique_ptr<Executor> right,
                            BuildScan(i, std::move(scan_conjuncts_[i])));
    if (!keys.empty()) {
      left = std::make_unique<HashJoinExec>(std::move(left), std::move(right),
                                            std::move(keys), AndAll(residual));
    } else {
      left = std::make_unique<NestedLoopJoinExec>(
          std::move(left), std::move(right), AndAll(join_conjuncts_[i]));
    }
  }
  return left;
}

void Planner::CollectAggs(const sql::ExprPtr& e) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kAgg) {
    std::string r = e->Render();
    for (const std::string& seen : agg_renders_) {
      if (seen == r) return;
    }
    agg_renders_.push_back(std::move(r));
    agg_nodes_.push_back(e);
    return;
  }
  CollectAggs(e->lhs);
  CollectAggs(e->rhs);
}

Result<sql::ExprPtr> Planner::RewriteOverAgg(const sql::ExprPtr& e) {
  std::string r = e->Render();
  for (size_t i = 0; i < group_renders_.size(); i++) {
    if (group_renders_[i] == r) {
      return sql::MakeSlot(static_cast<int>(i), r);
    }
  }
  if (e->kind == sql::Expr::Kind::kAgg) {
    for (size_t j = 0; j < agg_renders_.size(); j++) {
      if (agg_renders_[j] == r) {
        return sql::MakeSlot(static_cast<int>(group_renders_.size() + j), r);
      }
    }
    return Status::Corruption("internal: uncollected aggregate " + r);
  }
  if (e->kind == sql::Expr::Kind::kColumn) {
    return Status::InvalidArgument(
        "column " + r + " must appear in GROUP BY or inside an aggregate");
  }
  if (e->kind == sql::Expr::Kind::kLiteral) return e;
  auto copy = std::make_shared<sql::Expr>(*e);
  if (e->lhs != nullptr) {
    REWIND_ASSIGN_OR_RETURN(copy->lhs, RewriteOverAgg(e->lhs));
  }
  if (e->rhs != nullptr) {
    REWIND_ASSIGN_OR_RETURN(copy->rhs, RewriteOverAgg(e->rhs));
  }
  return copy;
}

Result<PreparedQuery> Planner::Plan() {
  REWIND_RETURN_IF_ERROR(OpenTables());

  // --- expand the select list ---------------------------------------
  struct Item {
    sql::ExprPtr expr;
    std::string name;
    std::string render;  // pre-rewrite render, for ORDER BY matching
  };
  std::vector<Item> items;
  for (const sql::SelectItem& it : stmt_.items) {
    if (!it.star) {
      Item item;
      item.expr = it.expr;
      item.render = it.expr->Render();
      item.name = !it.alias.empty() ? it.alias
                  : it.expr->kind == sql::Expr::Kind::kColumn
                      ? it.expr->column
                      : item.render;
      items.push_back(std::move(item));
      continue;
    }
    bool matched = false;
    for (const ScopeTable& t : tables_) {
      if (!it.star_table.empty() && t.binding != it.star_table) continue;
      matched = true;
      for (const Column& c : t.table->schema().columns()) {
        // Qualify only when the bare name is ambiguous in this scope.
        int owners = 0;
        for (const ScopeTable& u : tables_) {
          if (u.table->schema().ColumnIndex(c.name) >= 0) owners++;
        }
        Item item;
        item.expr = sql::MakeColumn(owners > 1 ? t.binding : "", c.name);
        item.render = item.expr->Render();
        item.name = c.name;
        items.push_back(std::move(item));
      }
    }
    if (!matched) {
      return Status::InvalidArgument("unknown table '" + it.star_table +
                                     "' in " + it.star_table + ".*");
    }
  }
  if (items.empty()) {
    return Status::InvalidArgument("SELECT list is empty");
  }

  // --- bind everything against the joined scope ---------------------
  for (Item& it : items) {
    REWIND_RETURN_IF_ERROR(Bind(it.expr.get(), /*allow_agg=*/true));
  }
  if (stmt_.where != nullptr) {
    REWIND_RETURN_IF_ERROR(Bind(stmt_.where.get(), /*allow_agg=*/false));
  }
  for (const sql::JoinRef& j : stmt_.joins) {
    REWIND_RETURN_IF_ERROR(Bind(j.on.get(), /*allow_agg=*/false));
  }
  for (const sql::ExprPtr& g : stmt_.group_by) {
    REWIND_RETURN_IF_ERROR(Bind(g.get(), /*allow_agg=*/false));
  }
  if (stmt_.having != nullptr) {
    REWIND_RETURN_IF_ERROR(Bind(stmt_.having.get(), /*allow_agg=*/true));
  }

  // ORDER BY items that name a select item (by alias or structurally)
  // sort on that output slot; anything else is a hidden sort key
  // computed alongside the projection. Only hidden keys are bound
  // against the input scope -- an alias is not a column.
  struct PendingSort {
    int item_slot = -1;     // >= 0: sort on items[item_slot]
    sql::ExprPtr hidden;    // else: this bound expression
    bool desc = false;
  };
  std::vector<PendingSort> pending_sorts;
  for (const sql::OrderItem& o : stmt_.order_by) {
    PendingSort p;
    p.desc = o.desc;
    std::string r = o.expr->Render();
    for (size_t i = 0; i < items.size(); i++) {
      bool alias_match = o.expr->kind == sql::Expr::Kind::kColumn &&
                         o.expr->table.empty() &&
                         o.expr->column == items[i].name;
      if (alias_match || items[i].render == r) {
        p.item_slot = static_cast<int>(i);
        break;
      }
    }
    if (p.item_slot < 0) {
      REWIND_RETURN_IF_ERROR(Bind(o.expr.get(), /*allow_agg=*/true));
      p.hidden = o.expr;
    }
    pending_sorts.push_back(std::move(p));
  }

  // --- sink WHERE and ON conjuncts ----------------------------------
  std::vector<sql::ExprPtr> conjuncts;
  SplitConjuncts(stmt_.where, &conjuncts);
  for (const sql::JoinRef& j : stmt_.joins) SplitConjuncts(j.on, &conjuncts);
  for (const sql::ExprPtr& c : conjuncts) {
    std::vector<int> slots;
    CollectSlots(*c, &slots);
    size_t max_table = 0;
    bool single = true;
    for (int s : slots) {
      size_t t = TableOf(s);
      if (!slots.empty() && t != TableOf(slots[0])) single = false;
      if (t > max_table) max_table = t;
    }
    if (slots.empty() || single) {
      scan_conjuncts_[slots.empty() ? 0 : TableOf(slots[0])].push_back(c);
    } else {
      join_conjuncts_[max_table].push_back(c);
    }
  }

  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<Executor> root, BuildJoinTree());

  // --- aggregation --------------------------------------------------
  bool has_agg = !stmt_.group_by.empty();
  for (const Item& it : items) has_agg |= ContainsAggregate(*it.expr);
  if (stmt_.having != nullptr) has_agg |= ContainsAggregate(*stmt_.having);
  for (const PendingSort& p : pending_sorts) {
    if (p.hidden != nullptr) has_agg |= ContainsAggregate(*p.hidden);
  }
  if (stmt_.having != nullptr && !has_agg) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }

  std::vector<ColumnType> pre_projection_types = joined_types_;
  sql::ExprPtr having = stmt_.having;
  if (has_agg) {
    group_exprs_ = stmt_.group_by;
    for (const sql::ExprPtr& g : group_exprs_) {
      group_renders_.push_back(g->Render());
    }
    for (const Item& it : items) CollectAggs(it.expr);
    CollectAggs(stmt_.having);
    for (const PendingSort& p : pending_sorts) CollectAggs(p.hidden);

    std::vector<HashAggExec::AggSpec> specs;
    std::vector<ColumnType> agg_out_types;
    for (const sql::ExprPtr& g : group_exprs_) {
      REWIND_ASSIGN_OR_RETURN(ColumnType t, InferType(*g, joined_types_));
      agg_out_types.push_back(t);
    }
    for (const sql::ExprPtr& a : agg_nodes_) {
      REWIND_ASSIGN_OR_RETURN(ColumnType t, InferType(*a, joined_types_));
      agg_out_types.push_back(t);
      specs.push_back({a->agg, a->lhs, a->agg_distinct, t});
    }
    root = std::make_unique<HashAggExec>(std::move(root), group_exprs_,
                                         std::move(specs));
    for (Item& it : items) {
      REWIND_ASSIGN_OR_RETURN(it.expr, RewriteOverAgg(it.expr));
    }
    if (having != nullptr) {
      REWIND_ASSIGN_OR_RETURN(having, RewriteOverAgg(having));
    }
    pre_projection_types = std::move(agg_out_types);
  }
  if (having != nullptr) {
    root = std::make_unique<FilterExec>(std::move(root), having);
  }

  // --- projection, ORDER BY (with hidden sort keys), DISTINCT -------
  std::vector<sql::ExprPtr> projections;
  PreparedQuery out;
  for (const Item& it : items) {
    REWIND_ASSIGN_OR_RETURN(ColumnType t,
                            InferType(*it.expr, pre_projection_types));
    out.column_names.push_back(it.name);
    out.column_types.push_back(t);
    projections.push_back(it.expr);
  }
  size_t visible = projections.size();

  std::vector<SortKey> sort_keys;
  for (const PendingSort& p : pending_sorts) {
    if (p.item_slot >= 0) {
      sort_keys.push_back({p.item_slot, p.desc});
      continue;
    }
    if (stmt_.distinct) {
      return Status::InvalidArgument(
          "ORDER BY with DISTINCT must use selected columns");
    }
    sql::ExprPtr key = p.hidden;
    if (has_agg) {
      REWIND_ASSIGN_OR_RETURN(key, RewriteOverAgg(key));
    }
    sort_keys.push_back({static_cast<int>(projections.size()), p.desc});
    projections.push_back(key);
  }

  root = std::make_unique<ProjectExec>(
      std::move(root), projections,
      projections.size() > visible ? "Project+SortKeys" : "Project");

  if (stmt_.distinct) {
    std::vector<sql::ExprPtr> group;
    for (size_t i = 0; i < visible; i++) {
      group.push_back(sql::MakeSlot(static_cast<int>(i), out.column_names[i]));
    }
    root = std::make_unique<HashAggExec>(std::move(root), std::move(group),
                                         std::vector<HashAggExec::AggSpec>());
  }
  if (!sort_keys.empty()) {
    root = std::make_unique<SortExec>(std::move(root), std::move(sort_keys));
  }
  if (projections.size() > visible) {
    root = std::make_unique<PrefixExec>(std::move(root), visible);
  }
  if (stmt_.limit) {
    root = std::make_unique<LimitExec>(std::move(root), *stmt_.limit);
  }
  out.root = std::move(root);
  return out;
}

void ExplainInto(const Executor* e, size_t depth,
                 std::vector<std::string>* out) {
  out->push_back(std::string(depth * 2, ' ') + e->Describe());
  for (const Executor* c : e->Children()) ExplainInto(c, depth + 1, out);
}

}  // namespace

std::vector<std::string> PreparedQuery::ExplainLines() const {
  std::vector<std::string> lines;
  if (root != nullptr) ExplainInto(root.get(), 0, &lines);
  return lines;
}

Result<PreparedQuery> PlanSelect(ReadView* view, const sql::SelectStmt& stmt) {
  Planner planner(view, stmt);
  return planner.Plan();
}

Result<SelectOutput> RunSelect(ReadView* view, const sql::SelectStmt& stmt) {
  REWIND_ASSIGN_OR_RETURN(PreparedQuery q, PlanSelect(view, stmt));
  SelectOutput out;
  out.column_names = std::move(q.column_names);
  out.column_types = std::move(q.column_types);
  REWIND_RETURN_IF_ERROR(q.root->Open());
  Row row;
  while (true) {
    REWIND_ASSIGN_OR_RETURN(bool more, q.root->Next(&row));
    if (!more) break;
    out.rows.push_back(std::move(row));
    row.clear();
  }
  return out;
}

}  // namespace exec
}  // namespace rewinddb
