// Volcano-style executors: a tree of pull-based iterators (Open /
// Next / destructor-close) evaluated over api::TableView handles.
//
// Executors never touch the engine directly -- every base-table access
// goes through a TableView, so the identical plan runs against the
// live database, an AS OF snapshot, or a named snapshot. That is the
// paper's point-in-time promise carried up into query execution: plan
// once, run at any time.
//
// TableView::Scan is push (callback) while executors are pull, so
// SeqScanExec adapts with a bounded batch buffer: scan until the batch
// fills, remember the last delivered primary key, and resume the next
// batch from that key (primary keys are unique, so the resume row
// itself is skipped). A long scan therefore never pins the whole
// result in memory.
#ifndef REWINDDB_EXEC_EXECUTOR_H_
#define REWINDDB_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/read_view.h"
#include "exec/expr.h"
#include "sql/select_ast.h"

namespace rewinddb {
namespace exec {

class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Open() = 0;
  /// Produce the next row into *out; false = exhausted.
  virtual Result<bool> Next(Row* out) = 0;

  /// One EXPLAIN line, e.g. "SeqScan stock filter=(s_quantity < 15)".
  virtual std::string Describe() const = 0;
  virtual std::vector<const Executor*> Children() const { return {}; }
};

/// Full-table / key-range scan with the residual predicate pushed into
/// the scan callback. `lower`/`upper` are optimization-only key bounds
/// ([lower, upper), prefix rows allowed); `residual` is the COMPLETE
/// single-table predicate, so bound derivation can never change
/// results -- only skip irrelevant key ranges.
class SeqScanExec : public Executor {
 public:
  SeqScanExec(std::unique_ptr<TableView> table, std::string display,
              std::optional<Row> lower, std::optional<Row> upper,
              sql::ExprPtr residual);

  Status Open() override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;

 private:
  Status FillBatch();

  std::unique_ptr<TableView> table_;
  std::string display_;
  std::optional<Row> lower_, upper_;
  sql::ExprPtr residual_;  // bound to table-local slots; may be null
  size_t num_keys_ = 0;

  std::vector<Row> batch_;
  size_t pos_ = 0;
  std::optional<Row> resume_;  // key of last delivered row
  bool exhausted_ = false;
};

/// Secondary-index equality scan: rows whose index key starts with
/// `prefix`, filtered by the complete residual predicate. Results are
/// materialized at Open (equality prefixes select small sets).
class IndexScanExec : public Executor {
 public:
  IndexScanExec(std::unique_ptr<TableView> table, std::string display,
                std::string index_name, Row prefix, sql::ExprPtr residual);

  Status Open() override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;

 private:
  std::unique_ptr<TableView> table_;
  std::string display_, index_name_;
  Row prefix_;
  sql::ExprPtr residual_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class FilterExec : public Executor {
 public:
  FilterExec(std::unique_ptr<Executor> child, sql::ExprPtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Executor> child_;
  sql::ExprPtr pred_;
};

/// Computes one output value per expression. `display` names the stage
/// for EXPLAIN ("Project" or "Project+SortKeys").
class ProjectExec : public Executor {
 public:
  ProjectExec(std::unique_ptr<Executor> child, std::vector<sql::ExprPtr> exprs,
              std::string display)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        display_(std::move(display)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<sql::ExprPtr> exprs_;
  std::string display_;
};

/// Keeps the first `keep` columns of each row: strips hidden ORDER BY
/// sort keys after the sort.
class PrefixExec : public Executor {
 public:
  PrefixExec(std::unique_ptr<Executor> child, size_t keep)
      : child_(std::move(child)), keep_(keep) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Executor> child_;
  size_t keep_;
};

/// Inner nested-loop join; the right input is materialized at Open.
/// Output rows are left ++ right; `pred` (may be null = cross join)
/// sees that combined layout.
class NestedLoopJoinExec : public Executor {
 public:
  NestedLoopJoinExec(std::unique_ptr<Executor> left,
                     std::unique_ptr<Executor> right, sql::ExprPtr pred)
      : left_(std::move(left)), right_(std::move(right)),
        pred_(std::move(pred)) {}

  Status Open() override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  std::unique_ptr<Executor> left_, right_;
  sql::ExprPtr pred_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Inner hash equi-join: build on the right input, probe with the
/// left. Key expressions are evaluated per side and coerced to a
/// common type before hashing; a NULL key never matches (SQL '='
/// semantics). `residual` (may be null) runs on the combined row.
class HashJoinExec : public Executor {
 public:
  struct Key {
    sql::ExprPtr left, right;  // bound to the respective input layouts
    ColumnType type;           // common comparison type
  };

  HashJoinExec(std::unique_ptr<Executor> left, std::unique_ptr<Executor> right,
               std::vector<Key> keys, sql::ExprPtr residual)
      : left_(std::move(left)), right_(std::move(right)),
        keys_(std::move(keys)), residual_(std::move(residual)) {}

  Status Open() override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Encoded key of `row` under one side's expressions; nullopt if any
  /// key value is NULL.
  Result<std::optional<std::string>> KeyOf(const Row& row, bool left_side);

  std::unique_ptr<Executor> left_, right_;
  std::vector<Key> keys_;
  sql::ExprPtr residual_;
  std::unordered_map<std::string, std::vector<Row>> build_;
  Row left_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Hash aggregation with grouping. Output rows are
/// [group values..., aggregate results...]; groups stream out in
/// group-key order (the encoding is order-preserving), which makes
/// results deterministic. With no GROUP BY, exactly one row is
/// produced even over empty input (COUNT = 0, SUM/MIN/MAX/AVG = NULL).
/// With `aggs` empty this is SELECT DISTINCT.
class HashAggExec : public Executor {
 public:
  struct AggSpec {
    sql::AggFn fn;
    sql::ExprPtr arg;      // null for COUNT(*)
    bool distinct = false;
    ColumnType result_type = ColumnType::kInt64;
  };

  HashAggExec(std::unique_ptr<Executor> child,
              std::vector<sql::ExprPtr> group_exprs, std::vector<AggSpec> aggs)
      : child_(std::move(child)), group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)) {}

  Status Open() override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {child_.get()};
  }

 private:
  struct AggState {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0;
    Value extreme;  // MIN/MAX accumulator
    bool has_value = false;
    std::set<std::string> seen;  // DISTINCT dedup (encoded datums)
  };
  struct Group {
    Row values;
    std::vector<AggState> states;
  };

  Status Consume(const Row& row);
  Value Finalize(const AggSpec& spec, const AggState& st) const;

  std::unique_ptr<Executor> child_;
  std::vector<sql::ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  std::map<std::string, Group> groups_;  // ordered by encoded group key
  std::map<std::string, Group>::iterator it_;
  bool opened_ = false;
};

struct SortKey {
  int slot = -1;
  bool desc = false;
};

/// Full materializing sort. NULLs sort last ascending, first
/// descending. Stable, so equal keys keep child order.
class SortExec : public Executor {
 public:
  SortExec(std::unique_ptr<Executor> child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override;
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Executor> child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitExec : public Executor {
 public:
  LimitExec(std::unique_ptr<Executor> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  std::string Describe() const override;
  std::vector<const Executor*> Children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Executor> child_;
  uint64_t limit_, emitted_ = 0;
};

}  // namespace exec
}  // namespace rewinddb

#endif  // REWINDDB_EXEC_EXECUTOR_H_
