#include "exec/expr.h"

#include <cmath>
#include <cstdint>

namespace rewinddb {
namespace exec {

namespace {

bool IsNumeric(ColumnType t) {
  return t == ColumnType::kInt32 || t == ColumnType::kInt64 ||
         t == ColumnType::kDouble;
}

double AsDoubleLoose(const Value& v) {
  switch (v.type()) {
    case ColumnType::kInt32: return static_cast<double>(v.AsInt32());
    case ColumnType::kInt64: return static_cast<double>(v.AsInt64());
    default: return v.AsDouble();
  }
}

int64_t AsInt64Loose(const Value& v) {
  return v.type() == ColumnType::kInt32 ? v.AsInt32() : v.AsInt64();
}

int Sign(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Sign(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

Value TriValue(bool b) { return Value(static_cast<int32_t>(b ? 1 : 0)); }

Tri Not(Tri t) {
  switch (t) {
    case Tri::kTrue: return Tri::kFalse;
    case Tri::kFalse: return Tri::kTrue;
    case Tri::kNull: return Tri::kNull;
  }
  return Tri::kNull;
}

Result<Tri> Truth(const Value& v) {
  switch (v.type()) {
    case ColumnType::kNull: return Tri::kNull;
    case ColumnType::kInt32: return v.AsInt32() != 0 ? Tri::kTrue : Tri::kFalse;
    case ColumnType::kInt64: return v.AsInt64() != 0 ? Tri::kTrue : Tri::kFalse;
    case ColumnType::kDouble:
      return v.AsDouble() != 0.0 ? Tri::kTrue : Tri::kFalse;
    case ColumnType::kString:
      return Status::InvalidArgument("string used as a condition");
  }
  return Status::Corruption("internal: bad value type");
}

Result<Value> EvalArith(sql::BinOp op, const Value& a, const Value& b) {
  if (a.type() == ColumnType::kString || b.type() == ColumnType::kString) {
    return Status::InvalidArgument(std::string("cannot apply ") +
                                   sql::BinOpName(op) + " to a string");
  }
  if (a.type() == ColumnType::kDouble || b.type() == ColumnType::kDouble) {
    double x = AsDoubleLoose(a), y = AsDoubleLoose(b);
    switch (op) {
      case sql::BinOp::kAdd: return Value(x + y);
      case sql::BinOp::kSub: return Value(x - y);
      case sql::BinOp::kMul: return Value(x * y);
      case sql::BinOp::kDiv:
        if (y == 0.0) return Status::InvalidArgument("division by zero");
        return Value(x / y);
      case sql::BinOp::kMod:
        return Status::InvalidArgument("% requires integer operands");
      default: break;
    }
    return Status::Corruption("internal: bad arithmetic op");
  }
  int64_t x = AsInt64Loose(a), y = AsInt64Loose(b);
  switch (op) {
    case sql::BinOp::kAdd:
      return Value(static_cast<int64_t>(static_cast<uint64_t>(x) +
                                        static_cast<uint64_t>(y)));
    case sql::BinOp::kSub:
      return Value(static_cast<int64_t>(static_cast<uint64_t>(x) -
                                        static_cast<uint64_t>(y)));
    case sql::BinOp::kMul:
      return Value(static_cast<int64_t>(static_cast<uint64_t>(x) *
                                        static_cast<uint64_t>(y)));
    case sql::BinOp::kDiv:
      if (y == 0) return Status::InvalidArgument("division by zero");
      if (y == -1 && x == INT64_MIN) {
        return Status::InvalidArgument("integer overflow in division");
      }
      return Value(x / y);
    case sql::BinOp::kMod:
      if (y == 0) return Status::InvalidArgument("division by zero");
      if (y == -1) return Value(static_cast<int64_t>(0));
      return Value(x % y);
    default: break;
  }
  return Status::Corruption("internal: bad arithmetic op");
}

}  // namespace

Result<int> CompareValues(const Value& a, const Value& b) {
  bool as = a.type() == ColumnType::kString;
  bool bs = b.type() == ColumnType::kString;
  if (as != bs) {
    return Status::InvalidArgument("cannot compare a string with a number");
  }
  if (as) {
    int c = a.AsString().compare(b.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type() == ColumnType::kDouble || b.type() == ColumnType::kDouble) {
    return Sign(AsDoubleLoose(a), AsDoubleLoose(b));
  }
  return Sign(AsInt64Loose(a), AsInt64Loose(b));
}

int CompareForSort(const Value& a, const Value& b) {
  bool an = a.is_null(), bn = b.is_null();
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  Result<int> c = CompareValues(a, b);
  if (c.ok()) return *c;
  // Mixed string/number (statically impossible today): order by tag.
  return static_cast<int>(a.type()) < static_cast<int>(b.type()) ? -1 : 1;
}

Result<Value> CoerceValue(const Value& v, ColumnType type) {
  if (v.is_null() || v.type() == type) return v;
  if (!IsNumeric(v.type()) || !IsNumeric(type)) {
    return Status::InvalidArgument(std::string("cannot convert ") +
                                   ColumnTypeName(v.type()) + " to " +
                                   ColumnTypeName(type));
  }
  switch (type) {
    case ColumnType::kInt64:
      if (v.type() == ColumnType::kInt32) {
        return Value(static_cast<int64_t>(v.AsInt32()));
      }
      break;  // double -> int is lossy
    case ColumnType::kInt32:
      if (v.type() == ColumnType::kInt64) {
        int64_t x = v.AsInt64();
        if (x >= INT32_MIN && x <= INT32_MAX) {
          return Value(static_cast<int32_t>(x));
        }
        return Status::InvalidArgument("value out of range for INT32");
      }
      break;
    case ColumnType::kDouble:
      return Value(AsDoubleLoose(v));
    default:
      break;
  }
  return Status::InvalidArgument(std::string("cannot convert ") +
                                 ColumnTypeName(v.type()) + " to " +
                                 ColumnTypeName(type));
}

Result<Value> Eval(const sql::Expr& e, const Row& row) {
  switch (e.kind) {
    case sql::Expr::Kind::kLiteral:
      return e.literal;
    case sql::Expr::Kind::kColumn:
      if (e.slot < 0 || static_cast<size_t>(e.slot) >= row.size()) {
        return Status::Corruption("internal: unbound column '" + e.Render() + "'");
      }
      return row[e.slot];
    case sql::Expr::Kind::kNeg: {
      REWIND_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, row));
      switch (v.type()) {
        case ColumnType::kNull: return v;
        case ColumnType::kInt32:
          if (v.AsInt32() == INT32_MIN) {
            return Status::InvalidArgument("integer overflow in negation");
          }
          return Value(-v.AsInt32());
        case ColumnType::kInt64:
          if (v.AsInt64() == INT64_MIN) {
            return Status::InvalidArgument("integer overflow in negation");
          }
          return Value(-v.AsInt64());
        case ColumnType::kDouble: return Value(-v.AsDouble());
        case ColumnType::kString:
          return Status::InvalidArgument("cannot negate a string");
      }
      return Status::Corruption("internal: bad value type");
    }
    case sql::Expr::Kind::kNot: {
      REWIND_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, row));
      REWIND_ASSIGN_OR_RETURN(Tri t, Truth(v));
      if (t == Tri::kNull) return Value::Null();
      return TriValue(Not(t) == Tri::kTrue);
    }
    case sql::Expr::Kind::kIsNull: {
      REWIND_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, row));
      return TriValue(v.is_null() != e.negated);
    }
    case sql::Expr::Kind::kAgg:
      return Status::Corruption("internal: unresolved aggregate '" + e.Render() + "'");
    case sql::Expr::Kind::kBinary:
      break;
  }

  // Kleene AND/OR short-circuit around NULLs.
  if (e.op == sql::BinOp::kAnd || e.op == sql::BinOp::kOr) {
    REWIND_ASSIGN_OR_RETURN(Value lv, Eval(*e.lhs, row));
    REWIND_ASSIGN_OR_RETURN(Tri lt, Truth(lv));
    if (e.op == sql::BinOp::kAnd && lt == Tri::kFalse) return TriValue(false);
    if (e.op == sql::BinOp::kOr && lt == Tri::kTrue) return TriValue(true);
    REWIND_ASSIGN_OR_RETURN(Value rv, Eval(*e.rhs, row));
    REWIND_ASSIGN_OR_RETURN(Tri rt, Truth(rv));
    if (e.op == sql::BinOp::kAnd) {
      if (rt == Tri::kFalse) return TriValue(false);
      if (lt == Tri::kNull || rt == Tri::kNull) return Value::Null();
      return TriValue(true);
    }
    if (rt == Tri::kTrue) return TriValue(true);
    if (lt == Tri::kNull || rt == Tri::kNull) return Value::Null();
    return TriValue(false);
  }

  REWIND_ASSIGN_OR_RETURN(Value lv, Eval(*e.lhs, row));
  REWIND_ASSIGN_OR_RETURN(Value rv, Eval(*e.rhs, row));
  switch (e.op) {
    case sql::BinOp::kEq:
    case sql::BinOp::kNe:
    case sql::BinOp::kLt:
    case sql::BinOp::kLe:
    case sql::BinOp::kGt:
    case sql::BinOp::kGe: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      REWIND_ASSIGN_OR_RETURN(int c, CompareValues(lv, rv));
      switch (e.op) {
        case sql::BinOp::kEq: return TriValue(c == 0);
        case sql::BinOp::kNe: return TriValue(c != 0);
        case sql::BinOp::kLt: return TriValue(c < 0);
        case sql::BinOp::kLe: return TriValue(c <= 0);
        case sql::BinOp::kGt: return TriValue(c > 0);
        default: return TriValue(c >= 0);
      }
    }
    default:
      if (lv.is_null() || rv.is_null()) return Value::Null();
      return EvalArith(e.op, lv, rv);
  }
}

Result<Tri> EvalPredicate(const sql::Expr& e, const Row& row) {
  REWIND_ASSIGN_OR_RETURN(Value v, Eval(e, row));
  return Truth(v);
}

Result<ColumnType> InferType(const sql::Expr& e,
                             const std::vector<ColumnType>& input_types) {
  switch (e.kind) {
    case sql::Expr::Kind::kLiteral:
      return e.literal.type();
    case sql::Expr::Kind::kColumn:
      if (e.slot < 0 || static_cast<size_t>(e.slot) >= input_types.size()) {
        return Status::Corruption("internal: unbound column '" + e.Render() + "'");
      }
      return input_types[e.slot];
    case sql::Expr::Kind::kNeg: {
      REWIND_ASSIGN_OR_RETURN(ColumnType t, InferType(*e.lhs, input_types));
      if (t == ColumnType::kString) {
        return Status::InvalidArgument("cannot negate a string");
      }
      return t;
    }
    case sql::Expr::Kind::kNot:
    case sql::Expr::Kind::kIsNull:
      return ColumnType::kInt32;
    case sql::Expr::Kind::kAgg: {
      switch (e.agg) {
        case sql::AggFn::kCount:
        case sql::AggFn::kCountStar:
          return ColumnType::kInt64;
        case sql::AggFn::kAvg:
          return ColumnType::kDouble;
        case sql::AggFn::kSum: {
          REWIND_ASSIGN_OR_RETURN(ColumnType t, InferType(*e.lhs, input_types));
          if (t == ColumnType::kString) {
            return Status::InvalidArgument("SUM over a string column");
          }
          if (t == ColumnType::kNull) return ColumnType::kNull;
          return t == ColumnType::kDouble ? ColumnType::kDouble
                                          : ColumnType::kInt64;
        }
        case sql::AggFn::kMin:
        case sql::AggFn::kMax:
          return InferType(*e.lhs, input_types);
      }
      return Status::Corruption("internal: bad aggregate");
    }
    case sql::Expr::Kind::kBinary:
      break;
  }
  REWIND_ASSIGN_OR_RETURN(ColumnType lt, InferType(*e.lhs, input_types));
  REWIND_ASSIGN_OR_RETURN(ColumnType rt, InferType(*e.rhs, input_types));
  switch (e.op) {
    case sql::BinOp::kAnd:
    case sql::BinOp::kOr:
    case sql::BinOp::kEq:
    case sql::BinOp::kNe:
    case sql::BinOp::kLt:
    case sql::BinOp::kLe:
    case sql::BinOp::kGt:
    case sql::BinOp::kGe: {
      bool ls = lt == ColumnType::kString, rs = rt == ColumnType::kString;
      bool lc = lt == ColumnType::kNull, rc = rt == ColumnType::kNull;
      if ((ls && !rs && !rc) || (rs && !ls && !lc)) {
        return Status::InvalidArgument("cannot compare a string with a number");
      }
      return ColumnType::kInt32;
    }
    default: {
      if (lt == ColumnType::kString || rt == ColumnType::kString) {
        return Status::InvalidArgument(std::string("cannot apply ") +
                                       sql::BinOpName(e.op) + " to a string");
      }
      if (lt == ColumnType::kNull) return rt;
      if (rt == ColumnType::kNull) return lt;
      if (lt == ColumnType::kDouble || rt == ColumnType::kDouble) {
        return ColumnType::kDouble;
      }
      // int op int widens to int64 (matches the evaluator).
      return ColumnType::kInt64;
    }
  }
}

void EncodeDatum(const Value& v, std::string* dst) {
  dst->push_back(static_cast<char>(v.type()));
  if (!v.is_null()) EncodeKeyValue(v, dst);
}

bool ContainsAggregate(const sql::Expr& e) {
  if (e.kind == sql::Expr::Kind::kAgg) return true;
  if (e.lhs != nullptr && ContainsAggregate(*e.lhs)) return true;
  if (e.rhs != nullptr && ContainsAggregate(*e.rhs)) return true;
  return false;
}

}  // namespace exec
}  // namespace rewinddb
