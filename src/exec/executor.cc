#include "exec/executor.h"

#include <algorithm>

namespace rewinddb {
namespace exec {

namespace {

/// Rows fetched per TableView::Scan call before yielding to the pull
/// loop: bounds scan memory without paying a re-seek per row.
constexpr size_t kScanBatchRows = 1024;

std::string RowText(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); i++) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

std::string PredText(const sql::ExprPtr& e) {
  return e == nullptr ? std::string() : " filter=" + e->Render();
}

}  // namespace

// ----------------------------- SeqScanExec ----------------------------

SeqScanExec::SeqScanExec(std::unique_ptr<TableView> table, std::string display,
                         std::optional<Row> lower, std::optional<Row> upper,
                         sql::ExprPtr residual)
    : table_(std::move(table)), display_(std::move(display)),
      lower_(std::move(lower)), upper_(std::move(upper)),
      residual_(std::move(residual)) {
  num_keys_ = table_->schema().num_key_columns();
}

Status SeqScanExec::Open() {
  batch_.clear();
  pos_ = 0;
  resume_.reset();
  exhausted_ = false;
  return Status::OK();
}

Status SeqScanExec::FillBatch() {
  batch_.clear();
  pos_ = 0;
  const std::optional<Row>& lo = resume_ ? resume_ : lower_;
  Status eval_error;
  bool first = true;
  Status s = table_->Scan(lo, upper_, [&](const Row& row) {
    // The resume bound is inclusive; skip the row we already delivered.
    if (first && resume_) {
      first = false;
      bool same = row.size() >= num_keys_;
      for (size_t i = 0; same && i < num_keys_; i++) {
        same = CompareForSort(row[i], (*resume_)[i]) == 0;
      }
      if (same) return true;
    }
    first = false;
    if (residual_ != nullptr) {
      Result<Tri> keep = EvalPredicate(*residual_, row);
      if (!keep.ok()) {
        eval_error = keep.status();
        return false;
      }
      if (*keep != Tri::kTrue) return true;
    }
    batch_.push_back(row);
    return batch_.size() < kScanBatchRows;
  });
  if (!eval_error.ok()) return eval_error;
  if (!s.ok()) return s;
  if (batch_.size() < kScanBatchRows) {
    exhausted_ = true;  // the scan ran off the end of the range
  } else {
    Row key(batch_.back().begin(), batch_.back().begin() + num_keys_);
    resume_ = std::move(key);
  }
  return Status::OK();
}

Result<bool> SeqScanExec::Next(Row* out) {
  while (pos_ >= batch_.size()) {
    if (exhausted_) return false;
    REWIND_RETURN_IF_ERROR(FillBatch());
    if (batch_.empty() && exhausted_) return false;
  }
  *out = batch_[pos_++];
  return true;
}

std::string SeqScanExec::Describe() const {
  std::string out = "SeqScan " + display_;
  if (lower_ || upper_) {
    out += " bounds=[";
    out += lower_ ? RowText(*lower_) : "-inf";
    out += ", ";
    out += upper_ ? RowText(*upper_) : "+inf";
    out += ")";
  }
  out += PredText(residual_);
  return out;
}

// ---------------------------- IndexScanExec ---------------------------

IndexScanExec::IndexScanExec(std::unique_ptr<TableView> table,
                             std::string display, std::string index_name,
                             Row prefix, sql::ExprPtr residual)
    : table_(std::move(table)), display_(std::move(display)),
      index_name_(std::move(index_name)), prefix_(std::move(prefix)),
      residual_(std::move(residual)) {}

Status IndexScanExec::Open() {
  rows_.clear();
  pos_ = 0;
  Status eval_error;
  Status s = table_->IndexScan(index_name_, prefix_, [&](const Row& row) {
    if (residual_ != nullptr) {
      Result<Tri> keep = EvalPredicate(*residual_, row);
      if (!keep.ok()) {
        eval_error = keep.status();
        return false;
      }
      if (*keep != Tri::kTrue) return true;
    }
    rows_.push_back(row);
    return true;
  });
  if (!eval_error.ok()) return eval_error;
  return s;
}

Result<bool> IndexScanExec::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

std::string IndexScanExec::Describe() const {
  return "IndexScan " + display_ + " index=" + index_name_ +
         " prefix=" + RowText(prefix_) + PredText(residual_);
}

// ------------------------------ FilterExec ----------------------------

Result<bool> FilterExec::Next(Row* out) {
  while (true) {
    REWIND_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    REWIND_ASSIGN_OR_RETURN(Tri keep, EvalPredicate(*pred_, *out));
    if (keep == Tri::kTrue) return true;
  }
}

std::string FilterExec::Describe() const {
  return "Filter " + pred_->Render();
}

// ----------------------------- ProjectExec ----------------------------

Result<bool> ProjectExec::Next(Row* out) {
  Row in;
  REWIND_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const sql::ExprPtr& e : exprs_) {
    REWIND_ASSIGN_OR_RETURN(Value v, Eval(*e, in));
    out->push_back(std::move(v));
  }
  return true;
}

std::string ProjectExec::Describe() const {
  std::string out = display_ + " [";
  for (size_t i = 0; i < exprs_.size(); i++) {
    if (i > 0) out += ", ";
    out += exprs_[i]->Render();
  }
  return out + "]";
}

// ------------------------------ PrefixExec ----------------------------

Result<bool> PrefixExec::Next(Row* out) {
  REWIND_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  out->resize(keep_);
  return true;
}

std::string PrefixExec::Describe() const {
  return "StripSortKeys keep=" + std::to_string(keep_);
}

// ------------------------- NestedLoopJoinExec -------------------------

Status NestedLoopJoinExec::Open() {
  REWIND_RETURN_IF_ERROR(left_->Open());
  REWIND_RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  have_left_ = false;
  right_pos_ = 0;
  Row row;
  while (true) {
    REWIND_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    right_rows_.push_back(row);
  }
  return Status::OK();
}

Result<bool> NestedLoopJoinExec::Next(Row* out) {
  while (true) {
    if (!have_left_) {
      REWIND_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& r = right_rows_[right_pos_++];
      *out = left_row_;
      out->insert(out->end(), r.begin(), r.end());
      if (pred_ == nullptr) return true;
      REWIND_ASSIGN_OR_RETURN(Tri keep, EvalPredicate(*pred_, *out));
      if (keep == Tri::kTrue) return true;
    }
    have_left_ = false;
  }
}

std::string NestedLoopJoinExec::Describe() const {
  return std::string("NestedLoopJoin") +
         (pred_ == nullptr ? " on=true" : " on=" + pred_->Render());
}

// ----------------------------- HashJoinExec ---------------------------

Result<std::optional<std::string>> HashJoinExec::KeyOf(const Row& row,
                                                       bool left_side) {
  std::string key;
  for (const Key& k : keys_) {
    const sql::ExprPtr& e = left_side ? k.left : k.right;
    REWIND_ASSIGN_OR_RETURN(Value v, Eval(*e, row));
    if (v.is_null()) return std::optional<std::string>();
    REWIND_ASSIGN_OR_RETURN(Value c, CoerceValue(v, k.type));
    EncodeDatum(c, &key);
  }
  return std::optional<std::string>(std::move(key));
}

Status HashJoinExec::Open() {
  REWIND_RETURN_IF_ERROR(left_->Open());
  REWIND_RETURN_IF_ERROR(right_->Open());
  build_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
  Row row;
  while (true) {
    REWIND_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    REWIND_ASSIGN_OR_RETURN(std::optional<std::string> key, KeyOf(row, false));
    if (!key) continue;  // NULL join key: can never match
    build_[*key].push_back(row);
  }
  return Status::OK();
}

Result<bool> HashJoinExec::Next(Row* out) {
  while (true) {
    while (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Row& r = (*matches_)[match_pos_++];
      *out = left_row_;
      out->insert(out->end(), r.begin(), r.end());
      if (residual_ == nullptr) return true;
      REWIND_ASSIGN_OR_RETURN(Tri keep, EvalPredicate(*residual_, *out));
      if (keep == Tri::kTrue) return true;
    }
    matches_ = nullptr;
    REWIND_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
    if (!more) return false;
    REWIND_ASSIGN_OR_RETURN(std::optional<std::string> key,
                            KeyOf(left_row_, true));
    if (!key) continue;
    auto it = build_.find(*key);
    if (it == build_.end()) continue;
    matches_ = &it->second;
    match_pos_ = 0;
  }
}

std::string HashJoinExec::Describe() const {
  std::string out = "HashJoin keys=[";
  for (size_t i = 0; i < keys_.size(); i++) {
    if (i > 0) out += ", ";
    out += keys_[i].left->Render() + " = " + keys_[i].right->Render();
  }
  out += "]";
  if (residual_ != nullptr) out += " residual=" + residual_->Render();
  return out;
}

// ------------------------------ HashAggExec ---------------------------

Status HashAggExec::Consume(const Row& row) {
  std::string key;
  Row group_values;
  group_values.reserve(group_exprs_.size());
  for (const sql::ExprPtr& e : group_exprs_) {
    REWIND_ASSIGN_OR_RETURN(Value v, Eval(*e, row));
    EncodeDatum(v, &key);
    group_values.push_back(std::move(v));
  }
  auto [it, inserted] = groups_.try_emplace(std::move(key));
  Group& g = it->second;
  if (inserted) {
    g.values = std::move(group_values);
    g.states.resize(aggs_.size());
  }
  for (size_t i = 0; i < aggs_.size(); i++) {
    const AggSpec& spec = aggs_[i];
    AggState& st = g.states[i];
    if (spec.fn == sql::AggFn::kCountStar) {
      st.count++;
      continue;
    }
    REWIND_ASSIGN_OR_RETURN(Value v, Eval(*spec.arg, row));
    if (v.is_null()) continue;  // aggregates ignore NULL inputs
    if (spec.distinct) {
      std::string datum;
      EncodeDatum(v, &datum);
      if (!st.seen.insert(std::move(datum)).second) continue;
    }
    st.count++;
    switch (spec.fn) {
      case sql::AggFn::kCount:
        break;
      case sql::AggFn::kSum:
      case sql::AggFn::kAvg:
        switch (v.type()) {
          case ColumnType::kInt32: st.isum += v.AsInt32(); break;
          case ColumnType::kInt64: st.isum += v.AsInt64(); break;
          case ColumnType::kDouble: st.dsum += v.AsDouble(); break;
          default:
            return Status::InvalidArgument(
                std::string(sql::AggFnName(spec.fn)) + " over a non-numeric");
        }
        break;
      case sql::AggFn::kMin:
      case sql::AggFn::kMax: {
        if (!st.has_value) {
          st.extreme = v;
          st.has_value = true;
          break;
        }
        REWIND_ASSIGN_OR_RETURN(int c, CompareValues(v, st.extreme));
        if (spec.fn == sql::AggFn::kMin ? c < 0 : c > 0) st.extreme = v;
        break;
      }
      case sql::AggFn::kCountStar:
        break;
    }
    st.has_value = true;
  }
  return Status::OK();
}

Value HashAggExec::Finalize(const AggSpec& spec, const AggState& st) const {
  switch (spec.fn) {
    case sql::AggFn::kCount:
    case sql::AggFn::kCountStar:
      return Value(st.count);
    case sql::AggFn::kSum:
      if (!st.has_value) return Value::Null();
      if (spec.result_type == ColumnType::kDouble) return Value(st.dsum);
      return Value(st.isum);
    case sql::AggFn::kAvg:
      if (st.count == 0) return Value::Null();
      return Value((st.dsum + static_cast<double>(st.isum)) /
                   static_cast<double>(st.count));
    case sql::AggFn::kMin:
    case sql::AggFn::kMax:
      return st.has_value ? st.extreme : Value::Null();
  }
  return Value::Null();
}

Status HashAggExec::Open() {
  REWIND_RETURN_IF_ERROR(child_->Open());
  groups_.clear();
  Row row;
  while (true) {
    REWIND_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    REWIND_RETURN_IF_ERROR(Consume(row));
  }
  // Global aggregation yields its one row even over empty input.
  if (groups_.empty() && group_exprs_.empty()) {
    Group& g = groups_[std::string()];
    g.states.resize(aggs_.size());
  }
  it_ = groups_.begin();
  opened_ = true;
  return Status::OK();
}

Result<bool> HashAggExec::Next(Row* out) {
  if (!opened_ || it_ == groups_.end()) return false;
  const Group& g = it_->second;
  *out = g.values;
  out->reserve(g.values.size() + aggs_.size());
  for (size_t i = 0; i < aggs_.size(); i++) {
    out->push_back(Finalize(aggs_[i], g.states[i]));
  }
  ++it_;
  return true;
}

std::string HashAggExec::Describe() const {
  std::string out = aggs_.empty() ? "Distinct" : "HashAgg";
  out += " group=[";
  for (size_t i = 0; i < group_exprs_.size(); i++) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->Render();
  }
  out += "]";
  if (!aggs_.empty()) {
    out += " aggs=[";
    for (size_t i = 0; i < aggs_.size(); i++) {
      if (i > 0) out += ", ";
      if (aggs_[i].fn == sql::AggFn::kCountStar) {
        out += "COUNT(*)";
      } else {
        out += std::string(sql::AggFnName(aggs_[i].fn)) + "(" +
               (aggs_[i].distinct ? "DISTINCT " : "") +
               aggs_[i].arg->Render() + ")";
      }
    }
    out += "]";
  }
  return out;
}

// ------------------------------- SortExec -----------------------------

Status SortExec::Open() {
  REWIND_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  pos_ = 0;
  Row row;
  while (true) {
    REWIND_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    rows_.push_back(std::move(row));
    row.clear();
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
    for (const SortKey& k : keys_) {
      const Value& av = a[k.slot];
      const Value& bv = b[k.slot];
      // ORDER BY puts NULLs last ascending, first descending.
      bool an = av.is_null(), bn = bv.is_null();
      if (an != bn) return k.desc ? an : bn;
      int c = CompareForSort(av, bv);
      if (c != 0) return k.desc ? c > 0 : c < 0;
    }
    return false;
  });
  return Status::OK();
}

Result<bool> SortExec::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

std::string SortExec::Describe() const {
  std::string out = "Sort keys=[";
  for (size_t i = 0; i < keys_.size(); i++) {
    if (i > 0) out += ", ";
    out += "#" + std::to_string(keys_[i].slot) +
           (keys_[i].desc ? " DESC" : " ASC");
  }
  return out + "]";
}

// ------------------------------ LimitExec -----------------------------

Result<bool> LimitExec::Next(Row* out) {
  if (emitted_ >= limit_) return false;
  REWIND_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  emitted_++;
  return true;
}

std::string LimitExec::Describe() const {
  return "Limit " + std::to_string(limit_);
}

}  // namespace exec
}  // namespace rewinddb
