// Rule-based SELECT planner: binds a parsed sql::SelectStmt against a
// ReadView's catalog and builds an executor tree.
//
// The plan shape is fixed and predictable (no cost model):
//
//   scans -> left-deep joins (FROM order) -> aggregate -> HAVING ->
//   project -> DISTINCT -> sort -> limit
//
// with these rules:
//
//   * WHERE and ON conjuncts sink to the lowest level that can
//     evaluate them: single-table conjuncts into that table's scan
//     (inside the TableView::Scan callback), two-sided conjuncts into
//     the join that first sees both sides.
//   * Scans derive primary-key bounds from equality/range conjuncts on
//     the key prefix -- optimization only; the complete pushed-down
//     predicate always stays on the scan, so a missed or wrong bound
//     can only cost time, never correctness.
//   * A secondary index is chosen when equality conjuncts cover a
//     longer prefix of its key columns than they cover of the primary
//     key (CREATE INDEX makes planner decisions, not just storage).
//   * Joins with at least one equi-conjunct become hash joins (build
//     right, probe left); the rest nested loops.
//
// Because every table access goes through the ReadView, a plan built
// against a live view and one built against an AS OF view of the same
// schema are the same tree -- time travel is a property of the view,
// not the plan.
#ifndef REWINDDB_EXEC_PLANNER_H_
#define REWINDDB_EXEC_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "api/read_view.h"
#include "exec/executor.h"
#include "sql/select_ast.h"

namespace rewinddb {
namespace exec {

/// A bound, executable query: the executor tree plus result metadata.
struct PreparedQuery {
  std::unique_ptr<Executor> root;
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;

  /// The plan tree as indented lines (EXPLAIN's rowset).
  std::vector<std::string> ExplainLines() const;
};

/// Bind and plan `stmt` over `view` (live, AS OF, or named snapshot --
/// the planner cannot tell and must not care).
Result<PreparedQuery> PlanSelect(ReadView* view, const sql::SelectStmt& stmt);

/// The fully-evaluated result of one SELECT.
struct SelectOutput {
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;
  std::vector<Row> rows;
};

/// Plan and run to completion.
Result<SelectOutput> RunSelect(ReadView* view, const sql::SelectStmt& stmt);

}  // namespace exec
}  // namespace rewinddb

#endif  // REWINDDB_EXEC_PLANNER_H_
