// Typed expression evaluation over executor rows: the runtime half of
// the SQL expression surface (src/sql/select_ast.h is the syntax half).
//
// Semantics are SQL's three-valued logic:
//
//   * any comparison or arithmetic with a NULL operand yields NULL
//     (except IS [NOT] NULL, which is the one NULL-proof predicate);
//   * AND/OR are Kleene: NULL AND FALSE = FALSE, NULL OR TRUE = TRUE;
//   * WHERE/HAVING/ON keep a row only when the predicate is TRUE --
//     NULL rejects, same as FALSE.
//
// Numerics promote int32 -> int64 -> double for comparison and
// arithmetic; strings compare only with strings. Type errors (string +
// int) are Status errors, never crashes -- the fuzz suite leans on
// that.
#ifndef REWINDDB_EXEC_EXPR_H_
#define REWINDDB_EXEC_EXPR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "sql/select_ast.h"

namespace rewinddb {
namespace exec {

/// Kleene truth value: what a predicate evaluates to.
enum class Tri : uint8_t { kFalse, kTrue, kNull };

/// Total order over non-NULL values with numeric promotion: -1/0/+1.
/// Comparing a string with a numeric is an InvalidArgument error.
Result<int> CompareValues(const Value& a, const Value& b);

/// Like CompareValues but total over NULLs too (NULL sorts before
/// everything) and never fails: mismatched types order by type tag.
/// For ORDER BY comparators, which must not throw mid-sort.
int CompareForSort(const Value& a, const Value& b);

/// Lossless conversion of `v` to `type` (int32 -> int64, int -> double,
/// identity). Fails on narrowing out-of-range, double -> int, and
/// string <-> numeric. NULL coerces to anything (stays NULL).
Result<Value> CoerceValue(const Value& v, ColumnType type);

/// Evaluate a bound expression (column slots resolved) over `row`.
/// Comparisons and logic yield int32 0/1 or NULL.
Result<Value> Eval(const sql::Expr& e, const Row& row);

/// Evaluate `e` as a predicate: NULL result -> Tri::kNull. A non-zero
/// numeric is TRUE; a string result is an error.
Result<Tri> EvalPredicate(const sql::Expr& e, const Row& row);

/// Static result type of a bound expression, given the types of the
/// input row's slots. ColumnType::kNull means "statically always
/// NULL" (e.g. SELECT NULL).
Result<ColumnType> InferType(const sql::Expr& e,
                             const std::vector<ColumnType>& input_types);

/// Order-preserving, NULL-aware, type-tagged encoding of a value;
/// appends to `dst`. Used for hash-join and group-by keys, where NULL
/// must be representable and distinct values must encode distinctly.
void EncodeDatum(const Value& v, std::string* dst);

/// True if the tree contains an aggregate call.
bool ContainsAggregate(const sql::Expr& e);

}  // namespace exec
}  // namespace rewinddb

#endif  // REWINDDB_EXEC_EXPR_H_
