#include "catalog/schema.h"

#include "common/coding.h"

namespace rewinddb {

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<ColumnType> Schema::types() const {
  std::vector<ColumnType> t;
  t.reserve(columns_.size());
  for (const Column& c : columns_) t.push_back(c.type);
  return t;
}

std::vector<ColumnType> Schema::key_types() const {
  std::vector<ColumnType> t;
  t.reserve(num_key_columns_);
  for (size_t i = 0; i < num_key_columns_; i++) t.push_back(columns_[i].type);
  return t;
}

Status Schema::CheckRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); i++) {
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument("column '" + columns_[i].name +
                                     "' type mismatch");
    }
  }
  return Status::OK();
}

std::string Schema::KeyOf(const Row& row) const {
  return EncodeKey(row, num_key_columns_);
}

void Schema::EncodeTo(std::string* dst) const {
  PutFixed16(dst, static_cast<uint16_t>(columns_.size()));
  PutFixed16(dst, static_cast<uint16_t>(num_key_columns_));
  for (const Column& c : columns_) {
    PutLengthPrefixed(dst, c.name);
    dst->push_back(static_cast<char>(c.type));
  }
}

Result<Schema> Schema::Decode(Slice data) {
  Decoder dec(data);
  uint16_t n, k;
  if (!dec.GetFixed16(&n) || !dec.GetFixed16(&k)) {
    return Status::Corruption("schema: short header");
  }
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint16_t i = 0; i < n; i++) {
    Slice name, type_byte;
    if (!dec.GetLengthPrefixed(&name) || !dec.GetBytes(1, &type_byte)) {
      return Status::Corruption("schema: short column");
    }
    cols.push_back({name.ToString(), static_cast<ColumnType>(type_byte[0])});
  }
  if (k > n) return Status::Corruption("schema: key wider than row");
  return Schema(std::move(cols), k);
}

bool Schema::operator==(const Schema& o) const {
  if (num_key_columns_ != o.num_key_columns_ ||
      columns_.size() != o.columns_.size()) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name != o.columns_[i].name ||
        columns_[i].type != o.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace rewinddb
