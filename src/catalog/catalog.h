// Metadata catalog: system tables stored relationally in ordinary
// B-trees at fixed roots.
//
// This mirrors the paper's design point (section 3): "Logical metadata
// ... is stored in relational format and updates to it are logged
// similar to updates to data", so an as-of snapshot rewinds the catalog
// pages with the very same PreparePageAsOf mechanism as data pages --
// which is what makes a dropped table reappear, schema and all, when
// queried as of a time before the DROP.
#ifndef REWINDDB_CATALOG_CATALOG_H_
#define REWINDDB_CATALOG_CATALOG_H_

#include <string>
#include <vector>

#include "btree/btree.h"
#include "catalog/schema.h"
#include "common/result.h"

namespace rewinddb {

/// Descriptor of a user table.
struct TableInfo {
  uint32_t table_id = 0;
  std::string name;
  TreeId root = kInvalidPageId;  // clustered B-tree
  Schema schema;
};

/// Descriptor of a secondary index.
struct IndexInfo {
  uint32_t index_id = 0;
  std::string name;
  uint32_t table_id = 0;
  TreeId root = kInvalidPageId;
  /// Positions (into the table's column list) of the indexed columns.
  std::vector<uint16_t> key_columns;
};

/// Reads and writes the system tables. A Catalog is bound to a
/// BufferManager -- the primary's, or an as-of snapshot's, in which case
/// every lookup transparently sees metadata as of the SplitLSN.
class Catalog {
 public:
  static constexpr PageId kSysTablesRoot = 2;
  static constexpr PageId kSysIndexesRoot = 3;

  explicit Catalog(BufferManager* buffers) : buffers_(buffers) {}

  /// The B-tree key under which `name` is stored in either system
  /// table. Exposed so DDL can take row locks on catalog entries: the
  /// snapshot undo protocol requires catalog rows to obey the same
  /// strict 2PL as user rows (a dropped name must stay locked until the
  /// dropping transaction commits, or a concurrent CREATE of the same
  /// name breaks the boundary-state invariant).
  static std::string NameKey(const std::string& name);

  /// Format the system-table roots (database bootstrap; the allocator
  /// must hand out exactly pages 2 and 3).
  static Status Bootstrap(const TreeWriteContext& ctx, Transaction* txn);

  Result<TableInfo> GetTable(const std::string& name) const;
  Result<std::vector<TableInfo>> ListTables() const;
  Status PutTable(const TreeWriteContext& ctx, Transaction* txn,
                  const TableInfo& info);
  Status EraseTable(const TreeWriteContext& ctx, Transaction* txn,
                    const std::string& name);

  Result<IndexInfo> GetIndex(const std::string& name) const;
  /// All indexes declared on `table_id`.
  Result<std::vector<IndexInfo>> ListIndexesOf(uint32_t table_id) const;
  Status PutIndex(const TreeWriteContext& ctx, Transaction* txn,
                  const IndexInfo& info);
  Status EraseIndex(const TreeWriteContext& ctx, Transaction* txn,
                    const std::string& name);

  /// Largest table/index id in use (id allocation after recovery).
  Result<uint32_t> MaxObjectId() const;

 private:
  BufferManager* buffers_;
};

/// Catalog row codecs (exposed for tests).
std::string EncodeTableInfo(const TableInfo& info);
Result<TableInfo> DecodeTableInfo(const std::string& name, Slice payload);
std::string EncodeIndexInfo(const IndexInfo& info);
Result<IndexInfo> DecodeIndexInfo(const std::string& name, Slice payload);

}  // namespace rewinddb

#endif  // REWINDDB_CATALOG_CATALOG_H_
