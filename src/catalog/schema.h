// Table schemas: typed columns with a key prefix.
#ifndef REWINDDB_CATALOG_SCHEMA_H_
#define REWINDDB_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace rewinddb {

struct Column {
  std::string name;
  ColumnType type;
};

/// Column list plus the length of the primary-key prefix. Rows are
/// stored in the table's clustered B-tree keyed by the memcomparable
/// encoding of the first `num_key_columns` values.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, size_t num_key_columns)
      : columns_(std::move(columns)), num_key_columns_(num_key_columns) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_key_columns() const { return num_key_columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of the named column; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Column types in declaration order.
  std::vector<ColumnType> types() const;
  /// Types of the key prefix.
  std::vector<ColumnType> key_types() const;

  /// Check that `row` matches the schema (arity and types).
  Status CheckRow(const Row& row) const;

  /// Encode the key of `row` (first num_key_columns values).
  std::string KeyOf(const Row& row) const;

  void EncodeTo(std::string* dst) const;
  static Result<Schema> Decode(Slice data);

  bool operator==(const Schema& o) const;

 private:
  std::vector<Column> columns_;
  size_t num_key_columns_ = 0;
};

}  // namespace rewinddb

#endif  // REWINDDB_CATALOG_SCHEMA_H_
