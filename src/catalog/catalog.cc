#include "catalog/catalog.h"

#include "common/coding.h"

namespace rewinddb {

std::string EncodeTableInfo(const TableInfo& info) {
  std::string v;
  PutFixed32(&v, info.table_id);
  PutFixed32(&v, info.root);
  info.schema.EncodeTo(&v);
  return v;
}

Result<TableInfo> DecodeTableInfo(const std::string& name, Slice payload) {
  TableInfo info;
  info.name = name;
  Decoder dec(payload);
  if (!dec.GetFixed32(&info.table_id)) {
    return Status::Corruption("table row: id");
  }
  uint32_t root;
  if (!dec.GetFixed32(&root)) return Status::Corruption("table row: root");
  info.root = root;
  Slice rest;
  if (!dec.GetBytes(dec.remaining(), &rest)) {
    return Status::Corruption("table row: schema");
  }
  REWIND_ASSIGN_OR_RETURN(info.schema, Schema::Decode(rest));
  return info;
}

std::string EncodeIndexInfo(const IndexInfo& info) {
  std::string v;
  PutFixed32(&v, info.index_id);
  PutFixed32(&v, info.table_id);
  PutFixed32(&v, info.root);
  PutFixed16(&v, static_cast<uint16_t>(info.key_columns.size()));
  for (uint16_t c : info.key_columns) PutFixed16(&v, c);
  return v;
}

Result<IndexInfo> DecodeIndexInfo(const std::string& name, Slice payload) {
  IndexInfo info;
  info.name = name;
  Decoder dec(payload);
  uint32_t root;
  uint16_t n;
  if (!dec.GetFixed32(&info.index_id) || !dec.GetFixed32(&info.table_id) ||
      !dec.GetFixed32(&root) || !dec.GetFixed16(&n)) {
    return Status::Corruption("index row: header");
  }
  info.root = root;
  info.key_columns.resize(n);
  for (uint16_t i = 0; i < n; i++) {
    if (!dec.GetFixed16(&info.key_columns[i])) {
      return Status::Corruption("index row: column");
    }
  }
  return info;
}

Status Catalog::Bootstrap(const TreeWriteContext& ctx, Transaction* txn) {
  REWIND_ASSIGN_OR_RETURN(
      PageId t,
      ctx.allocator->AllocatePage(txn, PageType::kBtreeLeaf, 0,
                                  kSysTablesRoot));
  if (t != kSysTablesRoot) {
    return Status::Corruption("bootstrap: sys_tables root is page " +
                              std::to_string(t));
  }
  REWIND_ASSIGN_OR_RETURN(
      PageId i,
      ctx.allocator->AllocatePage(txn, PageType::kBtreeLeaf, 0,
                                  kSysIndexesRoot));
  if (i != kSysIndexesRoot) {
    return Status::Corruption("bootstrap: sys_indexes root is page " +
                              std::to_string(i));
  }
  return Status::OK();
}

std::string Catalog::NameKey(const std::string& name) {
  return EncodeKey({name}, 1);
}

Result<TableInfo> Catalog::GetTable(const std::string& name) const {
  BTree tree(kSysTablesRoot);
  auto v = tree.Get(buffers_, NameKey(name));
  if (!v.ok()) {
    if (v.status().IsNotFound()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    return v.status();
  }
  return DecodeTableInfo(name, *v);
}

Result<std::vector<TableInfo>> Catalog::ListTables() const {
  BTree tree(kSysTablesRoot);
  std::vector<TableInfo> out;
  Status decode_status;
  REWIND_ASSIGN_OR_RETURN(
      ScanOutcome so,
      tree.Scan(buffers_, Slice(), Slice(), [&](Slice key, Slice value) {
        auto name = DecodeKey({ColumnType::kString}, key);
        if (!name.ok()) {
          decode_status = name.status();
          return ScanAction::kStop;
        }
        auto info = DecodeTableInfo((*name)[0].AsString(), value);
        if (!info.ok()) {
          decode_status = info.status();
          return ScanAction::kStop;
        }
        out.push_back(std::move(*info));
        return ScanAction::kContinue;
      }));
  (void)so;
  REWIND_RETURN_IF_ERROR(decode_status);
  return out;
}

Status Catalog::PutTable(const TreeWriteContext& ctx, Transaction* txn,
                         const TableInfo& info) {
  BTree tree(kSysTablesRoot);
  return tree.Insert(ctx, txn, NameKey(info.name), EncodeTableInfo(info));
}

Status Catalog::EraseTable(const TreeWriteContext& ctx, Transaction* txn,
                           const std::string& name) {
  BTree tree(kSysTablesRoot);
  return tree.Delete(ctx, txn, NameKey(name));
}

Result<IndexInfo> Catalog::GetIndex(const std::string& name) const {
  BTree tree(kSysIndexesRoot);
  auto v = tree.Get(buffers_, NameKey(name));
  if (!v.ok()) {
    if (v.status().IsNotFound()) {
      return Status::NotFound("index '" + name + "' does not exist");
    }
    return v.status();
  }
  return DecodeIndexInfo(name, *v);
}

Result<std::vector<IndexInfo>> Catalog::ListIndexesOf(uint32_t table_id) const {
  BTree tree(kSysIndexesRoot);
  std::vector<IndexInfo> out;
  Status decode_status;
  REWIND_ASSIGN_OR_RETURN(
      ScanOutcome so,
      tree.Scan(buffers_, Slice(), Slice(), [&](Slice key, Slice value) {
        auto name = DecodeKey({ColumnType::kString}, key);
        if (!name.ok()) {
          decode_status = name.status();
          return ScanAction::kStop;
        }
        auto info = DecodeIndexInfo((*name)[0].AsString(), value);
        if (!info.ok()) {
          decode_status = info.status();
          return ScanAction::kStop;
        }
        if (info->table_id == table_id) out.push_back(std::move(*info));
        return ScanAction::kContinue;
      }));
  (void)so;
  REWIND_RETURN_IF_ERROR(decode_status);
  return out;
}

Status Catalog::PutIndex(const TreeWriteContext& ctx, Transaction* txn,
                         const IndexInfo& info) {
  BTree tree(kSysIndexesRoot);
  return tree.Insert(ctx, txn, NameKey(info.name), EncodeIndexInfo(info));
}

Status Catalog::EraseIndex(const TreeWriteContext& ctx, Transaction* txn,
                           const std::string& name) {
  BTree tree(kSysIndexesRoot);
  return tree.Delete(ctx, txn, NameKey(name));
}

Result<uint32_t> Catalog::MaxObjectId() const {
  uint32_t max_id = 0;
  REWIND_ASSIGN_OR_RETURN(std::vector<TableInfo> tables, ListTables());
  for (const TableInfo& t : tables) {
    if (t.table_id > max_id) max_id = t.table_id;
  }
  BTree tree(kSysIndexesRoot);
  Status decode_status;
  REWIND_ASSIGN_OR_RETURN(
      ScanOutcome so,
      tree.Scan(buffers_, Slice(), Slice(), [&](Slice key, Slice value) {
        auto name = DecodeKey({ColumnType::kString}, key);
        if (!name.ok()) return ScanAction::kStop;
        auto info = DecodeIndexInfo((*name)[0].AsString(), value);
        if (info.ok() && info->index_id > max_id) max_id = info->index_id;
        return ScanAction::kContinue;
      }));
  (void)so;
  return max_id;
}

}  // namespace rewinddb
