// Figure 8: the figure-7 comparison on 10K RPM SAS media.
//
// Paper result (SAS): as-of query 34-300 s (random log reads stall much
// harder on rotating media); restore ~44 min, flat. Same shape as
// figure 7 with everything shifted up.
#include "bench_common.h"

int main() {
  rewinddb::bench::RunAsofVsRestore(
      rewinddb::MediaProfile::Sas(), "fig8",
      "SAS: as-of 34-300 s (growing); restore ~44 min (flat)");
  return 0;
}
