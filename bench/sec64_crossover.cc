// Section 6.4: the crossover between rolling backward (as-of rewind)
// and rolling forward (restore + replay).
//
// Paper: "there is a cross over point where restoring the full database
// will start performing better, especially for cases where a large
// amount of data needs to be accessed". This bench sweeps how much of
// the database the recovery query touches (1..10 districts, then every
// table) and compares measured simulated times, alongside the
// PitrAdvisor's model-based decision.
#include "backup/pitr_advisor.h"
#include "bench_common.h"

int main() {
  using namespace rewinddb;
  using namespace rewinddb::bench;

  HistoryOptions ho;
  ho.data_media = MediaProfile::Sas();
  ho.log_media = MediaProfile::Sas();
  ho.minutes = 30;
  ho.filler_pages = 1500;  // smaller cold bulk: puts the crossover in range
  auto history = BuildHistory("sec64_hist", ho);
  if (!history.ok()) {
    printf("history build failed: %s\n",
           history.status().ToString().c_str());
    return 1;
  }
  History* h = history->get();
  const int kMinutesBack = 25;

  PrintHeader("sec6.4: rewind vs restore crossover (SAS, 25 min back)",
              "restore wins once a large fraction of the data (or heavily "
              "modified data) must be accessed");

  // Restore cost: constant in the amount accessed.
  auto restore = MeasureRestore(h, kMinutesBack, "restored");
  if (!restore.ok()) {
    printf("restore failed: %s\n", restore.status().ToString().c_str());
    return 1;
  }

  printf("%-22s %16s %16s %12s %10s\n", "access fraction",
         "rewind (s)", "restore (s)", "measured", "advisor");
  PitrAdvisor advisor(MediaProfile::Sas(), MediaProfile::Sas());

  WallClock target = MinutesBack(*h, kMinutesBack);
  const int kDistricts = 10;
  for (int k = 1; k <= kDistricts; k += 3) {
    h->db->log()->DropCache();
    WallClock t0 = h->clock->NowMicros();
    auto snap = AsOfSnapshot::Create(h->db.get(),
                                     "x" + std::to_string(k), target);
    if (!snap.ok()) {
      printf("snapshot failed: %s\n", snap.status().ToString().c_str());
      return 1;
    }
    Status u = (*snap)->WaitForUndo();
    if (!u.ok()) return 1;
    uint64_t pages0 = (*snap)->rewinder()->pages_rewound();
    uint64_t undone0 = (*snap)->rewinder()->records_undone();
    auto view = WrapSnapshot(snap->get());
    for (int d = 1; d <= k; d++) {
      auto low = TpccDatabase::StockLevelOn(view.get(), 1, d, 60);
      if (!low.ok()) {
        printf("as-of failed: %s\n", low.status().ToString().c_str());
        return 1;
      }
    }
    // k == kDistricts additionally sweeps every table (the "large
    // amount of data" end of the paper's spectrum).
    if (k >= kDistricts) {
      auto tables = view->ListTables();
      if (tables.ok()) {
        for (const TableInfo& t : *tables) {
          auto st = view->OpenTable(t.name);
          if (st.ok()) {
            auto c = (*st)->Count();
            (void)c;
          }
        }
      }
    }
    WallClock t1 = h->clock->NowMicros();
    double rewind_seconds = static_cast<double>(t1 - t0) / kSecond;

    uint64_t pages = (*snap)->rewinder()->pages_rewound() - pages0;
    uint64_t undone = (*snap)->rewinder()->records_undone() - undone0;
    RecoveryEstimate est;
    est.pages_accessed = pages > 0 ? pages : 1;
    est.mods_per_page =
        static_cast<double>(undone) / static_cast<double>(est.pages_accessed);
    // Both tiers count: restore replays archived history too, and with
    // archiving on the live WAL alone would under-state the log the
    // advisor must reason about.
    const uint64_t retained_log =
        h->db->log()->LiveBytes() + h->db->log()->ArchivedBytes();
    est.db_pages = h->db->data_file()->NumPages();
    est.replay_log_bytes = retained_log;
    est.total_log_bytes = retained_log;
    RecoveryStrategy advice = advisor.Choose(est);

    const char* measured_winner =
        rewind_seconds <= *restore ? "rewind" : "restore";
    char frac[32];
    snprintf(frac, sizeof(frac), "%d/%d districts%s", k, kDistricts,
             k >= kDistricts ? "+all" : "");
    printf("%-22s %16.3f %16.3f %12s %10s\n", frac, rewind_seconds,
           *restore, measured_winner, RecoveryStrategyName(advice));
  }
  printf("\nexpected shape: rewind wins at small fractions; the gap "
         "narrows (and eventually inverts) as more data is accessed\n");
  return 0;
}
