// Section 6.3: impact of concurrent as-of queries on the running TPC-C
// workload.
//
// Paper result: running an as-of query loop (5 minutes back) alongside
// the benchmark reduced throughput from 270k to 180k tpmC (~33%), while
// snapshots were created in ~20 s and the as-of stock-level ran in
// ~30 s on average. This is a real-time experiment: throughput numbers
// are hardware-bound; the reproduction target is the relative drop and
// that concurrent snapshots/queries keep succeeding.
//
// On top of the paper's experiment, the concurrent phase runs twice:
// once with the shared version store disabled (every snapshot repeats
// the per-page chain walks -- the paper's behaviour) and once with it
// enabled (snapshots at nearby times reuse each other's rewinds), so
// the cache-on vs cache-off delta in as-of latency and undo work is
// visible in one run.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.h"

namespace {

using namespace rewinddb;
using namespace rewinddb::bench;

struct AsOfPhase {
  uint64_t snapshots_ok = 0;
  uint64_t queries_ok = 0;
  uint64_t create_micros = 0;
  uint64_t query_micros = 0;
  /// Mount-phase totals across all snapshots of the phase (analysis
  /// scan / lock re-acquisition / background undo), attributing the
  /// create+undo cost per phase.
  uint64_t analysis_micros = 0;
  uint64_t redo_micros = 0;
  uint64_t undo_micros = 0;
  int replay_threads = 1;
  /// Per-cycle split: the first investigator of an incident time pays
  /// the full chain walks; with the store on, the second reuses them.
  uint64_t first_records_undone = 0;
  uint64_t second_records_undone = 0;
  /// Lazy phase only: pages recovered on first access across all
  /// snapshots (the work the eager phases front-load at create time).
  uint64_t pages_on_demand = 0;
  bool lazy = false;
  double tpmc = 0;
  VersionStore::Stats vs;
};

/// Run the fixed TPC-C work probe while an as-of loop investigates
/// incident times 2 seconds back. Each cycle mounts the SAME incident
/// time twice -- the paper's concurrent-as-of-queries scenario is
/// several clients inspecting one point in time, which is exactly what
/// the shared version store exists for.
AsOfPhase RunConcurrentPhase(Database* db, TpccDatabase* tpcc,
                             int new_orders, uint64_t seed,
                             const char* tag,
                             MountMode mode = MountMode::kEager) {
  AsOfPhase out;
  out.lazy = mode == MountMode::kLazy;
  VersionStore::Stats vs0 = db->version_store()->stats();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_ok{0}, queries_ok{0};
  std::atomic<uint64_t> create_micros{0}, query_micros{0};
  std::atomic<uint64_t> analysis_micros{0}, redo_micros{0}, undo_micros{0};
  std::atomic<uint64_t> pages_on_demand{0};
  std::atomic<int> replay_threads{1};
  std::atomic<uint64_t> undone_by_rep[2] = {};
  std::thread asof_loop([&] {
    int n = 0;
    while (!stop.load()) {
      // Pace the loop like the paper's (one create+query cycle at a
      // time, not a tight checkpoint storm).
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (stop.load()) break;
      WallClock target = db->clock()->NowMicros() - 2'000'000;
      for (int rep = 0; rep < 2 && !stop.load(); rep++) {
        auto t0 = std::chrono::steady_clock::now();
        auto snap = AsOfSnapshot::Create(
            db, std::string(tag) + std::to_string(n++), target, mode);
        // A failed investigator aborts the cycle: letting rep 1 run
        // after a failed rep 0 would book a cold full walk into the
        // "second investigator" bucket.
        if (!snap.ok()) break;
        // The lazy investigator queries immediately: the first query
        // pays the on-demand recovery the eager mount front-loads.
        Status u = mode == MountMode::kLazy ? Status::OK()
                                            : (*snap)->WaitForUndo();
        auto t1 = std::chrono::steady_clock::now();
        if (!u.ok()) break;
        snapshots_ok.fetch_add(1);
        create_micros.fetch_add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
        const auto& cs = (*snap)->creation_stats();
        analysis_micros.fetch_add(cs.analysis_micros);
        redo_micros.fetch_add(cs.redo_micros);
        undo_micros.fetch_add(cs.undo_micros);
        replay_threads.store(cs.replay_threads);
        uint64_t undone0 = (*snap)->rewinder()->records_undone();
        auto q0 = std::chrono::steady_clock::now();
        auto view = WrapSnapshot(snap->get());
        auto low = TpccDatabase::StockLevelOn(view.get(), 1, 1, 60);
        auto q1 = std::chrono::steady_clock::now();
        if (!low.ok()) break;
        queries_ok.fetch_add(1);
        query_micros.fetch_add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count()));
        undone_by_rep[rep].fetch_add(
            (*snap)->rewinder()->records_undone() - undone0);
        pages_on_demand.fetch_add((*snap)->pages_recovered_on_demand());
      }
    }
  });
  out.tpmc = RunFixedWork(tpcc, new_orders, seed);
  stop.store(true);
  asof_loop.join();

  out.snapshots_ok = snapshots_ok.load();
  out.queries_ok = queries_ok.load();
  out.create_micros = create_micros.load();
  out.query_micros = query_micros.load();
  out.analysis_micros = analysis_micros.load();
  out.redo_micros = redo_micros.load();
  out.undo_micros = undo_micros.load();
  out.replay_threads = replay_threads.load();
  out.first_records_undone = undone_by_rep[0].load();
  out.second_records_undone = undone_by_rep[1].load();
  out.pages_on_demand = pages_on_demand.load();
  VersionStore::Stats vs1 = db->version_store()->stats();
  out.vs.exact_hits = vs1.exact_hits - vs0.exact_hits;
  out.vs.partial_hits = vs1.partial_hits - vs0.partial_hits;
  out.vs.misses = vs1.misses - vs0.misses;
  out.vs.published = vs1.published - vs0.published;
  out.vs.evictions = vs1.evictions - vs0.evictions;
  return out;
}

void PrintPhase(const char* name, const AsOfPhase& p) {
  printf("%-34s %12.0f tpmC\n",
         (std::string(name) + " throughput").c_str(), p.tpmc);
  printf("%-34s %12llu\n", "  snapshots created",
         static_cast<unsigned long long>(p.snapshots_ok));
  printf("%-34s %12llu\n", "  as-of stock-level queries",
         static_cast<unsigned long long>(p.queries_ok));
  if (p.snapshots_ok > 0) {
    printf("%-34s %12.1f ms\n", "  avg snapshot creation",
           static_cast<double>(p.create_micros) / 1000.0 /
               static_cast<double>(p.snapshots_ok));
  }
  if (p.queries_ok > 0) {
    printf("%-34s %12.1f ms\n", "  avg as-of stock-level",
           static_cast<double>(p.query_micros) / 1000.0 /
               static_cast<double>(p.queries_ok));
    printf("%-34s %12llu first, %llu second\n",
           "  records undone (per investigator)",
           static_cast<unsigned long long>(p.first_records_undone),
           static_cast<unsigned long long>(p.second_records_undone));
  }
  if (p.lazy) {
    printf("%-34s %12llu\n", "  pages recovered on demand",
           static_cast<unsigned long long>(p.pages_on_demand));
  }
  printf("%-34s %12llu exact, %llu partial, %llu published\n",
         "  version store",
         static_cast<unsigned long long>(p.vs.exact_hits),
         static_cast<unsigned long long>(p.vs.partial_hits),
         static_cast<unsigned long long>(p.vs.published));
}

void PrintJson(const char* phase, const AsOfPhase& p) {
  double snaps = p.snapshots_ok > 0
                     ? static_cast<double>(p.snapshots_ok)
                     : 1.0;
  printf("JSON {\"bench\":\"sec63\",\"phase\":\"%s\",\"mount\":\"%s\","
         "\"tpmc\":%.0f,"
         "\"snapshots\":%llu,\"queries\":%llu,\"avg_create_ms\":%.1f,"
         "\"avg_query_ms\":%.1f,\"analysis_ms\":%.1f,\"redo_ms\":%.1f,"
         "\"undo_ms\":%.1f,\"replay_threads\":%d,"
         "\"first_records_undone\":%llu,"
         "\"second_records_undone\":%llu,"
         "\"pages_recovered_on_demand\":%llu,"
         "\"vs_exact_hits\":%llu,\"vs_partial_hits\":%llu,"
         "\"vs_published\":%llu,\"vs_evictions\":%llu}\n",
         phase, p.lazy ? "lazy" : "eager", p.tpmc,
         static_cast<unsigned long long>(p.snapshots_ok),
         static_cast<unsigned long long>(p.queries_ok),
         p.snapshots_ok > 0 ? static_cast<double>(p.create_micros) / 1000.0 /
                                  static_cast<double>(p.snapshots_ok)
                            : 0.0,
         p.queries_ok > 0 ? static_cast<double>(p.query_micros) / 1000.0 /
                                static_cast<double>(p.queries_ok)
                          : 0.0,
         static_cast<double>(p.analysis_micros) / 1000.0 / snaps,
         static_cast<double>(p.redo_micros) / 1000.0 / snaps,
         static_cast<double>(p.undo_micros) / 1000.0 / snaps,
         p.replay_threads,
         static_cast<unsigned long long>(p.first_records_undone),
         static_cast<unsigned long long>(p.second_records_undone),
         static_cast<unsigned long long>(p.pages_on_demand),
         static_cast<unsigned long long>(p.vs.exact_hits),
         static_cast<unsigned long long>(p.vs.partial_hits),
         static_cast<unsigned long long>(p.vs.published),
         static_cast<unsigned long long>(p.vs.evictions));
}

}  // namespace

int main() {
  const std::string dir = BenchDir("sec63");
  DatabaseOptions opts;
  opts.buffer_pool_pages = 8192;
  opts.lock_timeout_micros = 300'000;
  opts.version_store_bytes = 64ull << 20;  // toggled per phase below
  auto db = Database::Create(dir, opts);
  if (!db.ok()) {
    printf("create failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  TpccConfig tc;
  tc.warehouses = 2;
  tc.items = 300;
  auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
  if (!tpcc.ok()) {
    printf("load failed: %s\n", tpcc.status().ToString().c_str());
    return 1;
  }

  PrintHeader("sec6.3: concurrent as-of queries vs TPC-C throughput",
              "270k -> 180k tpmC (~0.67x); snapshot create ~20 s; as-of "
              "stock-level ~30 s");

  // Warm-up so "2 seconds back" exists, then the first baseline probe.
  // A second baseline is measured AFTER the concurrent phases and the
  // two averaged, cancelling the drift from tables growing over time.
  (void)RunFixedWork(tpcc->get(), 500, 7);
  double baseline1 = RunFixedWork(tpcc->get(), 8000, 11);

  // Phase A -- the paper's scenario: no shared state between snapshots,
  // every as-of query repeats the chain walks.
  (*db)->version_store()->SetBudget(0);
  AsOfPhase off = RunConcurrentPhase(db->get(), tpcc->get(), 12000, 13,
                                     "off");

  // Phase B -- shared version store on: concurrent snapshots at nearby
  // times reuse each other's rewind work.
  (*db)->version_store()->SetBudget(64ull << 20);
  AsOfPhase on = RunConcurrentPhase(db->get(), tpcc->get(), 12000, 29,
                                    "on");

  // Phase C -- lazy investigators (store back off, matching phase A):
  // snapshots mount in O(1) and the first query recovers only the
  // pages it touches, so the create-time hit on the foreground
  // workload disappears and the cost moves into the query.
  (*db)->version_store()->SetBudget(0);
  AsOfPhase lazy = RunConcurrentPhase(db->get(), tpcc->get(), 12000, 31,
                                      "lz", MountMode::kLazy);

  double baseline2 = RunFixedWork(tpcc->get(), 8000, 17);
  double baseline_tpmc = (baseline1 + baseline2) / 2;

  printf("%-34s %12.0f tpmC (before: %.0f, after: %.0f)\n",
         "baseline throughput", baseline_tpmc, baseline1, baseline2);
  PrintPhase("store OFF, with as-of loop", off);
  PrintPhase("store ON,  with as-of loop", on);
  PrintPhase("LAZY mounts, with as-of loop", lazy);
  // The phases run in a fixed order against one growing database, so
  // the on-phase works on larger tables and a longer log than the
  // off-phase: the cross-phase tpmC/latency comparison is biased
  // AGAINST the store. The drift-free store metric is the within-phase
  // first-vs-second investigator split above.
  double ratio_off = baseline_tpmc > 0 ? off.tpmc / baseline_tpmc : 0;
  double ratio_on = baseline_tpmc > 0 ? on.tpmc / baseline_tpmc : 0;
  double ratio_lazy = baseline_tpmc > 0 ? lazy.tpmc / baseline_tpmc : 0;
  printf("%-34s %12.2fx   (paper: ~0.67x)\n", "throughput ratio (store off)",
         ratio_off);
  printf("%-34s %12.2fx   (runs second: biased low by db growth)\n",
         "throughput ratio (store on)", ratio_on);
  printf("%-34s %12.2fx   (runs third: biased low by db growth)\n",
         "throughput ratio (lazy mounts)", ratio_lazy);
  PrintJson("store_off", off);
  PrintJson("store_on", on);
  PrintJson("lazy", lazy);
  printf("\nexpected shape: throughput drops but stays within the same "
         "order of magnitude while as-of queries run continuously; with "
         "the version store on, as-of queries undo fewer records per "
         "query (exact/partial hits replace chain walks); lazy mounts "
         "collapse avg_create_ms to ~constant and move the recovery "
         "cost into the first query's on-demand page fetches\n");

  tpcc->reset();
  db->reset();
  std::filesystem::remove_all(dir);
  return 0;
}
