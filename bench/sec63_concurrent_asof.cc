// Section 6.3: impact of concurrent as-of queries on the running TPC-C
// workload.
//
// Paper result: running an as-of query loop (5 minutes back) alongside
// the benchmark reduced throughput from 270k to 180k tpmC (~33%), while
// snapshots were created in ~20 s and the as-of stock-level ran in
// ~30 s on average. This is a real-time experiment: throughput numbers
// are hardware-bound; the reproduction target is the relative drop and
// that concurrent snapshots/queries keep succeeding.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.h"

int main() {
  using namespace rewinddb;
  using namespace rewinddb::bench;

  const std::string dir = BenchDir("sec63");
  DatabaseOptions opts;
  opts.buffer_pool_pages = 8192;
  opts.lock_timeout_micros = 300'000;
  auto db = Database::Create(dir, opts);
  if (!db.ok()) {
    printf("create failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  TpccConfig tc;
  tc.warehouses = 2;
  tc.items = 300;
  auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
  if (!tpcc.ok()) {
    printf("load failed: %s\n", tpcc.status().ToString().c_str());
    return 1;
  }

  PrintHeader("sec6.3: concurrent as-of queries vs TPC-C throughput",
              "270k -> 180k tpmC (~0.67x); snapshot create ~20 s; as-of "
              "stock-level ~30 s");

  // Warm-up so "2 seconds back" exists, then the first baseline probe.
  // A second baseline is measured AFTER the concurrent phase and the
  // two averaged, cancelling the drift from tables growing over time.
  (void)RunFixedWork(tpcc->get(), 500, 7);
  double baseline1 = RunFixedWork(tpcc->get(), 8000, 11);

  // Concurrent run: the workload continues while a loop creates as-of
  // snapshots 2 seconds back and runs the stock-level query on them.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_ok{0}, asof_queries_ok{0};
  std::atomic<uint64_t> create_micros_total{0}, query_micros_total{0};
  std::thread asof_loop([&] {
    int n = 0;
    while (!stop.load()) {
      // Pace the loop like the paper's (one create+query cycle at a
      // time, not a tight checkpoint storm).
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (stop.load()) break;
      WallClock target = (*db)->clock()->NowMicros() - 2'000'000;
      auto t0 = std::chrono::steady_clock::now();
      auto snap = AsOfSnapshot::Create(db->get(),
                                       "conc" + std::to_string(n++), target);
      if (!snap.ok()) continue;
      Status u = (*snap)->WaitForUndo();
      auto t1 = std::chrono::steady_clock::now();
      if (!u.ok()) continue;
      snapshots_ok++;
      create_micros_total += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count());
      auto q0 = std::chrono::steady_clock::now();
      auto view = WrapSnapshot(snap->get());
      auto low = TpccDatabase::StockLevelOn(view.get(), 1, 1, 60);
      auto q1 = std::chrono::steady_clock::now();
      if (low.ok()) {
        asof_queries_ok++;
        query_micros_total += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count());
      }
    }
  });
  double concurrent = RunFixedWork(tpcc->get(), 16000, 13);
  stop = true;
  asof_loop.join();
  double baseline2 = RunFixedWork(tpcc->get(), 8000, 17);

  double baseline_tpmc = (baseline1 + baseline2) / 2;
  double ratio = baseline_tpmc > 0 ? concurrent / baseline_tpmc : 0;
  printf("%-34s %12.0f tpmC (before: %.0f, after: %.0f)\n",
         "baseline throughput", baseline_tpmc, baseline1, baseline2);
  printf("%-34s %12.0f tpmC\n", "with concurrent as-of loop", concurrent);
  printf("%-34s %12.2fx   (paper: ~0.67x)\n", "throughput ratio", ratio);
  printf("%-34s %12llu\n", "snapshots created",
         static_cast<unsigned long long>(snapshots_ok.load()));
  printf("%-34s %12llu\n", "as-of stock-level queries",
         static_cast<unsigned long long>(asof_queries_ok.load()));
  if (snapshots_ok > 0) {
    printf("%-34s %12.1f ms\n", "avg snapshot creation",
           static_cast<double>(create_micros_total) / 1000.0 /
               static_cast<double>(snapshots_ok));
  }
  if (asof_queries_ok > 0) {
    printf("%-34s %12.1f ms\n", "avg as-of stock-level",
           static_cast<double>(query_micros_total) / 1000.0 /
               static_cast<double>(asof_queries_ok));
  }
  printf("\nexpected shape: throughput drops but stays within the same "
         "order of magnitude while as-of queries run continuously\n");

  tpcc->reset();
  db->reset();
  std::filesystem::remove_all(dir);
  return 0;
}
