// Figure 11: estimated number of undo log IOs performed while bringing
// the pages touched by the as-of query back in time.
//
// Paper result: the count grows roughly linearly with the distance back
// (each modification of a touched page costs one log fetch unless a
// full page image lets the walk skip a region).
#include "bench_common.h"

int main() {
  using namespace rewinddb;
  using namespace rewinddb::bench;

  HistoryOptions ho;
  ho.data_media = MediaProfile::Sas();
  ho.log_media = MediaProfile::Sas();
  auto history = BuildHistory("fig11_hist", ho);
  if (!history.ok()) {
    printf("history build failed: %s\n", history.status().ToString().c_str());
    return 1;
  }
  History* h = history->get();

  PrintHeader("fig11: undo log IOs during the as-of stock-level query",
              "undo IO count grows ~linearly with minutes back");
  printf("%-12s %14s %16s %12s\n", "minutes back", "undo log IOs",
         "records undone", "fpi jumps");
  const int sweeps[] = {1, 2, 5, 10, 20, 40};
  int i = 0;
  for (int t : sweeps) {
    auto asof = MeasureAsOf(h, t, "io" + std::to_string(i++));
    if (!asof.ok()) {
      printf("as-of failed: %s\n", asof.status().ToString().c_str());
      return 1;
    }
    printf("%-12d %14llu %16llu %12llu\n", t,
           static_cast<unsigned long long>(asof->undo_log_ios),
           static_cast<unsigned long long>(asof->records_undone),
           static_cast<unsigned long long>(asof->fpi_jumps));
  }
  printf("\nexpected shape: monotone growth in undo IOs with minutes "
         "back; FPI jumps cap the per-page chain walks\n");
  return 0;
}
