// Microbenchmark for the parallel replay subsystem: crash-recovery
// redo time as a function of replay_threads, on one fixed log.
//
// Recovery redo is IO-latency-bound: each cold page the dispatcher
// routes costs a device read before its records can be applied. To
// make that regime measurable on any host (including single-core CI
// runners), the media model's per-IO latency is charged as REAL
// blocking time -- a Clock whose AdvanceIo sleeps -- so the redo
// worker pool shows exactly what it buys: N workers overlap N page
// reads where the serial path stalls on them one at a time. The
// reported per-iteration time is the redo phase alone (manual timing
// from RecoveryStats), and the `speedup_vs_serial` counter relates
// each worker count to the measured replay_threads=1 redo time.
//
// Expected shape: redo time falls roughly with the worker count;
// >= 2x at 4 workers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "engine/database.h"
#include "engine/table.h"

namespace rewinddb {
namespace {

/// Real steady time; simulated IO latency becomes a real sleep (the
/// inverse of SimClock: instead of charging a counter, it blocks the
/// calling thread, so concurrent IOs genuinely overlap).
class SleepClock : public Clock {
 public:
  WallClock NowMicros() override {
    return static_cast<WallClock>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void AdvanceIo(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

Schema KvSchema() {
  return Schema({{"id", ColumnType::kInt32}, {"val", ColumnType::kString}},
                1);
}

std::string BenchBase() {
  std::filesystem::path base = std::filesystem::exists("/dev/shm")
                                   ? std::filesystem::path("/dev/shm")
                                   : std::filesystem::temp_directory_path();
  return (base / "rewinddb_micro_replay").string();
}

/// Media model for the recovery runs: a flat ~2 ms per 8 KiB page read
/// (no seek-position state, so the cost is deterministic and identical
/// for serial and interleaved access patterns). Recovery on cold spinning
/// or networked storage is exactly this regime: every page the redo
/// pass touches stalls on the device while the CPU work is trivial.
MediaProfile ReplayMedia() { return {"replay-sim", 0, 4.0}; }

/// Build the crashed database once. The shape targets the paper's
/// recovery regime -- redo touching many distinct COLD pages:
///  * bulk-load a few hundred leaf pages, checkpoint (pages durable,
///    dirty page table empty);
///  * then update roughly one row per page and crash with the log
///    flushed but no page flushed.
/// Crash redo must now read every touched page from the store before
/// applying its update -- one stall per page, which is what the worker
/// pool overlaps. Built with latency-free media (fast); recovered with
/// ReplayMedia + SleepClock (each cold page read really stalls).
const std::string& CrashedDir() {
  static const std::string dir = [] {
    std::string d = BenchBase() + "/crashed";
    std::filesystem::remove_all(d);
    auto db = Database::Create(d);
    if (!db.ok()) return std::string();
    Transaction* txn = (*db)->Begin();
    if (!(*db)->CreateTable(txn, "t", KvSchema()).ok()) return std::string();
    if (!(*db)->Commit(txn).ok()) return std::string();
    auto table = (*db)->OpenTable("t");
    if (!table.ok()) return std::string();
    const int kRows = 4000;
    for (int batch = 0; batch < kRows / 250; batch++) {
      Transaction* w = (*db)->Begin();
      for (int i = 0; i < 250; i++) {
        int id = batch * 250 + i;
        if (!table->Insert(w, {id, std::string(300, 'a' + (id % 26))}).ok()) {
          return std::string();
        }
      }
      if (!(*db)->Commit(w).ok()) return std::string();
    }
    if (!(*db)->Checkpoint().ok()) return std::string();
    // ~25 rows of ~310 B fit a leaf: every 20th id dirties a distinct
    // page (a few land together; close enough to one-per-page).
    Transaction* upd = (*db)->Begin();
    for (int id = 0; id < kRows; id += 20) {
      if (!table->Update(upd, {id, std::string(300, 'Z')}).ok()) {
        return std::string();
      }
    }
    if (!(*db)->Commit(upd).ok()) return std::string();
    if (!(*db)->log()->FlushAll().ok()) return std::string();
    (*db)->SimulateCrash();
    return d;
  }();
  return dir;
}

void BM_CrashRecoveryRedo(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::string& crashed = CrashedDir();
  if (crashed.empty()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  // Serial redo time measured by the threads=1 run, for the speedup
  // counter of the parallel runs (benchmarks execute in registration
  // order).
  static double serial_redo_micros = 0;

  SleepClock clock;
  double redo_micros_total = 0;
  uint64_t redo_records = 0;
  int iter = 0;
  for (auto _ : state) {
    std::string dir = crashed + "_run" + std::to_string(threads) + "_" +
                      std::to_string(iter++);
    std::filesystem::remove_all(dir);
    std::filesystem::copy(crashed, dir,
                          std::filesystem::copy_options::recursive);
    DatabaseOptions opts;
    opts.clock = &clock;
    opts.data_media = ReplayMedia();
    opts.replay_threads = threads;
    auto db = Database::Open(dir, opts);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    const RecoveryStats& rs = (*db)->recovery_stats();
    redo_micros_total += static_cast<double>(rs.redo_micros);
    redo_records = rs.redo_records;
    state.SetIterationTime(static_cast<double>(rs.redo_micros) / 1e6);
    (*db)->SimulateCrash();  // skip close-time checkpoint sleeps
    db->reset();
    std::filesystem::remove_all(dir);
  }
  double avg_redo_ms =
      redo_micros_total / static_cast<double>(state.iterations()) / 1000.0;
  if (threads == 1) serial_redo_micros = redo_micros_total;
  state.counters["redo_ms"] = avg_redo_ms;
  state.counters["redo_records"] = static_cast<double>(redo_records);
  state.counters["replay_threads"] = threads;
  if (threads > 1 && serial_redo_micros > 0 && redo_micros_total > 0) {
    state.counters["speedup_vs_serial"] =
        serial_redo_micros / redo_micros_total;
  }
}

BENCHMARK(BM_CrashRecoveryRedo)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rewinddb

BENCHMARK_MAIN();
