// Figure 6: TPC-C THROUGHPUT impact of the logging extensions, for the
// same N sweep, under two checkpointing regimes (none, and periodic --
// the paper used a 30 s recovery interval; scaled down here).
//
// Paper result: "the additional logging has little impact to the
// transaction throughput" -- throughput is governed by the number of
// log records, not their size.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

namespace rewinddb {
namespace bench {

void Run() {
  PrintHeader(
      "Figure 6: TPC-C throughput vs full-page-image period N",
      "throughput is nearly flat across N (log record count, not size, "
      "is what matters)");

  struct Point {
    const char* label;
    uint32_t n;
  };
  const Point points[] = {{"off", 0}, {"256", 256}, {"64", 64},
                          {"16", 16},  {"4", 4}};
  const struct {
    const char* label;
    uint64_t interval;
  } regimes[] = {{"no checkpoints", 0},
                 {"1s checkpoints", 1'000'000}};

  for (const auto& regime : regimes) {
    printf("\n--- %s ---\n", regime.label);
    printf("%-8s %12s %10s\n", "N", "tpmC", "vs off");
    double baseline = 0;
    for (const Point& p : points) {
      DatabaseOptions opts;
      opts.fpi_period = p.n;
      opts.buffer_pool_pages = 4096;
      opts.checkpoint_interval_micros = regime.interval;
      opts.lock_timeout_micros = 300'000;
      std::string dir = BenchDir(std::string("fig6_") + p.label);
      auto db = Database::Create(dir, opts);
      if (!db.ok()) return;
      TpccConfig tc;
      tc.warehouses = 2;
      tc.items = 200;
      auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
      if (!tpcc.ok()) return;
      // Fixed-work probes with a median: timed multi-thread runs are
      // hopelessly noisy on a small shared host; the paper's claim is
      // about RELATIVE per-transaction logging overhead, which fixed
      // work measures directly.
      (void)RunFixedWork(tpcc->get(), 100, 7);  // warm-up
      std::vector<double> runs;
      for (int r = 0; r < 3; r++) {
        runs.push_back(RunFixedWork(tpcc->get(), 600, 99 + r));
      }
      std::sort(runs.begin(), runs.end());
      double tpmc = runs[1];
      if (baseline == 0) baseline = tpmc;
      printf("%-8s %12.0f %9.2fx\n", p.label, tpmc,
             baseline > 0 ? tpmc / baseline : 0.0);
      db->reset();
      std::filesystem::remove_all(dir);
    }
  }
  printf("\nexpected shape: ratios stay near 1.0 across the N sweep\n");
}

}  // namespace bench
}  // namespace rewinddb

int main() {
  rewinddb::bench::Run();
  return 0;
}
