// Figure 6: TPC-C THROUGHPUT impact of the logging extensions, for the
// same N sweep, under two checkpointing regimes (none, and periodic --
// the paper used a 30 s recovery interval; scaled down here).
//
// Paper result: "the additional logging has little impact to the
// transaction throughput" -- throughput is governed by the number of
// log records, not their size.
//
// Part 2 sweeps the redesigned WAL commit pipeline: writer-thread
// count x CommitMode, reporting committed-txns/sec plus the pipeline's
// own evidence (fsync count, flush batches, average commits per fsync,
// batch bytes) as JSON lines. kSync is the pre-redesign baseline (one
// caller-side fsync per commit); kGroup is the group-commit pipeline.
#include <sys/vfs.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.h"

namespace rewinddb {
namespace bench {

/// Directory for the pipeline sweep. Deliberately NOT BenchDir: that
/// prefers tmpfs, where fdatasync is free and the sweep would measure
/// condvar overhead instead of the engine. Group commit exists to
/// amortize real fsync latency, so the log must live where fsync has a
/// real cost -- probe the filesystem type instead of trusting paths.
bool IsTmpfs(const std::filesystem::path& p) {
  struct statfs sb;
  if (::statfs(p.c_str(), &sb) != 0) return false;
  return sb.f_type == 0x01021994;  // TMPFS_MAGIC
}

std::string PipelineBenchDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path base = fs::temp_directory_path();
  if (IsTmpfs(base)) base = fs::current_path();
  if (IsTmpfs(base)) {
    printf("# warning: no non-tmpfs directory found; fsync is free here "
           "and the kGroup-vs-kSync comparison is not meaningful\n");
  }
  auto dir = base / "rewinddb_bench" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir.parent_path());
  return dir.string();
}

/// One cell of the commit-pipeline sweep: `threads` writers each commit
/// `commits_per_thread` single-row transactions in `mode`.
void RunCommitPipelineCell(int threads, CommitMode mode,
                           int commits_per_thread) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 4096;
  opts.default_commit_mode = mode;
  std::string dir = PipelineBenchDir(std::string("fig6_pipe_") +
                                     std::to_string(threads) + "_" +
                                     CommitModeName(mode));
  auto db = Database::Create(dir, opts);
  if (!db.ok()) return;
  Schema schema({{"id", ColumnType::kInt32}, {"v", ColumnType::kString}}, 1);
  {
    Transaction* ddl = (*db)->Begin();
    if (!(*db)->CreateTable(ddl, "t", schema).ok()) return;
    if (!(*db)->Commit(ddl, CommitMode::kSync).ok()) return;
  }
  wal::WalStats before = (*db)->log()->stats();

  std::atomic<uint64_t> committed{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      auto table = (*db)->OpenTable("t");
      if (!table.ok()) return;
      for (int i = 0; i < commits_per_thread; i++) {
        Transaction* txn = (*db)->Begin();
        if (!table->Insert(txn, {t * 1'000'000 + i,
                                 std::string(64, 'v')}).ok()) {
          Status s = (*db)->Abort(txn);
          (void)s;
          continue;
        }
        if ((*db)->Commit(txn).ok()) committed++;
      }
    });
  }
  for (auto& th : workers) th.join();
  // kAsync/kNone: charge the catch-up flush to the run so modes are
  // comparable on durable work.
  Status s = (*db)->log()->FlushAll();
  (void)s;
  auto t1 = std::chrono::steady_clock::now();
  double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  wal::WalStats after = (*db)->log()->stats();

  uint64_t fsyncs = after.fsyncs - before.fsyncs;
  uint64_t bytes = after.flushed_bytes - before.flushed_bytes;
  double txns_per_sec = secs > 0 ? static_cast<double>(committed) / secs : 0;
  double commits_per_fsync =
      fsyncs > 0 ? static_cast<double>(committed) / static_cast<double>(fsyncs)
                 : 0;
  double avg_batch_bytes =
      fsyncs > 0 ? static_cast<double>(bytes) / static_cast<double>(fsyncs)
                 : 0;
  printf("{\"bench\":\"fig6_commit_pipeline\",\"threads\":%d,"
         "\"mode\":\"%s\",\"commits\":%llu,\"secs\":%.3f,"
         "\"txns_per_sec\":%.0f,\"fsyncs\":%llu,"
         "\"commits_per_fsync\":%.2f,\"avg_batch_bytes\":%.0f,"
         "\"max_batch_bytes\":%llu,\"group_waits\":%llu}\n",
         threads, CommitModeName(mode),
         static_cast<unsigned long long>(committed.load()), secs,
         txns_per_sec, static_cast<unsigned long long>(fsyncs),
         commits_per_fsync, avg_batch_bytes,
         static_cast<unsigned long long>(after.max_batch_bytes),
         static_cast<unsigned long long>(after.group_commit_waits -
                                         before.group_commit_waits));
  fflush(stdout);
  db->reset();
  std::filesystem::remove_all(dir);
}

void RunCommitPipelineSweep() {
  printf("\n--- commit pipeline: threads x mode "
         "(JSON; kSync = pre-redesign baseline) ---\n");
  const int kThreadCounts[] = {1, 2, 4, 8};
  const CommitMode kModes[] = {CommitMode::kSync, CommitMode::kGroup,
                               CommitMode::kAsync};
  const int kCommitsPerThread = 400;
  for (int threads : kThreadCounts) {
    for (CommitMode mode : kModes) {
      RunCommitPipelineCell(threads, mode, kCommitsPerThread);
    }
  }
  printf("expected shape: kGroup multi-threaded txns/sec beats kSync, with "
         "commits_per_fsync > 1 as the mechanism\n");
}

void Run() {
  PrintHeader(
      "Figure 6: TPC-C throughput vs full-page-image period N",
      "throughput is nearly flat across N (log record count, not size, "
      "is what matters)");

  struct Point {
    const char* label;
    uint32_t n;
  };
  const Point points[] = {{"off", 0}, {"256", 256}, {"64", 64},
                          {"16", 16},  {"4", 4}};
  const struct {
    const char* label;
    uint64_t interval;
  } regimes[] = {{"no checkpoints", 0},
                 {"1s checkpoints", 1'000'000}};

  for (const auto& regime : regimes) {
    printf("\n--- %s ---\n", regime.label);
    printf("%-8s %12s %10s\n", "N", "tpmC", "vs off");
    double baseline = 0;
    for (const Point& p : points) {
      DatabaseOptions opts;
      opts.fpi_period = p.n;
      opts.buffer_pool_pages = 4096;
      opts.checkpoint_interval_micros = regime.interval;
      opts.lock_timeout_micros = 300'000;
      std::string dir = BenchDir(std::string("fig6_") + p.label);
      auto db = Database::Create(dir, opts);
      if (!db.ok()) return;
      TpccConfig tc;
      tc.warehouses = 2;
      tc.items = 200;
      auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
      if (!tpcc.ok()) return;
      // Fixed-work probes with a median: timed multi-thread runs are
      // hopelessly noisy on a small shared host; the paper's claim is
      // about RELATIVE per-transaction logging overhead, which fixed
      // work measures directly.
      (void)RunFixedWork(tpcc->get(), 100, 7);  // warm-up
      std::vector<double> runs;
      for (int r = 0; r < 3; r++) {
        runs.push_back(RunFixedWork(tpcc->get(), 600, 99 + r));
      }
      std::sort(runs.begin(), runs.end());
      double tpmc = runs[1];
      if (baseline == 0) baseline = tpmc;
      printf("%-8s %12.0f %9.2fx\n", p.label, tpmc,
             baseline > 0 ? tpmc / baseline : 0.0);
      db->reset();
      std::filesystem::remove_all(dir);
    }
  }
  printf("\nexpected shape: ratios stay near 1.0 across the N sweep\n");

  // WAL diet throughput check: the space win must not cost throughput.
  // Same fixed-work probe at the FPI-heavy N=16 point, diet off vs on.
  printf("\n--- wal diet overhead (N=16) ---\n");
  printf("%-8s %12s %10s\n", "diet", "tpmC", "vs off");
  double diet_baseline = 0;
  for (int diet = 0; diet <= 1; diet++) {
    DatabaseOptions opts;
    opts.fpi_period = 16;
    opts.buffer_pool_pages = 4096;
    opts.lock_timeout_micros = 300'000;
    opts.wal_compression = diet != 0;
    opts.fpi_delta_window_bytes = diet != 0 ? (1ull << 20) : 0;
    std::string dir = BenchDir(diet ? "fig6_diet_on" : "fig6_diet_off");
    auto db = Database::Create(dir, opts);
    if (!db.ok()) return;
    TpccConfig tc;
    tc.warehouses = 2;
    tc.items = 200;
    auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
    if (!tpcc.ok()) return;
    (void)RunFixedWork(tpcc->get(), 100, 7);  // warm-up
    std::vector<double> runs;
    for (int r = 0; r < 3; r++) {
      runs.push_back(RunFixedWork(tpcc->get(), 600, 99 + r));
    }
    std::sort(runs.begin(), runs.end());
    double tpmc = runs[1];
    if (diet_baseline == 0) diet_baseline = tpmc;
    printf("%-8s %12.0f %9.2fx\n", diet ? "on" : "off", tpmc,
           diet_baseline > 0 ? tpmc / diet_baseline : 0.0);
    printf("JSON {\"section\":\"fig6_wal_diet\",\"diet\":%d,\"tpmc\":%.0f}\n",
           diet, tpmc);
    if (diet != 0) PrintEngineStats(db->get());
    db->reset();
    std::filesystem::remove_all(dir);
  }
  printf("expected: diet tpmC within ~5%% of off\n");

  RunCommitPipelineSweep();
}

}  // namespace bench
}  // namespace rewinddb

int main() {
  rewinddb::bench::Run();
  return 0;
}
