// Time-travel through the public api/ surface only: what a user of the
// unified API pays to query the past, with zero engine headers.
//
// Builds a history of update rounds over one table through Connection,
// then runs the SAME aggregate (full scan + sum) through:
//   * the live ReadView, and
//   * as-of ReadViews mounted at increasing distances back,
// reporting wall-clock per phase and verifying the as-of answers are
// the historically recorded truth.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/connection.h"

using namespace rewinddb;

namespace {

constexpr int kRows = 2000;
constexpr int kRounds = 24;

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - t0)
                 .count()) /
         1000.0;
}

/// The one query: sum of balances over a full scan.
Result<double> SumBalances(ReadView* view) {
  auto table = view->OpenTable("accounts");
  if (!table.ok()) return table.status();
  double sum = 0;
  Status s = (*table)->Scan(std::nullopt, std::nullopt, [&](const Row& row) {
    sum += row[2].AsDouble();
    return true;
  });
  if (!s.ok()) return s;
  return sum;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/rewinddb_api_bench";
  std::filesystem::remove_all(dir);

  SimClock clock(1'000'000);
  DatabaseOptions opts;
  opts.clock = &clock;
  opts.fpi_period = 16;
  auto conn = Connection::Create(dir, opts);
  if (!conn.ok()) {
    fprintf(stderr, "create: %s\n", conn.status().ToString().c_str());
    return 1;
  }

  Schema schema({{"id", ColumnType::kInt32},
                 {"owner", ColumnType::kString},
                 {"balance", ColumnType::kDouble}},
                1);
  Status s = (*conn)->CreateTable("accounts", schema);
  if (!s.ok()) {
    fprintf(stderr, "ddl: %s\n", s.ToString().c_str());
    return 1;
  }

  {
    Txn load = (*conn)->Begin();
    for (int i = 0; i < kRows; i++) {
      s = (*conn)->Insert(load, "accounts",
                          {i, "acct" + std::to_string(i), 100.0});
      if (!s.ok()) return 1;
    }
    if (!load.Commit().ok()) return 1;
  }

  // History: each round bumps 1/8th of the rows, then records the truth
  // (live answer + wall-clock mark).
  std::vector<WallClock> marks;
  std::vector<double> truth;
  for (int r = 0; r < kRounds; r++) {
    Txn txn = (*conn)->Begin();
    for (int i = r % 8; i < kRows; i += 8) {
      s = (*conn)->Update(txn, "accounts",
                          {i, "acct" + std::to_string(i), 100.0 + r});
      if (!s.ok()) return 1;
    }
    if (!txn.Commit().ok()) return 1;
    clock.Advance(60'000'000);  // one simulated minute per round
    auto live = (*conn)->Live();
    auto sum = SumBalances(live.get());
    if (!sum.ok()) return 1;
    marks.push_back(clock.NowMicros());
    truth.push_back(*sum);
    // The next round's commits must be strictly later than the mark,
    // or the split-point search would include them in the as-of view.
    clock.Advance(1);
  }

  printf("==================================================================\n");
  printf("api_time_travel: unified ReadView cost, live vs as-of\n");
  printf("%d rows, %d update rounds, full-scan aggregate\n", kRows, kRounds);
  printf("------------------------------------------------------------------\n");

  auto live = (*conn)->Live();
  auto t0 = std::chrono::steady_clock::now();
  auto live_sum = SumBalances(live.get());
  if (!live_sum.ok()) return 1;
  double live_ms = MillisSince(t0);
  printf("%-14s %14s %14s %12s %8s\n", "rounds back", "mount (ms)",
         "query (ms)", "sum", "check");

  for (int back : {1, 4, 8, 16, kRounds - 1}) {
    size_t idx = marks.size() - static_cast<size_t>(back);
    t0 = std::chrono::steady_clock::now();
    auto past = (*conn)->AsOf(marks[idx]);
    if (!past.ok()) {
      fprintf(stderr, "as-of: %s\n", past.status().ToString().c_str());
      return 1;
    }
    if (!(*past)->WaitReady().ok()) return 1;
    double mount_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto sum = SumBalances(past->get());
    if (!sum.ok()) {
      fprintf(stderr, "query: %s\n", sum.status().ToString().c_str());
      return 1;
    }
    double query_ms = MillisSince(t0);
    bool match = *sum == truth[idx];
    printf("%-14d %14.2f %14.2f %12.0f %8s\n", back, mount_ms, query_ms,
           *sum, match ? "MATCH" : "MISMATCH!");
    if (!match) return 1;
  }
  printf("%-14s %14s %14.2f %12.0f\n", "live", "-", live_ms, *live_sum);
  printf("\nexpected shape: query cost grows with rounds back (longer\n"
         "per-page undo chains); mount cost stays roughly flat\n");
  return 0;
}
