// StockLevel as SQL vs hand-coded (satellite of the executor PR).
//
// The paper's as-of query -- TPC-C STOCK-LEVEL -- exists in this repo
// twice: as the hand-coded TpccDatabase::StockLevelOn (TableView calls)
// and, since the SQL executor landed, as an ordinary join + aggregate:
//
//   SELECT COUNT(DISTINCT ol.ol_i_id) FROM order_line ol
//   JOIN stock s ON s.s_w_id = ol.ol_w_id AND s.s_i_id = ol.ol_i_id
//   WHERE ol.ol_w_id = W AND ol.ol_d_id = D
//     AND ol.ol_o_id >= LOW AND ol.ol_o_id < NEXT
//     AND s.s_quantity < THRESHOLD
//
// This bench runs both forms live and AS OF a churned-over instant,
// asserts all four agree, and reports the executor's overhead per form.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "api/connection.h"
#include "common/random.h"
#include "sql/session.h"
#include "tpcc/tpcc.h"

using namespace rewinddb;

namespace {

constexpr int kWarehouse = 1;
constexpr int kDistrict = 1;
constexpr int kThreshold = 60;
constexpr int kIters = 200;

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::string StockLevelSql(int next_o_id, uint64_t as_of) {
  int low = next_o_id - 20 < 1 ? 1 : next_o_id - 20;
  std::string q =
      "SELECT COUNT(DISTINCT ol.ol_i_id) FROM order_line ol "
      "JOIN stock s ON s.s_w_id = ol.ol_w_id AND s.s_i_id = ol.ol_i_id "
      "WHERE ol.ol_w_id = " + std::to_string(kWarehouse) +
      " AND ol.ol_d_id = " + std::to_string(kDistrict) +
      " AND ol.ol_o_id >= " + std::to_string(low) +
      " AND ol.ol_o_id < " + std::to_string(next_o_id) +
      " AND s.s_quantity < " + std::to_string(kThreshold);
  if (as_of) q += " AS OF " + std::to_string(as_of);
  return q;
}

/// d_next_o_id at the queried instant, fetched through SQL so the
/// whole benchmark uses only statement text.
int NextOrderId(SqlSession* sql, uint64_t as_of) {
  std::string q = "SELECT d_next_o_id FROM district WHERE d_w_id = " +
                  std::to_string(kWarehouse) +
                  " AND d_id = " + std::to_string(kDistrict);
  if (as_of) q += " AS OF " + std::to_string(as_of);
  auto r = sql->ExecuteStatement(q);
  if (!r.ok() || r->rows.size() != 1) {
    fprintf(stderr, "district probe: %s\n", r.status().ToString().c_str());
    exit(1);
  }
  return r->rows[0][0].AsInt32();
}

int64_t SqlStockLevel(SqlSession* sql, int next_o_id, uint64_t as_of) {
  auto r = sql->ExecuteStatement(StockLevelSql(next_o_id, as_of));
  if (!r.ok() || r->rows.size() != 1) {
    fprintf(stderr, "sql stocklevel: %s\n", r.status().ToString().c_str());
    exit(1);
  }
  return r->rows[0][0].AsInt64();
}

}  // namespace

int main() {
  const std::string dir = "/tmp/rewinddb_sql_stocklevel";
  std::filesystem::remove_all(dir);

  SimClock clock(1'000'000);
  DatabaseOptions opts;
  opts.clock = &clock;
  auto conn_r = Connection::Create(dir, opts);
  if (!conn_r.ok()) {
    fprintf(stderr, "create: %s\n", conn_r.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Connection> conn = std::move(*conn_r);
  SqlSession sql(conn.get());

  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.items = 400;
  cfg.initial_orders_per_district = 15;
  auto tpcc_r = TpccDatabase::CreateAndLoad(conn->engine(), cfg);
  if (!tpcc_r.ok()) {
    fprintf(stderr, "load: %s\n", tpcc_r.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TpccDatabase> tpcc = std::move(*tpcc_r);

  // Trade against the queried district, then quiesce and mark T.
  Random rnd(7);
  for (int i = 0; i < 150; i++) {
    (void)tpcc->NewOrder(&rnd, kWarehouse);
    if (i % 3 == 0) (void)tpcc->Payment(&rnd);
  }
  clock.Advance(5'000'000);
  const uint64_t t_past = clock.NowMicros();
  clock.Advance(5'000'000);
  // Churn past T so AS OF must actually rewind.
  for (int i = 0; i < 150; i++) {
    (void)tpcc->NewOrder(&rnd, kWarehouse);
    if (i % 4 == 0) (void)tpcc->Delivery(&rnd);
  }

  struct Form {
    const char* name;
    uint64_t as_of;
  };
  const Form forms[] = {{"live", 0}, {"as-of", t_past}};

  printf("%-8s %14s %14s %10s %8s\n", "view", "hand-coded us", "sql us",
         "overhead", "count");
  for (const Form& f : forms) {
    // Resolve the view once per iteration for the hand-coded form,
    // matching what one SQL statement execution does internally.
    int next_o_id = NextOrderId(&sql, f.as_of);

    int hand_count = -1;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; i++) {
      std::unique_ptr<ReadView> live;
      std::shared_ptr<ReadView> past;
      ReadView* view;
      if (f.as_of) {
        auto v = conn->AsOf(f.as_of);
        if (!v.ok() || !(*v)->WaitReady().ok()) return 1;
        past = std::move(*v);
        view = past.get();
      } else {
        live = conn->Live();
        view = live.get();
      }
      auto r = TpccDatabase::StockLevelOn(view, kWarehouse, kDistrict,
                                          kThreshold);
      if (!r.ok()) {
        fprintf(stderr, "hand-coded: %s\n", r.status().ToString().c_str());
        return 1;
      }
      hand_count = *r;
    }
    double hand_us = MicrosSince(t0) / kIters;

    int64_t sql_count = -1;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; i++) {
      sql_count = SqlStockLevel(&sql, next_o_id, f.as_of);
    }
    double sql_us = MicrosSince(t0) / kIters;

    if (sql_count != hand_count) {
      fprintf(stderr, "MISMATCH (%s): hand-coded=%d sql=%lld\n", f.name,
              hand_count, static_cast<long long>(sql_count));
      return 1;
    }
    printf("%-8s %14.1f %14.1f %9.2fx %8d\n", f.name, hand_us, sql_us,
           sql_us / hand_us, hand_count);
  }
  printf("counts agree across all four form/view combinations\n");

  tpcc.reset();
  conn.reset();
  std::filesystem::remove_all(dir);
  return 0;
}
