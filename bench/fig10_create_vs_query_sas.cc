// Figure 10: snapshot creation vs as-of query time on 10K SAS.
//
// Paper result: same split as figure 9 with both components more
// expensive; the query dominates because each log-chain fetch is a
// rotational-latency stall.
#include "bench_common.h"

int main() {
  rewinddb::bench::RunCreateVsQuery(
      rewinddb::MediaProfile::Sas(), "fig10",
      "SAS: creation ~flat; query grows and dominates");
  return 0;
}
