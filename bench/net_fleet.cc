// Mixed-fleet network benchmark: N order-entry writers and M
// investigator sessions hammer one rewinddb server over real TCP
// (loopback), exactly as the multi-user front end deploys. Reported:
//
//   * tpmC-style throughput (committed order transactions per minute),
//   * p50 / p99 client-observed transaction latency,
//   * rejected connections when a probe fleet exceeds max_connections,
//   * an engine_stats JSON line (shared with the other benches), and
//   * proof that session teardown released every snapshot anchor.
//
// Unlike the figure benches this one runs on the real clock: the
// workload is network-bound and multi-threaded, so simulated IO time
// would measure nothing useful.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "client/client.h"
#include "server/server.h"

namespace rewinddb {
namespace bench {
namespace {

uint64_t NowRealMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Percentile(std::vector<uint64_t>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

struct Options {
  int writers = 4;
  int investigators = 2;
  int seconds = 5;
  int items = 64;
  uint32_t max_connections = 16;
};

int Run(const Options& opt) {
  const std::string dir = BenchDir("net_fleet");
  auto conn = Connection::Create(dir + "/db");
  if (!conn.ok()) {
    fprintf(stderr, "create: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  Database* db = (*conn)->engine();

  server::Server::Options so;
  so.max_connections = opt.max_connections;
  server::Server server(db, so);
  if (Status s = server.Start(); !s.ok()) {
    fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }
  const uint16_t port = server.port();

  // Schema + seed over the wire, like any other client would.
  {
    auto c = client::Client::Connect("127.0.0.1", port, "fleet-setup");
    if (!c.ok()) {
      fprintf(stderr, "connect: %s\n", c.status().ToString().c_str());
      return 1;
    }
    auto must = [&](const Status& s, const char* what) {
      if (!s.ok()) {
        fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
        exit(1);
      }
    };
    must((*c)->Execute("CREATE TABLE stock (i INT64, qty INT64, "
                       "PRIMARY KEY (i))")
             .status(),
         "create stock");
    must((*c)->Execute("CREATE TABLE orders (w INT64, o INT64, amount "
                       "DOUBLE, PRIMARY KEY (w, o))")
             .status(),
         "create orders");
    must((*c)->Begin().status(), "begin");
    for (int64_t i = 0; i < opt.items; i++) {
      must((*c)->Insert("stock", {i, int64_t{100000}}), "seed stock");
    }
    must((*c)->Commit(CommitMode::kSync), "seed commit");
  }
  const size_t anchor_baseline = db->SnapshotAnchorCount();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> investigator_reads{0};
  std::atomic<uint64_t> rows_travelled{0};
  std::atomic<int> connect_failures{0};
  std::vector<std::vector<uint64_t>> latencies(
      static_cast<size_t>(opt.writers));

  std::vector<std::thread> fleet;
  for (int w = 0; w < opt.writers; w++) {
    fleet.emplace_back([&, w] {
      auto c = client::Client::Connect("127.0.0.1", port,
                                       "writer-" + std::to_string(w));
      if (!c.ok()) {
        connect_failures.fetch_add(1);
        return;
      }
      Random rnd(static_cast<uint64_t>(w) + 1);
      int64_t next_order = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t t0 = SteadyMicros();
        // One order: read-modify-write a few stock rows, insert the
        // order row, group-commit. The shape of TPC-C new-order, over
        // the wire.
        bool ok = (*c)->Begin().ok();
        for (int line = 0; ok && line < 3; line++) {
          int64_t item =
              static_cast<int64_t>(rnd.Next() % static_cast<uint64_t>(opt.items));
          auto row = (*c)->Get("stock", {item});
          if (!row.ok()) {
            ok = false;
            break;
          }
          int64_t qty = (*row)[1].AsInt64();
          ok = (*c)->Update("stock", {item, qty - 1}).ok();
        }
        if (ok) {
          ok = (*c)->Insert("orders", {int64_t{w}, next_order,
                                       0.01 * static_cast<double>(next_order)})
                   .ok();
        }
        if (ok && (*c)->Commit(CommitMode::kGroup).ok()) {
          committed.fetch_add(1);
          next_order++;
          latencies[static_cast<size_t>(w)].push_back(SteadyMicros() - t0);
        } else {
          (void)(*c)->Rollback();
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (int v = 0; v < opt.investigators; v++) {
    fleet.emplace_back([&, v] {
      auto c = client::Client::Connect("127.0.0.1", port,
                                       "investigator-" + std::to_string(v));
      if (!c.ok()) {
        connect_failures.fetch_add(1);
        return;
      }
      Random rnd(1000 + static_cast<uint64_t>(v));
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t back = 200'000 + rnd.Next() % 1'800'000;  // 0.2s - 2s ago
        auto view = (*c)->AsOf(NowRealMicros() - back);
        if (!view.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        auto scan = (*c)->Scan("orders", std::nullopt, std::nullopt,
                               /*limit=*/32, view->handle);
        if (scan.ok()) {
          rows_travelled.fetch_add(scan->rowset.rows.size());
        }
        auto count = (*c)->Count("orders", view->handle);
        (void)count;
        (void)(*c)->ReleaseView(view->handle);
        investigator_reads.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(opt.seconds));

  // Admission-control probe while the fleet still holds its slots:
  // connections beyond max_connections must be rejected with kBusy,
  // not hang and not crash the server.
  uint64_t rejected = 0;
  {
    std::vector<std::unique_ptr<client::Client>> hogs;
    for (uint32_t i = 0; i < opt.max_connections + 8; i++) {
      auto c = client::Client::Connect("127.0.0.1", port, "probe");
      if (c.ok()) {
        hogs.push_back(std::move(*c));
      } else if (c.status().IsBusy()) {
        rejected++;
      }
    }
  }

  stop.store(true);
  for (auto& th : fleet) th.join();

  const double minutes = static_cast<double>(opt.seconds) / 60.0;
  std::vector<uint64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const uint64_t p50 = Percentile(&all, 0.50);
  const uint64_t p99 = Percentile(&all, 0.99);
  const double tpmc = static_cast<double>(committed.load()) / minutes;

  // Teardown proof: every session died, so every AS OF handle it held
  // must have released its snapshot anchor.
  bool anchors_released = false;
  for (int i = 0; i < 500; i++) {
    if (db->SnapshotAnchorCount() == anchor_baseline) {
      anchors_released = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  server::Server::Stats ss = server.stats();
  printf("fleet: %d writers + %d investigators for %ds -> %llu commits "
         "(%.0f tpmC), %llu aborts, %llu time-travel reads\n",
         opt.writers, opt.investigators, opt.seconds,
         static_cast<unsigned long long>(committed.load()), tpmc,
         static_cast<unsigned long long>(aborted.load()),
         static_cast<unsigned long long>(investigator_reads.load()));
  printf("latency: p50 %llu us, p99 %llu us; admission: %llu rejected "
         "of %u over-capacity dials\n",
         static_cast<unsigned long long>(p50),
         static_cast<unsigned long long>(p99),
         static_cast<unsigned long long>(rejected),
         opt.max_connections + 8);
  printf("JSON {\"bench\":\"net_fleet\",\"writers\":%d,"
         "\"investigators\":%d,\"seconds\":%d,\"tpmc\":%.0f,"
         "\"committed\":%llu,\"aborted\":%llu,\"p50_us\":%llu,"
         "\"p99_us\":%llu,\"investigator_reads\":%llu,"
         "\"rows_travelled\":%llu,\"rejected_connections\":%llu,"
         "\"server_accepted\":%llu,\"server_rejected_busy\":%llu,"
         "\"server_frames\":%llu,\"frame_errors\":%llu,"
         "\"connect_failures\":%d,\"anchors_released\":%s}\n",
         opt.writers, opt.investigators, opt.seconds, tpmc,
         static_cast<unsigned long long>(committed.load()),
         static_cast<unsigned long long>(aborted.load()),
         static_cast<unsigned long long>(p50),
         static_cast<unsigned long long>(p99),
         static_cast<unsigned long long>(investigator_reads.load()),
         static_cast<unsigned long long>(rows_travelled.load()),
         static_cast<unsigned long long>(rejected),
         static_cast<unsigned long long>(ss.accepted),
         static_cast<unsigned long long>(ss.rejected_busy),
         static_cast<unsigned long long>(ss.frames),
         static_cast<unsigned long long>(ss.frame_errors),
         connect_failures.load(), anchors_released ? "true" : "false");
  PrintEngineStats(db);

  server.Stop();
  if (!anchors_released) {
    fprintf(stderr, "FAIL: snapshot anchors were not released\n");
    return 1;
  }
  if (committed.load() == 0 || rejected == 0) {
    fprintf(stderr, "FAIL: degenerate run (no commits or no rejections)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rewinddb

int main(int argc, char** argv) {
  rewinddb::bench::Options opt;
  for (int i = 1; i < argc; i++) {
    auto intflag = [&](const char* name, int* out) {
      size_t n = strlen(name);
      if (strncmp(argv[i], name, n) == 0 && argv[i][n] == '=') {
        *out = atoi(argv[i] + n + 1);
        return true;
      }
      return false;
    };
    int maxc = static_cast<int>(opt.max_connections);
    if (intflag("--writers", &opt.writers) ||
        intflag("--investigators", &opt.investigators) ||
        intflag("--seconds", &opt.seconds) ||
        intflag("--items", &opt.items)) {
      continue;
    }
    if (intflag("--max-connections", &maxc)) {
      opt.max_connections = static_cast<uint32_t>(maxc);
      continue;
    }
    fprintf(stderr,
            "usage: net_fleet [--writers=N] [--investigators=M] "
            "[--seconds=S] [--items=K] [--max-connections=C]\n");
    return 2;
  }
  return rewinddb::bench::Run(opt);
}
