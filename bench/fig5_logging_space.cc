// Figure 5: transaction log SPACE overhead of the logging extensions,
// as a function of N (a full page image is logged every N modifications
// of a page; "off" disables periodic images).
//
// Paper result: the additional logging does not hurt throughput but
// increases log space, more so for small N.
#include <cstdio>

#include "bench_common.h"

namespace rewinddb {
namespace bench {

void Run() {
  PrintHeader(
      "Figure 5: transaction log space vs full-page-image period N",
      "additional logging increases log space usage; smaller N = more");

  struct Point {
    const char* label;
    uint32_t n;
  };
  const Point points[] = {{"off", 0}, {"256", 256}, {"64", 64},
                          {"16", 16},  {"4", 4}};
  const int kTxns = 1200;

  printf("%-8s %14s %14s %18s %10s\n", "N", "active bytes",
         "archived bytes", "bytes/new-order", "vs off");
  double baseline = 0;
  for (const Point& p : points) {
    DatabaseOptions opts;
    opts.fpi_period = p.n;
    opts.buffer_pool_pages = 4096;
    std::string dir = BenchDir(std::string("fig5_") + p.label);
    auto db = Database::Create(dir, opts);
    if (!db.ok()) {
      printf("error: %s\n", db.status().ToString().c_str());
      return;
    }
    TpccConfig tc;
    tc.warehouses = 1;
    tc.items = 200;
    auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
    if (!tpcc.ok()) {
      printf("error: %s\n", tpcc.status().ToString().c_str());
      return;
    }
    // Space is measured across BOTH log tiers: with archiving on,
    // LiveBytes alone would under-report (trimmed bytes move to the
    // archive, they do not disappear) -- the paper's space claim is
    // about total retained log.
    uint64_t log_before =
        (*db)->log()->LiveBytes() + (*db)->log()->ArchivedBytes();
    Random rnd(5);
    int committed = 0;
    while (committed < kTxns) {
      if ((*tpcc)->NewOrder(&rnd).ok()) committed++;
    }
    uint64_t active = (*db)->log()->LiveBytes();
    uint64_t archived = (*db)->log()->ArchivedBytes();
    uint64_t log_bytes = active + archived - log_before;
    double per_txn = static_cast<double>(log_bytes) / kTxns;
    if (baseline == 0) baseline = per_txn;
    printf("%-8s %14llu %14llu %18.0f %9.2fx\n", p.label,
           static_cast<unsigned long long>(active),
           static_cast<unsigned long long>(archived), per_txn,
           per_txn / baseline);
    db->reset();
    std::filesystem::remove_all(dir);
  }
  printf("\nexpected shape: monotone growth as N shrinks "
         "(full page images dominate at N=4)\n");
}

}  // namespace bench
}  // namespace rewinddb

int main() {
  rewinddb::bench::Run();
  return 0;
}
