// Figure 5: transaction log SPACE overhead of the logging extensions,
// as a function of N (a full page image is logged every N modifications
// of a page; "off" disables periodic images) -- and what the WAL diet
// (flush-batch compression + delta FPIs) claws back at each point.
//
// Two space metrics per cell:
//   * logical bytes -- LSN-space growth across BOTH log tiers
//     (active + archived): what the LSN arithmetic and the paper's
//     accounting see. The diet does not change this; deltas shrink it,
//     frames do not (they leave filesystem holes instead).
//   * disk bytes -- blocks actually allocated (st_blocks) for the
//     active log file and every archive segment: what the storage bill
//     sees. This is where compression frames show up.
//
// Paper result: the additional logging does not hurt throughput but
// increases log space, more so for small N. Diet result: the FPI-heavy
// small-N cells shrink the most on disk.
#include <sys/stat.h>

#include <cstdio>

#include "bench_common.h"

namespace rewinddb {
namespace bench {

uint64_t FileDiskBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_blocks) * 512;
}

/// Allocated blocks of the whole log footprint: the (sparse) active
/// file plus every sealed archive segment.
uint64_t LogDiskBytes(const std::string& dir) {
  uint64_t total = FileDiskBytes(dir + "/log.rwdb");
  std::error_code ec;
  std::filesystem::directory_iterator it(dir + "/archive", ec);
  if (!ec) {
    for (const auto& e : it) {
      if (e.is_regular_file(ec)) total += FileDiskBytes(e.path().string());
    }
  }
  return total;
}

void Run() {
  PrintHeader(
      "Figure 5: transaction log space vs full-page-image period N",
      "additional logging increases log space usage; smaller N = more");

  struct Point {
    const char* label;
    uint32_t n;
  };
  const Point points[] = {{"off", 0}, {"256", 256}, {"64", 64},
                          {"16", 16},  {"4", 4}};
  const int kTxns = 1200;

  printf("%-6s %-5s %14s %14s %16s %10s %10s\n", "N", "diet",
         "logical bytes", "disk bytes", "logical/new-ord", "vs off",
         "disk cut");
  double baseline = 0;
  Database* diet_db_for_stats = nullptr;
  std::unique_ptr<Database> keep_alive;
  for (const Point& p : points) {
    uint64_t plain_disk = 0;
    for (int diet = 0; diet <= 1; diet++) {
      DatabaseOptions opts;
      opts.fpi_period = p.n;
      opts.buffer_pool_pages = 4096;
      opts.wal_compression = diet != 0;
      opts.fpi_delta_window_bytes = diet != 0 ? (1ull << 20) : 0;
      std::string dir = BenchDir(std::string("fig5_") + p.label +
                                 (diet ? "_diet" : ""));
      // The archive tier on explicitly: fig5's claim is about TOTAL
      // retained log, and sealed segments inherit the frames, so the
      // disk split must cover both tiers.
      opts.archive_dir = dir + "/archive";
      auto db = Database::Create(dir, opts);
      if (!db.ok()) {
        printf("error: %s\n", db.status().ToString().c_str());
        return;
      }
      TpccConfig tc;
      tc.warehouses = 1;
      tc.items = 200;
      auto tpcc = TpccDatabase::CreateAndLoad(db->get(), tc);
      if (!tpcc.ok()) {
        printf("error: %s\n", tpcc.status().ToString().c_str());
        return;
      }
      uint64_t log_before =
          (*db)->log()->LiveBytes() + (*db)->log()->ArchivedBytes();
      Random rnd(5);
      int committed = 0;
      while (committed < kTxns) {
        if ((*tpcc)->NewOrder(&rnd).ok()) committed++;
      }
      // Seal + trim so history sits in its steady-state home (archive
      // segments with hole-punched frames) before measuring.
      Status ck = (*db)->FuzzyCheckpoint();
      (void)ck;
      uint64_t active = (*db)->log()->LiveBytes();
      uint64_t archived = (*db)->log()->ArchivedBytes();
      uint64_t logical = active + archived - log_before;
      uint64_t disk = LogDiskBytes(dir);
      double per_txn = static_cast<double>(logical) / kTxns;
      if (baseline == 0) baseline = per_txn;
      if (diet == 0) plain_disk = disk;
      double cut = (diet != 0 && plain_disk > 0)
                       ? 1.0 - static_cast<double>(disk) /
                                   static_cast<double>(plain_disk)
                       : 0.0;
      printf("%-6s %-5s %14llu %14llu %16.0f %9.2fx %9.0f%%\n", p.label,
             diet ? "on" : "off", static_cast<unsigned long long>(logical),
             static_cast<unsigned long long>(disk), per_txn,
             per_txn / baseline, cut * 100);
      printf("JSON {\"section\":\"fig5\",\"n\":\"%s\",\"diet\":%d,"
             "\"logical_bytes\":%llu,\"disk_bytes\":%llu,"
             "\"active_bytes\":%llu,\"archived_bytes\":%llu}\n",
             p.label, diet, static_cast<unsigned long long>(logical),
             static_cast<unsigned long long>(disk),
             static_cast<unsigned long long>(active),
             static_cast<unsigned long long>(archived));
      fflush(stdout);
      // Keep the last diet run alive for the engine_stats footer (its
      // WAL counters carry the frame/delta evidence).
      if (diet != 0 && p.n == 4) {
        keep_alive = std::move(*db);
        diet_db_for_stats = keep_alive.get();
      } else {
        db->reset();
      }
      std::filesystem::remove_all(dir);
    }
  }
  if (diet_db_for_stats != nullptr) {
    PrintEngineStats(diet_db_for_stats);
    keep_alive.reset();
  }
  printf("\nexpected shape: logical bytes grow monotonically as N shrinks; "
         "diet disk bytes sit well below logical (>= 30%% cut at N=4)\n");
}

}  // namespace bench
}  // namespace rewinddb

int main() {
  rewinddb::bench::Run();
  return 0;
}
