// Microbenchmark for the fuzzy-checkpoint subsystem: crash-recovery
// ANALYSIS time with and without byte-triggered checkpoints, on the
// same workload shape.
//
// Analysis is a forward log scan from the master checkpoint (or the
// log start when there is none) to the crash point. Without
// checkpoints the scan covers the whole retained log and grows without
// bound with uptime; with checkpoint_interval_bytes set it is bounded
// by roughly one interval regardless of history length. Log reads are
// charged as REAL blocking time (SleepClock, as in micro_replay), so
// the reported per-iteration time is the analysis phase alone, taken
// from RecoveryStats.
//
// Expected shape: analysis_ms and analysis_records collapse by an
// order of magnitude once checkpoints are on; redo work stays similar
// (the crash tail is the same).
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "engine/database.h"
#include "engine/table.h"

namespace rewinddb {
namespace {

/// Real steady time; simulated IO latency becomes a real sleep so the
/// analysis scan's log-block reads genuinely stall.
class SleepClock : public Clock {
 public:
  WallClock NowMicros() override {
    return static_cast<WallClock>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void AdvanceIo(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

Schema KvSchema() {
  return Schema({{"id", ColumnType::kInt32}, {"val", ColumnType::kString}},
                1);
}

std::string BenchBase() {
  std::filesystem::path base = std::filesystem::exists("/dev/shm")
                                   ? std::filesystem::path("/dev/shm")
                                   : std::filesystem::temp_directory_path();
  return (base / "rewinddb_micro_checkpoint").string();
}

/// Flat ~1 ms per log IO: cold analysis on spinning/networked media.
MediaProfile LogMedia() { return {"ckpt-sim", 0, 2.0}; }

/// Build a crashed database with ~3 MiB of committed history and a
/// small uncommitted tail. `interval_bytes` == 0 reproduces the
/// no-checkpoint regime (analysis must scan everything); non-zero lets
/// the byte trigger bound the scan.
std::string BuildCrashed(uint64_t interval_bytes) {
  std::string d = BenchBase() + "/crashed_" + std::to_string(interval_bytes);
  std::filesystem::remove_all(d);
  DatabaseOptions opts;
  opts.checkpoint_interval_bytes = interval_bytes;
  opts.archive_dir = "";  // measure the checkpoint effect in isolation
  auto db = Database::Create(d, opts);
  if (!db.ok()) return std::string();
  Transaction* txn = (*db)->Begin();
  if (!(*db)->CreateTable(txn, "t", KvSchema()).ok()) return std::string();
  if (!(*db)->Commit(txn).ok()) return std::string();
  auto table = (*db)->OpenTable("t");
  if (!table.ok()) return std::string();
  int id = 0;
  const Lsn start = (*db)->log()->next_lsn();
  while ((*db)->log()->next_lsn() - start < (3u << 20)) {
    Transaction* w = (*db)->Begin();
    for (int i = 0; i < 100; i++) {
      if (!table->Insert(w, {id++, std::string(120, 'h')}).ok()) {
        return std::string();
      }
    }
    if (!(*db)->Commit(w).ok()) return std::string();
  }
  // A loser in flight at the crash, so undo work exists in both runs.
  Transaction* loser = (*db)->Begin();
  for (int i = 0; i < 50; i++) {
    if (!table->Update(loser, {i, std::string(120, 'L')}).ok()) {
      return std::string();
    }
  }
  if (!(*db)->log()->FlushAll().ok()) return std::string();
  (*db)->SimulateCrash();
  return d;
}

void BM_CrashRecoveryAnalysis(benchmark::State& state) {
  const bool checkpoints = state.range(0) != 0;
  const uint64_t interval = checkpoints ? (256u << 10) : 0;
  const std::string crashed = BuildCrashed(interval);
  if (crashed.empty()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  SleepClock clock;
  double analysis_micros_total = 0;
  uint64_t analysis_records = 0;
  Lsn analysis_start = 0;
  int iter = 0;
  for (auto _ : state) {
    std::string dir = crashed + "_run" + std::to_string(iter++);
    std::filesystem::remove_all(dir);
    std::filesystem::copy(crashed, dir,
                          std::filesystem::copy_options::recursive);
    DatabaseOptions opts;
    opts.clock = &clock;
    opts.log_media = LogMedia();
    // Default block cache: a fresh Open starts cold, so the analysis
    // scan pays one real stall per 32 KiB block it covers (prefetch
    // keeps it at that), and the shorter scan pays fewer.
    opts.archive_dir = "";
    auto db = Database::Open(dir, opts);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    const RecoveryStats& rs = (*db)->recovery_stats();
    analysis_micros_total += static_cast<double>(rs.analysis_micros);
    analysis_records = rs.analysis_records;
    analysis_start = rs.analysis_start_lsn;
    state.SetIterationTime(static_cast<double>(rs.analysis_micros) / 1e6);
    (*db)->SimulateCrash();  // skip close-time checkpoint sleeps
    db->reset();
    std::filesystem::remove_all(dir);
  }
  state.counters["analysis_ms"] =
      analysis_micros_total / static_cast<double>(state.iterations()) /
      1000.0;
  state.counters["analysis_records"] =
      static_cast<double>(analysis_records);
  state.counters["analysis_start_lsn"] =
      static_cast<double>(analysis_start);
  state.counters["checkpoints"] = checkpoints ? 1 : 0;
  std::filesystem::remove_all(crashed);
}

BENCHMARK(BM_CrashRecoveryAnalysis)
    ->Arg(0)   // no checkpoints: whole-log analysis
    ->Arg(1)   // byte-triggered fuzzy checkpoints bound the scan
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rewinddb

BENCHMARK_MAIN();
