// Microbenchmarks for the core primitive: PreparePageAsOf cost as a
// function of chain length, with and without periodic full page images
// -- the ablation DESIGN.md calls out for the section 6.1 optimization.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "btree/btree.h"
#include "engine/database.h"
#include "snapshot/page_rewinder.h"

namespace rewinddb {
namespace {

struct RewindFixture {
  std::string dir;
  std::unique_ptr<Database> db;
  TreeId tree_root = kInvalidPageId;
  PageId leaf = kInvalidPageId;
  Lsn as_of = kInvalidLsn;
  char page[kPageSize];

  static RewindFixture* Build(int chain_len, uint32_t fpi_period) {
    auto* f = new RewindFixture();
    f->dir = (std::filesystem::temp_directory_path() / "rewinddb_microbench" /
              ("c" + std::to_string(chain_len) + "_f" +
               std::to_string(fpi_period)))
                 .string();
    std::filesystem::remove_all(f->dir);
    DatabaseOptions opts;
    opts.fpi_period = fpi_period;
    auto db = Database::Create(f->dir, opts);
    if (!db.ok()) return nullptr;
    f->db = std::move(*db);

    Transaction* txn = f->db->Begin();
    auto root = BTree::Create(f->db->write_ctx(), txn);
    if (!root.ok()) return nullptr;
    f->tree_root = *root;
    BTree tree(*root);
    Status s = tree.Insert(f->db->write_ctx(), txn, "key", "v0");
    if (!s.ok()) return nullptr;
    if (!f->db->Commit(txn).ok()) return nullptr;
    f->as_of = f->db->log()->next_lsn();

    // Build the chain: `chain_len` updates of the single row.
    Transaction* upd = f->db->Begin();
    for (int i = 0; i < chain_len; i++) {
      s = tree.Update(f->db->write_ctx(), upd, "key",
                      "value" + std::to_string(i));
      if (!s.ok()) return nullptr;
    }
    if (!f->db->Commit(upd).ok()) return nullptr;

    auto path = tree.FindLeafPath(f->db->buffers(), "key");
    if (!path.ok()) return nullptr;
    f->leaf = path->back();
    auto guard = f->db->buffers()->FetchPage(f->leaf, AccessMode::kRead);
    if (!guard.ok()) return nullptr;
    memcpy(f->page, guard->data(), kPageSize);
    return f;
  }

  ~RewindFixture() {
    db.reset();
    std::filesystem::remove_all(dir);
  }
};

void BM_PreparePageAsOf(benchmark::State& state) {
  int chain_len = static_cast<int>(state.range(0));
  uint32_t fpi = static_cast<uint32_t>(state.range(1));
  std::unique_ptr<RewindFixture> f(RewindFixture::Build(chain_len, fpi));
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  PageRewinder rewinder(f->db->log());
  char work[kPageSize];
  for (auto _ : state) {
    memcpy(work, f->page, kPageSize);
    Status s = rewinder.PreparePageAsOf(work, f->as_of);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(work[100]);
  }
  state.counters["chain"] = chain_len;
  state.counters["records_undone_total"] =
      static_cast<double>(rewinder.records_undone());
  state.counters["fpi_jumps_total"] =
      static_cast<double>(rewinder.fpi_jumps());
}

// Chain length sweep without images, then with every-16th images: the
// with-images runs should flatten out.
BENCHMARK(BM_PreparePageAsOf)
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({8, 16})
    ->Args({64, 16})
    ->Args({256, 16})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rewinddb

BENCHMARK_MAIN();
