// Shared harness for the paper-reproduction benchmarks.
//
// The latency experiments (figures 7-11) run on a simulated clock: a
// TPC-C history is generated minute by minute, the clock is advanced
// explicitly, and every IO the engine performs is charged to the clock
// through the media models (SSD / 10K SAS). Reported "seconds" are
// simulated seconds; the shapes -- who wins, growth in the time
// travelled, media sensitivity -- are the reproduction target, not the
// absolute values of the authors' 2012 testbed.
//
// The cold bulk of the paper's 40 GB database is emulated by extending
// the data file with filler pages: they cost restore (which copies every
// byte) but not the as-of query (which touches only accessed pages).
#ifndef REWINDDB_BENCH_BENCH_COMMON_H_
#define REWINDDB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/connection.h"
#include "api/read_view.h"
#include "backup/backup_manager.h"
#include "common/random.h"
#include "engine/database.h"
#include "snapshot/asof_snapshot.h"
#include "tpcc/tpcc.h"

namespace rewinddb {
namespace bench {

constexpr uint64_t kSecond = 1'000'000;
constexpr uint64_t kMinute = 60 * kSecond;

struct HistoryOptions {
  MediaProfile data_media = MediaProfile::Ssd();
  MediaProfile log_media = MediaProfile::Ssd();
  int minutes = 50;
  int orders_per_minute = 60;
  int checkpoint_every_minutes = 5;
  uint64_t filler_pages = 20000;  // ~160 MiB of cold data
  uint32_t fpi_period = 16;
  int warehouses = 2;
  int items = 800;
  /// Percent of generated orders aimed at warehouse 1 (the warehouse the
  /// as-of query reads): models the paper's setup where the queried
  /// district is a tiny, moderately-hot fraction of a large database.
  int hot_warehouse_percent = 10;
  size_t log_cache_blocks = 32;  // small: as-of log reads mostly stall
  /// Shared version store budget. The paper's experiments model an
  /// ad-hoc recovery query with nothing warmed up, so histories default
  /// to 0 (disabled) to keep the figure shapes faithful; the dedicated
  /// version-store sections re-enable it at runtime via SetBudget to
  /// show the cache-on vs cache-off delta.
  size_t version_store_bytes = 0;
};

struct History {
  std::string dir;
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<Database> db;
  std::unique_ptr<TpccDatabase> tpcc;
  BackupInfo backup;
  /// marks[i] = simulated wall-clock at the end of minute i (1-based
  /// position i corresponds to marks[i-1]).
  std::vector<WallClock> minute_marks;

  ~History() {
    tpcc.reset();
    db.reset();
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

inline std::string BenchDir(const std::string& name) {
  // Prefer tmpfs: the paper ran the log on dedicated fast media where
  // sequential log IO was "easily sustainable"; a slow host filesystem
  // would make every group-commit fdatasync the bottleneck and measure
  // the host, not the engine.
  std::filesystem::path base = std::filesystem::exists("/dev/shm")
                                   ? std::filesystem::path("/dev/shm")
                                   : std::filesystem::temp_directory_path();
  auto dir = base / "rewinddb_bench" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir.parent_path());
  return dir.string();
}

/// Build a TPC-C database, take a base backup, then generate `minutes`
/// of simulated activity with per-minute time marks.
inline Result<std::unique_ptr<History>> BuildHistory(
    const std::string& name, const HistoryOptions& opts) {
  auto h = std::make_unique<History>();
  h->dir = BenchDir(name);
  h->clock = std::make_unique<SimClock>(kMinute);

  DatabaseOptions dbo;
  dbo.clock = h->clock.get();
  dbo.data_media = opts.data_media;
  dbo.log_media = opts.log_media;
  dbo.buffer_pool_pages = 4096;
  dbo.log_cache_blocks = opts.log_cache_blocks;
  dbo.fpi_period = opts.fpi_period;
  dbo.version_store_bytes = opts.version_store_bytes;
  REWIND_ASSIGN_OR_RETURN(h->db, Database::Create(h->dir + "/db", dbo));

  TpccConfig tc;
  tc.warehouses = opts.warehouses;
  tc.items = opts.items;
  tc.customers_per_district = 30;
  REWIND_ASSIGN_OR_RETURN(h->tpcc,
                          TpccDatabase::CreateAndLoad(h->db.get(), tc));

  // Cold-data filler: raw pages appended to the data file. They are
  // never referenced by any tree; they exist so a full restore has the
  // paper's "whole database" to copy.
  {
    char zero[kPageSize];
    memset(zero, 0, sizeof(zero));
    PageId base = h->db->data_file()->NumPages();
    for (uint64_t i = 0; i < opts.filler_pages; i++) {
      REWIND_RETURN_IF_ERROR(h->db->data_file()->WritePage(
          base + static_cast<PageId>(i), zero));
    }
  }

  // The base backup the restore experiments roll forward from.
  REWIND_ASSIGN_OR_RETURN(h->backup,
                          BackupManager::BackupFull(h->db.get(),
                                                    h->dir + "/base.bak"));

  Random rnd(4242);
  for (int minute = 1; minute <= opts.minutes; minute++) {
    for (int i = 0; i < opts.orders_per_minute; i++) {
      int w = rnd.Percent(static_cast<uint32_t>(opts.hot_warehouse_percent))
                  ? 1
                  : 1 + static_cast<int>(rnd.UniformRange(
                            1, opts.warehouses > 1 ? opts.warehouses - 1
                                                   : 1));
      Status s = h->tpcc->NewOrder(&rnd, w);
      if (!s.ok() && !s.IsAborted()) return s;
      if (i % 3 == 0) {
        s = h->tpcc->Payment(&rnd);
        if (!s.ok() && !s.IsAborted()) return s;
      }
      // Spread the minute across the transactions.
      h->clock->Advance(kMinute / opts.orders_per_minute);
    }
    if (minute % opts.checkpoint_every_minutes == 0) {
      REWIND_RETURN_IF_ERROR(h->db->Checkpoint());
    }
    h->minute_marks.push_back(h->clock->NowMicros());
  }
  REWIND_RETURN_IF_ERROR(h->db->log()->FlushAll());
  return h;
}

/// Wall-clock target for "T minutes back from the end of the history".
inline WallClock MinutesBack(const History& h, int t) {
  int idx = static_cast<int>(h.minute_marks.size()) - t;
  if (idx < 0) idx = 0;
  return h.minute_marks[static_cast<size_t>(idx)];
}

struct AsOfCost {
  double create_seconds = 0;  // snapshot creation incl. recovery
  double query_seconds = 0;   // the stock-level as-of query
  uint64_t undo_log_ios = 0;  // log cache misses during the query
  uint64_t records_undone = 0;
  uint64_t fpi_jumps = 0;
  /// Shared version store traffic during the query (0 when disabled).
  uint64_t vs_exact_hits = 0;
  uint64_t vs_partial_hits = 0;
  /// Mount-phase breakdown (simulated micros): analysis scan, lock
  /// re-acquisition (the redo-stage work) and background undo, plus
  /// the replay worker count the undo ran with.
  uint64_t analysis_micros = 0;
  uint64_t redo_micros = 0;
  uint64_t undo_micros = 0;
  int replay_threads = 1;
  int result = 0;
};

/// Create an as-of snapshot T minutes back and run the stock-level
/// query against it, measuring simulated costs.
inline Result<AsOfCost> MeasureAsOf(History* h, int minutes_back,
                                    const std::string& snap_name) {
  AsOfCost out;
  WallClock target = MinutesBack(*h, minutes_back);
  // Cold log cache: the paper's scenario is an ad-hoc recovery query,
  // not a warmed-up reporting loop.
  h->db->log()->DropCache();

  WallClock t0 = h->clock->NowMicros();
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<AsOfSnapshot> snap,
      AsOfSnapshot::Create(h->db.get(), snap_name, target));
  REWIND_RETURN_IF_ERROR(snap->WaitForUndo());
  WallClock t1 = h->clock->NowMicros();
  out.analysis_micros = snap->creation_stats().analysis_micros;
  out.redo_micros = snap->creation_stats().redo_micros;
  out.undo_micros = snap->creation_stats().undo_micros;
  out.replay_threads = snap->creation_stats().replay_threads;

  uint64_t miss0 = h->db->stats()->log_read_misses.load();
  uint64_t undone0 = snap->rewinder()->records_undone();
  uint64_t jumps0 = snap->rewinder()->fpi_jumps();
  VersionStore::Stats vs0 = h->db->version_store()->stats();
  std::unique_ptr<ReadView> view = WrapSnapshot(snap.get());
  REWIND_ASSIGN_OR_RETURN(out.result,
                          TpccDatabase::StockLevelOn(view.get(), 1, 1, 60));
  WallClock t2 = h->clock->NowMicros();

  VersionStore::Stats vs1 = h->db->version_store()->stats();
  out.create_seconds = static_cast<double>(t1 - t0) / kSecond;
  out.query_seconds = static_cast<double>(t2 - t1) / kSecond;
  out.undo_log_ios = h->db->stats()->log_read_misses.load() - miss0;
  out.records_undone = snap->rewinder()->records_undone() - undone0;
  out.fpi_jumps = snap->rewinder()->fpi_jumps() - jumps0;
  out.vs_exact_hits = vs1.exact_hits - vs0.exact_hits;
  out.vs_partial_hits = vs1.partial_hits - vs0.partial_hits;
  return out;
}

/// Lazy-mount costs for the same experiment: create records only the
/// SplitLSN (no checkpoint, no analysis wait), so the interesting split
/// is create vs FIRST query -- the first query pays the on-demand page
/// recoveries the eager mount front-loaded.
struct LazyAsOfCost {
  double create_seconds = 0;       // split search + store setup only
  double first_query_seconds = 0;  // includes on-demand recovery
  uint64_t pages_recovered_on_demand = 0;
  uint64_t index_build_micros = 0;  // background (sweeper) cost
  int result = 0;
};

/// Lazily mount an as-of snapshot T minutes back and run the
/// stock-level query against it immediately -- without waiting for the
/// background sweeper -- so the measurement reflects what an impatient
/// investigator sees.
inline Result<LazyAsOfCost> MeasureLazyAsOf(History* h, int minutes_back,
                                            const std::string& snap_name) {
  LazyAsOfCost out;
  WallClock target = MinutesBack(*h, minutes_back);
  h->db->log()->DropCache();

  WallClock t0 = h->clock->NowMicros();
  REWIND_ASSIGN_OR_RETURN(
      std::unique_ptr<AsOfSnapshot> snap,
      AsOfSnapshot::Create(h->db.get(), snap_name, target,
                           MountMode::kLazy));
  WallClock t1 = h->clock->NowMicros();
  std::unique_ptr<ReadView> view = WrapSnapshot(snap.get());
  REWIND_ASSIGN_OR_RETURN(out.result,
                          TpccDatabase::StockLevelOn(view.get(), 1, 1, 60));
  WallClock t2 = h->clock->NowMicros();

  out.create_seconds = static_cast<double>(t1 - t0) / kSecond;
  out.first_query_seconds = static_cast<double>(t2 - t1) / kSecond;
  out.pages_recovered_on_demand = snap->pages_recovered_on_demand();
  // Let the sweeper settle before the snapshot drops, so its background
  // IO is not still charging the clock into the next measurement.
  (void)snap->WaitForUndo();
  out.index_build_micros = snap->creation_stats().index_build_micros;
  return out;
}

/// Restore the base backup to T minutes back, measuring simulated cost.
inline Result<double> MeasureRestore(History* h, int minutes_back,
                                     const std::string& dest_name) {
  WallClock target = MinutesBack(*h, minutes_back);
  DatabaseOptions ropts;
  ropts.clock = h->clock.get();
  ropts.data_media = h->db->options().data_media;
  ropts.log_media = h->db->options().log_media;
  ropts.buffer_pool_pages = 4096;
  WallClock t0 = h->clock->NowMicros();
  REWIND_ASSIGN_OR_RETURN(
      RestoreResult r,
      BackupManager::RestoreToTime(h->db.get(), h->backup,
                                   h->dir + "/" + dest_name, target, ropts));
  // Include the cost of actually getting at the data, as the paper's
  // end-to-end comparison does.
  TpccConfig tc;
  REWIND_ASSIGN_OR_RETURN(std::unique_ptr<TpccDatabase> rt,
                          TpccDatabase::Attach(r.database.get(), tc));
  REWIND_ASSIGN_OR_RETURN(int low, rt->StockLevel(1, 1, 60));
  (void)low;
  WallClock t1 = h->clock->NowMicros();
  r.database->SimulateCrash();  // skip close-time checkpoint charges
  return static_cast<double>(t1 - t0) / kSecond;
}

inline void PrintHeader(const std::string& title,
                        const char* paper_summary);

/// End-of-run engine counters through the public Connection surface:
/// the sharded buffer pool (hits/misses/evictions summed per shard)
/// next to the shared version store, so cache behaviour is visible in
/// every figure run.
inline void PrintEngineStats(Database* db) {
  std::unique_ptr<Connection> conn = Connection::Attach(db);
  BufferManager::Stats bs = conn->BufferStats();
  VersionStore::Stats vs = conn->VersionStoreStats();
  printf("\nbuffer pool: %llu hits, %llu misses, %llu evictions "
         "(%zu shards x ~%zu frames)\n",
         static_cast<unsigned long long>(bs.hits),
         static_cast<unsigned long long>(bs.misses),
         static_cast<unsigned long long>(bs.evictions), bs.shards,
         bs.shards > 0 ? bs.pool_pages / bs.shards : bs.pool_pages);
  printf("version store: %llu exact, %llu partial, %llu misses, "
         "%llu published, %llu evicted\n",
         static_cast<unsigned long long>(vs.exact_hits),
         static_cast<unsigned long long>(vs.partial_hits),
         static_cast<unsigned long long>(vs.misses),
         static_cast<unsigned long long>(vs.published),
         static_cast<unsigned long long>(vs.evictions));
  wal::WalStats ws = db->log()->stats();
  if (ws.frames_written > 0 || ws.fpi_delta_hits > 0) {
    printf("wal diet: %llu frames (%llu -> %llu bytes), "
           "%llu delta FPIs / %llu full\n",
           static_cast<unsigned long long>(ws.frames_written),
           static_cast<unsigned long long>(ws.frame_logical_bytes),
           static_cast<unsigned long long>(ws.frame_physical_bytes),
           static_cast<unsigned long long>(ws.fpi_delta_hits),
           static_cast<unsigned long long>(ws.fpi_delta_fallbacks));
  }
  printf("JSON {\"section\":\"engine_stats\",\"buffer_hits\":%llu,"
         "\"buffer_misses\":%llu,\"buffer_evictions\":%llu,"
         "\"buffer_shards\":%zu,\"vs_exact_hits\":%llu,"
         "\"vs_partial_hits\":%llu,\"vs_misses\":%llu,"
         "\"vs_published\":%llu,\"vs_evictions\":%llu,"
         "\"wal_frames_written\":%llu,\"wal_frame_logical_bytes\":%llu,"
         "\"wal_frame_physical_bytes\":%llu,\"wal_fpi_delta_hits\":%llu,"
         "\"wal_fpi_delta_fallbacks\":%llu}\n",
         static_cast<unsigned long long>(bs.hits),
         static_cast<unsigned long long>(bs.misses),
         static_cast<unsigned long long>(bs.evictions), bs.shards,
         static_cast<unsigned long long>(vs.exact_hits),
         static_cast<unsigned long long>(vs.partial_hits),
         static_cast<unsigned long long>(vs.misses),
         static_cast<unsigned long long>(vs.published),
         static_cast<unsigned long long>(vs.evictions),
         static_cast<unsigned long long>(ws.frames_written),
         static_cast<unsigned long long>(ws.frame_logical_bytes),
         static_cast<unsigned long long>(ws.frame_physical_bytes),
         static_cast<unsigned long long>(ws.fpi_delta_hits),
         static_cast<unsigned long long>(ws.fpi_delta_fallbacks));
}

/// Deterministic throughput probe: run the standard mix on one worker
/// until `target_new_orders` commit; returns tpmC from the elapsed real
/// time. Far more stable on small hosts than timed multi-thread runs.
inline double RunFixedWork(TpccDatabase* tpcc, int target_new_orders,
                           uint64_t seed) {
  Random rnd(seed);
  auto t0 = std::chrono::steady_clock::now();
  int committed = 0;
  while (committed < target_new_orders) {
    uint64_t pick = rnd.Uniform(100);
    if (pick < 48) {
      if (tpcc->NewOrder(&rnd).ok()) committed++;
    } else if (pick < 92) {
      (void)tpcc->Payment(&rnd);
    } else if (pick < 96) {
      (void)tpcc->OrderStatus(&rnd);
    } else {
      (void)tpcc->Delivery(&rnd);
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  double micros = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
  return micros > 0 ? target_new_orders * 60'000'000.0 / micros : 0;
}

/// Shared driver for figures 7 and 8: sweep minutes-back, comparing the
/// as-of path against restore+replay on the given media.
inline void RunAsofVsRestore(const MediaProfile& media, const char* fig,
                             const char* paper_line) {
  HistoryOptions ho;
  ho.data_media = media;
  ho.log_media = media;
  auto history = BuildHistory(std::string(fig) + "_hist", ho);
  if (!history.ok()) {
    printf("history build failed: %s\n",
           history.status().ToString().c_str());
    return;
  }
  History* h = history->get();

  PrintHeader(std::string(fig) +
                  ": as-of query vs restore+replay, media = " + media.name,
              paper_line);
  printf("%-12s %16s %16s %10s\n", "minutes back", "as-of total (s)",
         "restore (s)", "ratio");
  const int sweeps[] = {1, 2, 5, 10, 20, 40};
  int i = 0;
  for (int t : sweeps) {
    auto asof = MeasureAsOf(h, t, "asof" + std::to_string(i));
    if (!asof.ok()) {
      printf("as-of failed: %s\n", asof.status().ToString().c_str());
      return;
    }
    auto restore = MeasureRestore(h, t, "restored" + std::to_string(i));
    if (!restore.ok()) {
      printf("restore failed: %s\n", restore.status().ToString().c_str());
      return;
    }
    double asof_total = asof->create_seconds + asof->query_seconds;
    printf("%-12d %16.3f %16.3f %9.1fx\n", t, asof_total, *restore,
           asof_total > 0 ? *restore / asof_total : 0.0);
    i++;
  }
  PrintEngineStats(h->db.get());
  printf("\nexpected shape: as-of grows with minutes back; restore is "
         "~flat and much larger for recent targets\n");
}

/// Shared driver for figures 9 and 10: split the as-of cost into
/// snapshot creation vs query.
inline void RunCreateVsQuery(const MediaProfile& media, const char* fig,
                             const char* paper_line) {
  HistoryOptions ho;
  ho.data_media = media;
  ho.log_media = media;
  auto history = BuildHistory(std::string(fig) + "_hist", ho);
  if (!history.ok()) {
    printf("history build failed: %s\n",
           history.status().ToString().c_str());
    return;
  }
  History* h = history->get();
  PrintHeader(std::string(fig) +
                  ": snapshot creation vs as-of query, media = " + media.name,
              paper_line);
  printf("%-12s %14s %14s %12s %10s %10s\n", "minutes back", "create (s)",
         "query (s)", "analysis(ms)", "redo(ms)", "undo(ms)");
  const int sweeps[] = {1, 2, 5, 10, 20, 40};
  std::vector<double> eager_create_s;
  int i = 0;
  for (int t : sweeps) {
    auto asof = MeasureAsOf(h, t, "cq" + std::to_string(i++));
    if (!asof.ok()) {
      printf("as-of failed: %s\n", asof.status().ToString().c_str());
      return;
    }
    eager_create_s.push_back(asof->create_seconds);
    printf("%-12d %14.3f %14.3f %12.1f %10.1f %10.1f\n", t,
           asof->create_seconds, asof->query_seconds,
           static_cast<double>(asof->analysis_micros) / 1000.0,
           static_cast<double>(asof->redo_micros) / 1000.0,
           static_cast<double>(asof->undo_micros) / 1000.0);
    printf("JSON {\"bench\":\"%s\",\"section\":\"create_vs_query\","
           "\"minutes_back\":%d,\"create_s\":%.3f,\"query_s\":%.3f,"
           "\"analysis_ms\":%.1f,\"redo_ms\":%.1f,\"undo_ms\":%.1f,"
           "\"replay_threads\":%d,\"records_undone\":%llu}\n",
           fig, t, asof->create_seconds, asof->query_seconds,
           static_cast<double>(asof->analysis_micros) / 1000.0,
           static_cast<double>(asof->redo_micros) / 1000.0,
           static_cast<double>(asof->undo_micros) / 1000.0,
           asof->replay_threads,
           static_cast<unsigned long long>(asof->records_undone));
  }
  printf("\nexpected shape: creation ~flat (bounded by log scanned from "
         "the nearest checkpoint); query grows with minutes back\n");

  // Lazy mounts over the same sweep: creation records only the
  // SplitLSN (waypoint-narrowed search, no checkpoint, no analysis
  // wait), so lazy create stays O(1)-flat even where the eager create
  // grows with log-since-checkpoint; the first query pays the
  // on-demand page recoveries instead.
  printf("\n-- lazy mounts: create vs FIRST query (on-demand recovery) --\n");
  printf("%-12s %16s %16s %16s %12s\n", "minutes back", "lazy create (ms)",
         "eager create (s)", "1st query (s)", "pages/demand");
  i = 0;
  for (int t : sweeps) {
    auto lazy = MeasureLazyAsOf(h, t, "lz" + std::to_string(i));
    if (!lazy.ok()) {
      printf("lazy as-of failed: %s\n", lazy.status().ToString().c_str());
      return;
    }
    printf("%-12d %16.3f %16.3f %16.3f %12llu\n", t,
           lazy->create_seconds * 1000.0,
           eager_create_s[static_cast<size_t>(i)],
           lazy->first_query_seconds,
           static_cast<unsigned long long>(lazy->pages_recovered_on_demand));
    printf("JSON {\"bench\":\"%s\",\"section\":\"lazy_mount\","
           "\"minutes_back\":%d,\"create_ms\":%.3f,"
           "\"first_query_ms\":%.1f,\"pages_recovered_on_demand\":%llu,"
           "\"index_build_ms\":%.1f,\"eager_create_ms\":%.1f}\n",
           fig, t, lazy->create_seconds * 1000.0,
           lazy->first_query_seconds * 1000.0,
           static_cast<unsigned long long>(lazy->pages_recovered_on_demand),
           static_cast<double>(lazy->index_build_micros) / 1000.0,
           eager_create_s[static_cast<size_t>(i)] * 1000.0);
    i++;
  }
  printf("\nexpected shape: lazy create flat and orders of magnitude "
         "below eager create; the first query absorbs the recovery cost "
         "for exactly the pages it touches\n");

  // Shared version store (cache-on vs the cache-off sweep above): the
  // first snapshot at a target pays the full chain walks and publishes
  // its rewound pages; a second snapshot at the SAME target then
  // materializes from the store (exact hits, ~no records undone), and
  // the paper's "concurrent as-of queries repeat the undo work"
  // overhead (section 6.3) collapses to the gap between targets.
  printf("\n-- shared version store: second snapshot at the same time --\n");
  printf("%-12s %16s %16s %12s %12s\n", "minutes back", "1st undone",
         "2nd undone", "2nd exact", "2nd partial");
  h->db->version_store()->SetBudget(64ull << 20);
  for (int t : {5, 20}) {
    h->db->version_store()->Clear();
    h->db->version_store()->ResetStats();
    auto first = MeasureAsOf(h, t, "vs_cold" + std::to_string(t));
    if (!first.ok()) {
      printf("as-of failed: %s\n", first.status().ToString().c_str());
      return;
    }
    auto second = MeasureAsOf(h, t, "vs_warm" + std::to_string(t));
    if (!second.ok()) {
      printf("as-of failed: %s\n", second.status().ToString().c_str());
      return;
    }
    VersionStore::Stats vs = h->db->version_store()->stats();
    printf("%-12d %16llu %16llu %12llu %12llu\n", t,
           static_cast<unsigned long long>(first->records_undone),
           static_cast<unsigned long long>(second->records_undone),
           static_cast<unsigned long long>(second->vs_exact_hits),
           static_cast<unsigned long long>(second->vs_partial_hits));
    printf("JSON {\"bench\":\"%s\",\"section\":\"version_store\","
           "\"minutes_back\":%d,\"first_records_undone\":%llu,"
           "\"second_records_undone\":%llu,\"second_exact_hits\":%llu,"
           "\"second_partial_hits\":%llu,\"published\":%llu,"
           "\"evictions\":%llu,\"first_query_s\":%.3f,"
           "\"second_query_s\":%.3f}\n",
           fig, t,
           static_cast<unsigned long long>(first->records_undone),
           static_cast<unsigned long long>(second->records_undone),
           static_cast<unsigned long long>(second->vs_exact_hits),
           static_cast<unsigned long long>(second->vs_partial_hits),
           static_cast<unsigned long long>(vs.published),
           static_cast<unsigned long long>(vs.evictions),
           first->query_seconds, second->query_seconds);
  }
  PrintEngineStats(h->db.get());
  printf("\nexpected shape: the second snapshot undoes >=50%% fewer "
         "records (near zero: exact hits replace entire chain walks)\n");
}

inline void PrintHeader(const std::string& title,
                        const char* paper_summary) {
  printf("==================================================================\n");
  printf("%s\n", title.c_str());
  printf("paper: %s\n", paper_summary);
  printf("------------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace rewinddb

#endif  // REWINDDB_BENCH_BENCH_COMMON_H_
