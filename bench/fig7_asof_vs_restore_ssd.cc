// Figure 7: end-to-end time to reach as-of data, SSD media, comparing
// the as-of snapshot query against full restore + log replay, as a
// function of how far back in time the target lies.
//
// Paper result (SSD): as-of query 5-18 s growing with distance back;
// restore 12-26 minutes, roughly flat. The as-of path wins by orders of
// magnitude for recent targets.
#include "bench_common.h"

int main() {
  rewinddb::bench::RunAsofVsRestore(
      rewinddb::MediaProfile::Ssd(), "fig7",
      "SSD: as-of 5-18 s (growing); restore 12-26 min (flat)");
  return 0;
}
