// Microbenchmarks for the log layer: record encode/decode and append
// throughput (the paper's observation that record COUNT, not size,
// limits throughput hinges on the per-append synchronization this
// measures).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "log/log_manager.h"
#include "log/log_record.h"
#include "page/page.h"

namespace rewinddb {
namespace {

LogRecord SampleRecord(size_t payload) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn_id = 42;
  rec.prev_lsn = 1000;
  rec.prev_page_lsn = 900;
  rec.prev_fpi_lsn = 800;
  rec.page_id = 7;
  rec.tree_id = 5;
  rec.slot = 3;
  rec.image = std::string(payload, 'x');
  return rec;
}

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    rec.EncodeTo(&buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_LogRecordEncode)->Arg(64)->Arg(512)->Arg(4096);

void BM_LogRecordDecode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  std::string buf;
  rec.EncodeTo(&buf);
  size_t consumed;
  for (auto _ : state) {
    auto out = LogRecord::Decode(buf, &consumed);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_LogRecordDecode)->Arg(64)->Arg(512)->Arg(4096);

void BM_LogAppend(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "append.log").string();
  std::filesystem::remove(path);
  auto lm = LogManager::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize((*lm)->Append(rec));
  }
  Status s = (*lm)->FlushAll();
  if (!s.ok()) state.SkipWithError("flush failed");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_LogAppend)->Arg(64)->Arg(512);

void BM_LogRandomRead(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "read.log").string();
  std::filesystem::remove(path);
  LogManagerOptions opts;
  opts.cache_blocks = static_cast<size_t>(state.range(1));
  auto lm = LogManager::Create(path, nullptr, nullptr, opts);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(256);
  std::vector<Lsn> lsns;
  for (int i = 0; i < 4000; i++) lsns.push_back((*lm)->Append(rec));
  Status s = (*lm)->FlushAll();
  if (!s.ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  uint64_t x = 88172645463325252ULL;
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    auto r = (*lm)->ReadRecord(lsns[x % lsns.size()]);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
// Second arg: cache blocks (0 = every read is a device read).
BENCHMARK(BM_LogRandomRead)->Args({0, 0})->Args({0, 256});

}  // namespace
}  // namespace rewinddb

BENCHMARK_MAIN();
