// Microbenchmarks for the log layer: record encode/decode, append
// throughput through the wal surface (the paper's observation that
// record COUNT, not size, limits throughput hinges on the per-append
// synchronization this measures), random cursor reads, and sequential
// cursor scans.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "log/log_record.h"
#include "page/page.h"
#include "wal/wal.h"
#include "wal/wal_writer.h"

namespace rewinddb {
namespace {

LogRecord SampleRecord(size_t payload) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn_id = 42;
  rec.prev_lsn = 1000;
  rec.prev_page_lsn = 900;
  rec.prev_fpi_lsn = 800;
  rec.page_id = 7;
  rec.tree_id = 5;
  rec.slot = 3;
  rec.image = std::string(payload, 'x');
  return rec;
}

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    rec.EncodeTo(&buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_LogRecordEncode)->Arg(64)->Arg(512)->Arg(4096);

void BM_LogRecordDecode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  std::string buf;
  rec.EncodeTo(&buf);
  size_t consumed;
  for (auto _ : state) {
    auto out = LogRecord::Decode(buf, &consumed);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_LogRecordDecode)->Arg(64)->Arg(512)->Arg(4096);

void BM_WalAppend(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "append.log").string();
  std::filesystem::remove(path);
  auto lm = wal::Wal::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize((*lm)->Append(rec));
  }
  Status s = (*lm)->FlushAll();
  if (!s.ok()) state.SkipWithError("flush failed");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(512);

void BM_WriterStagedAppend(benchmark::State& state) {
  // The wal::Writer path: encode outside the append lock, publish with
  // a staged BEGIN riding along on the first record.
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "writer_append.log").string();
  std::filesystem::remove(path);
  auto lm = wal::Wal::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  wal::Writer writer = (*lm)->MakeWriter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.Append(rec));
  }
  Status s = (*lm)->FlushAll();
  if (!s.ok()) state.SkipWithError("flush failed");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_WriterStagedAppend)->Arg(64)->Arg(512);

void BM_CursorRandomRead(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "read.log").string();
  std::filesystem::remove(path);
  wal::WalOptions opts;
  opts.cache_blocks = static_cast<size_t>(state.range(1));
  auto lm = wal::Wal::Create(path, nullptr, nullptr, opts);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(256);
  std::vector<Lsn> lsns;
  for (int i = 0; i < 4000; i++) lsns.push_back((*lm)->Append(rec));
  Status s = (*lm)->FlushAll();
  if (!s.ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  uint64_t x = 88172645463325252ULL;
  wal::Cursor cur = (*lm)->OpenCursor();
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    s = cur.SeekTo(lsns[x % lsns.size()]);
    benchmark::DoNotOptimize(s.ok() && cur.Valid());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
// Second arg: cache blocks (0 = every read is a device read).
BENCHMARK(BM_CursorRandomRead)->Args({0, 0})->Args({0, 256});

void BM_CursorSequentialScan(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "scan.log").string();
  std::filesystem::remove(path);
  auto lm = wal::Wal::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(256);
  for (int i = 0; i < 4000; i++) (*lm)->Append(rec);
  Status s = (*lm)->FlushAll();
  if (!s.ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  for (auto _ : state) {
    wal::Cursor cur = (*lm)->OpenCursor();
    s = cur.SeekTo((*lm)->start_lsn());
    int64_t n = 0;
    while (s.ok() && cur.Valid()) {
      n++;
      s = cur.Next();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4000);
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_CursorSequentialScan);

}  // namespace
}  // namespace rewinddb

BENCHMARK_MAIN();
