// Microbenchmarks for the log layer: record encode/decode, append
// throughput through the wal surface (the paper's observation that
// record COUNT, not size, limits throughput hinges on the per-append
// synchronization this measures), random cursor reads, sequential
// cursor scans, and the WAL-diet compressed flush path.
//
// `micro_log --smoke` skips the benchmarks and runs only the CI gate:
// an FPI-heavy workload through a compressed Wal must shrink on disk
// by more than 1.2x, else the process exits nonzero.
#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "log/log_record.h"
#include "page/page.h"
#include "wal/wal.h"
#include "wal/wal_writer.h"

namespace rewinddb {
namespace {

LogRecord SampleRecord(size_t payload) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn_id = 42;
  rec.prev_lsn = 1000;
  rec.prev_page_lsn = 900;
  rec.prev_fpi_lsn = 800;
  rec.page_id = 7;
  rec.tree_id = 5;
  rec.slot = 3;
  rec.image = std::string(payload, 'x');
  return rec;
}

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    rec.EncodeTo(&buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_LogRecordEncode)->Arg(64)->Arg(512)->Arg(4096);

void BM_LogRecordDecode(benchmark::State& state) {
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  std::string buf;
  rec.EncodeTo(&buf);
  size_t consumed;
  for (auto _ : state) {
    auto out = LogRecord::Decode(buf, &consumed);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_LogRecordDecode)->Arg(64)->Arg(512)->Arg(4096);

void BM_WalAppend(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "append.log").string();
  std::filesystem::remove(path);
  auto lm = wal::Wal::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize((*lm)->Append(rec));
  }
  Status s = (*lm)->FlushAll();
  if (!s.ok()) state.SkipWithError("flush failed");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(512);

void BM_WriterStagedAppend(benchmark::State& state) {
  // The wal::Writer path: encode outside the append lock, publish with
  // a staged BEGIN riding along on the first record.
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "writer_append.log").string();
  std::filesystem::remove(path);
  auto lm = wal::Wal::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(static_cast<size_t>(state.range(0)));
  wal::Writer writer = (*lm)->MakeWriter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.Append(rec));
  }
  Status s = (*lm)->FlushAll();
  if (!s.ok()) state.SkipWithError("flush failed");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_WriterStagedAppend)->Arg(64)->Arg(512);

void BM_CursorRandomRead(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "read.log").string();
  std::filesystem::remove(path);
  wal::WalOptions opts;
  opts.cache_blocks = static_cast<size_t>(state.range(1));
  auto lm = wal::Wal::Create(path, nullptr, nullptr, opts);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(256);
  std::vector<Lsn> lsns;
  for (int i = 0; i < 4000; i++) lsns.push_back((*lm)->Append(rec));
  Status s = (*lm)->FlushAll();
  if (!s.ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  uint64_t x = 88172645463325252ULL;
  wal::Cursor cur = (*lm)->OpenCursor();
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    s = cur.SeekTo(lsns[x % lsns.size()]);
    benchmark::DoNotOptimize(s.ok() && cur.Valid());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  lm->reset();
  std::filesystem::remove(path);
}
// Second arg: cache blocks (0 = every read is a device read).
BENCHMARK(BM_CursorRandomRead)->Args({0, 0})->Args({0, 256});

void BM_CursorSequentialScan(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "scan.log").string();
  std::filesystem::remove(path);
  auto lm = wal::Wal::Create(path, nullptr, nullptr);
  if (!lm.ok()) {
    state.SkipWithError("log create failed");
    return;
  }
  LogRecord rec = SampleRecord(256);
  for (int i = 0; i < 4000; i++) (*lm)->Append(rec);
  Status s = (*lm)->FlushAll();
  if (!s.ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  for (auto _ : state) {
    wal::Cursor cur = (*lm)->OpenCursor();
    s = cur.SeekTo((*lm)->start_lsn());
    int64_t n = 0;
    while (s.ok() && cur.Valid()) {
      n++;
      s = cur.Next();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4000);
  lm->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_CursorSequentialScan);

/// A slotted-page-shaped image: row-sized runs with headers, the
/// repetitive layout real FPIs have (all-'x' would flatter the codec).
std::string FpiHeavyImage(uint32_t seed) {
  std::string img(kPageSize, '\0');
  for (size_t off = 64; off + 80 <= kPageSize; off += 80) {
    std::memcpy(&img[off], &seed, sizeof(seed));
    std::memcpy(&img[off + 4], &off, sizeof(uint32_t));
    std::memset(&img[off + 8], 'r', 64);
    img[off + 8 + seed % 64] = static_cast<char>(seed * 31 + off);
  }
  return img;
}

void BM_WalFpiFlush(benchmark::State& state) {
  // Append-and-flush of FPI-heavy batches, compression off (arg 0) vs
  // on (arg 1): the diet's write-path cost next to its space win.
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "fpi_flush.log").string();
  LogRecord fpi;
  fpi.type = LogType::kPreformat;
  fpi.page_id = 7;
  int64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    wal::WalOptions opts;
    opts.compression = state.range(0) != 0;
    auto lm = wal::Wal::Create(path, nullptr, nullptr, opts);
    if (!lm.ok()) {
      state.SkipWithError("log create failed");
      return;
    }
    state.ResumeTiming();
    for (uint32_t i = 0; i < 64; i++) {
      fpi.image = FpiHeavyImage(i);
      (*lm)->Append(fpi);
      bytes += static_cast<int64_t>(fpi.image.size());
    }
    Status s = (*lm)->FlushAll();
    if (!s.ok()) {
      state.SkipWithError("flush failed");
      return;
    }
    state.PauseTiming();
    lm->reset();
    state.ResumeTiming();
  }
  state.SetBytesProcessed(bytes);
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalFpiFlush)->Arg(0)->Arg(1);

/// The CI smoke gate: logical bytes flushed vs blocks actually
/// allocated on disk for an FPI-heavy compressed log.
int SmokeCompressionRatio() {
  auto dir = std::filesystem::temp_directory_path() / "rewinddb_microbench";
  std::filesystem::create_directories(dir);
  auto path = (dir / "smoke.log").string();
  std::filesystem::remove(path);
  wal::WalOptions opts;
  opts.compression = true;
  auto lm = wal::Wal::Create(path, nullptr, nullptr, opts);
  if (!lm.ok()) {
    std::fprintf(stderr, "smoke: create failed: %s\n",
                 lm.status().ToString().c_str());
    return 1;
  }
  LogRecord fpi;
  fpi.type = LogType::kPreformat;
  fpi.page_id = 7;
  for (uint32_t i = 0; i < 256; i++) {
    fpi.image = FpiHeavyImage(i);
    (*lm)->Append(fpi);
  }
  Status s = (*lm)->FlushAll();
  if (!s.ok()) {
    std::fprintf(stderr, "smoke: flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const uint64_t logical = (*lm)->flushed_lsn();
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::perror("smoke: stat");
    return 1;
  }
  const uint64_t disk = static_cast<uint64_t>(st.st_blocks) * 512;
  lm->reset();
  std::filesystem::remove(path);
  const double ratio =
      disk > 0 ? static_cast<double>(logical) / static_cast<double>(disk) : 0;
  std::printf("smoke: logical=%llu disk=%llu ratio=%.2fx (gate: >1.20x)\n",
              static_cast<unsigned long long>(logical),
              static_cast<unsigned long long>(disk), ratio);
  return ratio > 1.2 ? 0 : 1;
}

}  // namespace
}  // namespace rewinddb

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return rewinddb::SmokeCompressionRatio();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
