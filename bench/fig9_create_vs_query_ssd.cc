// Figure 9: snapshot creation time vs as-of query time on SSD.
//
// Paper result: creation is roughly constant (bounded by the log
// scanned between the nearest checkpoint and the SplitLSN, and
// amortizable over many queries of the same snapshot); the query time
// grows with the amount of modification being unwound.
#include "bench_common.h"

int main() {
  rewinddb::bench::RunCreateVsQuery(
      rewinddb::MediaProfile::Ssd(), "fig9",
      "SSD: creation ~flat; query grows with minutes back");
  return 0;
}
